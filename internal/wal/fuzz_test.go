package wal

import (
	"bytes"
	"testing"
)

// FuzzDecodeAll is the WAL decoder's robustness contract: any byte
// image — truncated, bit-flipped, or pure garbage — decodes without
// panicking to a valid prefix plus a truncation verdict. The invariants
// checked per input:
//
//  1. ValidBytes never exceeds the input.
//  2. Re-framing the surfaced records reproduces data[:ValidBytes]
//     exactly — nothing surfaced was corrupt.
//  3. Decoding the valid prefix alone is clean (no truncation) and
//     yields the same records — truncate-and-retry converges.
//  4. A clean image extended by garbage still yields all its records.
//
// The checked-in seed corpus (testdata/fuzz/FuzzDecodeAll) covers the
// empty image, single and multi-record images, each torn-tail flavor,
// a checksum flip and an oversized length, so a plain `go test` run
// exercises every decoder branch even without -fuzz.
func FuzzDecodeAll(f *testing.F) {
	one := appendRecord(nil, []byte("hello"))
	two := appendRecord(one, []byte("world, longer record payload"))
	f.Add([]byte{})
	f.Add(one)
	f.Add(two)
	f.Add(two[:len(two)-3])            // torn payload
	f.Add(two[:len(one)+4])            // torn header
	f.Add([]byte("garbage no header")) // no valid frame at all
	flipped := append([]byte(nil), two...)
	flipped[headerSize+1] ^= 0x10 // checksum mismatch on record 0
	f.Add(flipped)
	huge := append([]byte(nil), two...)
	huge[3] = 0xFF // length field far above maxRecordLen
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		d := DecodeAll(data)
		if d.ValidBytes < 0 || d.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d out of range for %d input bytes", d.ValidBytes, len(data))
		}
		if d.Truncated == (d.Reason == "") {
			t.Fatalf("Truncated=%v with Reason=%q", d.Truncated, d.Reason)
		}
		reframed := []byte{}
		for _, r := range d.Records {
			reframed = appendRecord(reframed, r)
		}
		if !bytes.Equal(reframed, data[:d.ValidBytes]) {
			t.Fatalf("surfaced records do not re-frame to the valid prefix")
		}
		again := DecodeAll(data[:d.ValidBytes])
		if again.Truncated || len(again.Records) != len(d.Records) {
			t.Fatalf("valid prefix re-decodes as truncated=%v with %d records (had %d)",
				again.Truncated, len(again.Records), len(d.Records))
		}
		if !d.Truncated {
			ext := DecodeAll(append(append([]byte(nil), data...), 0xFE, 0xED))
			if len(ext.Records) < len(d.Records) {
				t.Fatalf("garbage extension lost %d records", len(d.Records)-len(ext.Records))
			}
		}
	})
}
