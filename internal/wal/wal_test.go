package wal

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"digruber/internal/netsim"
)

// payloads the tests append: varied sizes, including empty.
func testPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(strings.Repeat(fmt.Sprintf("rec-%03d|", i), i%5+1))
	}
	if n > 2 {
		out[2] = []byte{} // empty payload must round-trip too
	}
	return out
}

func appendAll(t *testing.T, l *Log, payloads [][]byte) {
	t.Helper()
	for i, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func wantRecords(t *testing.T, got [][]byte, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestAppendRecover is the basic round trip: everything appended comes
// back, in order, after a modeled crash (the Log object is reopened).
func TestAppendRecover(t *testing.T) {
	store := NewMemStore()
	l := Open(store)
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	payloads := testPayloads(20)
	appendAll(t, l, payloads)
	if st := l.Stats(); st.Appends != 20 || st.AppendErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}

	rec, err := Open(store).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Truncated || rec.CheckpointCorrupt || rec.Checkpoint != nil {
		t.Fatalf("clean log recovered as %+v", rec)
	}
	wantRecords(t, rec.Records, payloads)
}

// TestAppendSyncsEveryRecord: the append path fsyncs per record — the
// property the zero-acked-loss contract stands on.
func TestAppendSyncsEveryRecord(t *testing.T) {
	store := NewMemStore()
	l := Open(store)
	appendAll(t, l, testPayloads(5))
	if store.Syncs() < 5 {
		t.Fatalf("5 appends issued only %d syncs", store.Syncs())
	}
}

// TestCheckpointCompacts: a checkpoint swap makes the snapshot durable,
// truncates the log, and recovery returns the snapshot plus only the
// records appended after it.
func TestCheckpointCompacts(t *testing.T) {
	store := NewMemStore()
	l := Open(store)
	appendAll(t, l, testPayloads(10))
	preCheckpoint := store.Size(logName)
	if err := l.Checkpoint([]byte("snapshot-state")); err != nil {
		t.Fatal(err)
	}
	if got := store.Size(logName); got != 0 {
		t.Fatalf("log holds %d bytes after checkpoint (was %d); compaction did not happen", got, preCheckpoint)
	}
	tail := [][]byte{[]byte("after-1"), []byte("after-2")}
	appendAll(t, l, tail)

	rec, err := Open(store).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Checkpoint, []byte("snapshot-state")) {
		t.Fatalf("checkpoint = %q", rec.Checkpoint)
	}
	wantRecords(t, rec.Records, tail)
	if st := l.Stats(); st.Checkpoints != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTornWriteTruncates: a seeded torn write — the file cut at an
// arbitrary byte offset inside the last record — loses exactly that
// record; the prefix survives and the truncation is reported.
func TestTornWriteTruncates(t *testing.T) {
	rng := netsim.Stream(7, "wal.test.torn")
	for trial := 0; trial < 20; trial++ {
		store := NewMemStore()
		l := Open(store)
		payloads := testPayloads(8)
		appendAll(t, l, payloads)
		full := store.Size(logName)
		lastLen := int64(headerSize + len(payloads[7]))
		// Cut somewhere strictly inside the final record's frame.
		cut := full - 1 - rng.Int63n(lastLen-1)
		if !store.Truncate(logName, cut) {
			t.Fatalf("trial %d: truncate at %d of %d failed", trial, cut, full)
		}

		rec, err := Open(store).Recover()
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Truncated {
			t.Fatalf("trial %d: torn tail at %d not reported", trial, cut)
		}
		wantRecords(t, rec.Records, payloads[:7])
		if rec.ValidBytes != full-lastLen {
			t.Fatalf("trial %d: valid prefix %d, want %d", trial, rec.ValidBytes, full-lastLen)
		}
	}
}

// TestBitFlipTruncates: a seeded single-bit flip anywhere in the log is
// detected (CRC, length desync, or oversized length) and decoding stops
// at or before the damaged record — never a panic, never a corrupt
// record surfaced.
func TestBitFlipTruncates(t *testing.T) {
	rng := netsim.Stream(11, "wal.test.bitflip")
	for trial := 0; trial < 50; trial++ {
		store := NewMemStore()
		l := Open(store)
		payloads := testPayloads(8)
		appendAll(t, l, payloads)
		full := store.Size(logName)
		off := rng.Int63n(full)
		if !store.FlipBit(logName, off, uint(rng.Intn(8))) {
			t.Fatalf("trial %d: flip at %d failed", trial, off)
		}

		rec, err := Open(store).Recover()
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Truncated {
			t.Fatalf("trial %d: flipped bit at byte %d went undetected", trial, off)
		}
		// Every surfaced record must be one of the originals, in order:
		// the flip can only shorten the valid prefix, never corrupt it.
		if len(rec.Records) >= len(payloads) {
			t.Fatalf("trial %d: %d records survived a corrupting flip", trial, len(rec.Records))
		}
		wantRecords(t, rec.Records, payloads[:len(rec.Records)])
	}
}

// TestFailedFsync: an armed fsync failure surfaces as an append error
// and is counted; the log keeps accepting appends afterwards.
func TestFailedFsync(t *testing.T) {
	store := NewMemStore()
	l := Open(store)
	appendAll(t, l, testPayloads(3))
	store.FailNextSyncs(1)
	if err := l.Append([]byte("doomed")); err == nil {
		t.Fatal("append with failing fsync reported success")
	}
	if err := l.Append([]byte("alive-again")); err != nil {
		t.Fatalf("append after fsync failure: %v", err)
	}
	st := l.Stats()
	if st.AppendErrors != 1 || st.Appends != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCorruptCheckpointReported: a bit-flipped checkpoint is refused
// (never served) and reported, while the log still replays.
func TestCorruptCheckpointReported(t *testing.T) {
	store := NewMemStore()
	l := Open(store)
	if err := l.Checkpoint([]byte("good-snapshot")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, [][]byte{[]byte("tail")})
	if !store.FlipBit(checkpointName, headerSize+2, 3) {
		t.Fatal("flip failed")
	}
	rec, err := Open(store).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.CheckpointCorrupt || rec.Checkpoint != nil {
		t.Fatalf("corrupt checkpoint recovered as %+v", rec)
	}
	wantRecords(t, rec.Records, [][]byte{[]byte("tail")})
}

// TestCrashBetweenSwapAndTruncate: the checkpoint swap's worst crash
// point — new checkpoint durable, old log not yet truncated — replays
// records the snapshot already covers, which the caller's restore path
// deduplicates. Recovery itself must surface both cleanly.
func TestCrashBetweenSwapAndTruncate(t *testing.T) {
	store := NewMemStore()
	// Build the post-crash image by hand: a valid checkpoint plus a log
	// whose records predate it.
	ck, err := store.Create(checkpointName)
	if err != nil {
		t.Fatal(err)
	}
	ck.Write(appendRecord(nil, []byte("snapshot")))
	ck.Close()
	lg, err := store.Create(logName)
	if err != nil {
		t.Fatal(err)
	}
	lg.Write(appendRecord(nil, []byte("pre-swap-record")))
	lg.Close()

	rec, err := Open(store).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Checkpoint, []byte("snapshot")) || rec.Truncated {
		t.Fatalf("recovered %+v", rec)
	}
	wantRecords(t, rec.Records, [][]byte{[]byte("pre-swap-record")})
}

// TestDirStore: the same round trip over real os files.
func TestDirStore(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l := Open(store)
	payloads := testPayloads(6)
	appendAll(t, l, payloads)
	if err := l.Checkpoint([]byte("dir-snap")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, [][]byte{[]byte("dir-tail")})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(store).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Checkpoint, []byte("dir-snap")) {
		t.Fatalf("checkpoint = %q", rec.Checkpoint)
	}
	wantRecords(t, rec.Records, [][]byte{[]byte("dir-tail")})

	if _, err := store.Create("../escape"); err == nil {
		t.Fatal("path traversal accepted")
	}
}
