package wal

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sync"
)

// Store file names. The checkpoint is one framed record holding the
// caller's full snapshot; the log holds everything appended since the
// last checkpoint. A checkpoint swap writes the snapshot to a temp
// file, fsyncs it, atomically renames it over the checkpoint, and only
// then resets the log — so a crash at any point leaves either the old
// (checkpoint, log) pair or the new checkpoint with a stale log, and a
// stale log only replays records the snapshot already contains, which
// the caller's restore path deduplicates.
const (
	logName        = "wal.log"
	checkpointName = "checkpoint"
	checkpointTmp  = "checkpoint.tmp"
)

// Stats counts a log's activity since Open.
type Stats struct {
	// Appends counts records durably appended; AppendErrors counts
	// Append calls that failed (write or fsync error) — those records
	// may not survive a crash.
	Appends      int64
	AppendErrors int64
	// Bytes is the framed bytes appended to the log (checkpoints not
	// included).
	Bytes int64
	// Checkpoints counts completed checkpoint swaps.
	Checkpoints int64
}

// Log is one write-ahead log over a Store: Recover reads it back,
// Append adds one durable record, Checkpoint compacts it under a new
// snapshot. All methods are safe for concurrent use.
type Log struct {
	store Store

	mu    sync.Mutex
	seg   File // open log segment; nil until the first append needs it
	stats Stats
}

// Open returns a log over the store. It reads nothing — call Recover
// before the first Append to adopt (and compact) any prior state.
func Open(store Store) *Log {
	return &Log{store: store}
}

// Recovered is what Recover found on the store.
type Recovered struct {
	// Checkpoint is the last durable snapshot payload (nil when none
	// was ever written, or when the checkpoint itself failed its CRC —
	// see CheckpointCorrupt).
	Checkpoint []byte
	// CheckpointCorrupt reports a checkpoint file that existed but did
	// not decode to exactly one valid record; recovery proceeds from
	// the log alone and the caller backfills the difference from peers.
	CheckpointCorrupt bool
	// Records are the log's valid-prefix payloads, in append order.
	Records [][]byte
	// Truncated reports a torn or corrupt log tail; ValidBytes is where
	// the valid prefix ends and Reason is the decoder's verdict.
	Truncated  bool
	ValidBytes int64
	Reason     string
}

// Recover reads the checkpoint and log back. It returns an error only
// for store I/O failures; torn or corrupt content is never an error —
// it is truncated at the first bad record and reported. Recover closes
// any open segment, so it can be called again after a modeled crash;
// callers normally follow a recovery by replaying the records and
// taking a fresh Checkpoint, which also discards the corrupt tail.
func (l *Log) Recover() (Recovered, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seg != nil {
		l.seg.Close()
		l.seg = nil
	}
	var rec Recovered
	ck, err := l.readAll(checkpointName)
	if err != nil {
		return Recovered{}, err
	}
	if ck != nil {
		d := DecodeAll(ck)
		if d.Truncated || len(d.Records) != 1 {
			rec.CheckpointCorrupt = true
		} else {
			rec.Checkpoint = d.Records[0]
		}
	}
	logData, err := l.readAll(logName)
	if err != nil {
		return Recovered{}, err
	}
	d := DecodeAll(logData)
	rec.Records = d.Records
	rec.Truncated = d.Truncated
	rec.ValidBytes = d.ValidBytes
	rec.Reason = d.Reason
	return rec, nil
}

// readAll returns the named file's content, nil when it does not exist.
func (l *Log) readAll(name string) ([]byte, error) {
	r, err := l.store.Open(name)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	data, err := io.ReadAll(r)
	cerr := r.Close()
	if err != nil {
		return nil, fmt.Errorf("wal: read %s: %w", name, err)
	}
	if cerr != nil {
		return nil, fmt.Errorf("wal: close %s: %w", name, cerr)
	}
	return data, nil
}

// Append frames payload and appends it durably (write + fsync) to the
// log. On failure the record may not survive a crash: the error is
// returned, counted, and the segment handle is dropped so the next
// append reopens it — the log itself keeps working.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(payload)
}

func (l *Log) appendLocked(payload []byte) error {
	if l.seg == nil {
		seg, err := l.store.Append(logName)
		if err != nil {
			l.stats.AppendErrors++
			return fmt.Errorf("wal: %w", err)
		}
		l.seg = seg
	}
	frame := appendRecord(nil, payload)
	if _, err := l.seg.Write(frame); err != nil {
		l.failSegLocked()
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.seg.Sync(); err != nil {
		l.failSegLocked()
		return fmt.Errorf("wal: append sync: %w", err)
	}
	l.stats.Appends++
	l.stats.Bytes += int64(len(frame))
	return nil
}

// failSegLocked counts a failed append and drops the segment handle.
func (l *Log) failSegLocked() {
	l.stats.AppendErrors++
	if l.seg != nil {
		l.seg.Close()
		l.seg = nil
	}
}

// Checkpoint writes snapshot as the new durable checkpoint and resets
// the log — the compaction step. The swap order (write temp, fsync,
// rename, then truncate the log) keeps every crash point recoverable.
func (l *Log) Checkpoint(snapshot []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	tmp, err := l.store.Create(checkpointTmp)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if _, err := tmp.Write(appendRecord(nil, snapshot)); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := l.store.Rename(checkpointTmp, checkpointName); err != nil {
		return fmt.Errorf("wal: checkpoint swap: %w", err)
	}
	// The snapshot is durable; everything in the log is now redundant.
	if l.seg != nil {
		l.seg.Close()
	}
	seg, err := l.store.Create(logName)
	if err != nil {
		l.seg = nil
		return fmt.Errorf("wal: checkpoint truncate: %w", err)
	}
	l.seg = seg
	l.stats.Checkpoints++
	return nil
}

// Close closes the open segment, if any. The log can be reopened by a
// later Recover.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seg == nil {
		return nil
	}
	err := l.seg.Close()
	l.seg = nil
	return err
}

// Stats returns a copy of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}
