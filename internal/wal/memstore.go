package wal

import (
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"sync"
)

// MemStore is the hermetic Store: files are byte slices, and the faults
// a real disk inflicts are injected deterministically by tests — a torn
// write (the tail of the last write never reached the platter) is a
// Truncate at a seeded byte offset, silent corruption is a FlipBit, and
// a failed fsync is armed with FailNextSyncs. The store itself is
// deterministic: identical operation sequences produce identical bytes,
// which is what lets recovery digests and metrics replays be compared
// byte-for-byte across runs.
type MemStore struct {
	mu        sync.Mutex
	files     map[string][]byte
	failSyncs int
	syncs     int64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{files: make(map[string][]byte)}
}

// memFile is one open write handle. Writes land in the store
// immediately (the fault model injects loss explicitly rather than
// modeling a page cache); Sync is where an armed fsync failure fires.
type memFile struct {
	s    *MemStore
	name string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	f.s.files[f.name] = append(f.s.files[f.name], p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.s.mu.Lock()
	defer f.s.mu.Unlock()
	f.s.syncs++
	if f.s.failSyncs > 0 {
		f.s.failSyncs--
		return fmt.Errorf("wal: injected fsync failure on %s", f.name)
	}
	return nil
}

func (f *memFile) Close() error { return nil }

// Open opens the named file for reading (a point-in-time copy, so later
// writes do not race the reader).
func (s *MemStore) Open(name string) (io.ReadCloser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: open %s: %w", name, fs.ErrNotExist)
	}
	return io.NopCloser(bytes.NewReader(append([]byte(nil), data...))), nil
}

// Create truncates (or creates) the named file and opens it for writing.
func (s *MemStore) Create(name string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[name] = nil
	return &memFile{s: s, name: name}, nil
}

// Append opens the named file for appending, creating it if absent.
func (s *MemStore) Append(name string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[name]; !ok {
		s.files[name] = nil
	}
	return &memFile{s: s, name: name}, nil
}

// Rename atomically replaces newName with oldName's content.
func (s *MemStore) Rename(oldName, newName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.files[oldName]
	if !ok {
		return fmt.Errorf("wal: rename %s: %w", oldName, fs.ErrNotExist)
	}
	s.files[newName] = data
	delete(s.files, oldName)
	return nil
}

// Remove deletes the named file (no error if absent).
func (s *MemStore) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.files, name)
	return nil
}

// FailNextSyncs arms the next n Sync calls (across all files) to fail —
// the failed-fsync fault. The log counts these as append errors and
// keeps serving; the records involved may not survive a crash.
func (s *MemStore) FailNextSyncs(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failSyncs = n
}

// Truncate cuts the named file to size bytes — the torn-write fault
// when size lands inside the last record (a crash mid-write persisted
// only a prefix), or plain tail loss when it lands on a boundary. It
// reports whether the file existed and was long enough to cut.
func (s *MemStore) Truncate(name string, size int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.files[name]
	if !ok || size < 0 || size >= int64(len(data)) {
		return false
	}
	s.files[name] = data[:size]
	return true
}

// FlipBit inverts one bit — silent disk corruption. It reports whether
// the offset was in range.
func (s *MemStore) FlipBit(name string, off int64, bit uint) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.files[name]
	if !ok || off < 0 || off >= int64(len(data)) {
		return false
	}
	data[off] ^= 1 << (bit % 8)
	return true
}

// Size reports the named file's length (-1 when absent).
func (s *MemStore) Size(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.files[name]
	if !ok {
		return -1
	}
	return int64(len(data))
}

// Syncs reports how many Sync calls the store has served — the probe
// tests use to prove the log fsyncs on the append path.
func (s *MemStore) Syncs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}
