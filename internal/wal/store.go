// Package wal is the decision point's durability layer: a write-ahead
// log of length-prefixed, CRC-checksummed records plus checkpointed
// snapshots with log compaction, over a pluggable Store. The package is
// deliberately payload-agnostic — it frames and recovers opaque byte
// records; the digruber layer decides what a record means — so the
// decoder can be fuzzed and the whole package stays free of wire types.
//
// Two stores ship with it: MemStore, an in-memory store with
// deterministic fault injection (torn writes, bit flips, truncation,
// failed fsync) for hermetic tests, and DirStore over real os files for
// the CLI binaries.
package wal

import "io"

// File is an open store file being written: a writer with the two
// durability verbs the log needs. Sync is the fsync barrier — data
// written before a successful Sync survives a crash.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Store abstracts the directory a log lives in. Implementations must
// make Rename atomic with respect to crashes (the checkpoint swap
// depends on it) and must return an error satisfying
// errors.Is(err, fs.ErrNotExist) from Open when the name is absent.
type Store interface {
	// Open opens the named file for reading from the start.
	Open(name string) (io.ReadCloser, error)
	// Create opens the named file for writing, truncating any previous
	// content.
	Create(name string) (File, error)
	// Append opens the named file for appending, creating it if absent.
	Append(name string) (File, error)
	// Rename atomically replaces newName with oldName's content.
	Rename(oldName, newName string) error
	// Remove deletes the named file (no error if absent).
	Remove(name string) error
}
