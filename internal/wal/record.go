package wal

import (
	"encoding/binary"
	"hash/crc32"
)

// Record framing: every record is an 8-byte header — a 4-byte
// little-endian payload length followed by a 4-byte CRC-32C (Castagnoli)
// of the payload — then the payload bytes. The length is read first and
// sanity-capped before any allocation, so garbage input cannot ask the
// decoder for gigabytes; the CRC is checked before a record is
// surfaced, so a bit flip anywhere in the payload (or in the length,
// which desynchronizes the stream and lands the CRC on random bytes)
// turns the record and everything after it into a reported truncation,
// never a panic and never silently corrupt state.

// headerSize is the per-record framing overhead in bytes.
const headerSize = 8

// maxRecordLen caps a single record's payload. Real records are a few
// hundred bytes (one gob-encoded dispatch entry) or a checkpoint of at
// most a fleet's working set; 64 MiB is far above both and small enough
// that a corrupt length field cannot drive a huge allocation.
const maxRecordLen = 64 << 20

// castagnoli is the CRC-32C table (the polynomial with hardware support
// on both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord appends one framed record to buf and returns the result.
func appendRecord(buf, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Truncation reasons reported by DecodeAll.
const (
	ReasonTornHeader  = "torn header"       // trailing bytes shorter than a header
	ReasonTornPayload = "torn payload"      // header promises more bytes than remain
	ReasonOversized   = "oversized record"  // length field above maxRecordLen
	ReasonChecksum    = "checksum mismatch" // payload bytes fail the CRC
)

// Decoded is DecodeAll's verdict on a log image: the records of the
// valid prefix, how long that prefix is, and — when the image did not
// end cleanly at a record boundary — why decoding stopped.
type Decoded struct {
	// Records are the payloads of the valid prefix, in append order.
	// Each aliases the input slice; callers that outlive the input copy.
	Records [][]byte
	// ValidBytes is the length of the longest prefix made of whole,
	// checksummed records — where a recovery truncates the log to.
	ValidBytes int64
	// Truncated reports whether anything after the valid prefix was
	// dropped (a torn tail from a crash mid-write, or corruption).
	Truncated bool
	// Reason is one of the Reason* constants when Truncated, else "".
	Reason string
}

// DecodeAll walks a log image record by record, stopping at the first
// torn or corrupt record. It never fails: any input, including
// adversarial garbage, yields the valid prefix plus a truncation
// verdict (see FuzzDecodeAll). The caller discards everything past
// ValidBytes — per-record recovery beyond the first fault is not
// attempted, because a log's records are causally ordered and replaying
// around a hole could resurrect state the lost record superseded.
func DecodeAll(data []byte) Decoded {
	var d Decoded
	for {
		rest := data[d.ValidBytes:]
		if len(rest) == 0 {
			return d
		}
		if len(rest) < headerSize {
			d.Truncated = true
			d.Reason = ReasonTornHeader
			return d
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		if n > maxRecordLen {
			d.Truncated = true
			d.Reason = ReasonOversized
			return d
		}
		if uint32(len(rest)-headerSize) < n {
			d.Truncated = true
			d.Reason = ReasonTornPayload
			return d
		}
		payload := rest[headerSize : headerSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			d.Truncated = true
			d.Reason = ReasonChecksum
			return d
		}
		d.Records = append(d.Records, payload)
		d.ValidBytes += int64(headerSize) + int64(n)
	}
}
