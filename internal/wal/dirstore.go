package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// DirStore is the Store over real os files in one directory — what the
// CLI binaries (cmd/digruber-broker) run the log on. Names are flat
// (no separators); Rename maps to os.Rename, which is atomic on POSIX
// filesystems, satisfying the checkpoint swap's crash contract.
type DirStore struct {
	dir string
}

// NewDirStore returns a store rooted at dir, creating it if needed.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// path validates a flat name and joins it under the store directory.
func (s *DirStore) path(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return "", fmt.Errorf("wal: bad store file name %q", name)
	}
	return filepath.Join(s.dir, name), nil
}

// Open opens the named file for reading.
func (s *DirStore) Open(name string) (io.ReadCloser, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	return os.Open(p)
}

// Create truncates (or creates) the named file and opens it for writing.
func (s *DirStore) Create(name string) (File, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	return os.OpenFile(p, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// Append opens the named file for appending, creating it if absent.
func (s *DirStore) Append(name string) (File, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	return os.OpenFile(p, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

// Rename atomically replaces newName with oldName's content.
func (s *DirStore) Rename(oldName, newName string) error {
	po, err := s.path(oldName)
	if err != nil {
		return err
	}
	pn, err := s.path(newName)
	if err != nil {
		return err
	}
	return os.Rename(po, pn)
}

// Remove deletes the named file (no error if absent).
func (s *DirStore) Remove(name string) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	err = os.Remove(p)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
