package gossip

import (
	"fmt"
	"reflect"
	"testing"
)

func fleet(n int) []Member {
	out := make([]Member, n)
	for i := range out {
		name := fmt.Sprintf("dp-%02d", i)
		out[i] = Member{Name: name, Node: name, Addr: "mem/" + name}
	}
	return out
}

func TestViewIgnoresSelfAndDuplicates(t *testing.T) {
	v := NewView("dp-00", 1, 0)
	for _, m := range fleet(4) {
		v.Add(m)
		v.Add(m)
	}
	if v.Len() != 3 {
		t.Fatalf("Len = %d; want 3 (self excluded, adds idempotent)", v.Len())
	}
	if v.Contains("dp-00") {
		t.Fatal("view contains self")
	}
	v.Remove("dp-01")
	if v.Contains("dp-01") || v.Len() != 2 {
		t.Fatalf("after Remove: Len = %d, contains dp-01 = %v", v.Len(), v.Contains("dp-01"))
	}
}

func TestViewAddOverwritesAddress(t *testing.T) {
	v := NewView("dp-00", 1, 0)
	v.Add(Member{Name: "dp-01", Node: "n1", Addr: "old"})
	v.Add(Member{Name: "dp-01", Node: "n1", Addr: "new"})
	ms := v.Members()
	if len(ms) != 1 || ms[0].Addr != "new" {
		t.Fatalf("Members = %+v; want one member at the new address", ms)
	}
}

func TestViewCapBoundsActiveSubset(t *testing.T) {
	v := NewView("dp-00", 7, 5)
	for _, m := range fleet(40)[1:] {
		v.Add(m)
	}
	active := v.Members()
	if len(active) != 5 {
		t.Fatalf("active subset = %d members; want cap 5", len(active))
	}
	if all := v.All(); len(all) != 39 {
		t.Fatalf("All = %d members; want 39 (cap must not forget members)", len(all))
	}
	// The active subset is stable: same view, same subset.
	if again := v.Members(); !reflect.DeepEqual(active, again) {
		t.Fatalf("active subset changed between calls: %v vs %v", active, again)
	}
	// Different selves keep different subsets (decorrelated subgraphs).
	w := NewView("dp-99", 7, 5)
	for _, m := range fleet(40)[1:] {
		w.Add(m)
	}
	if reflect.DeepEqual(names(active), names(w.Members())) {
		t.Fatalf("dp-00 and dp-99 picked identical active subsets %v", names(active))
	}
}

func names(ms []Member) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name
	}
	return out
}

func TestSampleDeterministicPerRound(t *testing.T) {
	build := func() *View {
		v := NewView("dp-00", 42, 0)
		for _, m := range fleet(20)[1:] {
			v.Add(m)
		}
		return v
	}
	a, b := build(), build()
	r1 := a.Sample(1, 3)
	if len(r1) != 3 {
		t.Fatalf("Sample(1,3) = %d members; want 3", len(r1))
	}
	if !reflect.DeepEqual(r1, b.Sample(1, 3)) {
		t.Fatal("two identical views sampled different peers for the same round")
	}
	seen := map[string]bool{}
	for _, m := range r1 {
		if m.Name == "dp-00" {
			t.Fatal("sample contains self")
		}
		if seen[m.Name] {
			t.Fatalf("sample repeats %s", m.Name)
		}
		seen[m.Name] = true
	}
	// Across rounds the draw varies — that's the epidemic mixing.
	varied := false
	for round := uint64(2); round < 8; round++ {
		if !reflect.DeepEqual(names(r1), names(a.Sample(round, 3))) {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("samples never varied across 6 rounds")
	}
}

func TestSampleClampsToViewSize(t *testing.T) {
	v := NewView("dp-00", 1, 0)
	v.Add(Member{Name: "dp-01"})
	v.Add(Member{Name: "dp-02"})
	if got := v.Sample(3, 10); len(got) != 2 {
		t.Fatalf("Sample(k=10) over 2 members = %d; want 2", len(got))
	}
	if got := v.Sample(3, 0); got != nil {
		t.Fatalf("Sample(k=0) = %v; want nil", got)
	}
	empty := NewView("dp-00", 1, 0)
	if got := empty.Sample(1, 3); got != nil {
		t.Fatalf("Sample over empty view = %v; want nil", got)
	}
}

func TestCursorsRoundTripSortedAndUnique(t *testing.T) {
	vv := map[string]uint64{"dp-b": 7, "dp-a": 3, "dp-c": 0}
	cs := Cursors(vv)
	if len(cs) != 3 || cs[0].Origin != "dp-a" || cs[1].Origin != "dp-b" || cs[2].Origin != "dp-c" {
		t.Fatalf("Cursors = %+v; want sorted by origin with zero entries kept", cs)
	}
	if !reflect.DeepEqual(Vector(cs), vv) {
		t.Fatalf("Vector(Cursors(vv)) = %v; want %v", Vector(cs), vv)
	}
	if Cursors(nil) != nil || Vector(nil) != nil {
		t.Fatal("empty vector/digest must stay nil for gob zero-elision")
	}
	if Seq(cs, "dp-b") != 7 || Seq(cs, "dp-x") != 0 {
		t.Fatalf("Seq lookups wrong: dp-b=%d dp-x=%d", Seq(cs, "dp-b"), Seq(cs, "dp-x"))
	}
}

func TestMinAckedFoldsPerOriginMinimum(t *testing.T) {
	origins := []string{"dp-a", "dp-b"}
	acc := map[string]uint64{}
	MinAcked(acc, map[string]uint64{"dp-a": 5, "dp-b": 9}, origins)
	MinAcked(acc, map[string]uint64{"dp-a": 3}, origins) // dp-b missing → 0
	if acc["dp-a"] != 3 || acc["dp-b"] != 0 {
		t.Fatalf("acc = %v; want dp-a:3 dp-b:0", acc)
	}
}
