package gossip

import (
	"hash/fnv"
	"sort"
	"sync"

	"digruber/internal/netsim"
)

// Member is one decision point as the membership view tracks it — just
// enough to dial it (the same triple AddPeer takes).
type Member struct {
	Name string
	Node string
	Addr string
}

// View is one decision point's partial membership view. It may know
// every fleet member (membership records piggyback on gossip messages,
// so names spread epidemically), but when a cap is set only the `cap`
// members ranked lowest by a per-self hash are *active* — eligible for
// sampling. Each decision point therefore gossips over its own stable
// random subgraph; with cap ≥ a few times log N the union of those
// subgraphs is connected with high probability, which is all epidemic
// dissemination needs. Cap 0 means every known member is active.
//
// The per-self ranking (FNV of self‖name mixed with the seed) is what
// makes the subgraphs diverse: two decision points with identical
// knowledge still keep different subsets, so no member is systematically
// orphaned.
type View struct {
	mu      sync.Mutex
	self    string
	seed    int64
	cap     int
	members map[string]Member
}

// NewView returns an empty view for the named decision point. Sampling
// and ranking draw all their randomness from seed, so equal seeds mean
// equal draws. cap bounds the active subset (0 = unlimited).
func NewView(self string, seed int64, cap int) *View {
	return &View{
		self:    self,
		seed:    seed,
		cap:     cap,
		members: make(map[string]Member),
	}
}

// Add records a member (idempotent; self is ignored). Later adds with a
// different address overwrite — a redeployed member keeps its name.
func (v *View) Add(m Member) {
	if m.Name == "" || m.Name == v.self {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.members[m.Name] = m
}

// Remove forgets a member.
func (v *View) Remove(name string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.members, name)
}

// Len reports how many members the view knows (active or not).
func (v *View) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.members)
}

// Contains reports whether the view knows the named member.
func (v *View) Contains(name string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	_, ok := v.members[name]
	return ok
}

// rank orders members for the active subset: lowest hash wins. Mixing
// self into the hash decorrelates the subsets across decision points.
func (v *View) rank(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(v.self))
	h.Write([]byte{0})
	h.Write([]byte(name))
	return h.Sum64() ^ (uint64(v.seed) * 0x9E3779B97F4A7C15)
}

// activeLocked returns the active member names in sorted order. Caller
// holds v.mu.
func (v *View) activeLocked() []string {
	names := make([]string, 0, len(v.members))
	for name := range v.members {
		names = append(names, name)
	}
	if v.cap > 0 && len(names) > v.cap {
		sort.Slice(names, func(i, j int) bool {
			ri, rj := v.rank(names[i]), v.rank(names[j])
			if ri != rj {
				return ri < rj
			}
			return names[i] < names[j]
		})
		names = names[:v.cap]
	}
	sort.Strings(names)
	return names
}

// Members returns the active subset, sorted by name.
func (v *View) Members() []Member {
	v.mu.Lock()
	defer v.mu.Unlock()
	names := v.activeLocked()
	out := make([]Member, len(names))
	for i, name := range names {
		out[i] = v.members[name]
	}
	return out
}

// All returns every known member, active or not, sorted by name.
func (v *View) All() []Member {
	v.mu.Lock()
	defer v.mu.Unlock()
	names := make([]string, 0, len(v.members))
	for name := range v.members {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Member, len(names))
	for i, name := range names {
		out[i] = v.members[name]
	}
	return out
}

// Sample draws up to k distinct active members for one gossip round.
// The draw is a pure function of (seed, self, round, active set): a
// replayed round contacts the same peers in the same order, which is
// what keeps a Manual-clock gossip run byte-identical.
func (v *View) Sample(round uint64, k int) []Member {
	v.mu.Lock()
	defer v.mu.Unlock()
	names := v.activeLocked()
	if k <= 0 || len(names) == 0 {
		return nil
	}
	rng := netsim.Stream(v.seed, StreamName(v.self, round))
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	if k > len(names) {
		k = len(names)
	}
	out := make([]Member, k)
	for i := 0; i < k; i++ {
		out[i] = v.members[names[i]]
	}
	return out
}
