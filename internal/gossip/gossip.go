// Package gossip is the peer-sampling dissemination subsystem that lets
// the DI-GRUBER mesh scale past the paper's 10 decision points. The
// full-mesh flood costs O(N²) messages per exchange round — each of N
// points contacts all N-1 peers — which is exactly what caps fleet size.
// A gossip round instead contacts a seeded sample of fanout k peers with
// a push-pull anti-entropy exchange: each side advertises a digest (a
// version vector over origin decision points, see gruber.OriginVector)
// and ships what the other side's vector lacks, own records and relayed
// third-party records alike. Per-DP traffic then tracks the fanout, not
// the fleet size, while news still crosses the fleet in O(log N) hops
// with high probability.
//
// Everything here is deterministic: peer selection draws from
// netsim.Stream seeded by (seed, self, round), so a Manual-clock run
// replays byte-identically — the same regime as the fault plane, the
// tracer and the metrics plane.
package gossip

import (
	"fmt"
	"sort"
)

// Defaults for the knobs a decision point's gossip configuration leaves
// zero.
const (
	// DefaultFanout is how many peers one round contacts. Three pushes
	// per round keeps per-round traffic constant while an infection
	// still reaches the whole fleet in a handful of rounds at 100 DPs.
	DefaultFanout = 3
	// DefaultMaxRecords bounds the dispatch records one gossip message
	// carries, so a freshly-joined point is caught up over a few rounds
	// instead of one unbounded frame.
	DefaultMaxRecords = 4096
)

// Cursor is one origin's entry in a wire-encoded digest: the highest
// contiguous dispatch sequence number the sender holds for that origin.
// Digests travel as sorted []Cursor rather than a map so the gob
// encoding of a given vector is unique (maps iterate in random order).
type Cursor struct {
	Origin string
	Seq    uint64
}

// Cursors encodes a version vector as a digest: one Cursor per origin,
// sorted by origin name. Zero entries are kept — a floor of 0 after a
// restart is information too.
func Cursors(vv map[string]uint64) []Cursor {
	if len(vv) == 0 {
		return nil
	}
	out := make([]Cursor, 0, len(vv))
	//lint:allow mapiter -- collected slice is sorted by origin right below
	for origin, seq := range vv {
		out = append(out, Cursor{Origin: origin, Seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

// Vector decodes a digest back into a version vector. Nil in, nil out.
func Vector(cursors []Cursor) map[string]uint64 {
	if len(cursors) == 0 {
		return nil
	}
	vv := make(map[string]uint64, len(cursors))
	for _, c := range cursors {
		vv[c.Origin] = c.Seq
	}
	return vv
}

// Seq returns the digest's entry for origin (0 when absent).
func Seq(cursors []Cursor, origin string) uint64 {
	for _, c := range cursors {
		if c.Origin == origin {
			return c.Seq
		}
	}
	return 0
}

// MinAcked folds one peer's acknowledged vector into a running
// per-origin minimum over the given origins: for every origin,
// acc[origin] becomes min(acc[origin], acked[origin]), a missing peer
// entry counting as zero and a missing acc entry as "first fold". Fold
// every view member's vector into the same acc to get the compaction
// floor gruber.CompactOrigins takes.
func MinAcked(acc map[string]uint64, acked map[string]uint64, origins []string) {
	for _, origin := range origins {
		v := acked[origin] // 0 when the peer never acknowledged this origin
		if cur, ok := acc[origin]; !ok || v < cur {
			acc[origin] = v
		}
	}
}

// StreamName names the deterministic random stream for one decision
// point's peer draw in one round — the shared convention that makes a
// replayed run sample identical peers.
func StreamName(self string, round uint64) string {
	return fmt.Sprintf("gossip/%s/round/%d", self, round)
}
