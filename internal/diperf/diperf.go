// Package diperf reproduces the DiPerF framework the paper uses for all
// its measurements: a controller/collector coordinates a fleet of tester
// clients whose participation is varied slowly (ramp-up), collects
// per-operation records, and aggregates them into the figures' three
// curves — concurrent load, service response time, and throughput — plus
// the min/median/average/max/stddev summary strip printed under each
// figure.
//
// DiPerF was originally built for single-point services (Figure 1); the
// paper extended it to distributed services by giving each tester a
// client bound to one DI-GRUBER decision point. Here that binding lives
// in the Op closure the caller supplies.
package diperf

import (
	"fmt"
	"sync"
	"time"

	"digruber/internal/stats"
	"digruber/internal/vtime"
)

// OpResult is what one tester operation reports.
type OpResult struct {
	// Handled reports whether the service answered (vs. client-side
	// timeout fallback).
	Handled bool
	// Err is a hard failure (not a graceful fallback).
	Err error
	// TraceID links the operation to its span tree when the run is
	// traced (zero otherwise).
	TraceID uint64
}

// Op performs one service interaction for tester t (its seq-th). The
// controller measures its duration on the experiment clock.
type Op func(t, seq int) OpResult

// Config shapes a test.
type Config struct {
	// Testers is the fleet size (the paper ramps to ~120 clients).
	Testers int
	// Stagger is the delay between consecutive tester starts — the slow
	// ramp-up of participation.
	Stagger time.Duration
	// Interarrival is each tester's pause between operations (the
	// paper's one job per second per submission host).
	Interarrival time.Duration
	// Duration ends the test (measured from the first tester's start).
	Duration time.Duration
	// Window is the aggregation bucket for the curves.
	Window time.Duration
	Clock  vtime.Clock
}

func (c *Config) validate() error {
	if c.Testers <= 0 {
		return fmt.Errorf("diperf: Testers must be positive")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("diperf: Duration must be positive")
	}
	if c.Clock == nil {
		return fmt.Errorf("diperf: Clock is required")
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	return nil
}

// OpRecord is one collected measurement, exported so trace analysis can
// cross-check span trees against the controller's own timing.
type OpRecord struct {
	Tester   int
	Seq      int
	Start    time.Time
	End      time.Time
	Response time.Duration
	Handled  bool
	Err      error
	// TraceID is the operation's trace (zero when untraced).
	TraceID uint64
}

// Result is the aggregated outcome of one DiPerF run — everything a
// paper figure needs.
type Result struct {
	// Origin is the test start; curves index windows from here.
	Origin time.Time
	Window time.Duration

	// LoadCurve is concurrent active testers per window.
	LoadCurve []float64
	// ResponseCurve is mean response time per window, seconds (all ops).
	ResponseCurve []float64
	// ThroughputCurve is handled operations completed per second per
	// window — the service's delivered throughput.
	ThroughputCurve []float64

	// ResponseSummary summarizes response seconds across all ops.
	ResponseSummary stats.Summary
	// PeakThroughput is the best window of the throughput curve.
	PeakThroughput float64
	// PeakResponse is the worst window mean of the response curve.
	PeakResponse float64

	// Ops, Handled, Errors count operations.
	Ops     int
	Handled int
	Errors  int

	// Records holds every per-operation measurement in completion order —
	// the raw material figures' curves are built from, kept so traced
	// runs can join each operation to its span tree by TraceID.
	Records []OpRecord
}

// Run executes the test synchronously and returns the aggregate result.
func Run(cfg Config, op Op) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	clock := cfg.Clock
	origin := clock.Now()
	deadline := origin.Add(cfg.Duration)

	var mu sync.Mutex
	var records []OpRecord
	active := make([]struct{ start, end time.Time }, cfg.Testers)

	var wg sync.WaitGroup
	for t := 0; t < cfg.Testers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			// Slow ramp: tester t joins after t staggers.
			if cfg.Stagger > 0 {
				clock.Sleep(time.Duration(t) * cfg.Stagger)
			}
			start := clock.Now()
			seq := 0
			for clock.Now().Before(deadline) {
				opStart := clock.Now()
				res := op(t, seq)
				opEnd := clock.Now()
				mu.Lock()
				records = append(records, OpRecord{
					Tester: t, Seq: seq, Start: opStart, End: opEnd,
					Response: opEnd.Sub(opStart), Handled: res.Handled,
					Err: res.Err, TraceID: res.TraceID,
				})
				mu.Unlock()
				seq++
				if cfg.Interarrival > 0 {
					clock.Sleep(cfg.Interarrival)
				}
			}
			mu.Lock()
			active[t] = struct{ start, end time.Time }{start, clock.Now()}
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	return aggregate(origin, cfg, records, active), nil
}

func aggregate(origin time.Time, cfg Config, records []OpRecord, active []struct{ start, end time.Time }) Result {
	res := Result{Origin: origin, Window: cfg.Window, Records: records}
	var respSeries, tputSeries stats.Series
	var responseVals []float64
	for _, r := range records {
		res.Ops++
		if r.Handled {
			res.Handled++
			tputSeries.Add(r.End, 1)
		}
		if r.Err != nil {
			res.Errors++
		}
		respSeries.Add(r.End, r.Response.Seconds())
		responseVals = append(responseVals, r.Response.Seconds())
	}
	res.ResponseSummary = stats.Summarize(responseVals)

	span := 0
	if len(records) > 0 || len(active) > 0 {
		last := origin
		for _, r := range records {
			if r.End.After(last) {
				last = r.End
			}
		}
		for _, a := range active {
			if a.end.After(last) {
				last = a.end
			}
		}
		span = int(last.Sub(origin)/cfg.Window) + 1
	}

	respBuckets := respSeries.Bucketize(origin, cfg.Window)
	tputBuckets := tputSeries.Bucketize(origin, cfg.Window)
	res.ResponseCurve = make([]float64, span)
	res.ThroughputCurve = make([]float64, span)
	for i := 0; i < span && i < len(respBuckets); i++ {
		res.ResponseCurve[i] = respBuckets[i].Mean
	}
	for i := 0; i < span && i < len(tputBuckets); i++ {
		res.ThroughputCurve[i] = float64(tputBuckets[i].Count) / cfg.Window.Seconds()
	}

	// Load: how many testers were active during each window.
	res.LoadCurve = make([]float64, span)
	for i := 0; i < span; i++ {
		wStart := origin.Add(time.Duration(i) * cfg.Window)
		wEnd := wStart.Add(cfg.Window)
		n := 0
		for _, a := range active {
			if a.start.IsZero() {
				continue
			}
			if a.start.Before(wEnd) && a.end.After(wStart) {
				n++
			}
		}
		res.LoadCurve[i] = float64(n)
	}

	res.PeakThroughput = stats.Max(res.ThroughputCurve)
	res.PeakResponse = stats.Max(res.ResponseCurve)
	return res
}

// Render prints the result's three curves as aligned columns, the
// textual stand-in for a DiPerF figure.
func (r Result) Render() string {
	return stats.Render(r.Origin, r.Window, map[string][]float64{
		"load":        r.LoadCurve,
		"response(s)": r.ResponseCurve,
		"tput(q/s)":   r.ThroughputCurve,
	})
}

// SummaryLine prints the figure's stat strip.
func (r Result) SummaryLine() string {
	s := r.ResponseSummary
	return fmt.Sprintf(
		"response(s): min=%.2f med=%.2f avg=%.2f max=%.2f sd=%.2f | peak response=%.2fs peak tput=%.2f q/s | ops=%d handled=%d (%.1f%%) errors=%d",
		s.Min, s.Median, s.Mean, s.Max, s.StdDev,
		r.PeakResponse, r.PeakThroughput,
		r.Ops, r.Handled, pct(r.Handled, r.Ops), r.Errors)
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}
