package diperf

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"digruber/internal/vtime"
)

var epoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)

func TestRunCollectsOps(t *testing.T) {
	clock := vtime.NewScaled(epoch, 1000) // 1 virtual s = 1 real ms
	var ops atomic.Int64
	res, err := Run(Config{
		Testers:      4,
		Stagger:      0,
		Interarrival: time.Second,
		Duration:     20 * time.Second,
		Window:       5 * time.Second,
		Clock:        clock,
	}, func(t, seq int) OpResult {
		ops.Add(1)
		clock.Sleep(100 * time.Millisecond)
		return OpResult{Handled: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != int(ops.Load()) || res.Ops == 0 {
		t.Fatalf("ops = %d vs %d", res.Ops, ops.Load())
	}
	if res.Handled != res.Ops || res.Errors != 0 {
		t.Fatalf("handled=%d errors=%d ops=%d", res.Handled, res.Errors, res.Ops)
	}
	// Each cycle costs ≈1–2s virtual (op + interarrival + compression
	// overhead), so expect at least ~7 ops per tester over 20s.
	if res.Ops < 4*7 {
		t.Fatalf("suspiciously few ops: %d", res.Ops)
	}
	if res.PeakThroughput <= 0 {
		t.Fatal("no throughput measured")
	}
	// At 1000× compression, per-op scheduler overhead of ~1 real ms reads
	// as ~1 virtual second, so only a loose upper band is meaningful here;
	// production experiments run at gentler speedups.
	if res.ResponseSummary.Mean < 0.08 || res.ResponseSummary.Mean > 5 {
		t.Fatalf("mean response %v, want within [0.08, 5]s", res.ResponseSummary.Mean)
	}
}

func TestRampUpShowsInLoadCurve(t *testing.T) {
	clock := vtime.NewScaled(epoch, 1000)
	res, err := Run(Config{
		Testers:      10,
		Stagger:      10 * time.Second,
		Interarrival: time.Second,
		Duration:     100 * time.Second,
		Window:       10 * time.Second,
		Clock:        clock,
	}, func(t, seq int) OpResult { return OpResult{Handled: true} })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LoadCurve) < 5 {
		t.Fatalf("load curve too short: %d", len(res.LoadCurve))
	}
	early := res.LoadCurve[1]
	late := res.LoadCurve[len(res.LoadCurve)-2]
	if late <= early {
		t.Fatalf("load did not ramp: early=%v late=%v curve=%v", early, late, res.LoadCurve)
	}
}

func TestHandledVsUnhandledSplit(t *testing.T) {
	clock := vtime.NewScaled(epoch, 1000)
	res, err := Run(Config{
		Testers: 2, Interarrival: time.Second, Duration: 10 * time.Second,
		Window: 5 * time.Second, Clock: clock,
	}, func(t, seq int) OpResult {
		return OpResult{Handled: seq%2 == 0}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Handled >= res.Ops || res.Handled == 0 {
		t.Fatalf("handled=%d ops=%d, want a strict split", res.Handled, res.Ops)
	}
}

func TestErrorsCounted(t *testing.T) {
	clock := vtime.NewScaled(epoch, 1000)
	res, err := Run(Config{
		Testers: 1, Interarrival: time.Second, Duration: 5 * time.Second,
		Window: time.Second, Clock: clock,
	}, func(t, seq int) OpResult {
		return OpResult{Err: errors.New("boom")}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != res.Ops || res.Errors == 0 {
		t.Fatalf("errors=%d ops=%d", res.Errors, res.Ops)
	}
}

func TestConfigValidation(t *testing.T) {
	clock := vtime.NewReal()
	if _, err := Run(Config{Duration: time.Second, Clock: clock}, nil); err == nil {
		t.Fatal("zero testers accepted")
	}
	if _, err := Run(Config{Testers: 1, Clock: clock}, nil); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := Run(Config{Testers: 1, Duration: time.Second}, nil); err == nil {
		t.Fatal("nil clock accepted")
	}
}

func TestRenderAndSummary(t *testing.T) {
	clock := vtime.NewScaled(epoch, 1000)
	res, err := Run(Config{
		Testers: 2, Interarrival: time.Second, Duration: 6 * time.Second,
		Window: 2 * time.Second, Clock: clock,
	}, func(t, seq int) OpResult { return OpResult{Handled: true} })
	if err != nil {
		t.Fatal(err)
	}
	rendered := res.Render()
	for _, want := range []string{"load", "response(s)", "tput(q/s)"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("render missing %q", want)
		}
	}
	line := res.SummaryLine()
	for _, want := range []string{"peak tput", "handled", "min="} {
		if !strings.Contains(line, want) {
			t.Fatalf("summary missing %q: %s", want, line)
		}
	}
}

func TestSlowServiceShowsInResponseCurve(t *testing.T) {
	// Gentle 200x compression keeps scheduler noise (~1ms real = 0.2s
	// virtual) far below the 3s slowdown being detected.
	clock := vtime.NewScaled(epoch, 200)
	slow := false
	res, err := Run(Config{
		Testers: 1, Interarrival: time.Second, Duration: 40 * time.Second,
		Window: 10 * time.Second, Clock: clock,
	}, func(t, seq int) OpResult {
		if seq > 5 {
			slow = true
		}
		if slow {
			clock.Sleep(3 * time.Second)
		} else {
			clock.Sleep(100 * time.Millisecond)
		}
		return OpResult{Handled: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The final bucket can be empty (test ends mid-window): compare the
	// curve's peak against its start.
	first := res.ResponseCurve[0]
	peak := first
	for _, v := range res.ResponseCurve[1:] {
		if v > peak {
			peak = v
		}
	}
	if peak <= first*1.2 {
		t.Fatalf("response curve flat despite slowdown: %v", res.ResponseCurve)
	}
}
