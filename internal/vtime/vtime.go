// Package vtime provides the clock abstraction used throughout the
// DI-GRUBER reproduction. All time-dependent components (site schedulers,
// state-exchange loops, DiPerF testers, timeouts) take a Clock rather than
// calling the time package directly, so the same code can run:
//
//   - against the real wall clock (Real),
//   - time-compressed, where one emulated "grid second" lasts a few real
//     milliseconds (Scaled) — this is how the paper's hour-long PlanetLab
//     runs are replayed on one machine, and
//   - under a fully manual clock advanced explicitly by tests (Manual),
//     which makes unit tests of periodic machinery deterministic and
//     instant.
package vtime

import "time"

// Clock is the minimal timing surface the brokering stack needs.
type Clock interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time
	// Sleep blocks for d of virtual time.
	Sleep(d time.Duration)
	// After returns a channel that delivers the virtual time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules f to run in its own goroutine after d of
	// virtual time. The returned Timer can cancel the call.
	AfterFunc(d time.Duration, f func()) Timer
	// NewTicker returns a ticker firing every d of virtual time.
	NewTicker(d time.Duration) Ticker
	// Since is shorthand for Now().Sub(t).
	Since(t time.Time) time.Duration
}

// Timer is a cancellable pending call created by AfterFunc or After.
type Timer interface {
	// Stop cancels the timer. It reports whether the call was prevented
	// from firing.
	Stop() bool
}

// Ticker delivers periodic ticks on C until stopped.
type Ticker interface {
	// C returns the tick channel.
	C() <-chan time.Time
	// Stop shuts the ticker down. It does not close C.
	Stop()
}
