package vtime

import "time"

// Real is a Clock backed directly by the system clock.
type Real struct{}

// NewReal returns the wall-clock Clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

type realTicker struct{ t *time.Ticker }

func (r realTicker) C() <-chan time.Time { return r.t.C }
func (r realTicker) Stop()               { r.t.Stop() }
