package vtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC) // SC'05 week

func TestManualNowAdvance(t *testing.T) {
	c := NewManual(epoch)
	if !c.Now().Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", c.Now(), epoch)
	}
	c.Advance(90 * time.Second)
	if got, want := c.Now(), epoch.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	if got := c.Since(epoch); got != 90*time.Second {
		t.Fatalf("Since(epoch) = %v, want 90s", got)
	}
}

func TestManualAdvanceToPastIsNoop(t *testing.T) {
	c := NewManual(epoch)
	c.Advance(time.Minute)
	c.AdvanceTo(epoch) // in the past
	if got, want := c.Now(), epoch.Add(time.Minute); !got.Equal(want) {
		t.Fatalf("clock went backwards: %v, want %v", got, want)
	}
}

func TestManualAfterFiresInOrder(t *testing.T) {
	c := NewManual(epoch)
	var order []int
	var mu sync.Mutex
	record := func(n int) func() {
		return func() { mu.Lock(); order = append(order, n); mu.Unlock() }
	}
	c.AfterFunc(3*time.Second, record(3))
	c.AfterFunc(1*time.Second, record(1))
	c.AfterFunc(2*time.Second, record(2))
	c.Advance(5 * time.Second)
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestManualEqualDeadlinesFireInCreationOrder(t *testing.T) {
	c := NewManual(epoch)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestManualAfterDeliversTimestamp(t *testing.T) {
	c := NewManual(epoch)
	ch := c.After(10 * time.Second)
	done := make(chan time.Time, 1)
	go func() { done <- <-ch }()
	c.Advance(time.Hour)
	got := <-done
	if want := epoch.Add(10 * time.Second); !got.Equal(want) {
		t.Fatalf("After delivered %v, want %v", got, want)
	}
}

func TestManualTimerStop(t *testing.T) {
	c := NewManual(epoch)
	var fired atomic.Bool
	timer := c.AfterFunc(time.Second, func() { fired.Store(true) })
	if !timer.Stop() {
		t.Fatal("Stop() = false before firing, want true")
	}
	c.Advance(time.Minute)
	if fired.Load() {
		t.Fatal("stopped timer fired")
	}
	if timer.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
}

func TestManualTimerStopAfterFire(t *testing.T) {
	c := NewManual(epoch)
	timer := c.AfterFunc(time.Second, func() {})
	c.Advance(2 * time.Second)
	if timer.Stop() {
		t.Fatal("Stop() after firing = true, want false")
	}
}

func TestManualTicker(t *testing.T) {
	c := NewManual(epoch)
	tick := c.NewTicker(time.Minute)
	var n atomic.Int32
	done := make(chan struct{})
	go func() {
		for range tick.C() {
			n.Add(1)
		}
	}()
	// Advance minute by minute so the (capacity-1) channel never drops.
	for i := 0; i < 5; i++ {
		c.Advance(time.Minute)
		waitFor(t, func() bool { return n.Load() == int32(i+1) })
	}
	tick.Stop()
	c.Advance(time.Hour)
	if n.Load() != 5 {
		t.Fatalf("ticks after Stop: got %d, want 5", n.Load())
	}
	close(done)
}

func TestManualSleepWakesOnAdvance(t *testing.T) {
	c := NewManual(epoch)
	done := make(chan struct{})
	go func() {
		c.Sleep(30 * time.Second)
		close(done)
	}()
	waitForSleeper(c)
	c.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestManualNestedSchedulingWithinAdvance(t *testing.T) {
	c := NewManual(epoch)
	var firedAt []time.Duration
	c.AfterFunc(time.Second, func() {
		firedAt = append(firedAt, c.Since(epoch))
		c.AfterFunc(time.Second, func() {
			firedAt = append(firedAt, c.Since(epoch))
		})
	})
	c.Advance(10 * time.Second)
	if len(firedAt) != 2 || firedAt[0] != time.Second || firedAt[1] != 2*time.Second {
		t.Fatalf("firedAt = %v, want [1s 2s]", firedAt)
	}
}

func TestScaledSpeedsUpTime(t *testing.T) {
	c := NewScaled(epoch, 1000) // 1 virtual second per real millisecond
	start := time.Now()
	c.Sleep(2 * time.Second) // 2ms real
	realElapsed := time.Since(start)
	if realElapsed > 500*time.Millisecond {
		t.Fatalf("scaled sleep of 2s virtual took %v real", realElapsed)
	}
	if got := c.Since(epoch); got < 2*time.Second {
		t.Fatalf("virtual elapsed %v, want >= 2s", got)
	}
}

func TestScaledAfterFunc(t *testing.T) {
	c := NewScaled(epoch, 1000)
	ch := make(chan struct{})
	c.AfterFunc(time.Second, func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("AfterFunc did not fire")
	}
}

func TestScaledTicker(t *testing.T) {
	c := NewScaled(epoch, 1000)
	tk := c.NewTicker(10 * time.Millisecond * 1000 / 1000 * 100) // 1s virtual = 1ms real
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(2 * time.Second):
		t.Fatal("ticker never ticked")
	}
}

func TestScaledPanicsOnNonPositiveSpeedup(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewScaled(epoch, 0)
}

func TestRealClockBasics(t *testing.T) {
	c := NewReal()
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatal("Real.Now is wildly off")
	}
	fired := make(chan struct{})
	tm := c.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("real AfterFunc did not fire")
	}
	tm.Stop()
	tk := c.NewTicker(time.Millisecond)
	select {
	case <-tk.C():
	case <-time.After(time.Second):
		t.Fatal("real ticker did not tick")
	}
	tk.Stop()
}

// waitFor polls cond for up to ~2s of real time.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// waitForSleeper spins until the manual clock has at least one waiter.
func waitForSleeper(c *Manual) {
	for i := 0; i < 2000; i++ {
		c.mu.Lock()
		n := len(c.waiters)
		c.mu.Unlock()
		if n > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
}
