package vtime

import (
	"container/heap"
	"sync"
	"time"
)

// Manual is a Clock that only moves when a test calls Advance or
// AdvanceTo. Sleepers, timers and tickers fire synchronously, in timestamp
// order, during the Advance call, which makes tests of periodic machinery
// (state-exchange loops, site schedulers, timeout paths) deterministic.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     int64 // tie-break so equal deadlines fire in creation order
}

// NewManual returns a manual clock set to start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

type waiter struct {
	at   time.Time
	seq  int64
	fire func(now time.Time)
	// period > 0 makes the waiter re-arm itself (ticker behaviour).
	period  time.Duration
	stopped bool
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Since implements Clock.
func (m *Manual) Since(t time.Time) time.Duration { return m.Now().Sub(t) }

// Sleep implements Clock. It blocks until another goroutine advances the
// clock past the deadline.
func (m *Manual) Sleep(d time.Duration) { <-m.After(d) }

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	m.add(d, 0, func(now time.Time) { ch <- now })
	return ch
}

// AfterFunc implements Clock.
func (m *Manual) AfterFunc(d time.Duration, f func()) Timer {
	w := m.add(d, 0, func(time.Time) { f() })
	return manualTimer{m, w}
}

// NewTicker implements Clock.
func (m *Manual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		//lint:allow nopanic -- constructor argument check, mirrors time.NewTicker's contract
		panic("vtime: ticker period must be positive")
	}
	ch := make(chan time.Time, 1)
	w := m.add(d, d, func(now time.Time) {
		select {
		case ch <- now:
		default:
		}
	})
	return &manualTicker{m: m, w: w, ch: ch}
}

func (m *Manual) add(d, period time.Duration, fire func(time.Time)) *waiter {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	w := &waiter{at: m.now.Add(d), seq: m.seq, fire: fire, period: period}
	heap.Push(&m.waiters, w)
	return w
}

// Advance moves the clock forward by d, firing every due waiter in
// timestamp order. Waiters scheduled by fired callbacks that fall within
// the window fire too.
func (m *Manual) Advance(d time.Duration) {
	m.AdvanceTo(m.Now().Add(d))
}

// AdvanceTo moves the clock to t (no-op if t is in the past).
func (m *Manual) AdvanceTo(t time.Time) {
	for {
		m.mu.Lock()
		if len(m.waiters) == 0 || m.waiters[0].at.After(t) {
			if t.After(m.now) {
				m.now = t
			}
			m.mu.Unlock()
			return
		}
		w := heap.Pop(&m.waiters).(*waiter)
		if w.stopped {
			m.mu.Unlock()
			continue
		}
		if w.at.After(m.now) {
			m.now = w.at
		}
		now := m.now
		if w.period > 0 {
			m.seq++
			w.at = w.at.Add(w.period)
			w.seq = m.seq
			heap.Push(&m.waiters, w)
		} else {
			w.stopped = true // fired; a later Stop must report false
		}
		m.mu.Unlock()
		w.fire(now)
	}
}

type manualTimer struct {
	m *Manual
	w *waiter
}

func (t manualTimer) Stop() bool {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	if t.w.stopped {
		return false // already fired or already stopped
	}
	t.w.stopped = true
	return true
}

type manualTicker struct {
	m  *Manual
	w  *waiter
	ch chan time.Time
}

func (t *manualTicker) C() <-chan time.Time { return t.ch }

func (t *manualTicker) Stop() {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	t.w.stopped = true
}
