package vtime

import "time"

// Scaled is a Clock in which virtual time flows Speedup times faster than
// real time. A Speedup of 200 replays the paper's one-hour PlanetLab
// experiments in 18 real seconds while preserving the relative timing of
// every event: a 30-second client timeout becomes 150 real milliseconds, a
// 3-minute exchange interval becomes 0.9 real seconds, and so on.
//
// Virtual timestamps are anchored at the epoch passed to NewScaled so runs
// are easy to read: Now() == epoch when the clock is created.
type Scaled struct {
	epoch   time.Time // virtual time at creation
	started time.Time // real time at creation
	speedup float64   // virtual seconds per real second
}

// NewScaled returns a clock whose virtual time starts at epoch and runs
// speedup times faster than real time. speedup must be positive.
func NewScaled(epoch time.Time, speedup float64) *Scaled {
	if speedup <= 0 {
		//lint:allow nopanic -- constructor argument check: a non-positive speedup is a programming error
		panic("vtime: speedup must be positive")
	}
	return &Scaled{epoch: epoch, started: time.Now(), speedup: speedup}
}

// Speedup reports the virtual-to-real time ratio.
func (s *Scaled) Speedup() float64 { return s.speedup }

// Now implements Clock.
func (s *Scaled) Now() time.Time {
	real := time.Since(s.started)
	return s.epoch.Add(time.Duration(float64(real) * s.speedup))
}

// real converts a virtual duration to the real duration it occupies.
func (s *Scaled) real(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(float64(d) / s.speedup)
}

// Sleep implements Clock.
func (s *Scaled) Sleep(d time.Duration) { time.Sleep(s.real(d)) }

// After implements Clock.
func (s *Scaled) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	time.AfterFunc(s.real(d), func() { ch <- s.Now() })
	return ch
}

// AfterFunc implements Clock.
func (s *Scaled) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(s.real(d), f)}
}

// NewTicker implements Clock.
func (s *Scaled) NewTicker(d time.Duration) Ticker {
	rt := time.NewTicker(s.real(d))
	st := &scaledTicker{clock: s, real: rt, ch: make(chan time.Time, 1), done: make(chan struct{})}
	go st.loop()
	return st
}

// Since implements Clock.
func (s *Scaled) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

// scaledTicker relabels real ticks with virtual timestamps.
type scaledTicker struct {
	clock *Scaled
	real  *time.Ticker
	ch    chan time.Time
	done  chan struct{}
}

func (t *scaledTicker) loop() {
	for {
		select {
		case <-t.real.C:
			select {
			case t.ch <- t.clock.Now():
			default: // receiver is slow; drop the tick like time.Ticker does
			}
		case <-t.done:
			return
		}
	}
}

func (t *scaledTicker) C() <-chan time.Time { return t.ch }

func (t *scaledTicker) Stop() {
	t.real.Stop()
	select {
	case <-t.done:
	default:
		close(t.done)
	}
}
