package tsdb

import (
	"sync"
	"time"

	"digruber/internal/vtime"
)

// Sampler drives a registry's sampling off a virtual-clock ticker: one
// Sample per interval of virtual time, stamped with the clock's Now.
// Start and Stop are idempotent; a stopped sampler can be started
// again.
type Sampler struct {
	reg      *Registry
	clock    vtime.Clock
	interval time.Duration

	mu     sync.Mutex
	ticker vtime.Ticker
	done   chan struct{}
}

// NewSampler returns a sampler recording reg every interval of clock
// time (<= 0 defaults to one minute).
func NewSampler(reg *Registry, clock vtime.Clock, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = time.Minute
	}
	return &Sampler{reg: reg, clock: clock, interval: interval}
}

// Start begins periodic sampling; it is a no-op if already started or
// if the sampler has no registry or clock.
func (s *Sampler) Start() {
	if s == nil || s.reg == nil || s.clock == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done != nil {
		return
	}
	s.done = make(chan struct{})
	s.ticker = s.clock.NewTicker(s.interval)
	go s.loop(s.ticker, s.done)
}

func (s *Sampler) loop(ticker vtime.Ticker, done chan struct{}) {
	for {
		select {
		case <-ticker.C():
			s.SampleNow()
		case <-done:
			return
		}
	}
}

// SampleNow records one sample immediately at the clock's current time.
func (s *Sampler) SampleNow() {
	if s == nil || s.reg == nil || s.clock == nil {
		return
	}
	s.reg.Sample(s.clock.Now())
}

// Stop ends periodic sampling. Idempotent; Start may follow.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done == nil {
		return
	}
	s.ticker.Stop()
	close(s.done)
	s.done = nil
	s.ticker = nil
}
