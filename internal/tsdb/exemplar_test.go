package tsdb

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

var exEpoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)

// TestHistogramExemplarWorstWins: a bucket's exemplar tracks the worst
// (largest) traced observation that landed in it, and untraced
// observations never set or clobber one.
func TestHistogramExemplarWorstWins(t *testing.T) {
	h := newHistogram("ex", []float64{1, 5, 10})

	h.Observe(0.5) // untraced: counts, no exemplar
	if ex := h.Exemplars(); ex[0].Valid() {
		t.Fatalf("untraced observation set an exemplar: %+v", ex[0])
	}

	h.ObserveTrace(2.0, 101, exEpoch)
	h.ObserveTrace(4.5, 102, exEpoch.Add(time.Minute))
	h.ObserveTrace(3.0, 103, exEpoch.Add(2*time.Minute))
	ex := h.Exemplars()
	// 2.0, 4.5 and 3.0 all land in the (1,5] bucket (index 1); unless a
	// 1/8 eviction draw fired for the 3.0 sample, the 4.5 holds the slot.
	got := ex[1]
	if !got.Valid() {
		t.Fatal("traced observations left no exemplar")
	}
	if got.Trace != 102 && got.Trace != 103 {
		t.Fatalf("bucket exemplar trace = %d, want the worst (102) or an evicted-in 103", got.Trace)
	}
	if got.Trace == 102 && got.V != 4.5 {
		t.Fatalf("exemplar value = %v, want 4.5", got.V)
	}

	// Worst-wins is unconditional: an equal-or-larger sample always takes
	// the slot regardless of eviction draws.
	h.ObserveTrace(4.9, 104, exEpoch.Add(3*time.Minute))
	if got := h.Exemplars()[1]; got.Trace != 104 || got.V != 4.9 {
		t.Fatalf("worse sample did not take the slot: %+v", got)
	}

	// Untraced traffic afterwards leaves it alone.
	for i := 0; i < 100; i++ {
		h.Observe(4.99)
	}
	if got := h.Exemplars()[1]; got.Trace != 104 {
		t.Fatalf("untraced traffic clobbered the exemplar: %+v", got)
	}

	var nilH *Histogram
	nilH.ObserveTrace(1, 1, exEpoch) // nil-off
	if nilH.Exemplars() != nil {
		t.Fatal("nil histogram returned exemplars")
	}
}

// TestHistogramExemplarSeededEviction: a not-worse traced sample
// eventually replaces a held exemplar via the seeded 1/8 eviction draw,
// and the draw sequence is deterministic per histogram name.
func TestHistogramExemplarSeededEviction(t *testing.T) {
	run := func() uint64 {
		h := newHistogram("evict", []float64{10})
		h.ObserveTrace(9.9, 1, exEpoch) // extreme outlier holds the slot
		for i := 0; i < 64; i++ {
			h.ObserveTrace(1.0, uint64(100+i), exEpoch.Add(time.Duration(i)*time.Second))
			if got := h.Exemplars()[0]; got.Trace != 1 {
				return got.Trace
			}
		}
		return 0
	}
	first := run()
	if first == 0 {
		t.Fatal("64 not-worse samples never evicted the outlier (expected ~1/8 rate)")
	}
	if again := run(); again != first {
		t.Fatalf("eviction not deterministic: first run evicted at trace %d, second at %d", first, again)
	}
}

// TestHistogramExemplarSurvivesRotation: window rotation (registry
// Sample) resets bucket counts but keeps exemplars, so the spike a
// sample just exposed is still drillable after the rotation.
func TestHistogramExemplarSurvivesRotation(t *testing.T) {
	r := New(0)
	h := r.Histogram("lat", []float64{1, 5})
	h.ObserveTrace(3.0, 77, exEpoch)
	r.Sample(exEpoch.Add(time.Minute))

	if p, ok := r.Latest("lat/le/5"); !ok || p.V != 1 {
		t.Fatalf("window bucket count = %+v, want 1", p)
	}
	ex := r.Exemplars("lat")
	if len(ex) != 3 || ex[1].Trace != 77 {
		t.Fatalf("exemplar lost across rotation: %+v", ex)
	}
	// Second rotation with no traffic: counts go to zero, exemplar stays.
	r.Sample(exEpoch.Add(2 * time.Minute))
	if p, _ := r.Latest("lat/le/5"); p.V != 0 {
		t.Fatalf("second window bucket count = %v, want 0", p.V)
	}
	if got := r.Exemplars("lat")[1]; got.Trace != 77 {
		t.Fatalf("exemplar lost on quiet rotation: %+v", got)
	}
}

// TestRegistryExemplarAccessors: Exemplars/HistogramBounds answer nil
// for unknown or non-histogram names and on a nil registry.
func TestRegistryExemplarAccessors(t *testing.T) {
	r := New(0)
	r.Gauge("g").Set(1)
	if r.Exemplars("g") != nil || r.Exemplars("missing") != nil {
		t.Fatal("non-histogram name returned exemplars")
	}
	if r.HistogramBounds("g") != nil {
		t.Fatal("non-histogram name returned bounds")
	}
	h := r.Histogram("h", []float64{1, 2})
	if want := h.Bounds(); !reflect.DeepEqual(r.HistogramBounds("h"), want) {
		t.Fatalf("bounds mismatch: %v vs %v", r.HistogramBounds("h"), want)
	}
	var nilR *Registry
	if nilR.Exemplars("x") != nil || nilR.HistogramBounds("x") != nil {
		t.Fatal("nil registry returned data")
	}
}

// TestHistogramExemplarConcurrentRotation hammers exemplar capture from
// many goroutines while the registry rotates the window underneath —
// the CI race step runs this with -race -count=4. The assertion is
// consistency, not a particular winner: every retained exemplar must be
// one that was actually observed, with its own value and timestamp.
func TestHistogramExemplarConcurrentRotation(t *testing.T) {
	r := New(0)
	h := r.Histogram("race", []float64{0.5, 1, 2})

	const workers, perWorker = 8, 500
	var rotators, observers sync.WaitGroup
	stop := make(chan struct{})
	rotators.Add(1)
	go func() {
		defer rotators.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.Sample(exEpoch.Add(time.Duration(i) * time.Second))
			i++
		}
	}()
	for w := 0; w < workers; w++ {
		observers.Add(1)
		go func(w int) {
			defer observers.Done()
			for i := 0; i < perWorker; i++ {
				id := uint64(w*perWorker + i + 1)
				v := float64(id%40) / 10.0
				h.ObserveTrace(v, id, exEpoch.Add(time.Duration(i)*time.Millisecond))
				if i%16 == 0 {
					h.Exemplars() // concurrent reads too
				}
			}
		}(w)
	}
	observers.Wait()
	close(stop)
	rotators.Wait()

	total := 0.0
	for _, name := range []string{"race/le/0.5", "race/le/1", "race/le/2", "race/le/inf"} {
		for _, p := range r.Points(name) {
			total += p.V
		}
	}
	// Everything not yet rotated is still in the live window.
	_, _, live := h.takeWindow()
	if int(total)+int(live) != workers*perWorker {
		t.Fatalf("observations lost under rotation: %v sampled + %d live, want %d", total, live, workers*perWorker)
	}
	for b, ex := range h.Exemplars() {
		if !ex.Valid() {
			continue
		}
		if ex.Trace == 0 || ex.Trace > workers*perWorker {
			t.Fatalf("bucket %d holds an exemplar that was never observed: %+v", b, ex)
		}
		if want := float64(ex.Trace%40) / 10.0; ex.V != want {
			t.Fatalf("bucket %d exemplar value %v does not match its trace %d (want %v) — torn write", b, ex.V, ex.Trace, want)
		}
	}
}
