// Package tsdb is the reproduction's deterministic metrics plane: a
// registry of counters, gauges and windowed histograms, sampled on
// virtual-clock ticks into bounded ring-buffer time series.
//
// It plays the monitoring role the paper delegates to MonALISA and the
// Grid Catalog, but under the repo's determinism rules: every timestamp
// comes from a vtime.Clock (never the wall clock), sampling order is
// the sorted metric-name order, and exports are sorted — so the same
// seeded run under a Manual clock produces byte-identical JSONL, the
// same guarantee the trace package gives for spans.
//
// Like trace, the whole plane is nil-safe: a nil *Registry (metrics
// disabled) accepts every call as a no-op, and the instruments it hands
// out are nil pointers whose methods are no-ops, so instrumented code
// pays one nil check and nothing else when metrics are off.
package tsdb

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSeriesLimit bounds each series' ring buffer when the registry
// is built with no explicit limit: a bench-scale run sampling every
// virtual minute emits tens of points per series, and even a full-scale
// multi-hour run stays well under 8k samples.
const DefaultSeriesLimit = 1 << 13

// Point is one sample of one series: a virtual-time timestamp and a
// value.
type Point struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// Counter is a monotonically-increasing count. Sampling records the
// cumulative value; use Rate to turn the series into per-second rates.
// A nil *Counter ignores every call.
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by d (negative deltas are ignored: a
// counter only goes up).
func (c *Counter) Add(d int64) {
	if c == nil || d < 0 {
		return
	}
	c.v.Add(d)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current cumulative count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. A nil *Gauge ignores every
// call.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// metricKind tags what a registered name refers to.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// Registry holds named instruments and their sampled series. Build one
// per run with New; a nil *Registry disables the whole plane at zero
// cost.
type Registry struct {
	// sampleMu serializes whole Sample calls so concurrent samplers
	// cannot interleave their appends.
	sampleMu sync.Mutex

	mu       sync.Mutex
	limit    int
	kinds    map[string]metricKind
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func(now time.Time) float64
	hists    map[string]*Histogram
	names    []string // sorted instrument names, the sampling order
	series   map[string]*series
	samples  int
}

// New returns a registry whose series each hold at most limit points
// (<= 0 uses DefaultSeriesLimit); once full, the oldest points are
// overwritten and counted as dropped.
func New(limit int) *Registry {
	if limit <= 0 {
		limit = DefaultSeriesLimit
	}
	return &Registry{
		limit:    limit,
		kinds:    make(map[string]metricKind),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func(time.Time) float64),
		hists:    make(map[string]*Histogram),
		series:   make(map[string]*series),
	}
}

// registerLocked claims name for kind. It returns false when the name
// is already taken by a different kind — the caller then hands back a
// detached instrument (usable, never sampled) instead of panicking.
// Caller holds r.mu.
func (r *Registry) registerLocked(name string, kind metricKind) (fresh, ok bool) {
	if existing, taken := r.kinds[name]; taken {
		return false, existing == kind
	}
	r.kinds[name] = kind
	i := sort.SearchStrings(r.names, name)
	r.names = append(r.names, "")
	copy(r.names[i+1:], r.names[i:])
	r.names[i] = name
	return true, true
}

// Counter returns the counter registered under name, creating it on
// first use. If the name is already a different kind, a detached
// counter is returned: it works but is never sampled.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fresh, ok := r.registerLocked(name, kindCounter)
	if !ok {
		return &Counter{}
	}
	if fresh {
		r.counters[name] = &Counter{}
	}
	return r.counters[name]
}

// Gauge returns the settable gauge registered under name, creating it
// on first use (detached on a kind collision, as with Counter).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fresh, ok := r.registerLocked(name, kindGauge)
	if !ok {
		return &Gauge{}
	}
	if fresh {
		r.gauges[name] = &Gauge{}
	}
	return r.gauges[name]
}

// GaugeFunc registers a callback evaluated at every sample tick with
// the sample's virtual timestamp. The callback must be deterministic
// given the virtual time, must not call back into the registry, and
// should be cheap — it runs on the sampler's goroutine. Re-registering
// an existing name replaces the callback; a kind collision is ignored.
func (r *Registry) GaugeFunc(name string, fn func(now time.Time) float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.registerLocked(name, kindGaugeFunc); !ok {
		return
	}
	r.gaugeFns[name] = fn
}

// Histogram returns the windowed histogram registered under name,
// creating it with the given bucket upper bounds on first use. Bounds
// are sanitized (sorted, deduplicated, non-finite dropped; empty falls
// back to DefBuckets) so the layout is always fixed and valid. On a
// kind collision a detached histogram is returned.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fresh, ok := r.registerLocked(name, kindHistogram)
	if !ok {
		return newHistogram(name, bounds)
	}
	if fresh {
		r.hists[name] = newHistogram(name, bounds)
	}
	return r.hists[name]
}

// Exemplars returns the named histogram's per-bucket exemplars (see
// Histogram.Exemplars), or nil when the name is not a histogram.
func (r *Registry) Exemplars(name string) []Exemplar {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	h := r.hists[name]
	r.mu.Unlock()
	return h.Exemplars()
}

// HistogramBounds returns the named histogram's bucket upper bounds, or
// nil when the name is not a histogram.
func (r *Registry) HistogramBounds(name string) []float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	h := r.hists[name]
	r.mu.Unlock()
	return h.Bounds()
}

// sampleOp is one instrument's slot in a sampling pass.
type sampleOp struct {
	name    string
	kind    metricKind
	counter *Counter
	gauge   *Gauge
	fn      func(time.Time) float64
	hist    *Histogram
}

// Sample records one point per instrument at the given virtual time:
// counters their cumulative count, gauges their current value, gauge
// funcs their evaluation at now, and histograms their window since the
// previous sample (per-bucket counts plus /count and /sum, after which
// the window resets). Instruments are visited in sorted-name order, so
// a deterministic run appends deterministically.
func (r *Registry) Sample(now time.Time) {
	if r == nil {
		return
	}
	r.sampleMu.Lock()
	defer r.sampleMu.Unlock()

	r.mu.Lock()
	ops := make([]sampleOp, 0, len(r.names))
	for _, name := range r.names {
		op := sampleOp{name: name, kind: r.kinds[name]}
		switch op.kind {
		case kindCounter:
			op.counter = r.counters[name]
		case kindGauge:
			op.gauge = r.gauges[name]
		case kindGaugeFunc:
			op.fn = r.gaugeFns[name]
		case kindHistogram:
			op.hist = r.hists[name]
		}
		ops = append(ops, op)
	}
	r.mu.Unlock()

	// Evaluate outside the registry lock: gauge funcs reach into other
	// subsystems (and their locks) and must never nest under r.mu.
	type sampled struct {
		name string
		v    float64
	}
	out := make([]sampled, 0, len(ops))
	for _, op := range ops {
		switch op.kind {
		case kindCounter:
			out = append(out, sampled{op.name, float64(op.counter.Value())})
		case kindGauge:
			out = append(out, sampled{op.name, op.gauge.Value()})
		case kindGaugeFunc:
			out = append(out, sampled{op.name, op.fn(now)})
		case kindHistogram:
			counts, sum, n := op.hist.takeWindow()
			for i, b := range op.hist.Bounds() {
				out = append(out, sampled{op.name + "/le/" + bucketLabel(b), float64(counts[i])})
			}
			out = append(out, sampled{op.name + "/le/inf", float64(counts[len(counts)-1])})
			out = append(out, sampled{op.name + "/count", float64(n)})
			out = append(out, sampled{op.name + "/sum", sum})
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range out {
		v := s.v
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0 // keep every exported point JSON-encodable
		}
		sr, ok := r.series[s.name]
		if !ok {
			sr = &series{name: s.name, limit: r.limit}
			r.series[s.name] = sr
		}
		sr.add(Point{T: now, V: v})
	}
	r.samples++
}

// Samples reports how many sampling passes have run.
func (r *Registry) Samples() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samples
}
