package tsdb

import (
	"math"
	"testing"
	"time"
)

func TestWindowRate(t *testing.T) {
	r := New(0)
	c := r.Counter("jobs")
	t0 := time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		c.Add(60) // 1/s at one sample per minute
		r.Sample(t0.Add(time.Duration(i) * time.Minute))
	}
	now := t0.Add(4 * time.Minute)

	// Full window: (300-60)/240s = 1/s.
	if got := r.WindowRate("jobs", now, 4*time.Minute); got != 1 {
		t.Fatalf("WindowRate full = %v, want 1", got)
	}
	// Narrow window sees only the last two points: still 1/s.
	if got := r.WindowRate("jobs", now, time.Minute); got != 1 {
		t.Fatalf("WindowRate narrow = %v, want 1", got)
	}
	// A window holding fewer than two points has no rate evidence.
	if got := r.WindowRate("jobs", now, 30*time.Second); got != 0 {
		t.Fatalf("WindowRate single-point = %v, want 0", got)
	}
	if got := r.WindowRate("missing", now, time.Minute); got != 0 {
		t.Fatalf("WindowRate missing series = %v, want 0", got)
	}
}

func TestWindowRateClampsCounterReset(t *testing.T) {
	r := New(0)
	g := r.Gauge("restarting")
	t0 := time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)
	g.Set(100)
	r.Sample(t0)
	g.Set(5) // a restart: the cumulative value fell
	r.Sample(t0.Add(time.Minute))
	if got := r.WindowRate("restarting", t0.Add(time.Minute), 2*time.Minute); got != 0 {
		t.Fatalf("rate across a reset = %v, want clamped 0", got)
	}
}

func TestWindowMeanAndMax(t *testing.T) {
	r := New(0)
	g := r.Gauge("queue")
	t0 := time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)
	for i, v := range []float64{2, 4, 12, 6} {
		g.Set(v)
		r.Sample(t0.Add(time.Duration(i) * time.Minute))
	}
	now := t0.Add(3 * time.Minute)

	if got := r.WindowMean("queue", now, 3*time.Minute); got != 6 {
		t.Fatalf("WindowMean = %v, want 6", got)
	}
	// Trailing window excludes the early samples.
	if got := r.WindowMean("queue", now, time.Minute); got != 9 {
		t.Fatalf("WindowMean narrow = %v, want 9", got)
	}
	if got := r.WindowMax("queue", now, 3*time.Minute); got != 12 {
		t.Fatalf("WindowMax = %v, want 12", got)
	}
	if got := r.WindowMax("queue", now, 30*time.Second); got != 6 {
		t.Fatalf("WindowMax narrow = %v, want 6", got)
	}
	if got := r.WindowMean("missing", now, time.Minute); got != 0 {
		t.Fatalf("WindowMean missing = %v, want 0", got)
	}
}

// TestWindowRateResetAtBoundary pins the clamp's interaction with the
// window edge: a reset sitting exactly on the inclusive boundary sample
// clamps the whole window to 0, while a window starting one sample
// later never sees the reset and reads the clean post-restart rate.
func TestWindowRateResetAtBoundary(t *testing.T) {
	r := New(0)
	g := r.Gauge("reset")
	t0 := time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)
	for i, v := range []float64{100, 5, 65, 125} { // restart between samples 0 and 1
		g.Set(v)
		r.Sample(t0.Add(time.Duration(i) * time.Minute))
	}
	now := t0.Add(3 * time.Minute)

	// Window boundary exactly on the pre-reset sample (Range is
	// inclusive): first=100 > last=125 is fine, but a tighter window
	// landing on the reset pair must clamp.
	if got := r.WindowRate("reset", now, 3*time.Minute); got != 25.0/180 {
		t.Fatalf("WindowRate spanning reset = %v, want %v", got, 25.0/180)
	}
	// Boundary exactly on the post-reset sample: the reset is outside,
	// the recovery rate (125-5)/120s = 1/s reads clean.
	if got := r.WindowRate("reset", now, 2*time.Minute); got != 1 {
		t.Fatalf("WindowRate post-reset = %v, want 1", got)
	}
	// A window whose endpoints straddle only the falling edge clamps to
	// 0 rather than going negative.
	if got := r.WindowRate("reset", t0.Add(time.Minute), time.Minute); got != 0 {
		t.Fatalf("WindowRate across falling edge = %v, want 0", got)
	}
}

// TestWindowStatsEmptyAndSingle: registered-but-never-sampled and
// single-sample series are the controller's cold-start inputs; all
// three window statistics must read 0 or the lone value, never panic
// or NaN.
func TestWindowStatsEmptyAndSingle(t *testing.T) {
	r := New(0)
	g := r.Gauge("cold")
	t0 := time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)

	// Registered, never sampled.
	if got := r.WindowMean("cold", t0, time.Minute); got != 0 {
		t.Fatalf("WindowMean empty = %v, want 0", got)
	}
	if got := r.WindowMax("cold", t0, time.Minute); got != 0 {
		t.Fatalf("WindowMax empty = %v, want 0", got)
	}
	if got := r.WindowRate("cold", t0, time.Minute); got != 0 {
		t.Fatalf("WindowRate empty = %v, want 0", got)
	}

	// Exactly one sample in the window.
	g.Set(7)
	r.Sample(t0)
	if got := r.WindowMean("cold", t0, time.Minute); got != 7 {
		t.Fatalf("WindowMean single = %v, want 7", got)
	}
	if got := r.WindowMax("cold", t0, time.Minute); got != 7 {
		t.Fatalf("WindowMax single = %v, want 7", got)
	}
	if got := r.WindowRate("cold", t0, time.Minute); got != 0 {
		t.Fatalf("WindowRate single = %v, want 0 (no rate evidence)", got)
	}
	// A window that excludes the lone sample is empty again.
	if got := r.WindowMax("cold", t0.Add(2*time.Minute), time.Minute); got != 0 {
		t.Fatalf("WindowMax excluded = %v, want 0", got)
	}
}

// TestAlignWithGaps: a series registered mid-run joins on the union of
// timestamps with NaN filling the samples it missed — the exact shape
// the SLO attainment join must tolerate when a histogram bucket series
// appears after traffic starts.
func TestAlignWithGaps(t *testing.T) {
	r := New(0)
	a := r.Gauge("a")
	t0 := time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)
	a.Set(1)
	r.Sample(t0)
	a.Set(2)
	r.Sample(t0.Add(time.Minute))
	b := r.Gauge("b") // appears mid-run
	a.Set(3)
	b.Set(30)
	r.Sample(t0.Add(2 * time.Minute))

	f := r.Align("a", "b")
	if len(f.Times) != 3 {
		t.Fatalf("aligned %d stamps, want 3", len(f.Times))
	}
	for i, want := range []float64{1, 2, 3} {
		if f.Values["a"][i] != want {
			t.Fatalf("a[%d] = %v, want %v", i, f.Values["a"][i], want)
		}
	}
	if !math.IsNaN(f.Values["b"][0]) || !math.IsNaN(f.Values["b"][1]) {
		t.Fatalf("b's missing samples = %v, %v, want NaN", f.Values["b"][0], f.Values["b"][1])
	}
	if f.Values["b"][2] != 30 {
		t.Fatalf("b[2] = %v, want 30", f.Values["b"][2])
	}
}
