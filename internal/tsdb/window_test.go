package tsdb

import (
	"testing"
	"time"
)

func TestWindowRate(t *testing.T) {
	r := New(0)
	c := r.Counter("jobs")
	t0 := time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		c.Add(60) // 1/s at one sample per minute
		r.Sample(t0.Add(time.Duration(i) * time.Minute))
	}
	now := t0.Add(4 * time.Minute)

	// Full window: (300-60)/240s = 1/s.
	if got := r.WindowRate("jobs", now, 4*time.Minute); got != 1 {
		t.Fatalf("WindowRate full = %v, want 1", got)
	}
	// Narrow window sees only the last two points: still 1/s.
	if got := r.WindowRate("jobs", now, time.Minute); got != 1 {
		t.Fatalf("WindowRate narrow = %v, want 1", got)
	}
	// A window holding fewer than two points has no rate evidence.
	if got := r.WindowRate("jobs", now, 30*time.Second); got != 0 {
		t.Fatalf("WindowRate single-point = %v, want 0", got)
	}
	if got := r.WindowRate("missing", now, time.Minute); got != 0 {
		t.Fatalf("WindowRate missing series = %v, want 0", got)
	}
}

func TestWindowRateClampsCounterReset(t *testing.T) {
	r := New(0)
	g := r.Gauge("restarting")
	t0 := time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)
	g.Set(100)
	r.Sample(t0)
	g.Set(5) // a restart: the cumulative value fell
	r.Sample(t0.Add(time.Minute))
	if got := r.WindowRate("restarting", t0.Add(time.Minute), 2*time.Minute); got != 0 {
		t.Fatalf("rate across a reset = %v, want clamped 0", got)
	}
}

func TestWindowMeanAndMax(t *testing.T) {
	r := New(0)
	g := r.Gauge("queue")
	t0 := time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)
	for i, v := range []float64{2, 4, 12, 6} {
		g.Set(v)
		r.Sample(t0.Add(time.Duration(i) * time.Minute))
	}
	now := t0.Add(3 * time.Minute)

	if got := r.WindowMean("queue", now, 3*time.Minute); got != 6 {
		t.Fatalf("WindowMean = %v, want 6", got)
	}
	// Trailing window excludes the early samples.
	if got := r.WindowMean("queue", now, time.Minute); got != 9 {
		t.Fatalf("WindowMean narrow = %v, want 9", got)
	}
	if got := r.WindowMax("queue", now, 3*time.Minute); got != 12 {
		t.Fatalf("WindowMax = %v, want 12", got)
	}
	if got := r.WindowMax("queue", now, 30*time.Second); got != 6 {
		t.Fatalf("WindowMax narrow = %v, want 6", got)
	}
	if got := r.WindowMean("missing", now, time.Minute); got != 0 {
		t.Fatalf("WindowMean missing = %v, want 0", got)
	}
}
