package tsdb

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"time"

	"digruber/internal/vtime"
)

var epoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)

func at(s int) time.Time { return epoch.Add(time.Duration(s) * time.Second) }

func TestCounterAndGaugeSampling(t *testing.T) {
	r := New(0)
	c := r.Counter("reqs")
	g := r.Gauge("depth")

	c.Add(3)
	g.Set(7.5)
	r.Sample(at(1))
	c.Inc()
	g.Set(2)
	r.Sample(at(2))

	want := map[string][]Point{
		"reqs":  {{at(1), 3}, {at(2), 4}},
		"depth": {{at(1), 7.5}, {at(2), 2}},
	}
	for name, pts := range want {
		got := r.Points(name)
		if len(got) != len(pts) {
			t.Fatalf("%s: got %d points, want %d", name, len(got), len(pts))
		}
		for i := range pts {
			if !got[i].T.Equal(pts[i].T) || got[i].V != pts[i].V {
				t.Errorf("%s[%d] = %+v, want %+v", name, i, got[i], pts[i])
			}
		}
	}
	if r.Samples() != 2 {
		t.Errorf("Samples() = %d, want 2", r.Samples())
	}
	// Counters never go down.
	c.Add(-5)
	if c.Value() != 4 {
		t.Errorf("counter after negative Add = %d, want 4", c.Value())
	}
}

func TestGaugeFuncSeesSampleTime(t *testing.T) {
	r := New(0)
	r.GaugeFunc("age_s", func(now time.Time) float64 { return now.Sub(epoch).Seconds() })
	r.Sample(at(10))
	r.Sample(at(25))
	pts := r.Points("age_s")
	if len(pts) != 2 || pts[0].V != 10 || pts[1].V != 25 {
		t.Fatalf("gauge func points = %+v, want values 10, 25", pts)
	}
}

func TestNilRegistryAndInstrumentsAreSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("y").Set(2)
	r.GaugeFunc("z", func(time.Time) float64 { return 1 })
	r.Histogram("h", nil).Observe(1)
	r.Sample(at(1))
	if r.Samples() != 0 || r.SeriesNames() != nil || r.Points("x") != nil || r.Export() != nil {
		t.Fatal("nil registry leaked state")
	}
	if _, ok := r.Latest("x"); ok {
		t.Fatal("nil registry has a latest point")
	}
	if got := r.LatestByPrefix(""); got != nil {
		t.Fatalf("nil registry LatestByPrefix = %v", got)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry JSONL: err=%v len=%d", err, buf.Len())
	}
}

func TestKindCollisionReturnsDetached(t *testing.T) {
	r := New(0)
	c := r.Counter("m")
	d := r.Counter("m")
	if c != d {
		t.Fatal("same-kind re-registration should return the same counter")
	}
	g := r.Gauge("m") // wrong kind: detached
	g.Set(99)
	c.Add(1)
	r.Sample(at(1))
	if p, _ := r.Latest("m"); p.V != 1 {
		t.Fatalf("collision leaked into series: latest = %v, want 1 (counter)", p.V)
	}
}

func TestRingBoundDropsOldest(t *testing.T) {
	r := New(3)
	c := r.Counter("c")
	for i := 1; i <= 5; i++ {
		c.Inc()
		r.Sample(at(i))
	}
	pts := r.Points("c")
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	for i, want := range []float64{3, 4, 5} {
		if pts[i].V != want {
			t.Errorf("pts[%d].V = %v, want %v", i, pts[i].V, want)
		}
	}
	dumps := r.Export()
	if len(dumps) != 1 || dumps[0].Dropped != 2 {
		t.Fatalf("export = %+v, want 1 series with 2 dropped", dumps)
	}
}

func TestHistogramWindowsReset(t *testing.T) {
	r := New(0)
	h := r.Histogram("lat", []float64{1, 5})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(100)
	r.Sample(at(1))
	// Second window: empty.
	r.Sample(at(2))

	checks := map[string][]float64{
		"lat/le/1":   {1, 0},
		"lat/le/5":   {1, 0},
		"lat/le/inf": {1, 0},
		"lat/count":  {3, 0},
		"lat/sum":    {103.5, 0},
	}
	for name, want := range checks {
		pts := r.Points(name)
		if len(pts) != 2 || pts[0].V != want[0] || pts[1].V != want[1] {
			t.Errorf("%s = %+v, want values %v", name, pts, want)
		}
	}
}

func TestHistogramBoundsSanitized(t *testing.T) {
	r := New(0)
	h := r.Histogram("h", []float64{5, 1, 5, 1})
	if b := h.Bounds(); len(b) != 2 || b[0] != 1 || b[1] != 5 {
		t.Fatalf("bounds = %v, want [1 5]", b)
	}
	if b := newHistogram("t", nil).Bounds(); len(b) != len(DefBuckets) {
		t.Fatalf("empty bounds should fall back to DefBuckets, got %v", b)
	}
}

func TestJSONLDeterministicAndRoundTrips(t *testing.T) {
	build := func() *Registry {
		r := New(0)
		c := r.Counter("b/reqs")
		g := r.Gauge("a/depth")
		h := r.Histogram("c/lat", []float64{1})
		for i := 1; i <= 4; i++ {
			c.Add(int64(i))
			g.Set(float64(10 - i))
			h.Observe(float64(i))
			r.Sample(at(i))
		}
		return r
	}
	var buf1, buf2 bytes.Buffer
	if err := build().WriteJSONL(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.Len() == 0 {
		t.Fatal("empty JSONL export")
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("identical runs produced different JSONL bytes")
	}

	pts, err := ReadJSONL(&buf1)
	if err != nil {
		t.Fatal(err)
	}
	want := build().Flatten("")
	if len(pts) != len(want) {
		t.Fatalf("round trip: %d points, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i].Series != want[i].Series || !pts[i].T.Equal(want[i].T) || pts[i].V != want[i].V {
			t.Fatalf("round trip[%d] = %+v, want %+v", i, pts[i], want[i])
		}
	}
	// Sorted by series name: a/* before b/* before c/*.
	if pts[0].Series != "a/depth" {
		t.Errorf("first series = %s, want a/depth", pts[0].Series)
	}
}

func TestSamplerOnManualClock(t *testing.T) {
	clock := vtime.NewManual(epoch)
	r := New(0)
	c := r.Counter("ticks")
	s := NewSampler(r, clock, time.Minute)
	s.Start()
	s.Start() // idempotent
	defer s.Stop()

	c.Inc()
	clock.Advance(time.Minute)
	waitFor(t, func() bool { return r.Samples() >= 1 })
	c.Inc()
	clock.Advance(time.Minute)
	waitFor(t, func() bool { return r.Samples() >= 2 })

	pts := r.Points("ticks")
	if len(pts) < 2 || pts[0].V != 1 || pts[1].V != 2 {
		t.Fatalf("sampled points = %+v, want 1 then 2", pts)
	}
	if !pts[0].T.Equal(epoch.Add(time.Minute)) {
		t.Errorf("first sample at %v, want %v (virtual time)", pts[0].T, epoch.Add(time.Minute))
	}
	s.Stop()
	s.Stop() // idempotent
	// Restartable.
	s.Start()
	clock.Advance(time.Minute)
	waitFor(t, func() bool { return r.Samples() >= 3 })
	s.Stop()
}

func TestConcurrentInstrumentsUnderSampling(t *testing.T) {
	r := New(0)
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 2})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 3))
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		r.Sample(at(i))
	}
	wg.Wait()
	r.Sample(at(100))
	if p, _ := r.Latest("c"); p.V != 2000 {
		t.Fatalf("final counter sample = %v, want 2000", p.V)
	}
	// All histogram windows must add up to every observation exactly once.
	total := 0.0
	for _, p := range r.Points("h/count") {
		total += p.V
	}
	if total != 2000 {
		t.Fatalf("histogram windows sum to %v observations, want 2000", total)
	}
}

func TestQueryHelpers(t *testing.T) {
	r := New(0)
	c := r.Counter("dp/a/reqs")
	g := r.Gauge("dp/b/depth")
	for i := 1; i <= 3; i++ {
		c.Add(10)
		g.Set(float64(i))
		r.Sample(at(i * 10))
	}

	if got := r.Range("dp/a/reqs", at(15), at(30)); len(got) != 2 {
		t.Errorf("Range returned %d points, want 2", len(got))
	}
	lv := r.LatestByPrefix("dp/a/")
	if len(lv) != 1 || lv[0].Name != "dp/a/reqs" || lv[0].V != 30 {
		t.Errorf("LatestByPrefix = %+v", lv)
	}

	f := r.Align("dp/a/reqs", "dp/b/depth", "missing")
	if len(f.Times) != 3 {
		t.Fatalf("aligned %d timestamps, want 3", len(f.Times))
	}
	if f.Values["dp/a/reqs"][2] != 30 || f.Values["dp/b/depth"][0] != 1 {
		t.Errorf("aligned values wrong: %+v", f.Values)
	}
	for _, v := range f.Values["missing"] {
		if !math.IsNaN(v) {
			t.Fatalf("missing series should align to NaN, got %v", v)
		}
	}

	rates := Rate(r.Points("dp/a/reqs"))
	if len(rates) != 2 || rates[0].V != 1 || rates[1].V != 1 {
		t.Errorf("Rate = %+v, want two points of 1/s", rates)
	}
	if m := Mean(r.Points("dp/b/depth")); m != 2 {
		t.Errorf("Mean = %v, want 2", m)
	}
	if m := Max(r.Points("dp/b/depth")); m != 3 {
		t.Errorf("Max = %v, want 3", m)
	}
	// Counter reset clamps to zero rate, not negative.
	reset := Rate([]Point{{at(1), 10}, {at(2), 3}})
	if len(reset) != 1 || reset[0].V != 0 {
		t.Errorf("Rate across reset = %+v, want one 0 point", reset)
	}
}

// waitFor busy-waits (with a real deadline) for an asynchronous
// condition driven by a virtual-clock goroutine.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
