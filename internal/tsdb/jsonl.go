package tsdb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// SeriesPoint is one line of the JSONL interchange format: a series
// name plus one point. Lines are emitted sorted by series name, then
// in time order within a series, so a deterministic run writes a
// byte-identical file.
type SeriesPoint struct {
	Series string `json:"series"`
	Point
}

// WriteJSONL streams every retained point of every series to w, one
// JSON object per line, in deterministic (series, time) order.
func (r *Registry) WriteJSONL(w io.Writer) error {
	return WritePoints(w, r.Flatten(""))
}

// Flatten returns every retained point as prefixed SeriesPoint lines in
// deterministic (series, time) order. The prefix is prepended to each
// series name — experiments use it to tag multiple runs into one file.
func (r *Registry) Flatten(prefix string) []SeriesPoint {
	dumps := r.Export()
	n := 0
	for _, d := range dumps {
		n += len(d.Points)
	}
	out := make([]SeriesPoint, 0, n)
	for _, d := range dumps {
		for _, p := range d.Points {
			out = append(out, SeriesPoint{Series: prefix + d.Name, Point: p})
		}
	}
	return out
}

// WritePoints streams pre-flattened series points to w as JSONL.
func WritePoints(w io.Writer, pts []SeriesPoint) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, p := range pts {
		if err := enc.Encode(p); err != nil {
			return fmt.Errorf("tsdb: write jsonl: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses points written by WriteJSONL/WritePoints. Blank
// lines are skipped; any malformed line is an error.
func ReadJSONL(r io.Reader) ([]SeriesPoint, error) {
	var out []SeriesPoint
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var p SeriesPoint
		if err := json.Unmarshal(b, &p); err != nil {
			return nil, fmt.Errorf("tsdb: read jsonl line %d: %w", line, err)
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tsdb: read jsonl: %w", err)
	}
	return out, nil
}
