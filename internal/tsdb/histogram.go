package tsdb

import (
	"math"
	"sort"
	"sync"
	"time"

	"digruber/internal/netsim"
)

// DefBuckets is the fallback bucket layout (seconds-flavored, like the
// classic latency buckets): used when a histogram is registered with no
// valid bounds.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Exemplar links one histogram bucket to the request that put its worst
// recent observation there: the observed value, the request's trace ID,
// and the virtual time of the observation. The zero Exemplar (Trace 0)
// means the bucket holds none — untraced observations never set one.
type Exemplar struct {
	V     float64
	Trace uint64
	T     time.Time
}

// Valid reports whether the exemplar refers to a real traced sample.
func (e Exemplar) Valid() bool { return e.Trace != 0 }

// exemplarEvictInverse is the seeded-eviction rate: a traced observation
// that is NOT worse than a bucket's held exemplar still replaces it with
// probability 1/exemplarEvictInverse. Exemplars survive window rotation
// (the spike a sample just exposed must still be drillable after the
// rotation that exposed it), so this randomized turnover is what keeps
// them *recent* — a one-off extreme outlier stops pinning its bucket
// after a geometrically-bounded number of later observations.
const exemplarEvictInverse = 8

// Histogram counts observations into a fixed bucket layout. It is
// windowed: each registry Sample emits the counts accumulated since the
// previous sample and resets them, so the exported series are per-window
// bucket counts (plus /count and /sum), not cumulative totals. A nil
// *Histogram ignores every call.
//
// Each bucket additionally retains one Exemplar for its worst recent
// traced observation (see ObserveTrace); exemplars are not series — they
// carry full-width trace IDs a float64 sample could not — and are read
// back via Exemplars.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []int64   // len(bounds)+1, the current window
	sum    float64
	n      int64
	ex     []Exemplar // len(bounds)+1, worst recent traced sample per bucket
	evict  interface{ Uint64() uint64 }
}

// newHistogram builds a histogram with sanitized bounds: non-finite
// values dropped, sorted, deduplicated; empty falls back to DefBuckets.
// The name seeds the exemplar-eviction stream, so a deterministic run
// makes deterministic eviction draws per histogram.
func newHistogram(name string, bounds []float64) *Histogram {
	clean := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsNaN(b) && !math.IsInf(b, 0) {
			clean = append(clean, b)
		}
	}
	sort.Float64s(clean)
	dedup := clean[:0]
	for i, b := range clean {
		if i == 0 || b != clean[i-1] {
			dedup = append(dedup, b)
		}
	}
	if len(dedup) == 0 {
		dedup = append(dedup, DefBuckets...)
	}
	return &Histogram{
		bounds: dedup,
		counts: make([]int64, len(dedup)+1),
		ex:     make([]Exemplar, len(dedup)+1),
		evict:  netsim.Stream(0, "tsdb.exemplar/"+name),
	}
}

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Observe adds one observation to the current window. NaN is ignored.
func (h *Histogram) Observe(v float64) {
	h.ObserveTrace(v, 0, time.Time{})
}

// ObserveTrace is Observe with exemplar capture: the observation's trace
// ID and virtual timestamp are retained on its bucket when the sample is
// the worst the bucket has recently seen. Replacement is worst-wins
// (v at or above the held exemplar's value always takes the slot, so
// each bucket points at its recent maximum) with seeded eviction: a
// not-worse sample still takes the slot on a 1/8 draw from the
// histogram's deterministic stream, bounding how long a stale outlier
// survives. A zero trace ID degrades to a plain Observe — untraced
// callers pay nothing and never clobber an exemplar.
func (h *Histogram) ObserveTrace(v float64, traceID uint64, at time.Time) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	if traceID != 0 {
		if !h.ex[i].Valid() || v >= h.ex[i].V || h.evict.Uint64()%exemplarEvictInverse == 0 {
			h.ex[i] = Exemplar{V: v, Trace: traceID, T: at}
		}
	}
	h.mu.Unlock()
}

// Exemplars returns a copy of the per-bucket exemplars: index i matches
// Bounds()[i], the final entry is the +Inf overflow bucket. Buckets that
// never saw a traced observation hold the zero Exemplar. Unlike the
// bucket counts, exemplars are not reset by window rotation — the spike
// a sample just exposed stays drillable after the rotation.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Exemplar(nil), h.ex...)
}

// takeWindow returns the window's bucket counts (the last entry is the
// +Inf overflow), sum and observation count, then resets the window.
func (h *Histogram) takeWindow() (counts []int64, sum float64, n int64) {
	if h == nil {
		return nil, 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	counts = append([]int64(nil), h.counts...)
	sum, n = h.sum, h.n
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.sum, h.n = 0, 0
	return counts, sum, n
}
