package tsdb

import (
	"math"
	"sort"
	"sync"
)

// DefBuckets is the fallback bucket layout (seconds-flavored, like the
// classic latency buckets): used when a histogram is registered with no
// valid bounds.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram counts observations into a fixed bucket layout. It is
// windowed: each registry Sample emits the counts accumulated since the
// previous sample and resets them, so the exported series are per-window
// bucket counts (plus /count and /sum), not cumulative totals. A nil
// *Histogram ignores every call.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []int64   // len(bounds)+1, the current window
	sum    float64
	n      int64
}

// newHistogram builds a histogram with sanitized bounds: non-finite
// values dropped, sorted, deduplicated; empty falls back to DefBuckets.
func newHistogram(bounds []float64) *Histogram {
	clean := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsNaN(b) && !math.IsInf(b, 0) {
			clean = append(clean, b)
		}
	}
	sort.Float64s(clean)
	dedup := clean[:0]
	for i, b := range clean {
		if i == 0 || b != clean[i-1] {
			dedup = append(dedup, b)
		}
	}
	if len(dedup) == 0 {
		dedup = append(dedup, DefBuckets...)
	}
	return &Histogram{bounds: dedup, counts: make([]int64, len(dedup)+1)}
}

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Observe adds one observation to the current window. NaN is ignored.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// takeWindow returns the window's bucket counts (the last entry is the
// +Inf overflow), sum and observation count, then resets the window.
func (h *Histogram) takeWindow() (counts []int64, sum float64, n int64) {
	if h == nil {
		return nil, 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	counts = append([]int64(nil), h.counts...)
	sum, n = h.sum, h.n
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.sum, h.n = 0, 0
	return counts, sum, n
}
