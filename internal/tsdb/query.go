package tsdb

import (
	"math"
	"sort"
	"strings"
	"time"
)

// Latest returns a series' most recent point.
func (r *Registry) Latest(name string) (Point, bool) {
	pts := r.Points(name)
	if len(pts) == 0 {
		return Point{}, false
	}
	return pts[len(pts)-1], true
}

// NameValue is one series' latest value, as returned by LatestByPrefix.
type NameValue struct {
	Name string
	V    float64
}

// LatestByPrefix returns the latest value of every series whose name
// starts with prefix, sorted by name — the snapshot a decision point
// attaches to its StatusReply.
func (r *Registry) LatestByPrefix(prefix string) []NameValue {
	if r == nil {
		return nil
	}
	var out []NameValue
	for _, name := range r.SeriesNames() {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		if p, ok := r.Latest(name); ok {
			out = append(out, NameValue{Name: name, V: p.V})
		}
	}
	return out
}

// Range returns the points of a series with from <= T <= to, oldest
// first.
func (r *Registry) Range(name string, from, to time.Time) []Point {
	var out []Point
	for _, p := range r.Points(name) {
		if p.T.Before(from) || p.T.After(to) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Frame is a set of series aligned on shared sample timestamps.
// Values[name][i] corresponds to Times[i]; NaN marks a series with no
// point at that timestamp.
type Frame struct {
	Times  []time.Time
	Values map[string][]float64
}

// Align joins the named series on the union of their timestamps. All
// registry series are stamped by the same Sample calls, so aligned
// series normally share every timestamp; NaN fills genuine gaps (a
// series registered mid-run, or rings that wrapped differently).
func (r *Registry) Align(names ...string) Frame {
	points := make(map[string][]Point, len(names))
	stamps := make(map[int64]time.Time)
	for _, name := range names {
		pts := r.Points(name)
		points[name] = pts
		for _, p := range pts {
			stamps[p.T.UnixNano()] = p.T
		}
	}
	keys := make([]int64, 0, len(stamps))
	for k := range stamps {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	f := Frame{Times: make([]time.Time, len(keys)), Values: make(map[string][]float64, len(names))}
	index := make(map[int64]int, len(keys))
	for i, k := range keys {
		f.Times[i] = stamps[k]
		index[k] = i
	}
	for _, name := range names {
		col := make([]float64, len(keys))
		for i := range col {
			col[i] = math.NaN()
		}
		for _, p := range points[name] {
			col[index[p.T.UnixNano()]] = p.V
		}
		f.Values[name] = col
	}
	return f
}

// Rate converts a cumulative series (a sampled Counter) into per-second
// rates between consecutive points. The result has one fewer point,
// each stamped at the later sample's time. Non-increasing time deltas
// yield no point; negative value deltas (a counter reset, e.g. a broker
// restart) clamp to zero rather than reporting a negative rate.
func Rate(pts []Point) []Point {
	var out []Point
	for i := 1; i < len(pts); i++ {
		dt := pts[i].T.Sub(pts[i-1].T).Seconds()
		if dt <= 0 {
			continue
		}
		dv := pts[i].V - pts[i-1].V
		if dv < 0 {
			dv = 0
		}
		out = append(out, Point{T: pts[i].T, V: dv / dt})
	}
	return out
}

// WindowRate returns the mean per-second rate of a cumulative series
// (a sampled Counter) over the trailing window ending at now, computed
// end-to-end across the window rather than averaged per-interval so
// uneven sampling cannot skew it. Fewer than two points in the window —
// or a counter reset (negative delta, e.g. a broker restart) — yield 0:
// the signal reads "no evidence of activity", never a negative rate.
// This is the scaling controller's load-signal primitive (shed, expired
// and throttle rates).
func (r *Registry) WindowRate(name string, now time.Time, window time.Duration) float64 {
	pts := r.Range(name, now.Add(-window), now)
	if len(pts) < 2 {
		return 0
	}
	first, last := pts[0], pts[len(pts)-1]
	dt := last.T.Sub(first.T).Seconds()
	if dt <= 0 {
		return 0
	}
	dv := last.V - first.V
	if dv < 0 {
		dv = 0
	}
	return dv / dt
}

// WindowMean returns the mean of a series over the trailing window
// ending at now (0 with no points) — the smoothed form of a sampled
// gauge, for signals like queue depth where a single spiky sample
// should not trigger a scaling action by itself.
func (r *Registry) WindowMean(name string, now time.Time, window time.Duration) float64 {
	return Mean(r.Range(name, now.Add(-window), now))
}

// WindowMax returns the largest value of a series over the trailing
// window ending at now (0 with no points).
func (r *Registry) WindowMax(name string, now time.Time, window time.Duration) float64 {
	return Max(r.Range(name, now.Add(-window), now))
}

// Mean returns the arithmetic mean of the points' values (0 for none).
func Mean(pts []Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range pts {
		sum += p.V
	}
	return sum / float64(len(pts))
}

// Max returns the largest value among the points (0 for none).
func Max(pts []Point) float64 {
	max := 0.0
	for i, p := range pts {
		if i == 0 || p.V > max {
			max = p.V
		}
	}
	return max
}
