package tsdb

import (
	"sort"
	"strconv"
)

// series is one metric's bounded ring of points. All access goes
// through the registry's lock; the type itself is not concurrency-safe.
type series struct {
	name    string
	limit   int
	buf     []Point
	head    int // index of the oldest point once the ring is full
	dropped int64
}

// add appends a point, overwriting the oldest once the ring is full.
func (s *series) add(p Point) {
	if len(s.buf) < s.limit {
		s.buf = append(s.buf, p)
		return
	}
	s.buf[s.head] = p
	s.head = (s.head + 1) % s.limit
	s.dropped++
}

// points returns the held points oldest-first, as a copy.
func (s *series) points() []Point {
	out := make([]Point, 0, len(s.buf))
	out = append(out, s.buf[s.head:]...)
	out = append(out, s.buf[:s.head]...)
	return out
}

// SeriesDump is one series' name and points, the unit Export returns
// and the JSONL sink serializes.
type SeriesDump struct {
	Name string
	// Points is the retained window, oldest first.
	Points []Point
	// Dropped counts points overwritten by the ring bound.
	Dropped int64
}

// SeriesNames returns every series name seen so far, sorted. Histogram
// instruments appear through their derived series (name/le/..., /count,
// /sum); instruments never yet sampled do not appear.
func (r *Registry) SeriesNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.series))
	for name := range r.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Points returns a copy of one series' retained points, oldest first
// (nil for unknown series).
func (r *Registry) Points(name string) []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		return nil
	}
	return s.points()
}

// Export returns a copy of every series, sorted by name — the
// deterministic dump the JSONL writer and digruber-top consume.
func (r *Registry) Export() []SeriesDump {
	if r == nil {
		return nil
	}
	names := r.SeriesNames()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SeriesDump, 0, len(names))
	for _, name := range names {
		s := r.series[name]
		out = append(out, SeriesDump{Name: name, Points: s.points(), Dropped: s.dropped})
	}
	return out
}

// bucketLabel renders a histogram bound as a stable series-name
// component ("0.25", "5", ...).
func bucketLabel(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
