package monitor

import (
	"sync"
	"testing"
	"time"

	"digruber/internal/grid"
	"digruber/internal/tsdb"
	"digruber/internal/vtime"
)

var epoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)

type fakeSource struct {
	mu    sync.Mutex
	calls int
}

func (f *fakeSource) Snapshot() []grid.Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	return []grid.Status{{Name: "s0", TotalCPUs: 10, FreeCPUs: f.calls}}
}

type recordingSink struct {
	mu      sync.Mutex
	updates [][]grid.Status
	times   []time.Time
}

func (r *recordingSink) UpdateSites(st []grid.Status, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.updates = append(r.updates, st)
	r.times = append(r.times, at)
}

func (r *recordingSink) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.updates)
}

func TestSubscribeDeliversImmediateSnapshot(t *testing.T) {
	clock := vtime.NewManual(epoch)
	src := &fakeSource{}
	m := New(src, clock, time.Minute)
	sink := &recordingSink{}
	m.Subscribe(sink)
	if sink.count() != 1 {
		t.Fatalf("updates = %d, want immediate snapshot", sink.count())
	}
	if sink.updates[0][0].Name != "s0" {
		t.Fatalf("bad snapshot: %+v", sink.updates[0])
	}
}

func TestPollFansOutToAllSinks(t *testing.T) {
	clock := vtime.NewManual(epoch)
	m := New(&fakeSource{}, clock, time.Minute)
	a, b := &recordingSink{}, &recordingSink{}
	m.Subscribe(a)
	m.Subscribe(b)
	m.Poll()
	if a.count() != 2 || b.count() != 2 {
		t.Fatalf("counts = %d/%d, want 2/2", a.count(), b.count())
	}
	if m.Polls() != 1 {
		t.Fatalf("polls = %d", m.Polls())
	}
}

func TestPeriodicPolling(t *testing.T) {
	clock := vtime.NewManual(epoch)
	m := New(&fakeSource{}, clock, time.Minute)
	sink := &recordingSink{}
	m.Subscribe(sink)
	m.Start()
	defer m.Stop()
	for i := 0; i < 3; i++ {
		clock.Advance(time.Minute)
		want := i + 1
		deadline := time.Now().Add(2 * time.Second)
		for m.Polls() < want && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if m.Polls() < want {
			t.Fatalf("polls = %d after %d ticks", m.Polls(), want)
		}
	}
	m.Stop()
	polls := m.Polls()
	clock.Advance(10 * time.Minute)
	time.Sleep(20 * time.Millisecond)
	if m.Polls() != polls {
		t.Fatal("monitor kept polling after Stop")
	}
}

func TestStartIdempotent(t *testing.T) {
	clock := vtime.NewManual(epoch)
	m := New(&fakeSource{}, clock, time.Minute)
	m.Start()
	m.Start() // no double ticker
	defer m.Stop()
	clock.Advance(time.Minute)
	deadline := time.Now().Add(2 * time.Second)
	for m.Polls() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.Polls() != 1 {
		t.Fatalf("polls = %d, want exactly 1", m.Polls())
	}
}

func TestTimestampsComeFromClock(t *testing.T) {
	clock := vtime.NewManual(epoch)
	m := New(&fakeSource{}, clock, time.Minute)
	sink := &recordingSink{}
	m.Subscribe(sink)
	clock.Advance(42 * time.Second)
	m.Poll()
	if got := sink.times[1]; !got.Equal(epoch.Add(42 * time.Second)) {
		t.Fatalf("timestamp = %v", got)
	}
}

func TestSubscribeAfterStart(t *testing.T) {
	clock := vtime.NewManual(epoch)
	m := New(&fakeSource{}, clock, time.Minute)
	early := &recordingSink{}
	m.Subscribe(early)
	m.Start()
	defer m.Stop()

	// A sink subscribed mid-run gets its bootstrap snapshot immediately…
	late := &recordingSink{}
	m.Subscribe(late)
	if late.count() != 1 {
		t.Fatalf("late sink updates = %d, want immediate snapshot", late.count())
	}
	// …and rides every subsequent tick alongside the early sink.
	clock.Advance(time.Minute)
	deadline := time.Now().Add(2 * time.Second)
	for late.count() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if late.count() != 2 || early.count() != 2 {
		t.Fatalf("counts = early %d / late %d, want 2/2", early.count(), late.count())
	}
	// One poll delivered to two sinks: fanouts counts deliveries.
	if m.Fanouts() != 2 {
		t.Fatalf("fanouts = %d, want 2", m.Fanouts())
	}
}

func TestStopIdempotentAndRestartable(t *testing.T) {
	clock := vtime.NewManual(epoch)
	m := New(&fakeSource{}, clock, time.Minute)
	m.Stop() // never started: no-op
	m.Start()
	m.Stop()
	m.Stop() // double stop: no-op
	polls := m.Polls()
	clock.Advance(5 * time.Minute)
	time.Sleep(10 * time.Millisecond)
	if m.Polls() != polls {
		t.Fatal("stopped monitor kept polling")
	}
	m.Start() // restart works
	defer m.Stop()
	clock.Advance(time.Minute)
	deadline := time.Now().Add(2 * time.Second)
	for m.Polls() < polls+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.Polls() != polls+1 {
		t.Fatalf("polls = %d after restart, want %d", m.Polls(), polls+1)
	}
}

func TestMonitorMetrics(t *testing.T) {
	clock := vtime.NewManual(epoch)
	m := New(&fakeSource{}, clock, time.Minute)
	reg := tsdb.New(0)
	m.RegisterMetrics(reg, "monitor")
	m.Subscribe(&recordingSink{})
	m.Subscribe(&recordingSink{})
	m.Poll()
	m.Poll()
	clock.Advance(time.Second)
	reg.Sample(clock.Now())

	for name, want := range map[string]float64{
		"monitor/polls":   2,
		"monitor/fanouts": 4,
		"monitor/sinks":   2,
	} {
		p, ok := reg.Latest(name)
		if !ok || p.V != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, p.V, ok, want)
		}
	}
	// Nil registry: registration is a no-op, not a panic.
	m.RegisterMetrics(nil, "x")
}
