// Package monitor is the reproduction's stand-in for the grid monitoring
// systems the GRUBER engine consumes (the paper names its own site
// monitor, with MonALISA or the Grid Catalog as drop-in alternatives).
// A Monitor periodically snapshots every site of a grid and pushes the
// statuses to subscribed engines. The data provider is deliberately
// pluggable: anything returning []grid.Status can replace it.
package monitor

import (
	"sync"
	"time"

	"digruber/internal/grid"
	"digruber/internal/tsdb"
	"digruber/internal/vtime"
)

// Source produces site status snapshots. *grid.Grid satisfies it.
type Source interface {
	Snapshot() []grid.Status
}

// Sink receives status updates (the GRUBER engine implements this).
type Sink interface {
	UpdateSites(statuses []grid.Status, at time.Time)
}

// Monitor polls a Source on a fixed period and fans snapshots out to
// sinks, timestamping each batch.
type Monitor struct {
	source Source
	clock  vtime.Clock
	period time.Duration

	mu      sync.Mutex
	sinks   []Sink
	ticker  vtime.Ticker
	done    chan struct{}
	polls   int
	fanouts int // sink deliveries across all polls
}

// New returns a monitor polling source every period.
func New(source Source, clock vtime.Clock, period time.Duration) *Monitor {
	return &Monitor{source: source, clock: clock, period: period}
}

// Subscribe registers a sink; it immediately receives a snapshot so new
// decision points start with a fresh view.
func (m *Monitor) Subscribe(s Sink) {
	m.mu.Lock()
	m.sinks = append(m.sinks, s)
	m.mu.Unlock()
	s.UpdateSites(m.source.Snapshot(), m.clock.Now())
}

// Start begins periodic polling; it is a no-op if already started.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done != nil {
		return
	}
	m.done = make(chan struct{})
	m.ticker = m.clock.NewTicker(m.period)
	go m.loop(m.ticker, m.done)
}

func (m *Monitor) loop(ticker vtime.Ticker, done chan struct{}) {
	for {
		select {
		case <-ticker.C():
			m.Poll()
		case <-done:
			return
		}
	}
}

// Poll performs one snapshot-and-fanout immediately.
func (m *Monitor) Poll() {
	statuses := m.source.Snapshot()
	at := m.clock.Now()
	m.mu.Lock()
	sinks := append([]Sink(nil), m.sinks...)
	m.polls++
	m.fanouts += len(sinks)
	m.mu.Unlock()
	for _, s := range sinks {
		s.UpdateSites(statuses, at)
	}
}

// Polls reports how many poll cycles have run (for tests).
func (m *Monitor) Polls() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.polls
}

// Fanouts reports how many sink deliveries have run in total (polls x
// subscribers at each poll).
func (m *Monitor) Fanouts() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fanouts
}

// RegisterMetrics exposes the monitor's activity as gauges under prefix:
// polls and fanouts (cumulative) and sinks (current subscriber count).
// Safe with a nil registry.
func (m *Monitor) RegisterMetrics(reg *tsdb.Registry, prefix string) {
	reg.GaugeFunc(prefix+"/polls", func(now time.Time) float64 { return float64(m.Polls()) })
	reg.GaugeFunc(prefix+"/fanouts", func(now time.Time) float64 { return float64(m.Fanouts()) })
	reg.GaugeFunc(prefix+"/sinks", func(now time.Time) float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(len(m.sinks))
	})
}

// Stop ends periodic polling.
func (m *Monitor) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done == nil {
		return
	}
	m.ticker.Stop()
	close(m.done)
	m.done = nil
}
