// Package stats provides the small statistical toolkit the DI-GRUBER
// reproduction uses to report results the way the paper does: per-figure
// summary rows (minimum / median / average / maximum / standard deviation
// / peak) and time-windowed series of load, response time and throughput.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics reported under every figure in
// the paper (e.g. "Service Response Time: Minimum / Median / Average /
// Maximum / Standard Deviation").
type Summary struct {
	N      int
	Min    float64
	Median float64
	Mean   float64
	Max    float64
	StdDev float64
}

// Summarize computes a Summary over xs. A zero-valued Summary is returned
// for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // guard against floating-point cancellation
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Median: percentileSorted(sorted, 50),
		Mean:   mean,
		Max:    sorted[len(sorted)-1],
		StdDev: math.Sqrt(variance),
	}
}

// String renders the summary as a compact paper-style row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f med=%.2f avg=%.2f max=%.2f sd=%.2f",
		s.N, s.Min, s.Median, s.Mean, s.Max, s.StdDev)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
