package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Sample is one timestamped observation.
type Sample struct {
	At    time.Time
	Value float64
}

// Series is an ordered collection of samples, the raw material for the
// paper's per-figure curves (response time over the run, throughput over
// the run, number of concurrent clients over the run).
type Series struct {
	Name    string
	Samples []Sample
}

// Add appends a sample. Samples may arrive out of order; Bucketize sorts.
func (s *Series) Add(at time.Time, v float64) {
	s.Samples = append(s.Samples, Sample{At: at, Value: v})
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.Samples) }

// Values returns the sample values in insertion order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Samples))
	for i, smp := range s.Samples {
		out[i] = smp.Value
	}
	return out
}

// Bucket is one aggregation window of a series.
type Bucket struct {
	Start time.Time
	Count int
	Mean  float64
	Max   float64
	Sum   float64
}

// Bucketize groups samples into fixed windows of width w starting at
// origin and returns per-window aggregates. Empty windows between the
// first and last sample are included with Count == 0 so plotted curves
// keep their time axis.
func (s *Series) Bucketize(origin time.Time, w time.Duration) []Bucket {
	if len(s.Samples) == 0 || w <= 0 {
		return nil
	}
	samples := append([]Sample(nil), s.Samples...)
	sort.Slice(samples, func(i, j int) bool { return samples[i].At.Before(samples[j].At) })

	idx := func(at time.Time) int {
		d := at.Sub(origin)
		if d < 0 {
			return 0
		}
		return int(d / w)
	}
	last := idx(samples[len(samples)-1].At)
	buckets := make([]Bucket, last+1)
	for i := range buckets {
		buckets[i].Start = origin.Add(time.Duration(i) * w)
	}
	for _, smp := range samples {
		b := &buckets[idx(smp.At)]
		b.Count++
		b.Sum += smp.Value
		if smp.Value > b.Max || b.Count == 1 {
			b.Max = smp.Value
		}
	}
	for i := range buckets {
		if buckets[i].Count > 0 {
			buckets[i].Mean = buckets[i].Sum / float64(buckets[i].Count)
		}
	}
	return buckets
}

// Rate returns, for each window, Count scaled to events per second —
// the paper's throughput curves (queries per second per window).
func Rate(buckets []Bucket, w time.Duration) []float64 {
	out := make([]float64, len(buckets))
	secs := w.Seconds()
	for i, b := range buckets {
		out[i] = float64(b.Count) / secs
	}
	return out
}

// Summary summarizes the sample values.
func (s *Series) Summary() Summary { return Summarize(s.Values()) }

// Render prints the bucketized series as aligned text columns: one row
// per window with the window offset in seconds and the aggregate. It is
// the textual stand-in for the paper's figures.
func Render(origin time.Time, w time.Duration, curves map[string][]float64) string {
	names := make([]string, 0, len(curves))
	n := 0
	//lint:allow mapiter -- names are sorted right below; n is a max, which is order-independent
	for name, vals := range curves {
		names = append(names, name)
		if len(vals) > n {
			n = len(vals)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%10s", "t(s)")
	for _, name := range names {
		fmt.Fprintf(&b, " %14s", name)
	}
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%10.0f", (time.Duration(i) * w).Seconds())
		for _, name := range names {
			vals := curves[name]
			if i < len(vals) {
				fmt.Fprintf(&b, " %14.3f", vals[i])
			} else {
				fmt.Fprintf(&b, " %14s", "")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
