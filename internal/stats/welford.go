package stats

import "math"

// Online accumulates count, mean and variance incrementally using
// Welford's algorithm. It is what long-running collectors (DiPerF, the
// decision-point saturation detector) use so they never retain every
// sample. The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N reports how many samples have been added.
func (o *Online) N() int { return o.n }

// Mean reports the running mean (0 before any sample).
func (o *Online) Mean() float64 { return o.mean }

// Min reports the smallest sample seen (0 before any sample).
func (o *Online) Min() float64 { return o.min }

// Max reports the largest sample seen (0 before any sample).
func (o *Online) Max() float64 { return o.max }

// Variance reports the population variance (0 with fewer than two
// samples).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev reports the population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Merge folds another accumulator into o (parallel Welford merge), so
// per-goroutine accumulators can be combined without locking on the hot
// path.
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	n := o.n + other.n
	delta := other.mean - o.mean
	mean := o.mean + delta*float64(other.n)/float64(n)
	m2 := o.m2 + other.m2 + delta*delta*float64(o.n)*float64(other.n)/float64(n)
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
	o.n, o.mean, o.m2 = n, mean, m2
}
