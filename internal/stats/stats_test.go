package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad extremes: %+v", s)
	}
	if s.Median != 3 {
		t.Fatalf("median = %v, want 3", s.Median)
	}
	if !almostEqual(s.Mean, 3, 1e-12) {
		t.Fatalf("mean = %v, want 3", s.Mean)
	}
	if !almostEqual(s.StdDev, math.Sqrt(2), 1e-9) {
		t.Fatalf("stddev = %v, want sqrt(2)", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Mean != 7 || s.StdDev != 0 {
		t.Fatalf("single-element summary wrong: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {-5, 1}, {110, 10},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
}

func TestSummaryPropertyInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.StdDev >= 0 && s.N == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = r.NormFloat64()*10 + 5
		o.Add(xs[i])
	}
	batch := Summarize(xs)
	if o.N() != batch.N {
		t.Fatalf("n = %d, want %d", o.N(), batch.N)
	}
	if !almostEqual(o.Mean(), batch.Mean, 1e-9) {
		t.Fatalf("mean = %v, want %v", o.Mean(), batch.Mean)
	}
	if !almostEqual(o.StdDev(), batch.StdDev, 1e-9) {
		t.Fatalf("stddev = %v, want %v", o.StdDev(), batch.StdDev)
	}
	if o.Min() != batch.Min || o.Max() != batch.Max {
		t.Fatalf("min/max = %v/%v, want %v/%v", o.Min(), o.Max(), batch.Min, batch.Max)
	}
}

func TestOnlineMergeEqualsSequential(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var whole, left, right Online
	for i := 0; i < 500; i++ {
		x := r.ExpFloat64()
		whole.Add(x)
		if i%2 == 0 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(right)
	if left.N() != whole.N() {
		t.Fatalf("merged n = %d, want %d", left.N(), whole.N())
	}
	if !almostEqual(left.Mean(), whole.Mean(), 1e-9) {
		t.Fatalf("merged mean = %v, want %v", left.Mean(), whole.Mean())
	}
	if !almostEqual(left.Variance(), whole.Variance(), 1e-6) {
		t.Fatalf("merged var = %v, want %v", left.Variance(), whole.Variance())
	}
}

func TestOnlineMergeEmptySides(t *testing.T) {
	var a, b Online
	a.Add(1)
	a.Add(3)
	saved := a
	a.Merge(b) // empty right side: no-op
	if a.N() != 2 || a.Mean() != saved.Mean() {
		t.Fatalf("merge with empty changed accumulator: %+v", a)
	}
	var c Online
	c.Merge(a) // empty left side: copy
	if c.N() != 2 || c.Mean() != 2 {
		t.Fatalf("merge into empty wrong: n=%d mean=%v", c.N(), c.Mean())
	}
}

func TestSeriesBucketize(t *testing.T) {
	origin := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	var s Series
	s.Add(origin.Add(5*time.Second), 1)
	s.Add(origin.Add(15*time.Second), 3)
	s.Add(origin.Add(16*time.Second), 5)
	s.Add(origin.Add(45*time.Second), 2)
	buckets := s.Bucketize(origin, 10*time.Second)
	if len(buckets) != 5 {
		t.Fatalf("buckets = %d, want 5", len(buckets))
	}
	if buckets[0].Count != 1 || buckets[0].Mean != 1 {
		t.Fatalf("bucket0 = %+v", buckets[0])
	}
	if buckets[1].Count != 2 || buckets[1].Mean != 4 || buckets[1].Max != 5 {
		t.Fatalf("bucket1 = %+v", buckets[1])
	}
	if buckets[2].Count != 0 || buckets[3].Count != 0 {
		t.Fatal("gap buckets should be empty")
	}
	if buckets[4].Count != 1 {
		t.Fatalf("bucket4 = %+v", buckets[4])
	}
}

func TestSeriesBucketizeOutOfOrderAndBeforeOrigin(t *testing.T) {
	origin := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	var s Series
	s.Add(origin.Add(25*time.Second), 2)
	s.Add(origin.Add(-5*time.Second), 9) // clamped into bucket 0
	s.Add(origin.Add(5*time.Second), 1)
	buckets := s.Bucketize(origin, 10*time.Second)
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d, want 3", len(buckets))
	}
	if buckets[0].Count != 2 {
		t.Fatalf("bucket0 count = %d, want 2 (clamped early sample)", buckets[0].Count)
	}
}

func TestRate(t *testing.T) {
	buckets := []Bucket{{Count: 10}, {Count: 0}, {Count: 5}}
	rates := Rate(buckets, 5*time.Second)
	if rates[0] != 2 || rates[1] != 0 || rates[2] != 1 {
		t.Fatalf("rates = %v", rates)
	}
}

func TestRenderContainsAllCurves(t *testing.T) {
	out := Render(time.Time{}, time.Second, map[string][]float64{
		"load":     {1, 2, 3},
		"response": {0.5, 0.6},
	})
	if len(out) == 0 {
		t.Fatal("empty render")
	}
	for _, want := range []string{"load", "response", "t(s)"} {
		if !contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestMeanMax(t *testing.T) {
	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Mean/Max should be 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
	if Max([]float64{2, 9, 4}) != 9 {
		t.Fatal("Max wrong")
	}
}
