package stats

import (
	"testing"
	"time"
)

// Edge cases around empty input, single samples, and exact window
// boundaries — the places aggregation code quietly goes wrong.

func TestPercentileEmptyAndSingle(t *testing.T) {
	if got := Percentile(nil, 95); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := Percentile([]float64{7.5}, p); got != 7.5 {
			t.Errorf("Percentile([7.5], %v) = %v, want the single sample", p, got)
		}
	}
}

func TestPercentileClampsOutOfRange(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := Percentile(xs, -10); got != 1 {
		t.Errorf("p<0 = %v, want min", got)
	}
	if got := Percentile(xs, 250); got != 3 {
		t.Errorf("p>100 = %v, want max", got)
	}
}

func TestPercentileInterpolatesBetweenRanks(t *testing.T) {
	// With two samples, p75 sits three quarters of the way between them.
	if got := Percentile([]float64{0, 4}, 75); got != 3 {
		t.Errorf("p75 of {0,4} = %v, want 3", got)
	}
}

func TestEmptySeries(t *testing.T) {
	var s Series
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.Values(); len(got) != 0 {
		t.Errorf("Values = %v", got)
	}
	if got := s.Bucketize(time.Unix(0, 0), time.Minute); got != nil {
		t.Errorf("Bucketize of empty series = %v, want nil", got)
	}
	if got := s.Summary(); got != (Summary{}) {
		t.Errorf("Summary of empty series = %+v, want zero", got)
	}
	if got := Rate(nil, time.Minute); len(got) != 0 {
		t.Errorf("Rate(nil) = %v", got)
	}
}

func TestBucketizeRejectsNonPositiveWindow(t *testing.T) {
	var s Series
	s.Add(time.Unix(100, 0), 1)
	if got := s.Bucketize(time.Unix(0, 0), 0); got != nil {
		t.Errorf("w=0 returned %v", got)
	}
	if got := s.Bucketize(time.Unix(0, 0), -time.Second); got != nil {
		t.Errorf("w<0 returned %v", got)
	}
}

func TestBucketizeExactWindowBoundaries(t *testing.T) {
	origin := time.Unix(1000, 0)
	w := time.Minute
	var s Series
	s.Add(origin, 1)                        // first instant of window 0
	s.Add(origin.Add(w-time.Nanosecond), 2) // last instant of window 0
	s.Add(origin.Add(w), 3)                 // first instant of window 1
	s.Add(origin.Add(3*w), 4)               // window 3, leaving window 2 empty
	buckets := s.Bucketize(origin, w)
	if len(buckets) != 4 {
		t.Fatalf("got %d buckets, want 4", len(buckets))
	}
	if buckets[0].Count != 2 || buckets[0].Sum != 3 {
		t.Errorf("window 0 = %+v, want both boundary samples", buckets[0])
	}
	if buckets[1].Count != 1 || buckets[1].Mean != 3 {
		t.Errorf("window 1 = %+v, want the on-boundary sample", buckets[1])
	}
	if buckets[2].Count != 0 || buckets[2].Mean != 0 {
		t.Errorf("empty window 2 = %+v", buckets[2])
	}
	for i, b := range buckets {
		if want := origin.Add(time.Duration(i) * w); !b.Start.Equal(want) {
			t.Errorf("window %d starts %v, want %v", i, b.Start, want)
		}
	}
}

func TestBucketizeSingleSample(t *testing.T) {
	origin := time.Unix(0, 0)
	var s Series
	s.Add(origin.Add(90*time.Second), 5)
	buckets := s.Bucketize(origin, time.Minute)
	if len(buckets) != 2 {
		t.Fatalf("got %d buckets, want 2 (empty leading window kept)", len(buckets))
	}
	if buckets[0].Count != 0 {
		t.Errorf("leading window = %+v, want empty", buckets[0])
	}
	if buckets[1].Count != 1 || buckets[1].Mean != 5 || buckets[1].Max != 5 {
		t.Errorf("sample window = %+v", buckets[1])
	}
}

func TestBucketizeMaxTracksNegativeValues(t *testing.T) {
	// The first sample must seed Max even when negative.
	var s Series
	origin := time.Unix(0, 0)
	s.Add(origin, -4)
	s.Add(origin, -9)
	buckets := s.Bucketize(origin, time.Minute)
	if len(buckets) != 1 || buckets[0].Max != -4 {
		t.Errorf("buckets = %+v, want Max=-4", buckets)
	}
}
