package grubsim

import (
	"testing"
	"time"
)

func TestFleetTrajectory(t *testing.T) {
	r := Result{AddTimes: []time.Duration{10 * time.Second, 45 * time.Second}}
	traj := r.FleetTrajectory(2)
	want := []TrajectoryPoint{
		{At: 0, DPs: 2},
		{At: 10 * time.Second, DPs: 3},
		{At: 45 * time.Second, DPs: 4},
	}
	if len(traj) != len(want) {
		t.Fatalf("trajectory = %v, want %v", traj, want)
	}
	for i := range want {
		if traj[i] != want[i] {
			t.Fatalf("trajectory[%d] = %v, want %v", i, traj[i], want[i])
		}
	}

	if got := r.FleetAt(2, 0); got != 2 {
		t.Fatalf("FleetAt(0) = %d, want 2", got)
	}
	if got := r.FleetAt(2, 10*time.Second); got != 3 {
		t.Fatalf("FleetAt(10s) = %d, want 3 (boundary inclusive)", got)
	}
	if got := r.FleetAt(2, time.Hour); got != 4 {
		t.Fatalf("FleetAt(1h) = %d, want 4", got)
	}
}

func TestFleetTrajectoryNoAdds(t *testing.T) {
	var r Result
	traj := r.FleetTrajectory(3)
	if len(traj) != 1 || traj[0] != (TrajectoryPoint{At: 0, DPs: 3}) {
		t.Fatalf("trajectory = %v, want single initial point", traj)
	}
	if got := r.FleetAt(3, time.Hour); got != 3 {
		t.Fatalf("FleetAt = %d, want 3", got)
	}
}

// The reconstructed trajectory must agree with the scalar outcome the
// simulator already reports.
func TestFleetTrajectoryMatchesSimulation(t *testing.T) {
	p := small(1)
	p.Dynamic = true
	p.ResponseBound = 2 * time.Second
	p.MonitorInterval = 30 * time.Second
	p.Duration = 30 * time.Minute
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	traj := res.FleetTrajectory(1)
	if got := traj[len(traj)-1].DPs; got != res.FinalDPs {
		t.Fatalf("trajectory end = %d, FinalDPs = %d", got, res.FinalDPs)
	}
	if got := res.FleetAt(1, p.Duration); got != res.FinalDPs {
		t.Fatalf("FleetAt(end) = %d, FinalDPs = %d", got, res.FinalDPs)
	}
	for i := 1; i < len(traj); i++ {
		if traj[i].DPs != traj[i-1].DPs+1 || traj[i].At < traj[i-1].At {
			t.Fatalf("trajectory not a monotone unit-step curve: %v", traj)
		}
	}
}
