package grubsim

import (
	"testing"
	"testing/quick"
	"time"
)

// TestPropertyConservation checks, across random configurations, the
// simulator's accounting invariants: every resolution corresponds to a
// submission, throughput never exceeds aggregate service capacity, and
// the final deployment is consistent with the provisioning log.
func TestPropertyConservation(t *testing.T) {
	f := func(seed int64, clientsRaw, dpsRaw, workersRaw uint8, dynamic bool) bool {
		p := Params{
			Seed:         seed,
			ServiceMean:  800 * time.Millisecond,
			ServiceSigma: 0.3,
			Workers:      1 + int(workersRaw%4),
			QueueLimit:   64,
			WANLatency:   30 * time.Millisecond,
			WANSigma:     0.3,
			Clients:      1 + int(clientsRaw%40),
			Interarrival: 3 * time.Second,
			Timeout:      15 * time.Second,
			Duration:     5 * time.Minute,
			InitialDPs:   1 + int(dpsRaw%4),
			Dynamic:      dynamic,
			MaxDPs:       8,
		}
		r, err := Run(p)
		if err != nil {
			return false
		}
		// Conservation: resolutions never exceed submissions.
		if r.Handled+r.TimedOut+r.Shed > r.Total {
			return false
		}
		// Capacity: handled rate cannot exceed fleet service capacity
		// (with slack for the log-normal service draw).
		capacity := float64(r.FinalDPs*p.Workers) / p.ServiceMean.Seconds() * 1.5
		if r.Throughput > capacity {
			return false
		}
		// Deployment bookkeeping.
		if r.FinalDPs != p.InitialDPs+r.AddedDPs {
			return false
		}
		if !p.Dynamic && r.AddedDPs != 0 {
			return false
		}
		if r.FinalDPs > p.MaxDPs {
			return false
		}
		// Per-DP stats cover the whole fleet and sum to Handled.
		if len(r.PerDPHandled) != r.FinalDPs {
			return false
		}
		sum := 0
		for _, h := range r.PerDPHandled {
			sum += h
		}
		return sum == r.Handled
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMoreDPsNeverHurtThroughput checks monotonicity: under a
// fixed overloaded workload, adding decision points never reduces
// handled throughput materially (allowing 10% noise from the
// per-configuration random draws).
func TestPropertyMoreDPsNeverHurtThroughput(t *testing.T) {
	base := Params{
		Seed:         7,
		ServiceMean:  time.Second,
		ServiceSigma: 0.2,
		Workers:      1,
		QueueLimit:   128,
		Clients:      30,
		Interarrival: 2 * time.Second,
		Timeout:      20 * time.Second,
		Duration:     15 * time.Minute,
	}
	prev := 0.0
	for dps := 1; dps <= 8; dps *= 2 {
		p := base
		p.InitialDPs = dps
		r, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Throughput < prev*0.9 {
			t.Fatalf("throughput fell from %.2f to %.2f when growing to %d DPs", prev, r.Throughput, dps)
		}
		if r.Throughput > prev {
			prev = r.Throughput
		}
	}
}
