package grubsim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"digruber/internal/netsim"
)

// Arrival is one request arrival of a recorded trace: which client
// submitted, and when (offset from the run start). The paper's GRUB-SIM
// "took the traces from the tests presented in the previous section";
// the live harness records these during emulation runs.
type Arrival struct {
	At     time.Duration `json:"at"`
	Client int           `json:"client"`
}

// Trace is an ordered arrival log.
type Trace []Arrival

// Sort orders the trace by time (stable on client).
func (tr Trace) Sort() {
	sort.SliceStable(tr, func(i, j int) bool { return tr[i].At < tr[j].At })
}

// Span returns the time of the last arrival (0 for an empty trace).
func (tr Trace) Span() time.Duration {
	if len(tr) == 0 {
		return 0
	}
	last := tr[0].At
	for _, a := range tr[1:] {
		if a.At > last {
			last = a.At
		}
	}
	return last
}

// MaxClient returns the largest client index (-1 for an empty trace).
func (tr Trace) MaxClient() int {
	max := -1
	for _, a := range tr {
		if a.Client > max {
			max = a.Client
		}
	}
	return max
}

// WriteJSON serializes the trace.
func (tr Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// ReadTraceJSON deserializes a trace.
func ReadTraceJSON(r io.Reader) (Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("grubsim: read trace: %w", err)
	}
	return tr, nil
}

// RunTrace replays a recorded arrival trace open-loop through the
// simulated decision points: every arrival submits exactly once at its
// recorded instant (no closed-loop resubmission), while service,
// timeout, shedding and dynamic provisioning behave as in Run. The
// params' Clients and Interarrival fields are ignored; Duration defaults
// to the trace span plus one timeout.
func RunTrace(p Params, trace Trace) (Result, error) {
	if len(trace) == 0 {
		return Result{}, fmt.Errorf("grubsim: empty trace")
	}
	p.Clients = trace.MaxClient() + 1
	if p.Duration <= 0 {
		p.Duration = trace.Span() + p.Timeout + time.Minute
	}
	if err := p.setDefaults(); err != nil {
		return Result{}, err
	}
	s := &sim{
		p:        p,
		svcRNG:   netsim.Stream(p.Seed, "grubsim.service"),
		wanRNG:   netsim.Stream(p.Seed, "grubsim.wan"),
		origin:   time.Unix(0, 0).UTC(),
		openLoop: true,
	}
	for i := 0; i < p.InitialDPs; i++ {
		s.dps = append(s.dps, &dpState{})
	}
	s.assign = make([]int, p.Clients)
	for c := range s.assign {
		s.assign[c] = c % len(s.dps)
	}
	for _, a := range trace {
		s.schedule(a.At, evSubmit, a.Client, 0, nil)
	}
	if p.Dynamic {
		s.schedule(p.MonitorInterval, evMonitor, 0, 0, nil)
	}
	s.loop()
	s.finish()
	return s.res, nil
}
