package grubsim

import (
	"testing"
	"time"
)

// small returns a fast, saturating baseline config for unit tests:
// 20 clients against 1-worker DPs with 1s service — capacity 1 op/s per
// DP, offered ≈ 4 op/s.
func small(dps int) Params {
	return Params{
		Seed:         1,
		ServiceMean:  time.Second,
		ServiceSigma: 0.3,
		Workers:      1,
		QueueLimit:   256,
		WANLatency:   20 * time.Millisecond,
		WANSigma:     0.3,
		Clients:      20,
		Interarrival: 4 * time.Second,
		Timeout:      20 * time.Second,
		Duration:     10 * time.Minute,
		InitialDPs:   dps,
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(small(2))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(small(2))
	if a.Handled != b.Handled || a.TimedOut != b.TimedOut || a.MeanResponse != b.MeanResponse {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	a, _ := Run(small(2))
	p := small(2)
	p.Seed = 99
	b, _ := Run(p)
	if a.MeanResponse == b.MeanResponse {
		t.Fatal("different seeds produced identical response profile")
	}
}

func TestThroughputScalesWithDPs(t *testing.T) {
	r1, _ := Run(small(1))
	r3, _ := Run(small(3))
	r8, _ := Run(small(8))
	if !(r3.Throughput > 1.5*r1.Throughput) {
		t.Fatalf("3 DPs %.2f/s not > 1.5× 1 DP %.2f/s", r3.Throughput, r1.Throughput)
	}
	if !(r8.Throughput > r3.Throughput) {
		t.Fatalf("8 DPs %.2f/s not > 3 DPs %.2f/s", r8.Throughput, r3.Throughput)
	}
	// Response moves the other way.
	if !(r3.MeanResponse < r1.MeanResponse) {
		t.Fatalf("3 DP response %v not < 1 DP response %v", r3.MeanResponse, r1.MeanResponse)
	}
}

func TestSaturatedSingleDPApproachesCapacity(t *testing.T) {
	// Note: past the timeout cliff (clients/(interarrival+timeout) ≥
	// capacity) the simulator reproduces the paper's congestion collapse:
	// almost every served response arrives after its client gave up.
	// 15 clients saturate the 1 op/s point while staying on the stable
	// side of the timeout cliff: throughput pins near capacity and
	// queueing dominates the response time.
	p := small(1)
	p.Clients = 15
	r, _ := Run(p)
	if r.Throughput > 1.05 {
		t.Fatalf("throughput %.2f/s above capacity 1/s", r.Throughput)
	}
	if r.Throughput < 0.5 {
		t.Fatalf("throughput %.2f/s suspiciously below capacity", r.Throughput)
	}
	if r.MeanResponse < 3*time.Second {
		t.Fatalf("mean response %v shows no queueing at saturation", r.MeanResponse)
	}
}

func TestUnderloadedResponseIsFast(t *testing.T) {
	p := small(8)
	p.Clients = 4 // offered 1/s vs capacity 8/s
	r, _ := Run(p)
	if r.TimedOut != 0 || r.Shed != 0 {
		t.Fatalf("underloaded run had %d timeouts %d sheds", r.TimedOut, r.Shed)
	}
	// Response ≈ service + 2×WAN.
	if r.MeanResponse > 2*time.Second {
		t.Fatalf("underloaded response %v too high", r.MeanResponse)
	}
}

func TestTimeoutSemantics(t *testing.T) {
	p := small(1)
	p.Timeout = 3 * time.Second
	p.Clients = 30
	r, _ := Run(p)
	if r.TimedOut == 0 {
		t.Fatal("tight timeout produced no timeouts under overload")
	}
	// Every operation resolves exactly once.
	if r.Handled+r.TimedOut+r.Shed > r.Total {
		t.Fatalf("resolutions %d exceed submissions %d",
			r.Handled+r.TimedOut+r.Shed, r.Total)
	}
}

func TestQueueLimitSheds(t *testing.T) {
	p := small(1)
	p.QueueLimit = 2
	p.Clients = 40
	r, _ := Run(p)
	if r.Shed == 0 {
		t.Fatal("tiny queue limit never shed")
	}
}

func TestDynamicProvisioningConverges(t *testing.T) {
	p := small(1)
	p.Dynamic = true
	p.ResponseBound = 2 * time.Second
	p.MonitorInterval = 30 * time.Second
	p.Duration = 30 * time.Minute
	r, _ := Run(p)
	if r.AddedDPs == 0 {
		t.Fatal("overloaded deployment never grew")
	}
	if r.FinalDPs != 1+r.AddedDPs {
		t.Fatalf("final %d != initial 1 + added %d", r.FinalDPs, r.AddedDPs)
	}
	// Offered load ≈ 20/(4+2) ≈ 3.3/s at the bound; capacity 1/s per DP
	// → converge to roughly 4±2 points, and stop growing.
	if r.FinalDPs < 3 || r.FinalDPs > 8 {
		t.Fatalf("final DPs = %d, expected ≈4", r.FinalDPs)
	}
	// The tail of the run must be calm: last window response under bound.
	last := r.ResponseCurve[len(r.ResponseCurve)-1]
	if last > p.ResponseBound.Seconds()*1.5 {
		t.Fatalf("response %v still above bound after provisioning", last)
	}
	if len(r.AddTimes) != r.AddedDPs {
		t.Fatal("add times not recorded")
	}
}

func TestDynamicRespectsMaxDPs(t *testing.T) {
	p := small(1)
	p.Dynamic = true
	p.ResponseBound = 100 * time.Millisecond // unattainable
	p.MaxDPs = 3
	r, _ := Run(p)
	if r.FinalDPs > 3 {
		t.Fatalf("grew past MaxDPs: %d", r.FinalDPs)
	}
	if r.OverloadEvents <= r.AddedDPs {
		t.Fatal("overload events should keep firing at the cap")
	}
}

func TestStaticDeploymentNeverGrows(t *testing.T) {
	r, _ := Run(small(2))
	if r.FinalDPs != 2 || r.AddedDPs != 0 {
		t.Fatalf("static run changed deployment: %+v", r)
	}
}

func TestLoadBalanceAcrossDPs(t *testing.T) {
	p := small(4)
	p.Clients = 40
	r, _ := Run(p)
	if len(r.PerDPHandled) != 4 {
		t.Fatalf("per-DP stats = %v", r.PerDPHandled)
	}
	min, max := r.PerDPHandled[0], r.PerDPHandled[0]
	for _, h := range r.PerDPHandled {
		if h < min {
			min = h
		}
		if h > max {
			max = h
		}
	}
	if min == 0 || float64(max) > 1.5*float64(min) {
		t.Fatalf("static round-robin binding badly imbalanced: %v", r.PerDPHandled)
	}
}

func TestParamValidation(t *testing.T) {
	if _, err := Run(Params{}); err == nil {
		t.Fatal("empty params accepted")
	}
	if _, err := Run(Params{Clients: 1, InitialDPs: 0, Duration: time.Minute}); err == nil {
		t.Fatal("zero DPs accepted")
	}
}

func TestCurvesProduced(t *testing.T) {
	p := small(2)
	p.Window = time.Minute
	r, _ := Run(p)
	if len(r.ResponseCurve) < 8 || len(r.ThroughputCurve) < 8 {
		t.Fatalf("curves too short: %d/%d windows", len(r.ResponseCurve), len(r.ThroughputCurve))
	}
	if r.PeakWindowResponse <= 0 {
		t.Fatal("no peak response recorded")
	}
}

func TestServiceFromProfileOrdering(t *testing.T) {
	gt3 := GT3Params(1)
	gt4 := GT4Params(1)
	if gt4.ServiceMean <= gt3.ServiceMean {
		t.Fatal("GT4 service demand should exceed GT3")
	}
}

func TestPaperScenarioShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("hour-long simulated scenarios")
	}
	// The headline qualitative results of Figures 5-7/9-11 and Table 3,
	// asserted as invariant shapes rather than absolute numbers.
	r1, _ := Run(GT3Params(1))
	r3, _ := Run(GT3Params(3))
	r10, _ := Run(GT3Params(10))
	if !(r3.Throughput > 2*r1.Throughput && r3.Throughput < 4.5*r1.Throughput) {
		t.Fatalf("GT3 3-DP factor %.2f outside [2, 4.5]", r3.Throughput/r1.Throughput)
	}
	if !(r10.Throughput > 4*r1.Throughput) {
		t.Fatalf("GT3 10-DP factor %.2f below 4", r10.Throughput/r1.Throughput)
	}
	g1, _ := Run(GT4Params(1))
	if g1.Throughput >= r1.Throughput {
		t.Fatal("GT4 1-DP throughput should trail GT3")
	}
	// GRUB-SIM's refinement: a handful of decision points suffice for a
	// grid 10× Grid3 — the paper's four-to-six band.
	dyn := GT3Params(1)
	dyn.Dynamic = true
	d, _ := Run(dyn)
	if d.FinalDPs < 4 || d.FinalDPs > 7 {
		t.Fatalf("GRUB-SIM converged to %d DPs, expected 4-7", d.FinalDPs)
	}
}
