package grubsim

import (
	"bytes"
	"testing"
	"time"
)

func syntheticTrace(n int, clients int, spacing time.Duration) Trace {
	tr := make(Trace, n)
	for i := range tr {
		tr[i] = Arrival{At: time.Duration(i) * spacing, Client: i % clients}
	}
	return tr
}

func traceParams() Params {
	return Params{
		Seed:        1,
		ServiceMean: time.Second,
		Workers:     1,
		QueueLimit:  128,
		Timeout:     20 * time.Second,
		InitialDPs:  1,
	}
}

func TestRunTraceOpenLoop(t *testing.T) {
	// 120 arrivals at 2/s against 1 op/s capacity: exactly one
	// submission per arrival (open loop), no resubmission.
	tr := syntheticTrace(120, 10, 500*time.Millisecond)
	r, err := RunTrace(traceParams(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total != 120 {
		t.Fatalf("total = %d, want exactly the trace length", r.Total)
	}
	if r.Handled+r.TimedOut+r.Shed != 120 {
		t.Fatalf("resolutions %d+%d+%d != 120", r.Handled, r.TimedOut, r.Shed)
	}
	// Overloaded 2:1 → roughly half must miss the timeout eventually.
	if r.TimedOut == 0 {
		t.Fatal("overloaded open-loop replay produced no timeouts")
	}
}

func TestRunTraceDeterministic(t *testing.T) {
	tr := syntheticTrace(200, 20, 300*time.Millisecond)
	a, _ := RunTrace(traceParams(), tr)
	b, _ := RunTrace(traceParams(), tr)
	if a.Handled != b.Handled || a.MeanResponse != b.MeanResponse {
		t.Fatal("trace replay not deterministic")
	}
}

func TestRunTraceDynamicProvisions(t *testing.T) {
	p := traceParams()
	p.Dynamic = true
	p.MonitorInterval = 10 * time.Second
	p.ResponseBound = 2 * time.Second
	tr := syntheticTrace(600, 30, 200*time.Millisecond) // 5/s vs 1/s per DP
	r, err := RunTrace(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.AddedDPs == 0 {
		t.Fatal("dynamic replay never provisioned")
	}
}

func TestRunTraceEmpty(t *testing.T) {
	if _, err := RunTrace(traceParams(), nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := Trace{{At: 3 * time.Second, Client: 2}, {At: time.Second, Client: 5}}
	tr.Sort()
	if tr[0].At != time.Second {
		t.Fatal("sort failed")
	}
	if tr.Span() != 3*time.Second {
		t.Fatalf("span = %v", tr.Span())
	}
	if tr.MaxClient() != 5 {
		t.Fatalf("max client = %d", tr.MaxClient())
	}
	if (Trace{}).Span() != 0 || (Trace{}).MaxClient() != -1 {
		t.Fatal("empty trace helpers wrong")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := syntheticTrace(50, 5, time.Second)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tr) || back[7] != tr[7] {
		t.Fatal("json round trip lost data")
	}
	if _, err := ReadTraceJSON(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("bad json accepted")
	}
}
