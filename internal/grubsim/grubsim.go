// Package grubsim implements GRUB-SIM, the simulator the paper built to
// evaluate its Section 5 enhancements: identifying when DI-GRUBER
// decision points saturate and determining dynamically how many decision
// points a given load requires (Table 3).
//
// GRUB-SIM is a deterministic discrete-event simulation of the brokering
// layer only: decision points are modeled as multi-worker queueing
// stations with DiPerF-calibrated service-time distributions, clients as
// closed-loop request sources with the paper's timeout semantics, and
// the WAN as per-message latency draws. Because no real goroutines or
// wall-clock sleeps are involved, runs are exactly reproducible and fast
// enough to sweep configurations — which is precisely why the paper
// built a simulator instead of re-running PlanetLab deployments.
package grubsim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"time"

	"digruber/internal/netsim"
	"digruber/internal/stats"
)

// Params configures a simulation run.
type Params struct {
	Seed int64

	// ServiceMean and ServiceSigma shape the per-request service time at
	// a decision point (log-normal around ServiceMean).
	ServiceMean  time.Duration
	ServiceSigma float64
	// Workers is each decision point's request-processing parallelism.
	Workers int
	// QueueLimit sheds requests beyond this backlog per decision point.
	QueueLimit int

	// WANLatency is the mean one-way message latency; each draw is
	// log-normal with WANSigma.
	WANLatency time.Duration
	WANSigma   float64

	// Clients is the closed-loop client count; each waits Interarrival
	// between operations and abandons a request after Timeout (falling
	// back to random selection — counted as not handled).
	Clients      int
	Interarrival time.Duration
	Timeout      time.Duration

	// Duration is the simulated span.
	Duration time.Duration

	// InitialDPs is the starting decision point count.
	InitialDPs int

	// Dynamic enables Section 5's automatic provisioning: a monitor
	// samples every MonitorInterval and deploys a new decision point
	// (rebalancing clients) whenever some point's recent mean response
	// exceeds ResponseBound or its queue exceeds QueueThreshold.
	Dynamic         bool
	MonitorInterval time.Duration
	ResponseBound   time.Duration
	QueueThreshold  int
	MaxDPs          int

	// Window buckets the response/throughput curves.
	Window time.Duration
}

func (p *Params) setDefaults() error {
	if p.Clients <= 0 || p.InitialDPs <= 0 || p.Duration <= 0 {
		return fmt.Errorf("grubsim: Clients, InitialDPs and Duration must be positive")
	}
	if p.ServiceMean <= 0 {
		p.ServiceMean = 500 * time.Millisecond
	}
	if p.Workers <= 0 {
		p.Workers = 1
	}
	if p.QueueLimit <= 0 {
		p.QueueLimit = 256
	}
	if p.Interarrival <= 0 {
		p.Interarrival = time.Second
	}
	if p.Timeout <= 0 {
		p.Timeout = 30 * time.Second
	}
	if p.MonitorInterval <= 0 {
		p.MonitorInterval = time.Minute
	}
	if p.ResponseBound <= 0 {
		p.ResponseBound = p.Timeout / 2
	}
	if p.QueueThreshold <= 0 {
		p.QueueThreshold = 3 * p.Workers
	}
	if p.MaxDPs <= 0 {
		p.MaxDPs = 64
	}
	if p.Window <= 0 {
		p.Window = time.Minute
	}
	return nil
}

// Result summarizes a run.
type Result struct {
	// FinalDPs and AddedDPs report the provisioning outcome (Table 3).
	FinalDPs int
	AddedDPs int
	// OverloadEvents counts monitor samples that found an overloaded
	// decision point.
	OverloadEvents int
	// AddTimes are the simulated instants new points were deployed.
	AddTimes []time.Duration

	// Total, Handled, TimedOut, Shed count client operations.
	Total    int
	Handled  int
	TimedOut int
	Shed     int

	// MeanResponse and PeakWindowResponse summarize client-observed
	// response times.
	MeanResponse       time.Duration
	PeakWindowResponse time.Duration
	// Throughput is handled operations per simulated second.
	Throughput float64
	// ResponseCurve and ThroughputCurve are per-window series.
	ResponseCurve   []float64
	ThroughputCurve []float64
	// PerDPHandled reports load balance across the final deployment.
	PerDPHandled []int
}

// TrajectoryPoint is the deployment's size at one simulated instant.
type TrajectoryPoint struct {
	At  time.Duration
	DPs int
}

// FleetTrajectory reconstructs the simulated fleet-size curve from the
// recorded deployment instants: initialDPs at t=0, stepping up at each
// AddTime. GRUB-SIM's provisioning is add-only, so the curve is
// monotone — which is exactly what makes it the static cross-check for
// the live elastic controller: replaying the controller's recorded
// arrival trace through RunTrace with Dynamic provisioning answers "how
// many decision points did this load need?" offline, and the online
// controller's peak fleet should agree within its hysteresis slack.
func (r Result) FleetTrajectory(initialDPs int) []TrajectoryPoint {
	out := make([]TrajectoryPoint, 0, len(r.AddTimes)+1)
	out = append(out, TrajectoryPoint{At: 0, DPs: initialDPs})
	for i, at := range r.AddTimes {
		out = append(out, TrajectoryPoint{At: at, DPs: initialDPs + i + 1})
	}
	return out
}

// FleetAt returns the simulated fleet size at instant t, given the
// run's initial size.
func (r Result) FleetAt(initialDPs int, t time.Duration) int {
	n := initialDPs
	for _, at := range r.AddTimes {
		if at <= t {
			n++
		}
	}
	return n
}

// event kinds
const (
	evSubmit  = iota // client issues a request (at client side)
	evArrive         // request reaches its decision point
	evServed         // decision point finished processing
	evRespond        // response reaches the client
	evShed           // overload rejection reaches the client
	evTimeout        // client abandons the request
	evMonitor        // provisioning monitor samples the deployment
)

type event struct {
	at   time.Duration
	seq  int64
	kind int
	// client / dp / req identify the affected entities.
	client int
	dp     int
	req    *request
}

type request struct {
	client    int
	dp        int
	submitted time.Duration
	resolved  bool // timeout and response race; first wins
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type dpState struct {
	busy    int
	queue   []*request
	handled int
	// respWindow accumulates responses since the last monitor sample.
	respWindow stats.Online
}

// sim is one run's mutable state.
type sim struct {
	p      Params
	now    time.Duration
	events eventHeap
	seq    int64

	svcRNG *rand.Rand
	wanRNG *rand.Rand

	dps    []*dpState
	assign []int // client → dp

	res       Result
	respSer   stats.Series
	tputSer   stats.Series
	respTotal time.Duration
	origin    time.Time
	// openLoop disables closed-loop resubmission (trace replay mode).
	openLoop bool
}

// Run executes the simulation.
func Run(p Params) (Result, error) {
	if err := p.setDefaults(); err != nil {
		return Result{}, err
	}
	s := &sim{
		p:      p,
		svcRNG: netsim.Stream(p.Seed, "grubsim.service"),
		wanRNG: netsim.Stream(p.Seed, "grubsim.wan"),
		origin: time.Unix(0, 0).UTC(),
	}
	for i := 0; i < p.InitialDPs; i++ {
		s.dps = append(s.dps, &dpState{})
	}
	s.assign = make([]int, p.Clients)
	for c := range s.assign {
		s.assign[c] = c % len(s.dps)
	}
	// Clients ramp in over the first tenth of the run, mirroring
	// DiPerF's slow participation increase.
	ramp := p.Duration / 10
	for c := 0; c < p.Clients; c++ {
		at := time.Duration(0)
		if p.Clients > 1 {
			at = ramp * time.Duration(c) / time.Duration(p.Clients-1)
		}
		s.schedule(at, evSubmit, c, 0, nil)
	}
	if p.Dynamic {
		s.schedule(p.MonitorInterval, evMonitor, 0, 0, nil)
	}
	s.loop()
	s.finish()
	return s.res, nil
}

func (s *sim) schedule(at time.Duration, kind, client, dp int, req *request) {
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, kind: kind, client: client, dp: dp, req: req})
}

func (s *sim) wan() time.Duration {
	if s.p.WANLatency <= 0 {
		return 0
	}
	f := 1.0
	if s.p.WANSigma > 0 {
		f = math.Exp(s.wanRNG.NormFloat64() * s.p.WANSigma)
	}
	return time.Duration(float64(s.p.WANLatency) * f)
}

func (s *sim) service() time.Duration {
	f := 1.0
	if s.p.ServiceSigma > 0 {
		f = math.Exp(s.svcRNG.NormFloat64() * s.p.ServiceSigma)
	}
	return time.Duration(float64(s.p.ServiceMean) * f)
}

func (s *sim) loop() {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.at > s.p.Duration {
			return
		}
		s.now = e.at
		switch e.kind {
		case evSubmit:
			s.onSubmit(e.client)
		case evArrive:
			s.onArrive(e.req)
		case evServed:
			s.onServed(e.dp, e.req)
		case evRespond:
			s.onRespond(e.req)
		case evShed:
			s.onShed(e.req)
		case evTimeout:
			s.onTimeout(e.req)
		case evMonitor:
			s.onMonitor()
		}
	}
}

func (s *sim) onSubmit(client int) {
	dp := s.assign[client]
	req := &request{client: client, dp: dp, submitted: s.now}
	s.res.Total++
	s.schedule(s.now+s.wan(), evArrive, client, dp, req)
	s.schedule(s.now+s.p.Timeout, evTimeout, client, dp, req)
}

func (s *sim) onArrive(req *request) {
	dp := s.dps[req.dp]
	if len(dp.queue) >= s.p.QueueLimit {
		// Overload rejection: the client learns quickly (one WAN hop)
		// and falls back to random selection — counted as not handled.
		s.schedule(s.now+s.wan(), evShed, req.client, req.dp, req)
		return
	}
	dp.queue = append(dp.queue, req)
	s.tryStart(req.dp)
}

func (s *sim) tryStart(dpIdx int) {
	dp := s.dps[dpIdx]
	for dp.busy < s.p.Workers && len(dp.queue) > 0 {
		req := dp.queue[0]
		dp.queue = dp.queue[1:]
		dp.busy++
		s.schedule(s.now+s.service(), evServed, req.client, dpIdx, req)
	}
}

func (s *sim) onServed(dpIdx int, req *request) {
	dp := s.dps[dpIdx]
	dp.busy--
	s.tryStart(dpIdx)
	s.schedule(s.now+s.wan(), evRespond, req.client, dpIdx, req)
}

func (s *sim) onRespond(req *request) {
	if req.resolved {
		return // timed out earlier, or synthetic shed echo
	}
	req.resolved = true
	response := s.now - req.submitted
	s.res.Handled++
	s.dps[req.dp].handled++
	s.dps[req.dp].respWindow.Add(response.Seconds())
	s.respTotal += response
	s.respSer.Add(s.origin.Add(s.now), response.Seconds())
	s.tputSer.Add(s.origin.Add(s.now), 1)
	s.resolve(req, true)
}

func (s *sim) onShed(req *request) {
	if req.resolved {
		return
	}
	req.resolved = true
	s.res.Shed++
	response := s.now - req.submitted
	s.respTotal += response
	s.respSer.Add(s.origin.Add(s.now), response.Seconds())
	s.resolve(req, false)
}

func (s *sim) onTimeout(req *request) {
	if req.resolved {
		return
	}
	req.resolved = true
	s.res.TimedOut++
	s.respTotal += s.p.Timeout
	s.respSer.Add(s.origin.Add(s.now), s.p.Timeout.Seconds())
	// The decision point's view of this request keeps being processed
	// (wasted work), but the client has moved on.
	s.resolve(req, false)
}

// resolve schedules the client's next submission (closed-loop mode
// only; trace replays are open-loop).
func (s *sim) resolve(req *request, handled bool) {
	_ = handled
	if s.openLoop {
		return
	}
	s.schedule(s.now+s.p.Interarrival, evSubmit, req.client, 0, nil)
}

// onMonitor is the Section 5 third-party monitor: sample every decision
// point; deploy a new one and rebalance if any is overloaded.
func (s *sim) onMonitor() {
	overloaded := false
	for _, dp := range s.dps {
		meanResp := dp.respWindow.Mean()
		if (dp.respWindow.N() > 0 && meanResp > s.p.ResponseBound.Seconds()) ||
			len(dp.queue) >= s.p.QueueThreshold {
			overloaded = true
		}
		dp.respWindow = stats.Online{}
	}
	if overloaded {
		s.res.OverloadEvents++
		if len(s.dps) < s.p.MaxDPs {
			s.dps = append(s.dps, &dpState{})
			s.res.AddedDPs++
			s.res.AddTimes = append(s.res.AddTimes, s.now)
			// Rebalance: spread clients evenly over the new deployment.
			for c := range s.assign {
				s.assign[c] = c % len(s.dps)
			}
		}
	}
	s.schedule(s.now+s.p.MonitorInterval, evMonitor, 0, 0, nil)
}

func (s *sim) finish() {
	s.res.FinalDPs = len(s.dps)
	if n := s.res.Handled + s.res.TimedOut + s.res.Shed; n > 0 {
		s.res.MeanResponse = s.respTotal / time.Duration(n)
	}
	s.res.Throughput = float64(s.res.Handled) / s.p.Duration.Seconds()
	respBuckets := s.respSer.Bucketize(s.origin, s.p.Window)
	for _, b := range respBuckets {
		s.res.ResponseCurve = append(s.res.ResponseCurve, b.Mean)
		if b.Mean > s.res.PeakWindowResponse.Seconds() {
			s.res.PeakWindowResponse = time.Duration(b.Mean * float64(time.Second))
		}
	}
	for _, b := range s.tputSer.Bucketize(s.origin, s.p.Window) {
		s.res.ThroughputCurve = append(s.res.ThroughputCurve, float64(b.Count)/s.p.Window.Seconds())
	}
	for _, dp := range s.dps {
		s.res.PerDPHandled = append(s.res.PerDPHandled, dp.handled)
	}
}
