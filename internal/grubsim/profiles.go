package grubsim

import (
	"time"

	"digruber/internal/wire"
)

// QueryPayloadBytes approximates the wire size of one full DI-GRUBER
// scheduling interaction (site-load reply for hundreds of sites plus the
// dispatch report) used when deriving simulator service times from the
// emulated toolkit profiles.
const QueryPayloadBytes = 24 << 10

// ServiceFromProfile derives the simulator's per-request service-time
// mean and worker count from a wire.StackProfile — the "performance
// models created by DiPerF" the paper feeds GRUB-SIM. The two round
// trips of a scheduling operation are folded into one aggregate service
// demand.
func ServiceFromProfile(p wire.StackProfile) (mean time.Duration, workers int) {
	// Query (large payload) + dispatch report (small payload).
	mean = p.ServiceTime(QueryPayloadBytes) + p.ServiceTime(512)
	return mean, p.Workers()
}

// GT3Params returns simulation parameters calibrated to the GT3
// deployment of the paper's experiments: ~120 clients against decision
// points whose aggregate service demand saturates one point around two
// scheduling operations per second.
func GT3Params(initialDPs int) Params {
	mean, workers := ServiceFromProfile(wire.GT3())
	return Params{
		Seed:         1,
		ServiceMean:  mean,
		ServiceSigma: 0.3,
		Workers:      workers,
		QueueLimit:   512,
		WANLatency:   60 * time.Millisecond,
		WANSigma:     0.4,
		Clients:      120,
		Interarrival: 5 * time.Second,
		Timeout:      30 * time.Second,
		Duration:     time.Hour,
		InitialDPs:   initialDPs,
		// "Adequate Response" for the provisioner: a loaded operation
		// should stay within a small multiple of the unloaded ~1s cost.
		ResponseBound: 2500 * time.Millisecond,
	}
}

// GT4Params mirrors the GT4-prerelease deployment: slower service stack,
// somewhat fewer testers (the paper notes the GT4 runs peaked below the
// GT3 client count).
func GT4Params(initialDPs int) Params {
	mean, workers := ServiceFromProfile(wire.GT4())
	p := GT3Params(initialDPs)
	p.ServiceMean = mean
	p.Workers = workers
	p.Clients = 60
	p.ResponseBound = 3500 * time.Millisecond
	return p
}
