package digruber

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"digruber/internal/gruber"
	"digruber/internal/netsim"
	"digruber/internal/vtime"
)

// drainChaosDigest is the replayable fingerprint of a drain-vs-partition
// race: only outcome-level facts (never step timings, which depend on
// goroutine interleaving) so two runs of the same scenario compare equal.
type drainChaosDigest struct {
	DrainErr     string
	VictimState  string
	QueryHandled bool
	SecondDrain  string
	FinalState   string
	PeerSiteFree int
}

// runDrainPartitionScenario races a scale-down against a fault window:
// dp-0 (the victim, holding one unflushed dispatch record) is drained
// while its only peer dp-1 is crashed from the start of the run until
// healAfter. With healAfter inside the drain deadline the drain must
// ride out the partition and complete; with healAfter beyond it the
// drain must abort back to serving without stranding clients, and a
// later drain (after the heal) must complete.
func runDrainPartitionScenario(t *testing.T, healAfter, drainTimeout time.Duration) drainChaosDigest {
	t.Helper()
	clock := vtime.NewManual(epoch)
	h := newHarness(t, 2, clock, testStatuses(100))
	victim, peer := h.dps[0], h.dps[1]

	// One dispatch record the victim must hand off before it may stop.
	victim.Engine().RecordDispatch(gruber.Dispatch{
		JobID: "chaos-wedge", Site: "site-000", CPUs: 1,
		Runtime: time.Hour, At: clock.Now(),
	})

	faults := netsim.NewFaultPlane()
	faults.CrashNode(peer.Name(), epoch, epoch.Add(healAfter))
	peerDown := false
	applyFaults := func() {
		d := faults.Down(peer.Name(), clock.Now())
		switch {
		case d && !peerDown:
			peer.Crash()
			peerDown = true
		case !d && peerDown:
			if err := peer.Restart(); err != nil {
				t.Fatalf("restart %s: %v", peer.Name(), err)
			}
			peerDown = false
		}
	}
	applyFaults() // the partition is already open when the drain starts

	// The drain blocks in Manual-clock sleeps; an advancer goroutine
	// walks virtual time (applying the fault schedule at each step) until
	// the drain returns.
	drain := func(timeout time.Duration) string {
		done := make(chan string, 1)
		go func() {
			if err := victim.Drain(timeout); err != nil {
				done <- err.Error()
				return
			}
			done <- ""
		}()
		for {
			select {
			case msg := <-done:
				return msg
			default:
				clock.Advance(500 * time.Millisecond)
				applyFaults()
				time.Sleep(time.Millisecond)
			}
		}
	}

	digest := drainChaosDigest{
		DrainErr: drain(drainTimeout),
	}
	digest.VictimState = victim.LifecycleState()

	if digest.VictimState == StateServing {
		// Abort path: the victim must still answer clients.
		c := h.client(0, 0, nil)
		dec := c.Schedule(testJob("chaos-post-abort"))
		digest.QueryHandled = dec.Handled
		// Walk virtual time past the fault window so the peer heals,
		// then the retirement must go through.
		for faults.Down(peer.Name(), clock.Now()) {
			clock.Advance(time.Second)
		}
		applyFaults()
		digest.SecondDrain = drain(time.Minute)
	}
	digest.FinalState = victim.LifecycleState()
	digest.PeerSiteFree = peer.Engine().EstFreeCPUs("site-000")
	return digest
}

// TestDrainCompletesAfterPartitionHeals: the fault window closes inside
// the drain deadline, so the drain rides it out — the victim retires and
// the peer ends up owning the flushed dispatch record.
func TestDrainCompletesAfterPartitionHeals(t *testing.T) {
	d := runDrainPartitionScenario(t, 30*time.Second, 5*time.Minute)
	if d.DrainErr != "" {
		t.Fatalf("drain failed despite heal inside the deadline: %s", d.DrainErr)
	}
	if d.FinalState != StateStopped {
		t.Fatalf("victim state %q, want stopped", d.FinalState)
	}
	if d.PeerSiteFree != 99 {
		t.Fatalf("peer view free=%d, want 99 — the drained record was lost", d.PeerSiteFree)
	}
}

// TestDrainAbortsWhenPartitionOutlastsDeadline: the fault window covers
// the whole drain deadline, so the drain must abort back to serving
// (clients keep getting answers) and a post-heal drain completes.
func TestDrainAbortsWhenPartitionOutlastsDeadline(t *testing.T) {
	d := runDrainPartitionScenario(t, 5*time.Minute, time.Minute)
	if d.DrainErr == "" {
		t.Fatal("drain completed while its only peer was partitioned away")
	}
	if d.VictimState != StateServing {
		t.Fatalf("victim state %q after abort, want serving", d.VictimState)
	}
	if !d.QueryHandled {
		t.Fatal("client request not handled after drain abort — clients stranded")
	}
	if d.SecondDrain != "" {
		t.Fatalf("post-heal drain failed: %s", d.SecondDrain)
	}
	if d.FinalState != StateStopped {
		t.Fatalf("final victim state %q, want stopped", d.FinalState)
	}
	// Two records crossed: the pre-drain wedge and the post-abort client
	// dispatch. Neither may be lost in the retirement.
	if d.PeerSiteFree != 98 {
		t.Fatalf("peer view free=%d, want 98 — a drained record was lost", d.PeerSiteFree)
	}
}

// TestDrainPartitionChaosDeterministic: both races are pure functions of
// the schedule — outcome digests replay equal run over run, whatever the
// real-time interleaving of the advancer and the drain goroutine.
func TestDrainPartitionChaosDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name          string
		heal, timeout time.Duration
	}{
		{"heal-inside-deadline", 30 * time.Second, 5 * time.Minute},
		{"partition-outlasts-deadline", 5 * time.Minute, time.Minute},
	} {
		t.Run(tc.name, func(t *testing.T) {
			first := runDrainPartitionScenario(t, tc.heal, tc.timeout)
			second := runDrainPartitionScenario(t, tc.heal, tc.timeout)
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("chaos runs diverged:\n first %+v\nsecond %+v", first, second)
			}
		})
	}
}

// TestMembershipChurnStress hammers one broker with concurrent
// membership changes, exchanges, status polls and client traffic. It
// asserts nothing beyond "no race, no deadlock, still serving" — run it
// under -race (the CI race job selects it by name).
func TestMembershipChurnStress(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 3, clock, testStatuses(100, 100))
	target := h.dps[0]
	c := h.client(0, 0, nil)

	const iters = 150
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // membership churn: transient peers come and go
		defer wg.Done()
		for i := 0; i < iters; i++ {
			name := fmt.Sprintf("churn-%d", i%4)
			target.AddPeer(name, name, h.dps[1].Addr())
			target.RemovePeer(name)
		}
	}()
	go func() { // exchange rounds against whatever the peer set is
		defer wg.Done()
		for i := 0; i < iters; i++ {
			target.ExchangeNow()
		}
	}()
	go func() { // status polls
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = target.Status()
		}
	}()
	go func() { // client traffic
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = c.Schedule(testJob(fmt.Sprintf("churn-job-%d", i)))
		}
	}()
	wg.Wait()

	// The transient peers are gone and the broker still answers.
	st := target.Status()
	for _, p := range st.Peers {
		if len(p.Name) >= 5 && p.Name[:5] == "churn" {
			t.Fatalf("transient peer %q survived the churn", p.Name)
		}
	}
	if dec := c.Schedule(testJob("churn-final")); !dec.Handled {
		t.Fatal("broker stopped handling after membership churn")
	}
}
