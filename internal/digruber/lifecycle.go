package digruber

import (
	"fmt"
	"time"
)

// Lifecycle: a decision point is serving from Start until Stop. Drain is
// the graceful path between them — the paper's Section 5 reconfiguration
// needs retiring brokers to leave the fleet without dropping the work
// they hold, which a bare Stop (or a Crash) cannot promise.
//
//	serving ──Drain──▶ draining ──flush verified──▶ stopped
//	   ▲                  │
//	   └──── abort ◀──────┘ (settle/flush deadline exceeded)
//
// While draining, the point refuses new scheduling work (Query/Schedule
// answer ErrDraining so clients fail over), but keeps accepting Reports
// (the tail of interactions already in flight) and all mesh/monitoring
// traffic (Exchange, Status, Snapshot) — peers still need its records
// and monitors still need to see it. Crash skips all of this: it models
// the process dying, state and obligations included.

// isDraining reports whether the decision point is in its Draining
// lifecycle state.
func (dp *DecisionPoint) isDraining() bool {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	return dp.draining
}

// LifecycleState names the decision point's current lifecycle state:
// StateServing, StateDraining or StateStopped.
func (dp *DecisionPoint) LifecycleState() string {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	switch {
	case !dp.started:
		return StateStopped
	case dp.draining:
		return StateDraining
	default:
		return StateServing
	}
}

// drainPollFloor/Ceil bound the settle/flush polling period derived from
// the drain deadline.
const (
	drainPollFloor = 10 * time.Millisecond
	drainPollCeil  = time.Second
)

// drainPoll picks the (virtual-time) polling period for a drain with the
// given deadline budget: 1% of the budget, clamped.
func drainPoll(timeout time.Duration) time.Duration {
	p := timeout / 100
	if p < drainPollFloor {
		p = drainPollFloor
	}
	if p > drainPollCeil {
		p = drainPollCeil
	}
	return p
}

// Drain retires the decision point gracefully within the given
// (virtual-time) budget:
//
//  1. Enter the Draining state: Query/Schedule refuse with ErrDraining
//     (clients fail over), Status advertises StateDraining.
//  2. Settle: wait for the service stack's in-flight and queued work to
//     reach zero, so nothing accepted is abandoned.
//  3. Final flush: run exchange rounds (force-probing even dead peers)
//     until every peer has acknowledged this engine's full local
//     dispatch log — verified against the exchange-cursor high-water
//     mark, not assumed from one successful round.
//  4. Stop.
//
// If settling or flushing exceeds the budget — in-flight work wedged, or
// a partition keeping a peer from acknowledging — the drain aborts back
// to serving and returns an error: a broker that cannot discharge its
// obligations keeps them, it does not strand them. The caller (normally
// the elastic Controller) decides whether to retry later.
//
// A Report arriving in the instant between the verified flush and the
// stop can still miss the last exchange; the Controller closes that
// window by rebinding the victim's clients away before draining.
func (dp *DecisionPoint) Drain(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 4 * dp.cfg.PeerTimeout
	}
	dp.mu.Lock()
	if !dp.started {
		dp.mu.Unlock()
		return fmt.Errorf("digruber: %s: drain of a stopped decision point", dp.cfg.Name)
	}
	if dp.draining {
		dp.mu.Unlock()
		return fmt.Errorf("digruber: %s: already draining", dp.cfg.Name)
	}
	dp.draining = true
	dp.mu.Unlock()
	dp.metrics.drains.Inc()

	deadline := dp.cfg.Clock.Now().Add(timeout)
	poll := drainPoll(timeout)

	// Settle. Refused Query/Schedule calls pass through the stack quickly;
	// what this waits out is genuinely accepted work.
	for {
		st := dp.serverStats()
		if st.InFlight == 0 && st.Queued == 0 && st.LaneInFlight == 0 && st.LaneQueued == 0 {
			break
		}
		if !dp.cfg.Clock.Now().Before(deadline) {
			return dp.abortDrain("in-flight work did not settle")
		}
		dp.cfg.Clock.Sleep(poll)
	}

	// Final flush, verified: every peer's acknowledged cursor must reach
	// the local log's high-water mark. One round is not enough evidence —
	// a call can fail against a partitioned peer — so this retries until
	// the cursors prove completeness or the budget runs out.
	for !dp.flushComplete() {
		dp.syncNow(true)
		if dp.flushComplete() {
			break
		}
		if !dp.cfg.Clock.Now().Before(deadline) {
			return dp.abortDrain("final flush not acknowledged by every peer")
		}
		dp.cfg.Clock.Sleep(poll)
	}

	dp.Stop()
	dp.metrics.retired.Inc()
	return nil
}

// abortDrain returns the decision point to serving and reports why.
func (dp *DecisionPoint) abortDrain(reason string) error {
	dp.mu.Lock()
	dp.draining = false
	dp.mu.Unlock()
	dp.metrics.drainAborts.Inc()
	return fmt.Errorf("digruber: %s: drain aborted: %s", dp.cfg.Name, reason)
}

// flushComplete reports whether every peer has acknowledged the local
// dispatch log in full — the drain protocol's exit condition for the
// final flush.
func (dp *DecisionPoint) flushComplete() bool {
	hi := dp.engine.LocalSeqHighWater()
	dp.mu.Lock()
	defer dp.mu.Unlock()
	//lint:allow mapiter -- conjunction over values; order-independent
	for _, l := range dp.peers {
		if l.lastSent < hi {
			return false
		}
	}
	return true
}
