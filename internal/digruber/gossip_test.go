package digruber

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"digruber/internal/grid"
	"digruber/internal/gruber"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

// newGossipHarness is newHarnessStrategy for the Gossip strategy: n
// decision points, fully peer-wired (the view caps and samples
// internally), exchange driven manually via ExchangeNow.
func newGossipHarness(t *testing.T, n int, clock vtime.Clock, statuses []grid.Status, gcfg GossipConfig) *harness {
	t.Helper()
	h := &harness{t: t, mem: wire.NewMem(), clock: clock}
	for i := 0; i < n; i++ {
		dp, err := New(Config{
			Name:             fmt.Sprintf("dp-%d", i),
			Addr:             fmt.Sprintf("dp-%d", i),
			Transport:        h.mem,
			Clock:            clock,
			Profile:          wire.Instant(),
			Strategy:         Gossip,
			Gossip:           gcfg,
			ExchangeInterval: time.Hour,
			// Real-clock tests: a call wedged by churn (accepted just as
			// the server dies) must not wait out the 30s default.
			PeerTimeout: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		dp.Engine().UpdateSites(statuses, clock.Now())
		h.dps = append(h.dps, dp)
	}
	for _, dp := range h.dps {
		for _, peer := range h.dps {
			if peer != dp {
				dp.AddPeer(peer.Name(), peer.Name(), peer.Addr())
			}
		}
		if err := dp.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, dp := range h.dps {
			dp.Stop()
		}
	})
	return h
}

// gossipRound runs one gossip round on every decision point, in order.
func gossipRound(h *harness) {
	for _, dp := range h.dps {
		dp.ExchangeNow()
	}
}

func dispatchAt(h *harness, dp int, id string) {
	h.dps[dp].Engine().RecordDispatch(gruber.Dispatch{
		JobID: id, Site: "site-000", Owner: "atlas", CPUs: 2,
		Runtime: 2 * time.Hour, At: h.clock.Now(),
	})
}

// TestGossipConvergesWithSparseFanout: with fanout 2 in a 12-point
// fleet, one point's dispatch reaches every other point within a few
// rounds — which requires transitive relay, since a round only contacts
// two sampled peers directly.
func TestGossipConvergesWithSparseFanout(t *testing.T) {
	clock := vtime.NewReal()
	h := newGossipHarness(t, 12, clock, testStatuses(50, 80), GossipConfig{Fanout: 2, Seed: 11})
	dispatchAt(h, 0, "g1")

	converged := func() bool {
		for i, dp := range h.dps {
			if i != 0 && dp.Engine().Stats().RemoteDispatches == 0 {
				return false
			}
		}
		return true
	}
	rounds := 0
	for ; rounds < 12 && !converged(); rounds++ {
		gossipRound(h)
	}
	if !converged() {
		t.Fatal("dispatch did not reach every decision point in 12 rounds at fanout 2")
	}
	t.Logf("converged in %d rounds", rounds)

	// Relay must actually be happening: at fanout 2 of 11 peers, most
	// points can only have heard the news third-hand.
	relayed := 0
	for _, dp := range h.dps {
		dp.mu.Lock()
		relayed += dp.gossipRelayed
		dp.mu.Unlock()
	}
	if relayed == 0 {
		t.Fatal("no third-party records relayed; gossip degenerated to direct flooding")
	}
}

// TestGossipPullRecoversLateJoiner: a point that missed earlier traffic
// pulls it back through the reply half of its own push-pull round, even
// from a peer that never pushes to it.
func TestGossipPullRecoversLateJoiner(t *testing.T) {
	clock := vtime.NewReal()
	h := newGossipHarness(t, 3, clock, testStatuses(50), GossipConfig{Fanout: 2, Seed: 3})
	// dp-0 records while dp-2 is stopped.
	h.dps[2].Stop()
	dispatchAt(h, 0, "early-1")
	dispatchAt(h, 0, "early-2")
	gossipRound(h)
	if err := h.dps[2].Start(); err != nil {
		t.Fatal(err)
	}
	// dp-2's own round: its digest lacks dp-0's origin, so whichever
	// peers it samples reply with the missing records.
	h.dps[2].ExchangeNow()
	if got := h.dps[2].Engine().Stats().RemoteDispatches; got != 2 {
		t.Fatalf("late joiner pulled %d records, want 2", got)
	}
}

// TestGossipDrainFlushCompletes: the drain protocol's verified flush
// works under gossip — the force round contacts every peer and the
// reply digests' self-origin entries prove the full own log is held
// fleet-wide.
func TestGossipDrainFlushCompletes(t *testing.T) {
	clock := vtime.NewReal()
	h := newGossipHarness(t, 5, clock, testStatuses(50), GossipConfig{Fanout: 1, Seed: 5})
	for i := 0; i < 4; i++ {
		dispatchAt(h, 0, fmt.Sprintf("d%d", i))
	}
	// Fanout 1: a plain round cannot reach all four peers, so the drain
	// flush's all-peers force mode is what must complete the hand-off.
	if err := h.dps[0].Drain(time.Minute); err != nil {
		t.Fatal(err)
	}
	if st := h.dps[0].LifecycleState(); st != StateStopped {
		t.Fatalf("drained point in state %s, want stopped", st)
	}
	for _, dp := range h.dps[1:] {
		if got := dp.Engine().Stats().RemoteDispatches; got != 4 {
			t.Fatalf("%s holds %d of dp-0's records after drain, want 4", dp.Name(), got)
		}
	}
}

// TestGossipMembershipPropagates: a joiner wired to a single seed peer
// becomes known fleet-wide through the Members piggyback, with no
// central registry.
func TestGossipMembershipPropagates(t *testing.T) {
	clock := vtime.NewReal()
	h := newGossipHarness(t, 4, clock, testStatuses(50), GossipConfig{Fanout: 2, Seed: 9})
	joiner, err := New(Config{
		Name: "dp-9", Addr: "dp-9", Transport: h.mem, Clock: clock,
		Profile: wire.Instant(), Strategy: Gossip,
		Gossip:           GossipConfig{Fanout: 2, Seed: 9},
		ExchangeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	joiner.Engine().UpdateSites(testStatuses(50), clock.Now())
	if err := joiner.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(joiner.Stop)
	joiner.AddPeer(h.dps[0].Name(), h.dps[0].Name(), h.dps[0].Addr()) // one seed

	fleetKnows := func() bool {
		for _, dp := range h.dps {
			found := false
			for _, p := range dp.Peers() {
				if p == "dp-9" {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return len(joiner.Peers()) == len(h.dps)
	}
	for i := 0; i < 20 && !fleetKnows(); i++ {
		joiner.ExchangeNow()
		gossipRound(h)
	}
	if !fleetKnows() {
		t.Fatal("joiner not fleet-wide known after 20 rounds of Members piggybacking")
	}
}

// TestGossipCompactsAckedRecords: once every peer's reply digest covers
// an origin, the origin's log compacts to nothing while its version
// vector keeps the floor.
func TestGossipCompactsAckedRecords(t *testing.T) {
	clock := vtime.NewReal()
	h := newGossipHarness(t, 3, clock, testStatuses(50), GossipConfig{Fanout: 2, Seed: 7})
	dispatchAt(h, 0, "c1")
	dispatchAt(h, 0, "c2")
	// Fanout 2 covers both peers: one round gathers both acks, the
	// round's own compaction pass then drops the acked prefix.
	h.dps[0].ExchangeNow()
	e := h.dps[0].Engine()
	if n := e.OriginLogSize("dp-0"); n != 0 {
		t.Fatalf("own log holds %d records after fleet-wide ack, want 0", n)
	}
	if hi := e.LocalSeqHighWater(); hi != 2 {
		t.Fatalf("high-water mark %d after compaction, want 2", hi)
	}
}

// TestGossipSampledPeersDeterministic: the same seed draws the same
// peers round for round, so a replayed run gossips identically.
func TestGossipSampledPeersDeterministic(t *testing.T) {
	run := func() []int {
		clock := vtime.NewReal()
		h := newGossipHarness(t, 8, clock, testStatuses(50), GossipConfig{Fanout: 2, Seed: 42})
		dispatchAt(h, 0, "det-1")
		var counts []int
		for r := 0; r < 4; r++ {
			gossipRound(h)
			total := 0
			for _, dp := range h.dps {
				total += int(dp.Engine().Stats().RemoteDispatches)
			}
			counts = append(counts, total)
		}
		return counts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at round %d: %v vs %v", i, a, b)
		}
	}
}

// TestGossipStressChurn hammers concurrent gossip rounds against
// membership churn and crash/restart — the race-detector companion to
// the full-mesh MembershipChurn stress.
func TestGossipStressChurn(t *testing.T) {
	clock := vtime.NewReal()
	h := newGossipHarness(t, 6, clock, testStatuses(50, 50), GossipConfig{Fanout: 2, Seed: 13})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Dispatch feeders on two points.
	for _, i := range []int{0, 1} {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				dispatchAt(h, i, fmt.Sprintf("churn-%d-%d", i, n))
				h.dps[i].ExchangeNow()
				time.Sleep(time.Millisecond)
			}
		}()
	}
	// Concurrent rounds everywhere else.
	for _, dp := range h.dps[2:] {
		dp := dp
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				dp.ExchangeNow()
				time.Sleep(time.Millisecond)
			}
		}()
	}
	// Churn: dp-5 crashes, restarts, and is removed/re-added at dp-0.
	for i := 0; i < 5; i++ {
		h.dps[5].Crash()
		h.dps[0].RemovePeer("dp-5")
		if err := h.dps[5].Restart(); err != nil {
			t.Fatal(err)
		}
		h.dps[0].AddPeer("dp-5", "dp-5", h.dps[5].Addr())
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}
