package digruber

import (
	"time"

	"digruber/internal/tsdb"
	"digruber/internal/wire"
)

// dpMetrics holds the decision point's event-driven instruments. The
// instruments come from the Config registry, so with no registry they
// are all nil and every operation is a no-op (tsdb instruments are
// nil-safe); the DecisionPoint never has to check whether metrics are
// enabled.
type dpMetrics struct {
	// peerUp/peerDown count health-state transitions into and out of
	// alive — edges, not per-call observations, so a steady mesh holds
	// them flat however many exchanges run.
	peerUp   *tsdb.Counter
	peerDown *tsdb.Counter
	// resyncs counts snapshot resyncs attempted; resyncImported sums
	// the dispatch records they brought in.
	resyncs        *tsdb.Counter
	resyncImported *tsdb.Counter
	// roundDur is the per-round wall (virtual) duration in seconds.
	roundDur *tsdb.Histogram
	// drains counts Drain calls entered; drainAborts those that timed out
	// back to serving; retired those that completed through to Stop.
	drains      *tsdb.Counter
	drainAborts *tsdb.Counter
	retired     *tsdb.Counter
	// gossipResets counts origin-log resets forced by sequence
	// regressions (an origin crashed and renumbered) — rare by design,
	// so it is an event counter rather than a round-accumulated gauge.
	gossipResets *tsdb.Counter
	// handleDur is the server-side scheduling-path duration (Query and
	// Schedule handlers, seconds). Traced requests attach their trace ID
	// as a bucket exemplar, so a p99 spike in this histogram resolves to
	// the offending request's span tree.
	handleDur *tsdb.Histogram
}

// roundDurBuckets spans the mesh-round latencies the emulated stacks
// produce: sub-second in-memory rounds up to rounds dragged out by a
// full PeerTimeout on a dead link.
var roundDurBuckets = []float64{0.1, 0.5, 1, 2, 5, 10, 30, 60}

// handleDurBuckets spans the server-side scheduling-path durations: the
// Instant profile's zero-width handlers up through a GT3-class stack
// dragging a query out past the client's 30s timeout.
var handleDurBuckets = []float64{0.001, 0.01, 0.1, 0.5, 1, 2, 5, 10, 30}

// observeHandle records one scheduling-path handler's duration with the
// request's trace ID as the bucket exemplar (zero for untraced calls,
// which degrades to a plain observation).
func (dp *DecisionPoint) observeHandle(start time.Time, traceID uint64) {
	dp.metrics.handleDur.ObserveTrace(dp.cfg.Clock.Now().Sub(start).Seconds(), traceID, start)
}

// registerMetrics wires the decision point's instruments and gauges
// into reg under dp/<name>/. Safe with a nil registry: GaugeFunc is a
// no-op and the returned instruments are nil (and therefore inert).
func (dp *DecisionPoint) registerMetrics(reg *tsdb.Registry) {
	p := dp.metricsPrefix()
	dp.metrics = &dpMetrics{
		peerUp:         reg.Counter(p + "mesh/peer_up"),
		peerDown:       reg.Counter(p + "mesh/peer_down"),
		resyncs:        reg.Counter(p + "mesh/resyncs"),
		resyncImported: reg.Counter(p + "mesh/resync_imported"),
		roundDur:       reg.Histogram(p+"mesh/round_s", roundDurBuckets),
		drains:         reg.Counter(p + "lifecycle/drains"),
		drainAborts:    reg.Counter(p + "lifecycle/drain_aborts"),
		retired:        reg.Counter(p + "lifecycle/retired"),
		gossipResets:   reg.Counter(p + "gossip/resets"),
		handleDur:      reg.Histogram(p+"handle_s", handleDurBuckets),
	}

	// Lifecycle gauge: 1 while draining, 0 otherwise (serving or
	// stopped — the stopped case is visible as the wire gauges zeroing).
	reg.GaugeFunc(p+"lifecycle/draining", func(now time.Time) float64 {
		if dp.isDraining() {
			return 1
		}
		return 0
	})

	// Service-stack gauges read through the DecisionPoint, not a
	// captured *wire.Server: restarts build a fresh server, and these
	// must follow it.
	type statFn struct {
		name string
		v    func(wire.Stats) float64
	}
	for _, s := range []statFn{
		{"wire/received", func(st wire.Stats) float64 { return float64(st.Received) }},
		{"wire/completed", func(st wire.Stats) float64 { return float64(st.Completed) }},
		{"wire/failed", func(st wire.Stats) float64 { return float64(st.Failed) }},
		{"wire/shed", func(st wire.Stats) float64 { return float64(st.Shed) }},
		{"wire/conn_lost", func(st wire.Stats) float64 { return float64(st.ConnLost) }},
		{"wire/expired", func(st wire.Stats) float64 { return float64(st.Expired) }},
		{"wire/inflight", func(st wire.Stats) float64 { return float64(st.InFlight) }},
		{"wire/queue", func(st wire.Stats) float64 { return float64(st.Queued) }},
		{"wire/lane_queue", func(st wire.Stats) float64 { return float64(st.LaneQueued) }},
		{"wire/lane_inflight", func(st wire.Stats) float64 { return float64(st.LaneInFlight) }},
	} {
		s := s
		reg.GaugeFunc(p+s.name, func(now time.Time) float64 { return s.v(dp.serverStats()) })
	}

	// Mesh gauges.
	reg.GaugeFunc(p+"mesh/rounds", func(now time.Time) float64 {
		dp.mu.Lock()
		defer dp.mu.Unlock()
		return float64(dp.rounds)
	})
	reg.GaugeFunc(p+"mesh/sent_records", func(now time.Time) float64 {
		dp.mu.Lock()
		defer dp.mu.Unlock()
		return float64(dp.sentRecs)
	})
	// round_lag_s is the time since the last completed exchange round —
	// the staleness bound the exchange interval is supposed to enforce.
	// Zero until the first round completes.
	reg.GaugeFunc(p+"mesh/round_lag_s", func(now time.Time) float64 {
		dp.mu.Lock()
		defer dp.mu.Unlock()
		if dp.lastRound.IsZero() {
			return 0
		}
		return now.Sub(dp.lastRound).Seconds()
	})
	for _, s := range []struct {
		name  string
		state peerState
	}{
		{"mesh/peers_alive", peerAlive},
		{"mesh/peers_suspect", peerSuspect},
		{"mesh/peers_dead", peerDead},
	} {
		s := s
		reg.GaugeFunc(p+s.name, func(now time.Time) float64 {
			dp.mu.Lock()
			defer dp.mu.Unlock()
			n := 0
			for _, l := range dp.peers {
				if l.state == s.state {
					n++
				}
			}
			return float64(n)
		})
	}

	// Byte accounting. The totals read through dp.serverStats and the
	// per-method splits through dp.serverMethodIO, not a captured
	// *wire.Server or its ledger — restarts build a fresh server, and
	// these must follow it (same reason as the statFn gauges above).
	reg.GaugeFunc(p+"wire/bytes_in", func(now time.Time) float64 {
		return float64(dp.serverStats().BytesIn)
	})
	reg.GaugeFunc(p+"wire/bytes_out", func(now time.Time) float64 {
		return float64(dp.serverStats().BytesOut)
	})
	for _, m := range []string{
		MethodQuery, MethodReport, MethodSchedule,
		MethodExchange, MethodGossip, MethodStatus, MethodSnapshot,
	} {
		m := m
		short := shortMethod(m)
		reg.GaugeFunc(p+"wire/method/"+short+"/bytes_in", func(now time.Time) float64 {
			return float64(dp.serverMethodIO(m).In)
		})
		reg.GaugeFunc(p+"wire/method/"+short+"/bytes_out", func(now time.Time) float64 {
			return float64(dp.serverMethodIO(m).Out)
		})
	}

	// Gossip gauges (flat zero series under the flooding strategies).
	reg.GaugeFunc(p+"gossip/pulled", func(now time.Time) float64 {
		dp.mu.Lock()
		defer dp.mu.Unlock()
		return float64(dp.gossipPulled)
	})
	reg.GaugeFunc(p+"gossip/relayed", func(now time.Time) float64 {
		dp.mu.Lock()
		defer dp.mu.Unlock()
		return float64(dp.gossipRelayed)
	})
	reg.GaugeFunc(p+"gossip/duplicates", func(now time.Time) float64 {
		dp.mu.Lock()
		defer dp.mu.Unlock()
		return float64(dp.gossipDuplicates)
	})
	reg.GaugeFunc(p+"gossip/view_size", func(now time.Time) float64 {
		return float64(dp.view.Len())
	})

	// Durability gauges — registered only when a write-ahead store is
	// wired, so non-durable decision points keep their series set (and
	// any snapshot consumers) unchanged.
	if dp.dur != nil {
		dur := dp.dur
		reg.GaugeFunc(p+"wal/appends", func(now time.Time) float64 {
			return float64(dur.log.Stats().Appends)
		})
		reg.GaugeFunc(p+"wal/bytes", func(now time.Time) float64 {
			return float64(dur.log.Stats().Bytes)
		})
		reg.GaugeFunc(p+"wal/checkpoints", func(now time.Time) float64 {
			return float64(dur.log.Stats().Checkpoints)
		})
		reg.GaugeFunc(p+"wal/append_errors", func(now time.Time) float64 {
			return float64(dur.log.Stats().AppendErrors)
		})
		reg.GaugeFunc(p+"wal/recovered", func(now time.Time) float64 {
			dur.mu.Lock()
			defer dur.mu.Unlock()
			return float64(dur.recovered)
		})
		reg.GaugeFunc(p+"wal/truncated", func(now time.Time) float64 {
			dur.mu.Lock()
			defer dur.mu.Unlock()
			return float64(dur.truncations)
		})
		reg.GaugeFunc(p+"wal/backfilled", func(now time.Time) float64 {
			dur.mu.Lock()
			defer dur.mu.Unlock()
			return float64(dur.backfilled)
		})
		// checkpoint_age_s is the staleness bound on replay work: how
		// long since the log was last compacted into a checkpoint. Zero
		// until the first checkpoint (recovery takes one on every Start).
		reg.GaugeFunc(p+"wal/checkpoint_age_s", func(now time.Time) float64 {
			dur.mu.Lock()
			defer dur.mu.Unlock()
			if dur.lastCheckpoint.IsZero() {
				return 0
			}
			return now.Sub(dur.lastCheckpoint).Seconds()
		})
	}

	// Engine gauges.
	reg.GaugeFunc(p+"engine/queries", func(now time.Time) float64 {
		return float64(dp.engine.Stats().Queries)
	})
	reg.GaugeFunc(p+"engine/local_dispatches", func(now time.Time) float64 {
		return float64(dp.engine.Stats().LocalDispatches)
	})
	reg.GaugeFunc(p+"engine/remote_dispatches", func(now time.Time) float64 {
		return float64(dp.engine.Stats().RemoteDispatches)
	})
	reg.GaugeFunc(p+"engine/sites", func(now time.Time) float64 {
		return float64(dp.engine.NumSites())
	})
	reg.GaugeFunc(p+"engine/view_age_max_s", func(now time.Time) float64 {
		return dp.engine.MaxViewAge(now).Seconds()
	})
	reg.GaugeFunc(p+"engine/view_age_mean_s", func(now time.Time) float64 {
		return dp.engine.MeanViewAge(now).Seconds()
	})
}

// metricsPrefix is the series-name prefix for everything this decision
// point registers or snapshots: dp/<name>/.
func (dp *DecisionPoint) metricsPrefix() string { return "dp/" + dp.cfg.Name + "/" }

// serverStats snapshots the current server's counters (zero while
// stopped).
func (dp *DecisionPoint) serverStats() wire.Stats {
	dp.mu.Lock()
	server := dp.server
	dp.mu.Unlock()
	if server == nil {
		return wire.Stats{}
	}
	return server.Stats()
}

// serverMethodIO reads one method's payload-byte totals off the current
// server (zero while stopped).
func (dp *DecisionPoint) serverMethodIO(method string) wire.IOBytes {
	dp.mu.Lock()
	server := dp.server
	dp.mu.Unlock()
	if server == nil {
		return wire.IOBytes{}
	}
	return server.MethodIO()[method]
}

// shortMethod strips the "DIGRUBER." service prefix for series names.
func shortMethod(m string) string {
	const prefix = "DIGRUBER."
	if len(m) > len(prefix) && m[:len(prefix)] == prefix {
		return m[len(prefix):]
	}
	return m
}

// peerAliveLocked marks a peer alive and counts the transition edge.
// Caller holds dp.mu.
func (dp *DecisionPoint) peerAliveLocked(l *peerLink) {
	was := l.state
	l.markAliveLocked()
	if was != peerAlive {
		dp.metrics.peerUp.Inc()
	}
}

// peerFailedLocked records a failed exchange and counts the edge out of
// alive. Caller holds dp.mu.
func (dp *DecisionPoint) peerFailedLocked(l *peerLink, now time.Time) {
	was := l.state
	l.markFailedLocked(now, dp.cfg.ExchangeInterval)
	if was == peerAlive && l.state != peerAlive {
		dp.metrics.peerDown.Inc()
	}
}

// MetricsSnapshot returns the latest value of every series under this
// decision point's prefix, for attaching to a StatusReply. Nil when no
// registry is wired or nothing has been sampled yet — keeping the gob
// frame byte-identical to a metrics-free build.
func (dp *DecisionPoint) MetricsSnapshot() []MetricSample {
	latest := dp.cfg.Metrics.LatestByPrefix(dp.metricsPrefix())
	if len(latest) == 0 {
		return nil
	}
	out := make([]MetricSample, len(latest))
	for i, nv := range latest {
		out[i] = MetricSample{Name: nv.Name, V: nv.V}
	}
	return out
}
