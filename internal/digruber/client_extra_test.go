package digruber

import (
	"testing"
	"time"

	"digruber/internal/netsim"
	"digruber/internal/usla"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

// TestNoUSLAQualifiedSiteDegradesToAnyFree covers the middle degradation
// tier: the broker answers, USLAs disqualify every site, but free CPUs
// exist — the client picks randomly among reported free sites and the
// request still counts as handled.
func TestNoUSLAQualifiedSiteDegradesToAnyFree(t *testing.T) {
	clock := vtime.NewReal()
	mem := wire.NewMem()
	ps := usla.NewPolicySet()
	entries, err := usla.ParseTextString("* atlas cpu 0+") // hard zero cap
	if err != nil {
		t.Fatal(err)
	}
	ps.AddAll(entries)
	dp, err := New(Config{
		Name: "dp-z", Addr: "dp-z", Transport: mem, Clock: clock,
		Profile: wire.Instant(), Policies: ps,
	})
	if err != nil {
		t.Fatal(err)
	}
	dp.Engine().UpdateSites(testStatuses(40, 70), clock.Now())
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()

	c, err := NewClient(ClientConfig{
		Name: "c", DPName: "dp-z", DPNode: "dp-z", DPAddr: "dp-z",
		Transport: mem, Clock: clock, Timeout: 2 * time.Second,
		RNG: netsim.Stream(1, "anyfree"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	dec := c.Schedule(testJob("j1"))
	if dec.Err != nil {
		t.Fatal(dec.Err)
	}
	if !dec.Handled {
		t.Fatal("broker answered; decision should count as handled")
	}
	if dec.Site != "site-000" && dec.Site != "site-001" {
		t.Fatalf("site = %q, want one of the reported free sites", dec.Site)
	}
}

// TestNoFreeSitesAtAllFallsBackToStaticList covers the deepest tier:
// broker answers, nothing has free CPUs, client uses its static list.
func TestNoFreeSitesAtAllFallsBackToStaticList(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(0, 0, 0))
	c := h.client(0, 0, []string{"static-site"})
	dec := c.Schedule(testJob("j1"))
	if dec.Err != nil {
		t.Fatal(dec.Err)
	}
	if dec.Site != "static-site" || !dec.Handled {
		t.Fatalf("decision = %+v, want handled static fallback", dec)
	}
}

// TestClientSurvivesServerRestart exercises the wire client's reconnect
// path: the decision point's listener dies and a replacement binds the
// same address; the next Schedule dials fresh and succeeds.
func TestClientSurvivesServerRestart(t *testing.T) {
	clock := vtime.NewReal()
	mem := wire.NewMem()
	mk := func() *DecisionPoint {
		dp, err := New(Config{
			Name: "dp-r", Addr: "dp-r", Transport: mem, Clock: clock,
			Profile: wire.Instant(), Strategy: NoExchange,
		})
		if err != nil {
			t.Fatal(err)
		}
		dp.Engine().UpdateSites(testStatuses(50), clock.Now())
		if err := dp.Start(); err != nil {
			t.Fatal(err)
		}
		return dp
	}
	dp1 := mk()
	c, err := NewClient(ClientConfig{
		Name: "c", DPName: "dp-r", DPNode: "dp-r", DPAddr: "dp-r",
		Transport: mem, Clock: clock, Timeout: 2 * time.Second,
		FallbackSites: []string{"fb"},
		RNG:           netsim.Stream(1, "restart"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if dec := c.Schedule(testJob("a")); dec.Err != nil || !dec.Handled {
		t.Fatalf("first schedule: %+v", dec)
	}
	dp1.Stop()
	// The very next call may land on the dead connection and degrade to
	// fallback — that's the graceful path, not an error.
	dec := c.Schedule(testJob("b"))
	if dec.Err != nil {
		t.Fatalf("schedule against dead DP errored: %v", dec.Err)
	}
	dp2 := mk()
	defer dp2.Stop()
	// Reconnect: eventually handled again.
	handled := false
	for i := 0; i < 10 && !handled; i++ {
		dec := c.Schedule(testJob("c" + string(rune('0'+i))))
		handled = dec.Handled
	}
	if !handled {
		t.Fatal("client never reconnected to the restarted decision point")
	}
}
