package digruber

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"digruber/internal/grid"
	"digruber/internal/gruber"
	"digruber/internal/netsim"
	"digruber/internal/usla"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

// TestStopStartLifecycle covers the restart contract: Stop is idempotent,
// Start after Stop brings the decision point back on the same address,
// and double Start errors.
func TestStopStartLifecycle(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(50))
	dp := h.dps[0]
	if err := dp.Start(); err == nil {
		t.Fatal("second Start did not error")
	}
	dp.Stop()
	dp.Stop() // idempotent
	if err := dp.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	c := h.client(0, 0, []string{"fb"})
	dec := c.Schedule(testJob("after-restart"))
	if dec.Err != nil || !dec.Handled {
		t.Fatalf("schedule after restart = %+v, want handled", dec)
	}
}

// TestRetransmitAfterPeerRecovery is the exchange reliability contract: a
// batch that fails to reach a down peer is retransmitted after the peer
// recovers, and the receiver's dedup prevents double counting.
func TestRetransmitAfterPeerRecovery(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 2, clock, testStatuses(50))
	dp0, dp1 := h.dps[0], h.dps[1]

	dp1.Stop()
	dp0.Engine().RecordDispatch(gruber.Dispatch{
		JobID: "j-down", Site: "site-000", Owner: "atlas", CPUs: 10,
		Runtime: time.Hour, At: clock.Now(),
	})
	dp0.ExchangeNow() // peer down: batch lost, cursor must not advance

	if err := dp1.Start(); err != nil {
		t.Fatalf("peer restart: %v", err)
	}
	dp0.ExchangeNow() // retransmit
	if got := dp1.Engine().EstFreeCPUs("site-000"); got != 40 {
		t.Fatalf("peer est after recovery = %d, want 40 (dispatch retransmitted once)", got)
	}
	dp0.ExchangeNow() // already acknowledged: nothing new, and no double count
	if got := dp1.Engine().EstFreeCPUs("site-000"); got != 40 {
		t.Fatalf("peer est after extra round = %d, want 40 (no double count)", got)
	}
	if dup := dp1.Engine().Stats().RemoteDispatches; dup != 1 {
		t.Fatalf("remote dispatches = %d, want 1", dup)
	}
}

// driveExchange runs one ExchangeNow under a Manual clock, advancing
// virtual time until the round completes, and returns how much virtual
// time the round consumed.
func driveExchange(t *testing.T, clock *vtime.Manual, dp *DecisionPoint) time.Duration {
	t.Helper()
	start := clock.Now()
	done := make(chan struct{})
	go func() {
		dp.ExchangeNow()
		close(done)
	}()
	for i := 0; i < 10000; i++ {
		select {
		case <-done:
			return clock.Now().Sub(start)
		default:
		}
		time.Sleep(time.Millisecond) // real pause: let sleepers register
		clock.Advance(time.Second)
	}
	t.Fatal("exchange round never completed")
	return 0
}

// TestDeadPeerBackoffStopsStallingRounds is the health tracker's
// acceptance test, on virtual time: a peer that blackholes traffic costs
// PeerTimeout per round only until it is declared dead; after that,
// rounds skip it until the probe backoff elapses.
func TestDeadPeerBackoffStopsStallingRounds(t *testing.T) {
	clock := vtime.NewManual(epoch)
	mem := wire.NewMem()
	network := netsim.New(1, netsim.Loopback())
	faults := netsim.NewFaultPlane()
	network.SetFaults(faults)
	const peerTimeout = 30 * time.Second
	const interval = 3 * time.Minute
	dp, err := New(Config{
		Name: "dp-0", Node: "node-0", Addr: "dp-0",
		Transport: mem, Network: network, Clock: clock,
		Profile: wire.Instant(), Strategy: UsageOnly,
		ExchangeInterval: interval, PeerTimeout: peerTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	dp.Engine().UpdateSites(testStatuses(50), clock.Now())
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()
	// The peer's node blackholes every message from the start: calls to it
	// see pure silence until the caller's deadline — the expensive failure.
	dp.AddPeer("dp-ghost", "node-ghost", "dp-ghost")
	faults.CrashNode("node-ghost", clock.Now(), clock.Now().Add(24*time.Hour))

	for round := 1; round <= deadAfterFails; round++ {
		if spent := driveExchange(t, clock, dp); spent < peerTimeout {
			t.Fatalf("round %d consumed %v, want >= PeerTimeout while the peer is not yet dead", round, spent)
		}
	}
	st := dp.Status()
	if len(st.Peers) != 1 || st.Peers[0].State != "dead" {
		t.Fatalf("peer health = %+v, want dead after %d failures", st.Peers, deadAfterFails)
	}
	// Dead now: the next round must skip the peer instead of paying
	// another PeerTimeout. driveExchange advances in 1s steps, so a
	// skipped round measures far under the timeout.
	if spent := driveExchange(t, clock, dp); spent >= peerTimeout/2 {
		t.Fatalf("round after death consumed %v; dead peer still stalling rounds", spent)
	}
}

// TestRebindClosedClientStaysClosed covers the resurrection bug: Rebind
// on a closed client must not build a fresh connection.
func TestRebindClosedClientStaysClosed(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 2, clock, testStatuses(50))
	c := h.client(0, 0, []string{"fb"})
	c.Close()
	before := c.conn()
	c.Rebind(h.dps[1].Name(), h.dps[1].Name(), h.dps[1].Addr())
	if c.conn() != before {
		t.Fatal("Rebind after Close replaced the connection (client resurrected)")
	}
	if c.DPName() != h.dps[0].Name() {
		t.Fatalf("DPName = %q after closed rebind, want original binding", c.DPName())
	}
	dec := c.Schedule(testJob("post-close"))
	if dec.Handled {
		t.Fatal("closed client still handled a job through a broker")
	}
}

// TestCloseCancelsRebindGrace covers the leaked-sleeper bug: Rebind defers
// closing the old connection by the client timeout, but Close must cut
// that short instead of leaving a goroutine sleeping out the grace period.
func TestCloseCancelsRebindGrace(t *testing.T) {
	clock := vtime.NewManual(epoch)
	mem := wire.NewMem()
	c, err := NewClient(ClientConfig{
		Name: "c", DPName: "dp-a", DPNode: "dp-a", DPAddr: "dp-a",
		Transport: mem, Clock: clock, Timeout: time.Hour,
		RNG: netsim.Stream(1, "grace"),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Rebind("dp-b", "dp-b", "dp-b")
	c.mu.Lock()
	n := len(c.retiring)
	c.mu.Unlock()
	if n != 1 {
		t.Fatalf("retiring connections = %d, want 1 after Rebind", n)
	}
	c.Close()
	// Without any virtual-time advance the retiring connection must be
	// closed and forgotten: the grace sleeper was cancelled, not awaited.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		n = len(c.retiring)
		c.mu.Unlock()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("retiring connections = %d after Close; grace sleeper not cancelled", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClientFailoverChain: after FailoverThreshold consecutive failures
// the client rebinds to the next configured decision point and is handled
// again, instead of paying fallback on every job forever.
func TestClientFailoverChain(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 2, clock, testStatuses(50))
	c, err := NewClient(ClientConfig{
		Name: "c", Node: "c",
		DPName: h.dps[0].Name(), DPNode: h.dps[0].Name(), DPAddr: h.dps[0].Addr(),
		Transport: h.mem, Clock: clock, Timeout: 2 * time.Second,
		FallbackSites: []string{"fb"},
		RNG:           netsim.Stream(1, "failover"),
		Failover: []DPRef{
			{Name: h.dps[0].Name(), Node: h.dps[0].Name(), Addr: h.dps[0].Addr()},
			{Name: h.dps[1].Name(), Node: h.dps[1].Name(), Addr: h.dps[1].Addr()},
		},
		FailoverThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	h.dps[0].Stop() // the bound broker dies
	for i := 0; i < 2; i++ {
		dec := c.Schedule(testJob(fmt.Sprintf("f%d", i)))
		if dec.Handled {
			t.Fatalf("job %d handled by a dead broker", i)
		}
		if dec.Site != "fb" {
			t.Fatalf("job %d site = %q, want static fallback while failing over", i, dec.Site)
		}
	}
	if got := c.DPName(); got != h.dps[1].Name() {
		t.Fatalf("client bound to %q after threshold failures, want %q", got, h.dps[1].Name())
	}
	dec := c.Schedule(testJob("recovered"))
	if !dec.Handled || dec.Err != nil {
		t.Fatalf("post-failover decision = %+v, want handled", dec)
	}
}

// chaosDigest is everything observable about one chaos scenario run: the
// ordered scheduling decisions and every broker's final per-site view.
type chaosDigest struct {
	Decisions []chaosDecision
	Views     map[string][]int // dp name -> EstFreeCPUs per site, in site order
	Handled   [2]int           // handled decisions pre-fault / post-heal
	Donors    []string         // snapshot donor per restarted dp, in dp order
}

type chaosDecision struct {
	JobID   string
	Site    string
	Handled bool
	BoundTo string
}

// runChaosScenario builds a 10-point mesh on a Manual clock, crashes 3
// brokers mid-run, fails their clients over, restarts the brokers with a
// snapshot resync, and returns a digest of every decision and final view.
// The whole scenario runs on one driving goroutine over virtual time, so
// two runs must produce identical digests.
func runChaosScenario(t *testing.T) chaosDigest {
	t.Helper()
	const nDP = 10
	clock := vtime.NewManual(epoch)
	mem := wire.NewMem()
	sites := testStatuses(100, 100, 100, 100)
	siteNames := make([]string, len(sites))
	for i, s := range sites {
		siteNames[i] = s.Name
	}

	dps := make([]*DecisionPoint, nDP)
	for i := 0; i < nDP; i++ {
		dp, err := New(Config{
			Name: fmt.Sprintf("dp-%d", i), Addr: fmt.Sprintf("dp-%d", i),
			Transport: mem, Clock: clock, Profile: wire.Instant(),
			Strategy:         UsageOnly,
			ExchangeInterval: 24 * time.Hour, // rounds driven by hand
			PeerTimeout:      30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		dp.Engine().UpdateSites(sites, clock.Now())
		dps[i] = dp
	}
	for _, dp := range dps {
		for _, peer := range dps {
			if peer != dp {
				dp.AddPeer(peer.Name(), peer.Name(), peer.Addr())
			}
		}
		if err := dp.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, dp := range dps {
			dp.Stop()
		}
	})

	clients := make([]*Client, nDP)
	for i := 0; i < nDP; i++ {
		chain := make([]DPRef, 0, nDP-1)
		for k := 1; k < nDP; k++ {
			p := dps[(i+k)%nDP]
			chain = append(chain, DPRef{Name: p.Name(), Node: p.Name(), Addr: p.Addr()})
		}
		c, err := NewClient(ClientConfig{
			Name:   fmt.Sprintf("client-%d", i),
			DPName: dps[i].Name(), DPNode: dps[i].Name(), DPAddr: dps[i].Addr(),
			Transport: mem, Clock: clock, Timeout: 10 * time.Second,
			FallbackSites:     siteNames,
			RNG:               netsim.Stream(99, fmt.Sprintf("chaos.client-%d", i)),
			Failover:          chain,
			FailoverThreshold: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		clients[i] = c
	}

	var digest chaosDigest
	digest.Views = make(map[string][]int)
	jobSeq := 0
	scheduleWave := func(phase int) (handled int) {
		for _, c := range clients {
			jobSeq++
			id := fmt.Sprintf("job-%03d", jobSeq)
			dec := c.Schedule(&grid.Job{
				ID: grid.JobID(id), Owner: usla.MustParsePath("atlas"),
				CPUs: 2, Runtime: time.Hour, SubmitHost: c.cfg.Name,
			})
			if dec.Handled {
				handled++
			}
			digest.Decisions = append(digest.Decisions, chaosDecision{
				JobID: id, Site: dec.Site, Handled: dec.Handled, BoundTo: c.DPName(),
			})
		}
		return handled
	}
	exchangeAll := func() {
		for _, dp := range dps {
			dp.ExchangeNow()
		}
	}

	// Phase 1: healthy plateau — two waves, fully exchanged.
	pre := scheduleWave(1)
	clock.Advance(time.Second)
	pre += scheduleWave(1)
	exchangeAll()
	digest.Handled[0] = pre

	// Phase 2: the fault plane's schedule picks 3 distinct victims.
	crashSched := netsim.RandomCrashes(7, "chaos", []string{
		"dp-1", "dp-3", "dp-4", "dp-6", "dp-7",
	}, 3, 0, time.Minute, time.Minute, 2*time.Minute)
	crashed := make([]int, 0, 3)
	for _, cr := range crashSched {
		var idx int
		fmt.Sscanf(cr.Node, "dp-%d", &idx)
		crashed = append(crashed, idx)
		dps[idx].Crash()
	}
	clock.Advance(time.Second)

	// Clients whose broker died fail over after 2 refused calls; three
	// waves let every affected client land on a live broker.
	for w := 0; w < 3; w++ {
		scheduleWave(2)
		clock.Advance(time.Second)
	}
	// Survivors keep exchanging; links to the dead accumulate failures.
	for r := 0; r < 3; r++ {
		exchangeAll()
		clock.Advance(time.Second)
	}

	// Phase 3: heal — restart each crashed broker with a snapshot resync.
	for _, idx := range crashed {
		if err := dps[idx].Restart(); err != nil {
			t.Fatalf("restart %s: %v", dps[idx].Name(), err)
		}
		// Record the donor deterministically: re-running the pull is
		// idempotent (JobID dedup) and returns the same first-alive peer.
		_, donor := dps[idx].ResyncFromPeers()
		digest.Donors = append(digest.Donors, donor)
	}
	clock.Advance(time.Second)
	post := scheduleWave(3)
	exchangeAll()
	exchangeAll() // second round: restarted brokers' new records flood out
	digest.Handled[1] = post

	for _, dp := range dps {
		view := make([]int, len(siteNames))
		for si, s := range siteNames {
			view[si] = dp.Engine().EstFreeCPUs(s)
		}
		digest.Views[dp.Name()] = view
	}
	return digest
}

// TestChaosCrashRecoveryDeterministic is the tentpole's acceptance test:
// 10 brokers, 3 crashed and healed mid-run. It asserts (a) clients fail
// over and post-heal handled throughput recovers to at least 90% of the
// pre-fault level, (b) restarted brokers converge to the survivors' usage
// views via the snapshot path, and (c) the entire scenario is bit-for-bit
// replayable: a second run yields an identical digest.
func TestChaosCrashRecoveryDeterministic(t *testing.T) {
	first := runChaosScenario(t)

	// (a) throughput recovery: phase 1 and phase 3 are one wave-pair and
	// one wave respectively, so compare handled fractions.
	preFrac := float64(first.Handled[0]) / 20.0
	postFrac := float64(first.Handled[1]) / 10.0
	if preFrac < 1.0 {
		t.Fatalf("pre-fault handled fraction = %v, want 1.0 on a healthy mesh", preFrac)
	}
	if postFrac < 0.9*preFrac {
		t.Fatalf("post-heal handled fraction %v < 90%% of pre-fault %v", postFrac, preFrac)
	}

	// (b) convergence: every broker ends with the same per-site view.
	ref := first.Views["dp-0"]
	for name, view := range first.Views {
		if !reflect.DeepEqual(view, ref) {
			t.Fatalf("%s view %v diverges from dp-0 view %v", name, view, ref)
		}
	}
	for _, donor := range first.Donors {
		if donor == "" {
			t.Fatal("a restarted broker found no snapshot donor")
		}
	}

	// (c) replay: same seeds, same virtual schedule, same digest.
	second := runChaosScenario(t)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("two runs of the same seeded chaos scenario produced different digests")
	}
}
