package digruber

import (
	"fmt"
	"testing"
	"time"

	"digruber/internal/gruber"
	"digruber/internal/tsdb"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

// controllerRig is a Manual-clock fleet whose pressure signal the test
// drives directly through the controller's ThrottleSeries counter —
// every Evaluate is an explicit, deterministic step.
type controllerRig struct {
	t        *testing.T
	mem      *wire.Mem
	clock    *vtime.Manual
	reg      *tsdb.Registry
	ctl      *Controller
	throttle *tsdb.Counter
}

func newControllerRig(t *testing.T, cfg ControllerConfig) *controllerRig {
	t.Helper()
	r := &controllerRig{
		t:     t,
		mem:   wire.NewMem(),
		clock: vtime.NewManual(epoch),
		reg:   tsdb.New(0),
	}
	statuses := testStatuses(100, 100)
	factory := func(idx int) (*DecisionPoint, error) {
		dp, err := New(Config{
			Name: fmt.Sprintf("dp-%d", idx), Addr: fmt.Sprintf("dp-%d", idx),
			Transport: r.mem, Clock: r.clock, Profile: wire.Instant(),
			ExchangeInterval: time.Hour, Metrics: r.reg,
		})
		if err != nil {
			return nil, err
		}
		dp.Engine().UpdateSites(statuses, r.clock.Now())
		if err := dp.Start(); err != nil {
			return nil, err
		}
		return dp, nil
	}
	first, err := factory(0)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Clock = r.clock
	cfg.Factory = factory
	cfg.Metrics = r.reg
	cfg.ThrottleSeries = "clients/throttled"
	r.throttle = r.reg.Counter(cfg.ThrottleSeries)
	ctl, err := NewController(cfg, []*DecisionPoint{first})
	if err != nil {
		t.Fatal(err)
	}
	r.ctl = ctl
	t.Cleanup(func() {
		for _, dp := range ctl.Fleet() {
			dp.Stop()
		}
	})
	return r
}

// step advances one interval, optionally accrues throttle events at
// rate/s over it, samples the registry, and runs one Evaluate.
func (r *controllerRig) step(interval time.Duration, rate float64) (ControllerAction, error) {
	r.t.Helper()
	r.clock.Advance(interval)
	r.throttle.Add(int64(rate * interval.Seconds()))
	r.reg.Sample(r.clock.Now())
	return r.ctl.Evaluate()
}

func fleetNames(ctl *Controller) []string {
	var out []string
	for _, dp := range ctl.Fleet() {
		out = append(out, dp.Name())
	}
	return out
}

func TestControllerScalesUpAndDown(t *testing.T) {
	iv := time.Minute
	r := newControllerRig(t, ControllerConfig{
		Interval: iv, MaxDPs: 3,
		ScaleUpAfter: 2, ScaleDownAfter: 3,
		UpCooldown: 2 * iv, DownCooldown: 3 * iv,
		DrainTimeout: time.Minute,
		Signals:      SignalThresholds{ThrottleRateHigh: 0.5, Window: 4 * iv},
	})

	// Warm-up sample so window rates have a baseline point.
	r.reg.Sample(r.clock.Now())

	// One pressured evaluation is not enough — hysteresis wants two.
	if act, err := r.step(iv, 2); err != nil || act != ActionNone {
		t.Fatalf("pass 1: act=%q err=%v, want none (streak 1/2)", act, err)
	}
	if act, err := r.step(iv, 2); err != nil || act != ActionScaleUp {
		t.Fatalf("pass 2: act=%q err=%v, want scale-up", act, err)
	}
	if got := fleetNames(r.ctl); len(got) != 2 || got[1] != "dp-1" {
		t.Fatalf("fleet after scale-up = %v, want [dp-0 dp-1]", got)
	}
	// Symmetric mesh: both members see each other.
	for i, dp := range r.ctl.Fleet() {
		if peers := dp.Peers(); len(peers) != 1 {
			t.Fatalf("member %d peers = %v, want exactly one", i, peers)
		}
	}
	if len(r.ctl.Deployments()) != 1 {
		t.Fatal("deployment not logged")
	}

	// Still pressured, but inside UpCooldown (2 intervals): no action on
	// the first post-scale pass even though the streak rebuilds.
	if act, _ := r.step(iv, 2); act != ActionNone {
		t.Fatalf("cooldown pass: act=%q, want none", act)
	}
	// Cooldown expired, streak rebuilt: the next pressured pass scales.
	if act, err := r.step(iv, 2); err != nil || act != ActionScaleUp {
		t.Fatalf("post-cooldown pass: act=%q err=%v, want scale-up", act, err)
	}
	if got := len(r.ctl.Fleet()); got != 3 {
		t.Fatalf("fleet size = %d, want 3", got)
	}

	// Load vanishes. Idle needs the window rate to read zero, then
	// ScaleDownAfter consecutive idle passes past DownCooldown. The
	// 4-interval window still holds old increments for a few passes.
	var downAt int
	for i := 1; i <= 12; i++ {
		act, err := r.step(iv, 0)
		if err != nil {
			t.Fatalf("idle pass %d: %v", i, err)
		}
		if act == ActionScaleDown {
			downAt = i
			break
		}
	}
	if downAt == 0 {
		t.Fatal("controller never scaled down after load vanished")
	}
	// LIFO: the newest member (dp-2) drained and retired; survivors no
	// longer list it as a peer.
	got := fleetNames(r.ctl)
	if len(got) != 2 || got[0] != "dp-0" || got[1] != "dp-1" {
		t.Fatalf("fleet after scale-down = %v, want [dp-0 dp-1]", got)
	}
	for _, dp := range r.ctl.Fleet() {
		for _, p := range dp.Peers() {
			if p == "dp-2" {
				t.Fatalf("%s still lists retired dp-2 as a peer", dp.Name())
			}
		}
	}
	if len(r.ctl.Retirements()) != 1 {
		t.Fatal("retirement not logged")
	}

	// The metrics plane saw it all.
	if v, _ := r.reg.Latest("fleet/scale_ups"); v.V != 2 {
		t.Fatalf("scale_ups = %v, want 2", v.V)
	}
	r.reg.Sample(r.clock.Now())
	if v, _ := r.reg.Latest("fleet/size"); v.V != 2 {
		t.Fatalf("fleet/size gauge = %v, want 2", v.V)
	}
}

func TestControllerScaleDownRespectsMinAndMax(t *testing.T) {
	iv := time.Minute
	r := newControllerRig(t, ControllerConfig{
		Interval: iv, MinDPs: 1, MaxDPs: 1,
		ScaleUpAfter: 1, ScaleDownAfter: 1,
		UpCooldown: iv / 2, DownCooldown: iv / 2,
		Signals: SignalThresholds{ThrottleRateHigh: 0.5, Window: 4 * iv},
	})
	r.reg.Sample(r.clock.Now())

	// Pressure with the fleet already at MaxDPs: no action.
	if act, err := r.step(iv, 2); err != nil || act != ActionNone {
		t.Fatalf("at max: act=%q err=%v, want none", act, err)
	}
	// Idle with the fleet already at MinDPs: no action either.
	for i := 0; i < 6; i++ {
		if act, err := r.step(iv, 0); err != nil || act != ActionNone {
			t.Fatalf("at min, pass %d: act=%q err=%v, want none", i, act, err)
		}
	}
	if got := len(r.ctl.Fleet()); got != 1 {
		t.Fatalf("fleet size = %d, want pinned at 1", got)
	}
}

// A drain that cannot finish (victim wedged by an unreachable ghost
// peer holding unflushed records) must abort: the evaluation reports
// ActionDrainAbort, the fleet keeps its size, and the victim serves on.
func TestControllerDrainAbortKeepsVictim(t *testing.T) {
	iv := time.Minute
	r := newControllerRig(t, ControllerConfig{
		Interval: iv, MaxDPs: 2,
		ScaleUpAfter: 1, ScaleDownAfter: 1,
		UpCooldown: iv / 2, DownCooldown: iv / 2,
		DrainTimeout: time.Second,
		Signals:      SignalThresholds{ThrottleRateHigh: 0.5, Window: 4 * iv},
	})
	r.reg.Sample(r.clock.Now())

	if act, err := r.step(iv, 2); err != nil || act != ActionScaleUp {
		t.Fatalf("scale-up: act=%q err=%v", act, err)
	}
	victim := r.ctl.Fleet()[1]

	// Wedge the victim: a local record plus a peer that never answers.
	victim.Engine().RecordDispatch(gruber.Dispatch{JobID: "wedge", Site: "site-000", CPUs: 1, Runtime: time.Hour, At: r.clock.Now()})
	victim.AddPeer("ghost", "ghost", "ghost-addr")

	// Age the throttle increments out of the window; these passes still
	// read a nonzero rate (pressure, but the fleet is at MaxDPs) and take
	// no action.
	for i := 0; i < 3; i++ {
		if act, err := r.step(iv, 0); err != nil || act != ActionNone {
			t.Fatalf("draining-window pass %d: act=%q err=%v", i, act, err)
		}
	}

	// The next idle pass attempts the scale-down and wedges inside the
	// victim's Drain; under the Manual clock its flush retries sleep in
	// virtual time, so burn the drain budget from a concurrent advancer
	// until the abort surfaces.
	r.clock.Advance(iv)
	r.reg.Sample(r.clock.Now())
	type result struct {
		act ControllerAction
		err error
	}
	ch := make(chan result, 1)
	go func() {
		a, e := r.ctl.Evaluate()
		ch <- result{a, e}
	}()
	var out result
	for done := false; !done; {
		select {
		case out = <-ch:
			done = true
		default:
			r.clock.Advance(100 * time.Millisecond)
			time.Sleep(time.Millisecond)
		}
	}
	if out.act != ActionDrainAbort || out.err == nil {
		t.Fatalf("wedged scale-down: act=%q err=%v, want drain-abort with error", out.act, out.err)
	}
	if got := len(r.ctl.Fleet()); got != 2 {
		t.Fatalf("fleet size after abort = %d, want 2 (victim kept)", got)
	}
	if st := victim.LifecycleState(); st != StateServing {
		t.Fatalf("victim state after abort = %q, want serving", st)
	}
	r.reg.Sample(r.clock.Now())
	if v, _ := r.reg.Latest("fleet/drain_aborts"); v.V != 1 {
		t.Fatalf("drain_aborts = %v, want 1", v.V)
	}
}

// Rebalance: managed clients spread round-robin as the fleet grows, and
// are pulled off a victim before its drain begins.
func TestControllerRebalancesClients(t *testing.T) {
	iv := time.Minute
	r := newControllerRig(t, ControllerConfig{
		Interval: iv, MaxDPs: 2,
		ScaleUpAfter: 1, ScaleDownAfter: 2,
		UpCooldown: iv / 2, DownCooldown: iv / 2,
		DrainTimeout: time.Minute,
		Signals:      SignalThresholds{ThrottleRateHigh: 0.5, Window: 2 * iv},
	})
	var clients []*Client
	for i := 0; i < 4; i++ {
		c, err := NewClient(ClientConfig{
			Name: fmt.Sprintf("c%d", i), DPName: "dp-0", DPNode: "dp-0", DPAddr: "dp-0",
			Transport: r.mem, Clock: r.clock, Timeout: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		clients = append(clients, c)
	}
	r.ctl.ManageClients(clients)
	r.reg.Sample(r.clock.Now())

	if act, err := r.step(iv, 2); err != nil || act != ActionScaleUp {
		t.Fatalf("scale-up: act=%q err=%v", act, err)
	}
	byDP := map[string]int{}
	for _, c := range clients {
		byDP[c.DPName()]++
	}
	if byDP["dp-0"] != 2 || byDP["dp-1"] != 2 {
		t.Fatalf("client spread after scale-up = %v, want 2/2", byDP)
	}

	// Drain dp-1 away again; every client must end up back on dp-0.
	for i := 0; i < 12; i++ {
		if act, err := r.step(iv, 0); err != nil {
			t.Fatal(err)
		} else if act == ActionScaleDown {
			break
		}
	}
	if got := len(r.ctl.Fleet()); got != 1 {
		t.Fatalf("fleet size = %d, want 1", got)
	}
	for _, c := range clients {
		if c.DPName() != "dp-0" {
			t.Fatalf("client %s still bound to %s after retirement", c.cfg.Name, c.DPName())
		}
	}
}
