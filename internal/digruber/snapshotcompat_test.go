package digruber_test

import (
	"bytes"
	"encoding/gob"
	"testing"

	"digruber/internal/digruber"
	"digruber/internal/gossip"
)

// SnapshotArgsV9 is the pre-durability snapshot request (through PR 9):
// just the requester's name, no version vector.
type SnapshotArgsV9 struct {
	From string
}

// TestSnapshotWireCompat is the append-only gate for the durability
// era's Vector field: a vector-less request — what every non-durable
// decision point still sends — encodes byte-identically to the PR-9
// shape, and the field costs bytes only when a recovered point actually
// advertises its replayed state.
func TestSnapshotWireCompat(t *testing.T) {
	oldMsg := primedEncode(t, SnapshotArgsV9{From: "p"}, SnapshotArgsV9{From: "dp-3"})
	newMsg := primedEncode(t, digruber.SnapshotArgs{From: "p"}, digruber.SnapshotArgs{From: "dp-3"})
	if old, new := valueBody(t, oldMsg), valueBody(t, newMsg); !bytes.Equal(old, new) {
		t.Fatalf("vector-less snapshot request value encoding changed:\n old %x\n new %x", old, new)
	}

	withVector := digruber.SnapshotArgs{
		From:   "dp-3",
		Vector: []gossip.Cursor{{Origin: "dp-0", Seq: 12}, {Origin: "dp-3", Seq: 4}},
	}
	extended := primedEncode(t, digruber.SnapshotArgs{From: "p"}, withVector)
	if bytes.Equal(valueBody(t, newMsg), valueBody(t, extended)) {
		t.Fatal("setting Vector did not change the encoding")
	}
}

// TestSnapshotCrossDecode: PR-9-era and current shapes interoperate in
// both directions around the Vector field — an old donor asked by a
// recovered point simply serves the full snapshot, and a new donor
// reads an old request as vector-less.
func TestSnapshotCrossDecode(t *testing.T) {
	// Old requester → new donor: Vector stays nil (full snapshot).
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(SnapshotArgsV9{From: "dp-3"}); err != nil {
		t.Fatal(err)
	}
	var got digruber.SnapshotArgs
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("new donor decoding old request: %v", err)
	}
	if got.From != "dp-3" || got.Vector != nil {
		t.Fatalf("decoded %+v, want From dp-3 and nil Vector", got)
	}

	// New requester (vector set) → old donor: the unknown trailing field
	// is skipped, the request still parses.
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(digruber.SnapshotArgs{
		From:   "dp-3",
		Vector: []gossip.Cursor{{Origin: "dp-0", Seq: 12}},
	}); err != nil {
		t.Fatal(err)
	}
	var old SnapshotArgsV9
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatalf("old donor decoding new request: %v", err)
	}
	if old.From != "dp-3" {
		t.Fatalf("decoded %+v, want From dp-3", old)
	}
}
