package digruber

import (
	"testing"
	"time"

	"digruber/internal/vtime"
	"digruber/internal/wire"
)

func TestSaturationDetectorRates(t *testing.T) {
	clock := vtime.NewManual(epoch)
	d := NewSaturationDetector(SaturationConfig{CapacityRate: 2, Window: 10 * time.Second, Workers: 2}, clock)
	// 10 arrivals in 10s = 1 req/s: under capacity.
	for i := 0; i < 10; i++ {
		d.ObserveArrival()
		clock.Advance(time.Second)
	}
	obs, cap0, sat := d.Assess(wire.Stats{})
	if sat {
		t.Fatalf("saturated at %v req/s with capacity %v", obs, cap0)
	}
	// Burst to 5 req/s: over capacity.
	for i := 0; i < 50; i++ {
		d.ObserveArrival()
		clock.Advance(200 * time.Millisecond)
	}
	obs, _, sat = d.Assess(wire.Stats{})
	if !sat {
		t.Fatalf("not saturated at %v req/s with capacity 2", obs)
	}
	if d.Events() != 1 {
		t.Fatalf("events = %d, want 1", d.Events())
	}
}

func TestSaturationWindowForgets(t *testing.T) {
	clock := vtime.NewManual(epoch)
	d := NewSaturationDetector(SaturationConfig{CapacityRate: 1, Window: 10 * time.Second}, clock)
	for i := 0; i < 100; i++ {
		d.ObserveArrival()
	}
	if _, _, sat := d.Assess(wire.Stats{}); !sat {
		t.Fatal("burst not detected")
	}
	clock.Advance(time.Minute)
	if _, _, sat := d.Assess(wire.Stats{}); sat {
		t.Fatal("saturation persisted after window elapsed")
	}
	// A new episode counts as a second event.
	for i := 0; i < 100; i++ {
		d.ObserveArrival()
	}
	d.Assess(wire.Stats{})
	if d.Events() != 2 {
		t.Fatalf("events = %d, want 2", d.Events())
	}
}

func TestSaturationQueueThreshold(t *testing.T) {
	clock := vtime.NewManual(epoch)
	d := NewSaturationDetector(SaturationConfig{Window: time.Minute, Workers: 4}, clock)
	// Default threshold = 3×4 = 12 queued.
	if _, _, sat := d.Assess(wire.Stats{Queued: 11}); sat {
		t.Fatal("saturated below queue threshold")
	}
	if _, _, sat := d.Assess(wire.Stats{Queued: 12}); !sat {
		t.Fatal("not saturated at queue threshold")
	}
}

func TestSaturationSelfCalibration(t *testing.T) {
	clock := vtime.NewManual(epoch)
	d := NewSaturationDetector(SaturationConfig{Window: 10 * time.Second, Workers: 4}, clock)
	// Mean service time 2s with 4 workers → capacity 2 req/s.
	_, cap0, _ := d.Assess(wire.Stats{ServiceMean: 2})
	if cap0 != 2 {
		t.Fatalf("self-calibrated capacity = %v, want 2", cap0)
	}
}

func TestOverseerEventsAndRecommendation(t *testing.T) {
	clock := vtime.NewManual(epoch)
	o := NewOverseer(clock)
	saturatedA := true
	o.Attach("dp-a", func() StatusReply {
		return StatusReply{Saturated: saturatedA, ObservedRate: 6, CapacityRate: 2}
	})
	o.Attach("dp-b", func() StatusReply {
		return StatusReply{Saturated: false, ObservedRate: 1, CapacityRate: 2}
	})
	replies := o.Poll()
	if len(replies) != 2 || replies[0].Name != "dp-a" {
		t.Fatalf("poll = %+v", replies)
	}
	if len(o.Events()) != 1 || o.Events()[0].DP != "dp-a" {
		t.Fatalf("events = %+v", o.Events())
	}
	rec := o.Recommend()
	// Total observed 7 req/s over per-point capacity 2 → 4 DPs needed.
	if rec.Current != 2 || rec.Needed != 4 {
		t.Fatalf("recommendation = %+v, want needed 4", rec)
	}
	if len(rec.Saturated) != 1 || rec.Saturated[0] != "dp-a" {
		t.Fatalf("saturated list = %v", rec.Saturated)
	}
	// Same saturated point again: no duplicate event.
	o.Poll()
	if len(o.Events()) != 1 {
		t.Fatal("duplicate saturation event recorded")
	}
	// Recovery then relapse: second event.
	saturatedA = false
	o.Poll()
	saturatedA = true
	o.Poll()
	if len(o.Events()) != 2 {
		t.Fatalf("events after relapse = %d, want 2", len(o.Events()))
	}
}

func TestOverseerSaturatedButUnderRateGrowsByOne(t *testing.T) {
	clock := vtime.NewManual(epoch)
	o := NewOverseer(clock)
	// Queue-based saturation without rate overload still forces growth.
	o.Attach("dp-a", func() StatusReply {
		return StatusReply{Saturated: true, ObservedRate: 1, CapacityRate: 2}
	})
	o.Poll()
	rec := o.Recommend()
	if rec.Needed != 2 {
		t.Fatalf("needed = %d, want current+1 = 2", rec.Needed)
	}
}

func TestOverseerEmpty(t *testing.T) {
	o := NewOverseer(vtime.NewManual(epoch))
	rec := o.Recommend()
	if rec.Current != 0 || rec.Needed != 0 || len(rec.Saturated) != 0 {
		t.Fatalf("empty recommendation = %+v", rec)
	}
}

func TestDecisionPointSaturatesUnderBurst(t *testing.T) {
	clock := vtime.NewReal()
	mem := wire.NewMem()
	dp, err := New(Config{
		Name: "dp-slow", Addr: "dp-slow", Transport: mem, Clock: clock,
		Profile:    wire.StackProfile{Name: "slow", BaseOverhead: 200 * time.Millisecond, MaxConcurrent: 1, QueueLimit: 64},
		Saturation: SaturationConfig{Window: 5 * time.Second, QueueThreshold: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	dp.Engine().UpdateSites(testStatuses(100), clock.Now())
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()

	// Fire 8 concurrent queries at a 1-worker container: queue builds.
	results := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			cli := wire.NewClient(wire.ClientConfig{
				Node: "c", ServerNode: "dp-slow", Addr: "dp-slow", Transport: mem, Clock: clock,
			})
			defer cli.Close()
			_, err := wire.Call[QueryArgs, QueryReply](cli, MethodQuery, QueryArgs{Owner: "atlas", CPUs: 1}, 10*time.Second)
			results <- err
		}(i)
	}
	sawSaturated := false
	for i := 0; i < 100; i++ {
		if st := dp.Status(); st.Saturated {
			sawSaturated = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < 8; i++ {
		<-results
	}
	if !sawSaturated {
		t.Fatal("decision point never reported saturation under burst")
	}
}
