package digruber

import (
	"errors"
	"strings"
	"testing"
	"time"

	"digruber/internal/netsim"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

// waitState polls (real time — the lifecycle transitions are driven by a
// concurrent Drain) until the decision point reports the wanted state.
func waitState(t *testing.T, dp *DecisionPoint, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for dp.LifecycleState() != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached state %q (now %q)", dp.Name(), want, dp.LifecycleState())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDrainCompletesAndFlushesToPeers(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 2, clock, testStatuses(50, 80, 10))
	c := h.client(0, 0, nil)

	// Give dp-0 local dispatch records that dp-1 has never seen.
	for _, id := range []string{"j1", "j2", "j3"} {
		if dec := c.Schedule(testJob(id)); dec.Err != nil || !dec.Handled {
			t.Fatalf("schedule %s: %+v", id, dec)
		}
	}
	if h.dps[1].Engine().Stats().RemoteDispatches != 0 {
		t.Fatal("dp-1 saw dispatches before any exchange")
	}

	if err := h.dps[0].Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := h.dps[0].LifecycleState(); st != StateStopped {
		t.Fatalf("state after drain = %q, want stopped", st)
	}
	// The final flush must have delivered every local record.
	if got := h.dps[1].Engine().Stats().RemoteDispatches; got != 3 {
		t.Fatalf("dp-1 remote dispatches after drain = %d, want 3", got)
	}
}

func TestDrainWithoutPeersStops(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(50))
	c := h.client(0, 0, nil)
	if dec := c.Schedule(testJob("solo")); dec.Err != nil {
		t.Fatal(dec.Err)
	}
	// No peer will ever ask for the log; the flush is vacuously complete.
	if err := h.dps[0].Drain(2 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := h.dps[0].LifecycleState(); st != StateStopped {
		t.Fatalf("state = %q, want stopped", st)
	}
}

func TestDrainLifecycleErrors(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(50))
	h.dps[0].Stop()
	if err := h.dps[0].Drain(time.Second); err == nil {
		t.Fatal("drain of a stopped point must error")
	}
	if err := h.dps[0].Start(); err != nil {
		t.Fatal(err)
	}
	if st := h.dps[0].LifecycleState(); st != StateServing {
		t.Fatalf("state after restart = %q, want serving", st)
	}
}

// A drain that cannot discharge its flush obligation (here: a peer that
// never answers) must refuse new work while it tries, then abort back to
// serving — never strand the point half-dead.
func TestDrainAbortsBackToServingOnUnreachablePeer(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 2, clock, testStatuses(50, 80))
	c := h.client(0, 0, nil)

	// One local record, and a ghost peer that will never acknowledge it.
	if dec := c.Schedule(testJob("j1")); dec.Err != nil || !dec.Handled {
		t.Fatalf("schedule: %+v", dec)
	}
	h.dps[0].AddPeer("ghost", "ghost", "ghost-addr")

	drainErr := make(chan error, 1)
	go func() { drainErr <- h.dps[0].Drain(1500 * time.Millisecond) }()
	waitState(t, h.dps[0], StateDraining)

	// While draining: Status advertises it, and new work is refused with
	// the retryable sentinel.
	if st := h.dps[0].Status(); st.State != StateDraining {
		t.Fatalf("Status.State = %q, want draining", st.State)
	}
	cli := wire.NewClient(wire.ClientConfig{
		Node: "probe", ServerNode: h.dps[0].Name(), Addr: h.dps[0].Addr(),
		Transport: h.mem, Clock: clock,
	})
	defer cli.Close()
	_, err := wire.Call[QueryArgs, QueryReply](cli, MethodQuery, QueryArgs{Owner: "atlas", CPUs: 1}, time.Second)
	if !errors.Is(err, wire.ErrDraining) {
		t.Fatalf("query during drain: err = %v, want ErrDraining", err)
	}

	err = <-drainErr
	if err == nil || !strings.Contains(err.Error(), "drain aborted") {
		t.Fatalf("drain err = %v, want abort", err)
	}
	if st := h.dps[0].LifecycleState(); st != StateServing {
		t.Fatalf("state after abort = %q, want serving", st)
	}
	// Back in service: queries answer again.
	if _, err := wire.Call[QueryArgs, QueryReply](cli, MethodQuery, QueryArgs{Owner: "atlas", CPUs: 1}, time.Second); err != nil {
		t.Fatalf("query after abort: %v", err)
	}
}

// The client side of the protocol: a draining refusal triggers an
// immediate failover rebind and a same-call re-issue, so the job is
// handled by a peer instead of degrading to random fallback.
func TestClientFailsOverOnDraining(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 2, clock, testStatuses(50, 80, 10))
	c, err := NewClient(ClientConfig{
		Name: "c", Node: "c",
		DPName: h.dps[0].Name(), DPNode: h.dps[0].Name(), DPAddr: h.dps[0].Addr(),
		Transport: h.mem, Clock: clock, Timeout: 2 * time.Second,
		FallbackSites: []string{"fb"},
		RNG:           netsim.Stream(1, "drain-failover"),
		Failover: []DPRef{
			{Name: h.dps[0].Name(), Node: h.dps[0].Name(), Addr: h.dps[0].Addr()},
			{Name: h.dps[1].Name(), Node: h.dps[1].Name(), Addr: h.dps[1].Addr()},
		},
		FailoverThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	// Wedge dp-0 in Draining: one unacknowledged record + a ghost peer.
	if dec := c.Schedule(testJob("j0")); dec.Err != nil {
		t.Fatal(dec.Err)
	}
	h.dps[0].AddPeer("ghost", "ghost", "ghost-addr")
	drainErr := make(chan error, 1)
	go func() { drainErr <- h.dps[0].Drain(3 * time.Second) }()
	waitState(t, h.dps[0], StateDraining)

	dec := c.Schedule(testJob("failover-job"))
	if dec.Err != nil {
		t.Fatal(dec.Err)
	}
	if !dec.Handled {
		t.Fatal("job hit random fallback; want drain-aware failover to a live peer")
	}
	if got := c.DPName(); got != h.dps[1].Name() {
		t.Fatalf("client bound to %s after draining refusal, want %s", got, h.dps[1].Name())
	}
	// dp-1 did the work.
	if h.dps[1].Engine().Stats().LocalDispatches == 0 {
		t.Fatal("dp-1 never recorded the failed-over dispatch")
	}
	<-drainErr
}

func TestRemovePeerTearsDownLink(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 3, clock, testStatuses(50, 80))

	h.dps[0].RemovePeer("dp-1")
	if got := h.dps[0].Peers(); len(got) != 1 || got[0] != "dp-2" {
		t.Fatalf("peers after remove = %v, want [dp-2]", got)
	}
	// Idempotent; unknown names are no-ops.
	h.dps[0].RemovePeer("dp-1")
	h.dps[0].RemovePeer("never-existed")

	// Health reporting follows the peer set.
	st := h.dps[0].Status()
	if len(st.Peers) != 1 || st.Peers[0].Name != "dp-2" {
		t.Fatalf("status peers = %+v", st.Peers)
	}

	// Exchange still works with the survivor and ignores the removed one.
	c := h.client(0, 0, nil)
	if dec := c.Schedule(testJob("after-remove")); dec.Err != nil {
		t.Fatal(dec.Err)
	}
	h.dps[0].ExchangeNow()
	if h.dps[2].Engine().Stats().RemoteDispatches != 1 {
		t.Fatal("surviving peer missed the exchange")
	}
	if h.dps[1].Engine().Stats().RemoteDispatches != 0 {
		t.Fatal("removed peer still receives exchanges")
	}
}

// StatusReply.State crosses the wire: serving encodes as empty (and so
// stays byte-identical to pre-lifecycle builds — asserted in the compat
// tests), draining as the label.
func TestStatusStateOverWire(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(50))
	cli := wire.NewClient(wire.ClientConfig{
		Node: "probe", ServerNode: h.dps[0].Name(), Addr: h.dps[0].Addr(),
		Transport: h.mem, Clock: clock,
	})
	defer cli.Close()
	st, err := wire.Call[StatusArgs, StatusReply](cli, MethodStatus, StatusArgs{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "" {
		t.Fatalf("serving State = %q, want empty", st.State)
	}
}
