package digruber

import (
	"sync"
	"testing"
	"time"

	"digruber/internal/vtime"
)

// Edge-path coverage for exchangeNow: the nil-client skip (a link whose
// client is gone because Stop or RemovePeer got there first) and the
// dead-peer probe-backoff skip (dead and not yet due for a probe).

// TestExchangeSkipsNilClientLinks: a stopped decision point's links have
// no clients; a round over them must skip every link and send nothing
// rather than dereference nil.
func TestExchangeSkipsNilClientLinks(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 2, clock, testStatuses(50))
	dispatchAt(h, 0, "nil-1")
	h.dps[0].Stop() // nils every peer link's client
	if sent := h.dps[0].exchangeNow(false); sent != 0 {
		t.Fatalf("stopped point sent %d records, want 0", sent)
	}
	// force must not override the nil-client skip either — there is no
	// client to force.
	if sent := h.dps[0].exchangeNow(true); sent != 0 {
		t.Fatalf("forced round on stopped point sent %d records, want 0", sent)
	}
	if got := h.dps[1].Engine().Stats().RemoteDispatches; got != 0 {
		t.Fatalf("peer received %d records from a stopped point", got)
	}
}

// TestExchangeStopRaceIsSafe races Stop against in-flight rounds: the
// "Stop raced us" re-check inside the send loop must keep the round
// from touching a just-nilled client. Interleaving is scheduler-driven;
// the -race job gives this teeth.
func TestExchangeStopRaceIsSafe(t *testing.T) {
	clock := vtime.NewReal()
	for i := 0; i < 20; i++ {
		h := newHarness(t, 3, clock, testStatuses(50))
		dispatchAt(h, 0, "race-1")
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.dps[0].ExchangeNow()
		}()
		h.dps[0].Stop()
		wg.Wait()
	}
}

// TestExchangeSkipsDeadPeerUntilProbeDue: a dead link sits out rounds
// until its probe time arrives; force overrides the wait (the drain
// flush's mode).
func TestExchangeSkipsDeadPeerUntilProbeDue(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 2, clock, testStatuses(50))
	dispatchAt(h, 0, "dead-1")

	// White-box: declare the link dead with a probe an hour out.
	h.dps[0].mu.Lock()
	l := h.dps[0].peers["dp-1"]
	l.state = peerDead
	l.fails = deadAfterFails
	l.nextProbe = clock.Now().Add(time.Hour)
	h.dps[0].mu.Unlock()

	if sent := h.dps[0].ExchangeNow(); sent != 0 {
		t.Fatalf("round sent %d records to a dead peer before its probe was due", sent)
	}
	if got := h.dps[1].Engine().Stats().RemoteDispatches; got != 0 {
		t.Fatalf("dead-and-not-due peer received %d records", got)
	}

	// force ignores the backoff entirely.
	if sent := h.dps[0].exchangeNow(true); sent != 1 {
		t.Fatalf("forced round sent %d records, want 1", sent)
	}
	if got := h.dps[1].Engine().Stats().RemoteDispatches; got != 1 {
		t.Fatalf("peer received %d records after forced probe, want 1", got)
	}

	// The successful forced contact revived the link: the regular path
	// reaches it again (nothing new to send, but the skip is gone).
	h.dps[0].mu.Lock()
	state := h.dps[0].peers["dp-1"].state
	h.dps[0].mu.Unlock()
	if state != peerAlive {
		t.Fatalf("peer state %v after successful forced exchange, want alive", state)
	}
}
