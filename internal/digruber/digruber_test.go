package digruber

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"digruber/internal/grid"
	"digruber/internal/gruber"
	"digruber/internal/netsim"
	"digruber/internal/usla"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

var epoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)

// harness spins up n decision points in a full mesh over an in-memory
// transport with no WAN delay and an instant service stack, feeding each
// an identical static baseline of sites.
type harness struct {
	t     *testing.T
	mem   *wire.Mem
	clock vtime.Clock
	dps   []*DecisionPoint
}

func newHarness(t *testing.T, n int, clock vtime.Clock, statuses []grid.Status) *harness {
	// Exchange is driven manually via ExchangeNow: the interval is far
	// beyond any test's real-clock runtime.
	return newHarnessStrategy(t, n, clock, statuses, UsageOnly)
}

func newHarnessStrategy(t *testing.T, n int, clock vtime.Clock, statuses []grid.Status, strategy DisseminationStrategy) *harness {
	t.Helper()
	h := &harness{t: t, mem: wire.NewMem(), clock: clock}
	for i := 0; i < n; i++ {
		dp, err := New(Config{
			Name:             fmt.Sprintf("dp-%d", i),
			Addr:             fmt.Sprintf("dp-%d", i),
			Transport:        h.mem,
			Clock:            clock,
			Profile:          wire.Instant(),
			Strategy:         strategy,
			ExchangeInterval: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		dp.Engine().UpdateSites(statuses, clock.Now())
		h.dps = append(h.dps, dp)
	}
	for _, dp := range h.dps {
		for _, peer := range h.dps {
			if peer != dp {
				dp.AddPeer(peer.Name(), peer.Name(), peer.Addr())
			}
		}
		if err := dp.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, dp := range h.dps {
			dp.Stop()
		}
	})
	return h
}

func (h *harness) client(i, dp int, sites []string) *Client {
	h.t.Helper()
	c, err := NewClient(ClientConfig{
		Name:          fmt.Sprintf("client-%d", i),
		DPName:        h.dps[dp].Name(),
		DPNode:        h.dps[dp].Name(),
		DPAddr:        h.dps[dp].Addr(),
		Transport:     h.mem,
		Clock:         h.clock,
		Timeout:       5 * time.Second,
		FallbackSites: sites,
		RNG:           netsim.Stream(7, fmt.Sprintf("test.client-%d", i)),
	})
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(c.Close)
	return c
}

func testStatuses(free ...int) []grid.Status {
	out := make([]grid.Status, len(free))
	for i, f := range free {
		out[i] = grid.Status{
			Name:        fmt.Sprintf("site-%03d", i),
			TotalCPUs:   100,
			FreeCPUs:    f,
			UsageByPath: map[string]int{},
		}
	}
	return out
}

func testJob(id string) *grid.Job {
	return &grid.Job{ID: grid.JobID(id), Owner: usla.MustParsePath("atlas"), CPUs: 1, Runtime: time.Hour, SubmitHost: "client-0"}
}

func TestClientSchedulesThroughDP(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(50, 80, 10))
	c := h.client(0, 0, nil)
	dec := c.Schedule(testJob("j1"))
	if dec.Err != nil {
		t.Fatal(dec.Err)
	}
	if !dec.Handled {
		t.Fatal("decision not handled by GRUBER")
	}
	if dec.Site != "site-001" {
		t.Fatalf("site = %s, want site-001 (most free CPUs)", dec.Site)
	}
	// The dispatch report must have updated the DP's view.
	if got := h.dps[0].Engine().EstFreeCPUs("site-001"); got != 79 {
		t.Fatalf("DP view after report = %d, want 79", got)
	}
}

func TestClientFallbackOnTimeout(t *testing.T) {
	// No decision point at the address: dial fails, fallback kicks in.
	mem := wire.NewMem()
	c, err := NewClient(ClientConfig{
		Name: "client-0", DPAddr: "nowhere", Transport: mem,
		Clock: vtime.NewReal(), Timeout: 50 * time.Millisecond,
		FallbackSites: []string{"site-a", "site-b"},
		RNG:           netsim.Stream(1, "t"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dec := c.Schedule(testJob("j1"))
	if dec.Handled {
		t.Fatal("decision marked handled despite unreachable DP")
	}
	if dec.Site != "site-a" && dec.Site != "site-b" {
		t.Fatalf("fallback site = %q", dec.Site)
	}
	if dec.Err != nil {
		t.Fatalf("fallback should succeed: %v", dec.Err)
	}
}

func TestClientFallbackWithoutSitesErrors(t *testing.T) {
	mem := wire.NewMem()
	c, _ := NewClient(ClientConfig{
		Name: "client-0", DPAddr: "nowhere", Transport: mem,
		Clock: vtime.NewReal(), Timeout: 20 * time.Millisecond,
		RNG: netsim.Stream(1, "t"),
	})
	defer c.Close()
	dec := c.Schedule(testJob("j1"))
	if dec.Err == nil {
		t.Fatal("expected error with no fallback sites")
	}
}

func TestExchangePropagatesDispatches(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 3, clock, testStatuses(100, 100))
	// Client of dp-0 schedules 10 jobs.
	c := h.client(0, 0, nil)
	for i := 0; i < 10; i++ {
		if dec := c.Schedule(testJob(fmt.Sprintf("j%d", i))); dec.Err != nil {
			t.Fatal(dec.Err)
		}
	}
	before1 := h.dps[1].Engine().Stats().RemoteDispatches
	if before1 != 0 {
		t.Fatalf("dp-1 saw %d dispatches before exchange", before1)
	}
	h.dps[0].ExchangeNow()
	s1, s2 := h.dps[1].Engine().Stats(), h.dps[2].Engine().Stats()
	if s1.RemoteDispatches != 10 || s2.RemoteDispatches != 10 {
		t.Fatalf("remote dispatches after exchange: dp-1=%d dp-2=%d, want 10/10", s1.RemoteDispatches, s2.RemoteDispatches)
	}
	// Views converge: all three DPs now estimate the same free CPUs.
	for i, dp := range h.dps {
		sum := dp.Engine().EstFreeCPUs("site-000") + dp.Engine().EstFreeCPUs("site-001")
		if sum != 190 {
			t.Fatalf("dp-%d total est free = %d, want 190", i, sum)
		}
	}
}

func TestExchangeIncrementalAndIdempotent(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 2, clock, testStatuses(100))
	c := h.client(0, 0, nil)
	c.Schedule(testJob("a"))
	h.dps[0].ExchangeNow()
	c.Schedule(testJob("b"))
	h.dps[0].ExchangeNow()
	h.dps[0].ExchangeNow() // nothing new
	st := h.dps[1].Engine().Stats()
	if st.RemoteDispatches != 2 {
		t.Fatalf("dp-1 remote dispatches = %d, want 2 (no duplicates applied)", st.RemoteDispatches)
	}
	if got := h.dps[1].Engine().EstFreeCPUs("site-000"); got != 98 {
		t.Fatalf("dp-1 est = %d, want 98", got)
	}
}

func TestPeriodicExchangeLoop(t *testing.T) {
	clock := vtime.NewManual(epoch)
	mem := wire.NewMem()
	mk := func(name string) *DecisionPoint {
		dp, err := New(Config{
			Name: name, Addr: name, Transport: mem, Clock: clock,
			Profile: wire.Instant(), Strategy: UsageOnly,
			ExchangeInterval: 3 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		dp.Engine().UpdateSites(testStatuses(100), clock.Now())
		return dp
	}
	a, b := mk("dp-a"), mk("dp-b")
	a.AddPeer("dp-b", "dp-b", "dp-b")
	b.AddPeer("dp-a", "dp-a", "dp-a")
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	defer b.Stop()

	a.Engine().RecordDispatch(gruber.Dispatch{JobID: "x", Site: "site-000", Owner: "atlas", CPUs: 5, Runtime: time.Hour, At: clock.Now()})
	clock.Advance(3 * time.Minute) // ticker fires; exchange runs in goroutine
	waitFor(t, func() bool { return b.Engine().Stats().RemoteDispatches == 1 })
	if got := b.Engine().EstFreeCPUs("site-000"); got != 95 {
		t.Fatalf("dp-b est = %d, want 95", got)
	}
}

func TestUSLADissemination(t *testing.T) {
	clock := vtime.NewReal()
	mem := wire.NewMem()
	psA := usla.NewPolicySet()
	entries, _ := usla.ParseTextString("* atlas cpu 25+")
	psA.AddAll(entries)
	a, err := New(Config{
		Name: "dp-a", Addr: "dp-a", Transport: mem, Clock: clock,
		Profile: wire.Instant(), Strategy: UsageAndUSLAs, Policies: psA,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{
		Name: "dp-b", Addr: "dp-b", Transport: mem, Clock: clock,
		Profile: wire.Instant(), Strategy: UsageAndUSLAs,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Engine().UpdateSites(testStatuses(100), clock.Now())
	b.Engine().UpdateSites(testStatuses(100), clock.Now())
	a.AddPeer("dp-b", "dp-b", "dp-b")
	b.AddPeer("dp-a", "dp-a", "dp-a")
	a.Start()
	b.Start()
	defer a.Stop()
	defer b.Stop()

	a.ExchangeNow()
	l := b.Engine().Policies().LimitsFor("site-000", usla.MustParsePath("atlas"), usla.CPU)
	if l.Upper != 25 {
		t.Fatalf("dp-b atlas upper = %v, want 25 (USLA disseminated)", l.Upper)
	}
}

func TestNoExchangeStrategyKeepsViewsApart(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarnessStrategy(t, 2, clock, testStatuses(100), NoExchange)
	c := h.client(0, 0, nil)
	c.Schedule(testJob("j1"))
	h.dps[0].ExchangeNow() // strategy is NoExchange: must be a no-op
	if st := h.dps[1].Engine().Stats(); st.RemoteDispatches != 0 {
		t.Fatal("NoExchange still propagated dispatches")
	}
}

func TestStatusRPC(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(100))
	c := h.client(0, 0, nil)
	c.Schedule(testJob("j1"))
	cli := wire.NewClient(wire.ClientConfig{
		Node: "observer", ServerNode: h.dps[0].Name(), Addr: h.dps[0].Addr(),
		Transport: h.mem, Clock: clock,
	})
	defer cli.Close()
	st, err := wire.Call[StatusArgs, StatusReply](cli, MethodStatus, StatusArgs{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "dp-0" || st.Queries != 1 || st.LocalDispatches != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestQueryValidation(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(100))
	cli := wire.NewClient(wire.ClientConfig{
		Node: "x", ServerNode: "dp-0", Addr: "dp-0", Transport: h.mem, Clock: clock,
	})
	defer cli.Close()
	if _, err := wire.Call[QueryArgs, QueryReply](cli, MethodQuery, QueryArgs{Owner: "bad..path", CPUs: 1}, time.Second); err == nil {
		t.Fatal("bad owner accepted")
	}
	if _, err := wire.Call[QueryArgs, QueryReply](cli, MethodQuery, QueryArgs{Owner: "atlas", CPUs: 0}, time.Second); err == nil {
		t.Fatal("zero CPUs accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Name: "x", Addr: "a"}); err == nil {
		t.Fatal("missing transport accepted")
	}
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Fatal("empty client config accepted")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(10))
	if err := h.dps[0].Start(); err == nil {
		t.Fatal("second Start succeeded")
	}
}

// TestConcurrentQueriesAndExchanges hammers one decision point from every
// direction at once — client scheduling, inbound state exchanges from a
// peer, outbound exchanges, status RPCs, and site-baseline refreshes — so
// `go test -race` can observe the full lock surface of the DP under
// contention. The paper's mesh relies on a DP serving queries while
// exchange traffic arrives; this is the smallest harness with that shape.
func TestConcurrentQueriesAndExchanges(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 2, clock, testStatuses(400, 400, 400))

	const (
		clients     = 4
		jobsPerC    = 25
		exchRounds  = 40
		statusPolls = 60
		siteUpdates = 30
	)

	// dp-1's client gives the peer local dispatches to flood at dp-0.
	peerClient := h.client(100, 1, nil)
	for i := 0; i < 10; i++ {
		if dec := peerClient.Schedule(testJob(fmt.Sprintf("peer-j%d", i))); dec.Err != nil {
			t.Fatal(dec.Err)
		}
	}

	var wg sync.WaitGroup
	var scheduled atomic.Int64
	errs := make(chan error, clients*jobsPerC)

	// Client goroutines: concurrent queries + dispatch reports into dp-0.
	for c := 0; c < clients; c++ {
		cli := h.client(c, 0, nil)
		wg.Add(1)
		go func(c int, cli *Client) {
			defer wg.Done()
			for i := 0; i < jobsPerC; i++ {
				dec := cli.Schedule(testJob(fmt.Sprintf("c%d-j%d", c, i)))
				if dec.Err != nil {
					errs <- dec.Err
					return
				}
				scheduled.Add(1)
			}
		}(c, cli)
	}

	// Inbound exchanges: dp-1 pushes its state at dp-0 mid-query.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < exchRounds; i++ {
			h.dps[1].ExchangeNow()
		}
	}()

	// Outbound exchanges: dp-0 floods its own dispatch records.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < exchRounds; i++ {
			h.dps[0].ExchangeNow()
		}
	}()

	// Status readers: the observability path shares the DP's counters.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < statusPolls; i++ {
			st := h.dps[0].Status()
			if st.Name != "dp-0" {
				errs <- fmt.Errorf("status name = %q", st.Name)
				return
			}
		}
	}()

	// Baseline refreshes: the monitoring feed rewrites site state while
	// the scheduler reads it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < siteUpdates; i++ {
			h.dps[0].Engine().UpdateSites(testStatuses(400, 400, 400), clock.Now())
			for _, s := range []string{"site-000", "site-001", "site-002"} {
				h.dps[0].Engine().EstFreeCPUs(s)
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	if got := scheduled.Load(); got != clients*jobsPerC {
		t.Fatalf("scheduled %d jobs, want %d", got, clients*jobsPerC)
	}
	st := h.dps[0].Status()
	if st.Queries < clients*jobsPerC {
		t.Fatalf("dp-0 queries = %d, want >= %d", st.Queries, clients*jobsPerC)
	}
	if st.LocalDispatches != clients*jobsPerC {
		t.Fatalf("dp-0 local dispatches = %d, want %d", st.LocalDispatches, clients*jobsPerC)
	}
	// A final settle round each way: both DPs must agree on totals.
	h.dps[0].ExchangeNow()
	h.dps[1].ExchangeNow()
	s0, s1 := h.dps[0].Engine().Stats(), h.dps[1].Engine().Stats()
	if s1.RemoteDispatches != clients*jobsPerC {
		t.Fatalf("dp-1 remote dispatches = %d, want %d", s1.RemoteDispatches, clients*jobsPerC)
	}
	if s0.RemoteDispatches != 10 {
		t.Fatalf("dp-0 remote dispatches = %d, want 10 (peer's jobs)", s0.RemoteDispatches)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
