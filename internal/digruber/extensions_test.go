package digruber

import (
	"fmt"
	"testing"
	"time"

	"digruber/internal/netsim"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

func TestSingleCallScheduling(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(50, 80, 10))
	c, err := NewClient(ClientConfig{
		Name: "client-sc", DPName: "dp-0", DPNode: "dp-0", DPAddr: h.dps[0].Addr(),
		Transport: h.mem, Clock: clock, Timeout: 5 * time.Second,
		SingleCall: true,
		RNG:        netsim.Stream(1, "sc"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dec := c.Schedule(testJob("j1"))
	if dec.Err != nil || !dec.Handled {
		t.Fatalf("decision = %+v", dec)
	}
	if dec.Site != "site-001" {
		t.Fatalf("site = %s, want site-001", dec.Site)
	}
	// The dispatch is recorded server-side without a report call.
	if got := h.dps[0].Engine().EstFreeCPUs("site-001"); got != 79 {
		t.Fatalf("DP view = %d, want 79", got)
	}
	st := h.dps[0].Engine().Stats()
	if st.LocalDispatches != 1 {
		t.Fatalf("dispatches = %d", st.LocalDispatches)
	}
}

func TestSingleCallNoQualifyingSiteFallsBack(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(0, 0))
	c, _ := NewClient(ClientConfig{
		Name: "client-sc", DPName: "dp-0", DPNode: "dp-0", DPAddr: h.dps[0].Addr(),
		Transport: h.mem, Clock: clock, Timeout: 5 * time.Second,
		SingleCall:    true,
		FallbackSites: []string{"site-000"},
		RNG:           netsim.Stream(1, "sc2"),
	})
	defer c.Close()
	dec := c.Schedule(testJob("j1"))
	if dec.Err != nil {
		t.Fatal(dec.Err)
	}
	if !dec.Handled || dec.Site != "site-000" {
		t.Fatalf("decision = %+v, want handled fallback", dec)
	}
}

func TestSingleCallValidation(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(10))
	cli := wire.NewClient(wire.ClientConfig{
		Node: "x", ServerNode: "dp-0", Addr: h.dps[0].Addr(), Transport: h.mem, Clock: clock,
	})
	defer cli.Close()
	if _, err := wire.Call[ScheduleArgs, ScheduleReply](cli, MethodSchedule,
		ScheduleArgs{JobID: "j", Owner: "atlas", CPUs: 0, Runtime: time.Hour}, time.Second); err == nil {
		t.Fatal("zero CPUs accepted")
	}
	if _, err := wire.Call[ScheduleArgs, ScheduleReply](cli, MethodSchedule,
		ScheduleArgs{JobID: "j", Owner: "bad..path", CPUs: 1, Runtime: time.Hour}, time.Second); err == nil {
		t.Fatal("bad owner accepted")
	}
}

func TestClientRebind(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 2, clock, testStatuses(100))
	c := h.client(0, 0, nil)
	if dec := c.Schedule(testJob("r1")); dec.Err != nil {
		t.Fatal(dec.Err)
	}
	if h.dps[0].Engine().Stats().Queries != 1 {
		t.Fatal("dp-0 did not serve the first query")
	}
	c.Rebind(h.dps[1].Name(), h.dps[1].Name(), h.dps[1].Addr())
	if got := c.DPName(); got != "dp-1" {
		t.Fatalf("DPName after rebind = %s", got)
	}
	if dec := c.Schedule(testJob("r2")); dec.Err != nil {
		t.Fatal(dec.Err)
	}
	if h.dps[1].Engine().Stats().Queries != 1 {
		t.Fatal("dp-1 did not serve the post-rebind query")
	}
	// Rebinding to the same target is a no-op.
	c.Rebind(h.dps[1].Name(), h.dps[1].Name(), h.dps[1].Addr())
	if dec := c.Schedule(testJob("r3")); dec.Err != nil {
		t.Fatal(dec.Err)
	}
}

// provisionerHarness builds a 1-DP fleet with a slow profile, a factory
// for more DPs, and a battery of clients.
func TestProvisionerDeploysUnderSaturation(t *testing.T) {
	clock := vtime.NewReal()
	mem := wire.NewMem()
	statuses := testStatuses(100, 100, 100)
	slow := wire.StackProfile{Name: "slow", BaseOverhead: 100 * time.Millisecond, MaxConcurrent: 1, QueueLimit: 128}

	factory := func(idx int) (*DecisionPoint, error) {
		dp, err := New(Config{
			Name: fmt.Sprintf("dp-%d", idx), Addr: fmt.Sprintf("dp-%d", idx),
			Transport: mem, Clock: clock, Profile: slow,
			Strategy: UsageOnly, ExchangeInterval: time.Hour,
			Saturation: SaturationConfig{Window: 2 * time.Second, QueueThreshold: 3},
		})
		if err != nil {
			return nil, err
		}
		dp.Engine().UpdateSites(statuses, clock.Now())
		if err := dp.Start(); err != nil {
			return nil, err
		}
		return dp, nil
	}

	first, err := factory(0)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := NewProvisioner(ProvisionerConfig{
		Clock: clock, Factory: factory, MaxDPs: 3, Interval: time.Hour,
	}, []*DecisionPoint{first})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, dp := range prov.Fleet() {
			dp.Stop()
		}
	}()

	var clients []*Client
	for i := 0; i < 8; i++ {
		c, err := NewClient(ClientConfig{
			Name: fmt.Sprintf("pclient-%d", i), DPName: "dp-0", DPNode: "dp-0", DPAddr: "dp-0",
			Transport: mem, Clock: clock, Timeout: 2 * time.Second,
			FallbackSites: []string{"site-000"},
			RNG:           netsim.Stream(int64(i), "prov"),
		})
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
		defer c.Close()
	}
	prov.ManageClients(clients)

	// Saturate dp-0: fire concurrent schedules at the 1-worker stack.
	done := make(chan struct{})
	for _, c := range clients {
		c := c
		go func() {
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				c.Schedule(testJob(fmt.Sprintf("%s-%d", c.cfg.Name, i)))
			}
		}()
	}

	deployed := false
	for i := 0; i < 100; i++ {
		dp, err := prov.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		if dp != nil {
			deployed = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(done)
	if !deployed {
		t.Fatal("provisioner never deployed a new decision point under saturation")
	}
	fleet := prov.Fleet()
	if len(fleet) != 2 {
		t.Fatalf("fleet = %d, want 2", len(fleet))
	}
	if len(prov.Deployments()) != 1 {
		t.Fatal("deployment not logged")
	}
	// Clients rebalanced: half should now name dp-1.
	rebound := 0
	for _, c := range clients {
		if c.DPName() == "dp-1" {
			rebound++
		}
	}
	if rebound != 4 {
		t.Fatalf("rebound clients = %d, want 4 of 8", rebound)
	}
	// The newcomer is meshed with the original.
	if peers := fleet[1].Peers(); len(peers) != 1 || peers[0] != "dp-0" {
		t.Fatalf("new DP peers = %v", peers)
	}
	if peers := fleet[0].Peers(); len(peers) != 1 || peers[0] != "dp-1" {
		t.Fatalf("original DP peers = %v", peers)
	}
}

func TestProvisionerValidation(t *testing.T) {
	clock := vtime.NewReal()
	if _, err := NewProvisioner(ProvisionerConfig{}, nil); err == nil {
		t.Fatal("empty config accepted")
	}
	factory := func(int) (*DecisionPoint, error) { return nil, nil }
	if _, err := NewProvisioner(ProvisionerConfig{Clock: clock, Factory: factory}, nil); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

func TestProvisionerRespectsMaxDPs(t *testing.T) {
	clock := vtime.NewReal()
	mem := wire.NewMem()
	factory := func(idx int) (*DecisionPoint, error) {
		dp, err := New(Config{
			Name: fmt.Sprintf("cap-dp-%d", idx), Addr: fmt.Sprintf("cap-dp-%d", idx),
			Transport: mem, Clock: clock, Profile: wire.Instant(),
			Strategy: NoExchange,
		})
		if err != nil {
			return nil, err
		}
		if err := dp.Start(); err != nil {
			return nil, err
		}
		return dp, nil
	}
	first, err := factory(0)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := NewProvisioner(ProvisionerConfig{Clock: clock, Factory: factory, MaxDPs: 1, Interval: time.Hour}, []*DecisionPoint{first})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Stop()
	// Force a saturated report by attaching a fake status source.
	prov.Overseer().Attach("cap-dp-0", func() StatusReply {
		return StatusReply{Saturated: true, ObservedRate: 100, CapacityRate: 1}
	})
	dp, err := prov.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if dp != nil {
		t.Fatal("provisioner grew past MaxDPs")
	}
}
