// Wire-compatibility regression tests for the metrics extension of the
// Status RPC. They live in an external test package so the pre-metrics
// shapes of StatusArgs and StatusReply can be declared under their
// original names — gob transmits type descriptors by name, so the
// replicas must be named identically for descriptor-level comparisons.
package digruber_test

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
	"time"

	"digruber/internal/digruber"
)

// StatusArgs is the pre-metrics request shape (PR 3 and earlier).
type StatusArgs struct{}

// PeerHealth mirrors digruber.PeerHealth (unchanged by the extension).
type PeerHealth struct {
	Name             string
	State            string
	ConsecutiveFails int
}

// StatusReply is the pre-metrics reply shape: every field up to and
// including At, without the appended Metrics slice.
type StatusReply struct {
	Name             string
	Queries          int64
	LocalDispatches  int64
	RemoteDispatches int64
	Received         int64
	Completed        int64
	Shed             int64
	ConnLost         int64
	InFlight         int64
	Queued           int
	Saturated        bool
	ObservedRate     float64
	CapacityRate     float64
	Peers            []PeerHealth
	At               time.Time
}

var compatEpoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)

func newReply() digruber.StatusReply {
	return digruber.StatusReply{
		Name: "dp-0", Queries: 42, LocalDispatches: 7, RemoteDispatches: 3,
		Received: 50, Completed: 48, Shed: 1, ConnLost: 1, InFlight: 2, Queued: 4,
		Saturated: true, ObservedRate: 2.5, CapacityRate: 2.0,
		Peers: []digruber.PeerHealth{
			{Name: "dp-1", State: "alive"},
			{Name: "dp-2", State: "dead", ConsecutiveFails: 5},
		},
		At: compatEpoch.Add(17 * time.Minute),
	}
}

func oldReply() StatusReply {
	return StatusReply{
		Name: "dp-0", Queries: 42, LocalDispatches: 7, RemoteDispatches: 3,
		Received: 50, Completed: 48, Shed: 1, ConnLost: 1, InFlight: 2, Queued: 4,
		Saturated: true, ObservedRate: 2.5, CapacityRate: 2.0,
		Peers: []PeerHealth{
			{Name: "dp-1", State: "alive"},
			{Name: "dp-2", State: "dead", ConsecutiveFails: 5},
		},
		At: compatEpoch.Add(17 * time.Minute),
	}
}

// primedEncode encodes prime (carrying the type descriptors) and then
// v on one gob stream, returning only v's message bytes. Gob's value
// encoding elides zero fields and delta-encodes field indices, so this
// isolates exactly what an established connection's persistent encoder
// would transmit per message.
func primedEncode(t *testing.T, prime, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(prime); err != nil {
		t.Fatalf("prime: %v", err)
	}
	n := buf.Len()
	if err := enc.Encode(v); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return append([]byte(nil), buf.Bytes()[n:]...)
}

// valueBody strips a gob value message's framing — the byte-count
// prefix and the stream-local type ID — leaving the field/value
// encoding. The type ID is excluded deliberately: it reflects how many
// descriptor types the stream happened to register earlier (the new
// binary also registers MetricSample), not what a message costs or
// carries.
func valueBody(t *testing.T, msg []byte) []byte {
	t.Helper()
	skipUint := func(b []byte) []byte {
		if len(b) == 0 {
			t.Fatal("short gob message")
		}
		if b[0] < 0x80 {
			return b[1:]
		}
		return b[1+(256-int(b[0])):]
	}
	return skipUint(skipUint(msg))
}

// TestStatusWireCompat is the regression gate for the Metrics
// extension: with metrics absent, the value encodings of the new shapes
// are byte-identical to the pre-metrics shapes. This is why Metrics
// must stay the LAST StatusReply field — gob delta-encodes field
// indices, so inserting it earlier would renumber every later field
// and break this identity.
func TestStatusWireCompat(t *testing.T) {
	oldMsg := primedEncode(t, StatusReply{Name: "p"}, oldReply())
	newMsg := primedEncode(t, digruber.StatusReply{Name: "p"}, newReply())
	if len(oldMsg) != len(newMsg) {
		t.Fatalf("metrics-free reply message grew: %d → %d bytes", len(oldMsg), len(newMsg))
	}
	if old, new := valueBody(t, oldMsg), valueBody(t, newMsg); !bytes.Equal(old, new) {
		t.Fatalf("metrics-free reply value encoding changed:\n old %x\n new %x", old, new)
	}

	oldArgs := primedEncode(t, StatusArgs{}, StatusArgs{})
	newArgs := primedEncode(t, digruber.StatusArgs{}, digruber.StatusArgs{})
	if len(oldArgs) != len(newArgs) {
		t.Fatalf("default StatusArgs message grew: %d → %d bytes", len(oldArgs), len(newArgs))
	}
	if old, new := valueBody(t, oldArgs), valueBody(t, newArgs); !bytes.Equal(old, new) {
		t.Fatalf("default StatusArgs value encoding changed:\n old %x\n new %x", old, new)
	}

	// And the extension does pay its way only when used: attaching a
	// snapshot changes the encoding (it had better).
	withMetrics := newReply()
	withMetrics.Metrics = []digruber.MetricSample{{Name: "dp/dp-0/wire/inflight", V: 2}}
	extended := primedEncode(t, digruber.StatusReply{Name: "p"}, withMetrics)
	if bytes.Equal(valueBody(t, newMsg), valueBody(t, extended)) {
		t.Fatal("metrics snapshot did not change the encoding")
	}
}

// TestStatusCrossDecode: old and new shapes interoperate in both
// directions — gob matches fields by name and ignores fields unknown
// to the receiver.
func TestStatusCrossDecode(t *testing.T) {
	// Old sender → new receiver: Metrics stays nil.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(oldReply()); err != nil {
		t.Fatal(err)
	}
	var got digruber.StatusReply
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, newReply()) {
		t.Fatalf("old→new decode mismatch:\n got %+v\nwant %+v", got, newReply())
	}

	// New sender (with metrics) → old receiver: snapshot is dropped,
	// everything else survives.
	withMetrics := newReply()
	withMetrics.Metrics = []digruber.MetricSample{{Name: "x", V: 1}}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(withMetrics); err != nil {
		t.Fatal(err)
	}
	var old StatusReply
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, oldReply()) {
		t.Fatalf("new→old decode mismatch:\n got %+v\nwant %+v", old, oldReply())
	}

	// Old empty args → new handler: WithMetrics decodes to false.
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(StatusArgs{}); err != nil {
		t.Fatal(err)
	}
	var args digruber.StatusArgs
	if err := gob.NewDecoder(&buf).Decode(&args); err != nil {
		t.Fatal(err)
	}
	if args.WithMetrics {
		t.Fatal("empty args decoded WithMetrics=true")
	}
}

// MetricSample mirrors digruber.MetricSample (unchanged by the overload
// extension).
type MetricSample struct {
	Name string
	V    float64
}

// StatusReplyV5 is the metrics-era reply shape (PR 4): Metrics already
// appended, the overload plane's Expired counter not yet.
type StatusReplyV5 struct {
	Name             string
	Queries          int64
	LocalDispatches  int64
	RemoteDispatches int64
	Received         int64
	Completed        int64
	Shed             int64
	ConnLost         int64
	InFlight         int64
	Queued           int
	Saturated        bool
	ObservedRate     float64
	CapacityRate     float64
	Peers            []PeerHealth
	At               time.Time
	Metrics          []MetricSample
}

func v5Reply() StatusReplyV5 {
	return StatusReplyV5{
		Name: "dp-0", Queries: 42, LocalDispatches: 7, RemoteDispatches: 3,
		Received: 50, Completed: 48, Shed: 1, ConnLost: 1, InFlight: 2, Queued: 4,
		Saturated: true, ObservedRate: 2.5, CapacityRate: 2.0,
		Peers: []PeerHealth{
			{Name: "dp-1", State: "alive"},
			{Name: "dp-2", State: "dead", ConsecutiveFails: 5},
		},
		At:      compatEpoch.Add(17 * time.Minute),
		Metrics: []MetricSample{{Name: "dp/dp-0/wire/inflight", V: 2}},
	}
}

// TestStatusExpiredWireCompat extends the append-only regression gate to
// the overload plane's Expired field: a reply with Expired zero — even
// one carrying a metrics snapshot — encodes byte-identically to the
// PR-4 shape, and the field costs bytes only when set. (Value bodies
// carry no type names, so the differently-named replica compares
// cleanly.)
func TestStatusExpiredWireCompat(t *testing.T) {
	cur := newReply()
	cur.Metrics = []digruber.MetricSample{{Name: "dp/dp-0/wire/inflight", V: 2}}
	oldMsg := primedEncode(t, StatusReplyV5{Name: "p"}, v5Reply())
	newMsg := primedEncode(t, digruber.StatusReply{Name: "p"}, cur)
	if old, new := valueBody(t, oldMsg), valueBody(t, newMsg); !bytes.Equal(old, new) {
		t.Fatalf("expired-free reply value encoding changed:\n old %x\n new %x", old, new)
	}

	withExpired := cur
	withExpired.Expired = 9
	extended := primedEncode(t, digruber.StatusReply{Name: "p"}, withExpired)
	if bytes.Equal(valueBody(t, newMsg), valueBody(t, extended)) {
		t.Fatal("setting Expired did not change the encoding")
	}
}

// StatusReplyV6 is the overload-era reply shape (PR 5/6): fields
// through Expired, the lifecycle State label not yet appended.
type StatusReplyV6 struct {
	Name             string
	Queries          int64
	LocalDispatches  int64
	RemoteDispatches int64
	Received         int64
	Completed        int64
	Shed             int64
	ConnLost         int64
	InFlight         int64
	Queued           int
	Saturated        bool
	ObservedRate     float64
	CapacityRate     float64
	Peers            []PeerHealth
	At               time.Time
	Metrics          []MetricSample
	Expired          int64
}

func v6Reply() StatusReplyV6 {
	return StatusReplyV6{
		Name: "dp-0", Queries: 42, LocalDispatches: 7, RemoteDispatches: 3,
		Received: 50, Completed: 48, Shed: 1, ConnLost: 1, InFlight: 2, Queued: 4,
		Saturated: true, ObservedRate: 2.5, CapacityRate: 2.0,
		Peers: []PeerHealth{
			{Name: "dp-1", State: "alive"},
			{Name: "dp-2", State: "dead", ConsecutiveFails: 5},
		},
		At:      compatEpoch.Add(17 * time.Minute),
		Metrics: []MetricSample{{Name: "dp/dp-0/wire/inflight", V: 2}},
		Expired: 9,
	}
}

// TestStatusStateWireCompat extends the append-only gate to the
// lifecycle State field: a serving reply (State empty) encodes
// byte-identically to the pre-lifecycle PR-5 shape, and the field costs
// bytes only while the broker is actually draining.
func TestStatusStateWireCompat(t *testing.T) {
	cur := newReply()
	cur.Metrics = []digruber.MetricSample{{Name: "dp/dp-0/wire/inflight", V: 2}}
	cur.Expired = 9
	oldMsg := primedEncode(t, StatusReplyV6{Name: "p"}, v6Reply())
	newMsg := primedEncode(t, digruber.StatusReply{Name: "p"}, cur)
	if old, new := valueBody(t, oldMsg), valueBody(t, newMsg); !bytes.Equal(old, new) {
		t.Fatalf("serving reply value encoding changed:\n old %x\n new %x", old, new)
	}

	draining := cur
	draining.State = digruber.StateDraining
	extended := primedEncode(t, digruber.StatusReply{Name: "p"}, draining)
	if bytes.Equal(valueBody(t, newMsg), valueBody(t, extended)) {
		t.Fatal("setting State did not change the encoding")
	}
}

// TestStatusStateCrossDecode: PR-5-era and current shapes interoperate
// in both directions around the State field — an old monitor polling a
// draining broker simply never sees the label.
func TestStatusStateCrossDecode(t *testing.T) {
	// Old sender → new receiver: State stays empty, i.e. serving.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v6Reply()); err != nil {
		t.Fatal(err)
	}
	var got digruber.StatusReply
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want := newReply()
	want.Metrics = []digruber.MetricSample{{Name: "dp/dp-0/wire/inflight", V: 2}}
	want.Expired = 9
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v6→new decode mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got.State != "" {
		t.Fatalf("v6 reply decoded State=%q, want serving (empty)", got.State)
	}

	// New draining sender → old receiver: the label is dropped,
	// everything else survives.
	draining := want
	draining.State = digruber.StateDraining
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(draining); err != nil {
		t.Fatal(err)
	}
	var old StatusReplyV6
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, v6Reply()) {
		t.Fatalf("new→v6 decode mismatch:\n got %+v\nwant %+v", old, v6Reply())
	}
}

// TestStatusExpiredCrossDecode: PR-4 and current shapes interoperate in
// both directions around the Expired field.
func TestStatusExpiredCrossDecode(t *testing.T) {
	// Old sender → new receiver: Expired stays zero.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v5Reply()); err != nil {
		t.Fatal(err)
	}
	var got digruber.StatusReply
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want := newReply()
	want.Metrics = []digruber.MetricSample{{Name: "dp/dp-0/wire/inflight", V: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v5→new decode mismatch:\n got %+v\nwant %+v", got, want)
	}

	// New sender (with Expired) → old receiver: the counter is dropped,
	// everything else survives.
	withExpired := want
	withExpired.Expired = 9
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(withExpired); err != nil {
		t.Fatal(err)
	}
	var old StatusReplyV5
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, v5Reply()) {
		t.Fatalf("new→v5 decode mismatch:\n got %+v\nwant %+v", old, v5Reply())
	}
}

// StatusReplyV8 is the lifecycle-era reply shape (PR 7/8): fields
// through State, the SLO Alerts summary not yet appended.
type StatusReplyV8 struct {
	Name             string
	Queries          int64
	LocalDispatches  int64
	RemoteDispatches int64
	Received         int64
	Completed        int64
	Shed             int64
	ConnLost         int64
	InFlight         int64
	Queued           int
	Saturated        bool
	ObservedRate     float64
	CapacityRate     float64
	Peers            []PeerHealth
	At               time.Time
	Metrics          []MetricSample
	Expired          int64
	State            string
}

func v8Reply() StatusReplyV8 {
	return StatusReplyV8{
		Name: "dp-0", Queries: 42, LocalDispatches: 7, RemoteDispatches: 3,
		Received: 50, Completed: 48, Shed: 1, ConnLost: 1, InFlight: 2, Queued: 4,
		Saturated: true, ObservedRate: 2.5, CapacityRate: 2.0,
		Peers: []PeerHealth{
			{Name: "dp-1", State: "alive"},
			{Name: "dp-2", State: "dead", ConsecutiveFails: 5},
		},
		At:      compatEpoch.Add(17 * time.Minute),
		Metrics: []MetricSample{{Name: "dp/dp-0/wire/inflight", V: 2}},
		Expired: 9,
		State:   "draining",
	}
}

// curV8Reply builds the current shape with every pre-Alerts extension
// field set, matching v8Reply.
func curV8Reply() digruber.StatusReply {
	cur := newReply()
	cur.Metrics = []digruber.MetricSample{{Name: "dp/dp-0/wire/inflight", V: 2}}
	cur.Expired = 9
	cur.State = digruber.StateDraining
	return cur
}

// TestStatusAlertsWireCompat extends the append-only gate to the SLO
// Alerts summary: a reply with no active alerts — even one exercising
// every earlier extension field — encodes byte-identically to the PR-8
// shape, and the field costs bytes only while an alert is actually
// pending or firing.
func TestStatusAlertsWireCompat(t *testing.T) {
	oldMsg := primedEncode(t, StatusReplyV8{Name: "p"}, v8Reply())
	newMsg := primedEncode(t, digruber.StatusReply{Name: "p"}, curV8Reply())
	if old, new := valueBody(t, oldMsg), valueBody(t, newMsg); !bytes.Equal(old, new) {
		t.Fatalf("alert-free reply value encoding changed:\n old %x\n new %x", old, new)
	}

	alerting := curV8Reply()
	alerting.Alerts = []digruber.AlertSummary{{
		VO: "atlas", State: "firing", Since: compatEpoch.Add(15 * time.Minute), Burn: 3.5,
	}}
	extended := primedEncode(t, digruber.StatusReply{Name: "p"}, alerting)
	if bytes.Equal(valueBody(t, newMsg), valueBody(t, extended)) {
		t.Fatal("setting Alerts did not change the encoding")
	}
}

// TestStatusAlertsCrossDecode: PR-8-era and current shapes interoperate
// in both directions around the Alerts field — an old monitor polling an
// alerting broker simply never sees the summary.
func TestStatusAlertsCrossDecode(t *testing.T) {
	// Old sender → new receiver: Alerts stays nil.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v8Reply()); err != nil {
		t.Fatal(err)
	}
	var got digruber.StatusReply
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, curV8Reply()) {
		t.Fatalf("v8→new decode mismatch:\n got %+v\nwant %+v", got, curV8Reply())
	}
	if got.Alerts != nil {
		t.Fatalf("v8 reply decoded Alerts=%+v, want nil", got.Alerts)
	}

	// New alerting sender → old receiver: the summary is dropped,
	// everything else survives.
	alerting := curV8Reply()
	alerting.Alerts = []digruber.AlertSummary{{
		VO: "atlas", State: "firing", Since: compatEpoch.Add(15 * time.Minute), Burn: 3.5,
	}}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(alerting); err != nil {
		t.Fatal(err)
	}
	var old StatusReplyV8
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, v8Reply()) {
		t.Fatalf("new→v8 decode mismatch:\n got %+v\nwant %+v", old, v8Reply())
	}
}
