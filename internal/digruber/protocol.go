// Package digruber implements the paper's contribution: the distributed
// two-layer brokering infrastructure that extends GRUBER with multiple
// decision points, loosely synchronized by periodic information exchange
// over a mesh.
//
// A DecisionPoint wraps a gruber.Engine behind the emulated GT3/GT4
// service stack (wire package). Submission-host Clients bind statically
// to one decision point, query it for site loads, run site-selector logic
// locally, and report the dispatch back — the two-round-trip interaction
// the paper describes. Decision points flood their recent dispatch
// observations to every peer each exchange interval; how much they share
// is the DisseminationStrategy (paper Section 3.5). A client whose
// decision point fails to answer within its timeout degrades gracefully
// to random site selection without USLAs.
package digruber

import (
	"time"

	"digruber/internal/gossip"
	"digruber/internal/gruber"
	"digruber/internal/usla"
)

// RPC method names exposed by a decision point.
const (
	MethodQuery    = "DIGRUBER.QuerySiteLoads"
	MethodReport   = "DIGRUBER.ReportDispatch"
	MethodExchange = "DIGRUBER.Exchange"
	MethodStatus   = "DIGRUBER.Status"
	// MethodSchedule is the paper's proposed tighter coupling between
	// broker and job manager: one round trip in which the decision point
	// runs the site selection itself and records the dispatch, instead
	// of shipping full site state to the client and waiting for a
	// report. See the coupling ablation.
	MethodSchedule = "DIGRUBER.ScheduleJob"
	// MethodProposeAgreement installs or updates a WS-Agreement-style
	// USLA at runtime — the paper's "interactions relating to USLA
	// modification" that load the brokering service alongside queries.
	// Under the usage-and-USLAs strategy the new rules flood to peers at
	// the next exchange.
	MethodProposeAgreement = "DIGRUBER.ProposeAgreement"
	// MethodPublishedAgreements returns the decision point's current
	// USLA knowledge as agreements, for consumers to "access and
	// interpret USLA statements published by providers".
	MethodPublishedAgreements = "DIGRUBER.PublishedAgreements"
	// MethodSnapshot is the anti-entropy path: a decision point rejoining
	// after a crash pulls one peer's full unexpired dispatch view instead
	// of waiting for records to drift in over incremental exchanges.
	MethodSnapshot = "DIGRUBER.Snapshot"
	// MethodGossip is one peer-sampling push-pull exchange under the
	// Gossip dissemination strategy: digests (version vectors over origin
	// decision points) travel both ways and each side ships what the
	// other's vector lacks, own and relayed records alike.
	MethodGossip = "DIGRUBER.Gossip"
)

// ProposeArgs carries one agreement document (XML, as a WS-Agreement
// subset) to install.
type ProposeArgs struct {
	AgreementXML []byte
}

// ProposeReply reports how many USLA entries the agreement contributed
// (0 if it was already expired).
type ProposeReply struct {
	EntriesAdded int
	Warnings     []string
}

// PublishedArgs optionally filters by provider ("" = all).
type PublishedArgs struct {
	Provider string
}

// PublishedReply returns agreements as XML documents.
type PublishedReply struct {
	AgreementsXML [][]byte
}

// ScheduleArgs asks the decision point to select a site and record the
// dispatch in one interaction.
type ScheduleArgs struct {
	JobID   string
	Owner   string
	CPUs    int
	Runtime time.Duration
}

// ScheduleReply returns the chosen site (OK false when no site
// qualifies under USLAs and availability).
type ScheduleReply struct {
	Site string
	OK   bool
}

// QueryArgs asks for the engine's evaluation of every site for a job.
type QueryArgs struct {
	// Owner is the dotted consumer path of the job.
	Owner string
	// CPUs is the job's CPU demand.
	CPUs int
}

// QueryReply carries the per-site evaluations. Its size (hundreds of
// sites) is what makes a DI-GRUBER query so much heavier than the simple
// service call of Figure 1.
type QueryReply struct {
	Loads []gruber.SiteLoad
}

// ReportArgs informs the decision point of the client's site selection.
type ReportArgs struct {
	Dispatch gruber.Dispatch
}

// ReportReply acknowledges a dispatch report.
type ReportReply struct {
	OK bool
}

// ExchangeArgs is one peer-to-peer synchronization message: the sender's
// own dispatch observations since its last successful exchange with this
// peer, plus (under the usage-and-USLAs strategy) USLA entries.
type ExchangeArgs struct {
	From       string
	Dispatches []gruber.Dispatch
	USLAs      []usla.Entry
}

// ExchangeReply reports how many records were new to the receiver.
type ExchangeReply struct {
	Merged int
}

// GossipArgs is the push half of one gossip exchange: the sender's
// version-vector digest over every origin it holds a log for, the
// records it believes this receiver lacks (diffed against the
// receiver's last-acknowledged vector), and a bounded membership sample
// so fleet growth propagates epidemically too.
type GossipArgs struct {
	From string
	// Round is the sender's gossip round counter, carried for traces and
	// debugging (receivers do not depend on it).
	Round uint64
	// Digest is the sender's version vector as a sorted cursor list —
	// everything the sender holds, so the receiver can both dedup the
	// push and compute the pull.
	Digest []gossip.Cursor
	// Records is the push: dispatch records the receiver's last
	// acknowledged vector did not cover, own and relayed origins alike.
	Records []gruber.Dispatch
	// Members is a bounded membership sample (the sender plus its
	// sampled targets this round); receivers add unknown names to their
	// own view, so joins spread without a central registry.
	Members []gossip.Member
}

// GossipReply is the pull half: the receiver's post-merge digest (the
// sender's acknowledgment basis for both retransmission and
// compaction) and the records the sender's digest was missing.
type GossipReply struct {
	From    string
	Digest  []gossip.Cursor
	Records []gruber.Dispatch
	// Stored counts push records the receiver appended to a log — the
	// sender's measure of how useful the push was (vs pure redundancy).
	Stored int
}

// SnapshotArgs requests a full state snapshot; From names the requester
// so the donor can mark that peer alive again.
type SnapshotArgs struct {
	From string
	// Vector, when non-empty, is the requester's version vector as a
	// sorted cursor list: a durably-recovered decision point advertises
	// what it already replayed from its write-ahead store, and the donor
	// ships only the seq-gap (plus unstamped records). Nil means "send
	// everything" — the pre-durability request. Appended as a trailing
	// extension field: gob elides the nil slice, so vector-less requests
	// stay byte-identical to pre-durability builds
	// (TestSnapshotWireCompat).
	Vector []gossip.Cursor
}

// SnapshotReply carries the donor's complete unexpired dispatch view, in
// deterministic order. Unlike ExchangeArgs it is not filtered by origin:
// the requester is assumed to have lost everything.
type SnapshotReply struct {
	From       string
	Dispatches []gruber.Dispatch
}

// PeerHealth is one mesh link's health as seen from a decision point.
type PeerHealth struct {
	Name string
	// State is "alive", "suspect" or "dead".
	State string
	// ConsecutiveFails counts exchange failures since the last success.
	ConsecutiveFails int
}

// StatusArgs requests a decision point's self-assessment.
type StatusArgs struct {
	// WithMetrics asks the decision point to attach its latest metrics
	// snapshot (see StatusReply.Metrics). The zero value encodes
	// identically to the old empty StatusArgs, so old callers and new
	// servers interoperate byte-for-byte.
	WithMetrics bool
}

// MetricSample is one series' latest value in a metrics snapshot.
type MetricSample struct {
	Name string
	V    float64
}

// StatusReply is a decision point's health/load report, the raw material
// for the third-party reconfiguration monitor of Section 5.
type StatusReply struct {
	Name string
	// Queries etc. mirror the engine counters.
	Queries          int64
	LocalDispatches  int64
	RemoteDispatches int64
	// Received/Completed/Shed/ConnLost/InFlight/Queued mirror the service
	// stack. ConnLost counts responses computed for callers that had
	// already hung up — wasted container work, the third leg of the
	// shed/served/conn-lost failure-class split.
	Received  int64
	Completed int64
	Shed      int64
	ConnLost  int64
	InFlight  int64
	Queued    int
	// Saturated is the decision point's own saturation verdict.
	Saturated bool
	// ObservedRate is the recent request arrival rate (req/s).
	ObservedRate float64
	// CapacityRate is the DiPerF-calibrated sustainable rate (req/s).
	CapacityRate float64
	// Peers reports the health of every mesh link, sorted by peer name.
	Peers []PeerHealth
	// At is the decision point's local (virtual) time of the report.
	At time.Time
	// Metrics is the decision point's latest metrics snapshot, attached
	// only when StatusArgs.WithMetrics is set and a registry is wired.
	// Extension fields (Metrics and everything after it) are append-only:
	// gob's value encoding elides zero fields and delta-encodes field
	// indices, so appending keeps replies without the extensions
	// byte-identical to older builds, while inserting earlier would
	// renumber every later field (see TestStatusWireCompat).
	Metrics []MetricSample
	// Expired counts requests the service stack dropped unprocessed at
	// dequeue because the caller's propagated deadline had already
	// passed — the overload-control plane's stale-work measure
	// (wire.Stats.Expired). Zero on pre-overload builds and elided from
	// the encoding when zero.
	Expired int64
	// State is the decision point's lifecycle state: empty while serving
	// (the steady state, elided from the encoding so replies stay
	// byte-identical to pre-lifecycle builds) and StateDraining while the
	// point is retiring from the fleet. A stopped point cannot answer
	// Status at all, so "stopped" never appears on the wire — monitors
	// infer it from the poll failing. Appended after Expired, like every
	// extension field.
	State string
	// Alerts is the decision point's current per-VO SLO alert summary
	// (pending and firing alerts only), attached when an alert source is
	// wired via SetAlertSource and at least one alert is active. Nil in
	// the steady state and elided from the encoding, so replies without
	// alerts stay byte-identical to pre-SLO builds. Appended after State,
	// like every extension field.
	Alerts []AlertSummary
}

// AlertSummary is one VO's active SLO alert in a StatusReply: which VO,
// how far along the state machine ("pending" or "firing"), since when,
// and the fast-window burn rate at the last evaluation. It mirrors the
// slo package's AlertStatus without importing it — the wire schema must
// not chase an internal package's shape.
type AlertSummary struct {
	VO    string
	State string
	Since time.Time
	Burn  float64
}

// Lifecycle states a decision point advertises in StatusReply.State.
// StateServing is what the empty string means; it is never encoded.
const (
	StateServing  = "serving"
	StateDraining = "draining"
	StateStopped  = "stopped"
)
