package digruber

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"digruber/internal/gossip"
	"digruber/internal/gruber"
	"digruber/internal/netsim"
	"digruber/internal/trace"
	"digruber/internal/tsdb"
	"digruber/internal/usla"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

// Config wires one decision point.
type Config struct {
	// Name identifies the decision point (dispatch Origin, status reports).
	Name string
	// Node is the emulated network node the decision point runs on.
	Node string
	// Addr is the transport address to listen on.
	Addr string
	// Transport and Network define the emulated wire.
	Transport wire.Transport
	Network   *netsim.Network
	Clock     vtime.Clock
	// Profile is the web-service stack emulation (GT3/GT4).
	Profile wire.StackProfile
	// Policies is the local USLA knowledge.
	Policies *usla.PolicySet
	// ExchangeInterval is the peer synchronization period (the paper's
	// default is three minutes).
	ExchangeInterval time.Duration
	// Strategy selects what is disseminated.
	Strategy DisseminationStrategy
	// Gossip tunes the Gossip strategy (fanout, view cap, batch bound,
	// sampling seed); ignored under the other strategies.
	Gossip GossipConfig
	// PeerTimeout bounds each peer exchange call.
	PeerTimeout time.Duration
	// Saturation configures the self-saturation detector; zero values
	// get defaults.
	Saturation SaturationConfig
	// MeshLane reserves this many dedicated service-stack workers for
	// mesh and monitoring RPCs (Exchange, Status, Snapshot), so a
	// client-saturated decision point keeps converging its view and
	// stays observable. 0 disables the lane (all methods share the
	// container's worker pool, as before).
	MeshLane int
	// Tracer, when non-nil, records this decision point's server-side,
	// engine and mesh-exchange spans. Nil disables tracing at zero cost.
	Tracer *trace.Tracer
	// Metrics, when non-nil, receives this decision point's instruments
	// and gauges under dp/<Name>/ (see metrics.go). Nil disables
	// metrics at zero cost, exactly like Tracer.
	Metrics *tsdb.Registry
	// Durability, when non-nil, gives the decision point a write-ahead
	// log and checkpoint store (see durability.go): dispatches are
	// synced to the store before they are acked, and Start recovers the
	// store before serving. Nil disables durability at zero cost.
	Durability *DurabilityConfig
}

func (c *Config) setDefaults() error {
	if c.Name == "" || c.Addr == "" {
		return fmt.Errorf("digruber: decision point needs Name and Addr")
	}
	if c.Transport == nil || c.Clock == nil {
		return fmt.Errorf("digruber: decision point %s needs Transport and Clock", c.Name)
	}
	if c.Node == "" {
		c.Node = c.Name
	}
	if c.Policies == nil {
		c.Policies = usla.NewPolicySet()
	}
	if c.ExchangeInterval <= 0 {
		c.ExchangeInterval = 3 * time.Minute
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 30 * time.Second
	}
	if c.Saturation.Workers <= 0 {
		c.Saturation.Workers = c.Profile.Workers()
	}
	c.Saturation.setDefaults()
	c.Gossip.setDefaults()
	return nil
}

// DecisionPoint is one DI-GRUBER broker: a GRUBER engine served over the
// emulated toolkit stack, plus the mesh synchronization machinery.
type DecisionPoint struct {
	cfg      Config
	engine   *gruber.Engine
	server   *wire.Server
	listener wire.Listener
	detector *SaturationDetector
	metrics  *dpMetrics
	// view is the gossip membership view, maintained alongside peers by
	// AddPeer/RemovePeer (it has its own lock and caps the active subset
	// internally). Only the Gossip strategy samples it.
	view *gossip.View
	// alertSource, when set, supplies the current SLO alert summary for
	// Status replies (see SetAlertSource).
	alertSource func() []AlertSummary
	// dur is the durability state (nil when Config.Durability is nil).
	dur *durability

	mu        sync.Mutex
	peers     map[string]*peerLink
	started   bool
	draining  bool
	ticker    vtime.Ticker
	done      chan struct{}
	serveDone chan struct{}
	rounds    int       // exchange (or gossip) rounds completed
	sentRecs  int       // dispatch records sent to peers
	lastRound time.Time // completion time of the last exchange round
	// gossipRound numbers gossip rounds monotonically; it seeds each
	// round's deterministic peer draw and is never reset (a replayed run
	// counts the same rounds, so it draws the same peers).
	gossipRound uint64
	// Gossip round accounting (see metrics.go gauges).
	gossipPulled     int // records pulled via reply halves
	gossipRelayed    int // third-party records stored (transitive relay)
	gossipDuplicates int // records the version vector already covered
}

type peerLink struct {
	name string
	node string
	addr string
	// client is nil while the decision point is stopped (wire.Client.Close
	// is terminal, so Start builds a fresh one).
	client *wire.Client
	// lastSent is the highest engine sequence number this peer has
	// acknowledged; the next round resends everything after it.
	lastSent uint64
	// ackVV is the peer's last-advertised version vector (gossip digest):
	// everything it holds, by origin. The gossip push is diffed against
	// it and compaction takes the per-origin minimum across all links.
	// Nil until the first exchange with this peer.
	ackVV map[string]uint64
	// Health: consecutive exchange failures drive alive → suspect → dead;
	// dead peers are only probed after a growing backoff, so one crashed
	// peer stops costing every round a full PeerTimeout.
	state        peerState
	fails        int
	probeBackoff time.Duration
	nextProbe    time.Time
}

// peerState is a peer's health as judged by consecutive exchange outcomes.
type peerState int

const (
	peerAlive peerState = iota
	peerSuspect
	peerDead
)

// String names the state for status reports.
func (s peerState) String() string {
	switch s {
	case peerAlive:
		return "alive"
	case peerSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// deadAfterFails is how many consecutive exchange failures demote a peer
// from suspect to dead.
const deadAfterFails = 3

// markAliveLocked resets a peer's health after any successful contact.
// Caller holds dp.mu.
func (l *peerLink) markAliveLocked() {
	l.state = peerAlive
	l.fails = 0
	l.probeBackoff = 0
	l.nextProbe = time.Time{}
}

// markFailedLocked records one failed exchange. After deadAfterFails
// consecutive failures the peer is dead and further exchanges to it are
// suppressed until nextProbe, with the probe interval doubling (capped at
// 8x the exchange interval) while it stays dead. Caller holds dp.mu.
func (l *peerLink) markFailedLocked(now time.Time, interval time.Duration) {
	l.fails++
	if l.fails < deadAfterFails {
		l.state = peerSuspect
		return
	}
	l.state = peerDead
	if l.probeBackoff <= 0 {
		l.probeBackoff = 2 * interval
	} else {
		l.probeBackoff *= 2
		if max := 8 * interval; l.probeBackoff > max {
			l.probeBackoff = max
		}
	}
	l.nextProbe = now.Add(l.probeBackoff)
}

// New builds a decision point (not yet listening).
func New(cfg Config) (*DecisionPoint, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	dp := &DecisionPoint{
		cfg:      cfg,
		engine:   gruber.NewEngine(cfg.Name, cfg.Policies, cfg.Clock),
		detector: NewSaturationDetector(cfg.Saturation, cfg.Clock),
		peers:    make(map[string]*peerLink),
		view:     gossip.NewView(cfg.Name, cfg.Gossip.Seed, cfg.Gossip.ViewSize),
	}
	dp.engine.SetTracer(cfg.Tracer)
	if cfg.Durability != nil {
		if cfg.Durability.Store == nil {
			return nil, fmt.Errorf("digruber: decision point %s: Durability needs a Store", cfg.Name)
		}
		dp.dur = newDurability(cfg.Durability)
		dp.engine.SetAppender(dp.dur.appendEntry)
	}
	dp.server = dp.newServer()
	dp.registerMetrics(cfg.Metrics)
	dp.registerHandlers()
	return dp, nil
}

// meshLaneQueue bounds the reserved lane's waiting requests: mesh and
// monitoring traffic is low-rate by design, so a deep backlog would only
// mean the lane is undersized.
const meshLaneQueue = 16

// newServer builds the decision point's wire server, applying the
// tracer and the reserved mesh lane. Used at construction and on every
// restart (wire servers are single-use).
func (dp *DecisionPoint) newServer() *wire.Server {
	s := wire.NewServer(dp.cfg.Node, dp.cfg.Profile, dp.cfg.Clock)
	s.SetTracer(dp.cfg.Tracer)
	if dp.cfg.MeshLane > 0 {
		s.ReserveLane(dp.cfg.MeshLane, meshLaneQueue, MethodExchange, MethodGossip, MethodStatus, MethodSnapshot)
	}
	return s
}

// Name returns the decision point's identity.
func (dp *DecisionPoint) Name() string { return dp.cfg.Name }

// Addr returns the address the decision point listens on.
func (dp *DecisionPoint) Addr() string { return dp.cfg.Addr }

// Engine exposes the underlying GRUBER engine (for wiring monitors and
// for white-box assertions in tests).
func (dp *DecisionPoint) Engine() *gruber.Engine { return dp.engine }

// Detector exposes the saturation detector.
func (dp *DecisionPoint) Detector() *SaturationDetector { return dp.detector }

func (dp *DecisionPoint) registerHandlers() {
	wire.HandleCtx(dp.server, MethodQuery, func(ctx wire.Ctx, a QueryArgs) (QueryReply, error) {
		if dp.isDraining() {
			// New scheduling work is refused while retiring; the refusal is
			// cheap and unprocessed, so the client fails over and re-issues
			// elsewhere. Reports (the second half of an interaction already
			// in flight) and mesh traffic stay accepted.
			return QueryReply{}, wire.ErrDraining
		}
		dp.detector.ObserveArrival()
		defer dp.observeHandle(dp.cfg.Clock.Now(), ctx.Span.Trace)
		owner, err := usla.ParsePath(a.Owner)
		if err != nil {
			return QueryReply{}, err
		}
		if a.CPUs <= 0 {
			return QueryReply{}, fmt.Errorf("digruber: query with %d CPUs", a.CPUs)
		}
		return QueryReply{Loads: dp.engine.SiteLoadsCtx(ctx.Span, owner, a.CPUs)}, nil
	})
	wire.HandleCtx(dp.server, MethodReport, func(ctx wire.Ctx, a ReportArgs) (ReportReply, error) {
		dp.engine.RecordDispatchCtx(ctx.Span, a.Dispatch)
		return ReportReply{OK: true}, nil
	})
	wire.HandleCtx(dp.server, MethodExchange, func(ctx wire.Ctx, a ExchangeArgs) (ExchangeReply, error) {
		// Hearing from a peer proves it is up — this is how a restarted
		// decision point's first outbound exchange revives its link at
		// every peer without waiting out their probe backoff.
		dp.markPeerAlive(a.From)
		merged := dp.engine.MergeRemoteCtx(ctx.Span, a.Dispatches)
		for _, e := range a.USLAs {
			// Under usage-and-USLAs dissemination, remote entries are
			// folded into local policy knowledge.
			if err := dp.cfg.Policies.Add(e); err != nil {
				return ExchangeReply{}, err
			}
		}
		return ExchangeReply{Merged: merged}, nil
	})
	wire.HandleCtx(dp.server, MethodGossip, dp.handleGossip)
	wire.Handle(dp.server, MethodStatus, func(a StatusArgs) (StatusReply, error) {
		st := dp.Status()
		if a.WithMetrics {
			st.Metrics = dp.MetricsSnapshot()
		}
		return st, nil
	})
	wire.Handle(dp.server, MethodSnapshot, func(a SnapshotArgs) (SnapshotReply, error) {
		dp.markPeerAlive(a.From)
		// A requester that recovered part of its state from a durable
		// store sends its version vector; ship only what it lacks.
		// Vector-less requests (non-durable peers, total loss) get the
		// full view, as before.
		var dispatches []gruber.Dispatch
		if len(a.Vector) > 0 {
			dispatches = dp.engine.ExportSnapshotSince(gossip.Vector(a.Vector))
		} else {
			dispatches = dp.engine.ExportSnapshot()
		}
		return SnapshotReply{From: dp.cfg.Name, Dispatches: dispatches}, nil
	})
	wire.Handle(dp.server, MethodProposeAgreement, func(a ProposeArgs) (ProposeReply, error) {
		agreement, err := usla.ParseAgreementXML(a.AgreementXML)
		if err != nil {
			return ProposeReply{}, err
		}
		entries, err := agreement.Entries(dp.cfg.Clock.Now())
		if err != nil {
			return ProposeReply{}, err
		}
		for _, e := range entries {
			if err := dp.cfg.Policies.Add(e); err != nil {
				return ProposeReply{}, err
			}
		}
		var warnings []string
		for _, verr := range dp.cfg.Policies.Validate() {
			warnings = append(warnings, verr.Error())
		}
		return ProposeReply{EntriesAdded: len(entries), Warnings: warnings}, nil
	})
	wire.Handle(dp.server, MethodPublishedAgreements, func(a PublishedArgs) (PublishedReply, error) {
		entries := dp.cfg.Policies.Entries()
		if a.Provider != "" {
			filtered := entries[:0]
			for _, e := range entries {
				if e.Provider == a.Provider {
					filtered = append(filtered, e)
				}
			}
			entries = filtered
		}
		var reply PublishedReply
		for _, agreement := range usla.FromEntries(entries) {
			data, err := agreement.XML()
			if err != nil {
				return PublishedReply{}, err
			}
			reply.AgreementsXML = append(reply.AgreementsXML, data)
		}
		return reply, nil
	})
	wire.HandleCtx(dp.server, MethodSchedule, func(ctx wire.Ctx, a ScheduleArgs) (ScheduleReply, error) {
		if dp.isDraining() {
			return ScheduleReply{}, wire.ErrDraining
		}
		dp.detector.ObserveArrival()
		defer dp.observeHandle(dp.cfg.Clock.Now(), ctx.Span.Trace)
		owner, err := usla.ParsePath(a.Owner)
		if err != nil {
			return ScheduleReply{}, err
		}
		if a.CPUs <= 0 || a.Runtime <= 0 {
			return ScheduleReply{}, fmt.Errorf("digruber: schedule with cpus=%d runtime=%s", a.CPUs, a.Runtime)
		}
		loads := dp.engine.SiteLoadsCtx(ctx.Span, owner, a.CPUs)
		site, ok := (gruber.USLAAware{}).Select(loads, a.CPUs)
		if !ok {
			return ScheduleReply{OK: false}, nil
		}
		dp.engine.RecordDispatchCtx(ctx.Span, gruber.Dispatch{
			JobID:   a.JobID,
			Site:    site,
			Owner:   a.Owner,
			CPUs:    a.CPUs,
			Runtime: a.Runtime,
			At:      dp.cfg.Clock.Now(),
		})
		return ScheduleReply{Site: site, OK: true}, nil
	})
}

// markPeerAlive resets the health of the named peer after inbound proof
// of life (an exchange or snapshot request it sent us). Unknown names are
// ignored (clients also carry From-less traffic).
func (dp *DecisionPoint) markPeerAlive(name string) {
	if name == "" {
		return
	}
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if l, ok := dp.peers[name]; ok {
		dp.peerAliveLocked(l)
	}
}

// SetAlertSource wires the supplier of the per-VO SLO alert summary
// Status attaches (typically an adapter over slo.Evaluator.Alerts). The
// source must be safe for concurrent calls; nil detaches it. The
// summary rides StatusReply as a trailing extension field, so replies
// stay byte-identical to pre-SLO builds whenever no alert is active.
func (dp *DecisionPoint) SetAlertSource(fn func() []AlertSummary) {
	dp.mu.Lock()
	dp.alertSource = fn
	dp.mu.Unlock()
}

// Status assembles the decision point's self-report.
func (dp *DecisionPoint) Status() StatusReply {
	es := dp.engine.Stats()
	dp.mu.Lock()
	server := dp.server
	alertSource := dp.alertSource
	var state string
	if dp.draining {
		state = StateDraining
	}
	peers := make([]PeerHealth, 0, len(dp.peers))
	//lint:allow mapiter -- collected slice is sorted by name right below; state.String is a pure label
	for _, l := range dp.peers {
		peers = append(peers, PeerHealth{
			Name:             l.name,
			State:            l.state.String(),
			ConsecutiveFails: l.fails,
		})
	}
	dp.mu.Unlock()
	sort.Slice(peers, func(i, j int) bool { return peers[i].Name < peers[j].Name })
	var ss wire.Stats
	if server != nil {
		ss = server.Stats()
	}
	observed, capacity, saturated := dp.detector.Assess(ss)
	var alerts []AlertSummary
	if alertSource != nil {
		alerts = alertSource()
	}
	return StatusReply{
		Name:             dp.cfg.Name,
		Queries:          es.Queries,
		LocalDispatches:  es.LocalDispatches,
		RemoteDispatches: es.RemoteDispatches,
		Received:         ss.Received,
		Completed:        ss.Completed,
		Shed:             ss.Shed,
		ConnLost:         ss.ConnLost,
		InFlight:         ss.InFlight,
		Queued:           ss.Queued,
		Saturated:        saturated,
		ObservedRate:     observed,
		CapacityRate:     capacity,
		Peers:            peers,
		At:               dp.cfg.Clock.Now(),
		Expired:          ss.Expired,
		State:            state,
		Alerts:           alerts,
	}
}

// AddPeer registers another decision point in this one's mesh. Call on
// every decision point for a full mesh.
func (dp *DecisionPoint) AddPeer(name, node, addr string) {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if name == dp.cfg.Name {
		return
	}
	if _, exists := dp.peers[name]; exists {
		return
	}
	dp.peers[name] = &peerLink{
		name:   name,
		node:   node,
		addr:   addr,
		client: dp.newPeerClient(node, addr),
	}
	dp.view.Add(gossip.Member{Name: name, Node: node, Addr: addr})
}

// RemovePeer deregisters a peer — the symmetric teardown to AddPeer,
// used when a fleet member retires. The link's client closes and its
// health state goes with it, so the departed name never re-enters the
// suspect/probe churn or holds back local-log compaction. An exchange
// already in flight to the removed peer finishes against the detached
// link and is discarded with it. Unknown names are a no-op.
func (dp *DecisionPoint) RemovePeer(name string) {
	dp.mu.Lock()
	l, ok := dp.peers[name]
	if !ok {
		dp.mu.Unlock()
		return
	}
	delete(dp.peers, name)
	dp.view.Remove(name)
	client := l.client
	l.client = nil
	dp.mu.Unlock()
	if client != nil {
		client.Close()
	}
}

// newPeerClient builds the wire client for one peer link.
func (dp *DecisionPoint) newPeerClient(node, addr string) *wire.Client {
	return wire.NewClient(wire.ClientConfig{
		Node:       dp.cfg.Node,
		ServerNode: node,
		Addr:       addr,
		Transport:  dp.cfg.Transport,
		Network:    dp.cfg.Network,
		Clock:      dp.cfg.Clock,
		Tracer:     dp.cfg.Tracer,
	})
}

// Peers lists the registered peer names.
func (dp *DecisionPoint) Peers() []string {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	out := make([]string, 0, len(dp.peers))
	for name := range dp.peers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// peerNamesLocked returns the registered peer names in sorted order, so
// loops over the peer set visit links deterministically. Callers hold
// dp.mu.
func (dp *DecisionPoint) peerNamesLocked() []string {
	names := make([]string, 0, len(dp.peers))
	for name := range dp.peers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Start begins listening and, unless the strategy is NoExchange, starts
// the periodic exchange loop. Start after Stop brings the decision point
// back: wire servers and clients are single-use (Close is terminal), so a
// restart builds fresh ones on the same name, node and address.
func (dp *DecisionPoint) Start() error {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if dp.started {
		return fmt.Errorf("digruber: decision point %s already started", dp.cfg.Name)
	}
	if dp.server == nil {
		dp.server = dp.newServer()
		dp.registerHandlers()
	}
	for _, name := range dp.peerNamesLocked() {
		if link := dp.peers[name]; link.client == nil {
			link.client = dp.newPeerClient(link.node, link.addr)
		}
	}
	if dp.dur != nil {
		// Recover before the listener opens: the decision point never
		// serves (or gossips) state it has not replayed from the store.
		if err := dp.recoverLocked(); err != nil {
			return err
		}
	}
	l, err := dp.cfg.Transport.Listen(dp.cfg.Addr)
	if err != nil {
		return fmt.Errorf("digruber: %s: %w", dp.cfg.Name, err)
	}
	dp.listener = l
	dp.started = true
	dp.draining = false
	dp.done = make(chan struct{})
	dp.serveDone = make(chan struct{})
	go func(srv *wire.Server, l wire.Listener, served chan struct{}) {
		srv.Serve(l)
		close(served)
	}(dp.server, l, dp.serveDone)
	if dp.cfg.Strategy != NoExchange {
		dp.ticker = dp.cfg.Clock.NewTicker(dp.cfg.ExchangeInterval)
		go dp.exchangeLoop(dp.ticker, dp.done)
	}
	return nil
}

func (dp *DecisionPoint) exchangeLoop(ticker vtime.Ticker, done chan struct{}) {
	for {
		select {
		case <-ticker.C():
			dp.ExchangeNow()
		case <-done:
			return
		}
	}
}

// ExchangeNow performs one synchronization round immediately —
// full-mesh flood or sampled gossip, per the configured strategy —
// returning how many dispatch records were sent. Rounds normally run
// off the interval ticker; tests and reconfiguration logic call this
// directly.
func (dp *DecisionPoint) ExchangeNow() int { return dp.syncNow(false) }

// syncNow dispatches one synchronization round to the configured
// strategy's implementation; force is passed through (contact even
// dead-and-backed-off peers — the drain flush's mode).
func (dp *DecisionPoint) syncNow(force bool) int {
	var sent int
	if dp.cfg.Strategy == Gossip {
		sent = dp.gossipNow(force)
	} else {
		sent = dp.exchangeNow(force)
	}
	// The round boundary doubles as the durability checkpoint cadence
	// check — deterministic under a Manual clock, unlike a timer.
	dp.maybeCheckpoint()
	return sent
}

// exchangeNow is ExchangeNow with an override: force contacts even dead
// peers whose probe backoff has not elapsed. The drain flush uses it —
// a retiring point must get its last records out (or fail trying) every
// retry, not sit out a probe interval against a peer that just healed.
func (dp *DecisionPoint) exchangeNow(force bool) int {
	now := dp.cfg.Clock.Now()
	dp.mu.Lock()
	links := make([]*peerLink, 0, len(dp.peers))
	for _, name := range dp.peerNamesLocked() {
		l := dp.peers[name]
		if l.client == nil {
			continue // stopped
		}
		if !force && l.state == peerDead && now.Before(l.nextProbe) {
			continue // dead; not due for a probe yet
		}
		links = append(links, l)
	}
	strategy := dp.cfg.Strategy
	timeout := dp.cfg.PeerTimeout
	dp.mu.Unlock()

	if strategy == NoExchange {
		return 0
	}
	// Peers are contacted in name order so a traced round draws its span
	// IDs in a reproducible sequence.
	sort.Slice(links, func(i, j int) bool { return links[i].name < links[j].name })
	round := dp.cfg.Tracer.StartTrace(trace.PhaseMeshRound)
	sent := 0
	var wg sync.WaitGroup
	for _, link := range links {
		link := link
		dp.mu.Lock()
		cursor := link.lastSent
		client := link.client
		dp.mu.Unlock()
		if client == nil {
			continue // Stop raced us
		}
		// The engine assigns sequence numbers under its own lock, so the
		// (batch, hi) pair is exact: acknowledging hi never skips a
		// record whose append lost a race with this read.
		batch, hi := dp.engine.LocalDispatchesAfter(cursor)
		args := ExchangeArgs{From: dp.cfg.Name, Dispatches: batch}
		if strategy == UsageAndUSLAs {
			args.USLAs = dp.cfg.Policies.Entries()
		}
		// The per-peer span (and its ID draw) happens here, in name order;
		// only the call itself runs concurrently.
		ex := dp.cfg.Tracer.StartSpan(round.Context(), trace.PhaseMeshExchange)
		ex.SetNote(link.name)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := wire.CallCtx[ExchangeArgs, ExchangeReply](client, ex.Context(), MethodExchange, args, timeout)
			ex.End()
			dp.mu.Lock()
			if err == nil {
				dp.peerAliveLocked(link)
				if hi > link.lastSent {
					link.lastSent = hi
				}
			} else {
				dp.peerFailedLocked(link, dp.cfg.Clock.Now())
			}
			dp.mu.Unlock()
			// On failure the batch is retransmitted next round (or next
			// probe); the receiver's JobID dedup makes that harmless.
		}()
		sent += len(batch)
	}
	wg.Wait()
	round.End()
	end := dp.cfg.Clock.Now()
	dp.metrics.roundDur.Observe(end.Sub(now).Seconds())
	dp.mu.Lock()
	dp.rounds++
	dp.sentRecs += sent
	dp.lastRound = end
	// Bound the local log: records every peer has acknowledged are never
	// needed again. With no peers at all, nobody will ever ask, so the
	// whole log can go.
	oldest := ^uint64(0)
	//lint:allow mapiter -- min over values; the result is order-independent
	for _, l := range dp.peers {
		if l.lastSent < oldest {
			oldest = l.lastSent
		}
	}
	dp.mu.Unlock()
	dp.engine.CompactLocalBefore(oldest)
	return sent
}

// ExchangeRounds reports completed exchange rounds (for tests).
func (dp *DecisionPoint) ExchangeRounds() int {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	return dp.rounds
}

// Stop shuts the decision point down: the exchange loop exits, the
// server and listener close, peer clients close, and the serve goroutine
// is awaited so nothing of this incarnation outlives the call. Stop is
// idempotent, and Start may be called again afterwards (restart).
func (dp *DecisionPoint) Stop() {
	dp.mu.Lock()
	if !dp.started {
		dp.mu.Unlock()
		return
	}
	dp.started = false
	if dp.ticker != nil {
		dp.ticker.Stop()
		dp.ticker = nil
	}
	close(dp.done)
	server := dp.server
	dp.server = nil
	listener := dp.listener
	dp.listener = nil
	serveDone := dp.serveDone
	clients := make([]*wire.Client, 0, len(dp.peers))
	//lint:allow mapiter -- teardown: every client is closed; close order is immaterial
	for _, p := range dp.peers {
		if p.client != nil {
			clients = append(clients, p.client)
			p.client = nil
		}
	}
	dp.mu.Unlock()

	server.Close()
	if listener != nil {
		listener.Close()
	}
	for _, c := range clients {
		c.Close()
	}
	if serveDone != nil {
		<-serveDone
	}
}

// Crash models a broker process dying: the decision point stops serving
// AND loses its dynamic state — the engine's dispatch views, dedup set
// and exchange log, plus the per-peer exchange cursors and health. The
// engine's site baseline survives (static knowledge is re-bootstrapped
// from configuration on restart, per the paper's dissemination model).
// With durability on, the write-ahead store survives the crash (that is
// its whole purpose); the next Start replays it before serving.
func (dp *DecisionPoint) Crash() {
	dp.Stop()
	dp.engine.DropDynamicState()
	if dp.dur != nil {
		dp.dur.crash()
	}
	dp.mu.Lock()
	//lint:allow mapiter -- per-peer state reset with no cross-peer reads; order cannot matter
	for _, l := range dp.peers {
		l.lastSent = 0
		l.ackVV = nil
		l.markAliveLocked()
	}
	dp.mu.Unlock()
}

// Restart brings a stopped or crashed decision point back: it starts
// serving again and then pulls a full state snapshot from the first
// reachable peer, so its view converges immediately instead of waiting
// for dispatch records to drift in over exchange rounds.
func (dp *DecisionPoint) Restart() error {
	if err := dp.Start(); err != nil {
		return err
	}
	dp.ResyncFromPeers()
	return nil
}

// ResyncFromPeers asks peers (in deterministic name order) for a full
// snapshot and imports the first one that answers. It returns the number
// of dispatches imported and the donor's name ("" when no peer answered —
// the decision point then rebuilds gradually from incoming exchanges).
func (dp *DecisionPoint) ResyncFromPeers() (int, string) {
	dp.mu.Lock()
	names := make([]string, 0, len(dp.peers))
	for name := range dp.peers {
		names = append(names, name)
	}
	timeout := dp.cfg.PeerTimeout
	dp.mu.Unlock()
	sort.Strings(names)
	dp.metrics.resyncs.Inc()
	for _, name := range names {
		dp.mu.Lock()
		link := dp.peers[name]
		var client *wire.Client
		if link != nil {
			client = link.client
		}
		dp.mu.Unlock()
		if client == nil {
			continue
		}
		args := SnapshotArgs{From: dp.cfg.Name}
		if dp.dur != nil {
			// Advertise what recovery already rebuilt, so the donor ships
			// only the seq-gap instead of the whole view. Non-durable
			// points keep requesting the full snapshot (nil Vector encodes
			// byte-identically to the pre-durability request).
			args.Vector = gossip.Cursors(dp.engine.OriginVector())
		}
		reply, err := wire.Call[SnapshotArgs, SnapshotReply](client, MethodSnapshot, args, timeout)
		dp.mu.Lock()
		if link != nil {
			if err == nil {
				dp.peerAliveLocked(link)
			} else {
				dp.peerFailedLocked(link, dp.cfg.Clock.Now())
			}
		}
		dp.mu.Unlock()
		if err != nil {
			continue
		}
		imported := dp.engine.ImportSnapshot(reply.Dispatches)
		dp.metrics.resyncImported.Add(int64(imported))
		if dp.dur != nil {
			dp.dur.noteBackfilled(imported)
		}
		return imported, name
	}
	return 0, ""
}
