package digruber

import (
	"fmt"
	"sync"
	"time"

	"digruber/internal/gruber"
	"digruber/internal/netsim"
	"digruber/internal/usla"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

// Config wires one decision point.
type Config struct {
	// Name identifies the decision point (dispatch Origin, status reports).
	Name string
	// Node is the emulated network node the decision point runs on.
	Node string
	// Addr is the transport address to listen on.
	Addr string
	// Transport and Network define the emulated wire.
	Transport wire.Transport
	Network   *netsim.Network
	Clock     vtime.Clock
	// Profile is the web-service stack emulation (GT3/GT4).
	Profile wire.StackProfile
	// Policies is the local USLA knowledge.
	Policies *usla.PolicySet
	// ExchangeInterval is the peer synchronization period (the paper's
	// default is three minutes).
	ExchangeInterval time.Duration
	// Strategy selects what is disseminated.
	Strategy DisseminationStrategy
	// PeerTimeout bounds each peer exchange call.
	PeerTimeout time.Duration
	// Saturation configures the self-saturation detector; zero values
	// get defaults.
	Saturation SaturationConfig
}

func (c *Config) setDefaults() error {
	if c.Name == "" || c.Addr == "" {
		return fmt.Errorf("digruber: decision point needs Name and Addr")
	}
	if c.Transport == nil || c.Clock == nil {
		return fmt.Errorf("digruber: decision point %s needs Transport and Clock", c.Name)
	}
	if c.Node == "" {
		c.Node = c.Name
	}
	if c.Policies == nil {
		c.Policies = usla.NewPolicySet()
	}
	if c.ExchangeInterval <= 0 {
		c.ExchangeInterval = 3 * time.Minute
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 30 * time.Second
	}
	if c.Saturation.Workers <= 0 {
		c.Saturation.Workers = c.Profile.Workers()
	}
	c.Saturation.setDefaults()
	return nil
}

// DecisionPoint is one DI-GRUBER broker: a GRUBER engine served over the
// emulated toolkit stack, plus the mesh synchronization machinery.
type DecisionPoint struct {
	cfg      Config
	engine   *gruber.Engine
	server   *wire.Server
	listener wire.Listener
	detector *SaturationDetector

	mu       sync.Mutex
	peers    map[string]*peerLink
	started  bool
	stopped  bool
	ticker   vtime.Ticker
	done     chan struct{}
	rounds   int // exchange rounds completed
	sentRecs int // dispatch records sent to peers
}

type peerLink struct {
	name   string
	client *wire.Client
	// lastSent is the highest engine sequence number this peer has
	// acknowledged; the next round resends everything after it.
	lastSent uint64
}

// New builds a decision point (not yet listening).
func New(cfg Config) (*DecisionPoint, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	dp := &DecisionPoint{
		cfg:      cfg,
		engine:   gruber.NewEngine(cfg.Name, cfg.Policies, cfg.Clock),
		server:   wire.NewServer(cfg.Node, cfg.Profile, cfg.Clock),
		detector: NewSaturationDetector(cfg.Saturation, cfg.Clock),
		peers:    make(map[string]*peerLink),
	}
	dp.registerHandlers()
	return dp, nil
}

// Name returns the decision point's identity.
func (dp *DecisionPoint) Name() string { return dp.cfg.Name }

// Addr returns the address the decision point listens on.
func (dp *DecisionPoint) Addr() string { return dp.cfg.Addr }

// Engine exposes the underlying GRUBER engine (for wiring monitors and
// for white-box assertions in tests).
func (dp *DecisionPoint) Engine() *gruber.Engine { return dp.engine }

// Detector exposes the saturation detector.
func (dp *DecisionPoint) Detector() *SaturationDetector { return dp.detector }

func (dp *DecisionPoint) registerHandlers() {
	wire.Handle(dp.server, MethodQuery, func(a QueryArgs) (QueryReply, error) {
		dp.detector.ObserveArrival()
		owner, err := usla.ParsePath(a.Owner)
		if err != nil {
			return QueryReply{}, err
		}
		if a.CPUs <= 0 {
			return QueryReply{}, fmt.Errorf("digruber: query with %d CPUs", a.CPUs)
		}
		return QueryReply{Loads: dp.engine.SiteLoads(owner, a.CPUs)}, nil
	})
	wire.Handle(dp.server, MethodReport, func(a ReportArgs) (ReportReply, error) {
		dp.engine.RecordDispatch(a.Dispatch)
		return ReportReply{OK: true}, nil
	})
	wire.Handle(dp.server, MethodExchange, func(a ExchangeArgs) (ExchangeReply, error) {
		merged := dp.engine.MergeRemote(a.Dispatches)
		for _, e := range a.USLAs {
			// Under usage-and-USLAs dissemination, remote entries are
			// folded into local policy knowledge.
			if err := dp.cfg.Policies.Add(e); err != nil {
				return ExchangeReply{}, err
			}
		}
		return ExchangeReply{Merged: merged}, nil
	})
	wire.Handle(dp.server, MethodStatus, func(StatusArgs) (StatusReply, error) {
		return dp.Status(), nil
	})
	wire.Handle(dp.server, MethodProposeAgreement, func(a ProposeArgs) (ProposeReply, error) {
		agreement, err := usla.ParseAgreementXML(a.AgreementXML)
		if err != nil {
			return ProposeReply{}, err
		}
		entries, err := agreement.Entries(dp.cfg.Clock.Now())
		if err != nil {
			return ProposeReply{}, err
		}
		for _, e := range entries {
			if err := dp.cfg.Policies.Add(e); err != nil {
				return ProposeReply{}, err
			}
		}
		var warnings []string
		for _, verr := range dp.cfg.Policies.Validate() {
			warnings = append(warnings, verr.Error())
		}
		return ProposeReply{EntriesAdded: len(entries), Warnings: warnings}, nil
	})
	wire.Handle(dp.server, MethodPublishedAgreements, func(a PublishedArgs) (PublishedReply, error) {
		entries := dp.cfg.Policies.Entries()
		if a.Provider != "" {
			filtered := entries[:0]
			for _, e := range entries {
				if e.Provider == a.Provider {
					filtered = append(filtered, e)
				}
			}
			entries = filtered
		}
		var reply PublishedReply
		for _, agreement := range usla.FromEntries(entries) {
			data, err := agreement.XML()
			if err != nil {
				return PublishedReply{}, err
			}
			reply.AgreementsXML = append(reply.AgreementsXML, data)
		}
		return reply, nil
	})
	wire.Handle(dp.server, MethodSchedule, func(a ScheduleArgs) (ScheduleReply, error) {
		dp.detector.ObserveArrival()
		owner, err := usla.ParsePath(a.Owner)
		if err != nil {
			return ScheduleReply{}, err
		}
		if a.CPUs <= 0 || a.Runtime <= 0 {
			return ScheduleReply{}, fmt.Errorf("digruber: schedule with cpus=%d runtime=%s", a.CPUs, a.Runtime)
		}
		loads := dp.engine.SiteLoads(owner, a.CPUs)
		site, ok := (gruber.USLAAware{}).Select(loads, a.CPUs)
		if !ok {
			return ScheduleReply{OK: false}, nil
		}
		dp.engine.RecordDispatch(gruber.Dispatch{
			JobID:   a.JobID,
			Site:    site,
			Owner:   a.Owner,
			CPUs:    a.CPUs,
			Runtime: a.Runtime,
			At:      dp.cfg.Clock.Now(),
		})
		return ScheduleReply{Site: site, OK: true}, nil
	})
}

// Status assembles the decision point's self-report.
func (dp *DecisionPoint) Status() StatusReply {
	es := dp.engine.Stats()
	ss := dp.server.Stats()
	observed, capacity, saturated := dp.detector.Assess(ss)
	return StatusReply{
		Name:             dp.cfg.Name,
		Queries:          es.Queries,
		LocalDispatches:  es.LocalDispatches,
		RemoteDispatches: es.RemoteDispatches,
		Received:         ss.Received,
		Completed:        ss.Completed,
		Shed:             ss.Shed,
		InFlight:         ss.InFlight,
		Queued:           ss.Queued,
		Saturated:        saturated,
		ObservedRate:     observed,
		CapacityRate:     capacity,
		At:               dp.cfg.Clock.Now(),
	}
}

// AddPeer registers another decision point in this one's mesh. Call on
// every decision point for a full mesh.
func (dp *DecisionPoint) AddPeer(name, node, addr string) {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if name == dp.cfg.Name {
		return
	}
	if _, exists := dp.peers[name]; exists {
		return
	}
	dp.peers[name] = &peerLink{
		name: name,
		client: wire.NewClient(wire.ClientConfig{
			Node:       dp.cfg.Node,
			ServerNode: node,
			Addr:       addr,
			Transport:  dp.cfg.Transport,
			Network:    dp.cfg.Network,
			Clock:      dp.cfg.Clock,
		}),
	}
}

// Peers lists the registered peer names.
func (dp *DecisionPoint) Peers() []string {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	out := make([]string, 0, len(dp.peers))
	for name := range dp.peers {
		out = append(out, name)
	}
	return out
}

// Start begins listening and, unless the strategy is NoExchange, starts
// the periodic exchange loop.
func (dp *DecisionPoint) Start() error {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if dp.started {
		return fmt.Errorf("digruber: decision point %s already started", dp.cfg.Name)
	}
	l, err := dp.cfg.Transport.Listen(dp.cfg.Addr)
	if err != nil {
		return fmt.Errorf("digruber: %s: %w", dp.cfg.Name, err)
	}
	dp.listener = l
	dp.started = true
	dp.done = make(chan struct{})
	go dp.server.Serve(l)
	if dp.cfg.Strategy != NoExchange {
		dp.ticker = dp.cfg.Clock.NewTicker(dp.cfg.ExchangeInterval)
		go dp.exchangeLoop(dp.ticker, dp.done)
	}
	return nil
}

func (dp *DecisionPoint) exchangeLoop(ticker vtime.Ticker, done chan struct{}) {
	for {
		select {
		case <-ticker.C():
			dp.ExchangeNow()
		case <-done:
			return
		}
	}
}

// ExchangeNow performs one synchronization round with every peer
// immediately, returning how many dispatch records were sent. Rounds
// normally run off the interval ticker; tests and reconfiguration logic
// call this directly.
func (dp *DecisionPoint) ExchangeNow() int {
	dp.mu.Lock()
	links := make([]*peerLink, 0, len(dp.peers))
	for _, l := range dp.peers {
		links = append(links, l)
	}
	strategy := dp.cfg.Strategy
	timeout := dp.cfg.PeerTimeout
	dp.mu.Unlock()

	if strategy == NoExchange {
		return 0
	}
	sent := 0
	var wg sync.WaitGroup
	for _, link := range links {
		link := link
		dp.mu.Lock()
		cursor := link.lastSent
		dp.mu.Unlock()
		// The engine assigns sequence numbers under its own lock, so the
		// (batch, hi) pair is exact: acknowledging hi never skips a
		// record whose append lost a race with this read.
		batch, hi := dp.engine.LocalDispatchesAfter(cursor)
		args := ExchangeArgs{From: dp.cfg.Name, Dispatches: batch}
		if strategy == UsageAndUSLAs {
			args.USLAs = dp.cfg.Policies.Entries()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := wire.Call[ExchangeArgs, ExchangeReply](link.client, MethodExchange, args, timeout); err == nil {
				dp.mu.Lock()
				if hi > link.lastSent {
					link.lastSent = hi
				}
				dp.mu.Unlock()
			}
			// On failure the batch is retransmitted next round; the
			// receiver's JobID dedup makes that harmless.
		}()
		sent += len(batch)
	}
	wg.Wait()
	dp.mu.Lock()
	dp.rounds++
	dp.sentRecs += sent
	// Bound the local log: records every peer has acknowledged are never
	// needed again. With no peers at all, nobody will ever ask, so the
	// whole log can go.
	oldest := ^uint64(0)
	for _, l := range dp.peers {
		if l.lastSent < oldest {
			oldest = l.lastSent
		}
	}
	dp.mu.Unlock()
	dp.engine.CompactLocalBefore(oldest)
	return sent
}

// ExchangeRounds reports completed exchange rounds (for tests).
func (dp *DecisionPoint) ExchangeRounds() int {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	return dp.rounds
}

// Stop shuts the decision point down.
func (dp *DecisionPoint) Stop() {
	dp.mu.Lock()
	if !dp.started || dp.stopped {
		dp.mu.Unlock()
		return
	}
	dp.stopped = true
	if dp.ticker != nil {
		dp.ticker.Stop()
	}
	close(dp.done)
	listener := dp.listener
	peers := dp.peers
	dp.mu.Unlock()

	dp.server.Close()
	if listener != nil {
		listener.Close()
	}
	for _, p := range peers {
		p.client.Close()
	}
}
