package digruber

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"digruber/internal/gruber"
	"digruber/internal/wal"
)

// This file composes the gruber engine's durability surface with the
// internal/wal log. With Config.Durability set, every dispatch record
// that enters the engine's dynamic state is appended (and fsynced) to a
// write-ahead log before the mutating call returns — so a Schedule or
// Report handler only acks a dispatch that is already on stable
// storage. Periodically the full engine state is checkpointed and the
// log compacted. Recovery (the first Start, and every Start after a
// Crash) replays checkpoint-then-log, truncates at the first torn or
// corrupt record, and leaves the seq-gap to the Snapshot anti-entropy
// path, which Restart drives with the recovered version vector so only
// the gap is backfilled.

// DurabilityConfig turns on write-ahead durability for a decision
// point. Nil Config.Durability means no durability — no WAL, no
// recovery, byte-identical behavior to pre-durability builds.
type DurabilityConfig struct {
	// Store is where the log and checkpoints live: wal.NewDirStore for
	// real files, wal.NewMemStore for deterministic fault-injected
	// tests.
	Store wal.Store
	// CheckpointEvery is how many write-ahead appends accumulate before
	// a synchronization round takes an automatic checkpoint. 0 means
	// the default (1024); negative means manual only (CheckpointNow).
	CheckpointEvery int
}

// defaultCheckpointEvery bounds replay work: at most this many records
// sit in the log before a round compacts them into a checkpoint.
const defaultCheckpointEvery = 1024

// walEntry is one write-ahead record: the dispatch exactly as it
// entered dynamic state, and whether it entered a per-origin log
// (Logged) or only the site view. Gob-encoded self-contained (a fresh
// encoder per record), so any prefix of the log decodes without the
// truncated tail.
type walEntry struct {
	D      gruber.Dispatch
	Logged bool
}

// RecoveryStats describes what the last recovery pass did — the
// white-box record behind the wal/recovered, wal/truncated and
// wal/backfilled gauges and the ext-recovery experiment's assertions.
type RecoveryStats struct {
	// CheckpointRestored reports that a checkpoint was found, decoded
	// and folded back into the engine.
	CheckpointRestored bool
	// CheckpointCorrupt reports that a checkpoint existed but failed
	// framing, checksum or decoding; recovery then proceeded from the
	// log alone (plus peer backfill).
	CheckpointCorrupt bool
	// Recovered counts write-ahead records replayed into the engine.
	Recovered int
	// Truncated reports that the log ended in a torn or corrupt record;
	// TruncateReason says which kind (wal.ReasonTornHeader etc.).
	Truncated      bool
	TruncateReason string
	// Backfilled counts dispatch records the post-recovery peer resync
	// imported — the seq-gap the truncation (or the crash itself) left.
	Backfilled int
	// Restore aggregates the engine-side replay counts.
	Restore gruber.RestoreStats
}

// durability is the per-decision-point durability state.
type durability struct {
	log             *wal.Log
	checkpointEvery int

	mu sync.Mutex
	// needRecover is true from construction until the first successful
	// recovery, and again after a Crash — Start must replay the store
	// before the listener opens.
	needRecover bool
	// Cumulative counters behind the wal/* gauges.
	recovered   int64
	truncations int64
	backfilled  int64
	// lastCheckpoint is when the latest checkpoint was taken (zero
	// before the first); appendsAtCkpt is the log's append count at
	// that moment, the base for the CheckpointEvery cadence.
	lastCheckpoint time.Time
	appendsAtCkpt  int64
	// last is the most recent recovery pass, for LastRecovery.
	last RecoveryStats
}

func newDurability(cfg *DurabilityConfig) *durability {
	every := cfg.CheckpointEvery
	if every == 0 {
		every = defaultCheckpointEvery
	}
	return &durability{
		log:             wal.Open(cfg.Store),
		checkpointEvery: every,
		needRecover:     true,
	}
}

// appendEntry is the engine's appender hook: encode and append one
// write-ahead record. It runs under the engine lock, which is exactly
// the point — the log order is the state-mutation order, and the
// mutating handler cannot return (and its caller cannot be acked)
// until the record is synced. Append errors (a full or failing disk)
// are counted in the log's stats and surface on the wal/append_errors
// gauge; the decision point keeps serving, trading durability of the
// affected records for availability.
func (dur *durability) appendEntry(d gruber.Dispatch, logged bool) {
	payload, err := encodeWALEntry(walEntry{D: d, Logged: logged})
	if err != nil {
		return // gob cannot fail on this fixed shape; nothing sane to do if it did
	}
	dur.log.Append(payload)
}

// checkpointNow takes one checkpoint: the engine state is captured and
// persisted under the engine lock (see Engine.CheckpointState), which
// compacts the log without racing concurrent appends.
func (dur *durability) checkpointNow(e *gruber.Engine, now time.Time) error {
	err := e.CheckpointState(func(st gruber.EngineState) error {
		payload, err := encodeEngineState(st)
		if err != nil {
			return err
		}
		return dur.log.Checkpoint(payload)
	})
	if err != nil {
		return err
	}
	stats := dur.log.Stats()
	dur.mu.Lock()
	dur.lastCheckpoint = now
	dur.appendsAtCkpt = stats.Appends
	dur.mu.Unlock()
	return nil
}

// encodeWALEntry / decodeWALEntry are the per-record codec. A fresh
// gob encoder per record keeps every record self-contained (type
// descriptors included), so truncating the log at any record boundary
// leaves a decodable prefix.
func encodeWALEntry(e walEntry) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeWALEntry(payload []byte) (walEntry, error) {
	var e walEntry
	err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e)
	return e, err
}

// encodeEngineState / decodeEngineState are the checkpoint codec.
// gruber.EngineState is sorted slices all the way down, so the same
// state encodes byte-identically — a replayed run produces a
// byte-identical store image.
func encodeEngineState(st gruber.EngineState) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeEngineState(payload []byte) (gruber.EngineState, error) {
	var st gruber.EngineState
	err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st)
	return st, err
}

// addRestore accumulates engine replay counts (gruber keeps its adder
// unexported; the fields are the contract).
func addRestore(dst *gruber.RestoreStats, o gruber.RestoreStats) {
	dst.Logged += o.Logged
	dst.Applied += o.Applied
	dst.Expired += o.Expired
	dst.Duplicates += o.Duplicates
}

// recoverLocked replays the durability store into the engine. Called
// from Start (which holds dp.mu) before the listener opens, so the
// decision point never serves un-recovered state. No-op unless a
// recovery is pending (first Start, or Start after Crash).
//
// The sequence is: read checkpoint and log (wal.Log.Recover truncates
// the readable log at the first torn or corrupt record), restore the
// checkpoint, replay the surviving records in append order, then take
// a fresh checkpoint — which both compacts the replayed records and
// discards any corrupt tail still sitting in the on-store log file.
func (dp *DecisionPoint) recoverLocked() error {
	dur := dp.dur
	dur.mu.Lock()
	need := dur.needRecover
	dur.mu.Unlock()
	if !need {
		return nil
	}
	rec, err := dur.log.Recover()
	if err != nil {
		return fmt.Errorf("digruber: %s: wal recovery: %w", dp.cfg.Name, err)
	}
	var rs RecoveryStats
	rs.Truncated = rec.Truncated
	rs.TruncateReason = rec.Reason
	rs.CheckpointCorrupt = rec.CheckpointCorrupt
	if len(rec.Checkpoint) > 0 && !rec.CheckpointCorrupt {
		st, derr := decodeEngineState(rec.Checkpoint)
		if derr != nil {
			// Framing and checksum passed but the content did not decode:
			// treat exactly like a corrupt checkpoint — start empty and
			// lean on the log plus peer backfill.
			rs.CheckpointCorrupt = true
		} else {
			addRestore(&rs.Restore, dp.engine.RestoreState(st))
			rs.CheckpointRestored = true
		}
	}
	for _, payload := range rec.Records {
		en, derr := decodeWALEntry(payload)
		if derr != nil {
			// A checksummed record that does not decode is corruption the
			// CRC missed (or a software bug); same contract as a torn
			// record — stop replaying here, never panic, report it.
			rs.Truncated = true
			if rs.TruncateReason == "" {
				rs.TruncateReason = "undecodable record"
			}
			break
		}
		addRestore(&rs.Restore, dp.engine.RestoreRecord(en.D, en.Logged))
		rs.Recovered++
	}
	if err := dur.checkpointNow(dp.engine, dp.cfg.Clock.Now()); err != nil {
		return fmt.Errorf("digruber: %s: post-recovery checkpoint: %w", dp.cfg.Name, err)
	}
	dur.mu.Lock()
	dur.needRecover = false
	dur.recovered += int64(rs.Recovered)
	if rs.Truncated {
		dur.truncations++
	}
	dur.last = rs
	dur.mu.Unlock()
	return nil
}

// noteBackfilled counts snapshot records imported by the post-recovery
// resync into the last recovery's record and the cumulative gauge.
func (dur *durability) noteBackfilled(n int) {
	if n <= 0 {
		return
	}
	dur.mu.Lock()
	dur.backfilled += int64(n)
	dur.last.Backfilled += n
	dur.mu.Unlock()
}

// crash drops the open log segment handle (the store image survives —
// that is the point) and arms recovery for the next Start.
func (dur *durability) crash() {
	dur.log.Close()
	dur.mu.Lock()
	dur.needRecover = true
	dur.mu.Unlock()
}

// CheckpointNow forces a durability checkpoint: the engine state is
// written to the store and the write-ahead log is compacted. No-op
// (nil) when durability is off.
func (dp *DecisionPoint) CheckpointNow() error {
	if dp.dur == nil {
		return nil
	}
	return dp.dur.checkpointNow(dp.engine, dp.cfg.Clock.Now())
}

// maybeCheckpoint takes an automatic checkpoint when CheckpointEvery
// appends have accumulated since the last one. Called at the end of
// every synchronization round — a deterministic hook under the Manual
// clock, unlike a background timer. Checkpoint errors are deliberately
// swallowed here: the WAL still holds every record, so a failed
// checkpoint costs replay time, not durability.
func (dp *DecisionPoint) maybeCheckpoint() {
	dur := dp.dur
	if dur == nil || dur.checkpointEvery < 0 {
		return
	}
	appends := dur.log.Stats().Appends
	dur.mu.Lock()
	due := appends-dur.appendsAtCkpt >= int64(dur.checkpointEvery)
	dur.mu.Unlock()
	if due {
		_ = dur.checkpointNow(dp.engine, dp.cfg.Clock.Now())
	}
}

// LastRecovery returns what the most recent recovery pass did (the
// zero value before any recovery, or when durability is off).
func (dp *DecisionPoint) LastRecovery() RecoveryStats {
	if dp.dur == nil {
		return RecoveryStats{}
	}
	dp.dur.mu.Lock()
	defer dp.dur.mu.Unlock()
	return dp.dur.last
}

// WALStats exposes the underlying log's counters (zero when durability
// is off) — for tests and the digruber-top WAL columns.
func (dp *DecisionPoint) WALStats() wal.Stats {
	if dp.dur == nil {
		return wal.Stats{}
	}
	return dp.dur.log.Stats()
}
