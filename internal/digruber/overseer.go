package digruber

import (
	"math"
	"sort"
	"sync"
	"time"

	"digruber/internal/vtime"
)

// Overseer is the third-party monitoring service of Section 5: decision
// points report (or are polled for) their status; the overseer records
// saturation events and decides how the scheduling infrastructure should
// be reconfigured — "adding decision points or rebalancing load among
// existing decision points to avoid overloading".
type Overseer struct {
	clock vtime.Clock

	mu     sync.Mutex
	points map[string]func() StatusReply
	events []SaturationEvent
	last   map[string]StatusReply
}

// SaturationEvent records one decision point reporting saturation.
type SaturationEvent struct {
	DP           string
	At           time.Time
	ObservedRate float64
	CapacityRate float64
}

// NewOverseer returns an empty overseer.
func NewOverseer(clock vtime.Clock) *Overseer {
	return &Overseer{
		clock:  clock,
		points: make(map[string]func() StatusReply),
		last:   make(map[string]StatusReply),
	}
}

// Attach registers a decision point via a status source — a local
// handle's Status method, or a closure performing the Status RPC.
func (o *Overseer) Attach(name string, status func() StatusReply) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.points[name] = status
}

// Detach removes a decision point from the overseer's watch list (a
// broker decommissioned by reconfiguration). Its recorded saturation
// events are kept for post-hoc analysis, but its last status is dropped
// so Recommend stops counting it. Detaching an unknown name is a no-op.
func (o *Overseer) Detach(name string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.points, name)
	delete(o.last, name)
}

// Last returns the most recently polled status for name (ok false if it
// has never been polled or was detached).
func (o *Overseer) Last(name string) (StatusReply, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.last[name]
	return st, ok
}

// LastMetric returns one series' value from a decision point's latest
// polled metrics snapshot (ok false when the point is unknown, was
// polled without WithMetrics, or the series is absent).
func (o *Overseer) LastMetric(dp, series string) (float64, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.last[dp]
	if !ok {
		return 0, false
	}
	for _, s := range st.Metrics {
		if s.Name == series {
			return s.V, true
		}
	}
	return 0, false
}

// Poll queries every attached decision point once, recording saturation
// events, and returns the statuses sorted by name.
func (o *Overseer) Poll() []StatusReply {
	o.mu.Lock()
	sources := make(map[string]func() StatusReply, len(o.points))
	for n, f := range o.points {
		sources[n] = f
	}
	o.mu.Unlock()

	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	replies := make([]StatusReply, 0, len(sources))
	for _, name := range names {
		st := sources[name]()
		st.Name = name
		replies = append(replies, st)
	}

	o.mu.Lock()
	defer o.mu.Unlock()
	for _, st := range replies {
		prev, had := o.last[st.Name]
		if st.Saturated && (!had || !prev.Saturated) {
			o.events = append(o.events, SaturationEvent{
				DP: st.Name, At: o.clock.Now(),
				ObservedRate: st.ObservedRate, CapacityRate: st.CapacityRate,
			})
		}
		o.last[st.Name] = st
	}
	return replies
}

// Events returns all recorded saturation events.
func (o *Overseer) Events() []SaturationEvent {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]SaturationEvent(nil), o.events...)
}

// Recommendation is the overseer's reconfiguration advice.
type Recommendation struct {
	// Current is the number of attached decision points.
	Current int
	// Needed is the total decision points required to carry the
	// aggregate observed load within capacity.
	Needed int
	// Saturated lists currently-saturated decision points.
	Saturated []string
}

// Recommend computes, from the most recent poll, how many decision
// points the current load requires: the aggregate observed request rate
// divided by the per-point capacity, rounded up, never fewer than the
// current count while any point is saturated.
func (o *Overseer) Recommend() Recommendation {
	o.mu.Lock()
	defer o.mu.Unlock()
	rec := Recommendation{Current: len(o.points)}
	names := make([]string, 0, len(o.last))
	for name := range o.last {
		names = append(names, name)
	}
	// Sorted iteration keeps the float sums deterministic: FP addition
	// does not commute under rounding, so map order would leak into the
	// recommendation.
	sort.Strings(names)
	var totalObserved, totalCapacity float64
	n := 0
	for _, name := range names {
		st := o.last[name]
		totalObserved += st.ObservedRate
		totalCapacity += st.CapacityRate
		if st.Saturated {
			rec.Saturated = append(rec.Saturated, name)
		}
		n++
	}
	rec.Needed = rec.Current
	if n == 0 || totalCapacity == 0 {
		return rec
	}
	perPoint := totalCapacity / float64(n)
	needed := int(math.Ceil(totalObserved / perPoint))
	if needed < 1 {
		needed = 1
	}
	// Never recommend shrinking below the current deployment while any
	// point is saturated; growth is driven by the rate model.
	if len(rec.Saturated) > 0 && needed <= rec.Current {
		needed = rec.Current + 1
	}
	rec.Needed = needed
	return rec
}
