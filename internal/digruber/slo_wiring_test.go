package digruber

import (
	"testing"
	"time"

	"digruber/internal/grid"
	"digruber/internal/trace"
	"digruber/internal/tsdb"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

// TestClientLatencyExemplar: the client's Latency hook observes each
// completed scheduling operation into the selected histogram with the
// decision's trace ID as the bucket exemplar — the metrics→trace join
// the SLO plane drills through.
func TestClientLatencyExemplar(t *testing.T) {
	clock := vtime.NewManual(epoch)
	h := newHarness(t, 1, clock, testStatuses(50, 50))
	sites := []string{"site-000", "site-001"}

	col := trace.NewCollector(0)
	tracer := trace.New(trace.Config{Actor: "client-0", Seed: 3, Clock: clock, Collector: col})
	reg := tsdb.New(0)
	hist := reg.Histogram("vo/atlas/latency_s", []float64{0.5, 5})

	c, err := NewClient(ClientConfig{
		Name: "client-0", DPName: h.dps[0].Name(), DPNode: h.dps[0].Name(),
		DPAddr: h.dps[0].Addr(), Transport: h.mem, Clock: clock,
		Timeout: 5 * time.Second, FallbackSites: sites,
		Tracer:  tracer,
		Latency: func(j *grid.Job) *tsdb.Histogram { return hist },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	dec := c.Schedule(testJob("j1"))
	if dec.Err != nil || dec.TraceID == 0 {
		t.Fatalf("decision: %+v", dec)
	}
	// Instant stack, Manual clock: zero response time, bucket 0.
	ex := hist.Exemplars()
	if !ex[0].Valid() || ex[0].Trace != dec.TraceID {
		t.Fatalf("latency exemplar = %+v, want trace %d", ex[0], dec.TraceID)
	}
	if ex[0].V != dec.Response.Seconds() {
		t.Fatalf("exemplar value %v != response %v", ex[0].V, dec.Response.Seconds())
	}

	// The exemplar's trace resolves in the collector: the root span of
	// that trace is the client.schedule span.
	trees := trace.BuildTrees(col.Records())
	found := false
	for _, tr := range trees {
		if tr.Root.Trace == dec.TraceID && tr.Root.Name == trace.PhaseSchedule {
			found = true
		}
	}
	if !found {
		t.Fatalf("exemplar trace %d has no %s root in the collector", dec.TraceID, trace.PhaseSchedule)
	}
}

// TestDPHandleExemplar: the decision point's server-side scheduling
// handlers observe into dp/<name>/handle_s with the propagated request
// trace as the exemplar, so a server-side spike is drillable too.
func TestDPHandleExemplar(t *testing.T) {
	clock := vtime.NewManual(epoch)
	mem := wire.NewMem()
	reg := tsdb.New(0)
	col := trace.NewCollector(0)
	dp, err := New(Config{
		Name: "dp-0", Addr: "dp-0", Transport: mem, Clock: clock,
		Profile: wire.Instant(), ExchangeInterval: time.Hour,
		Metrics: reg,
		Tracer:  trace.New(trace.Config{Actor: "dp-0", Seed: 5, Clock: clock, Collector: col}),
	})
	if err != nil {
		t.Fatal(err)
	}
	dp.Engine().UpdateSites(testStatuses(50, 50), clock.Now())
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()

	tracer := trace.New(trace.Config{Actor: "client-0", Seed: 9, Clock: clock, Collector: col})
	c, err := NewClient(ClientConfig{
		Name: "client-0", DPName: "dp-0", DPNode: "dp-0", DPAddr: "dp-0",
		Transport: mem, Clock: clock, Timeout: 5 * time.Second,
		FallbackSites: []string{"site-000"}, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	dec := c.Schedule(testJob("j1"))
	if dec.Err != nil || !dec.Handled {
		t.Fatalf("decision: %+v", dec)
	}
	var got tsdb.Exemplar
	for _, ex := range reg.Exemplars("dp/dp-0/handle_s") {
		if ex.Valid() {
			got = ex
		}
	}
	if got.Trace != dec.TraceID {
		t.Fatalf("handle exemplar = %+v, want the request trace %d", got, dec.TraceID)
	}
}

// TestControllerSLOFiringSignal: a firing SLO alert reads as pressure —
// the controller scales up on the SLO signal alone, with queues, sheds
// and throttles all quiet — and vetoes idle while it stays firing.
func TestControllerSLOFiringSignal(t *testing.T) {
	iv := time.Minute
	firing := 0
	cfg := ControllerConfig{
		Interval: iv, MaxDPs: 2,
		ScaleUpAfter: 2, ScaleDownAfter: 2,
		UpCooldown: iv, DownCooldown: iv,
		DrainTimeout: time.Minute,
		Signals:      SignalThresholds{ThrottleRateHigh: 0.5, Window: 4 * iv},
		SLOFiring:    func() int { return firing },
	}
	r := newControllerRig(t, cfg)
	r.reg.Sample(r.clock.Now())

	firing = 1
	if act, err := r.step(iv, 0); err != nil || act != ActionNone {
		t.Fatalf("pass 1: act=%q err=%v, want none (streak 1/2)", act, err)
	}
	if act, err := r.step(iv, 0); err != nil || act != ActionScaleUp {
		t.Fatalf("pass 2: act=%q err=%v, want scale-up on the SLO signal", act, err)
	}
	if got := len(r.ctl.Fleet()); got != 2 {
		t.Fatalf("fleet size = %d after SLO scale-up, want 2", got)
	}

	// Still firing: idle never accrues, the fleet holds at 2.
	for i := 0; i < 6; i++ {
		if act, _ := r.step(iv, 0); act != ActionNone {
			t.Fatalf("firing alert did not veto idle: %q at pass %d", act, i)
		}
	}

	// Resolved: idleness accrues and the extra member retires.
	firing = 0
	acted := false
	for i := 0; i < 6; i++ {
		act, err := r.step(iv, 0)
		if err != nil {
			t.Fatal(err)
		}
		if act == ActionScaleDown {
			acted = true
			break
		}
	}
	if !acted || len(r.ctl.Fleet()) != 1 {
		t.Fatalf("fleet did not shrink after the alert resolved: %v", fleetNames(r.ctl))
	}
}

// TestStatusAttachesAlerts: a wired alert source's summary rides the
// Status reply; detached or empty sources leave Alerts nil.
func TestStatusAttachesAlerts(t *testing.T) {
	clock := vtime.NewManual(epoch)
	h := newHarness(t, 1, clock, testStatuses(50))
	dp := h.dps[0]

	if st := dp.Status(); st.Alerts != nil {
		t.Fatalf("unwired alert source produced %+v", st.Alerts)
	}
	want := []AlertSummary{{VO: "atlas", State: "firing", Since: epoch, Burn: 2.5}}
	dp.SetAlertSource(func() []AlertSummary { return want })
	st := dp.Status()
	if len(st.Alerts) != 1 || st.Alerts[0] != want[0] {
		t.Fatalf("Status alerts = %+v, want %+v", st.Alerts, want)
	}
	dp.SetAlertSource(nil)
	if st := dp.Status(); st.Alerts != nil {
		t.Fatalf("detached alert source produced %+v", st.Alerts)
	}
}
