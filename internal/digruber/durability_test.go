package digruber

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"digruber/internal/gruber"
	"digruber/internal/netsim"
	"digruber/internal/vtime"
	"digruber/internal/wal"
	"digruber/internal/wire"
)

// newDurableDP builds one decision point backed by the given write-ahead
// store, with sites loaded and peers unregistered (callers mesh them).
func newDurableDP(t *testing.T, clock vtime.Clock, mem *wire.Mem, name string, store wal.Store, every int) *DecisionPoint {
	t.Helper()
	dp, err := New(Config{
		Name: name, Addr: name,
		Transport: mem, Clock: clock, Profile: wire.Instant(),
		Strategy:         UsageOnly,
		ExchangeInterval: 24 * time.Hour, // rounds driven by hand
		PeerTimeout:      30 * time.Second,
		Durability:       &DurabilityConfig{Store: store, CheckpointEvery: every},
	})
	if err != nil {
		t.Fatal(err)
	}
	dp.Engine().UpdateSites(testStatuses(100, 100), clock.Now())
	return dp
}

func durTestDispatch(i int, at time.Time) gruber.Dispatch {
	return gruber.Dispatch{
		JobID: fmt.Sprintf("job-%03d", i), Site: "site-000", Owner: "atlas",
		CPUs: 1, Runtime: 2 * time.Hour, At: at,
	}
}

// TestDurableRecoveryZeroAckedLoss is the tentpole's core contract with
// no peers at all: every dispatch acked before the crash is on stable
// storage, so a cold restart from the store alone rebuilds the full
// view and continues the sequence numbering.
func TestDurableRecoveryZeroAckedLoss(t *testing.T) {
	clock := vtime.NewManual(epoch)
	mem := wire.NewMem()
	store := wal.NewMemStore()
	dp := newDurableDP(t, clock, mem, "dp-0", store, 0)
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dp.Stop)
	const n = 8
	for i := 0; i < n; i++ {
		// RecordDispatch returning IS the ack: the WAL append (and sync)
		// happens inside it, under the engine lock.
		dp.Engine().RecordDispatch(durTestDispatch(i, clock.Now()))
	}
	if got := dp.WALStats().Appends; got != n {
		t.Fatalf("wal appends = %d, want %d", got, n)
	}

	dp.Crash()
	if got := dp.Engine().PendingDispatches(); got != 0 {
		t.Fatalf("pending after crash = %d, want 0 (dynamic state dropped)", got)
	}
	if err := dp.Restart(); err != nil {
		t.Fatal(err)
	}
	rec := dp.LastRecovery()
	if rec.Recovered != n || rec.Truncated || rec.Backfilled != 0 {
		t.Fatalf("recovery = %+v, want %d records, no truncation, no backfill", rec, n)
	}
	if got := dp.Engine().PendingDispatches(); got != n {
		t.Fatalf("pending after recovery = %d, want %d (zero acked-dispatch loss)", got, n)
	}
	dp.Engine().RecordDispatch(durTestDispatch(99, clock.Now()))
	if hi := dp.Engine().LocalSeqHighWater(); hi != n+1 {
		t.Fatalf("post-recovery dispatch stamped seq %d, want %d (numbering continues)", hi, n+1)
	}
}

// TestDurableCheckpointCompacts: once CheckpointEvery appends have
// accumulated, the next synchronization round checkpoints and compacts
// the log, and a later recovery restores checkpoint-then-tail instead
// of replaying everything.
func TestDurableCheckpointCompacts(t *testing.T) {
	clock := vtime.NewManual(epoch)
	mem := wire.NewMem()
	s0, s1 := wal.NewMemStore(), wal.NewMemStore()
	dp0 := newDurableDP(t, clock, mem, "dp-0", s0, 4)
	dp1 := newDurableDP(t, clock, mem, "dp-1", s1, 4)
	dp0.AddPeer("dp-1", "dp-1", "dp-1")
	dp1.AddPeer("dp-0", "dp-0", "dp-0")
	for _, dp := range []*DecisionPoint{dp0, dp1} {
		if err := dp.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(dp.Stop)
	}
	ckptsBefore := dp0.WALStats().Checkpoints // Start's recovery pass takes one

	for i := 0; i < 5; i++ {
		dp0.Engine().RecordDispatch(durTestDispatch(i, clock.Now()))
	}
	dp0.ExchangeNow() // 5 appends since last checkpoint >= 4: round checkpoints
	if got := dp0.WALStats().Checkpoints; got != ckptsBefore+1 {
		t.Fatalf("checkpoints = %d, want %d (round past CheckpointEvery must compact)", got, ckptsBefore+1)
	}
	for i := 5; i < 7; i++ {
		dp0.Engine().RecordDispatch(durTestDispatch(i, clock.Now()))
	}

	dp0.Crash()
	if err := dp0.Restart(); err != nil {
		t.Fatal(err)
	}
	rec := dp0.LastRecovery()
	if !rec.CheckpointRestored || rec.Recovered != 2 {
		t.Fatalf("recovery = %+v, want checkpoint restored plus 2 tail records", rec)
	}
	if got := dp0.Engine().PendingDispatches(); got != 7 {
		t.Fatalf("pending after recovery = %d, want 7", got)
	}
}

// TestDurableTornWriteTruncatesAndBackfills: a torn tail write (the
// classic crash-mid-append) truncates at the damaged record, and the
// restart's vector-filtered snapshot pulls exactly the seq-gap from a
// peer — never a panic, never corrupt state served.
func TestDurableTornWriteTruncatesAndBackfills(t *testing.T) {
	clock := vtime.NewManual(epoch)
	mem := wire.NewMem()
	s0, s1 := wal.NewMemStore(), wal.NewMemStore()
	dp0 := newDurableDP(t, clock, mem, "dp-0", s0, -1) // manual checkpoints only
	dp1 := newDurableDP(t, clock, mem, "dp-1", s1, -1)
	dp0.AddPeer("dp-1", "dp-1", "dp-1")
	dp1.AddPeer("dp-0", "dp-0", "dp-0")
	for _, dp := range []*DecisionPoint{dp0, dp1} {
		if err := dp.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(dp.Stop)
	}
	const n = 5
	for i := 0; i < n; i++ {
		dp0.Engine().RecordDispatch(durTestDispatch(i, clock.Now()))
	}
	dp0.ExchangeNow() // dp-1 now holds all n records

	dp0.Crash()
	// Tear the last append: cut 3 bytes off the log tail, as a crash
	// mid-write would.
	if !s0.Truncate("wal.log", s0.Size("wal.log")-3) {
		t.Fatal("truncate failed")
	}
	if err := dp0.Restart(); err != nil {
		t.Fatal(err)
	}
	rec := dp0.LastRecovery()
	if !rec.Truncated || rec.TruncateReason != wal.ReasonTornPayload {
		t.Fatalf("recovery = %+v, want torn-payload truncation", rec)
	}
	if rec.Recovered != n-1 {
		t.Fatalf("recovered %d records, want %d (all but the torn one)", rec.Recovered, n-1)
	}
	if rec.Backfilled != 1 {
		t.Fatalf("backfilled %d records, want exactly the seq-gap of 1", rec.Backfilled)
	}
	if got := dp0.Engine().PendingDispatches(); got != n {
		t.Fatalf("pending after recovery+backfill = %d, want %d", got, n)
	}
	// The backfilled record re-enters the own log, so numbering continues
	// past it instead of reusing its sequence number.
	dp0.Engine().RecordDispatch(durTestDispatch(99, clock.Now()))
	if hi := dp0.Engine().LocalSeqHighWater(); hi != n+1 {
		t.Fatalf("post-backfill dispatch stamped seq %d, want %d", hi, n+1)
	}
}

// TestDurableBitFlipTruncatesAndBackfills: silent corruption (one bit)
// inside an early record is caught by the checksum; replay stops there
// and the peer backfill restores the entire lost suffix.
func TestDurableBitFlipTruncatesAndBackfills(t *testing.T) {
	clock := vtime.NewManual(epoch)
	mem := wire.NewMem()
	s0, s1 := wal.NewMemStore(), wal.NewMemStore()
	dp0 := newDurableDP(t, clock, mem, "dp-0", s0, -1)
	dp1 := newDurableDP(t, clock, mem, "dp-1", s1, -1)
	dp0.AddPeer("dp-1", "dp-1", "dp-1")
	dp1.AddPeer("dp-0", "dp-0", "dp-0")
	for _, dp := range []*DecisionPoint{dp0, dp1} {
		if err := dp.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(dp.Stop)
	}
	const n = 5
	for i := 0; i < n; i++ {
		dp0.Engine().RecordDispatch(durTestDispatch(i, clock.Now()))
	}
	dp0.ExchangeNow()

	dp0.Crash()
	// Flip one bit in the first record's payload.
	if !s0.FlipBit("wal.log", 10, 3) {
		t.Fatal("flip failed")
	}
	if err := dp0.Restart(); err != nil {
		t.Fatal(err)
	}
	rec := dp0.LastRecovery()
	if !rec.Truncated || rec.TruncateReason != wal.ReasonChecksum {
		t.Fatalf("recovery = %+v, want checksum-mismatch truncation", rec)
	}
	if rec.Recovered != 0 || rec.Backfilled != n {
		t.Fatalf("recovery = %+v, want 0 replayed and %d backfilled", rec, n)
	}
	if got := dp0.Engine().PendingDispatches(); got != n {
		t.Fatalf("pending after recovery+backfill = %d, want %d", got, n)
	}
	dp0.Engine().RecordDispatch(durTestDispatch(99, clock.Now()))
	if hi := dp0.Engine().LocalSeqHighWater(); hi != n+1 {
		t.Fatalf("post-backfill dispatch stamped seq %d, want %d", hi, n+1)
	}
}

// fleetDigest is everything observable about one whole-fleet crash
// scenario: each point's recovery record and final per-site view, plus
// its store's final byte image — byte-identity across two runs is the
// replay determinism claim.
type fleetDigest struct {
	Recoveries map[string]RecoveryStats
	Views      map[string][]int
	WALBytes   map[string]int64
}

// runFleetCrashScenario: a 4-point durable mesh under a fault plane
// takes load, the ENTIRE fleet crashes at once (no survivor holds the
// state — only the stores do), two stores are damaged (torn write, bit
// flip), and everything cold-restarts. Returns the digest.
func runFleetCrashScenario(t *testing.T) fleetDigest {
	t.Helper()
	const nDP = 4
	clock := vtime.NewManual(epoch)
	mem := wire.NewMem()
	network := netsim.New(1, netsim.Loopback())
	faults := netsim.NewFaultPlane()
	network.SetFaults(faults)

	stores := make([]*wal.MemStore, nDP)
	dps := make([]*DecisionPoint, nDP)
	for i := range dps {
		stores[i] = wal.NewMemStore()
		dp, err := New(Config{
			Name: fmt.Sprintf("dp-%d", i), Node: fmt.Sprintf("node-%d", i),
			Addr:      fmt.Sprintf("dp-%d", i),
			Transport: mem, Network: network, Clock: clock, Profile: wire.Instant(),
			Strategy:         UsageOnly,
			ExchangeInterval: 24 * time.Hour,
			PeerTimeout:      30 * time.Second,
			Durability:       &DurabilityConfig{Store: stores[i], CheckpointEvery: -1},
		})
		if err != nil {
			t.Fatal(err)
		}
		dp.Engine().UpdateSites(testStatuses(100, 100, 100), clock.Now())
		dps[i] = dp
	}
	for _, dp := range dps {
		for _, peer := range dps {
			if peer != dp {
				dp.AddPeer(peer.Name(), peer.Name(), peer.Addr())
			}
		}
		if err := dp.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, dp := range dps {
			dp.Stop()
		}
	})

	// Load: every point brokers a burst, fully exchanged.
	job := 0
	for round := 0; round < 3; round++ {
		for _, dp := range dps {
			for k := 0; k < 4; k++ {
				dp.Engine().RecordDispatch(gruber.Dispatch{
					JobID: fmt.Sprintf("job-%03d", job), Site: fmt.Sprintf("site-%03d", job%3),
					Owner: "atlas", CPUs: 1, Runtime: 12 * time.Hour, At: clock.Now(),
				})
				job++
			}
		}
		for _, dp := range dps {
			dp.ExchangeNow()
		}
		clock.Advance(time.Minute)
	}

	// The whole fleet goes down at once; the fault plane severs every
	// node for the down window so nothing answers while "off".
	downUntil := clock.Now().Add(10 * time.Minute)
	for i, dp := range dps {
		faults.CrashNode(fmt.Sprintf("node-%d", i), clock.Now(), downUntil)
		dp.Crash()
	}
	// Two of the stores took damage while down.
	if !stores[1].Truncate("wal.log", stores[1].Size("wal.log")-5) {
		t.Fatal("torn-write injection failed")
	}
	if !stores[2].FlipBit("wal.log", stores[2].Size("wal.log")/2, 5) {
		t.Fatal("bit-flip injection failed")
	}
	clock.Advance(15 * time.Minute) // past the fault window

	// Cold restart from the stores: recovery first, then each point
	// backfills its gap from an already-recovered peer.
	for _, dp := range dps {
		if err := dp.Restart(); err != nil {
			t.Fatalf("restart %s: %v", dp.Name(), err)
		}
	}
	for _, dp := range dps {
		dp.ExchangeNow()
	}

	digest := fleetDigest{
		Recoveries: make(map[string]RecoveryStats),
		Views:      make(map[string][]int),
		WALBytes:   make(map[string]int64),
	}
	for i, dp := range dps {
		digest.Recoveries[dp.Name()] = dp.LastRecovery()
		view := make([]int, 3)
		for s := range view {
			view[s] = dp.Engine().EstFreeCPUs(fmt.Sprintf("site-%03d", s))
		}
		digest.Views[dp.Name()] = view
		digest.WALBytes[dp.Name()] = stores[i].Size("checkpoint")
	}

	// Zero acked-dispatch loss across the WHOLE fleet crashing: every
	// job acked before the crash is somewhere — and after backfill,
	// everywhere.
	for _, dp := range dps {
		if got := dp.Engine().PendingDispatches(); got != job {
			t.Fatalf("%s pending = %d, want %d (all acked dispatches recovered fleet-wide)", dp.Name(), got, job)
		}
	}
	return digest
}

// TestFleetCrashRecoveryDeterministic is the chaos acceptance test: the
// entire fleet crashes at peak (so recovery cannot lean on any live
// replica), two stores are damaged, and the cold restart still loses
// nothing — deterministically, byte-for-byte, across two runs.
func TestFleetCrashRecoveryDeterministic(t *testing.T) {
	first := runFleetCrashScenario(t)

	if r := first.Recoveries["dp-1"]; !r.Truncated || r.Backfilled == 0 {
		t.Fatalf("dp-1 recovery = %+v, want truncation plus backfill after torn write", r)
	}
	if r := first.Recoveries["dp-2"]; !r.Truncated || r.Backfilled == 0 {
		t.Fatalf("dp-2 recovery = %+v, want truncation plus backfill after bit flip", r)
	}
	if r := first.Recoveries["dp-0"]; r.Truncated || r.Backfilled != 0 {
		t.Fatalf("dp-0 recovery = %+v, want clean replay from an undamaged store", r)
	}

	second := runFleetCrashScenario(t)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("two runs of the same seeded fleet crash diverged:\n first %+v\n second %+v", first, second)
	}
}

// TestDrainAfterRecovery is the drain/recovery interaction: a point that
// just cold-restarted (replay + backfill) must still be able to retire
// cleanly — its verified flush reconciles the recovered own log against
// peers whose cursors were reset by the crash.
func TestDrainAfterRecovery(t *testing.T) {
	clock := vtime.NewReal()
	mem := wire.NewMem()
	s0, s1 := wal.NewMemStore(), wal.NewMemStore()
	dp0 := newDurableDP(t, clock, mem, "dp-0", s0, -1)
	dp1 := newDurableDP(t, clock, mem, "dp-1", s1, -1)
	dp0.AddPeer("dp-1", "dp-1", "dp-1")
	dp1.AddPeer("dp-0", "dp-0", "dp-0")
	for _, dp := range []*DecisionPoint{dp0, dp1} {
		if err := dp.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(dp.Stop)
	}
	for i := 0; i < 6; i++ {
		dp0.Engine().RecordDispatch(durTestDispatch(i, clock.Now()))
	}
	// Only half the records ever reached the peer before the crash.
	dp0.ExchangeNow()
	for i := 6; i < 9; i++ {
		dp0.Engine().RecordDispatch(durTestDispatch(i, clock.Now()))
	}

	dp0.Crash()
	if err := dp0.Restart(); err != nil {
		t.Fatal(err)
	}
	if rec := dp0.LastRecovery(); rec.Recovered != 9 {
		t.Fatalf("recovery = %+v, want all 9 records replayed", rec)
	}
	// Drain immediately after recovery: the flush must push the records
	// the peer never saw (and re-prove the ones it did) before stopping.
	if err := dp0.Drain(time.Minute); err != nil {
		t.Fatalf("drain after recovery: %v", err)
	}
	if got := dp1.Engine().PendingDispatches(); got != 9 {
		t.Fatalf("peer pending after drain = %d, want 9 (flush covered the recovered log)", got)
	}
}
