package digruber

import (
	"fmt"
	"testing"
	"time"

	"digruber/internal/netsim"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

// breakerClient builds a client with the overload plane's client-side
// pieces: a small failover threshold, per-broker breakers, and
// (optionally) load-aware failover.
func breakerClient(t *testing.T, h *harness, clock vtime.Clock, loadAware bool, failover ...int) (*Client, *wire.ClientMetrics) {
	t.Helper()
	metrics := wire.NewClientMetrics()
	var refs []DPRef
	for _, i := range failover {
		refs = append(refs, DPRef{Name: h.dps[i].Name(), Node: h.dps[i].Name(), Addr: h.dps[i].Addr()})
	}
	c, err := NewClient(ClientConfig{
		Name: "c", Node: "c",
		DPName: h.dps[0].Name(), DPNode: h.dps[0].Name(), DPAddr: h.dps[0].Addr(),
		Transport: h.mem, Clock: clock, Timeout: 5 * time.Second,
		FallbackSites: []string{"fb"},
		RNG:           netsim.Stream(1, "overload.client"),
		WireMetrics:   metrics,
		Failover:      refs, FailoverThreshold: 2,
		Breaker:           wire.BreakerConfig{Threshold: 2, Cooldown: 10 * time.Minute},
		LoadAwareFailover: loadAware,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, metrics
}

// TestClientBreakerFailsFast: consecutive transport failures trip the
// per-broker breaker; further jobs fall back locally without touching
// the wire, and after the cooldown one probe re-closes the breaker
// against the recovered broker.
func TestClientBreakerFailsFast(t *testing.T) {
	clock := vtime.NewManual(epoch)
	h := newHarness(t, 1, clock, testStatuses(50, 80))
	c, metrics := breakerClient(t, h, clock, false)

	h.dps[0].Stop()
	for i := 0; i < 2; i++ {
		if dec := c.Schedule(testJob(fmt.Sprintf("b%d", i))); dec.Handled {
			t.Fatalf("job %d handled by a stopped broker", i)
		}
	}
	c.mu.Lock()
	br := c.breakerLocked(h.dps[0].Addr())
	c.mu.Unlock()
	if br.State() != wire.BreakerOpen {
		t.Fatalf("breaker state after threshold failures = %v, want open", br.State())
	}

	// Open breaker: the next job degrades instantly and sends nothing.
	attempts := metrics.Stats().Attempts
	dec := c.Schedule(testJob("gated"))
	if dec.Handled || dec.Site != "fb" || dec.Err != nil {
		t.Fatalf("breaker-gated decision = %+v, want instant fallback", dec)
	}
	if got := metrics.Stats().Attempts; got != attempts {
		t.Fatalf("breaker-gated job still sent %d wire attempt(s)", got-attempts)
	}

	// Broker recovers; after the cooldown the half-open probe re-closes.
	if err := h.dps[0].Restart(); err != nil {
		t.Fatal(err)
	}
	dec = c.Schedule(testJob("still-gated"))
	if dec.Handled {
		t.Fatal("job handled while the breaker's cooldown is still running")
	}
	clock.Advance(10 * time.Minute)
	dec = c.Schedule(testJob("probe"))
	if !dec.Handled || dec.Err != nil {
		t.Fatalf("post-cooldown probe decision = %+v, want handled", dec)
	}
	if br.State() != wire.BreakerClosed {
		t.Fatalf("breaker state after successful probe = %v, want closed", br.State())
	}
}

// TestLoadAwareFailoverSkipsOpenBreakers: when the failover threshold
// fires, a load-aware client probes the candidates and skips any whose
// breaker is already open — even if ring order would pick them first.
func TestLoadAwareFailoverSkipsOpenBreakers(t *testing.T) {
	clock := vtime.NewManual(epoch)
	h := newHarness(t, 3, clock, testStatuses(50, 80))
	c, _ := breakerClient(t, h, clock, true, 1, 2)

	// dp-1 is known bad: its breaker is open from earlier observations.
	c.mu.Lock()
	br1 := c.breakerLocked(h.dps[1].Addr())
	c.mu.Unlock()
	br1.Record(wire.ErrTimeout)
	br1.Record(wire.ErrTimeout)
	if br1.State() != wire.BreakerOpen {
		t.Fatalf("setup: dp-1 breaker = %v, want open", br1.State())
	}

	h.dps[0].Stop()
	for i := 0; i < 2; i++ {
		c.Schedule(testJob(fmt.Sprintf("lf%d", i)))
	}
	if got := c.DPName(); got != h.dps[2].Name() {
		t.Fatalf("client bound to %q, want %q (ring-first dp-1 has an open breaker)", got, h.dps[2].Name())
	}
	if dec := c.Schedule(testJob("after")); !dec.Handled || dec.Err != nil {
		t.Fatalf("post-failover decision = %+v, want handled", dec)
	}
}

// TestLoadAwareFailoverTieKeepsListOrder: with all candidates equally
// idle the probe is a tie, and the earliest candidate in the failover
// list wins — the choice stays deterministic.
func TestLoadAwareFailoverTieKeepsListOrder(t *testing.T) {
	clock := vtime.NewManual(epoch)
	h := newHarness(t, 3, clock, testStatuses(50, 80))
	c, _ := breakerClient(t, h, clock, true, 1, 2)

	h.dps[0].Stop()
	for i := 0; i < 2; i++ {
		c.Schedule(testJob(fmt.Sprintf("tie%d", i)))
	}
	if got := c.DPName(); got != h.dps[1].Name() {
		t.Fatalf("client bound to %q, want %q (first candidate on a tie)", got, h.dps[1].Name())
	}
}

// TestMeshLaneStatusUnderConfig: a decision point with a reserved mesh
// lane still answers Status (routed through the lane) and reports the
// service stack's expired count through the appended StatusReply field.
func TestMeshLaneStatusUnderConfig(t *testing.T) {
	clock := vtime.NewManual(epoch)
	mem := wire.NewMem()
	dp, err := New(Config{
		Name: "dp-lane", Addr: "dp-lane", Transport: mem, Clock: clock,
		Profile: wire.Instant(), ExchangeInterval: time.Hour, MeshLane: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dp.Engine().UpdateSites(testStatuses(10), clock.Now())
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dp.Stop)

	cli := wire.NewClient(wire.ClientConfig{
		Node: "mon", ServerNode: "dp-lane", Addr: "dp-lane", Transport: mem, Clock: clock,
	})
	t.Cleanup(cli.Close)
	st, err := wire.Call[StatusArgs, StatusReply](cli, MethodStatus, StatusArgs{}, 5*time.Second)
	if err != nil {
		t.Fatalf("Status through the mesh lane: %v", err)
	}
	if st.Name != "dp-lane" || st.Expired != 0 {
		t.Fatalf("status = %+v, want name dp-lane and zero expired", st)
	}
}
