package digruber

import (
	"testing"

	"digruber/internal/vtime"
)

// TestOverseerAttachOverwrites: attaching the same name replaces the
// status source instead of duplicating it.
func TestOverseerAttachOverwrites(t *testing.T) {
	o := NewOverseer(vtime.NewManual(epoch))
	o.Attach("dp-0", func() StatusReply { return StatusReply{Queries: 1} })
	o.Attach("dp-0", func() StatusReply { return StatusReply{Queries: 2} })
	replies := o.Poll()
	if len(replies) != 1 {
		t.Fatalf("poll returned %d replies, want 1", len(replies))
	}
	if replies[0].Queries != 2 {
		t.Fatalf("queries = %d, want the second source's 2", replies[0].Queries)
	}
}

// TestOverseerPollAfterDetach: a detached point is no longer polled and
// its last status is dropped, but its recorded events survive.
func TestOverseerPollAfterDetach(t *testing.T) {
	o := NewOverseer(vtime.NewManual(epoch))
	o.Attach("dp-0", func() StatusReply {
		return StatusReply{Saturated: true, ObservedRate: 5, CapacityRate: 2}
	})
	o.Attach("dp-1", func() StatusReply { return StatusReply{} })
	o.Poll()
	if len(o.Events()) != 1 {
		t.Fatalf("events = %d, want 1 saturation event", len(o.Events()))
	}

	o.Detach("dp-0")
	replies := o.Poll()
	if len(replies) != 1 || replies[0].Name != "dp-1" {
		t.Fatalf("post-detach poll = %+v, want only dp-1", replies)
	}
	if _, ok := o.Last("dp-0"); ok {
		t.Fatal("detached point still has a last status")
	}
	if len(o.Events()) != 1 {
		t.Fatal("detach dropped recorded events")
	}
	if rec := o.Recommend(); rec.Current != 1 || len(rec.Saturated) != 0 {
		t.Fatalf("recommendation still counts detached point: %+v", rec)
	}
	o.Detach("nope") // unknown name: no-op
}

// TestOverseerPollOrderingDeterministic: replies come back sorted by
// name regardless of attach order or map iteration.
func TestOverseerPollOrderingDeterministic(t *testing.T) {
	o := NewOverseer(vtime.NewManual(epoch))
	for _, name := range []string{"dp-7", "dp-0", "dp-3", "dp-10"} {
		o.Attach(name, func() StatusReply { return StatusReply{} })
	}
	want := []string{"dp-0", "dp-10", "dp-3", "dp-7"} // lexicographic
	for round := 0; round < 5; round++ {
		replies := o.Poll()
		if len(replies) != len(want) {
			t.Fatalf("round %d: %d replies", round, len(replies))
		}
		for i, st := range replies {
			if st.Name != want[i] {
				t.Fatalf("round %d: replies[%d] = %s, want %s", round, i, st.Name, want[i])
			}
		}
	}
}

// TestOverseerConsumesMetricsSnapshot: a status source carrying a
// metrics snapshot (StatusArgs.WithMetrics over the wire, or a local
// closure) is queryable through LastMetric after a poll.
func TestOverseerConsumesMetricsSnapshot(t *testing.T) {
	o := NewOverseer(vtime.NewManual(epoch))
	o.Attach("dp-0", func() StatusReply {
		return StatusReply{Metrics: []MetricSample{
			{Name: "dp/dp-0/engine/divergence_l1", V: 12.5},
			{Name: "dp/dp-0/wire/inflight", V: 3},
		}}
	})
	if _, ok := o.LastMetric("dp-0", "dp/dp-0/engine/divergence_l1"); ok {
		t.Fatal("metric visible before any poll")
	}
	o.Poll()
	if v, ok := o.LastMetric("dp-0", "dp/dp-0/engine/divergence_l1"); !ok || v != 12.5 {
		t.Fatalf("divergence metric = %v (ok=%v), want 12.5", v, ok)
	}
	if _, ok := o.LastMetric("dp-0", "missing"); ok {
		t.Fatal("missing series reported ok")
	}
	if _, ok := o.LastMetric("dp-9", "anything"); ok {
		t.Fatal("unknown point reported ok")
	}
}
