package digruber

import (
	"sort"
	"sync"

	"digruber/internal/gossip"
	"digruber/internal/trace"
	"digruber/internal/wire"
)

// The Gossip dissemination strategy (strategy.go) replaces the full-mesh
// flood with peer-sampling push-pull rounds. Each round this decision
// point draws fanout-k peers from its membership view with a seeded
// deterministic shuffle (gossip.View.Sample), sends each its
// version-vector digest plus the records that peer's last-acknowledged
// vector lacked, and merges the records the peer's reply digest proved
// this side lacked. Third-party records relay transitively through the
// per-origin logs (gruber.MergeGossip), so a sparse sampled graph still
// converges — in O(log N) rounds with high probability — while per-point
// traffic tracks the fanout, not the fleet size.

// GossipConfig tunes the Gossip dissemination strategy; zero values get
// defaults from the gossip package.
type GossipConfig struct {
	// Fanout is how many sampled peers one round contacts
	// (gossip.DefaultFanout when 0).
	Fanout int
	// ViewSize caps the active membership subset this point gossips
	// with; 0 means the whole peer set stays active. Capping bounds
	// per-point link state at very large fleets while the per-point rank
	// permutation keeps the union of subgraphs connected.
	ViewSize int
	// MaxRecords bounds the dispatch records one message carries
	// (gossip.DefaultMaxRecords when 0).
	MaxRecords int
	// Seed drives peer sampling and view ranking. Fleets replay
	// byte-identically under a Manual clock for a fixed seed.
	Seed int64
}

func (g *GossipConfig) setDefaults() {
	if g.Fanout <= 0 {
		g.Fanout = gossip.DefaultFanout
	}
	if g.MaxRecords <= 0 {
		g.MaxRecords = gossip.DefaultMaxRecords
	}
}

// selfMember describes this decision point for membership piggybacking.
func (dp *DecisionPoint) selfMember() gossip.Member {
	return gossip.Member{Name: dp.cfg.Name, Node: dp.cfg.Node, Addr: dp.cfg.Addr}
}

// gossipNow runs one gossip round: sample, push-pull with each target
// concurrently, then advance the compaction floor. force (the drain
// flush) contacts every known peer instead of a sample and ignores
// probe backoff, exactly like exchangeNow's force. Returns the number
// of records pushed.
func (dp *DecisionPoint) gossipNow(force bool) int {
	now := dp.cfg.Clock.Now()
	dp.mu.Lock()
	round := dp.gossipRound
	dp.gossipRound++
	dp.mu.Unlock()

	var targets []gossip.Member
	if force {
		targets = dp.view.All()
	} else {
		targets = dp.view.Sample(round, dp.cfg.Gossip.Fanout)
	}

	dp.mu.Lock()
	links := make([]*peerLink, 0, len(targets))
	for _, m := range targets {
		l := dp.peers[m.Name]
		if l == nil || l.client == nil {
			continue // removed or stopped
		}
		if !force && l.state == peerDead && now.Before(l.nextProbe) {
			continue // dead; not due for a probe yet
		}
		links = append(links, l)
	}
	timeout := dp.cfg.PeerTimeout
	dp.mu.Unlock()
	sort.Slice(links, func(i, j int) bool { return links[i].name < links[j].name })

	// Membership piggyback: self plus this round's targets — bounded by
	// the fanout, so the payload does not grow with the fleet.
	members := append([]gossip.Member{dp.selfMember()}, targets...)
	digest := gossip.Cursors(dp.engine.OriginVector())

	tr := dp.cfg.Tracer.StartTrace(trace.PhaseMeshRound)
	sent := 0
	type outcome struct {
		link  *peerLink
		span  *trace.Span
		reply GossipReply
		err   error
	}
	outcomes := make([]*outcome, 0, len(links))
	var wg sync.WaitGroup
	for _, link := range links {
		dp.mu.Lock()
		client := link.client
		ackVV := link.ackVV
		dp.mu.Unlock()
		if client == nil {
			continue // Stop raced us
		}
		// The push is diffed against this peer's last-acknowledged
		// vector; a failed or never-contacted peer has a nil vector and
		// gets everything (up to the batch bound).
		push := dp.engine.DispatchesSince(ackVV, dp.cfg.Gossip.MaxRecords)
		args := GossipArgs{
			From:    dp.cfg.Name,
			Round:   round,
			Digest:  digest,
			Records: push,
			Members: members,
		}
		ex := dp.cfg.Tracer.StartSpan(tr.Context(), trace.PhaseMeshExchange)
		ex.SetNote(link.name)
		o := &outcome{link: link, span: ex}
		outcomes = append(outcomes, o)
		wg.Add(1)
		go func() {
			defer wg.Done()
			o.reply, o.err = wire.CallCtx[GossipArgs, GossipReply](client, ex.Context(), MethodGossip, args, timeout)
		}()
		sent += len(push)
	}
	// Only the calls run concurrently. Replies are merged after the
	// barrier, in link-name order, so a round's merges — and with them
	// the relay/duplicate accounting — are deterministic under a Manual
	// clock regardless of reply arrival order.
	wg.Wait()
	for _, o := range outcomes {
		if o.err != nil {
			o.span.End()
			dp.mu.Lock()
			dp.peerFailedLocked(o.link, dp.cfg.Clock.Now())
			dp.mu.Unlock()
			// The push is recomputed against the unchanged ackVV next time
			// this peer is sampled; the receiver-side vector and JobID
			// dedup make retransmission harmless.
			continue
		}
		// The pull: records the peer held that our digest lacked.
		st := dp.engine.MergeGossipCtx(o.span.Context(), o.link.name, o.reply.Records)
		o.span.End()
		dp.mu.Lock()
		dp.peerAliveLocked(o.link)
		// The reply digest is the peer's post-merge state: the ack basis
		// for the next push diff, for compaction, and — via its
		// self-origin entry — for the drain flush's completeness proof.
		o.link.ackVV = gossip.Vector(o.reply.Digest)
		if self := gossip.Seq(o.reply.Digest, dp.cfg.Name); self > o.link.lastSent {
			o.link.lastSent = self
		}
		dp.gossipPulled += len(o.reply.Records)
		dp.gossipRelayed += st.Relayed
		dp.gossipDuplicates += st.Duplicates
		dp.mu.Unlock()
		dp.metrics.gossipResets.Add(int64(st.Resets))
	}
	tr.End()
	end := dp.cfg.Clock.Now()
	dp.metrics.roundDur.Observe(end.Sub(now).Seconds())

	// Compaction floor: for every origin this engine holds, the minimum
	// sequence acknowledged across the whole view. A peer never heard
	// from has a nil vector and pins every origin at zero — conservative,
	// and exactly why departed peers must be removed from the view
	// (RemovePeer) rather than compacted around.
	vv := dp.engine.OriginVector()
	origins := make([]string, 0, len(vv))
	//lint:allow mapiter -- collected slice is sorted right below
	for origin := range vv {
		origins = append(origins, origin)
	}
	sort.Strings(origins)
	dp.mu.Lock()
	dp.rounds++
	dp.sentRecs += sent
	dp.lastRound = end
	acked := make(map[string]uint64, len(origins))
	for _, name := range dp.peerNamesLocked() {
		gossip.MinAcked(acked, dp.peers[name].ackVV, origins)
	}
	hasPeers := len(dp.peers) > 0
	dp.mu.Unlock()
	if hasPeers {
		dp.engine.CompactOrigins(acked)
	}
	return sent
}

// handleGossip serves one inbound push-pull exchange: merge the push,
// learn new members, and reply with the post-merge digest plus the
// records the sender's digest was missing.
func (dp *DecisionPoint) handleGossip(ctx wire.Ctx, a GossipArgs) (GossipReply, error) {
	dp.markPeerAlive(a.From)
	for _, m := range a.Members {
		if m.Name == "" || m.Name == dp.cfg.Name {
			continue
		}
		dp.AddPeer(m.Name, m.Node, m.Addr) // no-op for known names
	}
	st := dp.engine.MergeGossipCtx(ctx.Span, a.From, a.Records)
	// The sender's digest covers everything it holds (push included), so
	// it doubles as this side's acknowledged vector for that link.
	senderVV := gossip.Vector(a.Digest)
	dp.mu.Lock()
	if l, ok := dp.peers[a.From]; ok {
		l.ackVV = senderVV
		if self := gossip.Seq(a.Digest, dp.cfg.Name); self > l.lastSent {
			l.lastSent = self
		}
	}
	dp.gossipRelayed += st.Relayed
	dp.gossipDuplicates += st.Duplicates
	dp.mu.Unlock()
	dp.metrics.gossipResets.Add(int64(st.Resets))
	// The pull: anything we hold that the sender's digest lacks. Records
	// the sender just pushed are covered by its digest, so they never
	// echo back.
	pull := dp.engine.DispatchesSince(senderVV, dp.cfg.Gossip.MaxRecords)
	return GossipReply{
		From:    dp.cfg.Name,
		Digest:  gossip.Cursors(dp.engine.OriginVector()),
		Records: pull,
		Stored:  st.Stored,
	}, nil
}
