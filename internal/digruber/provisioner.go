package digruber

import (
	"fmt"
	"sync"
	"time"

	"digruber/internal/vtime"
)

// Provisioner is the live implementation of the dynamic reconfiguration
// the paper's Section 5 designs but leaves to future work ("we do not
// have a DI-GRUBER implementation for such an approach"): a running
// fleet of decision points under an Overseer that, when saturation is
// detected, deploys a new decision point into the mesh and rebalances
// client bindings across the fleet.
type Provisioner struct {
	overseer *Overseer
	clock    vtime.Clock
	factory  DPFactory
	interval time.Duration
	maxDPs   int

	mu        sync.Mutex
	fleet     []*DecisionPoint
	clients   []*Client
	ticker    vtime.Ticker
	done      chan struct{}
	running   bool
	deployLog []time.Time
}

// DPFactory creates and starts decision point number idx, returning the
// live handle. The factory owns transport/address conventions and must
// seed the new point's engine with the grid's static site knowledge
// before returning (UpdateSites), exactly as a freshly-deployed broker
// would bootstrap from the information service.
type DPFactory func(idx int) (*DecisionPoint, error)

// ProvisionerConfig wires a Provisioner.
type ProvisionerConfig struct {
	Clock vtime.Clock
	// Factory creates new decision points on demand.
	Factory DPFactory
	// Interval is the monitoring period (default 1 minute).
	Interval time.Duration
	// MaxDPs caps fleet growth (default 16).
	MaxDPs int
}

// NewProvisioner returns a provisioner over an initial fleet. The fleet
// must already be started and meshed.
func NewProvisioner(cfg ProvisionerConfig, initial []*DecisionPoint) (*Provisioner, error) {
	if cfg.Clock == nil || cfg.Factory == nil {
		return nil, fmt.Errorf("digruber: provisioner needs Clock and Factory")
	}
	if len(initial) == 0 {
		return nil, fmt.Errorf("digruber: provisioner needs at least one decision point")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Minute
	}
	if cfg.MaxDPs <= 0 {
		cfg.MaxDPs = 16
	}
	p := &Provisioner{
		overseer: NewOverseer(cfg.Clock),
		clock:    cfg.Clock,
		factory:  cfg.Factory,
		interval: cfg.Interval,
		maxDPs:   cfg.MaxDPs,
		fleet:    append([]*DecisionPoint(nil), initial...),
	}
	for _, dp := range p.fleet {
		p.overseer.Attach(dp.Name(), dp.Status)
	}
	return p, nil
}

// Overseer exposes the underlying monitoring service.
func (p *Provisioner) Overseer() *Overseer { return p.overseer }

// Fleet returns the current decision points.
func (p *Provisioner) Fleet() []*DecisionPoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*DecisionPoint(nil), p.fleet...)
}

// Deployments returns when each dynamically-added point went live.
func (p *Provisioner) Deployments() []time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]time.Time(nil), p.deployLog...)
}

// ManageClients registers the client population whose bindings the
// provisioner rebalances after a deployment.
func (p *Provisioner) ManageClients(clients []*Client) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clients = append([]*Client(nil), clients...)
}

// Start begins periodic monitoring.
func (p *Provisioner) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.running {
		return
	}
	p.running = true
	p.done = make(chan struct{})
	p.ticker = p.clock.NewTicker(p.interval)
	go p.loop(p.ticker, p.done)
}

func (p *Provisioner) loop(ticker vtime.Ticker, done chan struct{}) {
	for {
		select {
		case <-ticker.C():
			p.Evaluate()
		case <-done:
			return
		}
	}
}

// Evaluate performs one monitoring pass: poll the fleet, and if any
// point is saturated (and the cap allows), deploy one more and
// rebalance. It returns the decision point added, if any.
func (p *Provisioner) Evaluate() (*DecisionPoint, error) {
	p.overseer.Poll()
	rec := p.overseer.Recommend()
	if len(rec.Saturated) == 0 {
		return nil, nil
	}
	p.mu.Lock()
	if len(p.fleet) >= p.maxDPs {
		p.mu.Unlock()
		return nil, nil
	}
	idx := len(p.fleet)
	p.mu.Unlock()

	dp, err := p.factory(idx)
	if err != nil {
		return nil, fmt.Errorf("digruber: deploying decision point %d: %w", idx, err)
	}

	p.mu.Lock()
	// Mesh the newcomer with the whole fleet both ways.
	for _, existing := range p.fleet {
		existing.AddPeer(dp.Name(), dp.cfg.Node, dp.Addr())
		dp.AddPeer(existing.Name(), existing.cfg.Node, existing.Addr())
	}
	p.fleet = append(p.fleet, dp)
	p.deployLog = append(p.deployLog, p.clock.Now())
	p.overseer.Attach(dp.Name(), dp.Status)
	// Rebalance: spread managed clients round-robin over the new fleet.
	for i, c := range p.clients {
		target := p.fleet[i%len(p.fleet)]
		c.Rebind(target.Name(), target.cfg.Node, target.Addr())
	}
	p.mu.Unlock()

	// Give the newcomer the freshest state available: ask one existing
	// peer to flood immediately rather than waiting a full interval.
	if first := p.Fleet()[0]; first != dp {
		first.ExchangeNow()
	}
	return dp, nil
}

// Stop ends monitoring (the fleet keeps running).
func (p *Provisioner) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.running {
		return
	}
	p.running = false
	p.ticker.Stop()
	close(p.done)
}
