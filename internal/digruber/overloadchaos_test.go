package digruber

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"digruber/internal/grid"
	"digruber/internal/netsim"
	"digruber/internal/usla"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

// overloadChaosDigest is the replayable fingerprint of a combined
// overload + fault-plane run: every decision, per-wave goodput, the
// budget's throttle count, each client's final home-breaker state, and
// every broker's final usage view.
type overloadChaosDigest struct {
	Decisions   []chaosDecision
	WaveHandled []int
	Throttled   int64
	Breakers    map[string]string
	Views       map[string][]int
}

// runOverloadChaosScenario drives a 6-point mesh with the full overload
// plane armed on every client — deadline propagation, a shared retry
// budget, per-broker breakers, load-aware failover — while a seeded
// netsim.FaultPlane opens crash windows for two brokers mid-run. The
// plane's windows are consulted at every virtual step to crash and heal
// the matching processes, so the whole scenario is a pure function of
// the seed and replays bit-for-bit.
func runOverloadChaosScenario(t *testing.T) overloadChaosDigest {
	t.Helper()
	const nDP = 6
	clock := vtime.NewManual(epoch)
	mem := wire.NewMem()
	sites := testStatuses(100, 100, 100, 100)
	siteNames := make([]string, len(sites))
	for i, s := range sites {
		siteNames[i] = s.Name
	}

	dps := make([]*DecisionPoint, nDP)
	for i := 0; i < nDP; i++ {
		dp, err := New(Config{
			Name: fmt.Sprintf("dp-%d", i), Addr: fmt.Sprintf("dp-%d", i),
			Transport: mem, Clock: clock, Profile: wire.Instant(),
			Strategy:         UsageOnly,
			ExchangeInterval: 24 * time.Hour, // rounds driven by hand
			PeerTimeout:      30 * time.Second,
			MeshLane:         1,
		})
		if err != nil {
			t.Fatal(err)
		}
		dp.Engine().UpdateSites(sites, clock.Now())
		dps[i] = dp
	}
	for _, dp := range dps {
		for _, peer := range dps {
			if peer != dp {
				dp.AddPeer(peer.Name(), peer.Name(), peer.Addr())
			}
		}
		if err := dp.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, dp := range dps {
			dp.Stop()
		}
	})

	// The whole fleet shares one retry budget, as co-located submission
	// hosts would: tiny refill, burst 2, so a wave of correlated failures
	// drains it and later victims throttle instead of amplifying.
	metrics := wire.NewClientMetrics()
	budget := wire.NewRetryBudget(clock, 0.1, 2)
	clients := make([]*Client, nDP)
	homes := make([]DPRef, nDP)
	for i := 0; i < nDP; i++ {
		homes[i] = DPRef{Name: dps[i].Name(), Node: dps[i].Name(), Addr: dps[i].Addr()}
		chain := make([]DPRef, 0, nDP-1)
		for k := 1; k < nDP; k++ {
			p := dps[(i+k)%nDP]
			chain = append(chain, DPRef{Name: p.Name(), Node: p.Name(), Addr: p.Addr()})
		}
		c, err := NewClient(ClientConfig{
			Name:   fmt.Sprintf("client-%d", i),
			DPName: homes[i].Name, DPNode: homes[i].Node, DPAddr: homes[i].Addr,
			Transport: mem, Clock: clock, Timeout: 10 * time.Second,
			FallbackSites:     siteNames,
			RNG:               netsim.Stream(99, fmt.Sprintf("ovchaos.client-%d", i)),
			WireMetrics:       metrics,
			Failover:          chain,
			FailoverThreshold: 2,
			Retry:             wire.RetryPolicy{Attempts: 3, Budget: budget},
			PropagateDeadline: true,
			Breaker:           wire.BreakerConfig{Threshold: 2, Cooldown: 30 * time.Second},
			LoadAwareFailover: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		clients[i] = c
	}

	// Seeded crash windows land on the fault plane; the run consults
	// Down() at each step boundary to crash and heal the processes.
	faults := netsim.NewFaultPlane()
	for _, cr := range netsim.RandomCrashes(13, "overload", []string{
		"dp-1", "dp-2", "dp-3", "dp-4", "dp-5",
	}, 2, 30*time.Second, 90*time.Second, time.Minute, 2*time.Minute) {
		faults.CrashNode(cr.Node, epoch.Add(cr.From), epoch.Add(cr.Until))
	}
	down := make([]bool, nDP)
	applyFaults := func() {
		for i, dp := range dps {
			d := faults.Down(dp.Name(), clock.Now())
			switch {
			case d && !down[i]:
				dp.Crash()
				down[i] = true
			case !d && down[i]:
				if err := dp.Restart(); err != nil {
					t.Fatalf("restart %s: %v", dp.Name(), err)
				}
				dp.ResyncFromPeers()
				down[i] = false
			}
		}
	}

	digest := overloadChaosDigest{
		Breakers: make(map[string]string),
		Views:    make(map[string][]int),
	}
	jobSeq := 0
	scheduleWave := func() {
		handled := 0
		for _, c := range clients {
			jobSeq++
			id := fmt.Sprintf("job-%03d", jobSeq)
			dec := c.Schedule(&grid.Job{
				ID: grid.JobID(id), Owner: usla.MustParsePath("atlas"),
				CPUs: 1, Runtime: time.Hour, SubmitHost: c.cfg.Name,
			})
			if dec.Handled {
				handled++
			}
			digest.Decisions = append(digest.Decisions, chaosDecision{
				JobID: id, Site: dec.Site, Handled: dec.Handled, BoundTo: c.DPName(),
			})
		}
		digest.WaveHandled = append(digest.WaveHandled, handled)
	}
	exchangeAll := func() {
		for _, dp := range dps {
			dp.ExchangeNow()
		}
	}

	// Main run: 24 ten-second steps span the whole fault schedule (all
	// windows open after +30s and close by +210s). Each step applies the
	// plane's verdicts, schedules a wave, and exchanges every third step.
	for step := 0; step < 24; step++ {
		applyFaults()
		scheduleWave()
		if step%3 == 2 {
			exchangeAll()
		}
		clock.Advance(10 * time.Second)
	}
	applyFaults() // close any window still open at +240s
	for i, d := range down {
		if d {
			t.Fatalf("%s still down after the schedule's horizon", dps[i].Name())
		}
	}

	// Heal phase: wait out the breaker cooldown, send every client home
	// (the rebalance a monitor would perform), and run two final waves —
	// the first re-closes tripped breakers via half-open probes.
	clock.Advance(time.Minute)
	for i, c := range clients {
		c.Rebind(homes[i].Name, homes[i].Node, homes[i].Addr)
	}
	scheduleWave()
	clock.Advance(10 * time.Second)
	scheduleWave()
	exchangeAll()
	exchangeAll() // second round: healed brokers' records flood out

	digest.Throttled = metrics.Stats().Throttled
	for i, c := range clients {
		c.mu.Lock()
		br := c.breakerLocked(homes[i].Addr)
		c.mu.Unlock()
		digest.Breakers[c.cfg.Name] = br.State().String()
	}
	for _, dp := range dps {
		view := make([]int, len(siteNames))
		for si, s := range siteNames {
			view[si] = dp.Engine().EstFreeCPUs(s)
		}
		digest.Views[dp.Name()] = view
	}
	return digest
}

// TestOverloadChaosDeterministic is the combined acceptance for the
// overload plane under faults: with crash windows open, goodput degrades
// without retry amplification (the shared budget throttles correlated
// retries); after the windows close, goodput recovers to the pre-fault
// level and every tripped breaker re-closes; and the entire run — every
// decision, throttle, and view — replays bit-for-bit.
func TestOverloadChaosDeterministic(t *testing.T) {
	first := runOverloadChaosScenario(t)

	pre, during, post := first.WaveHandled[0], 0, 0
	for _, h := range first.WaveHandled[:3] {
		if h != 6 {
			t.Fatalf("pre-fault wave handled %d/6, want all (waves %v)", h, first.WaveHandled)
		}
	}
	for _, h := range first.WaveHandled[3:24] {
		if h < during || during == 0 {
			during = h
		}
	}
	last := first.WaveHandled[len(first.WaveHandled)-1]
	post = last
	if during >= 6 {
		t.Fatalf("no wave degraded during the fault windows: %v", first.WaveHandled)
	}
	if post < pre {
		t.Fatalf("post-heal wave handled %d, want back to pre-fault %d", post, pre)
	}
	if first.Throttled < 1 {
		t.Fatalf("shared retry budget never throttled (throttled=%d)", first.Throttled)
	}
	for client, state := range first.Breakers {
		if state != "closed" {
			t.Fatalf("%s home breaker ended %q, want closed (breakers %v)", client, state, first.Breakers)
		}
	}

	second := runOverloadChaosScenario(t)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("overload chaos runs diverged:\n first %+v\nsecond %+v", first, second)
	}
}
