package digruber

import "fmt"

// DisseminationStrategy selects what decision points exchange (paper
// Section 3.5 lists the three approaches).
type DisseminationStrategy int

// Dissemination strategies.
const (
	// UsageOnly exchanges only utilization information (dispatches);
	// USLAs are static local knowledge. This is the strategy the paper's
	// experiments use — "the simplified implementation by avoiding USLA
	// tracking".
	UsageOnly DisseminationStrategy = iota
	// UsageAndUSLAs exchanges both dispatches and USLA entries, so
	// runtime policy changes propagate between decision points.
	UsageAndUSLAs
	// NoExchange disables synchronization: each decision point relies
	// only on its own observations.
	NoExchange
	// Gossip replaces the full-mesh flood with peer-sampling push-pull
	// dissemination (internal/gossip): each round contacts a seeded
	// sample of fanout-k peers, exchanges version-vector digests, and
	// relays third-party records transitively. Per-point traffic tracks
	// the fanout instead of the fleet size, which is what lets the mesh
	// grow past the paper's 10 decision points.
	Gossip
)

// String names the strategy.
func (s DisseminationStrategy) String() string {
	switch s {
	case UsageOnly:
		return "usage-only"
	case UsageAndUSLAs:
		return "usage-and-uslas"
	case NoExchange:
		return "no-exchange"
	case Gossip:
		return "gossip"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}
