package digruber

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"digruber/internal/netsim"
	"digruber/internal/trace"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

// runTracedScenario executes a fixed traced workload — two decision
// points, three scheduled jobs, one exchange round — under a Manual
// clock and returns every span record it produced.
func runTracedScenario(t *testing.T, seed int64) []trace.Record {
	t.Helper()
	clock := vtime.NewManual(epoch)
	mem := wire.NewMem()
	col := trace.NewCollector(0)
	tracerFor := func(actor string) *trace.Tracer {
		return trace.New(trace.Config{Actor: actor, Seed: seed, Clock: clock, Collector: col})
	}

	var dps []*DecisionPoint
	for i := 0; i < 2; i++ {
		dp, err := New(Config{
			Name:             fmt.Sprintf("dp-%d", i),
			Addr:             fmt.Sprintf("dp-%d", i),
			Transport:        mem,
			Clock:            clock,
			Profile:          wire.Instant(),
			ExchangeInterval: time.Hour,
			Tracer:           tracerFor(fmt.Sprintf("dp-%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		dp.Engine().UpdateSites(testStatuses(50, 80), clock.Now())
		dps = append(dps, dp)
	}
	for _, dp := range dps {
		for _, peer := range dps {
			if peer != dp {
				dp.AddPeer(peer.Name(), peer.Name(), peer.Addr())
			}
		}
		if err := dp.Start(); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, dp := range dps {
			dp.Stop()
		}
	}()

	c, err := NewClient(ClientConfig{
		Name: "client-0", DPName: dps[0].Name(), DPNode: dps[0].Name(),
		DPAddr: dps[0].Addr(), Transport: mem, Clock: clock,
		Timeout: 5 * time.Second,
		RNG:     netsim.Stream(seed, "test.client-0"),
		Tracer:  tracerFor("client-0"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Requests run one at a time: with a single request in flight the
	// span completion order — and therefore the ID draw order — is fixed.
	for i := 0; i < 3; i++ {
		dec := c.Schedule(testJob(fmt.Sprintf("job-%d", i)))
		if dec.Err != nil || !dec.Handled {
			t.Fatalf("job-%d: %+v", i, dec)
		}
		if dec.TraceID == 0 {
			t.Fatalf("job-%d decision carries no trace ID", i)
		}
		clock.Advance(time.Second)
	}
	// The healthy Instant-profile mesh never blocks on virtual time, so
	// the round runs synchronously with the clock frozen. driveExchange
	// (which advances the clock on a real-time cadence) would race its
	// Advance calls against the in-flight RPCs and make the exchange
	// spans' virtual durations depend on wall-clock scheduling.
	dps[0].ExchangeNow()
	return col.Records()
}

// TestTracedRunIsDeterministic is the tentpole guarantee: the same seed
// under a Manual clock yields an identical span tree — IDs, parents,
// virtual timestamps, durations, everything.
func TestTracedRunIsDeterministic(t *testing.T) {
	a := runTracedScenario(t, 42)
	b := runTracedScenario(t, 42)
	if len(a) == 0 {
		t.Fatal("traced run produced no spans")
	}
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if i < len(b) && a[i] != b[i] {
				t.Errorf("first divergence at record %d:\n run1 %+v\n run2 %+v", i, a[i], b[i])
				break
			}
		}
		t.Fatalf("same seed produced different traces (%d vs %d records)", len(a), len(b))
	}
	c := runTracedScenario(t, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestTracedRequestSpansCoverThePath asserts one scheduled job's trace
// contains the full instrumented path, phases telescoping to the root.
func TestTracedRequestSpansCoverThePath(t *testing.T) {
	records := runTracedScenario(t, 7)
	trees := trace.FilterRoots(trace.BuildTrees(records), trace.PhaseSchedule)
	if len(trees) != 3 {
		t.Fatalf("got %d request trees, want 3", len(trees))
	}
	for _, tree := range trees {
		excl, residual := tree.Exclusive()
		if residual != 0 {
			t.Errorf("request %s: residual %v, want exact telescoping", tree.Root.Note, residual)
		}
		for _, phase := range []string{
			trace.PhaseQuery, trace.PhaseSelect, trace.PhaseReport,
			trace.PhaseAttempt, trace.PhaseHandle, trace.PhaseEngineSelect,
		} {
			if _, ok := excl[phase]; !ok {
				t.Errorf("request %s: phase %s missing (have %v)", tree.Root.Note, phase, excl)
			}
		}
	}
	// The exchange round must be traced too, with the per-peer call.
	rounds := trace.FilterRoots(trace.BuildTrees(records), trace.PhaseMeshRound)
	if len(rounds) != 1 {
		t.Fatalf("got %d mesh rounds, want 1", len(rounds))
	}
	foundPeer := false
	for _, child := range rounds[0].Root.Children {
		if child.Name == trace.PhaseMeshExchange && child.Note == "dp-1" {
			foundPeer = true
		}
	}
	if !foundPeer {
		t.Errorf("mesh round lacks a mesh.exchange child for dp-1: %+v", rounds[0].Root.Children)
	}
}

// TestStatusSurfacesConnLost: a client that times out and hangs up
// leaves the container's wasted work visible in the broker status.
func TestStatusSurfacesConnLost(t *testing.T) {
	clock := vtime.NewReal()
	mem := wire.NewMem()
	dp, err := New(Config{
		Name: "dp-cl", Addr: "dp-cl", Transport: mem, Clock: clock,
		Profile:          wire.StackProfile{Name: "slow", BaseOverhead: 300 * time.Millisecond, MaxConcurrent: 1},
		ExchangeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	dp.Engine().UpdateSites(testStatuses(50), clock.Now())
	if err := dp.Start(); err != nil {
		t.Fatal(err)
	}
	defer dp.Stop()

	c, err := NewClient(ClientConfig{
		Name: "client-0", DPName: dp.Name(), DPNode: dp.Name(),
		DPAddr: dp.Addr(), Transport: mem, Clock: clock,
		Timeout:       50 * time.Millisecond,
		FallbackSites: []string{"fb"},
		RNG:           netsim.Stream(1, "t"),
	})
	if err != nil {
		t.Fatal(err)
	}
	dec := c.Schedule(testJob("j-lost"))
	if dec.Handled {
		t.Fatalf("decision handled despite 300ms container vs 50ms timeout: %+v", dec)
	}
	c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for dp.Status().ConnLost == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ConnLost never surfaced in status: %+v", dp.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := dp.Status()
	if st.ConnLost < 1 || st.Shed != 0 {
		t.Fatalf("status failure classes = %+v, want ConnLost>=1, Shed=0", st)
	}
}
