package digruber

import (
	"sync"
	"time"

	"digruber/internal/vtime"
	"digruber/internal/wire"
)

// SaturationConfig tunes the per-decision-point saturation detector of
// Section 5: "use performance models created by DiPerF to establish an
// upper bound on the number of transactions that a decision point can
// handle per time interval".
type SaturationConfig struct {
	// CapacityRate is the DiPerF-calibrated sustainable request rate in
	// req/s. 0 means self-calibrate from observed service times
	// (workers / mean service time).
	CapacityRate float64
	// Window is the sliding window over which the arrival rate is
	// measured.
	Window time.Duration
	// QueueThreshold declares saturation whenever this many requests are
	// waiting for a worker, regardless of rates. 0 means 3× the
	// container's worker count.
	QueueThreshold int
	// Workers is the container's parallelism, used for defaults and
	// self-calibration.
	Workers int
}

func (c *SaturationConfig) setDefaults() {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueThreshold <= 0 {
		c.QueueThreshold = 3 * c.Workers
	}
}

// SaturationDetector watches one decision point's request stream and
// decides when the point has reached its saturation state. Saturation
// events feed the third-party Overseer, which decides whether to deploy
// additional decision points.
type SaturationDetector struct {
	cfg   SaturationConfig
	clock vtime.Clock

	mu       sync.Mutex
	arrivals []time.Time // ring of arrival timestamps within Window
	events   int         // transitions into saturation
	wasSat   bool
}

// NewSaturationDetector returns a detector with the given config.
func NewSaturationDetector(cfg SaturationConfig, clock vtime.Clock) *SaturationDetector {
	cfg.setDefaults()
	return &SaturationDetector{cfg: cfg, clock: clock}
}

// ObserveArrival records one request arrival.
func (d *SaturationDetector) ObserveArrival() {
	now := d.clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.arrivals = append(d.arrivals, now)
	d.pruneLocked(now)
}

func (d *SaturationDetector) pruneLocked(now time.Time) {
	cut := now.Add(-d.cfg.Window)
	i := 0
	for i < len(d.arrivals) && d.arrivals[i].Before(cut) {
		i++
	}
	if i > 0 {
		d.arrivals = append(d.arrivals[:0], d.arrivals[i:]...)
	}
}

// ObservedRate reports the arrival rate over the sliding window, req/s.
func (d *SaturationDetector) ObservedRate() float64 {
	now := d.clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pruneLocked(now)
	return float64(len(d.arrivals)) / d.cfg.Window.Seconds()
}

// Assess combines the arrival rate with the service stack's state and
// returns (observed rate, capacity rate, saturated). A decision point is
// saturated when its accept queue has built past the threshold or its
// arrival rate exceeds the modeled capacity.
func (d *SaturationDetector) Assess(ss wire.Stats) (observed, capacity float64, saturated bool) {
	observed = d.ObservedRate()
	capacity = d.cfg.CapacityRate
	if capacity == 0 && ss.ServiceMean > 0 {
		capacity = float64(d.cfg.Workers) / ss.ServiceMean
	}
	saturated = ss.Queued >= d.cfg.QueueThreshold ||
		(capacity > 0 && observed > capacity)

	d.mu.Lock()
	if saturated && !d.wasSat {
		d.events++
	}
	d.wasSat = saturated
	d.mu.Unlock()
	return observed, capacity, saturated
}

// Events reports how many distinct saturation episodes have started.
func (d *SaturationDetector) Events() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.events
}
