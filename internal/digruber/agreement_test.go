package digruber

import (
	"testing"
	"time"

	"digruber/internal/usla"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

func agreementXML(t *testing.T, provider, consumer, goal string, expiry time.Time) []byte {
	t.Helper()
	a := &usla.Agreement{
		Name:    "negotiated",
		Context: usla.Context{Provider: provider, Consumer: consumer, Expiration: expiry},
		Terms:   []usla.GuaranteeTerm{{Name: "cpu", Resource: usla.CPU, Goal: goal}},
	}
	data, err := a.XML()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestProposeAgreementTakesEffect(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(100))
	cli := wire.NewClient(wire.ClientConfig{
		Node: "provider", ServerNode: "dp-0", Addr: h.dps[0].Addr(), Transport: h.mem, Clock: clock,
	})
	defer cli.Close()

	reply, err := wire.Call[ProposeArgs, ProposeReply](cli, MethodProposeAgreement,
		ProposeArgs{AgreementXML: agreementXML(t, "site-000", "atlas", "25+", time.Time{})}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.EntriesAdded != 1 {
		t.Fatalf("entries added = %d", reply.EntriesAdded)
	}
	// The engine now enforces the cap on queries.
	loads := h.dps[0].Engine().SiteLoads(usla.MustParsePath("atlas"), 1)
	if loads[0].Headroom != 25 {
		t.Fatalf("headroom = %v, want 25 (25%% of 100)", loads[0].Headroom)
	}
}

func TestProposeExpiredAgreementIsNoop(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(100))
	cli := wire.NewClient(wire.ClientConfig{
		Node: "p", ServerNode: "dp-0", Addr: h.dps[0].Addr(), Transport: h.mem, Clock: clock,
	})
	defer cli.Close()
	past := time.Now().Add(-time.Hour)
	reply, err := wire.Call[ProposeArgs, ProposeReply](cli, MethodProposeAgreement,
		ProposeArgs{AgreementXML: agreementXML(t, "site-000", "cms", "10+", past)}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.EntriesAdded != 0 {
		t.Fatal("expired agreement added entries")
	}
}

func TestProposeBadAgreementRejected(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(100))
	cli := wire.NewClient(wire.ClientConfig{
		Node: "p", ServerNode: "dp-0", Addr: h.dps[0].Addr(), Transport: h.mem, Clock: clock,
	})
	defer cli.Close()
	if _, err := wire.Call[ProposeArgs, ProposeReply](cli, MethodProposeAgreement,
		ProposeArgs{AgreementXML: []byte("<not valid")}, time.Second); err == nil {
		t.Fatal("malformed XML accepted")
	}
	if _, err := wire.Call[ProposeArgs, ProposeReply](cli, MethodProposeAgreement,
		ProposeArgs{AgreementXML: agreementXML(t, "site-000", "bad..consumer", "10+", time.Time{})}, time.Second); err == nil {
		t.Fatal("bad consumer accepted")
	}
}

func TestProposeConflictingAgreementWarns(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(100))
	cli := wire.NewClient(wire.ClientConfig{
		Node: "p", ServerNode: "dp-0", Addr: h.dps[0].Addr(), Transport: h.mem, Clock: clock,
	})
	defer cli.Close()
	// Lower limit above upper limit → validation warning, not rejection
	// (the entries are individually legal).
	wire.Call[ProposeArgs, ProposeReply](cli, MethodProposeAgreement,
		ProposeArgs{AgreementXML: agreementXML(t, "site-000", "ligo", "10+", time.Time{})}, time.Second)
	reply, err := wire.Call[ProposeArgs, ProposeReply](cli, MethodProposeAgreement,
		ProposeArgs{AgreementXML: agreementXML(t, "site-000", "ligo", "50-", time.Time{})}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Warnings) == 0 {
		t.Fatal("conflicting limits produced no warnings")
	}
}

func TestPublishedAgreementsRoundTrip(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarness(t, 1, clock, testStatuses(100))
	cli := wire.NewClient(wire.ClientConfig{
		Node: "consumer", ServerNode: "dp-0", Addr: h.dps[0].Addr(), Transport: h.mem, Clock: clock,
	})
	defer cli.Close()
	wire.Call[ProposeArgs, ProposeReply](cli, MethodProposeAgreement,
		ProposeArgs{AgreementXML: agreementXML(t, "site-000", "atlas", "40+", time.Time{})}, time.Second)
	wire.Call[ProposeArgs, ProposeReply](cli, MethodProposeAgreement,
		ProposeArgs{AgreementXML: agreementXML(t, "site-001", "cms", "30", time.Time{})}, time.Second)

	all, err := wire.Call[PublishedArgs, PublishedReply](cli, MethodPublishedAgreements, PublishedArgs{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.AgreementsXML) != 2 {
		t.Fatalf("published %d agreements, want 2", len(all.AgreementsXML))
	}
	// Consumers can parse what providers publish.
	a, err := usla.ParseAgreementXML(all.AgreementsXML[0])
	if err != nil {
		t.Fatal(err)
	}
	if a.Context.Provider == "" || len(a.Terms) == 0 {
		t.Fatalf("published agreement incomplete: %+v", a)
	}
	// Provider filter.
	one, err := wire.Call[PublishedArgs, PublishedReply](cli, MethodPublishedAgreements,
		PublishedArgs{Provider: "site-001"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.AgreementsXML) != 1 {
		t.Fatalf("filtered publish returned %d agreements", len(one.AgreementsXML))
	}
}

func TestProposedUSLADisseminatesToPeers(t *testing.T) {
	clock := vtime.NewReal()
	h := newHarnessStrategy(t, 2, clock, testStatuses(100), UsageAndUSLAs)
	cli := wire.NewClient(wire.ClientConfig{
		Node: "p", ServerNode: "dp-0", Addr: h.dps[0].Addr(), Transport: h.mem, Clock: clock,
	})
	defer cli.Close()
	if _, err := wire.Call[ProposeArgs, ProposeReply](cli, MethodProposeAgreement,
		ProposeArgs{AgreementXML: agreementXML(t, "site-000", "atlas", "15+", time.Time{})}, time.Second); err != nil {
		t.Fatal(err)
	}
	h.dps[0].ExchangeNow()
	l := h.dps[1].Engine().Policies().LimitsFor("site-000", usla.MustParsePath("atlas"), usla.CPU)
	if l.Upper != 15 {
		t.Fatalf("peer upper = %v, want 15 after dissemination", l.Upper)
	}
}
