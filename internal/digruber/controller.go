package digruber

import (
	"fmt"
	"sync"
	"time"

	"digruber/internal/tsdb"
	"digruber/internal/vtime"
)

// Controller is the elastic-fleet control loop — the full realization of
// the dynamic reconfiguration the paper's Section 5 designs and the
// grow-only Provisioner only half-implements. It watches the fleet's
// metrics plane (queue depth, shed/expired/throttle rates, view
// divergence), and:
//
//   - scales UP under sustained pressure: a factory-built decision point
//     is meshed with every fleet member (symmetric AddPeer fan-out),
//     bootstrapped via the Snapshot anti-entropy resync, and handed its
//     share of the client population;
//   - scales DOWN under sustained idleness: the newest member's clients
//     are rebound away, the member Drains (settle, verified final flush,
//     stop — see lifecycle.go), and on success every survivor tears the
//     link down with RemovePeer. A drain that aborts leaves the victim
//     serving and the fleet unchanged.
//
// Hysteresis (consecutive evaluations required) and per-direction
// cooldowns keep the loop from flapping: growth is cheap and reacts
// fast; shrinking pays a drain and waits for proof the load is gone.
type Controller struct {
	cfg      ControllerConfig
	overseer *Overseer
	clock    vtime.Clock
	reg      *tsdb.Registry

	scaleUps    *tsdb.Counter
	scaleDowns  *tsdb.Counter
	drainAborts *tsdb.Counter

	mu         sync.Mutex
	fleet      []*DecisionPoint
	clients    []*Client
	nextIdx    int
	highStreak int
	lowStreak  int
	nextUp     time.Time // earliest time the next scale-up may fire
	nextDown   time.Time
	ticker     vtime.Ticker
	done       chan struct{}
	running    bool
	deployLog  []time.Time
	retireLog  []time.Time
}

// ControllerConfig wires a Controller.
type ControllerConfig struct {
	Clock vtime.Clock
	// Factory creates and starts decision point number idx on demand
	// (same contract as the Provisioner's DPFactory).
	Factory DPFactory
	// Metrics is the fleet registry the controller reads its signals
	// from — the same one the decision points publish under dp/<name>/.
	// The registry must be sampled (tsdb.Sampler or manual Sample calls)
	// for the signals to exist.
	Metrics *tsdb.Registry
	// Interval is the evaluation period (default 1 minute).
	Interval time.Duration
	// MinDPs/MaxDPs bound the fleet (defaults 1 and 16).
	MinDPs int
	MaxDPs int
	// ScaleUpAfter/ScaleDownAfter are the hysteresis depths: how many
	// consecutive evaluations the pressure (resp. idle) signal must hold
	// before the controller acts. Defaults 2 and 5 — shrinking demands
	// longer proof because it pays a drain and risks thrash.
	ScaleUpAfter   int
	ScaleDownAfter int
	// UpCooldown/DownCooldown are per-direction refractory periods after
	// any scaling action (defaults 2×Interval and 5×Interval). Both
	// directions cool down after either action, so a scale-up's effect is
	// observed before a scale-down can undo it.
	UpCooldown   time.Duration
	DownCooldown time.Duration
	// DrainTimeout is the budget handed to the victim's Drain on
	// scale-down (default 2 minutes).
	DrainTimeout time.Duration
	// ThrottleSeries optionally names a cumulative series of client-side
	// retry throttles (e.g. the fleet ClientMetrics' throttled counter);
	// its window rate joins the pressure signal. Empty disables it.
	ThrottleSeries string
	// DemandSeries optionally names a cumulative series counting offered
	// requests (e.g. a workload driver's submission counter). Its window
	// rate divided by the serving fleet size joins the signals as
	// demand-per-member — the classic replica-autoscaling input for
	// loads that are measured at the source rather than inferred from
	// distress. Empty disables it.
	DemandSeries string
	// SLOFiring optionally reports how many per-VO SLO alerts are
	// currently firing (typically slo.Evaluator.FiringCount). Any firing
	// alert reads as pressure — the SLO plane has already applied its own
	// multi-window hysteresis, so by the time an alert fires the users'
	// error budget is burning faster than it accrues and waiting for
	// queue depth or sheds to confirm it only delays the remedy — and
	// vetoes idle for the same reason. Nil disables the signal.
	SLOFiring func() int
	// DivergenceSuffix names the per-DP view-divergence gauge as
	// dp/<name>/<suffix> (the exp harness registers "divergence").
	// When set together with Signals.DivergenceHigh, high divergence
	// vetoes scale-down: a fleet that has not converged its views is not
	// "idle enough" to lose a member. Empty disables the veto.
	DivergenceSuffix string
	// Signals holds the scaling thresholds.
	Signals SignalThresholds
}

// SignalThresholds are the levels at which the controller's tsdb signals
// read as pressure (scale up) or idleness (scale down).
type SignalThresholds struct {
	// QueueHigh: pressure when any serving member's smoothed queue depth
	// (wire/queue window mean) reaches this (default 8).
	QueueHigh float64
	// ShedRateHigh: pressure when the fleet-total shed+expired rate
	// (1/s, window) reaches this (default 0.5).
	ShedRateHigh float64
	// ThrottleRateHigh: pressure when the ThrottleSeries window rate
	// reaches this (default 0.5; only with ThrottleSeries set).
	ThrottleRateHigh float64
	// QueueLow: idle requires every member's smoothed queue depth at or
	// below this (default 1) and zero shed/expired/throttle rate.
	QueueLow float64
	// DivergenceHigh: with DivergenceSuffix set, any member's divergence
	// gauge at or above this vetoes idle (0 disables).
	DivergenceHigh float64
	// DemandHighPerDP/DemandLowPerDP: with DemandSeries set, the offered
	// rate per serving member (1/s) that reads as pressure (at or above
	// High) resp. permits idle (at or below Low). Zero disables the
	// respective side.
	DemandHighPerDP float64
	DemandLowPerDP  float64
	// Window is the trailing window the rate/mean signals read over
	// (default 4×Interval).
	Window time.Duration
}

// ControllerAction names what one Evaluate pass did.
type ControllerAction string

// Evaluate outcomes.
const (
	ActionNone       ControllerAction = ""
	ActionScaleUp    ControllerAction = "scale-up"
	ActionScaleDown  ControllerAction = "scale-down"
	ActionDrainAbort ControllerAction = "drain-abort"
)

func (cfg *ControllerConfig) setDefaults() error {
	if cfg.Clock == nil || cfg.Factory == nil {
		return fmt.Errorf("digruber: controller needs Clock and Factory")
	}
	if cfg.Metrics == nil {
		return fmt.Errorf("digruber: controller needs a Metrics registry to read signals from")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Minute
	}
	if cfg.MinDPs <= 0 {
		cfg.MinDPs = 1
	}
	if cfg.MaxDPs <= 0 {
		cfg.MaxDPs = 16
	}
	if cfg.MaxDPs < cfg.MinDPs {
		return fmt.Errorf("digruber: controller MaxDPs %d < MinDPs %d", cfg.MaxDPs, cfg.MinDPs)
	}
	if cfg.ScaleUpAfter <= 0 {
		cfg.ScaleUpAfter = 2
	}
	if cfg.ScaleDownAfter <= 0 {
		cfg.ScaleDownAfter = 5
	}
	if cfg.UpCooldown <= 0 {
		cfg.UpCooldown = 2 * cfg.Interval
	}
	if cfg.DownCooldown <= 0 {
		cfg.DownCooldown = 5 * cfg.Interval
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 2 * time.Minute
	}
	if cfg.Signals.QueueHigh <= 0 {
		cfg.Signals.QueueHigh = 8
	}
	if cfg.Signals.ShedRateHigh <= 0 {
		cfg.Signals.ShedRateHigh = 0.5
	}
	if cfg.Signals.ThrottleRateHigh <= 0 {
		cfg.Signals.ThrottleRateHigh = 0.5
	}
	if cfg.Signals.QueueLow <= 0 {
		cfg.Signals.QueueLow = 1
	}
	if cfg.Signals.Window <= 0 {
		cfg.Signals.Window = 4 * cfg.Interval
	}
	return nil
}

// NewController returns a controller over an initial fleet, which must
// already be started and meshed. The initial members are numbered 0..n-1
// for the factory's index sequence.
func NewController(cfg ControllerConfig, initial []*DecisionPoint) (*Controller, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if len(initial) == 0 {
		return nil, fmt.Errorf("digruber: controller needs at least one decision point")
	}
	c := &Controller{
		cfg:         cfg,
		overseer:    NewOverseer(cfg.Clock),
		clock:       cfg.Clock,
		reg:         cfg.Metrics,
		scaleUps:    cfg.Metrics.Counter("fleet/scale_ups"),
		scaleDowns:  cfg.Metrics.Counter("fleet/scale_downs"),
		drainAborts: cfg.Metrics.Counter("fleet/drain_aborts"),
		fleet:       append([]*DecisionPoint(nil), initial...),
		nextIdx:     len(initial),
	}
	for _, dp := range c.fleet {
		c.overseer.Attach(dp.Name(), dp.Status)
	}
	cfg.Metrics.GaugeFunc("fleet/size", func(now time.Time) float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.fleet))
	})
	return c, nil
}

// Overseer exposes the controller's monitoring service.
func (c *Controller) Overseer() *Overseer { return c.overseer }

// Fleet returns the current serving decision points.
func (c *Controller) Fleet() []*DecisionPoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*DecisionPoint(nil), c.fleet...)
}

// Deployments returns when each dynamically-added point went live;
// Retirements when each drained point finished stopping.
func (c *Controller) Deployments() []time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Time(nil), c.deployLog...)
}

// Retirements returns the completion times of successful scale-downs.
func (c *Controller) Retirements() []time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Time(nil), c.retireLog...)
}

// ManageClients registers the client population the controller
// rebalances across the fleet as it grows and shrinks.
func (c *Controller) ManageClients(clients []*Client) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clients = append([]*Client(nil), clients...)
}

// Start begins the periodic evaluation loop.
func (c *Controller) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return
	}
	c.running = true
	c.done = make(chan struct{})
	c.ticker = c.clock.NewTicker(c.cfg.Interval)
	go c.loop(c.ticker, c.done)
}

func (c *Controller) loop(ticker vtime.Ticker, done chan struct{}) {
	for {
		select {
		case <-ticker.C():
			c.Evaluate()
		case <-done:
			return
		}
	}
}

// Stop ends the evaluation loop (the fleet keeps running).
func (c *Controller) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.running {
		return
	}
	c.running = false
	c.ticker.Stop()
	close(c.done)
}

// signals is one evaluation's view of the fleet's load, for logging and
// tests.
type signals struct {
	MaxQueue     float64 // largest per-member smoothed queue depth
	ShedRate     float64 // fleet-total shed+expired rate, 1/s
	ThrottleRate float64 // client retry-throttle rate, 1/s
	DemandPerDP  float64 // offered request rate per serving member, 1/s
	Divergence   float64 // largest per-member view divergence
	SLOAlerts    int     // per-VO SLO alerts currently firing
	Pressure     bool
	Idle         bool
}

// assess reads the fleet's signals from the metrics plane. Pressure and
// idleness are deliberately not complements: between them lies the
// steady state, where streaks reset and nothing happens.
func (c *Controller) assess(now time.Time) signals {
	fleet := c.Fleet()
	th := c.cfg.Signals
	var s signals
	for _, dp := range fleet {
		p := dp.metricsPrefix()
		if q := c.reg.WindowMean(p+"wire/queue", now, th.Window); q > s.MaxQueue {
			s.MaxQueue = q
		}
		s.ShedRate += c.reg.WindowRate(p+"wire/shed", now, th.Window) +
			c.reg.WindowRate(p+"wire/expired", now, th.Window)
		if c.cfg.DivergenceSuffix != "" {
			if v, ok := c.reg.Latest(p + c.cfg.DivergenceSuffix); ok && v.V > s.Divergence {
				s.Divergence = v.V
			}
		}
	}
	if c.cfg.ThrottleSeries != "" {
		s.ThrottleRate = c.reg.WindowRate(c.cfg.ThrottleSeries, now, th.Window)
	}
	if c.cfg.DemandSeries != "" && len(fleet) > 0 {
		s.DemandPerDP = c.reg.WindowRate(c.cfg.DemandSeries, now, th.Window) / float64(len(fleet))
	}
	if c.cfg.SLOFiring != nil {
		s.SLOAlerts = c.cfg.SLOFiring()
	}
	s.Pressure = s.MaxQueue >= th.QueueHigh ||
		s.ShedRate >= th.ShedRateHigh ||
		s.SLOAlerts > 0 ||
		(c.cfg.ThrottleSeries != "" && s.ThrottleRate >= th.ThrottleRateHigh) ||
		(c.cfg.DemandSeries != "" && th.DemandHighPerDP > 0 && s.DemandPerDP >= th.DemandHighPerDP)
	s.Idle = s.MaxQueue <= th.QueueLow && s.ShedRate == 0 && s.ThrottleRate == 0 &&
		s.SLOAlerts == 0 &&
		(c.cfg.DemandSeries == "" || th.DemandLowPerDP <= 0 || s.DemandPerDP <= th.DemandLowPerDP)
	if th.DivergenceHigh > 0 && s.Divergence >= th.DivergenceHigh {
		// A diverged fleet is not idle enough to shrink: losing a member
		// while views disagree would only slow convergence further.
		s.Idle = false
	}
	return s
}

// Evaluate performs one control pass: read the signals, update the
// hysteresis streaks, and scale when a streak and its cooldown both
// allow. It returns what it did; scale errors (factory failure, drain
// abort) come back alongside ActionNone/ActionDrainAbort with the fleet
// left in a serving state either way.
func (c *Controller) Evaluate() (ControllerAction, error) {
	now := c.clock.Now()
	s := c.assess(now)

	c.mu.Lock()
	switch {
	case s.Pressure:
		c.highStreak++
		c.lowStreak = 0
	case s.Idle:
		c.lowStreak++
		c.highStreak = 0
	default:
		c.highStreak = 0
		c.lowStreak = 0
	}
	wantUp := c.highStreak >= c.cfg.ScaleUpAfter && !now.Before(c.nextUp) && len(c.fleet) < c.cfg.MaxDPs
	wantDown := !wantUp && c.lowStreak >= c.cfg.ScaleDownAfter && !now.Before(c.nextDown) && len(c.fleet) > c.cfg.MinDPs
	c.mu.Unlock()

	switch {
	case wantUp:
		if _, err := c.scaleUp(now); err != nil {
			return ActionNone, err
		}
		return ActionScaleUp, nil
	case wantDown:
		if err := c.scaleDown(now); err != nil {
			return ActionDrainAbort, err
		}
		return ActionScaleDown, nil
	}
	return ActionNone, nil
}

// scaleUp deploys one decision point: build, mesh symmetrically with
// every member, bootstrap its view from a peer snapshot, and rebalance
// clients over the grown fleet.
func (c *Controller) scaleUp(now time.Time) (*DecisionPoint, error) {
	c.mu.Lock()
	idx := c.nextIdx
	c.nextIdx++
	c.mu.Unlock()

	dp, err := c.cfg.Factory(idx)
	if err != nil {
		return nil, fmt.Errorf("digruber: deploying decision point %d: %w", idx, err)
	}

	c.mu.Lock()
	for _, existing := range c.fleet {
		existing.AddPeer(dp.Name(), dp.cfg.Node, dp.Addr())
		dp.AddPeer(existing.Name(), existing.cfg.Node, existing.Addr())
	}
	c.fleet = append(c.fleet, dp)
	c.deployLog = append(c.deployLog, now)
	c.overseer.Attach(dp.Name(), dp.Status)
	c.resetStreaksLocked(now)
	c.mu.Unlock()

	// Anti-entropy bootstrap: pull a full snapshot from the first peer
	// that answers, so the newcomer schedules on a converged view from
	// its first request instead of drifting in over exchange rounds.
	dp.ResyncFromPeers()
	c.scaleUps.Inc()
	c.rebalance()
	return dp, nil
}

// scaleDown retires the newest member through the graceful drain
// protocol. LIFO victim choice is deterministic and keeps the original
// (usually operator-placed) members for last.
func (c *Controller) scaleDown(now time.Time) error {
	c.mu.Lock()
	if len(c.fleet) <= c.cfg.MinDPs {
		c.mu.Unlock()
		return nil
	}
	victim := c.fleet[len(c.fleet)-1]
	c.mu.Unlock()

	// Move the victim's clients off first: Drain refuses new work, and a
	// client that never sends to the victim cannot race the final flush.
	c.rebalanceExcluding(victim)

	if err := victim.Drain(c.cfg.DrainTimeout); err != nil {
		// Abort path: the victim went back to serving. Return it to the
		// rotation and let a later evaluation try again.
		c.drainAborts.Inc()
		c.mu.Lock()
		c.resetStreaksLocked(now)
		c.mu.Unlock()
		c.rebalance()
		return err
	}

	c.mu.Lock()
	for i, dp := range c.fleet {
		if dp == victim {
			c.fleet = append(c.fleet[:i], c.fleet[i+1:]...)
			break
		}
	}
	survivors := append([]*DecisionPoint(nil), c.fleet...)
	c.retireLog = append(c.retireLog, c.clock.Now())
	c.resetStreaksLocked(now)
	c.mu.Unlock()

	c.overseer.Detach(victim.Name())
	// Symmetric teardown: the departed name must not linger as a dead
	// peer eating probe rounds and pinning every survivor's local log.
	for _, s := range survivors {
		s.RemovePeer(victim.Name())
	}
	c.scaleDowns.Inc()
	c.rebalance()
	return nil
}

// resetStreaksLocked clears both hysteresis streaks and arms both
// cooldowns — called after every scaling action (and after a drain
// abort) so consecutive actions need fresh evidence. Caller holds c.mu.
func (c *Controller) resetStreaksLocked(now time.Time) {
	c.highStreak = 0
	c.lowStreak = 0
	c.nextUp = now.Add(c.cfg.UpCooldown)
	c.nextDown = now.Add(c.cfg.DownCooldown)
}

// rebalance spreads the managed clients round-robin over the fleet.
func (c *Controller) rebalance() {
	c.rebalanceExcluding(nil)
}

// rebalanceExcluding is rebalance with one member (the scale-down
// victim) left out of the rotation.
func (c *Controller) rebalanceExcluding(skip *DecisionPoint) {
	c.mu.Lock()
	targets := make([]*DecisionPoint, 0, len(c.fleet))
	for _, dp := range c.fleet {
		if dp != skip {
			targets = append(targets, dp)
		}
	}
	clients := append([]*Client(nil), c.clients...)
	c.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	for i, cl := range clients {
		t := targets[i%len(targets)]
		cl.Rebind(t.Name(), t.cfg.Node, t.Addr())
	}
}
