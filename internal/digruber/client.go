package digruber

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"digruber/internal/grid"
	"digruber/internal/gruber"
	"digruber/internal/netsim"
	"digruber/internal/trace"
	"digruber/internal/tsdb"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

// ClientConfig wires one submission host's GRUBER client.
type ClientConfig struct {
	// Name is the submission host identity (job SubmitHost).
	Name string
	// Node is the emulated network node the host runs on.
	Node string
	// DPName, DPNode and DPAddr identify the statically-assigned
	// decision point (the paper binds each client to one, chosen
	// randomly at startup).
	DPName string
	DPNode string
	DPAddr string

	Transport wire.Transport
	Network   *netsim.Network
	Clock     vtime.Clock

	// Timeout is the per-request deadline after which the client falls
	// back to random site selection without considering USLAs.
	Timeout time.Duration
	// Selector ranks the decision point's answers (default USLAAware).
	Selector gruber.Selector
	// FallbackSites is the static site list used for random fallback;
	// every submission host knows the grid's membership.
	FallbackSites []string
	// RNG drives the fallback selection (netsim.Stream provides one);
	// nil gets a deterministic per-client stream.
	RNG randSource
	// SingleCall switches to the one-round-trip coupling the paper's
	// conclusion proposes: the decision point runs site selection itself
	// and records the dispatch, so no site state crosses the WAN and no
	// separate report is needed.
	SingleCall bool
	// Failover optionally lists alternate decision points. After
	// FailoverThreshold consecutive failed interactions with the bound
	// point the client rebinds to the next entry (cycling, skipping the
	// current binding) — a cheaper first resort than staying bound to a
	// dead broker and paying a timeout plus random fallback per job.
	Failover []DPRef
	// FailoverThreshold is the consecutive-failure count that triggers a
	// failover rebind (default 3 when Failover is non-empty).
	FailoverThreshold int
	// Tracer, when non-nil, opens a client.schedule root span per job and
	// threads its context through every RPC, so the whole request path —
	// retries, WAN transits, server queueing, engine work — lands in one
	// trace. Nil disables tracing at zero cost.
	Tracer *trace.Tracer
	// WireMetrics, when non-nil, aggregates this client's RPC outcomes
	// (attempts, retries, failure classes). Shared across a fleet of
	// submission hosts it gives one set of fleet-wide counters; it also
	// survives failover rebinds, which build fresh wire clients.
	WireMetrics *wire.ClientMetrics
	// Retry is the per-call retry policy applied to every wire client
	// this client builds (including the fresh ones failover rebinds
	// create). The zero value disables retries. Give the policy a shared
	// Budget to cap fleet-wide retry amplification under saturation.
	Retry wire.RetryPolicy
	// PropagateDeadline stamps each RPC's absolute deadline into the
	// request envelope, so a drowning decision point can drop the call
	// unprocessed at dequeue once answering is already pointless.
	PropagateDeadline bool
	// Breaker enables a circuit breaker per decision-point address when
	// Breaker.Threshold > 0 (the zero config disables breaking). The
	// breaker trips on consecutive transport-level failures, fails calls
	// locally while open — the fallback path answers instantly instead
	// of paying a timeout per job against a dead broker — and re-closes
	// via a half-open probe. Breaker.Clock defaults to the client Clock.
	Breaker wire.BreakerConfig
	// LoadAwareFailover makes a failover rebind probe the candidates'
	// Status and bind to the least-loaded one (queued + in-flight),
	// skipping candidates whose breakers are open, instead of blindly
	// walking the Failover ring. Falls back to ring order when no probe
	// answers.
	LoadAwareFailover bool
	// Latency, when non-nil, selects the histogram each completed
	// scheduling operation's response time is observed into — typically a
	// per-VO latency histogram keyed off the job's owner, feeding the SLO
	// plane. Traced operations attach their trace ID as a bucket exemplar
	// (see tsdb.Histogram.ObserveTrace), so a latency spike resolves to
	// the exact span tree that caused it. Returning nil skips the job.
	Latency func(j *grid.Job) *tsdb.Histogram
}

// DPRef names one decision point a client can bind to.
type DPRef struct {
	Name string
	Node string
	Addr string
}

// randSource is the slice-index randomness the client needs; *rand.Rand
// satisfies it.
type randSource interface {
	Intn(n int) int
}

// Decision describes how one job got its site.
type Decision struct {
	JobID string
	Site  string
	// Handled reports whether the decision point answered in time (the
	// paper's handled-by-GRUBER vs not-handled split).
	Handled bool
	// Response is the scheduling operation's total response time as the
	// client experienced it.
	Response time.Duration
	// Err carries the failure when no site could be chosen at all.
	Err error
	// At is when the decision completed.
	At time.Time
	// TraceID identifies the request's trace when the client is traced
	// (zero otherwise) — the join key between DiPerF's per-operation
	// records and the span tree.
	TraceID uint64
}

// Client is the submission-host side of DI-GRUBER: query the assigned
// decision point, run the site selector, report the dispatch, and fall
// back to USLA-blind random selection on timeout.
type Client struct {
	cfg      ClientConfig
	selector gruber.Selector
	clock    vtime.Clock

	mu     sync.Mutex
	rpc    *wire.Client
	closed bool
	// retiring maps connections replaced by Rebind, still draining
	// in-flight calls, to the channel that cancels their deferred close.
	retiring map[*wire.Client]chan struct{}
	// consecFails counts consecutive failed decision-point interactions;
	// failoverIdx walks the Failover ring.
	consecFails int
	failoverIdx int
	// breakers holds one circuit breaker per decision-point address.
	// Keyed by address rather than hung off the wire client so breaker
	// state survives rebinds: a client that failed away and later
	// returns to a recovered point resumes at that point's half-open
	// probe, not a blank closed breaker. Nil until the first use; empty
	// forever when ClientConfig.Breaker is disabled.
	breakers map[string]*wire.Breaker
}

// conn returns the current RPC client (it changes on Rebind).
func (c *Client) conn() *wire.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rpc
}

// connAndBreaker returns the current RPC client together with the
// breaker guarding the current binding, consistently under one lock so
// a concurrent Rebind cannot pair one binding's connection with
// another's breaker.
func (c *Client) connAndBreaker() (*wire.Client, *wire.Breaker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rpc, c.breakerLocked(c.cfg.DPAddr)
}

// breakerLocked returns (lazily creating) the breaker for addr, or nil
// when breaking is disabled. Caller holds c.mu.
func (c *Client) breakerLocked(addr string) *wire.Breaker {
	if c.cfg.Breaker.Threshold <= 0 {
		return nil
	}
	if b := c.breakers[addr]; b != nil {
		return b
	}
	bc := c.cfg.Breaker
	if bc.Clock == nil {
		bc.Clock = c.cfg.Clock
	}
	b := wire.NewBreaker(bc)
	if c.breakers == nil {
		c.breakers = make(map[string]*wire.Breaker)
	}
	c.breakers[addr] = b
	return b
}

// newWireClient builds the RPC client for one decision-point binding,
// carrying the retry policy, deadline propagation and shared metrics.
// Used at construction and by every failover/provisioner rebind.
func (c *Client) newWireClient(serverNode, addr string) *wire.Client {
	return wire.NewClient(wire.ClientConfig{
		Node:              c.cfg.Node,
		ServerNode:        serverNode,
		Addr:              addr,
		Transport:         c.cfg.Transport,
		Network:           c.cfg.Network,
		Clock:             c.cfg.Clock,
		Tracer:            c.cfg.Tracer,
		Metrics:           c.cfg.WireMetrics,
		Retry:             c.cfg.Retry,
		PropagateDeadline: c.cfg.PropagateDeadline,
	})
}

// errBreakerOpen is the locally-synthesized failure for a call the
// circuit breaker rejected without touching the wire. It wraps
// ErrOverloaded so failover accounting classifies it as the overload it
// stands in for; it must never be fed back into Breaker.Record (the
// breaker only eats real wire outcomes).
var errBreakerOpen = fmt.Errorf("digruber: circuit breaker open: %w", wire.ErrOverloaded)

// NewClient builds a client from its config.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Name == "" || cfg.DPAddr == "" {
		return nil, fmt.Errorf("digruber: client needs Name and DPAddr")
	}
	if cfg.Transport == nil || cfg.Clock == nil {
		return nil, fmt.Errorf("digruber: client %s needs Transport and Clock", cfg.Name)
	}
	if cfg.Node == "" {
		cfg.Node = cfg.Name
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.RNG == nil {
		cfg.RNG = netsim.Stream(1, "digruber.client/"+cfg.Name)
	}
	sel := cfg.Selector
	if sel == nil {
		sel = gruber.USLAAware{}
	}
	c := &Client{
		cfg:      cfg,
		selector: sel,
		clock:    cfg.Clock,
	}
	c.rpc = c.newWireClient(cfg.DPNode, cfg.DPAddr)
	return c, nil
}

// DPName returns the currently-assigned decision point's name.
func (c *Client) DPName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.DPName
}

// Schedule runs the full scheduling interaction for one job and returns
// the decision. It never blocks longer than roughly the configured
// timeout: on expiry the fallback picks a random site immediately.
func (c *Client) Schedule(j *grid.Job) Decision {
	start := c.clock.Now()
	dec := Decision{JobID: string(j.ID)}

	// The root span opens at the same instant the response-time clock
	// starts and closes with the same Now() that stamps the decision, so
	// its duration is exactly dec.Response.
	root := c.cfg.Tracer.StartTraceAt(trace.PhaseSchedule, start)
	root.SetNote(string(j.ID))
	dec.TraceID = root.Context().Trace

	if c.cfg.SingleCall {
		return c.scheduleSingleCall(j, start, dec, root)
	}

	queryOnce := func(timeout time.Duration) (QueryReply, *wire.Client, *wire.Breaker, error) {
		rpc, br := c.connAndBreaker()
		qs := c.cfg.Tracer.StartSpan(root.Context(), trace.PhaseQuery)
		defer qs.End()
		if !br.Allow() {
			// Open breaker: fail locally and fall back immediately, instead
			// of spending a timeout against a destination known to be down
			// or drowning. Still counts toward failover.
			return QueryReply{}, rpc, br, errBreakerOpen
		}
		reply, err := wire.CallCtx[QueryArgs, QueryReply](rpc, qs.Context(), MethodQuery,
			QueryArgs{Owner: j.Owner.String(), CPUs: j.CPUs}, timeout)
		br.Record(err)
		return reply, rpc, br, err
	}
	reply, rpc, br, err := queryOnce(c.cfg.Timeout)
	if errors.Is(err, wire.ErrDraining) && c.failoverNow() {
		// The bound point is retiring. Nothing was processed, so the
		// query is safe to re-issue — once, against the new binding, on
		// the remaining budget — instead of burning this job on random
		// fallback while healthy peers sit idle.
		reply, rpc, br, err = queryOnce(c.remaining(start))
	}
	c.noteOutcome(err)
	if err != nil {
		// Graceful degradation: random site, no USLAs, not handled.
		fs := c.cfg.Tracer.StartSpan(root.Context(), trace.PhaseFallback)
		dec.Site, dec.Err = c.fallback()
		fs.End()
		dec.Handled = false
		return c.finish(j, dec, start, root)
	}

	sel := c.cfg.Tracer.StartSpan(root.Context(), trace.PhaseSelect)
	site, ok := c.selector.Select(reply.Loads, j.CPUs)
	if !ok {
		// The decision point answered but no site qualifies under USLAs;
		// degrade to random among the reported sites (still counts as
		// handled — the broker's information was used).
		site, ok = pickAnyFree(reply.Loads, j.CPUs, c.cfg.RNG)
	}
	sel.End()
	if !ok {
		fs := c.cfg.Tracer.StartSpan(root.Context(), trace.PhaseFallback)
		dec.Site, dec.Err = c.fallback()
		fs.End()
		dec.Handled = true
		return c.finish(j, dec, start, root)
	}

	// Second round trip: inform the decision point of the selection so
	// its view (and, via exchange, its peers') reflects the dispatch.
	report := ReportArgs{Dispatch: gruber.Dispatch{
		JobID:   string(j.ID),
		Site:    site,
		Owner:   j.Owner.String(),
		CPUs:    j.CPUs,
		Runtime: j.Runtime,
		At:      c.clock.Now(),
	}}
	rs := c.cfg.Tracer.StartSpan(root.Context(), trace.PhaseReport)
	_, err = wire.CallCtx[ReportArgs, ReportReply](rpc, rs.Context(), MethodReport, report, c.remaining(start))
	rs.End()
	br.Record(err)
	if err != nil {
		// The selection stands; only the bookkeeping was lost.
		dec.Handled = false
	} else {
		dec.Handled = true
	}
	dec.Site = site
	return c.finish(j, dec, start, root)
}

// scheduleSingleCall is the one-round-trip coupling: the decision point
// selects and records in a single interaction.
func (c *Client) scheduleSingleCall(j *grid.Job, start time.Time, dec Decision, root *trace.Span) Decision {
	callOnce := func(timeout time.Duration) (ScheduleReply, error) {
		rpc, br := c.connAndBreaker()
		qs := c.cfg.Tracer.StartSpan(root.Context(), trace.PhaseQuery)
		defer qs.End()
		if !br.Allow() {
			return ScheduleReply{}, errBreakerOpen
		}
		reply, err := wire.CallCtx[ScheduleArgs, ScheduleReply](rpc, qs.Context(), MethodSchedule, ScheduleArgs{
			JobID:   string(j.ID),
			Owner:   j.Owner.String(),
			CPUs:    j.CPUs,
			Runtime: j.Runtime,
		}, timeout)
		br.Record(err)
		return reply, err
	}
	reply, err := callOnce(c.cfg.Timeout)
	if errors.Is(err, wire.ErrDraining) && c.failoverNow() {
		// Retiring point: re-issue once on the new binding (see Schedule).
		reply, err = callOnce(c.remaining(start))
	}
	c.noteOutcome(err)
	switch {
	case err != nil:
		fs := c.cfg.Tracer.StartSpan(root.Context(), trace.PhaseFallback)
		dec.Site, dec.Err = c.fallback()
		fs.End()
		dec.Handled = false
	case !reply.OK:
		// The broker answered but nothing qualified; degrade to random.
		fs := c.cfg.Tracer.StartSpan(root.Context(), trace.PhaseFallback)
		dec.Site, dec.Err = c.fallback()
		fs.End()
		dec.Handled = true
	default:
		dec.Site = reply.Site
		dec.Handled = true
	}
	return c.finish(j, dec, start, root)
}

// finish stamps the decision and closes the root span with one shared
// clock read, keeping dec.Response and the root span duration equal. It
// also feeds the Latency hook: the observed response time carries the
// decision's trace ID as a histogram exemplar, linking the metrics
// plane's worst samples back to their span trees.
func (c *Client) finish(j *grid.Job, dec Decision, start time.Time, root *trace.Span) Decision {
	now := c.clock.Now()
	dec.Response = now.Sub(start)
	dec.At = now
	root.EndAt(now)
	if c.cfg.Latency != nil {
		c.cfg.Latency(j).ObserveTrace(dec.Response.Seconds(), dec.TraceID, now)
	}
	return dec
}

// remaining computes the budget left for the report call, with a small
// floor so a slow query doesn't zero it out entirely.
func (c *Client) remaining(start time.Time) time.Duration {
	rem := c.cfg.Timeout - c.clock.Since(start)
	if min := c.cfg.Timeout / 10; rem < min {
		rem = min
	}
	return rem
}

func (c *Client) fallback() (string, error) {
	if len(c.cfg.FallbackSites) == 0 {
		return "", fmt.Errorf("digruber: client %s has no fallback sites", c.cfg.Name)
	}
	return c.cfg.FallbackSites[c.cfg.RNG.Intn(len(c.cfg.FallbackSites))], nil
}

func pickAnyFree(loads []gruber.SiteLoad, cpus int, rng randSource) (string, bool) {
	free := make([]string, 0, len(loads))
	for _, l := range loads {
		if l.EstFreeCPUs >= cpus {
			free = append(free, l.Name)
		}
	}
	if len(free) == 0 {
		return "", false
	}
	return free[rng.Intn(len(free))], true
}

// Rebind switches the client to a different decision point — used by
// the Provisioner when it rebalances load after deploying a new point,
// and by the failover logic when the bound point looks dead. In-flight
// calls on the old connection run to completion; subsequent Schedule
// calls go to the new point. Rebinding a closed client is a no-op: Close
// is terminal.
func (c *Client) Rebind(dpName, dpNode, addr string) {
	c.mu.Lock()
	if c.closed || (c.cfg.DPAddr == addr && c.cfg.DPName == dpName) {
		c.mu.Unlock()
		return
	}
	old := c.rpc
	c.cfg.DPName = dpName
	c.cfg.DPNode = dpNode
	c.cfg.DPAddr = addr
	c.consecFails = 0
	c.rpc = c.newWireClient(dpNode, addr)
	// Close the old connection in the background once its in-flight
	// calls have had a chance to finish — unless Close arrives first, in
	// which case the stop channel fires and the close happens right away
	// instead of a sleeper goroutine outliving the client.
	stop := make(chan struct{})
	if c.retiring == nil {
		c.retiring = make(map[*wire.Client]chan struct{})
	}
	c.retiring[old] = stop
	grace := c.cfg.Timeout
	c.mu.Unlock()
	go func() {
		select {
		case <-c.clock.After(grace):
		case <-stop:
		}
		old.Close()
		c.mu.Lock()
		delete(c.retiring, old)
		c.mu.Unlock()
	}()
}

// noteOutcome updates failover accounting after one interaction with the
// bound decision point. On the configured number of consecutive failures
// it rebinds to the next Failover entry that differs from the current
// binding; random per-job fallback still covers the requests in between.
// With LoadAwareFailover set the ring choice is only the default: the
// client Status-probes every distinct candidate and rebinds to the
// least-loaded live one instead.
func (c *Client) noteOutcome(err error) {
	c.mu.Lock()
	if err == nil {
		c.consecFails = 0
		c.mu.Unlock()
		return
	}
	c.consecFails++
	threshold := c.cfg.FailoverThreshold
	if threshold <= 0 {
		threshold = 3
	}
	if len(c.cfg.Failover) == 0 || c.consecFails < threshold {
		c.mu.Unlock()
		return
	}
	next, candidates, found := c.pickFailoverLocked()
	c.mu.Unlock()
	if !found {
		return
	}
	c.rebindFailover(next, candidates)
}

// pickFailoverLocked chooses where a failover rebind should go. Caller
// holds c.mu.
//
// Ring order, exactly as before load awareness existed: advance
// failoverIdx past the chosen entry so successive failovers cycle. The
// candidates slice (load-aware mode only) holds the distinct non-current
// entries in list order for the Status probe; the window is capped:
// failover happens while the client is already failing jobs, and probing
// a long chain serially against a saturated fleet would cost up to a
// probe timeout per entry.
func (c *Client) pickFailoverLocked() (next DPRef, candidates []DPRef, found bool) {
	for i := 0; i < len(c.cfg.Failover); i++ {
		ref := c.cfg.Failover[c.failoverIdx%len(c.cfg.Failover)]
		c.failoverIdx++
		if ref.Addr != c.cfg.DPAddr || ref.Name != c.cfg.DPName {
			next, found = ref, true
			break
		}
	}
	if found && c.cfg.LoadAwareFailover {
		seen := make(map[DPRef]bool, len(c.cfg.Failover))
		for _, ref := range c.cfg.Failover {
			if (ref.Addr != c.cfg.DPAddr || ref.Name != c.cfg.DPName) && !seen[ref] {
				seen[ref] = true
				candidates = append(candidates, ref)
				if len(candidates) == maxLoadProbes {
					break
				}
			}
		}
	}
	return next, candidates, found
}

// rebindFailover completes a failover: load-probe the candidates when
// there is a real choice, then rebind.
func (c *Client) rebindFailover(next DPRef, candidates []DPRef) {
	if len(candidates) > 1 {
		if best, ok := c.leastLoaded(candidates); ok {
			next = best
		}
	}
	c.Rebind(next.Name, next.Node, next.Addr)
}

// failoverNow rebinds away from the current decision point immediately,
// bypassing the consecutive-failure threshold — the reaction to a
// draining refusal, where waiting for more failures would only collect
// more refusals from a point that already said it is leaving. Reports
// whether a rebind target existed.
func (c *Client) failoverNow() bool {
	c.mu.Lock()
	if c.closed || len(c.cfg.Failover) == 0 {
		c.mu.Unlock()
		return false
	}
	next, candidates, found := c.pickFailoverLocked()
	c.mu.Unlock()
	if !found {
		return false
	}
	c.rebindFailover(next, candidates)
	return true
}

// maxLoadProbes bounds how many failover candidates a load-aware rebind
// will Status-probe, keeping the worst case (every probe timing out) a
// small multiple of probeTimeout even with a long failover chain.
const maxLoadProbes = 4

// probeTimeout bounds one load probe; failover is the moment the client
// is already failing jobs, so probes stay much cheaper than a full
// request timeout.
func (c *Client) probeTimeout() time.Duration {
	if t := c.cfg.Timeout / 4; t > 0 {
		return t
	}
	return time.Second
}

// leastLoaded Status-probes the failover candidates and returns the one
// with the smallest queued + in-flight backlog. Candidates whose
// breakers are open are skipped without a probe (known bad); candidates
// that do not answer are skipped and their breaker fed the failure.
// Ties keep the earliest candidate in list order, so the choice is
// deterministic. ok is false when nothing answered — the caller then
// keeps the ring-order choice.
func (c *Client) leastLoaded(candidates []DPRef) (best DPRef, ok bool) {
	var bestLoad int64
	for _, ref := range candidates {
		c.mu.Lock()
		br := c.breakerLocked(ref.Addr)
		c.mu.Unlock()
		if br.State() == wire.BreakerOpen {
			continue
		}
		// A short-lived bare connection: no retries (a dead candidate
		// should cost one fast failure) and no fleet metrics (probes are
		// control-plane traffic, not scheduling calls).
		probe := wire.NewClient(wire.ClientConfig{
			Node:       c.cfg.Node,
			ServerNode: ref.Node,
			Addr:       ref.Addr,
			Transport:  c.cfg.Transport,
			Network:    c.cfg.Network,
			Clock:      c.cfg.Clock,
		})
		st, err := wire.Call[StatusArgs, StatusReply](probe, MethodStatus, StatusArgs{}, c.probeTimeout())
		probe.Close()
		if err != nil {
			br.Record(err)
			continue
		}
		if st.State == StateDraining {
			// Retiring: it would refuse the very work we are moving. Not a
			// breaker-worthy failure — the point is healthy, just leaving.
			continue
		}
		load := int64(st.Queued) + st.InFlight
		if !ok || load < bestLoad {
			best, bestLoad, ok = ref, load, true
		}
	}
	return best, ok
}

// Close releases the client's connections (the live one and any still
// draining after a Rebind). Close is terminal and idempotent.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	rpc := c.rpc
	stops := make([]chan struct{}, 0, len(c.retiring))
	//lint:allow mapiter -- teardown: every stop channel is closed; close order is immaterial
	for _, stop := range c.retiring {
		stops = append(stops, stop)
	}
	c.mu.Unlock()
	for _, stop := range stops {
		close(stop)
	}
	rpc.Close()
}
