package digruber

import (
	"fmt"
	"sync"
	"time"

	"digruber/internal/grid"
	"digruber/internal/gruber"
	"digruber/internal/netsim"
	"digruber/internal/trace"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

// ClientConfig wires one submission host's GRUBER client.
type ClientConfig struct {
	// Name is the submission host identity (job SubmitHost).
	Name string
	// Node is the emulated network node the host runs on.
	Node string
	// DPName, DPNode and DPAddr identify the statically-assigned
	// decision point (the paper binds each client to one, chosen
	// randomly at startup).
	DPName string
	DPNode string
	DPAddr string

	Transport wire.Transport
	Network   *netsim.Network
	Clock     vtime.Clock

	// Timeout is the per-request deadline after which the client falls
	// back to random site selection without considering USLAs.
	Timeout time.Duration
	// Selector ranks the decision point's answers (default USLAAware).
	Selector gruber.Selector
	// FallbackSites is the static site list used for random fallback;
	// every submission host knows the grid's membership.
	FallbackSites []string
	// RNG drives the fallback selection (netsim.Stream provides one);
	// nil gets a deterministic per-client stream.
	RNG randSource
	// SingleCall switches to the one-round-trip coupling the paper's
	// conclusion proposes: the decision point runs site selection itself
	// and records the dispatch, so no site state crosses the WAN and no
	// separate report is needed.
	SingleCall bool
	// Failover optionally lists alternate decision points. After
	// FailoverThreshold consecutive failed interactions with the bound
	// point the client rebinds to the next entry (cycling, skipping the
	// current binding) — a cheaper first resort than staying bound to a
	// dead broker and paying a timeout plus random fallback per job.
	Failover []DPRef
	// FailoverThreshold is the consecutive-failure count that triggers a
	// failover rebind (default 3 when Failover is non-empty).
	FailoverThreshold int
	// Tracer, when non-nil, opens a client.schedule root span per job and
	// threads its context through every RPC, so the whole request path —
	// retries, WAN transits, server queueing, engine work — lands in one
	// trace. Nil disables tracing at zero cost.
	Tracer *trace.Tracer
	// WireMetrics, when non-nil, aggregates this client's RPC outcomes
	// (attempts, retries, failure classes). Shared across a fleet of
	// submission hosts it gives one set of fleet-wide counters; it also
	// survives failover rebinds, which build fresh wire clients.
	WireMetrics *wire.ClientMetrics
}

// DPRef names one decision point a client can bind to.
type DPRef struct {
	Name string
	Node string
	Addr string
}

// randSource is the slice-index randomness the client needs; *rand.Rand
// satisfies it.
type randSource interface {
	Intn(n int) int
}

// Decision describes how one job got its site.
type Decision struct {
	JobID string
	Site  string
	// Handled reports whether the decision point answered in time (the
	// paper's handled-by-GRUBER vs not-handled split).
	Handled bool
	// Response is the scheduling operation's total response time as the
	// client experienced it.
	Response time.Duration
	// Err carries the failure when no site could be chosen at all.
	Err error
	// At is when the decision completed.
	At time.Time
	// TraceID identifies the request's trace when the client is traced
	// (zero otherwise) — the join key between DiPerF's per-operation
	// records and the span tree.
	TraceID uint64
}

// Client is the submission-host side of DI-GRUBER: query the assigned
// decision point, run the site selector, report the dispatch, and fall
// back to USLA-blind random selection on timeout.
type Client struct {
	cfg      ClientConfig
	selector gruber.Selector
	clock    vtime.Clock

	mu     sync.Mutex
	rpc    *wire.Client
	closed bool
	// retiring maps connections replaced by Rebind, still draining
	// in-flight calls, to the channel that cancels their deferred close.
	retiring map[*wire.Client]chan struct{}
	// consecFails counts consecutive failed decision-point interactions;
	// failoverIdx walks the Failover ring.
	consecFails int
	failoverIdx int
}

// conn returns the current RPC client (it changes on Rebind).
func (c *Client) conn() *wire.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rpc
}

// NewClient builds a client from its config.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Name == "" || cfg.DPAddr == "" {
		return nil, fmt.Errorf("digruber: client needs Name and DPAddr")
	}
	if cfg.Transport == nil || cfg.Clock == nil {
		return nil, fmt.Errorf("digruber: client %s needs Transport and Clock", cfg.Name)
	}
	if cfg.Node == "" {
		cfg.Node = cfg.Name
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.RNG == nil {
		cfg.RNG = netsim.Stream(1, "digruber.client/"+cfg.Name)
	}
	sel := cfg.Selector
	if sel == nil {
		sel = gruber.USLAAware{}
	}
	return &Client{
		cfg: cfg,
		rpc: wire.NewClient(wire.ClientConfig{
			Node:       cfg.Node,
			ServerNode: cfg.DPNode,
			Addr:       cfg.DPAddr,
			Transport:  cfg.Transport,
			Network:    cfg.Network,
			Clock:      cfg.Clock,
			Tracer:     cfg.Tracer,
			Metrics:    cfg.WireMetrics,
		}),
		selector: sel,
		clock:    cfg.Clock,
	}, nil
}

// DPName returns the currently-assigned decision point's name.
func (c *Client) DPName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.DPName
}

// Schedule runs the full scheduling interaction for one job and returns
// the decision. It never blocks longer than roughly the configured
// timeout: on expiry the fallback picks a random site immediately.
func (c *Client) Schedule(j *grid.Job) Decision {
	start := c.clock.Now()
	dec := Decision{JobID: string(j.ID)}

	// The root span opens at the same instant the response-time clock
	// starts and closes with the same Now() that stamps the decision, so
	// its duration is exactly dec.Response.
	root := c.cfg.Tracer.StartTraceAt(trace.PhaseSchedule, start)
	root.SetNote(string(j.ID))
	dec.TraceID = root.Context().Trace

	if c.cfg.SingleCall {
		return c.scheduleSingleCall(j, start, dec, root)
	}

	rpc := c.conn()
	qs := c.cfg.Tracer.StartSpan(root.Context(), trace.PhaseQuery)
	reply, err := wire.CallCtx[QueryArgs, QueryReply](rpc, qs.Context(), MethodQuery,
		QueryArgs{Owner: j.Owner.String(), CPUs: j.CPUs}, c.cfg.Timeout)
	qs.End()
	c.noteOutcome(err)
	if err != nil {
		// Graceful degradation: random site, no USLAs, not handled.
		fs := c.cfg.Tracer.StartSpan(root.Context(), trace.PhaseFallback)
		dec.Site, dec.Err = c.fallback()
		fs.End()
		dec.Handled = false
		return c.finish(dec, start, root)
	}

	sel := c.cfg.Tracer.StartSpan(root.Context(), trace.PhaseSelect)
	site, ok := c.selector.Select(reply.Loads, j.CPUs)
	if !ok {
		// The decision point answered but no site qualifies under USLAs;
		// degrade to random among the reported sites (still counts as
		// handled — the broker's information was used).
		site, ok = pickAnyFree(reply.Loads, j.CPUs, c.cfg.RNG)
	}
	sel.End()
	if !ok {
		fs := c.cfg.Tracer.StartSpan(root.Context(), trace.PhaseFallback)
		dec.Site, dec.Err = c.fallback()
		fs.End()
		dec.Handled = true
		return c.finish(dec, start, root)
	}

	// Second round trip: inform the decision point of the selection so
	// its view (and, via exchange, its peers') reflects the dispatch.
	report := ReportArgs{Dispatch: gruber.Dispatch{
		JobID:   string(j.ID),
		Site:    site,
		Owner:   j.Owner.String(),
		CPUs:    j.CPUs,
		Runtime: j.Runtime,
		At:      c.clock.Now(),
	}}
	rs := c.cfg.Tracer.StartSpan(root.Context(), trace.PhaseReport)
	_, err = wire.CallCtx[ReportArgs, ReportReply](rpc, rs.Context(), MethodReport, report, c.remaining(start))
	rs.End()
	if err != nil {
		// The selection stands; only the bookkeeping was lost.
		dec.Handled = false
	} else {
		dec.Handled = true
	}
	dec.Site = site
	return c.finish(dec, start, root)
}

// scheduleSingleCall is the one-round-trip coupling: the decision point
// selects and records in a single interaction.
func (c *Client) scheduleSingleCall(j *grid.Job, start time.Time, dec Decision, root *trace.Span) Decision {
	qs := c.cfg.Tracer.StartSpan(root.Context(), trace.PhaseQuery)
	reply, err := wire.CallCtx[ScheduleArgs, ScheduleReply](c.conn(), qs.Context(), MethodSchedule, ScheduleArgs{
		JobID:   string(j.ID),
		Owner:   j.Owner.String(),
		CPUs:    j.CPUs,
		Runtime: j.Runtime,
	}, c.cfg.Timeout)
	qs.End()
	c.noteOutcome(err)
	switch {
	case err != nil:
		fs := c.cfg.Tracer.StartSpan(root.Context(), trace.PhaseFallback)
		dec.Site, dec.Err = c.fallback()
		fs.End()
		dec.Handled = false
	case !reply.OK:
		// The broker answered but nothing qualified; degrade to random.
		fs := c.cfg.Tracer.StartSpan(root.Context(), trace.PhaseFallback)
		dec.Site, dec.Err = c.fallback()
		fs.End()
		dec.Handled = true
	default:
		dec.Site = reply.Site
		dec.Handled = true
	}
	return c.finish(dec, start, root)
}

// finish stamps the decision and closes the root span with one shared
// clock read, keeping dec.Response and the root span duration equal.
func (c *Client) finish(dec Decision, start time.Time, root *trace.Span) Decision {
	now := c.clock.Now()
	dec.Response = now.Sub(start)
	dec.At = now
	root.EndAt(now)
	return dec
}

// remaining computes the budget left for the report call, with a small
// floor so a slow query doesn't zero it out entirely.
func (c *Client) remaining(start time.Time) time.Duration {
	rem := c.cfg.Timeout - c.clock.Since(start)
	if min := c.cfg.Timeout / 10; rem < min {
		rem = min
	}
	return rem
}

func (c *Client) fallback() (string, error) {
	if len(c.cfg.FallbackSites) == 0 {
		return "", fmt.Errorf("digruber: client %s has no fallback sites", c.cfg.Name)
	}
	return c.cfg.FallbackSites[c.cfg.RNG.Intn(len(c.cfg.FallbackSites))], nil
}

func pickAnyFree(loads []gruber.SiteLoad, cpus int, rng randSource) (string, bool) {
	free := make([]string, 0, len(loads))
	for _, l := range loads {
		if l.EstFreeCPUs >= cpus {
			free = append(free, l.Name)
		}
	}
	if len(free) == 0 {
		return "", false
	}
	return free[rng.Intn(len(free))], true
}

// Rebind switches the client to a different decision point — used by
// the Provisioner when it rebalances load after deploying a new point,
// and by the failover logic when the bound point looks dead. In-flight
// calls on the old connection run to completion; subsequent Schedule
// calls go to the new point. Rebinding a closed client is a no-op: Close
// is terminal.
func (c *Client) Rebind(dpName, dpNode, addr string) {
	c.mu.Lock()
	if c.closed || (c.cfg.DPAddr == addr && c.cfg.DPName == dpName) {
		c.mu.Unlock()
		return
	}
	old := c.rpc
	c.cfg.DPName = dpName
	c.cfg.DPNode = dpNode
	c.cfg.DPAddr = addr
	c.consecFails = 0
	c.rpc = wire.NewClient(wire.ClientConfig{
		Node:       c.cfg.Node,
		ServerNode: dpNode,
		Addr:       addr,
		Transport:  c.cfg.Transport,
		Network:    c.cfg.Network,
		Clock:      c.cfg.Clock,
		Tracer:     c.cfg.Tracer,
		Metrics:    c.cfg.WireMetrics,
	})
	// Close the old connection in the background once its in-flight
	// calls have had a chance to finish — unless Close arrives first, in
	// which case the stop channel fires and the close happens right away
	// instead of a sleeper goroutine outliving the client.
	stop := make(chan struct{})
	if c.retiring == nil {
		c.retiring = make(map[*wire.Client]chan struct{})
	}
	c.retiring[old] = stop
	grace := c.cfg.Timeout
	c.mu.Unlock()
	go func() {
		select {
		case <-c.clock.After(grace):
		case <-stop:
		}
		old.Close()
		c.mu.Lock()
		delete(c.retiring, old)
		c.mu.Unlock()
	}()
}

// noteOutcome updates failover accounting after one interaction with the
// bound decision point. On the configured number of consecutive failures
// it rebinds to the next Failover entry that differs from the current
// binding; random per-job fallback still covers the requests in between.
func (c *Client) noteOutcome(err error) {
	c.mu.Lock()
	if err == nil {
		c.consecFails = 0
		c.mu.Unlock()
		return
	}
	c.consecFails++
	threshold := c.cfg.FailoverThreshold
	if threshold <= 0 {
		threshold = 3
	}
	if len(c.cfg.Failover) == 0 || c.consecFails < threshold {
		c.mu.Unlock()
		return
	}
	var next DPRef
	found := false
	for i := 0; i < len(c.cfg.Failover); i++ {
		ref := c.cfg.Failover[c.failoverIdx%len(c.cfg.Failover)]
		c.failoverIdx++
		if ref.Addr != c.cfg.DPAddr || ref.Name != c.cfg.DPName {
			next, found = ref, true
			break
		}
	}
	c.mu.Unlock()
	if found {
		c.Rebind(next.Name, next.Node, next.Addr)
	}
}

// Close releases the client's connections (the live one and any still
// draining after a Rebind). Close is terminal and idempotent.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	rpc := c.rpc
	stops := make([]chan struct{}, 0, len(c.retiring))
	for _, stop := range c.retiring {
		stops = append(stops, stop)
	}
	c.mu.Unlock()
	for _, stop := range stops {
		close(stop)
	}
	rpc.Close()
}
