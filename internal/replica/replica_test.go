package replica

import (
	"fmt"
	"sync"
	"testing"
)

func TestRegisterLookup(t *testing.T) {
	c := NewCatalog()
	if err := c.Register("lfn://atlas/run1.dat", PFN{Site: "site-a", Path: "/data/run1", Size: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("lfn://atlas/run1.dat", PFN{Site: "site-b", Path: "/d/run1", Size: 100}); err != nil {
		t.Fatal(err)
	}
	copies := c.Lookup("lfn://atlas/run1.dat")
	if len(copies) != 2 {
		t.Fatalf("copies = %d, want 2", len(copies))
	}
	if c.Lookup("missing") != nil {
		t.Fatal("lookup of unknown LFN should be nil")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestRegisterValidation(t *testing.T) {
	c := NewCatalog()
	if err := c.Register("", PFN{Site: "s"}); err == nil {
		t.Fatal("empty LFN accepted")
	}
	if err := c.Register("x", PFN{}); err == nil {
		t.Fatal("empty site accepted")
	}
}

func TestRegisterIdempotentUpdates(t *testing.T) {
	c := NewCatalog()
	c.Register("f", PFN{Site: "s", Path: "/p", Size: 1})
	c.Register("f", PFN{Site: "s", Path: "/p", Size: 999})
	copies := c.Lookup("f")
	if len(copies) != 1 || copies[0].Size != 999 {
		t.Fatalf("copies = %+v", copies)
	}
}

func TestNearestPrefersLocal(t *testing.T) {
	c := NewCatalog()
	c.Register("f", PFN{Site: "zeta", Path: "/1"})
	c.Register("f", PFN{Site: "alpha", Path: "/2"})
	if p, ok := c.Nearest("f", "zeta"); !ok || p.Site != "zeta" {
		t.Fatalf("nearest = %+v", p)
	}
	// Remote lookup is deterministic (lexicographic).
	if p, _ := c.Nearest("f", "elsewhere"); p.Site != "alpha" {
		t.Fatalf("remote nearest = %+v", p)
	}
	if _, ok := c.Nearest("missing", "x"); ok {
		t.Fatal("nearest of unknown LFN")
	}
}

func TestUnregister(t *testing.T) {
	c := NewCatalog()
	c.Register("f", PFN{Site: "a"})
	c.Register("f", PFN{Site: "b"})
	if !c.Unregister("f", "a") {
		t.Fatal("unregister existing failed")
	}
	if c.Unregister("f", "a") {
		t.Fatal("double unregister succeeded")
	}
	if !c.Unregister("f", "b") {
		t.Fatal("unregister last copy failed")
	}
	if c.Len() != 0 {
		t.Fatal("catalog not empty after removing all copies")
	}
}

func TestPopularity(t *testing.T) {
	c := NewCatalog()
	for i := 0; i < 3; i++ {
		c.Touch("hot")
	}
	c.Touch("warm")
	if c.Popularity("hot") != 3 || c.Popularity("warm") != 1 || c.Popularity("cold") != 0 {
		t.Fatal("popularity counts wrong")
	}
	top := c.MostPopular(5)
	if len(top) != 2 || top[0] != "hot" || top[1] != "warm" {
		t.Fatalf("top = %v", top)
	}
	if got := c.MostPopular(1); len(got) != 1 || got[0] != "hot" {
		t.Fatalf("top1 = %v", got)
	}
}

func TestCatalogConcurrency(t *testing.T) {
	c := NewCatalog()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				lfn := fmt.Sprintf("f%d", i%10)
				c.Register(lfn, PFN{Site: fmt.Sprintf("s%d", g), Path: "/p"})
				c.Lookup(lfn)
				c.Touch(lfn)
				c.Nearest(lfn, "s0")
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 10 {
		t.Fatalf("len = %d, want 10", c.Len())
	}
	if c.Popularity("f0") != 80 {
		t.Fatalf("popularity = %d, want 80", c.Popularity("f0"))
	}
}
