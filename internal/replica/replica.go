// Package replica implements the replica location service Euryale's
// prescripts and postscripts talk to: a registry mapping logical file
// names (LFNs) to the physical copies (PFNs) at sites, plus the file
// popularity counter the postscript updates. It stands in for the Globus
// RLS used on Grid3.
package replica

import (
	"fmt"
	"sort"
	"sync"
)

// PFN locates one physical copy of a file.
type PFN struct {
	// Site holds the copy.
	Site string
	// Path is the site-local path.
	Path string
	// Size in bytes, used to cost transfers.
	Size int64
}

// Catalog is an in-memory replica location service, safe for concurrent
// use.
type Catalog struct {
	mu         sync.RWMutex
	replicas   map[string][]PFN // LFN → copies
	popularity map[string]int   // LFN → access count
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		replicas:   make(map[string][]PFN),
		popularity: make(map[string]int),
	}
}

// Register records a physical copy of lfn. Registering the same
// (site, path) again updates the size rather than duplicating.
func (c *Catalog) Register(lfn string, pfn PFN) error {
	if lfn == "" {
		return fmt.Errorf("replica: empty LFN")
	}
	if pfn.Site == "" {
		return fmt.Errorf("replica: LFN %q: empty site", lfn)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, existing := range c.replicas[lfn] {
		if existing.Site == pfn.Site && existing.Path == pfn.Path {
			c.replicas[lfn][i] = pfn
			return nil
		}
	}
	c.replicas[lfn] = append(c.replicas[lfn], pfn)
	return nil
}

// Lookup returns all known copies of lfn (nil if unknown).
func (c *Catalog) Lookup(lfn string) []PFN {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]PFN(nil), c.replicas[lfn]...)
}

// Nearest returns the copy at the given site if one exists, else any
// copy, preferring deterministic (sorted) order. ok is false if the LFN
// is unknown.
func (c *Catalog) Nearest(lfn, site string) (PFN, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	copies := c.replicas[lfn]
	if len(copies) == 0 {
		return PFN{}, false
	}
	for _, p := range copies {
		if p.Site == site {
			return p, true
		}
	}
	best := copies[0]
	for _, p := range copies[1:] {
		if p.Site < best.Site {
			best = p
		}
	}
	return best, true
}

// Unregister removes the copy of lfn at site; it reports whether a copy
// was removed.
func (c *Catalog) Unregister(lfn, site string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	copies := c.replicas[lfn]
	for i, p := range copies {
		if p.Site == site {
			c.replicas[lfn] = append(copies[:i], copies[i+1:]...)
			if len(c.replicas[lfn]) == 0 {
				delete(c.replicas, lfn)
			}
			return true
		}
	}
	return false
}

// Touch increments lfn's popularity (the Euryale postscript's "updates
// file popularity" step) and returns the new count.
func (c *Catalog) Touch(lfn string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.popularity[lfn]++
	return c.popularity[lfn]
}

// Popularity returns lfn's access count.
func (c *Catalog) Popularity(lfn string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.popularity[lfn]
}

// MostPopular returns up to n LFNs by descending popularity (ties by
// name), for replica-placement extensions.
func (c *Catalog) MostPopular(n int) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	type entry struct {
		lfn   string
		count int
	}
	entries := make([]entry, 0, len(c.popularity))
	for lfn, count := range c.popularity {
		entries = append(entries, entry{lfn, count})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].count != entries[j].count {
			return entries[i].count > entries[j].count
		}
		return entries[i].lfn < entries[j].lfn
	})
	if n > len(entries) {
		n = len(entries)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = entries[i].lfn
	}
	return out
}

// Len reports the number of distinct LFNs.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.replicas)
}
