package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)

func TestCollectorTable(t *testing.T) {
	c := NewCollector()
	// Two handled jobs (accurate, quick queues) and one fallback job
	// (inaccurate, long queue).
	c.RecordScheduled("h1", epoch, 2*time.Second, true, 0.9)
	c.RecordOutcome("h1", 10*time.Second, 100*time.Second, false)
	c.RecordScheduled("h2", epoch, 4*time.Second, true, 0.7)
	c.RecordOutcome("h2", 20*time.Second, 200*time.Second, false)
	c.RecordScheduled("f1", epoch, 30*time.Second, false, 0.1)
	c.RecordOutcome("f1", 60*time.Second, 50*time.Second, false)

	table := c.BuildTable(10, 100*time.Second) // 1000 cpu-s available
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	handled, notHandled, all := table.Rows[0], table.Rows[1], table.Rows[2]

	if handled.NumRequests != 2 || notHandled.NumRequests != 1 || all.NumRequests != 3 {
		t.Fatalf("request counts wrong: %+v", table.Rows)
	}
	if handled.PctOfRequests < 66 || handled.PctOfRequests > 67 {
		t.Fatalf("handled pct = %v", handled.PctOfRequests)
	}
	if handled.MeanQTime != 15*time.Second {
		t.Fatalf("handled QTime = %v", handled.MeanQTime)
	}
	if handled.NormQTime != 15*time.Second {
		t.Fatalf("handled NormQTime = %v", handled.NormQTime)
	}
	if got := handled.Util; got < 0.299 || got > 0.301 {
		t.Fatalf("handled util = %v, want 0.3", got)
	}
	if got := handled.Accuracy; got < 0.799 || got > 0.801 {
		t.Fatalf("handled accuracy = %v, want 0.8", got)
	}
	if notHandled.Accuracy > 0.2 {
		t.Fatalf("not-handled accuracy = %v", notHandled.Accuracy)
	}
	if all.Util < 0.349 || all.Util > 0.351 {
		t.Fatalf("all util = %v, want 0.35", all.Util)
	}
	// The handled class must beat the fallback class on the paper's
	// axes: accuracy and queue time.
	if !(handled.Accuracy > notHandled.Accuracy && handled.MeanQTime < notHandled.MeanQTime) {
		t.Fatal("handled class does not dominate not-handled class")
	}
}

func TestTableStringRendering(t *testing.T) {
	c := NewCollector()
	c.RecordScheduled("a", epoch, time.Second, true, 0.5)
	c.RecordOutcome("a", time.Second, time.Minute, false)
	out := c.BuildTable(10, time.Minute).String()
	for _, want := range []string{"handled", "not-handled", "all", "QTime", "Accuracy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestOutOfOrderRecording(t *testing.T) {
	c := NewCollector()
	// Outcome can land before the scheduling record (async watchers).
	c.RecordOutcome("x", 5*time.Second, time.Minute, false)
	c.RecordScheduled("x", epoch, time.Second, true, 1.0)
	recs := c.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.QTime != 5*time.Second || !r.Handled || r.Accuracy != 1.0 {
		t.Fatalf("merged record = %+v", r)
	}
}

func TestFailedJobsCountInQTime(t *testing.T) {
	c := NewCollector()
	c.RecordScheduled("f", epoch, time.Second, true, 0.5)
	c.RecordOutcome("f", 30*time.Second, 0, true)
	row := c.BuildTable(10, time.Minute).Rows[0]
	if row.MeanQTime != 30*time.Second {
		t.Fatalf("failed job's QTime ignored: %v", row.MeanQTime)
	}
	if row.Util != 0 {
		t.Fatalf("failed job contributed utilization: %v", row.Util)
	}
}

func TestResponseSummaryAndAccuracyMean(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 4; i++ {
		handled := i%2 == 0
		c.RecordScheduled(fmt.Sprintf("j%d", i), epoch, time.Duration(i)*time.Second, handled, float64(i)/10)
	}
	s := c.ResponseSummary()
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	yes, no := true, false
	near := func(a, b float64) bool { return a > b-1e-9 && a < b+1e-9 }
	if got := c.AccuracyMean(&yes); !near(got, 0.3) { // jobs 2,4 → (0.2+0.4)/2
		t.Fatalf("handled accuracy mean = %v", got)
	}
	if got := c.AccuracyMean(&no); !near(got, 0.2) { // jobs 1,3
		t.Fatalf("unhandled accuracy mean = %v", got)
	}
	if got := c.AccuracyMean(nil); !near(got, 0.25) {
		t.Fatalf("overall accuracy mean = %v", got)
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector()
	table := c.BuildTable(10, time.Minute)
	for _, r := range table.Rows {
		if r.NumRequests != 0 || r.Util != 0 {
			t.Fatalf("non-zero row from empty collector: %+v", r)
		}
	}
	if c.AccuracyMean(nil) != 0 {
		t.Fatal("accuracy of empty collector")
	}
}

func TestCollectorConcurrency(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("g%d-j%d", g, i)
				c.RecordScheduled(id, epoch, time.Second, true, 0.5)
				c.RecordOutcome(id, time.Second, time.Minute, false)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 1600 {
		t.Fatalf("len = %d", c.Len())
	}
}
