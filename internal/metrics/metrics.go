// Package metrics implements the five evaluation metrics of the paper's
// Section 4.2 — Average Response Time, Throughput, Queue Time (plus the
// Normalized QTime refinement of Section 4.4), Average Resource
// Utilization, and Average Scheduling Accuracy — split, as Tables 1 and 2
// are, between requests handled by DI-GRUBER and requests that timed out
// into random selection.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"digruber/internal/stats"
)

// JobRecord accumulates one job's journey through scheduling and
// execution.
type JobRecord struct {
	ID string
	// ScheduledAt is when the scheduling decision completed.
	ScheduledAt time.Time
	// Response is the scheduling operation's response time.
	Response time.Duration
	// Handled reports whether DI-GRUBER answered (vs. timeout fallback).
	Handled bool
	// Accuracy is the paper's SA_i: free CPUs at the selected site over
	// total free CPUs in the grid, both at dispatch time.
	Accuracy float64
	// QTime is the site queue time (known at completion).
	QTime time.Duration
	// CPUTime is runtime × CPUs actually delivered (0 if failed).
	CPUTime time.Duration
	// Completed and Failed describe execution state.
	Completed bool
	Failed    bool
}

// Collector gathers job records and produces the paper's tables. Safe
// for concurrent use.
type Collector struct {
	mu   sync.Mutex
	jobs map[string]*JobRecord
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{jobs: make(map[string]*JobRecord)}
}

// RecordScheduled registers the scheduling half of a job's record.
func (c *Collector) RecordScheduled(id string, at time.Time, response time.Duration, handled bool, accuracy float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.jobs[id]
	if !ok {
		r = &JobRecord{ID: id}
		c.jobs[id] = r
	}
	r.ScheduledAt = at
	r.Response = response
	r.Handled = handled
	r.Accuracy = accuracy
}

// RecordOutcome registers the execution half of a job's record.
func (c *Collector) RecordOutcome(id string, qtime, cpuTime time.Duration, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.jobs[id]
	if !ok {
		r = &JobRecord{ID: id}
		c.jobs[id] = r
	}
	r.QTime = qtime
	r.CPUTime = cpuTime
	r.Completed = !failed
	r.Failed = failed
}

// Len reports how many jobs have records.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.jobs)
}

// Records returns a copy of all records, sorted by ID.
func (c *Collector) Records() []JobRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]JobRecord, 0, len(c.jobs))
	for _, r := range c.jobs {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Row is one line of the paper's Table 1/2: aggregate metrics over one
// class of requests.
type Row struct {
	// Class is "handled", "not-handled" or "all".
	Class string
	// PctOfRequests is this class's share of all requests.
	PctOfRequests float64
	// NumRequests counts requests in the class.
	NumRequests int
	// MeanQTime averages site queue time over the class's finished jobs.
	MeanQTime time.Duration
	// NormQTime is the paper's Normalized QTime: QTime divided by the
	// number of requests in the class.
	NormQTime time.Duration
	// Util is the class's delivered CPU-time over total available
	// CPU-time in the observation window.
	Util float64
	// Accuracy averages SA_i over the class.
	Accuracy float64
	// MeanResponse averages scheduling response time over the class.
	MeanResponse time.Duration
}

// Table is the full handled / not-handled / all breakdown.
type Table struct {
	Rows []Row
	// TotalCPUs and Window document the Util denominator.
	TotalCPUs int
	Window    time.Duration
}

// BuildTable computes the paper-style table given the grid capacity and
// the observation window the records span.
func (c *Collector) BuildTable(totalCPUs int, window time.Duration) Table {
	records := c.Records()
	classes := []struct {
		name   string
		filter func(JobRecord) bool
	}{
		{"handled", func(r JobRecord) bool { return r.Handled }},
		{"not-handled", func(r JobRecord) bool { return !r.Handled }},
		{"all", func(JobRecord) bool { return true }},
	}
	available := float64(totalCPUs) * window.Seconds()
	table := Table{TotalCPUs: totalCPUs, Window: window}
	for _, cl := range classes {
		var row Row
		row.Class = cl.name
		var qtimeSum, respSum, cpuSum time.Duration
		var accSum float64
		finished := 0
		for _, r := range records {
			if !cl.filter(r) {
				continue
			}
			row.NumRequests++
			respSum += r.Response
			accSum += r.Accuracy
			cpuSum += r.CPUTime
			if r.Completed || r.Failed {
				qtimeSum += r.QTime
				finished++
			}
		}
		if len(records) > 0 {
			row.PctOfRequests = float64(row.NumRequests) / float64(len(records)) * 100
		}
		if finished > 0 {
			row.MeanQTime = qtimeSum / time.Duration(finished)
		}
		if row.NumRequests > 0 {
			row.NormQTime = qtimeSum / time.Duration(row.NumRequests)
			row.Accuracy = accSum / float64(row.NumRequests)
			row.MeanResponse = respSum / time.Duration(row.NumRequests)
		}
		if available > 0 {
			row.Util = cpuSum.Seconds() / available
		}
		table.Rows = append(table.Rows, row)
	}
	return table
}

// String renders the table the way the paper prints it.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %8s %10s %10s %7s %9s %10s\n",
		"class", "%req", "#req", "QTime", "NormQT", "Util", "Accuracy", "Response")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %5.1f%% %8d %10s %10s %6.1f%% %8.1f%% %10s\n",
			r.Class, r.PctOfRequests, r.NumRequests,
			round(r.MeanQTime), round(r.NormQTime),
			r.Util*100, r.Accuracy*100, round(r.MeanResponse))
	}
	return b.String()
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Millisecond) }

// ResponseSummary summarizes scheduling response times across all
// records (the per-figure stat strip).
func (c *Collector) ResponseSummary() stats.Summary {
	records := c.Records()
	xs := make([]float64, 0, len(records))
	for _, r := range records {
		xs = append(xs, r.Response.Seconds())
	}
	return stats.Summarize(xs)
}

// AccuracyMean averages SA_i over records matching handled (nil = all).
func (c *Collector) AccuracyMean(handled *bool) float64 {
	records := c.Records()
	var sum float64
	n := 0
	for _, r := range records {
		if handled != nil && r.Handled != *handled {
			continue
		}
		sum += r.Accuracy
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
