// Package workload generates the composite workloads of the paper's
// experiments: work overlaid for 10 VOs with 10 groups per VO, submitted
// by ~120 submission hosts, one job per host per second, over emulated
// one-hour runs. Job runtimes follow a log-normal distribution so the
// grid carries a realistic mix of short and long work.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"digruber/internal/grid"
	"digruber/internal/netsim"
	"digruber/internal/usla"
)

// Config shapes a workload.
type Config struct {
	Seed int64
	// VOs and GroupsPerVO define the consumer hierarchy (paper: 10×10).
	VOs         int
	GroupsPerVO int
	// Hosts is the number of submission hosts (paper: ~120 clients).
	Hosts int
	// Interarrival is the per-host job submission period (paper: 1 s).
	Interarrival time.Duration
	// MeanRuntime and RuntimeSigma shape the log-normal job runtimes.
	MeanRuntime  time.Duration
	RuntimeSigma float64
	// JobCPUs is the per-job CPU demand (paper workloads: 1).
	JobCPUs int
	// InputBytes/OutputBytes size Euryale transfers.
	InputBytes  int64
	OutputBytes int64
}

// Default is the paper's composite workload shape.
func Default() Config {
	return Config{
		Seed:         1,
		VOs:          10,
		GroupsPerVO:  10,
		Hosts:        120,
		Interarrival: time.Second,
		MeanRuntime:  15 * time.Minute,
		RuntimeSigma: 0.8,
		JobCPUs:      1,
		InputBytes:   8 << 20,
		OutputBytes:  4 << 20,
	}
}

func (c *Config) setDefaults() {
	if c.VOs <= 0 {
		c.VOs = 10
	}
	if c.GroupsPerVO <= 0 {
		c.GroupsPerVO = 10
	}
	if c.Hosts <= 0 {
		c.Hosts = 1
	}
	if c.Interarrival <= 0 {
		c.Interarrival = time.Second
	}
	if c.MeanRuntime <= 0 {
		c.MeanRuntime = 15 * time.Minute
	}
	if c.JobCPUs <= 0 {
		c.JobCPUs = 1
	}
}

// Generator produces deterministic per-host job streams.
type Generator struct {
	cfg  Config
	rngs []*rand.Rand
	seq  []int
}

// NewGenerator builds a generator; each host gets its own RNG stream.
func NewGenerator(cfg Config) *Generator {
	cfg.setDefaults()
	g := &Generator{cfg: cfg}
	g.rngs = make([]*rand.Rand, cfg.Hosts)
	g.seq = make([]int, cfg.Hosts)
	for i := range g.rngs {
		g.rngs[i] = netsim.Stream(cfg.Seed, fmt.Sprintf("workload.host-%03d", i))
	}
	return g
}

// Config returns the generator's effective configuration.
func (g *Generator) Config() Config { return g.cfg }

// HostName names submission host i.
func (g *Generator) HostName(i int) string { return fmt.Sprintf("client-%03d", i) }

// VOName names VO v.
func VOName(v int) string { return fmt.Sprintf("vo-%02d", v) }

// GroupName names group gr of a VO.
func GroupName(gr int) string { return fmt.Sprintf("group-%02d", gr) }

// HostOwner is the static consumer path host i submits under: hosts are
// spread round-robin over VOs and, within a VO, over its groups.
func (g *Generator) HostOwner(i int) usla.Path {
	vo := i % g.cfg.VOs
	group := (i / g.cfg.VOs) % g.cfg.GroupsPerVO
	return usla.Path{VO: VOName(vo), Group: GroupName(group)}
}

// NextJob produces host i's next job. Runtimes are log-normal around
// MeanRuntime; IDs are unique across hosts. A host index outside
// [0, Hosts) returns an error so a misconfigured harness fails as a
// recorded result instead of killing the run.
func (g *Generator) NextJob(host int) (*grid.Job, error) {
	if host < 0 || host >= g.cfg.Hosts {
		return nil, fmt.Errorf("workload: host %d out of range [0,%d)", host, g.cfg.Hosts)
	}
	g.seq[host]++
	rng := g.rngs[host]
	runtime := g.cfg.MeanRuntime
	if g.cfg.RuntimeSigma > 0 {
		// Log-normal with median MeanRuntime.
		factor := math.Exp(rng.NormFloat64() * g.cfg.RuntimeSigma)
		runtime = time.Duration(float64(g.cfg.MeanRuntime) * factor)
		if runtime < time.Second {
			runtime = time.Second
		}
	}
	return &grid.Job{
		ID:          grid.JobID(fmt.Sprintf("%s-job-%05d", g.HostName(host), g.seq[host])),
		Owner:       g.HostOwner(host),
		CPUs:        g.cfg.JobCPUs,
		Runtime:     runtime,
		InputBytes:  g.cfg.InputBytes,
		OutputBytes: g.cfg.OutputBytes,
		SubmitHost:  g.HostName(host),
	}, nil
}

// Policies builds the USLA policy set matching the composite workload:
// every VO gets an equal fair-share target of the grid and an upper
// limit at twice its target (so bursting is possible but bounded), and
// groups share their VO equally.
func Policies(cfg Config) (*usla.PolicySet, error) {
	cfg.setDefaults()
	ps := usla.NewPolicySet()
	voTarget := 100.0 / float64(cfg.VOs)
	voUpper := voTarget * 2
	if voUpper > 100 {
		voUpper = 100
	}
	groupTarget := 100.0 / float64(cfg.GroupsPerVO)
	add := func(consumer usla.Path, percent float64, kind usla.ShareKind) error {
		e := usla.Entry{Provider: usla.AnyProvider, Consumer: consumer, Resource: usla.CPU, Share: usla.Share{Percent: percent, Kind: kind}}
		if err := ps.Add(e); err != nil {
			return fmt.Errorf("workload: policy for %s: %w", consumer, err)
		}
		return nil
	}
	for v := 0; v < cfg.VOs; v++ {
		vo := usla.Path{VO: VOName(v)}
		if err := add(vo, voTarget, usla.Target); err != nil {
			return nil, err
		}
		if err := add(vo, voUpper, usla.UpperLimit); err != nil {
			return nil, err
		}
		for gr := 0; gr < cfg.GroupsPerVO; gr++ {
			p := usla.Path{VO: VOName(v), Group: GroupName(gr)}
			if err := add(p, groupTarget, usla.Target); err != nil {
				return nil, err
			}
		}
	}
	return ps, nil
}
