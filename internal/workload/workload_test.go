package workload

import (
	"testing"
	"time"

	"digruber/internal/usla"
)

func TestHostOwnerCoversAllVOsAndGroups(t *testing.T) {
	cfg := Default()
	g := NewGenerator(cfg)
	vos := map[string]bool{}
	groups := map[string]bool{}
	for i := 0; i < cfg.Hosts; i++ {
		p := g.HostOwner(i)
		if p.VO == "" || p.Group == "" {
			t.Fatalf("host %d owner = %v", i, p)
		}
		vos[p.VO] = true
		groups[p.VO+"."+p.Group] = true
	}
	if len(vos) != cfg.VOs {
		t.Fatalf("workload touches %d VOs, want %d", len(vos), cfg.VOs)
	}
	// 120 hosts over 10 VOs → 12 hosts per VO → 2 groups per VO hit at
	// least; exact coverage is round-robin.
	if len(groups) < cfg.VOs {
		t.Fatalf("only %d distinct groups", len(groups))
	}
}

func TestNextJobDeterministicAndUnique(t *testing.T) {
	g1 := NewGenerator(Default())
	g2 := NewGenerator(Default())
	seen := map[string]bool{}
	for host := 0; host < 5; host++ {
		for k := 0; k < 20; k++ {
			j1, err1 := g1.NextJob(host)
			j2, err2 := g2.NextJob(host)
			if err1 != nil || err2 != nil {
				t.Fatalf("NextJob errors: %v, %v", err1, err2)
			}
			if j1.ID != j2.ID || j1.Runtime != j2.Runtime {
				t.Fatal("generator not deterministic")
			}
			if seen[string(j1.ID)] {
				t.Fatalf("duplicate job ID %s", j1.ID)
			}
			seen[string(j1.ID)] = true
			if j1.Owner != g1.HostOwner(host) {
				t.Fatal("job owner != host owner")
			}
			if j1.Runtime < time.Second {
				t.Fatalf("runtime %v below floor", j1.Runtime)
			}
		}
	}
}

func TestRuntimeDistributionSpread(t *testing.T) {
	g := NewGenerator(Default())
	var min, max time.Duration = time.Hour * 1000, 0
	var sum time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		j, err := g.NextJob(0)
		if err != nil {
			t.Fatal(err)
		}
		r := j.Runtime
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
		sum += r
	}
	if max < 4*min {
		t.Fatalf("log-normal runtimes not spread: min=%v max=%v", min, max)
	}
	mean := sum / n
	want := Default().MeanRuntime
	// Log-normal mean is above the median; allow a generous band.
	if mean < want/2 || mean > want*3 {
		t.Fatalf("mean runtime %v far from configured %v", mean, want)
	}
}

func TestNextJobErrorsOnBadHost(t *testing.T) {
	g := NewGenerator(Default())
	if _, err := g.NextJob(-1); err == nil {
		t.Fatal("negative host accepted")
	}
	if _, err := g.NextJob(g.Config().Hosts); err == nil {
		t.Fatal("host == Hosts accepted")
	}
	if _, err := g.NextJob(0); err != nil {
		t.Fatalf("valid host rejected: %v", err)
	}
}

func TestPoliciesShape(t *testing.T) {
	cfg := Default()
	ps, err := Policies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 10 VOs × (target+upper) + 100 groups × target = 120 entries.
	if got := ps.Len(); got != cfg.VOs*2+cfg.VOs*cfg.GroupsPerVO {
		t.Fatalf("policy entries = %d", got)
	}
	if errs := ps.Validate(); len(errs) != 0 {
		t.Fatalf("generated policies invalid: %v", errs)
	}
	vo := usla.MustParsePath(VOName(0))
	l := ps.LimitsFor("any-site", vo, usla.CPU)
	if l.Target != 10 || l.Upper != 20 {
		t.Fatalf("VO limits = %+v, want target 10 upper 20", l)
	}
	group := usla.Path{VO: VOName(0), Group: GroupName(0)}
	ent := ps.Entitlement("any-site", group, usla.CPU, 30000)
	// Group target: 10% of VO's 10% = 1% of 30000 = 300 CPUs.
	if ent.Target != 300 {
		t.Fatalf("group target entitlement = %v, want 300", ent.Target)
	}
}

func TestPoliciesSumToWholeGrid(t *testing.T) {
	cfg := Default()
	ps, err := Policies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for v := 0; v < cfg.VOs; v++ {
		l := ps.LimitsFor(usla.AnyProvider, usla.Path{VO: VOName(v)}, usla.CPU)
		total += l.Target
	}
	if total < 99.9 || total > 100.1 {
		t.Fatalf("VO targets sum to %v%%, want 100%%", total)
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	g := NewGenerator(Config{Hosts: 2})
	cfg := g.Config()
	if cfg.VOs != 10 || cfg.GroupsPerVO != 10 || cfg.JobCPUs != 1 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	j, err := g.NextJob(1)
	if err != nil {
		t.Fatal(err)
	}
	if j.CPUs != 1 || j.Runtime <= 0 {
		t.Fatalf("job from defaulted config: %+v", j)
	}
}
