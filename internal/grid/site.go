package grid

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"digruber/internal/usla"
	"digruber/internal/vtime"
)

// SitePolicy is the S-PEP hook: a site-local policy enforcement point
// consulted before a job is queued. The paper's experiments assume
// decision points have total control and leave S-PEPs out of scope, so
// the default policy admits everything; the hook exists for the
// extension experiments.
type SitePolicy interface {
	// Admit returns an error to reject the job at the site boundary,
	// given the site's current status.
	Admit(j *Job, st Status) error
}

// AdmitAll is the default S-PEP used in the paper's experiments.
type AdmitAll struct{}

// Admit implements SitePolicy.
func (AdmitAll) Admit(*Job, Status) error { return nil }

// USLAPolicy is an S-PEP that enforces site-level USLA upper limits on
// running CPUs per consumer, used by the extension experiments.
type USLAPolicy struct {
	Policies *usla.PolicySet
}

// Admit implements SitePolicy.
func (p USLAPolicy) Admit(j *Job, st Status) error {
	uf := func(q usla.Path) float64 { return float64(st.UsageByPath[q.String()]) }
	if !p.Policies.Allowed(st.Name, j.Owner, usla.CPU, float64(st.TotalCPUs), uf, float64(j.CPUs)) {
		return fmt.Errorf("usla upper limit reached for %s at %s", j.Owner, st.Name)
	}
	return nil
}

// Ticket tracks one submitted job; Done delivers exactly one Outcome.
type Ticket struct {
	JobID JobID
	done  chan Outcome
}

// Done returns the completion channel.
func (t *Ticket) Done() <-chan Outcome { return t.done }

// SiteConfig configures a site.
type SiteConfig struct {
	Name string
	// Clusters lists CPU counts per cluster; a site's capacity is their
	// sum. The paper notes each site comprises one or more clusters.
	Clusters []int
	// Scheduler is the site's local queue policy (default FIFO).
	Scheduler SchedulerPolicy
	// StorageBytes is the site's storage capacity; 0 leaves storage
	// unmodeled. Jobs occupy InputBytes+OutputBytes while at the site.
	StorageBytes int64
	// FailProb is the probability a job fails at execution start
	// (failure injection for Euryale's re-planning).
	FailProb float64
	// Policy is the S-PEP; nil means AdmitAll.
	Policy SitePolicy
	// RNG drives failure injection; nil disables randomness.
	RNG *rand.Rand
}

// Site is one grid site: a capacity of CPUs, a FIFO queue, and usage
// accounting per consumer path.
type Site struct {
	name     string
	clusters []int
	total    int
	clock    vtime.Clock
	policy   SitePolicy
	policy2  SchedulerPolicy // queue ordering policy
	failProb float64

	mu      sync.Mutex
	rng     *rand.Rand
	free    int
	queue   []*queuedJob
	running map[JobID]*queuedJob
	// usage counts running CPUs per consumer path prefix, so USLA
	// evaluation at any level is O(1).
	usage map[usla.Path]int
	// storage accounting mirrors CPU usage, in bytes.
	storageTotal  int64
	storageUsed   int64
	storageByPath map[usla.Path]int64

	// accounting
	completedJobs  int
	failedJobs     int
	consumedCPU    time.Duration // CPU-time delivered (runtime × cpus)
	qtimeTotal     time.Duration
	finishedQTimes int

	closed    bool
	onOutcome func(Outcome)
}

type queuedJob struct {
	job      *Job
	ticket   *Ticket
	queuedAt time.Time
	started  time.Time
	timer    vtime.Timer
}

// NewSite builds a site from its config.
func NewSite(cfg SiteConfig, clock vtime.Clock) (*Site, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("grid: site with empty name")
	}
	total := 0
	for _, c := range cfg.Clusters {
		if c <= 0 {
			return nil, fmt.Errorf("grid: site %s has non-positive cluster size", cfg.Name)
		}
		total += c
	}
	if total == 0 {
		return nil, fmt.Errorf("grid: site %s has no CPUs", cfg.Name)
	}
	policy := cfg.Policy
	if policy == nil {
		policy = AdmitAll{}
	}
	sched, err := validatePolicy(cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	return &Site{
		name:     cfg.Name,
		clusters: append([]int(nil), cfg.Clusters...),
		total:    total,
		clock:    clock,
		policy:   policy,
		policy2:  sched,
		failProb: cfg.FailProb,
		rng:      cfg.RNG,
		free:     total,
		running:  make(map[JobID]*queuedJob),
		usage:    make(map[usla.Path]int),

		storageTotal:  cfg.StorageBytes,
		storageByPath: make(map[usla.Path]int64),
	}, nil
}

// Name returns the site name.
func (s *Site) Name() string { return s.name }

// TotalCPUs returns the site capacity.
func (s *Site) TotalCPUs() int { return s.total }

// Clusters returns the per-cluster CPU counts.
func (s *Site) Clusters() []int { return append([]int(nil), s.clusters...) }

// SetOutcomeHandler installs a callback invoked (outside the site lock)
// for every finished job. Metrics collectors use this.
func (s *Site) SetOutcomeHandler(f func(Outcome)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onOutcome = f
}

// Submit queues a job at the site. The returned Ticket's Done channel
// delivers the Outcome when the job finishes. Submission fails only if
// the S-PEP rejects the job or the job is invalid.
func (s *Site) Submit(j *Job) (*Ticket, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	if j.CPUs > s.total {
		return nil, fmt.Errorf("grid: job %s needs %d CPUs, site %s has %d", j.ID, j.CPUs, s.name, s.total)
	}
	if err := s.admitStorage(j); err != nil {
		return nil, err
	}
	if err := s.policy.Admit(j, s.Snapshot()); err != nil {
		return nil, fmt.Errorf("grid: site %s rejected job %s: %w", s.name, j.ID, err)
	}
	t := &Ticket{JobID: j.ID, done: make(chan Outcome, 1)}
	qj := &queuedJob{job: j, ticket: t, queuedAt: s.clock.Now()}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("grid: site %s is shut down", s.name)
	}
	s.chargeStorageLocked(j)
	s.queue = append(s.queue, qj)
	s.mu.Unlock()
	s.schedule()
	return t, nil
}

// Close shuts the site down: pending timers are cancelled, and every
// queued or running job resolves immediately with a failed Outcome so
// watchers unblock. Emulation harnesses call this at teardown so no
// compressed-time execution outlives an experiment.
func (s *Site) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	queued := s.queue
	s.queue = nil
	running := s.running
	s.running = make(map[JobID]*queuedJob)
	s.usage = make(map[usla.Path]int)
	s.free = s.total
	s.storageUsed = 0
	s.storageByPath = make(map[usla.Path]int64)
	now := s.clock.Now()
	s.mu.Unlock()

	//lint:allow mapiter -- teardown: every timer is stopped; stop order is immaterial
	for _, qj := range running {
		if qj.timer != nil {
			qj.timer.Stop()
		}
	}
	for _, set := range [][]*queuedJob{queued, mapValues(running)} {
		for _, qj := range set {
			qj.ticket.done <- Outcome{
				Job: qj.job, Site: s.name,
				QueuedAt: qj.queuedAt, StartedAt: qj.started, FinishedAt: now,
				Failed: true, FailureReason: "site shut down",
			}
		}
	}
}

func mapValues(m map[JobID]*queuedJob) []*queuedJob {
	out := make([]*queuedJob, 0, len(m))
	for _, qj := range m {
		out = append(out, qj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].job.ID < out[j].job.ID })
	return out
}

// schedule starts queued jobs while the scheduler policy admits one.
func (s *Site) schedule() {
	for {
		s.mu.Lock()
		now := s.clock.Now()
		idx := s.pickNext(now)
		if idx < 0 {
			s.mu.Unlock()
			return
		}
		qj := s.queue[idx]
		s.queue = append(s.queue[:idx], s.queue[idx+1:]...)

		// Failure injection: the job dies at execution start.
		if s.failProb > 0 && s.rng != nil && s.rng.Float64() < s.failProb {
			s.failedJobs++
			s.releaseStorageLocked(qj.job)
			handler := s.onOutcome
			s.mu.Unlock()
			out := Outcome{
				Job: qj.job, Site: s.name,
				QueuedAt: qj.queuedAt, FinishedAt: now,
				Failed: true, FailureReason: "site execution failure",
			}
			qj.ticket.done <- out
			if handler != nil {
				handler(out)
			}
			continue
		}

		qj.started = now
		s.free -= qj.job.CPUs
		s.running[qj.job.ID] = qj
		for _, prefix := range qj.job.Owner.Prefixes() {
			s.usage[prefix] += qj.job.CPUs
		}
		s.qtimeTotal += qj.started.Sub(qj.queuedAt)
		s.finishedQTimes++
		job := qj.job
		qj.timer = s.clock.AfterFunc(job.Runtime, func() { s.finish(job.ID) })
		s.mu.Unlock()
	}
}

// finish releases a running job's CPUs and delivers its outcome.
func (s *Site) finish(id JobID) {
	s.mu.Lock()
	qj, ok := s.running[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.running, id)
	s.free += qj.job.CPUs
	for _, prefix := range qj.job.Owner.Prefixes() {
		s.usage[prefix] -= qj.job.CPUs
		if s.usage[prefix] <= 0 {
			delete(s.usage, prefix)
		}
	}
	s.completedJobs++
	s.consumedCPU += qj.job.Runtime * time.Duration(qj.job.CPUs)
	s.releaseStorageLocked(qj.job)
	handler := s.onOutcome
	now := s.clock.Now()
	s.mu.Unlock()

	out := Outcome{
		Job: qj.job, Site: s.name,
		QueuedAt: qj.queuedAt, StartedAt: qj.started, FinishedAt: now,
	}
	qj.ticket.done <- out
	if handler != nil {
		handler(out)
	}
	s.schedule()
}

// Status is a point-in-time snapshot of a site, the unit of information
// monitoring feeds to decision points.
type Status struct {
	Name      string
	TotalCPUs int
	FreeCPUs  int
	Queued    int
	Running   int
	// UsageByPath maps consumer path (dotted string, gob-friendly) to
	// running CPUs, for every path prefix with non-zero usage.
	UsageByPath map[string]int
	// StorageTotal/StorageFree/StorageByPath mirror the CPU fields in
	// bytes (all zero when storage is unmodeled).
	StorageTotal  int64
	StorageFree   int64
	StorageByPath map[string]int64
}

// Snapshot returns the site's current status.
func (s *Site) Snapshot() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	usage := make(map[string]int, len(s.usage))
	//lint:allow mapiter -- rekey by Path.String, which is injective; writes cannot collide
	for p, n := range s.usage {
		usage[p.String()] = n
	}
	st := Status{
		Name:        s.name,
		TotalCPUs:   s.total,
		FreeCPUs:    s.free,
		Queued:      len(s.queue),
		Running:     len(s.running),
		UsageByPath: usage,
	}
	if s.storageTotal > 0 {
		st.StorageTotal = s.storageTotal
		st.StorageFree = s.storageTotal - s.storageUsed
		st.StorageByPath = make(map[string]int64, len(s.storageByPath))
		//lint:allow mapiter -- rekey by Path.String, which is injective; writes cannot collide
		for p, n := range s.storageByPath {
			st.StorageByPath[p.String()] = n
		}
	}
	return st
}

// Usage returns the running CPUs charged to a consumer path (including
// its descendants) — the site-local ground-truth UsageFunc for USLA
// evaluation.
func (s *Site) Usage(p usla.Path) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usage[p]
}

// Accounting summarizes what a site has delivered so far.
type Accounting struct {
	CompletedJobs int
	FailedJobs    int
	// ConsumedCPU is total CPU-time delivered to completed jobs.
	ConsumedCPU time.Duration
	// MeanQTime averages queue time over jobs that started.
	MeanQTime time.Duration
}

// Accounting returns the site's cumulative accounting.
func (s *Site) Accounting() Accounting {
	s.mu.Lock()
	defer s.mu.Unlock()
	acc := Accounting{
		CompletedJobs: s.completedJobs,
		FailedJobs:    s.failedJobs,
		ConsumedCPU:   s.consumedCPU,
	}
	if s.finishedQTimes > 0 {
		acc.MeanQTime = s.qtimeTotal / time.Duration(s.finishedQTimes)
	}
	return acc
}
