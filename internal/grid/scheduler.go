package grid

import (
	"fmt"
	"sort"
	"time"
)

// SchedulerPolicy selects how a site orders its local queue. The paper's
// sites run batch schedulers in the Maui family; the three policies here
// cover the spectrum the USLA model was designed against.
type SchedulerPolicy string

// Site scheduler policies.
const (
	// FIFO starts jobs strictly in arrival order (the default, and what
	// the paper's emulation assumes).
	FIFO SchedulerPolicy = "fifo"
	// Priority starts the highest-priority queued job first (ties by
	// arrival). Starvation of big low-priority jobs is possible.
	Priority SchedulerPolicy = "priority"
	// Backfill is EASY backfill: jobs start in arrival order, but when
	// the queue head does not fit, a later job may jump ahead if doing
	// so cannot delay the head's earliest possible start time (computed
	// from running jobs' declared runtimes).
	Backfill SchedulerPolicy = "backfill"
)

// ValidPolicy reports whether p names a scheduler policy.
func ValidPolicy(p SchedulerPolicy) bool {
	switch p {
	case "", FIFO, Priority, Backfill:
		return true
	}
	return false
}

// pickNext chooses the index in s.queue of the next job to start, or -1
// if nothing can start now. Caller holds s.mu.
func (s *Site) pickNext(now time.Time) int {
	if len(s.queue) == 0 {
		return -1
	}
	switch s.policy2 {
	case Priority:
		best := -1
		for i, qj := range s.queue {
			if qj.job.CPUs > s.free {
				continue
			}
			if best < 0 || qj.job.Priority > s.queue[best].job.Priority {
				best = i
			}
		}
		return best
	case Backfill:
		head := s.queue[0]
		if head.job.CPUs <= s.free {
			return 0
		}
		shadow, extra := s.shadowLocked(head.job.CPUs, now)
		for i := 1; i < len(s.queue); i++ {
			qj := s.queue[i]
			if qj.job.CPUs > s.free {
				continue
			}
			// Safe to backfill if the candidate finishes before the
			// head's reservation, or fits inside CPUs the head won't
			// need even then.
			if !now.Add(qj.job.Runtime).After(shadow) || qj.job.CPUs <= extra {
				return i
			}
		}
		return -1
	default: // FIFO
		if s.queue[0].job.CPUs <= s.free {
			return 0
		}
		return -1
	}
}

// shadowLocked computes, from running jobs' declared runtimes, the
// earliest time at which cpus processors will be free (the queue head's
// reservation) and how many processors beyond cpus will be free then.
// Caller holds s.mu.
func (s *Site) shadowLocked(cpus int, now time.Time) (shadow time.Time, extra int) {
	type release struct {
		at   time.Time
		cpus int
	}
	releases := make([]release, 0, len(s.running))
	//lint:allow mapiter -- collected releases are sorted by (time, cpus) right below; equal entries are interchangeable
	for _, qj := range s.running {
		releases = append(releases, release{at: qj.started.Add(qj.job.Runtime), cpus: qj.job.CPUs})
	}
	// Tie-break equal release instants on cpus so the shadow/extra result
	// never depends on map iteration order.
	sort.Slice(releases, func(i, j int) bool {
		if !releases[i].at.Equal(releases[j].at) {
			return releases[i].at.Before(releases[j].at)
		}
		return releases[i].cpus < releases[j].cpus
	})
	avail := s.free
	for _, r := range releases {
		avail += r.cpus
		if avail >= cpus {
			return r.at, avail - cpus
		}
	}
	// Unreachable for validated jobs (cpus ≤ total), but stay safe.
	return now.Add(365 * 24 * time.Hour), 0
}

func validatePolicy(p SchedulerPolicy) (SchedulerPolicy, error) {
	if !ValidPolicy(p) {
		return "", fmt.Errorf("grid: unknown scheduler policy %q", p)
	}
	if p == "" {
		return FIFO, nil
	}
	return p, nil
}
