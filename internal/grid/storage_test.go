package grid

import (
	"math/rand"
	"testing"
	"time"

	"digruber/internal/netsim"
	"digruber/internal/usla"
	"digruber/internal/vtime"
)

func testRNG() *rand.Rand { return netsim.Stream(1, "grid.storage.test") }

func storageJob(id, owner string, in, out int64) *Job {
	return &Job{
		ID: JobID(id), Owner: usla.MustParsePath(owner), CPUs: 1,
		Runtime: time.Minute, InputBytes: in, OutputBytes: out,
	}
}

func TestStorageChargedAndReleased(t *testing.T) {
	clock := vtime.NewManual(epoch)
	s, err := NewSite(SiteConfig{Name: "s", Clusters: []int{4}, StorageBytes: 1000}, clock)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := s.Submit(storageJob("j1", "atlas.higgs", 300, 100))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.StorageFree(); got != 600 {
		t.Fatalf("storage free = %d, want 600", got)
	}
	if got := s.StorageUsage(usla.MustParsePath("atlas")); got != 400 {
		t.Fatalf("atlas storage = %d, want 400 (prefix accounting)", got)
	}
	st := s.Snapshot()
	if st.StorageTotal != 1000 || st.StorageFree != 600 || st.StorageByPath["atlas.higgs"] != 400 {
		t.Fatalf("snapshot storage = %+v", st)
	}
	clock.Advance(time.Minute)
	<-tk.Done()
	if got := s.StorageFree(); got != 1000 {
		t.Fatalf("storage not released: free = %d", got)
	}
	if s.StorageUsage(usla.MustParsePath("atlas")) != 0 {
		t.Fatal("per-path storage not released")
	}
}

func TestStorageCapacityRejects(t *testing.T) {
	clock := vtime.NewManual(epoch)
	s, _ := NewSite(SiteConfig{Name: "s", Clusters: []int{4}, StorageBytes: 500}, clock)
	if _, err := s.Submit(storageJob("big", "atlas", 400, 200)); err == nil {
		t.Fatal("over-capacity data accepted")
	}
	if _, err := s.Submit(storageJob("ok", "atlas", 400, 100)); err != nil {
		t.Fatalf("exact-fit data rejected: %v", err)
	}
	if _, err := s.Submit(storageJob("more", "atlas", 1, 0)); err == nil {
		t.Fatal("accepted past full storage")
	}
}

func TestStorageUnmodeledByDefault(t *testing.T) {
	s, _ := newTestSite(t, 2)
	if _, err := s.Submit(storageJob("j", "atlas", 1<<40, 1<<40)); err != nil {
		t.Fatalf("storage limits enforced without capacity: %v", err)
	}
	if s.StorageFree() != 0 || s.Snapshot().StorageTotal != 0 {
		t.Fatal("unmodeled storage reported capacity")
	}
}

func TestStorageReleasedOnInjectedFailure(t *testing.T) {
	clock := vtime.NewManual(epoch)
	s, _ := NewSite(SiteConfig{
		Name: "s", Clusters: []int{2}, StorageBytes: 1000,
		FailProb: 1, RNG: testRNG(),
	}, clock)
	tk, err := s.Submit(storageJob("j", "atlas", 500, 0))
	if err != nil {
		t.Fatal(err)
	}
	out := <-tk.Done()
	if !out.Failed {
		t.Fatal("expected injected failure")
	}
	if s.StorageFree() != 1000 {
		t.Fatal("failed job leaked storage")
	}
}

func TestStorageReleasedOnClose(t *testing.T) {
	clock := vtime.NewManual(epoch)
	s, _ := NewSite(SiteConfig{Name: "s", Clusters: []int{1}, StorageBytes: 1000}, clock)
	s.Submit(storageJob("a", "atlas", 400, 0))
	s.Submit(storageJob("b", "cms", 400, 0)) // queued
	s.Close()
	if got := s.Snapshot(); got.StorageFree != 1000 || len(got.StorageByPath) != 0 {
		t.Fatalf("storage retained after close: %+v", got)
	}
}

func TestStorageUSLAPolicy(t *testing.T) {
	clock := vtime.NewManual(epoch)
	ps := usla.NewPolicySet()
	entries, err := usla.ParseTextString("* atlas storage 40+")
	if err != nil {
		t.Fatal(err)
	}
	ps.AddAll(entries)
	s, err := NewSite(SiteConfig{
		Name: "s", Clusters: []int{8}, StorageBytes: 1000,
		Policy: StorageUSLAPolicy{Policies: ps},
	}, clock)
	if err != nil {
		t.Fatal(err)
	}
	// atlas cap = 400 bytes.
	if _, err := s.Submit(storageJob("j1", "atlas", 400, 0)); err != nil {
		t.Fatalf("within-share data rejected: %v", err)
	}
	if _, err := s.Submit(storageJob("j2", "atlas", 1, 0)); err == nil {
		t.Fatal("over-share data accepted")
	}
	// Other VOs unaffected (opportunistic default).
	if _, err := s.Submit(storageJob("j3", "cms", 500, 0)); err != nil {
		t.Fatalf("other VO rejected: %v", err)
	}
}

func TestCombinedPolicies(t *testing.T) {
	clock := vtime.NewManual(epoch)
	cpuPS := usla.NewPolicySet()
	cpuEntries, _ := usla.ParseTextString("* atlas cpu 50+")
	cpuPS.AddAll(cpuEntries)
	stoPS := usla.NewPolicySet()
	stoEntries, _ := usla.ParseTextString("* atlas storage 10+")
	stoPS.AddAll(stoEntries)
	s, err := NewSite(SiteConfig{
		Name: "s", Clusters: []int{10}, StorageBytes: 1000,
		Policy: Policies{USLAPolicy{Policies: cpuPS}, StorageUSLAPolicy{Policies: stoPS}},
	}, clock)
	if err != nil {
		t.Fatal(err)
	}
	// Passes CPU share but violates the 100-byte storage share.
	if _, err := s.Submit(storageJob("j", "atlas", 200, 0)); err == nil {
		t.Fatal("combined policy let a storage violation through")
	}
	// Fits both.
	if _, err := s.Submit(storageJob("ok", "atlas", 50, 0)); err != nil {
		t.Fatalf("conforming job rejected: %v", err)
	}
}
