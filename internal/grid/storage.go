package grid

import (
	"fmt"

	"digruber/internal/usla"
)

// Storage support: the paper's USLAs allocate "processor time, permanent
// storage, or network bandwidth". Sites with a configured storage
// capacity charge each job's input and output bytes against it (and
// against the job's consumer path) from admission until completion, so
// storage-level USLA shares are enforceable by the S-PEP exactly like
// CPU shares.

// storageDemand is the bytes a job occupies while at the site.
func storageDemand(j *Job) int64 { return j.InputBytes + j.OutputBytes }

// chargeStorageLocked books a job's storage. Caller holds s.mu.
func (s *Site) chargeStorageLocked(j *Job) {
	if s.storageTotal <= 0 {
		return
	}
	d := storageDemand(j)
	if d <= 0 {
		return
	}
	s.storageUsed += d
	for _, prefix := range j.Owner.Prefixes() {
		s.storageByPath[prefix] += d
	}
}

// releaseStorageLocked returns a job's storage. Caller holds s.mu.
func (s *Site) releaseStorageLocked(j *Job) {
	if s.storageTotal <= 0 {
		return
	}
	d := storageDemand(j)
	if d <= 0 {
		return
	}
	s.storageUsed -= d
	for _, prefix := range j.Owner.Prefixes() {
		s.storageByPath[prefix] -= d
		if s.storageByPath[prefix] <= 0 {
			delete(s.storageByPath, prefix)
		}
	}
}

// StorageFree reports unallocated storage bytes (0 if unmodeled).
func (s *Site) StorageFree() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.storageTotal <= 0 {
		return 0
	}
	return s.storageTotal - s.storageUsed
}

// StorageUsage reports bytes charged to a consumer path (with
// descendants).
func (s *Site) StorageUsage(p usla.Path) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.storageByPath[p]
}

// admitStorage rejects a job whose data cannot be stored within the
// site's capacity. Called from Submit before queuing.
func (s *Site) admitStorage(j *Job) error {
	if s.storageTotal <= 0 {
		return nil
	}
	d := storageDemand(j)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.storageUsed+d > s.storageTotal {
		return fmt.Errorf("grid: site %s storage full (%d of %d bytes used, job needs %d)",
			s.name, s.storageUsed, s.storageTotal, d)
	}
	return nil
}

// StorageUSLAPolicy is an S-PEP enforcing storage-share upper limits per
// consumer, the storage counterpart of USLAPolicy.
type StorageUSLAPolicy struct {
	Policies *usla.PolicySet
}

// Admit implements SitePolicy.
func (p StorageUSLAPolicy) Admit(j *Job, st Status) error {
	if st.StorageTotal <= 0 {
		return nil
	}
	uf := func(q usla.Path) float64 { return float64(st.StorageByPath[q.String()]) }
	if !p.Policies.Allowed(st.Name, j.Owner, usla.Storage, float64(st.StorageTotal), uf, float64(storageDemand(j))) {
		return fmt.Errorf("usla storage limit reached for %s at %s", j.Owner, st.Name)
	}
	return nil
}

// Policies combines multiple S-PEPs; every policy must admit.
type Policies []SitePolicy

// Admit implements SitePolicy.
func (ps Policies) Admit(j *Job, st Status) error {
	for _, p := range ps {
		if err := p.Admit(j, st); err != nil {
			return err
		}
	}
	return nil
}
