package grid

import (
	"testing"
	"time"

	"digruber/internal/usla"
	"digruber/internal/vtime"
)

func schedSite(t *testing.T, policy SchedulerPolicy, cpus int) (*Site, *vtime.Manual) {
	t.Helper()
	clock := vtime.NewManual(epoch)
	s, err := NewSite(SiteConfig{Name: "sched", Clusters: []int{cpus}, Scheduler: policy}, clock)
	if err != nil {
		t.Fatal(err)
	}
	return s, clock
}

func pjob(id string, cpus int, runtime time.Duration, priority int) *Job {
	return &Job{
		ID: JobID(id), Owner: usla.MustParsePath("atlas"),
		CPUs: cpus, Runtime: runtime, Priority: priority,
	}
}

func TestPrioritySchedulerOrdersByPriority(t *testing.T) {
	s, clock := schedSite(t, Priority, 1)
	// Occupy the CPU so later submissions queue.
	blocker, _ := s.Submit(pjob("blocker", 1, time.Minute, 0))
	tLow, _ := s.Submit(pjob("low", 1, time.Minute, 1))
	tHigh, _ := s.Submit(pjob("high", 1, time.Minute, 9))
	tMid, _ := s.Submit(pjob("mid", 1, time.Minute, 5))

	clock.Advance(4 * time.Minute)
	<-blocker.Done()
	outHigh, outMid, outLow := <-tHigh.Done(), <-tMid.Done(), <-tLow.Done()
	if !outHigh.StartedAt.Before(outMid.StartedAt) || !outMid.StartedAt.Before(outLow.StartedAt) {
		t.Fatalf("priority order violated: high=%v mid=%v low=%v",
			outHigh.StartedAt, outMid.StartedAt, outLow.StartedAt)
	}
}

func TestPriorityTiesKeepArrivalOrder(t *testing.T) {
	s, clock := schedSite(t, Priority, 1)
	s.Submit(pjob("blocker", 1, time.Minute, 0))
	tA, _ := s.Submit(pjob("a", 1, time.Minute, 5))
	tB, _ := s.Submit(pjob("b", 1, time.Minute, 5))
	clock.Advance(3 * time.Minute)
	outA, outB := <-tA.Done(), <-tB.Done()
	if !outA.StartedAt.Before(outB.StartedAt) {
		t.Fatal("equal priorities did not keep arrival order")
	}
}

func TestBackfillFillsHolesWithoutDelayingHead(t *testing.T) {
	s, clock := schedSite(t, Backfill, 4)
	// Running: 2 CPUs for 10 minutes.
	s.Submit(pjob("running", 2, 10*time.Minute, 0))
	// Head needs 4 CPUs: must wait for the running job (shadow = t+10m).
	tHead, _ := s.Submit(pjob("head", 4, time.Minute, 0))
	// Short small job: 2 CPUs free now, finishes (t+5m) before shadow →
	// backfills immediately.
	tShort, _ := s.Submit(pjob("short", 2, 5*time.Minute, 0))
	// Long small job: would finish at t+30m > shadow and needs CPUs the
	// head requires → must NOT start before the head.
	tLong, _ := s.Submit(pjob("long", 2, 30*time.Minute, 0))

	if st := s.Snapshot(); st.Running != 2 {
		t.Fatalf("backfill did not start the short job: %+v", st)
	}
	clock.Advance(10 * time.Minute) // running + short finish; head starts
	clock.Advance(time.Minute)      // head finishes; long starts
	clock.Advance(30 * time.Minute)

	outHead, outShort, outLong := <-tHead.Done(), <-tShort.Done(), <-tLong.Done()
	if !outShort.StartedAt.Before(outHead.StartedAt) {
		t.Fatal("short job did not backfill ahead of the head")
	}
	if outHead.StartedAt != epoch.Add(10*time.Minute) {
		t.Fatalf("head start delayed to %v, want t+10m", outHead.StartedAt)
	}
	if outLong.StartedAt.Before(outHead.StartedAt) {
		t.Fatal("long job jumped the head despite overlapping its reservation")
	}
}

func TestBackfillUsesExtraCPUsAtShadow(t *testing.T) {
	s, _ := schedSite(t, Backfill, 8)
	// Running: 6 CPUs for 10 minutes → free 2.
	s.Submit(pjob("running", 6, 10*time.Minute, 0))
	// Head needs 4: shadow at t+10m with extra = (2+6)-4 = 4.
	s.Submit(pjob("head", 4, time.Minute, 0))
	// A long 2-CPU job fits in the extra even at shadow → backfills
	// although it outlives the reservation.
	s.Submit(pjob("long-small", 2, time.Hour, 0))
	if st := s.Snapshot(); st.Running != 2 || st.FreeCPUs != 0 {
		t.Fatalf("extra-CPU backfill did not happen: %+v", st)
	}
}

func TestBackfillEqualsFIFOWhenEverythingFits(t *testing.T) {
	for _, pol := range []SchedulerPolicy{FIFO, Backfill, Priority} {
		s, clock := schedSite(t, pol, 16)
		var tickets []*Ticket
		for i := 0; i < 5; i++ {
			tk, err := s.Submit(pjob(string(rune('a'+i)), 2, time.Minute, i))
			if err != nil {
				t.Fatal(err)
			}
			tickets = append(tickets, tk)
		}
		clock.Advance(time.Minute)
		for _, tk := range tickets {
			out := <-tk.Done()
			if out.QTime() != 0 {
				t.Fatalf("%s: job queued despite free capacity", pol)
			}
		}
	}
}

func TestBackfillImprovesUtilizationOverFIFO(t *testing.T) {
	run := func(pol SchedulerPolicy) time.Duration {
		s, clock := schedSite(t, pol, 4)
		s.Submit(pjob("r", 2, 10*time.Minute, 0))
		s.Submit(pjob("head", 4, time.Minute, 0))
		var smalls []*Ticket
		for i := 0; i < 4; i++ {
			tk, _ := s.Submit(pjob(string(rune('a'+i)), 1, 5*time.Minute, 0))
			smalls = append(smalls, tk)
		}
		clock.Advance(time.Hour)
		var sum time.Duration
		for _, tk := range smalls {
			out := <-tk.Done()
			sum += out.QTime()
		}
		return sum
	}
	fifo := run(FIFO)
	bf := run(Backfill)
	if bf >= fifo {
		t.Fatalf("backfill total small-job wait %v not better than FIFO %v", bf, fifo)
	}
}

func TestUnknownSchedulerRejected(t *testing.T) {
	clock := vtime.NewManual(epoch)
	if _, err := NewSite(SiteConfig{Name: "x", Clusters: []int{1}, Scheduler: "lottery"}, clock); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}
