// Package grid emulates the computing grid DI-GRUBER brokers over: sites
// composed of clusters of CPUs, each with a FIFO site scheduler, plus the
// job lifecycle the paper models — submitted by a user to a submission
// host, submitted by the host to a site (queued or held), running at the
// site, completed.
//
// The emulated environment stands in for the paper's PlanetLab-hosted
// emulation of a grid ten times larger than Grid3/OSG (hundreds of sites,
// tens of thousands of CPUs). The grid is also the metrics oracle: actual
// free CPUs per site (for scheduling Accuracy), consumed CPU-time (for
// Utilization) and per-job queue times (for QTime) are all measured here.
package grid

import (
	"fmt"
	"time"

	"digruber/internal/usla"
)

// JobID uniquely identifies a job across the whole emulation.
type JobID string

// Job is one unit of work. The paper's workloads are single-CPU jobs
// submitted at a constant rate by each submission host.
type Job struct {
	ID JobID
	// Owner is the consumer path (vo or vo.group or vo.group.user) the
	// job's resource usage is charged to.
	Owner usla.Path
	// CPUs is how many processors the job occupies while running.
	CPUs int
	// Priority orders jobs under the Priority site scheduler (higher
	// starts first); the paper's workloads mix "work of varying
	// priority".
	Priority int
	// Runtime is how long the job runs once started.
	Runtime time.Duration
	// InputBytes and OutputBytes size the stage-in/stage-out transfers
	// Euryale performs around the job.
	InputBytes  int64
	OutputBytes int64
	// SubmitHost is the submission host ("client") the job came from.
	SubmitHost string
}

// Validate checks job fields.
func (j *Job) Validate() error {
	if j.ID == "" {
		return fmt.Errorf("grid: job with empty ID")
	}
	if j.Owner.VO == "" {
		return fmt.Errorf("grid: job %s has no owner VO", j.ID)
	}
	if j.CPUs <= 0 {
		return fmt.Errorf("grid: job %s requests %d CPUs", j.ID, j.CPUs)
	}
	if j.Runtime <= 0 {
		return fmt.Errorf("grid: job %s has non-positive runtime", j.ID)
	}
	return nil
}

// State is a job's position in the paper's four-state lifecycle.
type State int

// Job states.
const (
	// Submitted: created at a submission host, not yet sent to a site.
	Submitted State = iota
	// Queued: at a site, waiting for (or held before) CPUs.
	Queued
	// Running: occupying CPUs at a site.
	Running
	// Completed: finished successfully.
	Completed
	// Failed: terminated unsuccessfully (site failure injection).
	Failed
)

// String names the state.
func (s State) String() string {
	switch s {
	case Submitted:
		return "submitted"
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Outcome describes a finished job.
type Outcome struct {
	Job  *Job
	Site string
	// QueuedAt is when the site accepted the job.
	QueuedAt time.Time
	// StartedAt is when CPUs were assigned (zero if it never ran).
	StartedAt time.Time
	// FinishedAt is when the job completed or failed.
	FinishedAt time.Time
	// Failed reports unsuccessful termination.
	Failed bool
	// FailureReason explains a failure.
	FailureReason string
}

// QTime is the paper's per-job queue time: from dispatch to the site
// until execution start. Failed-before-start jobs report the full span to
// failure.
func (o Outcome) QTime() time.Duration {
	if o.StartedAt.IsZero() {
		return o.FinishedAt.Sub(o.QueuedAt)
	}
	return o.StartedAt.Sub(o.QueuedAt)
}
