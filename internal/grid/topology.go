package grid

import (
	"fmt"
	"math"

	"digruber/internal/netsim"
	"digruber/internal/vtime"
)

// TopologyConfig shapes a generated grid. The defaults reproduce the
// paper's emulated environment: a grid "approximately ten times larger
// than Grid3 today", i.e. on the order of 300 sites and 30,000 CPUs,
// with site sizes following Grid3's skew — a few large centers and a
// long tail of small sites.
type TopologyConfig struct {
	Seed int64
	// Sites is the number of sites to generate.
	Sites int
	// TotalCPUs is the approximate total capacity; per-site counts are
	// sampled log-normally and rescaled to hit this within rounding.
	TotalCPUs int
	// SizeSigma controls the skew of site sizes (log-normal sigma).
	SizeSigma float64
	// MaxClusterCPUs splits big sites into clusters of at most this many
	// CPUs (the paper notes sites comprise one or more clusters).
	MaxClusterCPUs int
	// FailProb is per-site failure-injection probability (0 in the
	// paper's scalability runs; non-zero for Euryale re-planning tests).
	FailProb float64
}

// Grid3Times10 is the paper's headline environment.
func Grid3Times10() TopologyConfig {
	return TopologyConfig{
		Seed:           1,
		Sites:          300,
		TotalCPUs:      30000,
		SizeSigma:      1.0,
		MaxClusterCPUs: 512,
	}
}

// Grid3 approximates the 2005 Grid3/OSG deployment itself (tens of
// sites, thousands of CPUs) for the smaller-scale comparisons.
func Grid3() TopologyConfig {
	return TopologyConfig{
		Seed:           1,
		Sites:          30,
		TotalCPUs:      3000,
		SizeSigma:      1.0,
		MaxClusterCPUs: 512,
	}
}

// Generate builds a grid per the config. Site names are site-000…; every
// site gets at least one CPU.
func Generate(cfg TopologyConfig, clock vtime.Clock) (*Grid, error) {
	if cfg.Sites <= 0 || cfg.TotalCPUs < cfg.Sites {
		return nil, fmt.Errorf("grid: bad topology: %d sites, %d cpus", cfg.Sites, cfg.TotalCPUs)
	}
	rng := netsim.Stream(cfg.Seed, "grid.topology")

	// Sample raw log-normal weights, then rescale to the target total.
	weights := make([]float64, cfg.Sites)
	var sum float64
	for i := range weights {
		weights[i] = math.Exp(rng.NormFloat64() * cfg.SizeSigma)
		sum += weights[i]
	}
	sizes := make([]int, cfg.Sites)
	assigned := 0
	for i, w := range weights {
		n := int(math.Round(w / sum * float64(cfg.TotalCPUs)))
		if n < 1 {
			n = 1
		}
		sizes[i] = n
		assigned += n
	}
	// Redistribute rounding drift so the total lands exactly on target:
	// shrink the largest sites (never below one CPU) or grow the largest
	// site until the sum matches.
	largestIdx := func() int {
		l := 0
		for i, n := range sizes {
			if n > sizes[l] {
				l = i
			}
		}
		return l
	}
	for assigned > cfg.TotalCPUs {
		i := largestIdx()
		if sizes[i] <= 1 {
			break // every site at the 1-CPU floor; target unreachable
		}
		take := assigned - cfg.TotalCPUs
		if max := sizes[i] - 1; take > max {
			take = max
		}
		sizes[i] -= take
		assigned -= take
	}
	if assigned < cfg.TotalCPUs {
		sizes[largestIdx()] += cfg.TotalCPUs - assigned
	}

	maxCluster := cfg.MaxClusterCPUs
	if maxCluster <= 0 {
		maxCluster = 1 << 30
	}
	g := New(clock)
	for i, n := range sizes {
		var clusters []int
		for n > 0 {
			c := n
			if c > maxCluster {
				c = maxCluster
			}
			clusters = append(clusters, c)
			n -= c
		}
		failRNG := netsim.Stream(cfg.Seed, fmt.Sprintf("grid.fail/site-%03d", i))
		_, err := g.AddSite(SiteConfig{
			Name:     fmt.Sprintf("site-%03d", i),
			Clusters: clusters,
			FailProb: cfg.FailProb,
			RNG:      failRNG,
		})
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}
