package grid

import (
	"testing"
	"time"

	"digruber/internal/netsim"
	"digruber/internal/usla"
	"digruber/internal/vtime"
)

var epoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)

func newTestSite(t *testing.T, cpus int) (*Site, *vtime.Manual) {
	t.Helper()
	clock := vtime.NewManual(epoch)
	s, err := NewSite(SiteConfig{Name: "s0", Clusters: []int{cpus}}, clock)
	if err != nil {
		t.Fatal(err)
	}
	return s, clock
}

func job(id string, owner string, cpus int, runtime time.Duration) *Job {
	return &Job{ID: JobID(id), Owner: usla.MustParsePath(owner), CPUs: cpus, Runtime: runtime}
}

func TestSiteRunsJobToCompletion(t *testing.T) {
	s, clock := newTestSite(t, 4)
	tk, err := s.Submit(job("j1", "atlas.higgs", 2, 10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	st := s.Snapshot()
	if st.FreeCPUs != 2 || st.Running != 1 {
		t.Fatalf("snapshot after start = %+v", st)
	}
	clock.Advance(10 * time.Minute)
	out := <-tk.Done()
	if out.Failed {
		t.Fatalf("job failed: %v", out.FailureReason)
	}
	if out.QTime() != 0 {
		t.Fatalf("QTime = %v, want 0 for immediate start", out.QTime())
	}
	if got := out.FinishedAt.Sub(out.QueuedAt); got != 10*time.Minute {
		t.Fatalf("makespan = %v", got)
	}
	if st := s.Snapshot(); st.FreeCPUs != 4 || st.Running != 0 {
		t.Fatalf("snapshot after finish = %+v", st)
	}
}

func TestSiteQueuesWhenFull(t *testing.T) {
	s, clock := newTestSite(t, 1)
	tk1, _ := s.Submit(job("j1", "atlas", 1, 5*time.Minute))
	tk2, _ := s.Submit(job("j2", "atlas", 1, 5*time.Minute))
	if st := s.Snapshot(); st.Queued != 1 || st.Running != 1 {
		t.Fatalf("snapshot = %+v", st)
	}
	clock.Advance(5 * time.Minute)
	<-tk1.Done()
	if st := s.Snapshot(); st.Queued != 0 || st.Running != 1 {
		t.Fatalf("after first finish: %+v", st)
	}
	clock.Advance(5 * time.Minute)
	out2 := <-tk2.Done()
	if out2.QTime() != 5*time.Minute {
		t.Fatalf("j2 QTime = %v, want 5m", out2.QTime())
	}
}

func TestFIFOOrder(t *testing.T) {
	s, clock := newTestSite(t, 1)
	var ticks []*Ticket
	for i := 0; i < 3; i++ {
		tk, _ := s.Submit(job(string(rune('a'+i)), "atlas", 1, time.Minute))
		ticks = append(ticks, tk)
	}
	clock.Advance(3 * time.Minute)
	var starts []time.Time
	for _, tk := range ticks {
		out := <-tk.Done()
		starts = append(starts, out.StartedAt)
	}
	if !(starts[0].Before(starts[1]) && starts[1].Before(starts[2])) {
		t.Fatalf("not FIFO: %v", starts)
	}
}

func TestUsageAccountingPerPrefix(t *testing.T) {
	s, clock := newTestSite(t, 10)
	s.Submit(job("j1", "atlas.higgs.alice", 2, time.Hour))
	s.Submit(job("j2", "atlas.higgs.bob", 3, time.Hour))
	s.Submit(job("j3", "atlas.susy", 1, time.Hour))
	s.Submit(job("j4", "cms", 4, time.Hour))
	if got := s.Usage(usla.MustParsePath("atlas")); got != 6 {
		t.Fatalf("atlas usage = %d, want 6", got)
	}
	if got := s.Usage(usla.MustParsePath("atlas.higgs")); got != 5 {
		t.Fatalf("atlas.higgs usage = %d, want 5", got)
	}
	if got := s.Usage(usla.MustParsePath("atlas.higgs.alice")); got != 2 {
		t.Fatalf("alice usage = %d", got)
	}
	if got := s.Usage(usla.MustParsePath("cms")); got != 4 {
		t.Fatalf("cms usage = %d", got)
	}
	clock.Advance(time.Hour)
	if got := s.Usage(usla.MustParsePath("atlas")); got != 0 {
		t.Fatalf("atlas usage after completion = %d, want 0", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, _ := newTestSite(t, 2)
	cases := []*Job{
		{ID: "", Owner: usla.MustParsePath("v"), CPUs: 1, Runtime: time.Minute},
		{ID: "x", CPUs: 1, Runtime: time.Minute},
		{ID: "x", Owner: usla.MustParsePath("v"), CPUs: 0, Runtime: time.Minute},
		{ID: "x", Owner: usla.MustParsePath("v"), CPUs: 1, Runtime: 0},
		{ID: "x", Owner: usla.MustParsePath("v"), CPUs: 3, Runtime: time.Minute}, // exceeds site
	}
	for i, j := range cases {
		if _, err := s.Submit(j); err == nil {
			t.Errorf("case %d: invalid job accepted", i)
		}
	}
}

func TestFailureInjection(t *testing.T) {
	clock := vtime.NewManual(epoch)
	s, err := NewSite(SiteConfig{
		Name: "flaky", Clusters: []int{100}, FailProb: 1.0,
		RNG: netsim.Stream(1, "test.fail"),
	}, clock)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := s.Submit(job("j1", "atlas", 1, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	out := <-tk.Done()
	if !out.Failed {
		t.Fatal("job should have failed with FailProb=1")
	}
	if st := s.Snapshot(); st.FreeCPUs != 100 {
		t.Fatalf("failed job leaked CPUs: %+v", st)
	}
	if acc := s.Accounting(); acc.FailedJobs != 1 || acc.CompletedJobs != 0 {
		t.Fatalf("accounting = %+v", acc)
	}
}

func TestOutcomeHandlerInvoked(t *testing.T) {
	s, clock := newTestSite(t, 1)
	got := make(chan Outcome, 1)
	s.SetOutcomeHandler(func(o Outcome) { got <- o })
	s.Submit(job("j1", "atlas", 1, time.Minute))
	clock.Advance(time.Minute)
	select {
	case o := <-got:
		if o.Job.ID != "j1" || o.Site != "s0" {
			t.Fatalf("outcome = %+v", o)
		}
	default:
		t.Fatal("handler not invoked")
	}
}

func TestUSLAPolicySPEP(t *testing.T) {
	clock := vtime.NewManual(epoch)
	ps := usla.NewPolicySet()
	entries, err := usla.ParseTextString("* atlas cpu 50+")
	if err != nil {
		t.Fatal(err)
	}
	ps.AddAll(entries)
	s, err := NewSite(SiteConfig{Name: "s", Clusters: []int{10}, Policy: USLAPolicy{Policies: ps}}, clock)
	if err != nil {
		t.Fatal(err)
	}
	// 5 CPUs = the 50% cap.
	if _, err := s.Submit(job("j1", "atlas", 5, time.Hour)); err != nil {
		t.Fatalf("within-cap job rejected: %v", err)
	}
	if _, err := s.Submit(job("j2", "atlas", 1, time.Hour)); err == nil {
		t.Fatal("over-cap job admitted")
	}
	// Another VO is unaffected.
	if _, err := s.Submit(job("j3", "cms", 5, time.Hour)); err != nil {
		t.Fatalf("other VO rejected: %v", err)
	}
}

func TestGridAggregation(t *testing.T) {
	clock := vtime.NewManual(epoch)
	g := New(clock)
	g.AddSite(SiteConfig{Name: "a", Clusters: []int{10}})
	g.AddSite(SiteConfig{Name: "b", Clusters: []int{20, 5}})
	if g.TotalCPUs() != 35 || g.NumSites() != 2 {
		t.Fatalf("total=%d sites=%d", g.TotalCPUs(), g.NumSites())
	}
	sa, _ := g.Site("a")
	sa.Submit(job("j1", "atlas", 4, time.Hour))
	if g.FreeCPUs() != 31 {
		t.Fatalf("free = %d, want 31", g.FreeCPUs())
	}
	if g.FreeCPUsAt("a") != 6 || g.FreeCPUsAt("b") != 25 || g.FreeCPUsAt("zzz") != 0 {
		t.Fatal("FreeCPUsAt wrong")
	}
	if _, err := g.AddSite(SiteConfig{Name: "a", Clusters: []int{1}}); err == nil {
		t.Fatal("duplicate site accepted")
	}
	snap := g.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "b" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestSiteCloseResolvesEverything(t *testing.T) {
	s, _ := newTestSite(t, 2)
	tRun, _ := s.Submit(job("running", "atlas", 2, time.Hour))
	tQueued, _ := s.Submit(job("queued", "atlas", 1, time.Hour))
	s.Close()
	for name, tk := range map[string]*Ticket{"running": tRun, "queued": tQueued} {
		select {
		case out := <-tk.Done():
			if !out.Failed || out.FailureReason != "site shut down" {
				t.Fatalf("%s outcome = %+v", name, out)
			}
		default:
			t.Fatalf("%s ticket not resolved by Close", name)
		}
	}
	if _, err := s.Submit(job("late", "atlas", 1, time.Minute)); err == nil {
		t.Fatal("submit after Close succeeded")
	}
	s.Close() // idempotent
	if st := s.Snapshot(); st.FreeCPUs != 2 || st.Running != 0 || st.Queued != 0 {
		t.Fatalf("post-close snapshot = %+v", st)
	}
}

func TestSiteCloseCancelsTimers(t *testing.T) {
	s, clock := newTestSite(t, 1)
	s.Submit(job("j", "atlas", 1, time.Minute))
	s.Close()
	// Advancing past the runtime must not resurrect accounting: the
	// timer was stopped and the running set cleared.
	clock.Advance(time.Hour)
	if acc := s.Accounting(); acc.CompletedJobs != 0 {
		t.Fatalf("cancelled job completed: %+v", acc)
	}
}

func TestGridShutdown(t *testing.T) {
	clock := vtime.NewManual(epoch)
	g := New(clock)
	g.AddSite(SiteConfig{Name: "a", Clusters: []int{2}})
	g.AddSite(SiteConfig{Name: "b", Clusters: []int{2}})
	sa, _ := g.Site("a")
	tk, _ := sa.Submit(job("x", "atlas", 1, time.Hour))
	g.Shutdown()
	select {
	case out := <-tk.Done():
		if !out.Failed {
			t.Fatal("job survived grid shutdown")
		}
	default:
		t.Fatal("ticket unresolved after shutdown")
	}
	if g.FreeCPUs() != 4 {
		t.Fatal("shutdown grid not idle")
	}
}

func TestUtilizationMetric(t *testing.T) {
	// 10 CPUs for 100s = 1000 cpu-s available; 250 cpu-s consumed → 25%.
	u := Utilization(250*time.Second, 10, 100*time.Second)
	if u < 0.2499 || u > 0.2501 {
		t.Fatalf("util = %v, want 0.25", u)
	}
	if Utilization(time.Second, 0, time.Second) != 0 {
		t.Fatal("zero-capacity util should be 0")
	}
}

func TestGenerateTopology(t *testing.T) {
	clock := vtime.NewManual(epoch)
	cfg := Grid3Times10()
	g, err := Generate(cfg, clock)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSites() != cfg.Sites {
		t.Fatalf("sites = %d, want %d", g.NumSites(), cfg.Sites)
	}
	total := g.TotalCPUs()
	if total < cfg.TotalCPUs*95/100 || total > cfg.TotalCPUs*105/100 {
		t.Fatalf("total CPUs = %d, want ≈%d", total, cfg.TotalCPUs)
	}
	// Skewed sizes: the largest site should dwarf the median.
	sizes := make([]int, 0, g.NumSites())
	maxSize := 0
	for _, s := range g.Sites() {
		sizes = append(sizes, s.TotalCPUs())
		if s.TotalCPUs() > maxSize {
			maxSize = s.TotalCPUs()
		}
		for _, c := range s.Clusters() {
			if c > cfg.MaxClusterCPUs {
				t.Fatalf("cluster of %d CPUs exceeds max %d", c, cfg.MaxClusterCPUs)
			}
		}
	}
	if maxSize < 5*(cfg.TotalCPUs/cfg.Sites) {
		t.Fatalf("largest site %d not skewed vs mean %d", maxSize, cfg.TotalCPUs/cfg.Sites)
	}
	_ = sizes
}

func TestGenerateDeterministic(t *testing.T) {
	clock := vtime.NewManual(epoch)
	g1, _ := Generate(Grid3(), clock)
	g2, _ := Generate(Grid3(), clock)
	s1, s2 := g1.Sites(), g2.Sites()
	for i := range s1 {
		if s1[i].TotalCPUs() != s2[i].TotalCPUs() {
			t.Fatal("topology generation not deterministic")
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	clock := vtime.NewManual(epoch)
	if _, err := Generate(TopologyConfig{Sites: 0, TotalCPUs: 10}, clock); err == nil {
		t.Fatal("zero sites accepted")
	}
	if _, err := Generate(TopologyConfig{Sites: 100, TotalCPUs: 10}, clock); err == nil {
		t.Fatal("fewer CPUs than sites accepted")
	}
}

func TestJobStateString(t *testing.T) {
	for st, want := range map[State]string{
		Submitted: "submitted", Queued: "queued", Running: "running",
		Completed: "completed", Failed: "failed", State(99): "state(99)",
	} {
		if st.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
}

func TestMultiCPUJobBlocksUntilEnoughFree(t *testing.T) {
	s, clock := newTestSite(t, 4)
	s.Submit(job("small", "atlas", 3, 10*time.Minute))
	tkBig, _ := s.Submit(job("big", "atlas", 4, time.Minute))
	// FIFO head-of-line: big cannot start until small finishes.
	if st := s.Snapshot(); st.Running != 1 || st.Queued != 1 {
		t.Fatalf("snapshot = %+v", st)
	}
	clock.Advance(10 * time.Minute)
	clock.Advance(time.Minute)
	out := <-tkBig.Done()
	if out.QTime() != 10*time.Minute {
		t.Fatalf("big QTime = %v, want 10m", out.QTime())
	}
}
