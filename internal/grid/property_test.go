package grid

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"digruber/internal/usla"
	"digruber/internal/vtime"
)

// TestPropertySiteConservation drives random job mixes through a site
// and checks the invariants the brokering layer relies on: free CPUs
// never negative or above capacity, per-path usage sums consistently,
// and everything returns to idle after all jobs finish.
func TestPropertySiteConservation(t *testing.T) {
	f := func(sizesRaw []uint8, seed int64) bool {
		if len(sizesRaw) == 0 {
			return true
		}
		if len(sizesRaw) > 40 {
			sizesRaw = sizesRaw[:40]
		}
		clock := vtime.NewManual(epoch)
		site, err := NewSite(SiteConfig{Name: "p", Clusters: []int{64}}, clock)
		if err != nil {
			return false
		}
		vos := []string{"a", "b.g1", "c.g2.u3"}
		for i, raw := range sizesRaw {
			cpus := 1 + int(raw%8)
			runtime := time.Duration(1+raw%5) * time.Minute
			j := &Job{
				ID:      JobID(fmt.Sprintf("p%d", i)),
				Owner:   usla.MustParsePath(vos[i%len(vos)]),
				CPUs:    cpus,
				Runtime: runtime,
			}
			if _, err := site.Submit(j); err != nil {
				return false
			}
			// Invariants hold at every step.
			st := site.Snapshot()
			if st.FreeCPUs < 0 || st.FreeCPUs > st.TotalCPUs {
				return false
			}
			used := 0
			for _, s := range []string{"a", "b", "c"} {
				used += st.UsageByPath[s]
			}
			if used != st.TotalCPUs-st.FreeCPUs {
				return false
			}
			clock.Advance(30 * time.Second)
		}
		// Drain everything.
		clock.Advance(time.Hour)
		st := site.Snapshot()
		if st.FreeCPUs != st.TotalCPUs || st.Running != 0 || st.Queued != 0 {
			return false
		}
		if len(st.UsageByPath) != 0 {
			return false
		}
		acc := site.Accounting()
		return acc.CompletedJobs == len(sizesRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTopologyTotals checks the generator across random shapes:
// exact site count, near-exact CPU total, all clusters within bounds.
func TestPropertyTopologyTotals(t *testing.T) {
	f := func(seed int64, sitesRaw, cpuRaw uint8) bool {
		sites := 1 + int(sitesRaw%60)
		total := sites + int(cpuRaw)*20
		g, err := Generate(TopologyConfig{
			Seed: seed, Sites: sites, TotalCPUs: total, SizeSigma: 1, MaxClusterCPUs: 128,
		}, vtime.NewManual(epoch))
		if err != nil {
			return false
		}
		if g.NumSites() != sites {
			return false
		}
		got := g.TotalCPUs()
		// Within 10% (rounding of tiny weights can drift small totals).
		if got < total*90/100 || got > total*110/100 {
			return false
		}
		for _, s := range g.Sites() {
			if s.TotalCPUs() < 1 {
				return false
			}
			for _, c := range s.Clusters() {
				if c < 1 || c > 128 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
