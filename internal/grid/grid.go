package grid

import (
	"fmt"
	"sort"
	"time"

	"digruber/internal/vtime"
)

// Grid aggregates the sites of one emulated environment. It is the
// ground-truth oracle behind the paper's Accuracy and Utilization
// metrics.
type Grid struct {
	clock vtime.Clock
	sites map[string]*Site
	order []string
}

// New returns an empty grid on the given clock.
func New(clock vtime.Clock) *Grid {
	return &Grid{clock: clock, sites: make(map[string]*Site)}
}

// AddSite creates and registers a site.
func (g *Grid) AddSite(cfg SiteConfig) (*Site, error) {
	if _, exists := g.sites[cfg.Name]; exists {
		return nil, fmt.Errorf("grid: duplicate site %q", cfg.Name)
	}
	s, err := NewSite(cfg, g.clock)
	if err != nil {
		return nil, err
	}
	g.sites[cfg.Name] = s
	g.order = append(g.order, cfg.Name)
	return s, nil
}

// Site looks a site up by name.
func (g *Grid) Site(name string) (*Site, bool) {
	s, ok := g.sites[name]
	return s, ok
}

// Sites returns all sites in registration order.
func (g *Grid) Sites() []*Site {
	out := make([]*Site, len(g.order))
	for i, name := range g.order {
		out[i] = g.sites[name]
	}
	return out
}

// SiteNames returns the registered site names in order.
func (g *Grid) SiteNames() []string { return append([]string(nil), g.order...) }

// NumSites reports the number of sites.
func (g *Grid) NumSites() int { return len(g.order) }

// TotalCPUs sums capacity over all sites.
func (g *Grid) TotalCPUs() int {
	total := 0
	for _, s := range g.sites {
		total += s.total
	}
	return total
}

// FreeCPUs sums currently free CPUs over all sites — the denominator of
// the paper's per-job scheduling accuracy.
func (g *Grid) FreeCPUs() int {
	free := 0
	for _, name := range g.order {
		s := g.sites[name]
		s.mu.Lock()
		free += s.free
		s.mu.Unlock()
	}
	return free
}

// FreeCPUsAt reports one site's free CPUs (0 for unknown sites).
func (g *Grid) FreeCPUsAt(name string) int {
	s, ok := g.sites[name]
	if !ok {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.free
}

// Snapshot returns every site's status, sorted by name.
func (g *Grid) Snapshot() []Status {
	out := make([]Status, 0, len(g.sites))
	for _, name := range g.order {
		out = append(out, g.sites[name].Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetOutcomeHandler installs one handler on every site.
func (g *Grid) SetOutcomeHandler(f func(Outcome)) {
	for _, name := range g.order {
		g.sites[name].SetOutcomeHandler(f)
	}
}

// Utilization computes the paper's Util metric over an observation
// window: CPU-time delivered to completed jobs divided by total CPU-time
// available (capacity × elapsed). Callers snapshot ConsumedCPU at window
// start and pass the delta.
func Utilization(consumed time.Duration, totalCPUs int, elapsed time.Duration) float64 {
	if totalCPUs <= 0 || elapsed <= 0 {
		return 0
	}
	return consumed.Seconds() / (float64(totalCPUs) * elapsed.Seconds())
}

// Shutdown closes every site (see Site.Close). Call at the end of an
// emulation so no timers or queued work outlive it.
func (g *Grid) Shutdown() {
	for _, name := range g.order {
		g.sites[name].Close()
	}
}

// ConsumedCPU sums delivered CPU-time across all sites.
func (g *Grid) ConsumedCPU() time.Duration {
	var total time.Duration
	for _, name := range g.order {
		total += g.sites[name].Accounting().ConsumedCPU
	}
	return total
}

// CompletedJobs sums completed jobs across all sites.
func (g *Grid) CompletedJobs() int {
	n := 0
	for _, name := range g.order {
		n += g.sites[name].Accounting().CompletedJobs
	}
	return n
}
