package trace

import (
	"testing"
	"time"

	"digruber/internal/tsdb"
	"digruber/internal/vtime"
)

// TestDroppedGaugeTracksOverflow: once the collector's ring fills, the
// trace/dropped gauge counts every span the ring discarded — the
// metrics-plane tell that exemplar trace IDs may no longer resolve.
func TestDroppedGaugeTracksOverflow(t *testing.T) {
	clock := vtime.NewManual(epoch)
	col := NewCollector(2)
	reg := tsdb.New(0)
	col.RegisterMetrics(reg)
	tr := New(Config{Actor: "dp-0", Seed: 1, Clock: clock, Collector: col})

	reg.Sample(clock.Now())
	if p, ok := reg.Latest("trace/dropped"); !ok || p.V != 0 {
		t.Fatalf("pre-overflow trace/dropped = %+v, want 0", p)
	}

	for i := 0; i < 5; i++ {
		tr.StartTrace(PhaseSchedule).End()
	}
	clock.Advance(time.Second)
	reg.Sample(clock.Now())
	if p, ok := reg.Latest("trace/dropped"); !ok || p.V != 3 {
		t.Fatalf("post-overflow trace/dropped = %+v, want 3", p)
	}

	// Nil registry: registration is a no-op, not a panic.
	col.RegisterMetrics(nil)
}
