// Package trace is the reproduction's observability layer: span-based
// distributed tracing with per-phase latency attribution across the
// broker mesh. The paper's evaluation reports only end-to-end response
// and throughput curves; this package answers *why* a decision point
// saturates where it does — how much of each request went to the WAN,
// to the emulated GT3/GT4 stack, to server-side queueing, and to the
// GRUBER engine itself.
//
// The design follows the repo's determinism rules (DESIGN.md §6):
//
//   - Timestamps come exclusively from a vtime.Clock, never the wall
//     clock, so spans live on the same virtual timeline as the
//     measurements they explain.
//   - Span and trace IDs are drawn from a named netsim.Stream per
//     tracer, so a traced run under a Manual clock produces a
//     byte-identical trace for the same seed (given deterministic call
//     order, which Manual-clock tests arrange).
//   - A nil *Tracer is fully usable: every method is a no-op on a nil
//     receiver and allocates nothing, so instrumented hot paths cost a
//     single pointer test when tracing is disabled.
//
// Context propagates in-process as a SpanContext value and across the
// emulated wire inside the RPC envelope (see internal/wire), exactly as
// real tracing systems piggyback on RPC metadata.
package trace

import (
	"sync"
	"time"

	"digruber/internal/netsim"
	"digruber/internal/vtime"
)

// Canonical span names for the instrumented request path. The analyzer
// treats names as opaque; these constants just keep the instrumenting
// packages and reports consistent.
const (
	// PhaseSchedule is the client-side root span of one scheduling
	// interaction (digruber.Client.Schedule); its duration equals the
	// Decision.Response the client reports.
	PhaseSchedule = "client.schedule"
	// PhaseQuery wraps the site-load query RPC (first round trip).
	PhaseQuery = "client.query"
	// PhaseSelect is the client-side site-selector run.
	PhaseSelect = "client.select"
	// PhaseReport wraps the dispatch-report RPC (second round trip).
	PhaseReport = "client.report"
	// PhaseFallback is the degradation path: random site selection after
	// the broker failed to answer.
	PhaseFallback = "client.fallback"

	// PhaseAttempt is one RPC attempt (wire.Client), including both WAN
	// directions and the wait for the server.
	PhaseAttempt = "wire.attempt"
	// PhaseBackoff is the pause between retry attempts.
	PhaseBackoff = "wire.backoff"
	// PhaseWANOut and PhaseWANIn are the emulated wide-area propagation
	// delays, one per direction.
	PhaseWANOut = "wan.out"
	PhaseWANIn  = "wan.in"

	// PhaseQueue is the server-side wait for a container worker.
	PhaseQueue = "server.queue"
	// PhaseHandle is the registered handler's execution.
	PhaseHandle = "server.handle"
	// PhaseStack is the emulated GT3/GT4 container cost (auth + SOAP +
	// marshalling, StackProfile.ServiceTime).
	PhaseStack = "server.stack"

	// PhaseEngineSelect is the GRUBER engine evaluating every site for a
	// query; PhaseEngineMerge folds a peer's dispatch batch in;
	// PhaseEngineRecord books a locally-brokered dispatch.
	PhaseEngineSelect = "engine.select"
	PhaseEngineMerge  = "engine.merge"
	PhaseEngineRecord = "engine.record"

	// PhaseMeshRound is one full exchange round (root span);
	// PhaseMeshExchange is the per-peer call within it, its Note naming
	// the peer — attributing staleness to propagation lag per peer.
	PhaseMeshRound    = "mesh.round"
	PhaseMeshExchange = "mesh.exchange"
)

// SpanContext identifies a position in a trace: the trace and the
// current span. The zero value means "untraced" and is safe to pass
// anywhere a context is expected.
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context belongs to a live trace.
func (c SpanContext) Valid() bool { return c.Trace != 0 }

// Config wires one Tracer. Every field is required; New returns nil
// (tracing disabled) when Clock or Collector is missing.
type Config struct {
	// Actor names the component recording spans (a decision point or
	// client identity); it is stamped on every record.
	Actor string
	// Seed derives the tracer's ID stream: netsim.Stream(Seed,
	// "trace.ids/"+Actor). Same seed, same actor, same call order →
	// identical IDs.
	Seed int64
	// Clock supplies every timestamp.
	Clock vtime.Clock
	// Collector receives finished spans.
	Collector *Collector
}

// Tracer creates spans for one actor. A nil *Tracer is valid and inert:
// all methods no-op, which is the disabled fast path.
type Tracer struct {
	actor string
	clock vtime.Clock
	col   *Collector

	mu  sync.Mutex
	ids interface{ Uint64() uint64 }
}

// New builds a tracer, or returns nil (disabled) if the config lacks a
// clock or collector.
func New(cfg Config) *Tracer {
	if cfg.Clock == nil || cfg.Collector == nil {
		return nil
	}
	return &Tracer{
		actor: cfg.Actor,
		clock: cfg.Clock,
		col:   cfg.Collector,
		ids:   netsim.Stream(cfg.Seed, "trace.ids/"+cfg.Actor),
	}
}

// id draws the next nonzero span/trace ID from the tracer's stream.
func (t *Tracer) id() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if v := t.ids.Uint64(); v != 0 {
			return v
		}
	}
}

// Span is one in-progress timed phase. A nil *Span is valid and inert.
type Span struct {
	t      *Tracer
	ctx    SpanContext
	parent uint64
	name   string
	note   string
	start  time.Time
}

// StartTrace opens a new trace with a root span of the given name.
// Returns nil when the tracer is nil.
func (t *Tracer) StartTrace(name string) *Span {
	if t == nil {
		return nil
	}
	return t.StartTraceAt(name, t.clock.Now())
}

// StartTraceAt is StartTrace with an explicit start time, for callers
// that must share one clock reading with their own bookkeeping.
func (t *Tracer) StartTraceAt(name string, at time.Time) *Span {
	if t == nil {
		return nil
	}
	id := t.id()
	return &Span{t: t, ctx: SpanContext{Trace: id, Span: t.id()}, name: name, start: at}
}

// StartSpan opens a child span under parent. Returns nil when the
// tracer is nil or the parent context is untraced — so instrumentation
// composes: an untraced request stays untraced through every layer.
func (t *Tracer) StartSpan(parent SpanContext, name string) *Span {
	if t == nil || !parent.Valid() {
		return nil
	}
	return t.StartSpanAt(parent, name, t.clock.Now())
}

// StartSpanAt is StartSpan with an explicit start time.
func (t *Tracer) StartSpanAt(parent SpanContext, name string, at time.Time) *Span {
	if t == nil || !parent.Valid() {
		return nil
	}
	return &Span{
		t:      t,
		ctx:    SpanContext{Trace: parent.Trace, Span: t.id()},
		parent: parent.Span,
		name:   name,
		start:  at,
	}
}

// RecordSpan records an already-elapsed phase (e.g. time spent waiting
// in a queue, measured after the fact) as a child of parent.
func (t *Tracer) RecordSpan(parent SpanContext, name string, start, end time.Time) {
	if t == nil || !parent.Valid() {
		return
	}
	if end.Before(start) {
		end = start
	}
	t.col.add(Record{
		Trace:    parent.Trace,
		Span:     t.id(),
		Parent:   parent.Span,
		Name:     name,
		Actor:    t.actor,
		Start:    start,
		Duration: end.Sub(start),
	})
}

// Context returns the span's identity for propagation (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// SetNote attaches a short annotation (a method name, a peer, a job ID).
func (s *Span) SetNote(note string) {
	if s != nil {
		s.note = note
	}
}

// End closes the span at the tracer's current clock reading.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.t.clock.Now())
}

// EndAt closes the span at an explicit time and emits its record.
func (s *Span) EndAt(now time.Time) {
	if s == nil {
		return
	}
	if now.Before(s.start) {
		now = s.start
	}
	s.t.col.add(Record{
		Trace:    s.ctx.Trace,
		Span:     s.ctx.Span,
		Parent:   s.parent,
		Name:     s.name,
		Actor:    s.t.actor,
		Note:     s.note,
		Start:    s.start,
		Duration: now.Sub(s.start),
	})
}
