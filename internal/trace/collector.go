package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Record is one finished span, the unit the collector stores and the
// JSONL sink serializes. Start is virtual time (the experiment clock).
type Record struct {
	Trace    uint64        `json:"trace"`
	Span     uint64        `json:"span"`
	Parent   uint64        `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Actor    string        `json:"actor,omitempty"`
	Note     string        `json:"note,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"dur_ns"`
}

// End is the span's end time.
func (r Record) End() time.Time { return r.Start.Add(r.Duration) }

// DefaultCollectorLimit bounds a collector that was given no explicit
// limit: a bench-scale traced run emits on the order of 10^5 spans, so
// half a million leaves ample headroom without letting a runaway full
// -scale run exhaust memory.
const DefaultCollectorLimit = 1 << 19

// Collector is a bounded in-memory span sink shared by every tracer of
// a run. When the bound is reached further records are dropped (and
// counted) rather than growing without limit — the same trade a
// production tracing agent makes.
type Collector struct {
	mu      sync.Mutex
	limit   int
	records []Record
	dropped int64
}

// NewCollector returns a collector bounded at limit records (<= 0 uses
// DefaultCollectorLimit).
func NewCollector(limit int) *Collector {
	if limit <= 0 {
		limit = DefaultCollectorLimit
	}
	return &Collector{limit: limit}
}

// add appends a record, dropping when full.
func (c *Collector) add(r Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.records) >= c.limit {
		c.dropped++
		return
	}
	c.records = append(c.records, r)
}

// Records returns a copy of everything collected, in completion order.
func (c *Collector) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Record(nil), c.records...)
}

// Len reports how many records are held.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// Dropped reports how many records the bound discarded.
func (c *Collector) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Reset discards all held records and the drop count.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.records = nil
	c.dropped = 0
}

// WriteJSONL streams the collected records to w, one JSON object per
// line — the interchange format cmd/digruber-trace reads.
func (c *Collector) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range c.Records() {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("trace: write jsonl: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses records written by WriteJSONL. Blank lines are
// skipped; any malformed line is an error.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("trace: read jsonl line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read jsonl: %w", err)
	}
	return out, nil
}
