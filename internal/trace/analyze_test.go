package trace

import (
	"testing"
	"time"
)

// rec builds a Record on the shared test epoch.
func rec(trace, span, parent uint64, name string, startSec, durSec int) Record {
	return Record{
		Trace:    trace,
		Span:     span,
		Parent:   parent,
		Name:     name,
		Start:    epoch.Add(time.Duration(startSec) * time.Second),
		Duration: time.Duration(durSec) * time.Second,
	}
}

func TestBuildTreesAssemblesAndSorts(t *testing.T) {
	// Two traces, records deliberately out of order.
	records := []Record{
		rec(2, 20, 0, PhaseSchedule, 5, 4),
		rec(1, 11, 10, PhaseQuery, 1, 2),
		rec(1, 10, 0, PhaseSchedule, 0, 4),
		rec(1, 12, 11, PhaseAttempt, 1, 1),
		rec(2, 21, 20, PhaseQuery, 6, 1),
	}
	trees := BuildTrees(records)
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2", len(trees))
	}
	if trees[0].Root.Trace != 1 || trees[1].Root.Trace != 2 {
		t.Fatalf("trees not sorted by root start: %d then %d", trees[0].Root.Trace, trees[1].Root.Trace)
	}
	if trees[0].Spans != 3 || trees[1].Spans != 2 {
		t.Errorf("span counts %d/%d, want 3/2", trees[0].Spans, trees[1].Spans)
	}
	q := trees[0].Root.Children[0]
	if q.Span != 11 || len(q.Children) != 1 || q.Children[0].Span != 12 {
		t.Errorf("nesting wrong: %+v", q)
	}
}

func TestBuildTreesOrphanBecomesRoot(t *testing.T) {
	// A server-side span whose client root was never collected (the
	// client timed out and its process exited before ending the root).
	trees := BuildTrees([]Record{rec(1, 5, 99, PhaseHandle, 0, 1)})
	if len(trees) != 1 || trees[0].Root.Name != PhaseHandle {
		t.Fatalf("orphan not promoted to root: %+v", trees)
	}
}

func TestFilterRoots(t *testing.T) {
	trees := BuildTrees([]Record{
		rec(1, 1, 0, PhaseSchedule, 0, 1),
		rec(2, 2, 0, PhaseMeshRound, 0, 1),
	})
	if got := FilterRoots(trees, PhaseSchedule); len(got) != 1 || got[0].Root.Name != PhaseSchedule {
		t.Errorf("FilterRoots(schedule) = %+v", got)
	}
	if got := FilterRoots(trees, "nope"); len(got) != 0 {
		t.Errorf("FilterRoots(nope) = %+v", got)
	}
}

func TestExclusiveTelescopes(t *testing.T) {
	// root [0,10): query [1,4) with nested attempt [2,4); report [5,7).
	trees := BuildTrees([]Record{
		rec(1, 1, 0, PhaseSchedule, 0, 10),
		rec(1, 2, 1, PhaseQuery, 1, 3),
		rec(1, 3, 2, PhaseAttempt, 2, 2),
		rec(1, 4, 1, PhaseReport, 5, 2),
	})
	excl, residual := trees[0].Exclusive()
	want := map[string]time.Duration{
		PhaseSchedule: 5 * time.Second, // 10 - 3 - 2
		PhaseQuery:    1 * time.Second, // 3 - 2
		PhaseAttempt:  2 * time.Second,
		PhaseReport:   2 * time.Second,
	}
	for name, d := range want {
		if excl[name] != d {
			t.Errorf("exclusive[%s] = %v, want %v", name, excl[name], d)
		}
	}
	if residual != 0 {
		t.Errorf("residual %v, want 0", residual)
	}
	var sum time.Duration
	for _, d := range excl {
		sum += d
	}
	if sum != trees[0].Duration() {
		t.Errorf("phases sum to %v, root is %v", sum, trees[0].Duration())
	}
}

func TestExclusiveClipsChildToParentWindow(t *testing.T) {
	// The server finished its handler 20s after the client's root span
	// ended (client timeout): the overhang must not count.
	trees := BuildTrees([]Record{
		rec(1, 1, 0, PhaseSchedule, 0, 10),
		rec(1, 2, 1, PhaseHandle, 5, 25), // runs to t=30, clipped at t=10
	})
	excl, residual := trees[0].Exclusive()
	if excl[PhaseHandle] != 5*time.Second {
		t.Errorf("clipped handle time %v, want 5s", excl[PhaseHandle])
	}
	if excl[PhaseSchedule] != 5*time.Second || residual != 0 {
		t.Errorf("root exclusive %v residual %v, want 5s and 0", excl[PhaseSchedule], residual)
	}
}

func TestPhaseBreakdownSharesAndOrder(t *testing.T) {
	trees := BuildTrees([]Record{
		// tree 1: 6s queue + 2s handle + 2s root slack
		rec(1, 1, 0, PhaseSchedule, 0, 10),
		rec(1, 2, 1, PhaseQueue, 0, 6),
		rec(1, 3, 1, PhaseHandle, 6, 2),
		// tree 2: 4s queue + 1s root slack
		rec(2, 4, 0, PhaseSchedule, 0, 5),
		rec(2, 5, 4, PhaseQueue, 0, 4),
	})
	phases := PhaseBreakdown(trees)
	if len(phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(phases))
	}
	if phases[0].Name != PhaseQueue {
		t.Fatalf("largest phase is %q, want %s", phases[0].Name, PhaseQueue)
	}
	q := phases[0]
	if q.Spans != 2 || q.Trees != 2 || q.Total != 10*time.Second {
		t.Errorf("queue stat %+v", q)
	}
	if q.Mean != 5*time.Second || q.Max != 6*time.Second {
		t.Errorf("queue mean/max %v/%v, want 5s/6s", q.Mean, q.Max)
	}
	var share float64
	for _, p := range phases {
		share += p.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("shares sum to %v, want 1", share)
	}
	// Grand total across phases equals summed root durations.
	var grand time.Duration
	for _, p := range phases {
		grand += p.Total
	}
	if grand != 15*time.Second {
		t.Errorf("grand total %v, want 15s", grand)
	}
}

func TestPhaseBreakdownEmpty(t *testing.T) {
	if got := PhaseBreakdown(nil); len(got) != 0 {
		t.Errorf("breakdown of nothing = %+v", got)
	}
}

func TestSlowestN(t *testing.T) {
	trees := BuildTrees([]Record{
		rec(1, 1, 0, PhaseSchedule, 0, 3),
		rec(2, 2, 0, PhaseSchedule, 1, 9),
		rec(3, 3, 0, PhaseSchedule, 2, 6),
	})
	slow := SlowestN(trees, 2)
	if len(slow) != 2 || slow[0].Root.Trace != 2 || slow[1].Root.Trace != 3 {
		t.Fatalf("SlowestN order wrong: %+v", slow)
	}
	if got := SlowestN(trees, 99); len(got) != 3 {
		t.Errorf("SlowestN over-asked returned %d", len(got))
	}
	// Input order must be untouched.
	if trees[0].Root.Trace != 1 {
		t.Error("SlowestN mutated its input")
	}
}
