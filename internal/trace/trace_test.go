package trace

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"digruber/internal/vtime"
)

var epoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)

func newTestTracer(t *testing.T, actor string, seed int64) (*Tracer, *vtime.Manual, *Collector) {
	t.Helper()
	clock := vtime.NewManual(epoch)
	col := NewCollector(0)
	tr := New(Config{Actor: actor, Seed: seed, Clock: clock, Collector: col})
	if tr == nil {
		t.Fatal("New returned nil for a complete config")
	}
	return tr, clock, col
}

func TestNewRejectsIncompleteConfig(t *testing.T) {
	clock := vtime.NewManual(epoch)
	if New(Config{Clock: clock}) != nil {
		t.Error("New without collector should disable tracing")
	}
	if New(Config{Collector: NewCollector(0)}) != nil {
		t.Error("New without clock should disable tracing")
	}
}

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	root := tr.StartTrace(PhaseSchedule)
	if root != nil {
		t.Fatal("nil tracer produced a span")
	}
	if ctx := root.Context(); ctx.Valid() {
		t.Errorf("nil span context should be invalid, got %+v", ctx)
	}
	// Every method must be callable on the nils.
	root.SetNote("ignored")
	root.End()
	root.EndAt(epoch)
	tr.StartSpan(root.Context(), PhaseQuery).End()
	tr.RecordSpan(root.Context(), PhaseQueue, epoch, epoch.Add(time.Second))
}

func TestDisabledPathDoesNotAllocate(t *testing.T) {
	var tr *Tracer
	ctx := SpanContext{}
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.StartTrace(PhaseSchedule)
		s.SetNote("job")
		c := tr.StartSpan(ctx, PhaseQuery)
		c.End()
		tr.RecordSpan(ctx, PhaseQueue, epoch, epoch)
		s.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocated %.1f times per op, want 0", allocs)
	}
}

func TestUntracedParentStaysUntraced(t *testing.T) {
	tr, _, col := newTestTracer(t, "dp-0", 1)
	if s := tr.StartSpan(SpanContext{}, PhaseQuery); s != nil {
		t.Error("span started under an untraced parent")
	}
	tr.RecordSpan(SpanContext{}, PhaseQueue, epoch, epoch.Add(time.Second))
	if col.Len() != 0 {
		t.Errorf("untraced work left %d records", col.Len())
	}
}

func TestSpanRecordsVirtualTime(t *testing.T) {
	tr, clock, col := newTestTracer(t, "dp-0", 1)
	root := tr.StartTrace(PhaseSchedule)
	root.SetNote("job-1")
	clock.Advance(2 * time.Second)
	child := tr.StartSpan(root.Context(), PhaseQuery)
	clock.Advance(3 * time.Second)
	child.End()
	clock.Advance(time.Second)
	root.End()

	recs := col.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	q, r := recs[0], recs[1]
	if q.Name != PhaseQuery || r.Name != PhaseSchedule {
		t.Fatalf("completion order wrong: %q then %q", q.Name, r.Name)
	}
	if q.Trace != r.Trace {
		t.Error("child lost its trace ID")
	}
	if q.Parent != r.Span {
		t.Errorf("child parent=%d, want root span %d", q.Parent, r.Span)
	}
	if !q.Start.Equal(epoch.Add(2*time.Second)) || q.Duration != 3*time.Second {
		t.Errorf("query span [%v +%v], want [epoch+2s +3s]", q.Start, q.Duration)
	}
	if !r.Start.Equal(epoch) || r.Duration != 6*time.Second {
		t.Errorf("root span [%v +%v], want [epoch +6s]", r.Start, r.Duration)
	}
	if r.Note != "job-1" || r.Actor != "dp-0" {
		t.Errorf("root note/actor = %q/%q", r.Note, r.Actor)
	}
	if got := q.End(); !got.Equal(epoch.Add(5 * time.Second)) {
		t.Errorf("Record.End = %v, want epoch+5s", got)
	}
}

func TestEndBeforeStartClampsToZero(t *testing.T) {
	tr, clock, col := newTestTracer(t, "dp-0", 1)
	clock.Advance(time.Minute)
	s := tr.StartTrace(PhaseSchedule)
	s.EndAt(epoch) // earlier than start
	tr.RecordSpan(s.Context(), PhaseQueue, epoch.Add(time.Minute), epoch)
	for _, r := range col.Records() {
		if r.Duration != 0 {
			t.Errorf("%s duration %v, want clamped 0", r.Name, r.Duration)
		}
	}
}

func TestIDsAreDeterministicPerSeedAndActor(t *testing.T) {
	draw := func(actor string, seed int64) []uint64 {
		tr, _, _ := newTestTracer(t, actor, seed)
		var ids []uint64
		for i := 0; i < 8; i++ {
			root := tr.StartTrace(PhaseSchedule)
			ids = append(ids, root.Context().Trace, root.Context().Span)
		}
		return ids
	}
	a, b := draw("dp-0", 42), draw("dp-0", 42)
	if !reflect.DeepEqual(a, b) {
		t.Error("same actor+seed produced different ID sequences")
	}
	if reflect.DeepEqual(a, draw("dp-1", 42)) {
		t.Error("different actors share an ID sequence")
	}
	if reflect.DeepEqual(a, draw("dp-0", 43)) {
		t.Error("different seeds share an ID sequence")
	}
	for _, id := range a {
		if id == 0 {
			t.Fatal("drew a zero ID")
		}
	}
}

func TestCollectorBoundDropsAndCounts(t *testing.T) {
	clock := vtime.NewManual(epoch)
	col := NewCollector(3)
	tr := New(Config{Actor: "dp-0", Seed: 1, Clock: clock, Collector: col})
	for i := 0; i < 5; i++ {
		tr.StartTrace(PhaseSchedule).End()
	}
	if col.Len() != 3 {
		t.Errorf("collector holds %d records, want bound 3", col.Len())
	}
	if col.Dropped() != 2 {
		t.Errorf("dropped=%d, want 2", col.Dropped())
	}
	col.Reset()
	if col.Len() != 0 || col.Dropped() != 0 {
		t.Error("Reset left state behind")
	}
	tr.StartTrace(PhaseSchedule).End()
	if col.Len() != 1 {
		t.Error("collector unusable after Reset")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr, clock, col := newTestTracer(t, "dp-0", 7)
	root := tr.StartTrace(PhaseSchedule)
	root.SetNote("job-9")
	clock.Advance(1500 * time.Millisecond)
	tr.StartSpan(root.Context(), PhaseQuery).End()
	root.End()

	var buf bytes.Buffer
	if err := col.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := col.Records()
	if len(got) != len(want) {
		t.Fatalf("round trip returned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if !g.Start.Equal(w.Start) {
			t.Errorf("record %d start %v != %v", i, g.Start, w.Start)
		}
		g.Start, w.Start = time.Time{}, time.Time{}
		if g != w {
			t.Errorf("record %d differs:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString("{\"trace\":1}\nnot json\n")); err == nil {
		t.Error("malformed line accepted")
	}
	recs, err := ReadJSONL(bytes.NewBufferString("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Errorf("blank input: recs=%v err=%v", recs, err)
	}
}
