package trace

import (
	"time"

	"digruber/internal/tsdb"
)

// RegisterMetrics exposes the collector's loss accounting on the
// metrics plane as the trace/dropped gauge — the count of spans the
// ring discarded after filling. A climbing series means the trace
// plane is lying by omission: exemplars may reference spans that no
// longer resolve, which is exactly when an operator needs to know.
// Nil-safe on both sides: a nil registry registers nothing.
func (c *Collector) RegisterMetrics(reg *tsdb.Registry) {
	reg.GaugeFunc("trace/dropped", func(now time.Time) float64 {
		return float64(c.Dropped())
	})
}
