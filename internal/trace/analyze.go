package trace

import (
	"sort"
	"time"

	"digruber/internal/stats"
)

// Node is one span with its children, sorted by start time.
type Node struct {
	Record
	Children []*Node
}

// Tree is one reassembled trace.
type Tree struct {
	Root *Node
	// Spans counts every node in the tree, root included.
	Spans int
}

// Duration is the root span's duration — the traced operation's
// end-to-end time.
func (t *Tree) Duration() time.Duration { return t.Root.Duration }

// BuildTrees reassembles span records into per-trace trees. Records may
// arrive in any order (the collector stores completion order). A span
// whose parent was never recorded — e.g. the far side of a timed-out
// call that outlived the run — becomes the root of its own tree, so
// nothing is silently lost. Trees are sorted by root start time (ties
// by trace then span ID); children by start time (ties by span ID).
func BuildTrees(records []Record) []*Tree {
	nodes := make(map[uint64]map[uint64]*Node) // trace → span → node
	for _, r := range records {
		byspan := nodes[r.Trace]
		if byspan == nil {
			byspan = make(map[uint64]*Node)
			nodes[r.Trace] = byspan
		}
		// Duplicate span IDs shouldn't happen; last write wins if they do.
		byspan[r.Span] = &Node{Record: r}
	}
	var trees []*Tree
	//lint:allow mapiter -- trees and children are fully sorted with total tie-breaks below
	for _, byspan := range nodes {
		var roots []*Node
		//lint:allow mapiter -- child and root order is erased by countAndSort and the trees sort
		for _, n := range byspan {
			if parent, ok := byspan[n.Parent]; ok && n.Parent != 0 && parent != n {
				parent.Children = append(parent.Children, n)
			} else {
				roots = append(roots, n)
			}
		}
		for _, root := range roots {
			t := &Tree{Root: root}
			t.Spans = countAndSort(root)
			trees = append(trees, t)
		}
	}
	sort.Slice(trees, func(i, j int) bool {
		ri, rj := trees[i].Root, trees[j].Root
		if !ri.Start.Equal(rj.Start) {
			return ri.Start.Before(rj.Start)
		}
		if ri.Trace != rj.Trace {
			return ri.Trace < rj.Trace
		}
		return ri.Span < rj.Span
	})
	return trees
}

func countAndSort(n *Node) int {
	sort.Slice(n.Children, func(i, j int) bool {
		if !n.Children[i].Start.Equal(n.Children[j].Start) {
			return n.Children[i].Start.Before(n.Children[j].Start)
		}
		return n.Children[i].Span < n.Children[j].Span
	})
	total := 1
	for _, c := range n.Children {
		total += countAndSort(c)
	}
	return total
}

// FilterRoots keeps trees whose root span has the given name — the way
// callers separate request traces (client.schedule) from mesh rounds.
func FilterRoots(trees []*Tree, name string) []*Tree {
	var out []*Tree
	for _, t := range trees {
		if t.Root.Name == name {
			out = append(out, t)
		}
	}
	return out
}

// Exclusive computes, per span name, the tree's self time: each span's
// duration minus its children's, every window clipped to its parent so
// a child that outlived its parent (a server finishing a call the
// client already timed out of) cannot inflate the total. The residual
// is the root duration minus the sum of all exclusive times; with the
// sequential instrumentation of this repo it is zero, and it can only
// become nonzero if sibling spans overlap (their clipped durations
// double-count the overlap, which the clamped subtraction then loses).
func (t *Tree) Exclusive() (map[string]time.Duration, time.Duration) {
	out := make(map[string]time.Duration)
	rootDur := clipWalk(t.Root, t.Root.Start, t.Root.End(), out)
	var sum time.Duration
	for _, d := range out {
		sum += d
	}
	return out, rootDur - sum
}

// clipWalk accumulates exclusive times for the subtree at n, with n's
// window clipped to [lo, hi]. It returns n's clipped duration.
func clipWalk(n *Node, lo, hi time.Time, out map[string]time.Duration) time.Duration {
	s, e := n.Start, n.End()
	if s.Before(lo) {
		s = lo
	}
	if e.After(hi) {
		e = hi
	}
	dur := e.Sub(s)
	if dur < 0 {
		dur = 0
	}
	var childSum time.Duration
	for _, c := range n.Children {
		childSum += clipWalk(c, s, e, out)
	}
	excl := dur - childSum
	if excl < 0 {
		excl = 0
	}
	out[n.Name] += excl
	return dur
}

// PhaseStat aggregates one span name's exclusive time across trees.
type PhaseStat struct {
	Name string
	// Spans counts span occurrences across all trees.
	Spans int
	// Trees counts trees in which the phase appears at all.
	Trees int
	// Total is summed exclusive time across all trees.
	Total time.Duration
	// Mean/P50/P95/P99/Max describe the per-tree exclusive time
	// distribution (over trees where the phase appears).
	Mean time.Duration
	P50  time.Duration
	P95  time.Duration
	P99  time.Duration
	Max  time.Duration
	// Share is Total over the sum of every phase's Total.
	Share float64
}

// PhaseBreakdown computes the per-phase critical-path breakdown over a
// set of trees: where the end-to-end time of these operations actually
// went. Results are sorted by Total, descending (ties by name).
func PhaseBreakdown(trees []*Tree) []PhaseStat {
	perPhase := make(map[string][]float64) // seconds of exclusive time per tree
	spanCount := make(map[string]int)
	for _, t := range trees {
		excl, _ := t.Exclusive()
		//lint:allow mapiter -- group-by into perPhase: one append per key per tree, so per-key order follows the tree slice
		for name, d := range excl {
			perPhase[name] = append(perPhase[name], d.Seconds())
		}
		countSpans(t.Root, spanCount)
	}
	var grand time.Duration
	out := make([]PhaseStat, 0, len(perPhase))
	//lint:allow mapiter -- grand is an integer-duration sum and out is sorted by (Total, name) below
	for name, secs := range perPhase {
		var total time.Duration
		var maxv float64
		for _, s := range secs {
			total += secsToDur(s)
			if s > maxv {
				maxv = s
			}
		}
		grand += total
		out = append(out, PhaseStat{
			Name:  name,
			Spans: spanCount[name],
			Trees: len(secs),
			Total: total,
			Mean:  secsToDur(stats.Mean(secs)),
			P50:   secsToDur(stats.Percentile(secs, 50)),
			P95:   secsToDur(stats.Percentile(secs, 95)),
			P99:   secsToDur(stats.Percentile(secs, 99)),
			Max:   secsToDur(maxv),
		})
	}
	for i := range out {
		if grand > 0 {
			out[i].Share = float64(out[i].Total) / float64(grand)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func countSpans(n *Node, counts map[string]int) {
	counts[n.Name]++
	for _, c := range n.Children {
		countSpans(c, counts)
	}
}

func secsToDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// SlowestN returns the n trees with the longest root durations, slowest
// first (ties broken by start time, then trace ID, for determinism).
func SlowestN(trees []*Tree, n int) []*Tree {
	sorted := append([]*Tree(nil), trees...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Duration() != sorted[j].Duration() {
			return sorted[i].Duration() > sorted[j].Duration()
		}
		if !sorted[i].Root.Start.Equal(sorted[j].Root.Start) {
			return sorted[i].Root.Start.Before(sorted[j].Root.Start)
		}
		return sorted[i].Root.Trace < sorted[j].Root.Trace
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}
