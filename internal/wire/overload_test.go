package wire

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"digruber/internal/vtime"
)

var overloadEpoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)

// waitUntil polls cond on real time (the conditions observe goroutine
// progress, not virtual time).
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestExpiredRequestNeverInvokesHandler is the stale-work guarantee: a
// request whose propagated deadline passes while it waits in the accept
// queue is dropped at dequeue — the handler never runs, no service time
// is charged, and the drop lands in the dedicated Expired stat rather
// than Completed or Failed.
func TestExpiredRequestNeverInvokesHandler(t *testing.T) {
	clock := vtime.NewReal()
	mem := NewMem()
	srv := NewServer("server-node", StackProfile{Name: "one", MaxConcurrent: 1}, clock)
	l, err := mem.Listen("dp-0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close(); l.Close() })
	cli := NewClient(ClientConfig{
		Node: "client-node", ServerNode: "server-node", Addr: "dp-0",
		Transport: mem, Clock: clock, PropagateDeadline: true,
	})
	t.Cleanup(cli.Close)

	release := make(chan struct{})
	Handle(srv, "slow", func(r echoReq) (echoResp, error) { <-release; return echoResp{}, nil })
	var fastCalls atomic.Int64
	Handle(srv, "fast", func(r echoReq) (echoResp, error) { fastCalls.Add(1); return echoResp{}, nil })

	// Occupy the single worker, so the next request has to queue.
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		if _, err := Call[echoReq, echoResp](cli, "slow", echoReq{}, time.Minute); err != nil {
			t.Errorf("slow call: %v", err)
		}
	}()
	waitUntil(t, "slow call in flight", func() bool { return srv.Stats().InFlight == 1 })

	// This request queues behind the blocked worker and its 30 ms
	// deadline passes before the worker frees; the caller sees its own
	// timeout, the server must see stale work.
	if _, err := Call[echoReq, echoResp](cli, "fast", echoReq{}, 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("queued call err = %v, want %v", err, ErrTimeout)
	}
	close(release)
	<-slowDone

	waitUntil(t, "expired drop", func() bool { return srv.Stats().Expired == 1 })
	if n := fastCalls.Load(); n != 0 {
		t.Fatalf("expired request invoked the handler %d time(s)", n)
	}
	st := srv.Stats()
	if st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want exactly the slow call completed and the expired one uncounted", st)
	}
}

// TestRetryBudgetTokenBucket pins the budget's vtime semantics: spend to
// empty, refill by elapsed virtual seconds, cap at burst, count denials.
func TestRetryBudgetTokenBucket(t *testing.T) {
	clock := vtime.NewManual(overloadEpoch)
	b := NewRetryBudget(clock, 1, 2)
	if !b.Allow() || !b.Allow() {
		t.Fatal("full bucket denied a retry")
	}
	if b.Allow() {
		t.Fatal("empty bucket allowed a retry")
	}
	if got := b.Throttled(); got != 1 {
		t.Fatalf("Throttled = %d, want 1", got)
	}
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("no refill after 1s at rate 1/s")
	}
	// A long idle stretch refills only to the burst cap.
	clock.Advance(time.Hour)
	if !b.Allow() || !b.Allow() {
		t.Fatal("bucket under burst cap after long idle")
	}
	if b.Allow() {
		t.Fatal("burst cap not enforced")
	}
	var nilB *RetryBudget
	if !nilB.Allow() || nilB.Throttled() != 0 {
		t.Fatal("nil budget must allow everything")
	}
}

// TestBreakerStateMachine walks the full closed → open → half-open
// cycle on a manual clock, checking that only Allow advances time-based
// transitions and that application-level errors reset the streak.
func TestBreakerStateMachine(t *testing.T) {
	clock := vtime.NewManual(overloadEpoch)
	var trans []string
	b := NewBreaker(BreakerConfig{
		Clock: clock, Threshold: 2, Cooldown: 10 * time.Second,
		OnTransition: func(from, to BreakerState) { trans = append(trans, from.String()+">"+to.String()) },
	})

	// Application errors come from a live server: they reset the streak.
	b.Record(ErrOverloaded)
	b.Record(errors.New("USLA violation"))
	b.Record(ErrOverloaded)
	if b.State() != BreakerClosed {
		t.Fatalf("state after interleaved app error = %v, want closed", b.State())
	}
	b.Record(ErrConnLost) // second consecutive transport failure: trip
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatalf("breaker not open after threshold (state %v)", b.State())
	}
	clock.Advance(9 * time.Second)
	if b.Allow() {
		t.Fatal("open breaker allowed before cooldown")
	}
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe denied")
	}
	if b.State() != BreakerHalfOpen || b.Allow() {
		t.Fatal("half-open must admit exactly one probe")
	}
	b.Record(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("probe success left state %v", b.State())
	}

	// Trip again; this time the probe fails and the cooldown restarts.
	b.Record(ErrTimeout)
	b.Record(ErrTimeout)
	clock.Advance(10 * time.Second)
	if !b.Allow() {
		t.Fatal("second cooldown probe denied")
	}
	b.Record(ErrTimeout)
	if b.State() != BreakerOpen {
		t.Fatalf("failed probe left state %v", b.State())
	}

	want := []string{"closed>open", "open>half-open", "half-open>closed",
		"closed>open", "open>half-open", "half-open>open"}
	if len(trans) != len(want) {
		t.Fatalf("transitions = %v, want %v", trans, want)
	}
	for i := range want {
		if trans[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", trans, want)
		}
	}

	var nilB *Breaker
	if !nilB.Allow() || nilB.State() != BreakerClosed {
		t.Fatal("nil breaker must allow everything")
	}
	nilB.Record(ErrTimeout)
}

// TestRetryBudgetGatesClientRetries: a client whose policy carries an
// exhausted budget stops retrying immediately and surfaces the original
// failure, counting the denial.
func TestRetryBudgetGatesClientRetries(t *testing.T) {
	clock := vtime.NewManual(overloadEpoch)
	metrics := NewClientMetrics()
	// No listener at the address: every attempt fast-fails with
	// FailureRefused (retryable). Burst 1, negligible refill: exactly one
	// retry may spend a token.
	cli := NewClient(ClientConfig{
		Node: "client-node", ServerNode: "server-node", Addr: "nowhere",
		Transport: NewMem(), Clock: clock, Metrics: metrics,
		Retry: RetryPolicy{Attempts: 4, Budget: NewRetryBudget(clock, 1e-9, 1)},
	})
	t.Cleanup(cli.Close)
	_, err := Call[echoReq, echoResp](cli, "echo", echoReq{}, time.Minute)
	if Classify(err) != FailureRefused {
		t.Fatalf("err = %v, want refused", err)
	}
	st := metrics.Stats()
	if st.Calls != 1 || st.Attempts != 2 || st.Retries != 1 || st.Throttled != 1 {
		t.Fatalf("stats = %+v, want 1 call, 2 attempts, 1 retry, 1 throttle", st)
	}
}

// TestReserveLaneIsolation: with every shared worker wedged by client
// traffic, a request on a lane-reserved method still completes — the
// mesh keeps converging while the container drowns.
func TestReserveLaneIsolation(t *testing.T) {
	clock := vtime.NewReal()
	mem := NewMem()
	srv := NewServer("server-node", StackProfile{Name: "one", MaxConcurrent: 1}, clock)
	srv.ReserveLane(1, 4, "mesh")
	l, err := mem.Listen("dp-0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close(); l.Close() })
	cli := NewClient(ClientConfig{
		Node: "client-node", ServerNode: "server-node", Addr: "dp-0",
		Transport: mem, Clock: clock,
	})
	t.Cleanup(cli.Close)

	release := make(chan struct{})
	Handle(srv, "busy", func(r echoReq) (echoResp, error) { <-release; return echoResp{}, nil })
	Handle(srv, "mesh", func(r echoReq) (echoResp, error) { return echoResp{Msg: "synced"}, nil })

	busyDone := make(chan struct{})
	go func() {
		defer close(busyDone)
		_, _ = Call[echoReq, echoResp](cli, "busy", echoReq{}, time.Minute)
	}()
	waitUntil(t, "busy call in flight", func() bool { return srv.Stats().InFlight == 1 })

	resp, err := Call[echoReq, echoResp](cli, "mesh", echoReq{}, 2*time.Second)
	if err != nil {
		t.Fatalf("lane call failed behind a saturated worker pool: %v", err)
	}
	if resp.Msg != "synced" {
		t.Fatalf("lane reply = %q", resp.Msg)
	}
	close(release)
	<-busyDone
}
