package wire

import (
	"errors"
	"testing"
	"time"

	"digruber/internal/trace"
	"digruber/internal/vtime"
)

// tracedPair is newPair plus a shared collector and tracers installed on
// both ends.
func tracedPair(t *testing.T) (*Server, *Client, *trace.Tracer, *trace.Collector) {
	t.Helper()
	clock := vtime.NewReal()
	col := trace.NewCollector(0)
	cliTracer := trace.New(trace.Config{Actor: "client-node", Seed: 1, Clock: clock, Collector: col})
	srvTracer := trace.New(trace.Config{Actor: "server-node", Seed: 2, Clock: clock, Collector: col})

	mem := NewMem()
	srv := NewServer("server-node", Instant(), clock)
	srv.SetTracer(srvTracer)
	l, err := mem.Listen("dp-0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close(); l.Close() })
	cli := NewClient(ClientConfig{
		Node: "client-node", ServerNode: "server-node",
		Addr: "dp-0", Transport: mem, Clock: clock, Tracer: cliTracer,
	})
	t.Cleanup(cli.Close)
	return srv, cli, cliTracer, col
}

func TestTraceContextPropagatesThroughRPC(t *testing.T) {
	srv, cli, tracer, col := tracedPair(t)
	ctxCh := make(chan Ctx, 1)
	HandleCtx(srv, "echo", func(ctx Ctx, r echoReq) (echoResp, error) {
		ctxCh <- ctx
		return echoResp(r), nil
	})

	root := tracer.StartTrace(trace.PhaseSchedule)
	resp, err := CallCtx[echoReq, echoResp](cli, root.Context(), "echo", echoReq{Msg: "traced"}, time.Second)
	root.End()
	if err != nil || resp.Msg != "traced" {
		t.Fatalf("call: %v %+v", err, resp)
	}

	got := <-ctxCh
	if got.Span.Trace != root.Context().Trace {
		t.Fatalf("handler saw trace %d, client sent %d", got.Span.Trace, root.Context().Trace)
	}
	if !got.Span.Valid() || got.Span.Span == root.Context().Span {
		t.Errorf("handler should run under its own server-side span, got %+v", got.Span)
	}

	names := map[string]string{} // name → actor
	for _, r := range col.Records() {
		if r.Trace == root.Context().Trace {
			names[r.Name] = r.Actor
		}
	}
	for name, actor := range map[string]string{
		trace.PhaseSchedule: "client-node",
		trace.PhaseAttempt:  "client-node",
		trace.PhaseHandle:   "server-node",
	} {
		if names[name] != actor {
			t.Errorf("span %q recorded by %q, want %q (all: %v)", name, names[name], actor, names)
		}
	}
}

func TestUntracedCallRecordsNothing(t *testing.T) {
	srv, cli, _, col := tracedPair(t)
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	if _, err := Call[echoReq, echoResp](cli, "echo", echoReq{Msg: "x"}, time.Second); err != nil {
		t.Fatal(err)
	}
	if n := col.Len(); n != 0 {
		t.Fatalf("untraced call left %d span records: %+v", n, col.Records())
	}
}

// TestFailureClassCounters pins down the shed / served / conn-lost
// partition: every request the server received is accounted for exactly
// once, and work finished for a hung-up caller is visible as ConnLost.
func TestFailureClassCounters(t *testing.T) {
	srv, cli := newPair(t, Instant(), nil, vtime.NewReal())
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	block := make(chan struct{})
	Handle(srv, "block", func(r echoReq) (echoResp, error) {
		<-block
		return echoResp(r), nil
	})

	for i := 0; i < 3; i++ {
		if _, err := Call[echoReq, echoResp](cli, "echo", echoReq{}, time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// The caller times out and hangs up while the handler is still
	// running; the computed response then has no connection to land on.
	_, err := Call[echoReq, echoResp](cli, "block", echoReq{}, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	cli.Close()
	close(block)
	waitForCond(t, func() bool { return srv.Stats().ConnLost >= 1 })

	st := srv.Stats()
	if st.ConnLost != 1 {
		t.Errorf("ConnLost = %d, want 1", st.ConnLost)
	}
	if st.Shed != 0 || st.Failed != 0 {
		t.Errorf("unexpected shed/failed: %+v", st)
	}
	if st.Completed != 4 {
		t.Errorf("Completed = %d, want 4 (3 served + 1 lost)", st.Completed)
	}
	if served := st.Completed - st.ConnLost; served != 3 {
		t.Errorf("served = %d, want 3", served)
	}
	if st.Received != st.Shed+st.Completed+st.Failed {
		t.Errorf("received %d != shed %d + completed %d + failed %d",
			st.Received, st.Shed, st.Completed, st.Failed)
	}
}
