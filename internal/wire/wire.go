// Package wire is the reproduction's stand-in for the Globus Toolkit web
// service stacks (GT3 and the GT4 prerelease) that DI-GRUBER was deployed
// on. It provides a small RPC system — length-delimited gob frames over
// either real TCP connections or in-process pipes — plus two pieces of
// deliberate emulation:
//
//   - a netsim-driven WAN delay on every message, standing in for
//     PlanetLab's wide-area links, and
//   - a StackProfile on the server standing in for the toolkit's
//     per-request costs (GSI authentication, SOAP processing, container
//     dispatch) and its limited request-processing concurrency. The paper
//     identifies exactly these as the factors limiting performance.
//
// Everything above this package (GRUBER engines, decision points, DiPerF
// testers) talks through Client.Call / Server handlers and never sees the
// emulation.
package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
)

// Errors surfaced by calls. The three failure sentinels distinguish what
// a caller can infer about the far end — the raw material for failover
// and retry decisions above this package:
//
//   - ErrRefused: the dial itself failed. Nothing is listening; retrying
//     immediately is cheap and a different replica is likely needed.
//   - ErrConnLost: an established connection died mid-call. The request
//     may or may not have executed; idempotent calls can retry.
//   - ErrTimeout: silence until the deadline. The server may be dead,
//     the link may be cut, or the answer is merely late — the most
//     expensive failure to observe and the least informative.
var (
	// ErrTimeout reports that the per-call deadline expired before a
	// response arrived. DI-GRUBER clients react by falling back to random
	// site selection.
	ErrTimeout = errors.New("wire: call timed out")
	// ErrOverloaded reports that the server shed the request because its
	// accept queue was full.
	ErrOverloaded = errors.New("wire: server overloaded")
	// ErrClosed reports use of a closed client or server.
	ErrClosed = errors.New("wire: closed")
	// ErrRefused reports that dialing the server address failed outright.
	ErrRefused = errors.New("wire: connection refused")
	// ErrConnLost reports that the connection died while calls were in
	// flight.
	ErrConnLost = errors.New("wire: connection lost")
	// ErrExpired reports that the server dropped the request at dequeue
	// because the caller's propagated deadline had already passed — the
	// caller has (or is about to) time out, so processing would only burn
	// a container worker on an answer nobody is waiting for.
	ErrExpired = errors.New("wire: request expired")
	// ErrDraining reports that the far end is a decision point in its
	// Draining lifecycle state: it refused the request without processing
	// it because it is retiring from the fleet. The refusal is safe to
	// retry — nothing executed — but pointless against the same address
	// (the drain only ends in a stop), so the RetryPolicy never retries
	// it; the failover layer above re-runs the interaction against a
	// different decision point instead.
	ErrDraining = errors.New("wire: decision point draining")
)

// FailureClass partitions call errors for failover and retry logic.
type FailureClass int

// Failure classes, from Classify.
const (
	// FailureNone is a nil error.
	FailureNone FailureClass = iota
	// FailureTimeout is silence until the caller's deadline (ErrTimeout).
	FailureTimeout
	// FailureLost is a connection severed mid-call (ErrConnLost).
	FailureLost
	// FailureRefused is a failed dial (ErrRefused).
	FailureRefused
	// FailureOverload is a shed request (ErrOverloaded).
	FailureOverload
	// FailureClosed is use of a closed client (ErrClosed).
	FailureClosed
	// FailureOther is an application-level error from the handler.
	FailureOther
	// FailureExpired is a request the server dropped unprocessed because
	// its propagated deadline had passed (ErrExpired). The caller's own
	// timeout owns what happens next, so — like FailureTimeout — it is
	// never retried.
	FailureExpired
	// FailureDraining is a request a retiring decision point refused
	// unprocessed (ErrDraining). Safe to re-issue, but only somewhere
	// else: the same address will keep refusing until it stops, so the
	// wire retry loop skips it and failover handles the re-issue.
	FailureDraining
)

// String names the class.
func (c FailureClass) String() string {
	switch c {
	case FailureNone:
		return "none"
	case FailureTimeout:
		return "timeout"
	case FailureLost:
		return "lost"
	case FailureRefused:
		return "refused"
	case FailureOverload:
		return "overload"
	case FailureClosed:
		return "closed"
	case FailureExpired:
		return "expired"
	case FailureDraining:
		return "draining"
	default:
		return "other"
	}
}

// Classify maps a Call error to its failure class.
func Classify(err error) FailureClass {
	switch {
	case err == nil:
		return FailureNone
	case errors.Is(err, ErrTimeout):
		return FailureTimeout
	case errors.Is(err, ErrConnLost):
		return FailureLost
	case errors.Is(err, ErrRefused):
		return FailureRefused
	case errors.Is(err, ErrOverloaded):
		return FailureOverload
	case errors.Is(err, ErrClosed):
		return FailureClosed
	case errors.Is(err, ErrExpired):
		return FailureExpired
	case errors.Is(err, ErrDraining):
		return FailureDraining
	default:
		return FailureOther
	}
}

// frame is the single on-the-wire message type; Kind discriminates
// requests from responses.
//
// Trace and Span carry the caller's tracing context so server-side
// spans (queueing, handler, stack emulation) attach to the client's
// trace — the envelope is how context crosses the emulated WAN. Both
// are zero for untraced calls, and gob omits zero-valued fields, so an
// untraced frame is byte-identical to one from before tracing existed.
//
// Deadline is the caller's absolute per-call deadline in UnixNano
// (virtual time), stamped when ClientConfig.PropagateDeadline is set;
// the server drops requests whose deadline has passed at dequeue
// instead of processing them (ErrExpired). Zero means "no deadline",
// and — like Trace/Span — the zero value is elided by gob, so frames
// without one stay byte-identical to pre-deadline builds (asserted by
// TestFrameDeadlineWireCompat). New fields must be appended after
// Deadline: gob delta-encodes field indices, so inserting earlier would
// renumber the rest and break that identity.
type frame struct {
	ID       uint64
	Kind     byte // frameRequest or frameResponse
	Method   string
	Body     []byte
	Err      string
	Trace    uint64
	Span     uint64
	Deadline int64
}

const (
	frameRequest byte = iota + 1
	frameResponse
)

// encodeBody gob-encodes an RPC argument or reply value.
func encodeBody(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("wire: encode body: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeBody gob-decodes an RPC argument or reply value into v.
func decodeBody(data []byte, v interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("wire: decode body: %w", err)
	}
	return nil
}
