// Package wire is the reproduction's stand-in for the Globus Toolkit web
// service stacks (GT3 and the GT4 prerelease) that DI-GRUBER was deployed
// on. It provides a small RPC system — length-delimited gob frames over
// either real TCP connections or in-process pipes — plus two pieces of
// deliberate emulation:
//
//   - a netsim-driven WAN delay on every message, standing in for
//     PlanetLab's wide-area links, and
//   - a StackProfile on the server standing in for the toolkit's
//     per-request costs (GSI authentication, SOAP processing, container
//     dispatch) and its limited request-processing concurrency. The paper
//     identifies exactly these as the factors limiting performance.
//
// Everything above this package (GRUBER engines, decision points, DiPerF
// testers) talks through Client.Call / Server handlers and never sees the
// emulation.
package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
)

// Errors surfaced by calls.
var (
	// ErrTimeout reports that the per-call deadline expired before a
	// response arrived. DI-GRUBER clients react by falling back to random
	// site selection.
	ErrTimeout = errors.New("wire: call timed out")
	// ErrOverloaded reports that the server shed the request because its
	// accept queue was full.
	ErrOverloaded = errors.New("wire: server overloaded")
	// ErrClosed reports use of a closed client or server.
	ErrClosed = errors.New("wire: closed")
)

// frame is the single on-the-wire message type; Kind discriminates
// requests from responses.
type frame struct {
	ID     uint64
	Kind   byte // frameRequest or frameResponse
	Method string
	Body   []byte
	Err    string
}

const (
	frameRequest byte = iota + 1
	frameResponse
)

// encodeBody gob-encodes an RPC argument or reply value.
func encodeBody(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("wire: encode body: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeBody gob-decodes an RPC argument or reply value into v.
func decodeBody(data []byte, v interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("wire: decode body: %w", err)
	}
	return nil
}
