package wire

import (
	"sync"
	"time"

	"digruber/internal/tsdb"
)

// Payload-byte accounting, per method. Bytes-on-wire is the axis the
// gossip dissemination work is judged on — per-DP bytes-per-round must
// track the fanout, not the fleet size — so both ends of a call count
// the gob body bytes they ship and receive, split by method name.
// Counts cover the encoded request/response bodies only (the same
// quantity the emulated stacks charge ServiceTime on), not the frame
// envelope, so they are stable across envelope extensions.

// IOBytes is one method's cumulative payload-byte totals from one
// side's perspective: In is bytes received, Out is bytes sent.
type IOBytes struct {
	In  int64
	Out int64
}

// byteBook is a mutex-guarded per-method byte ledger shared by the
// server and client implementations.
type byteBook struct {
	mu       sync.Mutex
	in, out  int64
	byMethod map[string]IOBytes
}

func (b *byteBook) count(method string, in, out int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.in += int64(in)
	b.out += int64(out)
	if b.byMethod == nil {
		b.byMethod = make(map[string]IOBytes)
	}
	io := b.byMethod[method]
	io.In += int64(in)
	io.Out += int64(out)
	b.byMethod[method] = io
}

func (b *byteBook) totals() (in, out int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.in, b.out
}

func (b *byteBook) method(method string) IOBytes {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.byMethod[method]
}

func (b *byteBook) snapshot() map[string]IOBytes {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]IOBytes, len(b.byMethod))
	//lint:allow mapiter -- map-to-map copy; order cannot matter
	for m, io := range b.byMethod {
		out[m] = io
	}
	return out
}

// registerMethodGauges exposes one ledger's per-method totals as
// cumulative series under prefix/method/<name>/bytes_{in,out}. The
// method list is explicit because tsdb series are fixed at registration
// time; callers name the methods they serve or call.
func (b *byteBook) registerMethodGauges(reg *tsdb.Registry, prefix string, methods []string) {
	for _, m := range methods {
		m := m
		reg.GaugeFunc(prefix+"/method/"+m+"/bytes_in", func(now time.Time) float64 {
			return float64(b.method(m).In)
		})
		reg.GaugeFunc(prefix+"/method/"+m+"/bytes_out", func(now time.Time) float64 {
			return float64(b.method(m).Out)
		})
	}
}

// MethodIO returns the server's per-method payload-byte totals: In is
// request bodies received, Out is response bodies sent.
func (s *Server) MethodIO() map[string]IOBytes { return s.bytes.snapshot() }

// RegisterMethodMetrics exposes the server's per-method byte totals as
// series under prefix (see byteBook.registerMethodGauges). Safe with a
// nil registry.
func (s *Server) RegisterMethodMetrics(reg *tsdb.Registry, prefix string, methods ...string) {
	s.bytes.registerMethodGauges(reg, prefix, methods)
}

// MethodIO returns this counter set's per-method payload-byte totals:
// Out is request bodies sent (every attempt, retries included), In is
// response bodies received. Nil-safe.
func (m *ClientMetrics) MethodIO() map[string]IOBytes {
	if m == nil {
		return nil
	}
	return m.bytes.snapshot()
}

// RegisterMethodMetrics exposes the client counters' per-method byte
// totals as series under prefix. Safe with a nil receiver or registry.
func (m *ClientMetrics) RegisterMethodMetrics(reg *tsdb.Registry, prefix string, methods ...string) {
	if m == nil {
		return
	}
	m.bytes.registerMethodGauges(reg, prefix, methods)
}

// onBytesSent counts one attempt's encoded request body.
func (m *ClientMetrics) onBytesSent(method string, n int) {
	if m != nil {
		m.bytes.count(method, 0, n)
	}
}

// onBytesReceived counts one received response body.
func (m *ClientMetrics) onBytesReceived(method string, n int) {
	if m != nil {
		m.bytes.count(method, n, 0)
	}
}
