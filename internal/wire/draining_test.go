package wire

import (
	"errors"
	"testing"
	"time"

	"digruber/internal/vtime"
)

// A handler's ErrDraining refusal must come back as the sentinel (not a
// bare string error), so Classify and the failover layer above see
// FailureDraining.
func TestDrainingCrossesWireAsSentinel(t *testing.T) {
	srv, cli := newPair(t, Instant(), nil, vtime.NewReal())
	Handle(srv, "refuse", func(r echoReq) (echoResp, error) {
		return echoResp{}, ErrDraining
	})
	_, err := Call[echoReq, echoResp](cli, "refuse", echoReq{Msg: "x"}, time.Second)
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
	if c := Classify(err); c != FailureDraining {
		t.Fatalf("Classify = %v, want FailureDraining", c)
	}
}

func TestClassifyDraining(t *testing.T) {
	if c := Classify(ErrDraining); c != FailureDraining {
		t.Fatalf("Classify(ErrDraining) = %v", c)
	}
	if s := FailureDraining.String(); s != "draining" {
		t.Fatalf("FailureDraining.String() = %q", s)
	}
}

// The wire retry loop must not burn attempts (or budget) against a
// draining server: the same address keeps refusing until it stops, so
// the refusal surfaces immediately for the failover layer.
func TestRetryPolicySkipsDraining(t *testing.T) {
	srv, cli := newPair(t, Instant(), nil, vtime.NewReal())
	calls := 0
	Handle(srv, "refuse", func(r echoReq) (echoResp, error) {
		calls++
		return echoResp{}, ErrDraining
	})
	cli.retry = RetryPolicy{Attempts: 3}
	_, err := Call[echoReq, echoResp](cli, "refuse", echoReq{Msg: "x"}, time.Second)
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
	if calls != 1 {
		t.Fatalf("handler called %d times, want 1 (no wire-level retry)", calls)
	}
}
