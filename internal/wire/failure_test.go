package wire

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"digruber/internal/netsim"
	"digruber/internal/vtime"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want FailureClass
	}{
		{nil, FailureNone},
		{ErrTimeout, FailureTimeout},
		{fmt.Errorf("wrap: %w", ErrTimeout), FailureTimeout},
		{ErrConnLost, FailureLost},
		{fmt.Errorf("%w: send: EOF", ErrConnLost), FailureLost},
		{ErrRefused, FailureRefused},
		{fmt.Errorf("%w: dial dp-0: no listener", ErrRefused), FailureRefused},
		{ErrOverloaded, FailureOverload},
		{ErrClosed, FailureClosed},
		{errors.New("USLA violation"), FailureOther},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestReconnectAfterConnDrop kills the underlying connection while a
// call is pending: the pending call must fail with the connection-lost
// class, and the very next call must lazily re-dial and succeed.
func TestReconnectAfterConnDrop(t *testing.T) {
	mem := NewMem()
	clock := vtime.NewReal()
	gate := make(chan struct{})
	defer close(gate)

	srv1 := NewServer("server-node", Instant(), clock)
	Handle(srv1, "block", func(r echoReq) (echoResp, error) {
		<-gate
		return echoResp(r), nil
	})
	l1, err := mem.Listen("dp-0")
	if err != nil {
		t.Fatal(err)
	}
	go srv1.Serve(l1)

	cli := NewClient(ClientConfig{
		Node: "client-node", ServerNode: "server-node",
		Addr: "dp-0", Transport: mem, Clock: clock,
	})
	defer cli.Close()

	pending := make(chan error, 1)
	go func() {
		_, err := Call[echoReq, echoResp](cli, "block", echoReq{Msg: "stuck"}, 30*time.Second)
		pending <- err
	}()
	// Wait until the server has the request in hand, then sever every
	// connection, as a crashing container would.
	waitForCond(t, func() bool { return srv1.Stats().Received >= 1 })
	srv1.Close()
	l1.Close()

	select {
	case err := <-pending:
		if !errors.Is(err, ErrConnLost) {
			t.Fatalf("pending call err = %v (class %v), want ErrConnLost", err, Classify(err))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call did not fail after the connection died")
	}

	// A replacement binds the same address; the next call re-dials.
	srv2 := NewServer("server-node", Instant(), clock)
	Handle(srv2, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	l2, err := mem.Listen("dp-0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(l2)
	defer func() { srv2.Close(); l2.Close() }()

	resp, err := Call[echoReq, echoResp](cli, "echo", echoReq{Msg: "back"}, 5*time.Second)
	if err != nil {
		t.Fatalf("call after reconnect: %v", err)
	}
	if resp.Msg != "back" {
		t.Fatalf("resp = %q", resp.Msg)
	}
}

func TestDialFailureIsRefused(t *testing.T) {
	mem := NewMem()
	cli := NewClient(ClientConfig{Node: "a", ServerNode: "b", Addr: "nowhere", Transport: mem, Clock: vtime.NewReal()})
	defer cli.Close()
	_, err := Call[echoReq, echoResp](cli, "echo", echoReq{}, time.Second)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v (class %v), want ErrRefused", err, Classify(err))
	}
}

// flakyTransport fails the first n dials, then delegates.
type flakyTransport struct {
	inner Transport
	fails int
	dials int
}

func (f *flakyTransport) Listen(addr string) (Listener, error) { return f.inner.Listen(addr) }
func (f *flakyTransport) Dial(addr string) (Conn, error) {
	f.dials++
	if f.dials <= f.fails {
		return nil, errors.New("transient dial failure")
	}
	return f.inner.Dial(addr)
}

func TestRetryRecoversFromRefused(t *testing.T) {
	mem := NewMem()
	clock := vtime.NewReal()
	srv := NewServer("server-node", Instant(), clock)
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	l, err := mem.Listen("dp-0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer func() { srv.Close(); l.Close() }()

	flaky := &flakyTransport{inner: mem, fails: 2}
	cli := NewClient(ClientConfig{
		Node: "c", ServerNode: "server-node", Addr: "dp-0",
		Transport: flaky, Clock: clock,
		Retry: RetryPolicy{
			Attempts:    3,
			BaseBackoff: time.Millisecond,
			JitterFrac:  0.5,
			Jitter:      netsim.Stream(1, "test.retry"),
		},
	})
	defer cli.Close()
	resp, err := Call[echoReq, echoResp](cli, "echo", echoReq{Msg: "third time lucky"}, 5*time.Second)
	if err != nil {
		t.Fatalf("call with retry: %v", err)
	}
	if resp.Msg != "third time lucky" {
		t.Fatalf("resp = %q", resp.Msg)
	}
	if flaky.dials != 3 {
		t.Fatalf("dials = %d, want 3 (two refused + one success)", flaky.dials)
	}
}

func TestRetryBoundedAndGivesUp(t *testing.T) {
	mem := NewMem()
	flaky := &flakyTransport{inner: mem, fails: 100}
	cli := NewClient(ClientConfig{
		Node: "c", ServerNode: "s", Addr: "dp-0",
		Transport: flaky, Clock: vtime.NewReal(),
		Retry: RetryPolicy{Attempts: 4, BaseBackoff: time.Microsecond},
	})
	defer cli.Close()
	_, err := Call[echoReq, echoResp](cli, "echo", echoReq{}, time.Second)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused after exhausting retries", err)
	}
	if flaky.dials != 4 {
		t.Fatalf("dials = %d, want exactly Attempts=4", flaky.dials)
	}
}

func TestTimeoutIsNeverRetried(t *testing.T) {
	// A server that never answers within the deadline: with retry
	// configured, the client must still return after ONE timeout.
	profile := StackProfile{Name: "slow", BaseOverhead: 10 * time.Second, MaxConcurrent: 1}
	clock := vtime.NewReal()
	mem := NewMem()
	srv := NewServer("s", profile, clock)
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	l, err := mem.Listen("dp-0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer func() { srv.Close(); l.Close() }()
	cli := NewClient(ClientConfig{
		Node: "c", ServerNode: "s", Addr: "dp-0", Transport: mem, Clock: clock,
		Retry: RetryPolicy{Attempts: 5, BaseBackoff: time.Millisecond},
	})
	defer cli.Close()
	start := time.Now()
	_, err = Call[echoReq, echoResp](cli, "echo", echoReq{}, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if e := time.Since(start); e > 500*time.Millisecond {
		t.Fatalf("timed-out call took %v; timeouts must not be retried", e)
	}
}

func TestRetryBackoffSequence(t *testing.T) {
	p := RetryPolicy{Attempts: 5, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 300 * time.Millisecond}
	want := []time.Duration{100, 200, 300, 300}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// Seeded jitter replays: the same stream gives the same extensions.
	pj := func() RetryPolicy {
		return RetryPolicy{Attempts: 3, BaseBackoff: 100 * time.Millisecond,
			JitterFrac: 0.5, Jitter: netsim.Stream(9, "jitter")}
	}
	a, b := pj(), pj()
	for i := 1; i <= 3; i++ {
		da, db := a.backoff(i), b.backoff(i)
		if da != db {
			t.Errorf("jittered backoff(%d) not replayable: %v vs %v", i, da, db)
		}
		if da < 100*time.Millisecond || da > 800*time.Millisecond+400*time.Millisecond {
			t.Errorf("jittered backoff(%d) = %v out of range", i, da)
		}
	}
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
