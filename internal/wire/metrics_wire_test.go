package wire

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"digruber/internal/tsdb"
	"digruber/internal/vtime"
)

// TestServerMetricsRegistration: the registered gauges track the same
// atomics Stats() reads, sampled into series.
func TestServerMetricsRegistration(t *testing.T) {
	clock := vtime.NewReal()
	srv, cli := newPair(t, Instant(), nil, clock)
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })

	reg := tsdb.New(0)
	srv.RegisterMetrics(reg, "srv")

	for i := 0; i < 3; i++ {
		if _, err := Call[echoReq, echoResp](cli, "echo", echoReq{Msg: "x"}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// The server decrements in-flight in a defer that runs after the
	// response send, so it can still read 1 for an instant after a
	// synchronous call returns — wait for it to settle before sampling.
	for deadline := time.Now().Add(5 * time.Second); srv.Stats().InFlight != 0; {
		if time.Now().After(deadline) {
			t.Fatal("server did not quiesce")
		}
		time.Sleep(time.Millisecond)
	}
	reg.Sample(clock.Now())

	for name, want := range map[string]float64{
		"srv/received":  3,
		"srv/completed": 3,
		"srv/shed":      0,
		"srv/conn_lost": 0,
		"srv/failed":    0,
		"srv/inflight":  0,
		"srv/queue":     0,
	} {
		p, ok := reg.Latest(name)
		if !ok || p.V != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, p.V, ok, want)
		}
	}
}

// TestClientMetricsOutcomes: a shared ClientMetrics partitions logical
// call outcomes by failure class and counts attempts including retries.
func TestClientMetricsOutcomes(t *testing.T) {
	clock := vtime.NewReal()
	mem := NewMem()
	srv := NewServer("server-node", Instant(), clock)
	l, err := mem.Listen("dp-0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close(); l.Close() })
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	Handle(srv, "boom", func(r echoReq) (echoResp, error) { return echoResp{}, errors.New("app error") })

	m := NewClientMetrics()
	mkClient := func() *Client {
		c := NewClient(ClientConfig{
			Node: "client-node", ServerNode: "server-node",
			Addr: "dp-0", Transport: mem, Clock: clock, Metrics: m,
		})
		t.Cleanup(c.Close)
		return c
	}

	// Two clients share the same counter set.
	c1, c2 := mkClient(), mkClient()
	if _, err := Call[echoReq, echoResp](c1, "echo", echoReq{Msg: "a"}, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := Call[echoReq, echoResp](c2, "echo", echoReq{Msg: "b"}, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := Call[echoReq, echoResp](c1, "boom", echoReq{}, time.Second); err == nil {
		t.Fatal("boom should fail")
	}
	// Refused: nothing listens there.
	bad := NewClient(ClientConfig{
		Node: "client-node", ServerNode: "nowhere",
		Addr: "nowhere", Transport: mem, Clock: clock, Metrics: m,
		Retry: RetryPolicy{Attempts: 3},
	})
	t.Cleanup(bad.Close)
	if _, err := bad.Call("echo", nil, time.Second); !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}

	st := m.Stats()
	if st.Calls != 4 || st.OK != 2 || st.Other != 1 || st.Refused != 1 {
		t.Fatalf("stats = %+v, want calls=4 ok=2 other=1 refused=1", st)
	}
	// The refused call retried twice: 3 + 3 + 1(boom had 1) ... attempts:
	// echo+echo+boom are 1 attempt each, refused call is 3.
	if st.Attempts != 6 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want attempts=6 retries=2", st)
	}

	reg := tsdb.New(0)
	m.Register(reg, "clients/wire")
	reg.Sample(clock.Now())
	if p, ok := reg.Latest("clients/wire/calls"); !ok || p.V != 4 {
		t.Fatalf("clients/wire/calls = %v (ok=%v), want 4", p.V, ok)
	}
}

// TestNilClientMetricsIsFree: un-instrumented clients and nil receivers
// take every path without panicking.
func TestNilClientMetricsIsFree(t *testing.T) {
	var m *ClientMetrics
	m.onCall()
	m.onAttempt()
	m.onRetry()
	m.onResult(nil)
	m.onResult(fmt.Errorf("x"))
	m.Register(tsdb.New(0), "p")
	if st := m.Stats(); st != (ClientStats{}) {
		t.Fatalf("nil metrics stats = %+v", st)
	}
}
