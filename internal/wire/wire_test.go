package wire

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"digruber/internal/netsim"
	"digruber/internal/vtime"
)

type echoReq struct{ Msg string }
type echoResp struct{ Msg string }

// newPair wires a server and client over an in-memory transport with no
// emulated network or container cost.
func newPair(t *testing.T, profile StackProfile, network *netsim.Network, clock vtime.Clock) (*Server, *Client) {
	t.Helper()
	mem := NewMem()
	srv := NewServer("server-node", profile, clock)
	l, err := mem.Listen("dp-0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close(); l.Close() })
	cli := NewClient(ClientConfig{
		Node: "client-node", ServerNode: "server-node",
		Addr: "dp-0", Transport: mem, Network: network, Clock: clock,
	})
	t.Cleanup(cli.Close)
	return srv, cli
}

func TestEchoRoundTrip(t *testing.T) {
	srv, cli := newPair(t, Instant(), nil, vtime.NewReal())
	Handle(srv, "echo", func(r echoReq) (echoResp, error) {
		return echoResp{Msg: r.Msg}, nil
	})
	resp, err := Call[echoReq, echoResp](cli, "echo", echoReq{Msg: "hello grid"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "hello grid" {
		t.Fatalf("echo = %q", resp.Msg)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, cli := newPair(t, Instant(), nil, vtime.NewReal())
	_, err := Call[echoReq, echoResp](cli, "nope", echoReq{}, time.Second)
	if err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	srv, cli := newPair(t, Instant(), nil, vtime.NewReal())
	Handle(srv, "fail", func(r echoReq) (echoResp, error) {
		return echoResp{}, errors.New("USLA violation")
	})
	_, err := Call[echoReq, echoResp](cli, "fail", echoReq{}, time.Second)
	if err == nil || err.Error() != "USLA violation" {
		t.Fatalf("err = %v, want USLA violation", err)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	srv, cli := newPair(t, Instant(), nil, vtime.NewReal())
	Handle(srv, "echo", func(r echoReq) (echoResp, error) {
		return echoResp{Msg: r.Msg}, nil
	})
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("msg-%d", i)
			resp, err := Call[echoReq, echoResp](cli, "echo", echoReq{Msg: want}, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if resp.Msg != want {
				errs <- fmt.Errorf("cross-talk: got %q want %q", resp.Msg, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTimeoutWhenServerSlow(t *testing.T) {
	profile := StackProfile{Name: "slow", BaseOverhead: 500 * time.Millisecond, MaxConcurrent: 1}
	srv, cli := newPair(t, profile, nil, vtime.NewReal())
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	_, err := Call[echoReq, echoResp](cli, "echo", echoReq{Msg: "x"}, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestOverloadShedding(t *testing.T) {
	profile := StackProfile{Name: "tiny", BaseOverhead: time.Second, MaxConcurrent: 1, QueueLimit: 1}
	srv, cli := newPair(t, profile, nil, vtime.NewReal())
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })

	var wg sync.WaitGroup
	var mu sync.Mutex
	var overloaded int
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := Call[echoReq, echoResp](cli, "echo", echoReq{}, 100*time.Millisecond)
			if errors.Is(err, ErrOverloaded) {
				mu.Lock()
				overloaded++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if overloaded == 0 {
		t.Fatal("expected at least one ErrOverloaded with queue limit 1")
	}
	if shed := srv.Stats().Shed; shed == 0 {
		t.Fatal("server did not record shed requests")
	}
}

func TestWANDelayIsPaid(t *testing.T) {
	p := netsim.Profile{Name: "fixed", MedianLatency: 30 * time.Millisecond}
	network := netsim.New(1, p)
	srv, cli := newPair(t, Instant(), network, vtime.NewReal())
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	start := time.Now()
	if _, err := Call[echoReq, echoResp](cli, "echo", echoReq{}, time.Second); err != nil {
		t.Fatal(err)
	}
	if rt := time.Since(start); rt < 60*time.Millisecond {
		t.Fatalf("round trip %v, want >= 2x30ms WAN latency", rt)
	}
}

func TestLossBecomesTimeout(t *testing.T) {
	p := netsim.Profile{Name: "lossy", MedianLatency: time.Millisecond, LossProb: 1}
	network := netsim.New(1, p)
	srv, cli := newPair(t, Instant(), network, vtime.NewReal())
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	start := time.Now()
	_, err := Call[echoReq, echoResp](cli, "echo", echoReq{}, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if e := time.Since(start); e < 40*time.Millisecond {
		t.Fatalf("lost call returned after %v, should wait out the timeout", e)
	}
}

func TestServerStatsCount(t *testing.T) {
	srv, cli := newPair(t, Instant(), nil, vtime.NewReal())
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	for i := 0; i < 10; i++ {
		if _, err := Call[echoReq, echoResp](cli, "echo", echoReq{}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.Received != 10 || st.Completed != 10 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientClosed(t *testing.T) {
	_, cli := newPair(t, Instant(), nil, vtime.NewReal())
	cli.Close()
	_, err := Call[echoReq, echoResp](cli, "echo", echoReq{}, time.Second)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestDialUnknownAddress(t *testing.T) {
	mem := NewMem()
	cli := NewClient(ClientConfig{Node: "a", ServerNode: "b", Addr: "nowhere", Transport: mem, Clock: vtime.NewReal()})
	_, err := Call[echoReq, echoResp](cli, "echo", echoReq{}, time.Second)
	if err == nil {
		t.Fatal("expected dial error")
	}
}

func TestMemAddressReuseRejected(t *testing.T) {
	mem := NewMem()
	l, err := mem.Listen("dp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Listen("dp"); err == nil {
		t.Fatal("double bind should fail")
	}
	l.Close()
	// After close the address is free again.
	l2, err := mem.Listen("dp")
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	l2.Close()
}

func TestTCPTransportRoundTrip(t *testing.T) {
	srv := NewServer("srv", Instant(), vtime.NewReal())
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	l, err := TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	defer srv.Close()
	cli := NewClient(ClientConfig{Node: "c", ServerNode: "srv", Addr: l.Addr(), Transport: TCP{}, Clock: vtime.NewReal()})
	defer cli.Close()
	resp, err := Call[echoReq, echoResp](cli, "echo", echoReq{Msg: "over tcp"}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "over tcp" {
		t.Fatalf("resp = %q", resp.Msg)
	}
}

func TestServiceTimeComputation(t *testing.T) {
	p := StackProfile{AuthOverhead: 100 * time.Millisecond, BaseOverhead: 50 * time.Millisecond, PerKB: 10 * time.Millisecond}
	if got := p.ServiceTime(0); got != 150*time.Millisecond {
		t.Fatalf("empty payload service time = %v", got)
	}
	if got := p.ServiceTime(2048); got != 170*time.Millisecond {
		t.Fatalf("2KB payload service time = %v", got)
	}
}

func TestGT4SlowerThanGT3(t *testing.T) {
	// The paper notes the GT4 prerelease was slower than GT3.2.
	const payload = 20 << 10
	if GT4().ServiceTime(payload) <= GT3().ServiceTime(payload) {
		t.Fatal("GT4 prerelease profile should be slower than GT3")
	}
	if GT4C().ServiceTime(payload) >= GT3().ServiceTime(payload) {
		t.Fatal("GT4C profile should be much faster than GT3")
	}
}

func TestScaledClockCompressesServiceTime(t *testing.T) {
	// A 2-second container cost at 100x speedup should cost ~20ms real.
	clock := vtime.NewScaled(time.Now(), 100)
	profile := StackProfile{Name: "slow", BaseOverhead: 2 * time.Second, MaxConcurrent: 1}
	srv, cli := newPair(t, profile, nil, clock)
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	start := time.Now()
	if _, err := Call[echoReq, echoResp](cli, "echo", echoReq{}, time.Minute); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e > time.Second {
		t.Fatalf("compressed call took %v real", e)
	}
}
