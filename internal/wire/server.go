package wire

import (
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"digruber/internal/stats"
	"digruber/internal/trace"
	"digruber/internal/vtime"
)

// Handler processes one RPC: it receives the gob-encoded request body and
// returns the gob-encoded response body. Use Handle to register typed
// handlers without touching bytes.
type Handler func(body []byte) ([]byte, error)

// Ctx carries per-request server-side context into handlers. Span is
// the trace context the handler runs under (zero when the request is
// untraced); handlers pass it down so engine-level spans attach to the
// caller's trace.
type Ctx struct {
	Span trace.SpanContext
}

// CtxHandler is a Handler that also receives the request context.
type CtxHandler func(ctx Ctx, body []byte) ([]byte, error)

// Server is an RPC server fronted by an emulated web-service container
// (see StackProfile). Register handlers, then call Serve with a Listener.
type Server struct {
	node    string // node name, for WAN delay bookkeeping and reports
	profile StackProfile
	clock   vtime.Clock
	// tracer records server-side spans for traced requests; set it with
	// SetTracer before Serve. Nil disables tracing at zero cost.
	tracer *trace.Tracer

	mu       sync.RWMutex
	handlers map[string]CtxHandler
	closed   bool
	conns    map[*serverConn]struct{}

	work    chan job
	wg      sync.WaitGroup
	closeCh chan struct{}

	// Reserved lane (see ReserveLane): laneMethods routes matching
	// requests into laneWork, which dedicated workers drain — so mesh
	// and monitoring RPCs don't wait behind a saturated client queue.
	// Both are set before Serve and never change afterwards.
	laneMethods map[string]bool
	laneWork    chan job

	// counters
	received     atomic.Int64
	completed    atomic.Int64
	failed       atomic.Int64
	shed         atomic.Int64
	connLost     atomic.Int64
	expired      atomic.Int64
	inflight     atomic.Int64
	laneInflight atomic.Int64

	statMu  sync.Mutex
	service stats.Online // observed service times, seconds

	// bytes ledgers payload bytes in/out, per method (see bytes.go).
	bytes byteBook
}

type job struct {
	conn *serverConn
	f    frame
	// enqueuedAt is set for traced requests only, to measure the wait
	// for a container worker as a server.queue span.
	enqueuedAt time.Time
}

// NewServer returns a server for the given emulated node name, container
// profile and clock.
func NewServer(node string, profile StackProfile, clock vtime.Clock) *Server {
	s := &Server{
		node:     node,
		profile:  profile,
		clock:    clock,
		handlers: make(map[string]CtxHandler),
		conns:    make(map[*serverConn]struct{}),
		work:     make(chan job, profile.queueLimit()),
		closeCh:  make(chan struct{}),
	}
	for i := 0; i < profile.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// ReserveLane dedicates workers container threads (with a waiting queue
// of queueLimit, default 16) to the given methods, routing them around
// the shared accept queue. This is capacity reservation for control
// traffic: a decision point drowning in client queries would otherwise
// also starve its mesh exchanges and Status polls, coupling overload to
// view divergence and monitoring blindness. Lane overflow is shed like
// main-queue overflow.
//
// Call before Serve; the lane is fixed for the server's lifetime.
func (s *Server) ReserveLane(workers, queueLimit int, methods ...string) {
	if workers <= 0 || len(methods) == 0 {
		return
	}
	if queueLimit <= 0 {
		queueLimit = 16
	}
	s.mu.Lock()
	if s.laneWork != nil || s.closed {
		s.mu.Unlock()
		return
	}
	s.laneMethods = make(map[string]bool, len(methods))
	for _, m := range methods {
		s.laneMethods[m] = true
	}
	s.laneWork = make(chan job, queueLimit)
	lane := s.laneWork
	s.mu.Unlock()
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.laneWorker(lane)
	}
}

func (s *Server) laneWorker(lane chan job) {
	defer s.wg.Done()
	for {
		select {
		case j := <-lane:
			s.laneInflight.Add(1)
			s.process(j)
			s.laneInflight.Add(-1)
		case <-s.closeCh:
			return
		}
	}
}

// Node returns the server's emulated node name.
func (s *Server) Node() string { return s.node }

// Profile returns the container profile the server runs under.
func (s *Server) Profile() StackProfile { return s.profile }

// SetTracer installs the tracer server-side spans are recorded against.
// Call it before Serve; requests in flight during a swap may record
// against either tracer.
func (s *Server) SetTracer(t *trace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
}

func (s *Server) getTracer() *trace.Tracer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tracer
}

// Register installs a raw handler for a method name. Registering after
// Serve has started is allowed.
func (s *Server) Register(method string, h Handler) {
	s.RegisterCtx(method, func(_ Ctx, body []byte) ([]byte, error) {
		return h(body)
	})
}

// RegisterCtx installs a raw context-aware handler for a method name.
func (s *Server) RegisterCtx(method string, h CtxHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Handle registers a typed handler: the request body is decoded into Req,
// and the returned Resp is encoded as the response body.
func Handle[Req, Resp any](s *Server, method string, fn func(Req) (Resp, error)) {
	HandleCtx(s, method, func(_ Ctx, req Req) (Resp, error) {
		return fn(req)
	})
}

// HandleCtx registers a typed handler that also receives the request
// context, so it can attach further spans to the caller's trace.
func HandleCtx[Req, Resp any](s *Server, method string, fn func(Ctx, Req) (Resp, error)) {
	s.RegisterCtx(method, func(ctx Ctx, body []byte) ([]byte, error) {
		var req Req
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		resp, err := fn(ctx, req)
		if err != nil {
			return nil, err
		}
		return encodeBody(resp)
	})
}

// Serve accepts connections from l until the listener or server closes.
// It blocks; run it in a goroutine.
func (s *Server) Serve(l Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closeCh:
				return nil
			default:
				return err
			}
		}
		go s.serveConn(conn)
	}
}

type serverConn struct {
	raw Conn
	enc *gob.Encoder
	wmu sync.Mutex
}

func (c *serverConn) send(f frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(f)
}

func (s *Server) serveConn(raw Conn) {
	conn := &serverConn{raw: raw, enc: gob.NewEncoder(raw)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		raw.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	dec := gob.NewDecoder(raw)
	defer func() {
		raw.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			return
		}
		if f.Kind != frameRequest {
			continue
		}
		s.received.Add(1)
		s.bytes.count(f.Method, len(f.Body), 0)
		j := job{conn: conn, f: f}
		if f.Trace != 0 && s.getTracer() != nil {
			j.enqueuedAt = s.clock.Now()
		}
		queue := s.work
		if s.laneWork != nil && s.laneMethods[f.Method] {
			queue = s.laneWork
		}
		select {
		case queue <- j:
		default:
			// Accept queue full: shed load, as a saturated container
			// effectively does once its thread and backlog limits are hit.
			s.shed.Add(1)
			_ = conn.send(frame{ID: f.ID, Kind: frameResponse, Err: ErrOverloaded.Error()})
		}
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.work:
			s.process(j)
		case <-s.closeCh:
			return
		}
	}
}

func (s *Server) process(j job) {
	// Stale-work control: a request whose propagated deadline has passed
	// is dropped here, at dequeue, before the handler or the emulated
	// stack cost — its caller already timed out, so finishing the work
	// would only be counted as ConnLost after burning a worker for the
	// full service time. Expired drops are their own stat, not folded
	// into completed or failed.
	if dl := j.f.Deadline; dl != 0 && !s.clock.Now().Before(time.Unix(0, dl)) {
		s.expired.Add(1)
		if err := j.conn.send(frame{ID: j.f.ID, Kind: frameResponse, Err: ErrExpired.Error()}); err != nil {
			s.connLost.Add(1)
		}
		return
	}

	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	s.mu.RLock()
	h, ok := s.handlers[j.f.Method]
	tracer := s.tracer
	s.mu.RUnlock()

	parent := trace.SpanContext{Trace: j.f.Trace, Span: j.f.Span}
	if !j.enqueuedAt.IsZero() {
		tracer.RecordSpan(parent, trace.PhaseQueue, j.enqueuedAt, s.clock.Now())
	}

	var respBody []byte
	var errStr string
	if !ok {
		errStr = fmt.Sprintf("wire: unknown method %q", j.f.Method)
	} else {
		hs := tracer.StartSpan(parent, trace.PhaseHandle)
		hs.SetNote(j.f.Method)
		body, err := h(Ctx{Span: hs.Context()}, j.f.Body)
		hs.End()
		if err != nil {
			errStr = err.Error()
		} else {
			respBody = body
		}
	}

	// The container occupies a worker for the emulated service time of
	// the full payload (request plus response), which is where GT3/GT4
	// auth+SOAP cost shows up.
	st := s.profile.ServiceTime(len(j.f.Body) + len(respBody))
	if st > 0 {
		ss := tracer.StartSpan(parent, trace.PhaseStack)
		s.clock.Sleep(st)
		ss.End()
	}
	s.statMu.Lock()
	s.service.Add(st.Seconds())
	s.statMu.Unlock()

	if errStr != "" {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	s.bytes.count(j.f.Method, 0, len(respBody))
	if err := j.conn.send(frame{ID: j.f.ID, Kind: frameResponse, Body: respBody, Err: errStr}); err != nil {
		// The response had nowhere to go: the caller hung up (timed out,
		// failed over, or died) before the container finished.
		s.connLost.Add(1)
	}
}

// Close stops the workers and severs every active connection, as a
// container shutdown would. In-flight requests finish into the void.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*serverConn, 0, len(s.conns))
	//lint:allow mapiter -- teardown: every connection is closed; close order is immaterial
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	close(s.closeCh)
	for _, c := range conns {
		_ = c.raw.Close()
	}
}

// Stats is a snapshot of server-side load counters, the raw material for
// the saturation detector of Section 5.
type Stats struct {
	Received  int64
	Completed int64
	Failed    int64
	Shed      int64
	// ConnLost counts responses the server computed but could not
	// deliver because the connection was gone — work done for a caller
	// that had already timed out or failed over. Together with Shed
	// (rejected before processing) and Completed (served) this
	// partitions where every accepted request's effort went.
	ConnLost int64
	// Expired counts requests dropped unprocessed at dequeue because the
	// caller's propagated deadline had already passed — work the overload
	// control plane refused to waste (the handler is never invoked).
	Expired  int64
	InFlight int64
	Queued   int
	// LaneQueued and LaneInFlight describe the reserved lane (see
	// ReserveLane); both zero when no lane is configured.
	LaneQueued   int
	LaneInFlight int64
	// ServiceMean is the mean emulated service time in seconds.
	ServiceMean float64
	// BytesIn and BytesOut total the payload bytes received (request
	// bodies) and sent (response bodies) across all methods; the
	// per-method split is Server.MethodIO.
	BytesIn  int64
	BytesOut int64
}

// Stats returns a consistent-enough snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.statMu.Lock()
	mean := s.service.Mean()
	s.statMu.Unlock()
	laneQueued := 0
	if s.laneWork != nil {
		laneQueued = len(s.laneWork)
	}
	bytesIn, bytesOut := s.bytes.totals()
	return Stats{
		BytesIn:      bytesIn,
		BytesOut:     bytesOut,
		Received:     s.received.Load(),
		Completed:    s.completed.Load(),
		Failed:       s.failed.Load(),
		Shed:         s.shed.Load(),
		ConnLost:     s.connLost.Load(),
		Expired:      s.expired.Load(),
		InFlight:     s.inflight.Load(),
		Queued:       len(s.work),
		LaneQueued:   laneQueued,
		LaneInFlight: s.laneInflight.Load(),
		ServiceMean:  mean,
	}
}
