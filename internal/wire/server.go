package wire

import (
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"

	"digruber/internal/stats"
	"digruber/internal/vtime"
)

// Handler processes one RPC: it receives the gob-encoded request body and
// returns the gob-encoded response body. Use Handle to register typed
// handlers without touching bytes.
type Handler func(body []byte) ([]byte, error)

// Server is an RPC server fronted by an emulated web-service container
// (see StackProfile). Register handlers, then call Serve with a Listener.
type Server struct {
	node    string // node name, for WAN delay bookkeeping and reports
	profile StackProfile
	clock   vtime.Clock

	mu       sync.RWMutex
	handlers map[string]Handler
	closed   bool
	conns    map[*serverConn]struct{}

	work    chan job
	wg      sync.WaitGroup
	closeCh chan struct{}

	// counters
	received  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	shed      atomic.Int64
	inflight  atomic.Int64

	statMu  sync.Mutex
	service stats.Online // observed service times, seconds
}

type job struct {
	conn *serverConn
	f    frame
}

// NewServer returns a server for the given emulated node name, container
// profile and clock.
func NewServer(node string, profile StackProfile, clock vtime.Clock) *Server {
	s := &Server{
		node:     node,
		profile:  profile,
		clock:    clock,
		handlers: make(map[string]Handler),
		conns:    make(map[*serverConn]struct{}),
		work:     make(chan job, profile.queueLimit()),
		closeCh:  make(chan struct{}),
	}
	for i := 0; i < profile.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Node returns the server's emulated node name.
func (s *Server) Node() string { return s.node }

// Profile returns the container profile the server runs under.
func (s *Server) Profile() StackProfile { return s.profile }

// Register installs a raw handler for a method name. Registering after
// Serve has started is allowed.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Handle registers a typed handler: the request body is decoded into Req,
// and the returned Resp is encoded as the response body.
func Handle[Req, Resp any](s *Server, method string, fn func(Req) (Resp, error)) {
	s.Register(method, func(body []byte) ([]byte, error) {
		var req Req
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		resp, err := fn(req)
		if err != nil {
			return nil, err
		}
		return encodeBody(resp)
	})
}

// Serve accepts connections from l until the listener or server closes.
// It blocks; run it in a goroutine.
func (s *Server) Serve(l Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closeCh:
				return nil
			default:
				return err
			}
		}
		go s.serveConn(conn)
	}
}

type serverConn struct {
	raw Conn
	enc *gob.Encoder
	wmu sync.Mutex
}

func (c *serverConn) send(f frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(f)
}

func (s *Server) serveConn(raw Conn) {
	conn := &serverConn{raw: raw, enc: gob.NewEncoder(raw)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		raw.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	dec := gob.NewDecoder(raw)
	defer func() {
		raw.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			return
		}
		if f.Kind != frameRequest {
			continue
		}
		s.received.Add(1)
		select {
		case s.work <- job{conn: conn, f: f}:
		default:
			// Accept queue full: shed load, as a saturated container
			// effectively does once its thread and backlog limits are hit.
			s.shed.Add(1)
			_ = conn.send(frame{ID: f.ID, Kind: frameResponse, Err: ErrOverloaded.Error()})
		}
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.work:
			s.process(j)
		case <-s.closeCh:
			return
		}
	}
}

func (s *Server) process(j job) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	s.mu.RLock()
	h, ok := s.handlers[j.f.Method]
	s.mu.RUnlock()

	var respBody []byte
	var errStr string
	if !ok {
		errStr = fmt.Sprintf("wire: unknown method %q", j.f.Method)
	} else {
		body, err := h(j.f.Body)
		if err != nil {
			errStr = err.Error()
		} else {
			respBody = body
		}
	}

	// The container occupies a worker for the emulated service time of
	// the full payload (request plus response), which is where GT3/GT4
	// auth+SOAP cost shows up.
	st := s.profile.ServiceTime(len(j.f.Body) + len(respBody))
	if st > 0 {
		s.clock.Sleep(st)
	}
	s.statMu.Lock()
	s.service.Add(st.Seconds())
	s.statMu.Unlock()

	if errStr != "" {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	_ = j.conn.send(frame{ID: j.f.ID, Kind: frameResponse, Body: respBody, Err: errStr})
}

// Close stops the workers and severs every active connection, as a
// container shutdown would. In-flight requests finish into the void.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	close(s.closeCh)
	for _, c := range conns {
		_ = c.raw.Close()
	}
}

// Stats is a snapshot of server-side load counters, the raw material for
// the saturation detector of Section 5.
type Stats struct {
	Received  int64
	Completed int64
	Failed    int64
	Shed      int64
	InFlight  int64
	Queued    int
	// ServiceMean is the mean emulated service time in seconds.
	ServiceMean float64
}

// Stats returns a consistent-enough snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.statMu.Lock()
	mean := s.service.Mean()
	s.statMu.Unlock()
	return Stats{
		Received:    s.received.Load(),
		Completed:   s.completed.Load(),
		Failed:      s.failed.Load(),
		Shed:        s.shed.Load(),
		InFlight:    s.inflight.Load(),
		Queued:      len(s.work),
		ServiceMean: mean,
	}
}
