// Wire-compatibility regression tests for the frame's Deadline
// extension. They live inside the package because the frame type is
// unexported. The pre-deadline replica cannot reuse the name "frame",
// but that is fine: gob value messages carry field/value encodings and a
// stream-local type ID, never type names (only descriptor messages name
// types), and the comparisons below strip the framing down to the value
// body.
package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// frameV4 is the PR-4 frame shape: every field up to and including
// Span, without the appended Deadline.
type frameV4 struct {
	ID     uint64
	Kind   byte
	Method string
	Body   []byte
	Err    string
	Trace  uint64
	Span   uint64
}

func sampleFrameV4() frameV4 {
	return frameV4{ID: 9, Kind: frameRequest, Method: "DIGRUBER.QuerySiteLoads",
		Body: []byte{1, 2, 3}, Trace: 77, Span: 5}
}

func sampleFrame() frame {
	return frame{ID: 9, Kind: frameRequest, Method: "DIGRUBER.QuerySiteLoads",
		Body: []byte{1, 2, 3}, Trace: 77, Span: 5}
}

// framePrimedEncode encodes prime (carrying the type descriptors) and
// then v on one gob stream, returning only v's message bytes — exactly
// what an established connection's persistent encoder transmits per
// frame.
func framePrimedEncode(t *testing.T, prime, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(prime); err != nil {
		t.Fatalf("prime: %v", err)
	}
	n := buf.Len()
	if err := enc.Encode(v); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return append([]byte(nil), buf.Bytes()[n:]...)
}

// frameValueBody strips a gob value message's framing — the byte-count
// prefix and the stream-local type ID — leaving the field/value
// encoding.
func frameValueBody(t *testing.T, msg []byte) []byte {
	t.Helper()
	skipUint := func(b []byte) []byte {
		if len(b) == 0 {
			t.Fatal("short gob message")
		}
		if b[0] < 0x80 {
			return b[1:]
		}
		return b[1+(256-int(b[0])):]
	}
	return skipUint(skipUint(msg))
}

// TestFrameDeadlineWireCompat is the regression gate for the Deadline
// extension: a frame without a deadline encodes byte-identically to the
// PR-4 shape (gob elides zero fields and delta-encodes field indices),
// so mixed-version meshes keep interoperating and old byte-level traces
// stay valid. This is why Deadline must stay the LAST frame field.
func TestFrameDeadlineWireCompat(t *testing.T) {
	oldMsg := framePrimedEncode(t, frameV4{ID: 1}, sampleFrameV4())
	newMsg := framePrimedEncode(t, frame{ID: 1}, sampleFrame())
	if old, new := frameValueBody(t, oldMsg), frameValueBody(t, newMsg); !bytes.Equal(old, new) {
		t.Fatalf("deadline-free frame value encoding changed:\n old %x\n new %x", old, new)
	}

	// And the field pays its way only when set.
	with := sampleFrame()
	with.Deadline = 1234567890
	extended := framePrimedEncode(t, frame{ID: 1}, with)
	if bytes.Equal(frameValueBody(t, newMsg), frameValueBody(t, extended)) {
		t.Fatal("setting Deadline did not change the encoding")
	}
}

// TestFrameDeadlineCrossDecode: the shapes interoperate in both
// directions — an old peer's frame decodes with Deadline zero (treated
// as "no deadline"), and a new frame's Deadline is silently dropped by
// an old decoder with every other field intact.
func TestFrameDeadlineCrossDecode(t *testing.T) {
	// Old sender → new receiver.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sampleFrameV4()); err != nil {
		t.Fatal(err)
	}
	var got frame
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleFrame()) {
		t.Fatalf("old→new decode mismatch:\n got %+v\nwant %+v", got, sampleFrame())
	}

	// New sender (with deadline) → old receiver.
	with := sampleFrame()
	with.Deadline = 42
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(with); err != nil {
		t.Fatal(err)
	}
	var old frameV4
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, sampleFrameV4()) {
		t.Fatalf("new→old decode mismatch:\n got %+v\nwant %+v", old, sampleFrameV4())
	}
}
