package wire

import (
	"sync/atomic"
	"time"

	"digruber/internal/tsdb"
)

// RegisterMetrics exposes the server's load counters as time series
// under prefix (e.g. prefix "dp/dp-0/wire" yields dp/dp-0/wire/inflight
// and friends). The cumulative counters (received, completed, shed,
// conn_lost, failed) pair with tsdb.Rate for the per-second views;
// inflight and queue are instantaneous gauges. Safe with a nil
// registry.
func (s *Server) RegisterMetrics(reg *tsdb.Registry, prefix string) {
	reg.GaugeFunc(prefix+"/inflight", func(now time.Time) float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc(prefix+"/queue", func(now time.Time) float64 { return float64(len(s.work)) })
	// Reserved-lane occupancy: zero series when no lane is configured.
	reg.GaugeFunc(prefix+"/lane_queue", func(now time.Time) float64 {
		if s.laneWork == nil {
			return 0
		}
		return float64(len(s.laneWork))
	})
	reg.GaugeFunc(prefix+"/lane_inflight", func(now time.Time) float64 { return float64(s.laneInflight.Load()) })
	for _, c := range []struct {
		name string
		v    *atomic.Int64
	}{
		{"/received", &s.received},
		{"/completed", &s.completed},
		{"/failed", &s.failed},
		{"/shed", &s.shed},
		{"/conn_lost", &s.connLost},
		{"/expired", &s.expired},
	} {
		v := c.v
		reg.GaugeFunc(prefix+c.name, func(now time.Time) float64 { return float64(v.Load()) })
	}
	reg.GaugeFunc(prefix+"/bytes_in", func(now time.Time) float64 {
		in, _ := s.bytes.totals()
		return float64(in)
	})
	reg.GaugeFunc(prefix+"/bytes_out", func(now time.Time) float64 {
		_, out := s.bytes.totals()
		return float64(out)
	})
}

// ClientMetrics aggregates call outcomes across one or more Clients
// sharing it (a fleet of submission hosts, a decision point's peer
// links). All methods are safe on a nil receiver, so un-instrumented
// clients pay one nil check per call.
type ClientMetrics struct {
	calls     atomic.Int64 // logical calls (CallCtx invocations)
	attempts  atomic.Int64 // individual attempts, retries included
	retries   atomic.Int64
	throttled atomic.Int64 // retries denied by the retry budget
	ok        atomic.Int64
	timeout   atomic.Int64
	overload  atomic.Int64
	refused   atomic.Int64
	lost      atomic.Int64
	expired   atomic.Int64
	other     atomic.Int64 // FailureClosed and application-level errors

	// bytes ledgers payload bytes sent/received, per method (bytes.go).
	bytes byteBook
}

// NewClientMetrics returns an empty, shareable counter set.
func NewClientMetrics() *ClientMetrics { return &ClientMetrics{} }

// Register exposes the counters as cumulative series under prefix
// (calls, attempts, retries, ok, timeout, overload, refused, lost,
// failed). Safe with a nil receiver or registry.
func (m *ClientMetrics) Register(reg *tsdb.Registry, prefix string) {
	if m == nil {
		return
	}
	for _, c := range []struct {
		name string
		v    *atomic.Int64
	}{
		{"/calls", &m.calls},
		{"/attempts", &m.attempts},
		{"/retries", &m.retries},
		{"/throttled", &m.throttled},
		{"/ok", &m.ok},
		{"/timeout", &m.timeout},
		{"/overload", &m.overload},
		{"/refused", &m.refused},
		{"/lost", &m.lost},
		{"/expired", &m.expired},
		{"/failed", &m.other},
	} {
		v := c.v
		reg.GaugeFunc(prefix+c.name, func(now time.Time) float64 { return float64(v.Load()) })
	}
	reg.GaugeFunc(prefix+"/bytes_sent", func(now time.Time) float64 {
		_, out := m.bytes.totals()
		return float64(out)
	})
	reg.GaugeFunc(prefix+"/bytes_received", func(now time.Time) float64 {
		in, _ := m.bytes.totals()
		return float64(in)
	})
}

func (m *ClientMetrics) onCall() {
	if m != nil {
		m.calls.Add(1)
	}
}

func (m *ClientMetrics) onAttempt() {
	if m != nil {
		m.attempts.Add(1)
	}
}

func (m *ClientMetrics) onRetry() {
	if m != nil {
		m.retries.Add(1)
	}
}

// onThrottle counts a retry the budget denied.
func (m *ClientMetrics) onThrottle() {
	if m != nil {
		m.throttled.Add(1)
	}
}

// onResult classifies a finished logical call's outcome.
func (m *ClientMetrics) onResult(err error) {
	if m == nil {
		return
	}
	if err == nil {
		m.ok.Add(1)
		return
	}
	switch Classify(err) {
	case FailureTimeout:
		m.timeout.Add(1)
	case FailureOverload:
		m.overload.Add(1)
	case FailureRefused:
		m.refused.Add(1)
	case FailureLost:
		m.lost.Add(1)
	case FailureExpired:
		m.expired.Add(1)
	default:
		m.other.Add(1)
	}
}

// ClientStats is a consistent-enough copy of the counters, for tests
// and status displays.
type ClientStats struct {
	Calls, Attempts, Retries         int64
	Throttled                        int64
	OK                               int64
	Timeout, Overload, Refused, Lost int64
	Expired                          int64
	Other                            int64
	// BytesSent and BytesReceived total the payload bytes shipped
	// (request bodies, every attempt) and received (response bodies)
	// across all methods; the per-method split is MethodIO.
	BytesSent     int64
	BytesReceived int64
}

// Stats returns the current counter values (zero for a nil receiver).
func (m *ClientMetrics) Stats() ClientStats {
	if m == nil {
		return ClientStats{}
	}
	in, out := m.bytes.totals()
	return ClientStats{
		BytesSent:     out,
		BytesReceived: in,
		Calls:         m.calls.Load(),
		Attempts:      m.attempts.Load(),
		Retries:       m.retries.Load(),
		Throttled:     m.throttled.Load(),
		OK:            m.ok.Load(),
		Timeout:       m.timeout.Load(),
		Overload:      m.overload.Load(),
		Refused:       m.refused.Load(),
		Lost:          m.lost.Load(),
		Expired:       m.expired.Load(),
		Other:         m.other.Load(),
	}
}
