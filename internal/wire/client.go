package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"digruber/internal/netsim"
	"digruber/internal/trace"
	"digruber/internal/vtime"
)

// Client is an RPC client bound to one server address. Every call pays
// the emulated WAN propagation delay between the client's node and the
// server's node in each direction, exactly as a GRUBER client on one
// PlanetLab node querying a decision point on another would. Calls may be
// issued concurrently; they multiplex over one connection.
type Client struct {
	node       string
	serverNode string
	addr       string
	transport  Transport
	network    *netsim.Network
	clock      vtime.Clock
	retry      RetryPolicy
	tracer     *trace.Tracer
	metrics    *ClientMetrics
	propagate  bool

	mu      sync.Mutex
	conn    Conn
	enc     *gob.Encoder
	pending map[uint64]chan frame
	nextID  uint64
	closed  bool

	// wmu serializes writes to the connection, separately from mu: a
	// request write can block on a backed-up pipe, and holding mu there
	// would stop readLoop from draining responses — the two directions
	// would deadlock through the server (same split as serverConn.wmu).
	wmu sync.Mutex
}

// ClientConfig collects the wiring a Client needs.
type ClientConfig struct {
	// Node is the emulated node the client runs on.
	Node string
	// ServerNode is the emulated node the target server runs on (used
	// for WAN delay sampling; may differ from the dial address).
	ServerNode string
	// Addr is the transport address to dial.
	Addr      string
	Transport Transport
	Network   *netsim.Network
	Clock     vtime.Clock
	// Retry optionally retries fast-failing calls (refused, connection
	// lost, shed). The zero value disables retry.
	Retry RetryPolicy
	// Tracer, when non-nil, records per-attempt and WAN-transit spans
	// for calls carrying a trace context (CallCtx). Nil disables tracing
	// at zero cost.
	Tracer *trace.Tracer
	// Metrics, when non-nil, counts calls, attempts, retries and
	// per-failure-class outcomes. A set may be shared by many clients to
	// aggregate a fleet; nil disables counting at zero cost.
	Metrics *ClientMetrics
	// PropagateDeadline stamps each request frame with the call's
	// absolute deadline, letting the server drop requests that expire in
	// its queue (ErrExpired) instead of burning a worker on them. Off by
	// default: unstamped frames are byte-identical to pre-deadline
	// builds.
	PropagateDeadline bool
}

// RetryPolicy bounds automatic retry of failed calls. Only failures the
// client observes quickly and that a fresh attempt can plausibly cure
// are retried — FailureRefused, FailureLost and FailureOverload.
// Timeouts are never retried: the caller already paid its full deadline
// and its own degradation path (DI-GRUBER's random fallback) owns what
// happens next.
type RetryPolicy struct {
	// Attempts is the total number of tries including the first;
	// values <= 1 disable retry.
	Attempts int
	// BaseBackoff is the pause before the second attempt; it doubles on
	// each further retry, capped at MaxBackoff (default 8x BaseBackoff).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterFrac in [0, 1] extends each backoff by a uniform draw in
	// [0, JitterFrac*backoff), decorrelating retry storms. Jitter
	// supplies the randomness (a netsim.Stream keeps it replayable);
	// with Jitter nil no jitter is applied.
	JitterFrac float64
	Jitter     interface{ Float64() float64 }
	// Budget, when non-nil, is a windowed retry budget (usually shared
	// fleet-wide): every retry must first win a token, and a denied
	// retry surfaces the original failure immediately. Backoff bounds
	// retries in time; the budget bounds them in volume — together they
	// cap a saturated fleet's retry amplification.
	Budget *RetryBudget
}

// enabled reports whether the policy retries at all.
func (p RetryPolicy) enabled() bool { return p.Attempts > 1 }

// retryable reports whether a failure class is worth another attempt.
func (p RetryPolicy) retryable(err error) bool {
	switch Classify(err) {
	case FailureRefused, FailureLost, FailureOverload:
		return true
	default:
		return false
	}
}

// backoff computes the pause before attempt n (n=1 is the first retry).
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < n; i++ {
		d *= 2
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 8 * p.BaseBackoff
	}
	if d > max {
		d = max
	}
	if p.JitterFrac > 0 && p.Jitter != nil && d > 0 {
		d += time.Duration(p.Jitter.Float64() * p.JitterFrac * float64(d))
	}
	return d
}

// NewClient returns a client; it dials lazily on first call.
func NewClient(cfg ClientConfig) *Client {
	return &Client{
		node:       cfg.Node,
		serverNode: cfg.ServerNode,
		addr:       cfg.Addr,
		transport:  cfg.Transport,
		network:    cfg.Network,
		clock:      cfg.Clock,
		retry:      cfg.Retry,
		tracer:     cfg.Tracer,
		metrics:    cfg.Metrics,
		propagate:  cfg.PropagateDeadline,
		pending:    make(map[uint64]chan frame),
	}
}

// Addr returns the server address the client dials.
func (c *Client) Addr() string { return c.addr }

// ensureConn dials if needed and returns the encoder. Caller must not
// hold c.mu.
func (c *Client) ensureConn() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.conn != nil {
		return nil
	}
	conn, err := c.transport.Dial(c.addr)
	if err != nil {
		return fmt.Errorf("%w: dial %s: %v", ErrRefused, c.addr, err)
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	go c.readLoop(conn)
	return nil
}

func (c *Client) readLoop(conn Conn) {
	dec := gob.NewDecoder(conn)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			c.dropConn(conn, err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ID]
		if ok {
			delete(c.pending, f.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- f // buffered; never blocks
		}
	}
}

// dropConn tears down a dead connection and fails its pending calls.
func (c *Client) dropConn(conn Conn, cause error) {
	c.mu.Lock()
	if c.conn != conn {
		c.mu.Unlock()
		return
	}
	c.conn = nil
	c.enc = nil
	orphans := c.pending
	c.pending = make(map[uint64]chan frame)
	c.mu.Unlock()
	_ = conn.Close()
	//lint:allow mapiter -- each orphaned call has its own reply channel; delivery order is immaterial
	for _, ch := range orphans {
		ch <- frame{Err: connLostPrefix + cause.Error()}
	}
}

// connLostPrefix marks locally-synthesized failure frames from dropConn
// so Call can map them back to the ErrConnLost sentinel. It never
// crosses the wire.
const connLostPrefix = "wire: connection lost: "

// Call performs one RPC with the given timeout. body is the gob-encoded
// request; the returned bytes are the gob-encoded response. On timeout it
// returns ErrTimeout — the caller's fallback logic (random site
// selection) takes over from there. Errors carry a FailureClass (see
// Classify); when a RetryPolicy is configured, fast retryable failures
// are re-attempted with exponential backoff before surfacing.
func (c *Client) Call(method string, body []byte, timeout time.Duration) ([]byte, error) {
	return c.CallCtx(trace.SpanContext{}, method, body, timeout)
}

// CallCtx is Call carrying a trace context: each attempt, each WAN
// transit and each retry backoff becomes a child span of parent, and
// the context rides the request frame so the server's own spans join
// the same trace. With a zero parent (or no Tracer configured) CallCtx
// behaves exactly like Call.
func (c *Client) CallCtx(parent trace.SpanContext, method string, body []byte, timeout time.Duration) ([]byte, error) {
	c.metrics.onCall()
	resp, err := c.callOnce(parent, method, body, timeout)
	if err == nil || !c.retry.enabled() {
		c.metrics.onResult(err)
		return resp, err
	}
	for attempt := 1; attempt < c.retry.Attempts && c.retry.retryable(err); attempt++ {
		// The budget check comes before the backoff sleep: a denied retry
		// should fail over (or degrade) immediately, not pay a pause for
		// an attempt it will never make.
		if !c.retry.Budget.Allow() {
			c.metrics.onThrottle()
			break
		}
		if d := c.retry.backoff(attempt); d > 0 {
			bs := c.tracer.StartSpan(parent, trace.PhaseBackoff)
			c.clock.Sleep(d)
			bs.End()
		}
		c.metrics.onRetry()
		resp, err = c.callOnce(parent, method, body, timeout)
		if err == nil {
			c.metrics.onResult(nil)
			return resp, nil
		}
	}
	c.metrics.onResult(err)
	return resp, err
}

// callOnce is a single RPC attempt, wrapped in its attempt span.
func (c *Client) callOnce(parent trace.SpanContext, method string, body []byte, timeout time.Duration) ([]byte, error) {
	c.metrics.onAttempt()
	attempt := c.tracer.StartSpan(parent, trace.PhaseAttempt)
	attempt.SetNote(method)
	resp, err := c.attemptCall(attempt.Context(), method, body, timeout)
	attempt.End()
	return resp, err
}

// attemptCall performs the attempt under ctx (zero when untraced).
func (c *Client) attemptCall(ctx trace.SpanContext, method string, body []byte, timeout time.Duration) ([]byte, error) {
	start := c.clock.Now()
	deadline := start.Add(timeout)

	// Outbound WAN propagation.
	if c.network != nil {
		d := c.network.Delay(c.node, c.serverNode)
		if d > 0 {
			ws := c.tracer.StartSpan(ctx, trace.PhaseWANOut)
			c.clock.Sleep(d)
			ws.End()
		}
		if c.network.LostMsg(c.node, c.serverNode, c.clock.Now()) {
			// The request vanished in the WAN; all the client observes is
			// silence until its timeout.
			c.sleepUntil(deadline)
			return nil, ErrTimeout
		}
	}

	if err := c.ensureConn(); err != nil {
		return nil, err
	}

	ch := make(chan frame, 1)
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	enc := c.enc
	conn := c.conn
	c.mu.Unlock()

	var dl int64
	if c.propagate {
		dl = deadline.UnixNano()
	}
	c.wmu.Lock()
	err := enc.Encode(frame{ID: id, Kind: frameRequest, Method: method, Body: body,
		Trace: ctx.Trace, Span: ctx.Span, Deadline: dl})
	c.wmu.Unlock()
	if err != nil {
		c.forget(id)
		c.dropConn(conn, err)
		return nil, fmt.Errorf("%w: send: %v", ErrConnLost, err)
	}
	c.metrics.onBytesSent(method, len(body))

	remaining := deadline.Sub(c.clock.Now())
	if remaining <= 0 {
		c.forget(id)
		return nil, ErrTimeout
	}
	select {
	case f := <-ch:
		c.metrics.onBytesReceived(method, len(f.Body))
		if f.Err != "" {
			switch {
			case f.Err == ErrOverloaded.Error():
				return nil, ErrOverloaded
			case f.Err == ErrExpired.Error():
				return nil, ErrExpired
			case f.Err == ErrDraining.Error():
				// A draining decision point's refusal travels as an
				// application error string; map it back to the sentinel so
				// Classify (and the failover layer) can see it.
				return nil, ErrDraining
			case strings.HasPrefix(f.Err, connLostPrefix):
				return nil, fmt.Errorf("%w: %s", ErrConnLost, strings.TrimPrefix(f.Err, connLostPrefix))
			}
			return nil, errors.New(f.Err)
		}
		// Inbound WAN propagation.
		if c.network != nil {
			if c.network.LostMsg(c.serverNode, c.node, c.clock.Now()) {
				c.sleepUntil(deadline)
				return nil, ErrTimeout
			}
			d := c.network.Delay(c.serverNode, c.node)
			if d > 0 {
				ws := c.tracer.StartSpan(ctx, trace.PhaseWANIn)
				c.clock.Sleep(d)
				ws.End()
			}
		}
		if c.clock.Now().After(deadline) {
			return nil, ErrTimeout
		}
		return f.Body, nil
	case <-c.clock.After(remaining):
		c.forget(id)
		return nil, ErrTimeout
	}
}

func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

func (c *Client) sleepUntil(deadline time.Time) {
	if d := deadline.Sub(c.clock.Now()); d > 0 {
		c.clock.Sleep(d)
	}
}

// Close tears the connection down; subsequent calls fail with ErrClosed.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.enc = nil
	c.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// Call performs a typed RPC through c: req is gob-encoded, the response
// is decoded into a Resp value.
func Call[Req, Resp any](c *Client, method string, req Req, timeout time.Duration) (Resp, error) {
	return CallCtx[Req, Resp](c, trace.SpanContext{}, method, req, timeout)
}

// CallCtx is the typed form of Client.CallCtx: a traced RPC whose
// attempt and WAN spans are children of parent.
func CallCtx[Req, Resp any](c *Client, parent trace.SpanContext, method string, req Req, timeout time.Duration) (Resp, error) {
	var resp Resp
	body, err := encodeBody(req)
	if err != nil {
		return resp, err
	}
	respBody, err := c.CallCtx(parent, method, body, timeout)
	if err != nil {
		return resp, err
	}
	if err := decodeBody(respBody, &resp); err != nil {
		return resp, err
	}
	return resp, nil
}
