package wire

import (
	"testing"
	"time"

	"digruber/internal/trace"
	"digruber/internal/vtime"
)

// BenchmarkRPCRoundTripMem measures the raw request/response path over
// the in-memory transport with no emulated container cost — the floor
// under every emulated interaction.
func BenchmarkRPCRoundTripMem(b *testing.B) {
	mem := NewMem()
	srv := NewServer("bench-srv", Instant(), vtime.NewReal())
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	l, err := mem.Listen("bench")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer func() { srv.Close(); l.Close() }()
	cli := NewClient(ClientConfig{Node: "c", ServerNode: "s", Addr: "bench", Transport: mem, Clock: vtime.NewReal()})
	defer cli.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Call[echoReq, echoResp](cli, "echo", echoReq{Msg: "x"}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCLargePayload measures a DI-GRUBER-query-sized (24 KiB)
// response through the stack.
func BenchmarkRPCLargePayload(b *testing.B) {
	mem := NewMem()
	srv := NewServer("bench-srv", Instant(), vtime.NewReal())
	payload := make([]byte, 24<<10)
	Handle(srv, "big", func(r echoReq) (struct{ Data []byte }, error) {
		return struct{ Data []byte }{Data: payload}, nil
	})
	l, err := mem.Listen("bench-big")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer func() { srv.Close(); l.Close() }()
	cli := NewClient(ClientConfig{Node: "c", ServerNode: "s", Addr: "bench-big", Transport: mem, Clock: vtime.NewReal()})
	defer cli.Close()

	b.SetBytes(24 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Call[echoReq, struct{ Data []byte }](cli, "big", echoReq{}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCRoundTripTraced measures the enabled-tracing cost of the
// in-memory round trip: a fresh trace per call, with the client attempt
// span and the server's queue/handle spans landing in a shared
// collector. Compare against BenchmarkRPCRoundTripMem (the nil-tracer
// fast path) for the overhead of turning tracing on.
func BenchmarkRPCRoundTripTraced(b *testing.B) {
	clock := vtime.NewReal()
	col := trace.NewCollector(0)
	cliTracer := trace.New(trace.Config{Actor: "c", Seed: 1, Clock: clock, Collector: col})
	srvTracer := trace.New(trace.Config{Actor: "s", Seed: 2, Clock: clock, Collector: col})

	mem := NewMem()
	srv := NewServer("bench-srv", Instant(), clock)
	srv.SetTracer(srvTracer)
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	l, err := mem.Listen("bench-traced")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer func() { srv.Close(); l.Close() }()
	cli := NewClient(ClientConfig{Node: "c", ServerNode: "s", Addr: "bench-traced", Transport: mem, Clock: clock, Tracer: cliTracer})
	defer cli.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if col.Len() >= DefaultTracedBenchResetAt {
			col.Reset() // keep measuring appends, not the drop path
		}
		root := cliTracer.StartTrace(trace.PhaseSchedule)
		if _, err := CallCtx[echoReq, echoResp](cli, root.Context(), "echo", echoReq{Msg: "x"}, time.Second); err != nil {
			b.Fatal(err)
		}
		root.End()
	}
}

// DefaultTracedBenchResetAt bounds the collector growth during the
// traced benchmark without ever reaching the drop path.
const DefaultTracedBenchResetAt = 1 << 18

// BenchmarkRPCRoundTripTCP measures the same floor over loopback TCP,
// the cmd/ binaries' deployment mode.
func BenchmarkRPCRoundTripTCP(b *testing.B) {
	srv := NewServer("bench-srv", Instant(), vtime.NewReal())
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	l, err := TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer func() { srv.Close(); l.Close() }()
	cli := NewClient(ClientConfig{Node: "c", ServerNode: "s", Addr: l.Addr(), Transport: TCP{}, Clock: vtime.NewReal()})
	defer cli.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Call[echoReq, echoResp](cli, "echo", echoReq{Msg: "x"}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
