package wire

import (
	"testing"
	"time"

	"digruber/internal/vtime"
)

// BenchmarkRPCRoundTripMem measures the raw request/response path over
// the in-memory transport with no emulated container cost — the floor
// under every emulated interaction.
func BenchmarkRPCRoundTripMem(b *testing.B) {
	mem := NewMem()
	srv := NewServer("bench-srv", Instant(), vtime.NewReal())
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	l, err := mem.Listen("bench")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer func() { srv.Close(); l.Close() }()
	cli := NewClient(ClientConfig{Node: "c", ServerNode: "s", Addr: "bench", Transport: mem, Clock: vtime.NewReal()})
	defer cli.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Call[echoReq, echoResp](cli, "echo", echoReq{Msg: "x"}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCLargePayload measures a DI-GRUBER-query-sized (24 KiB)
// response through the stack.
func BenchmarkRPCLargePayload(b *testing.B) {
	mem := NewMem()
	srv := NewServer("bench-srv", Instant(), vtime.NewReal())
	payload := make([]byte, 24<<10)
	Handle(srv, "big", func(r echoReq) (struct{ Data []byte }, error) {
		return struct{ Data []byte }{Data: payload}, nil
	})
	l, err := mem.Listen("bench-big")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer func() { srv.Close(); l.Close() }()
	cli := NewClient(ClientConfig{Node: "c", ServerNode: "s", Addr: "bench-big", Transport: mem, Clock: vtime.NewReal()})
	defer cli.Close()

	b.SetBytes(24 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Call[echoReq, struct{ Data []byte }](cli, "big", echoReq{}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCRoundTripTCP measures the same floor over loopback TCP,
// the cmd/ binaries' deployment mode.
func BenchmarkRPCRoundTripTCP(b *testing.B) {
	srv := NewServer("bench-srv", Instant(), vtime.NewReal())
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	l, err := TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer func() { srv.Close(); l.Close() }()
	cli := NewClient(ClientConfig{Node: "c", ServerNode: "s", Addr: l.Addr(), Transport: TCP{}, Clock: vtime.NewReal()})
	defer cli.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Call[echoReq, echoResp](cli, "echo", echoReq{Msg: "x"}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
