package wire

import "time"

// StackProfile emulates the per-request cost structure of a web-service
// container. The paper attributes GRUBER's service-side cost primarily to
// GSI authentication and SOAP processing, and observes that the GT4
// prerelease it ported DI-GRUBER to was slower than GT3.2 (while the GT4
// final release was faster). Profiles capture that with four knobs:
//
//   - AuthOverhead: fixed security/handshake cost per request;
//   - BaseOverhead: container dispatch cost per request;
//   - PerKB: (de)serialization cost per KiB of request+response payload —
//     this is what makes a full GRUBER query (site-state for hundreds of
//     sites) an order of magnitude more expensive than the simple service
//     instance creation of Figure 1;
//   - MaxConcurrent: the container's request-processing parallelism.
//
// A request occupies one of MaxConcurrent workers for its whole service
// time; arrivals beyond QueueLimit waiting requests are shed.
type StackProfile struct {
	Name          string
	AuthOverhead  time.Duration
	BaseOverhead  time.Duration
	PerKB         time.Duration
	MaxConcurrent int
	// QueueLimit bounds the number of requests waiting for a worker;
	// 0 means a generous default. Requests beyond it get ErrOverloaded.
	QueueLimit int
}

// ServiceTime computes how long a request with the given payload size
// (request + response bytes) occupies a worker.
func (p StackProfile) ServiceTime(payloadBytes int) time.Duration {
	kb := float64(payloadBytes) / 1024
	return p.AuthOverhead + p.BaseOverhead + time.Duration(kb*float64(p.PerKB))
}

// GT3 models the Globus Toolkit 3.2 Java WS container: a simple
// instance-creation request (≈0.2 KiB) costs ≈0.2 s, saturating around
// 18 req/s with four workers (Figure 1), while a full GRUBER scheduling
// query moving tens of KiB of site state costs ≈1 s.
func GT3() StackProfile {
	return StackProfile{
		Name:          "GT3",
		AuthOverhead:  120 * time.Millisecond,
		BaseOverhead:  60 * time.Millisecond,
		PerKB:         28 * time.Millisecond,
		MaxConcurrent: 4,
	}
}

// GT4 models the GT 3.9.4 prerelease of GT4 used in the paper, which was
// functionally equivalent to but noticeably slower than the GT4 final
// release — and slower than GT3.2. A single GT4 decision point plateaus
// around half the GT3 throughput.
func GT4() StackProfile {
	return StackProfile{
		Name:          "GT4",
		AuthOverhead:  250 * time.Millisecond,
		BaseOverhead:  120 * time.Millisecond,
		PerKB:         56 * time.Millisecond,
		MaxConcurrent: 4,
	}
}

// GT4C models the C-based WS core the paper's conclusion proposes as a
// future performance improvement: an order of magnitude cheaper request
// processing. Used by the ablation experiments only.
func GT4C() StackProfile {
	return StackProfile{
		Name:          "GT4C",
		AuthOverhead:  15 * time.Millisecond,
		BaseOverhead:  8 * time.Millisecond,
		PerKB:         3 * time.Millisecond,
		MaxConcurrent: 16,
	}
}

// Instant is a profile with no emulated cost, for unit tests.
func Instant() StackProfile {
	return StackProfile{Name: "instant", MaxConcurrent: 64}
}

// Workers reports the effective request-processing parallelism.
func (p StackProfile) Workers() int { return p.workers() }

func (p StackProfile) queueLimit() int {
	if p.QueueLimit > 0 {
		return p.QueueLimit
	}
	return 4096
}

func (p StackProfile) workers() int {
	if p.MaxConcurrent > 0 {
		return p.MaxConcurrent
	}
	return 1
}
