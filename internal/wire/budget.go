package wire

import (
	"sync"
	"sync/atomic"
	"time"

	"digruber/internal/vtime"
)

// RetryBudget is a windowed cap on retry volume: a token bucket refilled
// off the virtual clock, typically shared by a whole fleet of clients.
// Per-call exponential backoff decorrelates retries in time, but it does
// not bound them in volume — when a saturated server sheds every request,
// every client retries, and the offered load multiplies by the attempt
// count exactly when the server can least afford it (the classic retry
// storm). A shared budget caps that amplification: each retry spends one
// token, tokens refill at Rate per second of virtual time up to Burst,
// and a client whose retry is denied surfaces the original failure
// immediately instead of piling on.
//
// Refill is a pure function of elapsed virtual time, so Manual-clock
// runs replay budget decisions bit-for-bit. A nil *RetryBudget allows
// everything (retry policies without one behave as before).
type RetryBudget struct {
	clock vtime.Clock
	rate  float64 // tokens per second of virtual time
	burst float64

	mu     sync.Mutex
	tokens float64
	last   time.Time

	throttled atomic.Int64
}

// NewRetryBudget returns a full bucket refilling at rate tokens/s up to
// burst. Non-positive rate or burst values are clamped to a minimal
// working budget (1 token/s, burst 1) rather than a dead one.
func NewRetryBudget(clock vtime.Clock, rate, burst float64) *RetryBudget {
	if rate <= 0 {
		rate = 1
	}
	if burst <= 0 {
		burst = 1
	}
	return &RetryBudget{
		clock:  clock,
		rate:   rate,
		burst:  burst,
		tokens: burst,
		last:   clock.Now(),
	}
}

// Allow spends one token if available and reports whether the retry may
// proceed. Denials are counted (see Throttled). Nil receivers always
// allow.
func (b *RetryBudget) Allow() bool {
	if b == nil {
		return true
	}
	now := b.clock.Now()
	b.mu.Lock()
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		b.mu.Unlock()
		return true
	}
	b.mu.Unlock()
	b.throttled.Add(1)
	return false
}

// Throttled reports how many retries the budget has denied (zero for a
// nil receiver).
func (b *RetryBudget) Throttled() int64 {
	if b == nil {
		return 0
	}
	return b.throttled.Load()
}
