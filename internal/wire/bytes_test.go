package wire

import (
	"testing"
	"time"

	"digruber/internal/tsdb"
	"digruber/internal/vtime"
)

// TestByteAccountingBothEnds: the server's per-method ledger and a
// shared ClientMetrics ledger agree with each other — what the client
// sent is what the server received, method by method — and the totals
// surface on Stats/ClientStats and as registered series.
func TestByteAccountingBothEnds(t *testing.T) {
	clock := vtime.NewReal()
	mem := NewMem()
	srv := NewServer("server-node", Instant(), clock)
	l, err := mem.Listen("dp-0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close(); l.Close() })
	Handle(srv, "echo", func(r echoReq) (echoResp, error) { return echoResp(r), nil })
	Handle(srv, "swallow", func(r echoReq) (echoResp, error) { return echoResp{}, nil })

	m := NewClientMetrics()
	cli := NewClient(ClientConfig{
		Node: "client-node", ServerNode: "server-node",
		Addr: "dp-0", Transport: mem, Clock: clock, Metrics: m,
	})
	t.Cleanup(cli.Close)

	for i := 0; i < 3; i++ {
		if _, err := Call[echoReq, echoResp](cli, "echo", echoReq{Msg: "payload-bytes"}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Call[echoReq, echoResp](cli, "swallow", echoReq{Msg: "payload-bytes"}, time.Second); err != nil {
		t.Fatal(err)
	}

	ss := srv.Stats()
	if ss.BytesIn == 0 || ss.BytesOut == 0 {
		t.Fatalf("server totals BytesIn=%d BytesOut=%d; want both > 0", ss.BytesIn, ss.BytesOut)
	}
	cs := m.Stats()
	if cs.BytesSent != ss.BytesIn {
		t.Fatalf("client sent %d bytes but server received %d", cs.BytesSent, ss.BytesIn)
	}
	if cs.BytesReceived != ss.BytesOut {
		t.Fatalf("client received %d bytes but server sent %d", cs.BytesReceived, ss.BytesOut)
	}

	sm, cm := srv.MethodIO(), m.MethodIO()
	if len(sm) != 2 || len(cm) != 2 {
		t.Fatalf("per-method maps: server %v client %v; want 2 methods each", sm, cm)
	}
	if sm["echo"].In != cm["echo"].Out || sm["echo"].Out != cm["echo"].In {
		t.Fatalf("echo ledgers disagree: server %+v client %+v", sm["echo"], cm["echo"])
	}
	if sm["echo"].In != 3*(sm["swallow"].In) {
		t.Fatalf("3 echo requests should carry 3x one swallow request: %+v vs %+v", sm["echo"], sm["swallow"])
	}
	// swallow's zero-valued response body encodes smaller than its echo.
	if sm["swallow"].Out >= sm["echo"].Out/3 {
		t.Fatalf("swallow response bytes %d not smaller than an echo's %d", sm["swallow"].Out, sm["echo"].Out/3)
	}

	// The registered series expose the same numbers.
	reg := tsdb.New(0)
	srv.RegisterMetrics(reg, "srv")
	srv.RegisterMethodMetrics(reg, "srv", "echo", "swallow")
	m.Register(reg, "cli")
	m.RegisterMethodMetrics(reg, "cli", "echo")
	reg.Sample(clock.Now())
	for name, want := range map[string]float64{
		"srv/bytes_in":                 float64(ss.BytesIn),
		"srv/bytes_out":                float64(ss.BytesOut),
		"srv/method/echo/bytes_in":     float64(sm["echo"].In),
		"srv/method/swallow/bytes_out": float64(sm["swallow"].Out),
		"cli/bytes_sent":               float64(cs.BytesSent),
		"cli/bytes_received":           float64(cs.BytesReceived),
		"cli/method/echo/bytes_out":    float64(cm["echo"].Out),
	} {
		p, ok := reg.Latest(name)
		if !ok || p.V != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, p.V, ok, want)
		}
	}
}

// TestByteAccountingNilSafe: nil receivers take every bytes path.
func TestByteAccountingNilSafe(t *testing.T) {
	var m *ClientMetrics
	m.onBytesSent("x", 10)
	m.onBytesReceived("x", 10)
	m.RegisterMethodMetrics(tsdb.New(0), "p", "x")
	if got := m.MethodIO(); got != nil {
		t.Fatalf("nil MethodIO = %v", got)
	}
}
