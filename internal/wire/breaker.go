package wire

import (
	"sync"
	"time"

	"digruber/internal/vtime"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed passes calls through and watches for consecutive
	// failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails calls locally without touching the wire, until
	// the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome
	// decides between re-closing and re-opening.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// BreakerConfig parameterizes a Breaker.
type BreakerConfig struct {
	Clock vtime.Clock
	// Threshold is the consecutive-failure count that trips the breaker
	// (default 5). Zero or negative uses the default; callers gating on
	// "breaker configured at all" should check their own config, not
	// this field.
	Threshold int
	// Cooldown is how long an open breaker waits before letting a
	// half-open probe through (default 30 s of virtual time).
	Cooldown time.Duration
	// OnTransition, when non-nil, observes every state change (for
	// metrics counters). Called outside the breaker's lock.
	OnTransition func(from, to BreakerState)
}

// Breaker is a per-destination circuit breaker over wire failure
// classes, driven entirely by the virtual clock so Manual-clock runs
// replay its transitions deterministically.
//
// Closed→Open: Threshold consecutive transport-level failures (shed,
// conn-lost, refused, timeout, expired — anything that says "the far
// end is unhealthy or drowning"). Application-level errors come from a
// server that is up and answering, so they reset the streak like a
// success. Open→HalfOpen: the first Allow after Cooldown elapses admits
// one probe. HalfOpen→Closed on probe success, HalfOpen→Open on probe
// failure.
//
// A nil *Breaker allows everything and records nothing, so callers
// without breaking configured pay one nil check.
type Breaker struct {
	clock     vtime.Clock
	threshold int
	cooldown  time.Duration
	onChange  func(from, to BreakerState)

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool // half-open: one probe in flight
}

// NewBreaker builds a breaker from its config.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 30 * time.Second
	}
	return &Breaker{
		clock:     cfg.Clock,
		threshold: cfg.Threshold,
		cooldown:  cfg.Cooldown,
		onChange:  cfg.OnTransition,
	}
}

// transitionLocked moves the breaker to next and returns the callback to
// fire after unlocking (nil when the state did not change).
func (b *Breaker) transitionLocked(next BreakerState) func() {
	if b.state == next {
		return nil
	}
	from := b.state
	b.state = next
	if cb := b.onChange; cb != nil {
		return func() { cb(from, next) }
	}
	return nil
}

// Allow reports whether a call to the destination may proceed. An open
// breaker whose cooldown has elapsed flips to half-open and admits the
// caller as its single probe. Nil receivers always allow.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	var notify func()
	allowed := false
	switch b.state {
	case BreakerClosed:
		allowed = true
	case BreakerOpen:
		if !b.clock.Now().Before(b.openedAt.Add(b.cooldown)) {
			notify = b.transitionLocked(BreakerHalfOpen)
			b.probing = true
			allowed = true
		}
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			allowed = true
		}
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
	return allowed
}

// Record feeds one call outcome into the breaker. Call it only for
// calls that actually went to the wire (not for calls Allow rejected).
func (b *Breaker) Record(err error) {
	if b == nil {
		return
	}
	failure := false
	switch Classify(err) {
	case FailureOverload, FailureLost, FailureRefused, FailureTimeout, FailureExpired:
		failure = true
	case FailureClosed:
		// Locally-closed client: says nothing about the far end.
		return
	case FailureDraining:
		// A draining refusal is proof of life, not failure: the far end
		// answered, it is just retiring. Failover owns the reaction; the
		// breaker treats it like any successful contact.
	}
	b.mu.Lock()
	var notify func()
	if failure {
		switch b.state {
		case BreakerHalfOpen:
			// The probe failed: back to open, cooldown restarts.
			notify = b.transitionLocked(BreakerOpen)
			b.openedAt = b.clock.Now()
			b.probing = false
			b.fails = 0
		case BreakerClosed:
			b.fails++
			if b.fails >= b.threshold {
				notify = b.transitionLocked(BreakerOpen)
				b.openedAt = b.clock.Now()
				b.fails = 0
			}
		}
	} else {
		switch b.state {
		case BreakerHalfOpen:
			notify = b.transitionLocked(BreakerClosed)
			b.probing = false
			b.fails = 0
		case BreakerClosed:
			b.fails = 0
		}
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// State returns the breaker's current position (closed for nil). It
// does not advance open→half-open; only Allow does, so replayed runs
// transition at the same observation points.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
