package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Conn is a bidirectional byte stream between a client and a server.
type Conn = io.ReadWriteCloser

// Listener accepts inbound connections for a server.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the address clients dial to reach this listener.
	Addr() string
}

// Transport creates listeners and dials them. Two implementations exist:
// TCP (real sockets, used by the cmd/ binaries) and Mem (in-process
// net.Pipe pairs, used by experiments and tests — thousands of emulated
// WAN connections without touching the host network stack).
type Transport interface {
	// Listen binds a listener. For TCP, addr may be "host:0" to pick a
	// free port; the effective address is Listener.Addr.
	Listen(addr string) (Listener, error)
	// Dial connects to a listener's address.
	Dial(addr string) (Conn, error)
}

// TCP is a Transport over real TCP sockets.
type TCP struct{}

// Listen implements Transport.
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return tcpListener{l}, nil
}

// Dial implements Transport.
func (TCP) Dial(addr string) (Conn, error) { return net.Dial("tcp", addr) }

type tcpListener struct{ l net.Listener }

func (t tcpListener) Accept() (Conn, error) { return t.l.Accept() }
func (t tcpListener) Close() error          { return t.l.Close() }
func (t tcpListener) Addr() string          { return t.l.Addr().String() }

// Mem is an in-process Transport. Addresses are arbitrary strings scoped
// to one Mem instance. The zero value is not usable; call NewMem.
type Mem struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

// NewMem returns an empty in-process transport.
func NewMem() *Mem { return &Mem{listeners: make(map[string]*memListener)} }

// Listen implements Transport.
func (m *Mem) Listen(addr string) (Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == "" {
		return nil, errors.New("wire: mem listener needs a non-empty address")
	}
	if _, exists := m.listeners[addr]; exists {
		return nil, fmt.Errorf("wire: address %q already bound", addr)
	}
	l := &memListener{mem: m, addr: addr, conns: make(chan Conn), done: make(chan struct{})}
	m.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (m *Mem) Dial(addr string) (Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("wire: no listener at %q", addr)
	}
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("wire: listener at %q closed", addr)
	}
}

type memListener struct {
	mem   *Mem
	addr  string
	conns chan Conn
	done  chan struct{}
	once  sync.Once
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.mem.mu.Lock()
		delete(l.mem.listeners, l.addr)
		l.mem.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() string { return l.addr }
