package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// TypeLoader resolves and type-checks packages on demand, giving the
// semantic analyzers (wireschema, mapiter, lockheld) full go/types
// information on the standard library alone. In-module import paths are
// located under Root and type-checked recursively; everything else
// (the standard library and its vendored dependencies) is delegated to
// go/importer's source importer, which type-checks GOROOT sources
// directly — no compiled export data and no network access required.
//
// All packages loaded through one TypeLoader share one token.FileSet, so
// positions from any reachable declaration — including structs pulled in
// through imports rather than named on the command line — resolve
// correctly in diagnostics.
type TypeLoader struct {
	// Module is the module path in-module imports are resolved under.
	Module string
	// Root is the module root directory on disk.
	Root string
	// Fset positions every file parsed by this loader and every Package
	// attached to it.
	Fset *token.FileSet

	source types.ImporterFrom
	mu     sync.Mutex
	pkgs   map[string]*types.Package
	errs   map[string]error
}

// disableCgo switches off cgo in the shared go/build context exactly
// once. The source importer would otherwise try to run the cgo tool for
// packages like net; with cgo off, go/build selects their pure-Go
// fallback files, which is both hermetic and what the repo builds with.
var disableCgo = sync.Once{}

// NewTypeLoader returns a loader for the module rooted at root.
func NewTypeLoader(module, root string) *TypeLoader {
	disableCgo.Do(func() { build.Default.CgoEnabled = false })
	fset := token.NewFileSet()
	l := &TypeLoader{
		Module: module,
		Root:   root,
		Fset:   fset,
		pkgs:   map[string]*types.Package{},
		errs:   map[string]error{},
	}
	if src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom); ok {
		l.source = src
	}
	return l
}

// Import implements types.Importer.
func (l *TypeLoader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom. In-module paths load from
// disk under Root; all other paths go to the GOROOT source importer.
func (l *TypeLoader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l.mu.Lock()
	if p, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return p, nil
	}
	if err, ok := l.errs[path]; ok {
		l.mu.Unlock()
		return nil, err
	}
	l.mu.Unlock()

	var p *types.Package
	var err error
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		p, err = l.checkModulePackage(path)
	} else if l.source != nil {
		p, err = l.source.ImportFrom(path, dir, mode)
	} else {
		err = fmt.Errorf("lint: no source importer for %q", path)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		l.errs[path] = err
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// checkModulePackage parses and type-checks the non-test files of one
// in-module package for import purposes. Analysis of a package's own
// files, tests included, goes through Check instead.
func (l *TypeLoader) checkModulePackage(path string) (*types.Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	files, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files for %q in %s", path, dir)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	return pkg, nil
}

// parseDir parses the buildable .go files of dir into the loader's
// FileSet, honouring build constraints (race-tagged files, GOOS/GOARCH
// suffixes) via go/build, so mutually-exclusive files never collide.
func (l *TypeLoader) parseDir(dir string, tests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	return files, nil
}

// Check type-checks pkg's already-parsed files in place, filling
// pkg.Types and pkg.TypesInfo. The package is checked in up to two
// units, mirroring the go tool: the base package together with its
// in-package test files, and the external _test package. Both record
// into one shared types.Info, so analyzers look types up without caring
// which unit a file belongs to. Files excluded by build constraints
// (e.g. //go:build race under a raceless run) are marked NoTypes and get
// no type information; typed analyzers skip what they cannot resolve.
func (l *TypeLoader) Check(pkg *Package) error {
	if pkg.TypesInfo != nil {
		return nil
	}
	if pkg.Fset != l.Fset {
		return fmt.Errorf("lint: package %s was not parsed with this loader's FileSet", pkg.ImportPath)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Instances:  map[*ast.Ident]types.Instance{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var base, xtest []*ast.File
	for _, f := range pkg.Files {
		ok, err := build.Default.MatchFile(pkg.Dir, filepath.Base(f.Name))
		if err != nil || !ok {
			f.NoTypes = true
			continue
		}
		if strings.HasSuffix(f.AST.Name.Name, "_test") {
			xtest = append(xtest, f.AST)
		} else {
			base = append(base, f.AST)
		}
	}
	if len(base) > 0 {
		conf := types.Config{Importer: l}
		p, err := conf.Check(pkg.ImportPath, pkg.Fset, base, info)
		if err != nil {
			return fmt.Errorf("lint: type-check %s: %w", pkg.ImportPath, err)
		}
		pkg.Types = p
		// Seed the import cache so the xtest unit (and later packages)
		// resolve this import path to the unit just checked — which, unlike
		// a fresh import, includes the in-package test declarations. Never
		// overwrite an instance handed out earlier: packages already
		// checked hold references into it, and replacing it would split
		// type identity mid-run.
		l.mu.Lock()
		if _, ok := l.pkgs[pkg.ImportPath]; !ok {
			l.pkgs[pkg.ImportPath] = p
		}
		l.mu.Unlock()
	}
	if len(xtest) > 0 {
		// The go vet driver presents the external test unit as its own
		// package whose import path already carries the _test suffix;
		// direct mode reaches here with the base path. Either way the
		// checked unit's path must be the canonical <base>_test, since
		// wireschema keys lockfile entries by it.
		xpath := pkg.ImportPath
		if !strings.HasSuffix(xpath, "_test") {
			xpath += "_test"
		}
		conf := types.Config{Importer: l}
		if _, err := conf.Check(xpath, pkg.Fset, xtest, info); err != nil {
			return fmt.Errorf("lint: type-check %s: %w", xpath, err)
		}
	}
	pkg.TypesInfo = info
	return nil
}
