package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockHeld flags blocking operations performed while a mutex is held —
// the deadlock shapes -race cannot see, because they are liveness bugs,
// not data races. It grew out of the original lockedrpc pass and now
// polices four operations under any held lock:
//
//   - RPCs into internal/wire (wire.Call and .Call methods): the classic
//     broker-deadlock shape in the state-exchange mesh — decision point A
//     holds its state lock while calling peer B, whose handler needs its
//     own lock while calling back into A. Emulated WAN latency makes the
//     window enormous (hundreds of virtual milliseconds).
//   - Channel sends: a full or unbuffered channel parks the goroutine
//     with the lock held; if the draining goroutine needs that lock, the
//     system wedges. Sends inside a select that has a default clause are
//     non-blocking and exempt.
//   - Sleeps (vtime Clock.Sleep and time.Sleep, resolved through type
//     information): under a Manual clock a sleeping goroutine only wakes
//     when the driver advances virtual time, so a sleep under a lock
//     serializes the whole fleet on one mutex — or deadlocks it if the
//     advancing goroutine wants the lock.
//   - sync.Cond.Wait: Wait releases only the Cond's own locker. Waiting
//     while holding a second mutex deadlocks; waiting on the Cond's own
//     locker is the one legitimate shape and gets an annotation.
//
// The analysis is a per-function, flow-insensitive-but-ordered walk:
// x.Lock()/x.RLock() marks x held, x.Unlock()/x.RUnlock() releases it,
// and "defer x.Unlock()" keeps x held to the end of the function.
// Goroutine bodies start with no inherited locks (the spawner's locks do
// not transfer); other function literals inherit the current set, which
// covers immediately-invoked and synchronous-callback patterns.
// Branches operate on a copy of the held set, so a lock taken inside an
// if-arm does not leak past it. The sleep and cond-wait checks need
// type information; in files excluded from type checking by build
// constraints only the syntactic RPC and send checks run. False
// positives on genuinely safe shapes get a
// "//lint:allow lockheld -- reason" annotation.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc: "forbid blocking while a mutex is held: RPCs into internal/wire, " +
		"channel sends, Clock.Sleep/time.Sleep and sync.Cond.Wait; " +
		"copy state under the lock, release, then block",
	SkipTests:  false,
	NeedsTypes: true,
	Run:        runLockHeld,
}

func runLockHeld(pass *Pass) error {
	// The vtime package is the clock implementation itself: a Manual
	// clock legitimately parks waiters under its own mutex — that is
	// what "advancing virtual time" means.
	if pass.Pkg.ImportPath == pass.Pkg.Module+"/internal/vtime" {
		return nil
	}
	for _, f := range pass.Files() {
		w := &lockWalker{
			pass: pass,
			wire: importedAs(f.AST, pass.Pkg.Module+"/internal/wire"),
			info: pass.Pkg.TypesInfo,
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w.block(fd.Body.List, map[string]bool{})
		}
	}
	return nil
}

type lockWalker struct {
	pass *Pass
	wire string // local import name of internal/wire, "" if not imported
	info *types.Info
}

func (w *lockWalker) block(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		w.stmt(s, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case nil:
		return
	case *ast.ExprStmt:
		if recv, op, ok := lockOp(s.X); ok {
			switch op {
			case opLock:
				held[recv] = true
			case opUnlock:
				delete(held, recv)
			}
			return
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// "defer x.Unlock()" pins x held to function end — exactly the
		// window the analyzer polices — so the held set is unchanged.
		if _, op, ok := lockOp(s.Call); ok && op == opUnlock {
			return
		}
		w.expr(s.Call, held)
	case *ast.GoStmt:
		// The goroutine does not inherit the spawner's locks; its
		// arguments are still evaluated here.
		for _, arg := range s.Call.Args {
			w.expr(arg, held)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.block(fl.Body.List, map[string]bool{})
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.send(s, held)
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.BlockStmt:
		w.block(s.List, held)
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		w.block(s.Body.List, copyHeld(held))
		w.stmt(s.Else, copyHeld(held))
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		inner := copyHeld(held)
		w.block(s.Body.List, inner)
		w.stmt(s.Post, inner)
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.block(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		// A select with a default clause never blocks: its comm sends
		// are attempts, not parks, so they are exempt from the
		// send-under-lock rule. Clause bodies are still walked.
		nonblocking := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				nonblocking = true
			}
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := copyHeld(held)
				if send, ok := cc.Comm.(*ast.SendStmt); ok && nonblocking {
					w.expr(send.Chan, inner)
					w.expr(send.Value, inner)
				} else {
					w.stmt(cc.Comm, inner)
				}
				w.block(cc.Body, inner)
			}
		}
	}
}

// send reports a channel send performed while locks are held.
func (w *lockWalker) send(s *ast.SendStmt, held map[string]bool) {
	w.expr(s.Chan, held)
	w.expr(s.Value, held)
	if len(held) > 0 {
		w.pass.Reportf(s.Arrow,
			"channel send %s <- while holding %s; a full (or unbuffered) channel parks the goroutine with the lock held (deadlock shape); send after releasing, or use a select with default",
			types.ExprString(s.Chan), heldNames(held))
	}
}

// expr reports blocking calls reached while locks are held. Function
// literals inherit the current held set (synchronous-callback
// assumption); go statements are handled in stmt.
func (w *lockWalker) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.block(n.Body.List, copyHeld(held))
			return false
		case *ast.CallExpr:
			if len(held) == 0 {
				return true
			}
			if callee := w.rpcCallee(n); callee != "" {
				w.pass.Reportf(n.Pos(),
					"RPC %s while holding %s; copy state under the lock, release it, then call the wire (mesh-deadlock shape)",
					callee, heldNames(held))
				return true
			}
			switch kind, callee := w.blockingCallee(n); kind {
			case blockSleep:
				w.pass.Reportf(n.Pos(),
					"%s while holding %s; a sleeping goroutine keeps the lock for the whole (virtual) duration — release before sleeping",
					callee, heldNames(held))
			case blockCondWait:
				w.pass.Reportf(n.Pos(),
					"sync.Cond.Wait while holding %s; Wait releases only the Cond's own locker, so waiting under another mutex deadlocks (annotate //lint:allow lockheld -- ... if %s is the Cond's locker)",
					heldNames(held), heldNames(held))
			}
		}
		return true
	})
}

type blockKind int

const (
	blockNone blockKind = iota
	blockSleep
	blockCondWait
)

// blockingCallee classifies a call as a known blocking operation using
// type information: Sleep declared in package time or in the module's
// vtime package (the Clock interface and its implementations), and
// (*sync.Cond).Wait. Files without type info yield no classification.
func (w *lockWalker) blockingCallee(call *ast.CallExpr) (blockKind, string) {
	if w.info == nil {
		return blockNone, ""
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = w.info.Uses[fun.Sel]
	case *ast.Ident:
		obj = w.info.Uses[fun]
	default:
		return blockNone, ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return blockNone, ""
	}
	switch {
	case fn.Name() == "Sleep" && fn.Pkg().Path() == "time":
		return blockSleep, "time.Sleep"
	case fn.Name() == "Sleep" && fn.Pkg().Path() == w.pass.Pkg.Module+"/internal/vtime":
		return blockSleep, "Clock.Sleep"
	case fn.Name() == "Wait" && fn.Pkg().Path() == "sync":
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if strings.HasSuffix(types.TypeString(recv.Type(), nil), "sync.Cond") {
				return blockCondWait, "sync.Cond.Wait"
			}
		}
	}
	return blockNone, ""
}

// heldNames renders the held set deterministically for the message.
func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

type lockOpKind int

const (
	opLock lockOpKind = iota
	opUnlock
)

// lockOp recognises x.Lock()/x.RLock()/x.Unlock()/x.RUnlock() statements
// and returns the lock expression ("dp.mu") and the operation.
func lockOp(e ast.Expr) (string, lockOpKind, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", 0, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return types.ExprString(sel.X), opLock, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), opUnlock, true
	}
	return "", 0, false
}

// rpcCallee classifies a call as an RPC into the wire layer, returning a
// printable callee name or "".
func (w *lockWalker) rpcCallee(call *ast.CallExpr) string {
	fun := call.Fun
	// Unwrap generic instantiation: wire.Call[Req, Resp](...).
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = x.X
	case *ast.IndexListExpr:
		fun = x.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok && w.wire != "" && id.Name == w.wire && isPkgRef(id) {
		// Package-qualified: only the Call entry points perform an RPC;
		// NewClient, NewServer, Handle and the profile constructors are
		// setup.
		if sel.Sel.Name == "Call" || sel.Sel.Name == "CallCtx" {
			return w.wire + "." + sel.Sel.Name
		}
		return ""
	}
	// Method call named Call — the wire.Client entry point reached
	// through a field (c.rpc.Call, link.client.Call, ...).
	if sel.Sel.Name == "Call" || sel.Sel.Name == "CallCtx" {
		return types.ExprString(sel)
	}
	return ""
}
