package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"digruber/internal/lint"
	"digruber/internal/lint/linttest"
)

var testdata = filepath.Join("testdata", "src")

// The table drives one linttest run per (analyzer, fixture package):
// fixture files carry their own expectations as "// want" comments, and
// exempt-package fixtures contain violations with no wants, so a silent
// run is the assertion.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		analyzer *lint.Analyzer
		pkgs     []string
	}{
		{lint.Wallclock, []string{
			"digruber/internal/simlib", // violations + clean shapes + skipped test file
			"digruber/internal/vtime",  // exempt: the wall-clock bridge
			"digruber/cmd/tool",        // exempt: real entrypoint
		}},
		{lint.GlobalRand, []string{
			"digruber/internal/randlib", // violations incl. renamed import
			"digruber/internal/netsim",  // exempt: the stream derivation point
		}},
		{lint.NoPanic, []string{
			"digruber/internal/paniclib", // violations + annotated constructor + test file
			"digruber/examples/demo",     // out of scope: not under internal/
		}},
		{lint.LockHeld, []string{
			"digruber/internal/meshlib", // deadlock + blocking shapes + canonical clean patterns
		}},
		{lint.MapIter, []string{
			"digruber/internal/mapiterlib", // order-dependent ranges + sorted-keys idiom
		}},
		{lint.WireSchema, []string{
			"digruber/internal/wirelib", // drifted + appended + unrecorded structs vs fixture lockfile
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			linttest.Run(t, testdata, tc.analyzer, tc.pkgs...)
		})
	}
}

// Every analyzer must stay silent on the annotated-violations fixture:
// the //lint:allow forms (line-above, end-of-line, multi-name) all
// suppress — provided they carry a "-- reason" justification.
func TestAllowAnnotations(t *testing.T) {
	for _, a := range lint.All() {
		linttest.Run(t, testdata, a, "digruber/internal/allowlib")
	}
}

// A bare //lint:allow (no "-- reason") suppresses the underlying
// finding but is itself reported, under the pseudo-analyzer "allow" at
// the annotation's position. The want-comment harness cannot place an
// expectation on the line the annotation occupies, so this is asserted
// programmatically.
func TestBareAllow(t *testing.T) {
	loader := lint.NewTypeLoader("digruber", filepath.Join(testdata, "digruber"))
	pkg, err := lint.LoadDir(loader, "digruber/internal/allowbare",
		filepath.Join(testdata, "digruber", "internal", "allowbare"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.Wallclock}, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 (wallclock suppressed, bare allow reported): %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "allow" || !strings.Contains(d.Message, "missing its justification") {
		t.Errorf("got analyzer %q, message %q; want the bare-allow report under analyzer \"allow\"", d.Analyzer, d.Message)
	}
}

// The suite over the real repository must be clean: every invariant
// violation is either fixed or carries an explicit, justified
// annotation. This is the same gate CI runs via cmd/digruber-lint,
// including the wire-schema lockfile check against the committed
// internal/lint/wireschema.lock.
func TestRepositoryIsClean(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loader found only %d packages; pattern expansion is broken", len(pkgs))
	}
	diags, err := lint.Run(pkgs, lint.All(), lint.Options{WholeModule: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repository violation: %s", d)
	}
}

// The committed lockfile must round-trip through the formatter and
// cover exactly the structs reachable from the repo's wire entry
// points — including the ones the gob wire-compat tests exercise.
func TestWireSchemaLockfile(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := lint.ComputeSchema(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.Structs) == 0 {
		t.Fatal("no gob protocol structs found; wire-root discovery is broken")
	}

	lockPath := lint.LockfilePath(root)
	data, err := os.ReadFile(lockPath)
	if err != nil {
		t.Fatalf("committed lockfile missing: %v (record it with digruber-lint -update-schema)", err)
	}
	locked, err := lint.ParseLockfile(lockPath, data)
	if err != nil {
		t.Fatal(err)
	}

	// Round trip: parse(format(locked)) must reproduce the same schema.
	reparsed, err := lint.ParseLockfile(lockPath, lint.FormatLockfile(locked))
	if err != nil {
		t.Fatalf("formatter output does not re-parse: %v", err)
	}
	if got, want := strings.Join(reparsed.Keys(), ","), strings.Join(locked.Keys(), ","); got != want {
		t.Fatalf("round-trip lost entries:\n got %s\nwant %s", got, want)
	}

	// The lockfile is in sync with the tree: same keys, no drift.
	if got, want := strings.Join(locked.Keys(), ","), strings.Join(cur.Keys(), ","); got != want {
		t.Errorf("lockfile keys out of sync with tree:\n lockfile %s\n tree     %s", got, want)
	}
	for _, key := range cur.Keys() {
		l, ok := locked.Structs[key]
		if !ok {
			continue // already reported above
		}
		if diff := lint.DiffStructs(l, cur.Structs[key]); diff != "" {
			t.Errorf("%s: %s", key, diff)
		}
	}

	// The protocol structs the cross-version gob tests exercise must be
	// recorded — if this fails, the lockfile no longer guards the wire.
	for _, key := range []string{
		"digruber/internal/wire.frame",
		"digruber/internal/digruber.StatusArgs",
		"digruber/internal/digruber.StatusReply",
		"digruber/internal/digruber.ExchangeArgs",
		"digruber/internal/digruber.SnapshotReply",
	} {
		if locked.Structs[key] == nil {
			t.Errorf("lockfile does not record %s", key)
		}
	}

	// Mutating field order must surface as a breaking, field-level diff —
	// the failure mode the lockfile exists to catch.
	var mutated *lint.StructSchema
	for _, key := range locked.Keys() {
		if s := locked.Structs[key]; len(s.Fields) >= 2 {
			cp := *s
			cp.Fields = append([]lint.SchemaField(nil), s.Fields...)
			cp.Fields[0], cp.Fields[1] = cp.Fields[1], cp.Fields[0]
			mutated = &cp
			break
		}
	}
	if mutated == nil {
		t.Fatal("no recorded struct with >= 2 fields to mutate")
	}
	diff := lint.DiffStructs(locked.Structs[mutated.Key], mutated)
	if !strings.HasPrefix(diff, "reordered: ") || !strings.Contains(diff, "field 0 recorded as") {
		t.Errorf("swapped fields of %s: diff %q; want a reordered field-level diff", mutated.Key, diff)
	}
}

func TestByName(t *testing.T) {
	all, err := lint.ByName("")
	if err != nil || len(all) != 6 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 6, nil", len(all), err)
	}
	two, err := lint.ByName("wallclock, nopanic")
	if err != nil || len(two) != 2 || two[0].Name != "wallclock" || two[1].Name != "nopanic" {
		t.Fatalf("ByName subset = %v, err %v", two, err)
	}
	if _, err := lint.ByName("nosuch"); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
}

func TestLoadModuleSkipsTestdata(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root, []string{"./internal/lint/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Dir, "testdata") {
			t.Errorf("loader descended into %s; testdata must be skipped", p.Dir)
		}
	}
	if len(pkgs) != 2 { // lint + linttest
		t.Fatalf("got %d packages under internal/lint, want 2", len(pkgs))
	}
}
