package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"digruber/internal/lint"
	"digruber/internal/lint/linttest"
)

var testdata = filepath.Join("testdata", "src")

// The table drives one linttest run per (analyzer, fixture package):
// fixture files carry their own expectations as "// want" comments, and
// exempt-package fixtures contain violations with no wants, so a silent
// run is the assertion.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		analyzer *lint.Analyzer
		pkgs     []string
	}{
		{lint.Wallclock, []string{
			"digruber/internal/simlib", // violations + clean shapes + skipped test file
			"digruber/internal/vtime",  // exempt: the wall-clock bridge
			"digruber/cmd/tool",        // exempt: real entrypoint
		}},
		{lint.GlobalRand, []string{
			"digruber/internal/randlib", // violations incl. renamed import
			"digruber/internal/netsim",  // exempt: the stream derivation point
		}},
		{lint.NoPanic, []string{
			"digruber/internal/paniclib", // violations + annotated constructor + test file
			"digruber/examples/demo",     // out of scope: not under internal/
		}},
		{lint.LockedRPC, []string{
			"digruber/internal/meshlib", // deadlock shapes + canonical clean patterns
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			linttest.Run(t, testdata, tc.analyzer, tc.pkgs...)
		})
	}
}

// Every analyzer must stay silent on the annotated-violations fixture:
// the //lint:allow forms (line-above, end-of-line, multi-name) all
// suppress.
func TestAllowAnnotations(t *testing.T) {
	for _, a := range lint.All() {
		linttest.Run(t, testdata, a, "digruber/internal/allowlib")
	}
}

// The suite over the real repository must be clean: every invariant
// violation is either fixed or carries an explicit annotation. This is
// the same gate CI runs via cmd/digruber-lint.
func TestRepositoryIsClean(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loader found only %d packages; pattern expansion is broken", len(pkgs))
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repository violation: %s", d)
	}
}

func TestByName(t *testing.T) {
	all, err := lint.ByName("")
	if err != nil || len(all) != 4 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 4, nil", len(all), err)
	}
	two, err := lint.ByName("wallclock, nopanic")
	if err != nil || len(two) != 2 || two[0].Name != "wallclock" || two[1].Name != "nopanic" {
		t.Fatalf("ByName subset = %v, err %v", two, err)
	}
	if _, err := lint.ByName("nosuch"); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
}

func TestLoadModuleSkipsTestdata(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root, []string{"./internal/lint/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Dir, "testdata") {
			t.Errorf("loader descended into %s; testdata must be skipped", p.Dir)
		}
	}
	if len(pkgs) != 2 { // lint + linttest
		t.Fatalf("got %d packages under internal/lint, want 2", len(pkgs))
	}
}
