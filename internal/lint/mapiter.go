package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter enforces map-iteration determinism: Go randomizes map order on
// purpose, so any `range` over a map whose body can reach an emit path —
// JSONL export, gob encoding, stream-ID derivation, exchange payload
// assembly — makes the run diverge between replays even though every
// input is identical. Byte-identical traces and metrics are the repo's
// replay invariant, so those loops must iterate sorted keys.
//
// Reachability of an emit path is undecidable in general, so the
// analyzer inverts the burden of proof: a map range is flagged unless
// its body is provably order-insensitive, meaning every statement is one
// of
//
//   - an assignment whose targets are all map entries indexed by a range
//     key (or blank), with a call-free right-hand side — each entry is
//     written exactly once per sweep, so the result cannot depend on
//     order (an index other than the range key can collide: two keys,
//     one entry, last write wins);
//   - a delete() on a map, or ++/--;
//   - a compound accumulation (+=, |=, &=, ^=, -=, *=) into an integer —
//     integer arithmetic commutes, but floating-point accumulation does
//     not (rounding makes FP addition order-dependent), so float
//     accumulators are flagged too;
//   - an if/for/block/nested-range built from the same parts, with
//     call-free conditions;
//   - continue.
//
// One more shape is recognized as safe: the sorted-keys idiom itself,
//
//	keys := make([]string, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//
// a body that only appends to one slice, where that slice is later
// passed to a sort call (sort.* or slices.Sort*) in the same function.
// Anything else — calls, sends, plain-variable writes, break/return
// (the "pick an arbitrary element" idiom) — is assumed to feed an emit
// path and reported. Loops whose order genuinely cannot matter are
// annotated "//lint:allow mapiter -- reason". Test files are skipped:
// assertion loops do not feed the deterministic plane. The analyzer
// needs type information to know what is a map; files excluded from
// type checking by build constraints are skipped.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "forbid range over a map unless the body is provably order-insensitive " +
		"or the sorted-keys idiom; map order is randomized and would break replay",
	SkipTests:  true,
	NeedsTypes: true,
	Run:        runMapIter,
}

func runMapIter(pass *Pass) error {
	info := pass.Pkg.TypesInfo
	if info == nil {
		return nil
	}
	for _, f := range pass.Files() {
		if f.NoTypes {
			continue
		}
		m := &mapiterCheck{pass: pass, info: info}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					m.checkFunc(n.Body)
				}
				return false
			case *ast.FuncLit:
				// Top-level function literals (package var initializers).
				m.checkFunc(n.Body)
				return false
			}
			return true
		})
	}
	return nil
}

type mapiterCheck struct {
	pass *Pass
	info *types.Info
}

// checkFunc inspects one function body, descending into nested literals
// (each literal is its own sorted-later scope).
func (m *mapiterCheck) checkFunc(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			m.checkFunc(fl.Body)
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !m.isMap(rng.X) {
			return true
		}
		if m.safeBody(rng.Body.List, rangeKeys(nil, rng)) && !m.accumulatorLeaks(rng.Body) {
			return true
		}
		if s := m.keyCollect(rng); s != "" && m.sortedLater(body, rng, s) {
			return true
		}
		m.pass.Reportf(rng.For,
			"range over map %s has an order-dependent body; map iteration order is randomized, so collect and sort the keys first (sorted-keys idiom), or annotate //lint:allow mapiter -- reason if order cannot matter",
			types.ExprString(rng.X))
		return true
	})
}

func (m *mapiterCheck) isMap(e ast.Expr) bool {
	t := m.info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// safeBody reports whether every statement is order-insensitive. keys
// holds the names of the enclosing range statements' key variables: a
// map write indexed by a range key touches each entry exactly once per
// sweep, which is the only map-write shape that is order-free — writes
// indexed by anything else (a range value, a derived expression) can
// collide, and then the final entry depends on iteration order.
func (m *mapiterCheck) safeBody(stmts []ast.Stmt, keys map[string]bool) bool {
	for _, s := range stmts {
		if !m.safeStmt(s, keys) {
			return false
		}
	}
	return true
}

func (m *mapiterCheck) safeStmt(s ast.Stmt, keys map[string]bool) bool {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return true
	case *ast.BranchStmt:
		// break/goto select an arbitrary element; only continue is
		// order-free.
		return s.Tok == token.CONTINUE
	case *ast.BlockStmt:
		return m.safeBody(s.List, keys)
	case *ast.IfStmt:
		return m.safeStmt(s.Init, keys) && m.safeExpr(s.Cond) &&
			m.safeBody(s.Body.List, keys) && m.safeStmt(s.Else, keys)
	case *ast.ForStmt:
		return m.safeStmt(s.Init, keys) && (s.Cond == nil || m.safeExpr(s.Cond)) &&
			m.safeStmt(s.Post, keys) && m.safeBody(s.Body.List, keys)
	case *ast.RangeStmt:
		return m.safeExpr(s.X) && m.safeBody(s.Body.List, rangeKeys(keys, s))
	case *ast.IncDecStmt:
		return true
	case *ast.AssignStmt:
		return m.safeAssign(s, keys)
	case *ast.ExprStmt:
		// delete(m, k) is the one order-insensitive call statement.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && m.isBuiltin(id) {
				return true
			}
		}
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						if !m.safeExpr(v) {
							return false
						}
					}
				}
			}
			return true
		}
		return false
	default:
		return false
	}
}

// safeAssign accepts range-key-indexed map targets and integer
// accumulators.
func (m *mapiterCheck) safeAssign(s *ast.AssignStmt, keys map[string]bool) bool {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			if ix, ok := lhs.(*ast.IndexExpr); ok && m.isMap(ix.X) && isRangeKey(ix.Index, keys) {
				continue
			}
			// := of loop-local temporaries is order-free as long as
			// nothing order-sensitive consumes them, which the other
			// rules guarantee within a safe body.
			if s.Tok == token.DEFINE {
				continue
			}
			return false
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		// Integer accumulation commutes; float accumulation does not
		// (rounding), and string/slice += concatenation is ordered.
		for _, lhs := range s.Lhs {
			t := m.info.TypeOf(lhs)
			if t == nil {
				return false
			}
			b, ok := t.Underlying().(*types.Basic)
			if !ok || b.Info()&types.IsInteger == 0 {
				return false
			}
		}
	default:
		return false
	}
	for _, rhs := range s.Rhs {
		if !m.safeRHS(s, rhs, keys) {
			return false
		}
	}
	return true
}

// safeRHS is safeExpr plus one extra shape: a top-level append assigned
// to a map entry indexed by the range key — `groups[k] = append(groups[k], v)`
// — is the group-by idiom, order-free because each key is visited once
// per iteration. Appends into entries indexed by anything else can
// collide (two keys, one entry), making the list order depend on map
// order; appends assigned to plain variables stay forbidden too (that
// is how order-dependent slices escape the loop).
func (m *mapiterCheck) safeRHS(s *ast.AssignStmt, e ast.Expr, keys map[string]bool) bool {
	if call, ok := e.(*ast.CallExpr); ok && len(s.Lhs) == 1 {
		if ix, ok := s.Lhs[0].(*ast.IndexExpr); ok && m.isMap(ix.X) && isRangeKey(ix.Index, keys) {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && m.isBuiltin(id) {
				for _, a := range call.Args {
					if !m.safeExpr(a) {
						return false
					}
				}
				return true
			}
		}
	}
	return m.safeExpr(e)
}

// rangeKeys returns keys extended with s's key variable, when it is a
// plain identifier. The incoming set is not mutated.
func rangeKeys(keys map[string]bool, s *ast.RangeStmt) map[string]bool {
	id, ok := s.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return keys
	}
	out := make(map[string]bool, len(keys)+1)
	//lint:allow mapiter -- set copy; insertion order cannot matter
	for k := range keys {
		out[k] = true
	}
	out[id.Name] = true
	return out
}

// isRangeKey reports whether e is one of the enclosing range keys.
func isRangeKey(e ast.Expr, keys map[string]bool) bool {
	id, ok := e.(*ast.Ident)
	return ok && keys[id.Name]
}

// accumulatorLeaks reports whether a counter written by ++/--/compound
// assignment is also read elsewhere in the body — `i++; id[k] = i`
// derives sequence numbers from map order, which is exactly the
// stream-ID nondeterminism this analyzer exists to stop, even though
// each statement alone looks order-free.
func (m *mapiterCheck) accumulatorLeaks(body *ast.BlockStmt) bool {
	type span struct{ a, b token.Pos }
	accs := map[string][]span{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok {
				accs[id.Name] = append(accs[id.Name], span{s.Pos(), s.End()})
			}
		case *ast.AssignStmt:
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				for _, l := range s.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						accs[id.Name] = append(accs[id.Name], span{s.Pos(), s.End()})
					}
				}
			}
		}
		return true
	})
	if len(accs) == 0 {
		return false
	}
	leak := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		spans, ok := accs[id.Name]
		if !ok {
			return true
		}
		inOwn := false
		for _, sp := range spans {
			if id.Pos() >= sp.a && id.Pos() <= sp.b {
				inOwn = true
			}
		}
		if !inOwn {
			leak = true
		}
		return !leak
	})
	return leak
}

// safeExpr rejects expressions that can emit or block: any call (except
// pure builtins and type conversions), function literals and channel
// receives.
func (m *mapiterCheck) safeExpr(e ast.Expr) bool {
	safe := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			safe = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				safe = false
				return false
			}
		case *ast.CallExpr:
			if tv, ok := m.info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			id, ok := n.Fun.(*ast.Ident)
			if !ok || !m.isBuiltin(id) {
				safe = false
				return false
			}
			switch id.Name {
			case "len", "cap", "min", "max", "make", "new", "complex", "real", "imag":
				return true
			default:
				safe = false
				return false
			}
		}
		return true
	})
	return safe
}

func (m *mapiterCheck) isBuiltin(id *ast.Ident) bool {
	_, ok := m.info.Uses[id].(*types.Builtin)
	return ok
}

// keyCollect recognises a body that is exactly one append of loop
// variables into a slice — `keys = append(keys, k)` — and returns the
// printable slice expression, or "".
func (m *mapiterCheck) keyCollect(rng *ast.RangeStmt) string {
	body := rng.Body.List
	if len(body) != 1 {
		return ""
	}
	as, ok := body[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 ||
		(as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return ""
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return ""
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || !m.isBuiltin(id) {
		return ""
	}
	dst := types.ExprString(as.Lhs[0])
	if types.ExprString(call.Args[0]) != dst {
		return ""
	}
	for _, arg := range call.Args[1:] {
		if !m.safeExpr(arg) {
			return ""
		}
	}
	return dst
}

// sortedLater reports whether slice expr s is passed to a recognized
// sort call after the range loop, in the same function body.
func (m *mapiterCheck) sortedLater(body *ast.BlockStmt, rng *ast.RangeStmt, s string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := m.info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if p := obj.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == s {
				found = true
			}
		}
		return !found
	})
	return found
}
