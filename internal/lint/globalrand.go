package lint

import (
	"go/ast"
)

// globalrandBanned lists math/rand package-level functions: draws on the
// process-global source (Intn, Float64, ...), the global reseed (Seed),
// and raw source construction (New, NewSource, NewZipf), which must
// instead go through netsim.Stream so every stream is derived from the
// experiment's master seed and a stable name. Referring to the types
// (rand.Rand in a field or parameter) stays legal.
var globalrandBanned = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 additions, should the repo ever migrate.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
	"NewPCG": true, "NewChaCha8": true,
}

// GlobalRand enforces the seeded-stream invariant: all randomness flows
// through netsim.Stream(seed, name), so one master seed replays an
// entire experiment and distinct components draw from independent,
// stable streams. The global math/rand source breaks both properties
// (it is shared across goroutines, so interleaving changes the
// sequence each component sees). Only internal/netsim, which implements
// the stream derivation, touches math/rand constructors directly. Test
// files are skipped: a test-local fixed-seed rand.New is already
// replayable.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "forbid top-level math/rand functions outside internal/netsim; " +
		"draw from seeded netsim.Stream streams so runs replay from one seed",
	SkipTests: true,
	Run:       runGlobalRand,
}

func runGlobalRand(pass *Pass) error {
	pkg := pass.Pkg
	if pkg.ImportPath == pkg.Module+"/internal/netsim" {
		return nil
	}
	for _, f := range pass.Files() {
		locals := map[string]bool{}
		if n := importedAs(f.AST, "math/rand"); n != "" {
			locals[n] = true
		}
		if n := importedAs(f.AST, "math/rand/v2"); n != "" {
			locals[n] = true
		}
		if len(locals) == 0 {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !locals[id.Name] || !isPkgRef(id) {
				return true
			}
			if globalrandBanned[sel.Sel.Name] {
				pass.Reportf(call.Pos(),
					"rand.%s bypasses the seeded stream discipline; derive a stream with netsim.Stream(seed, name)",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
