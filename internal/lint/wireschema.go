package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// WireSchema turns the repo's protocol-evolution convention — gob wire
// structs grow by appending trailing fields, never by renaming,
// retyping, reordering or deleting — into a machine-checked gate
// against a committed lockfile, internal/lint/wireschema.lock. gob
// value encoding delta-encodes field indices and matches fields by
// name, so an append leaves old encodings byte-identical (zero fields
// are elided) while any other edit silently renumbers or drops fields
// and breaks cross-version decode. The cross-version decode tests catch
// that only for the struct pairs they exercise; the lockfile covers
// every reachable payload.
//
// The analyzer discovers protocol structs from use, not from a
// hand-kept list: every type argument of a wire.Call / wire.CallCtx /
// wire.Handle / wire.HandleCtx instantiation and every value passed to
// a gob Encoder.Encode / Decoder.Decode is a root, and the set is
// closed over all in-module named struct types reachable through
// exported fields (slices, arrays, maps and pointers included). Types
// outside the module — time.Time, time.Duration — are encoding leaves.
// A new payload struct therefore needs a lockfile entry before lint
// passes, recorded with:
//
//	go run ./cmd/digruber-lint -update-schema ./...
//
// Verification runs as a module pass: schema drift (rename, retype,
// reorder, delete) is reported with a field-level diff at the struct's
// declaration; appended fields and unrecorded structs point at
// -update-schema; and — on whole-module runs — lockfile entries whose
// struct is gone or unreachable are reported as stale.
var WireSchema = &Analyzer{
	Name: "wireschema",
	Doc: "check gob protocol structs against the committed wire-schema lockfile " +
		"(internal/lint/wireschema.lock); appends re-record via -update-schema, " +
		"anything else is a wire-compatibility break",
	SkipTests:  true,
	NeedsTypes: true,
	RunModule:  runWireSchema,
}

// LockfileRel is the lockfile path relative to the module root.
const LockfileRel = "internal/lint/wireschema.lock"

// LockfilePath returns the lockfile path for a module root.
func LockfilePath(root string) string {
	return filepath.Join(root, filepath.FromSlash(LockfileRel))
}

// SchemaField is one exported (gob-visible) field of a protocol struct.
type SchemaField struct {
	Name string
	// Type is the field's type rendered with full package paths
	// ("[]digruber/internal/gruber.Dispatch", "time.Duration"), which
	// keeps the lockfile stable under import renames.
	Type string
}

func (f SchemaField) String() string { return f.Name + " " + f.Type }

// StructSchema is the gob wire schema of one struct: its exported
// fields in declaration order. Unexported fields are invisible to gob
// and deliberately unrecorded.
type StructSchema struct {
	// Key is "<package path>.<type name>".
	Key    string
	Fields []SchemaField
	// Pos is the struct's declaration site (or the lockfile line, for
	// entries read from disk).
	Pos token.Position
}

// Schema is a set of struct schemas keyed by Key.
type Schema struct {
	Structs map[string]*StructSchema
}

// Keys returns the struct keys in sorted order.
func (s *Schema) Keys() []string {
	keys := make([]string, 0, len(s.Structs))
	for k := range s.Structs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ComputeSchema extracts the wire schema of every gob protocol struct
// reachable from the given packages' wire entry points.
func ComputeSchema(pkgs []*Package) (*Schema, error) {
	out := &Schema{Structs: map[string]*StructSchema{}}
	for _, pkg := range pkgs {
		if pkg.TypesInfo == nil {
			if pkg.Loader == nil {
				return nil, fmt.Errorf("lint: wireschema needs type information for %s", pkg.ImportPath)
			}
			if err := pkg.Loader.Check(pkg); err != nil {
				return nil, err
			}
		}
		c := &schemaCloser{
			module: pkg.Module,
			fset:   pkg.Fset,
			out:    out,
			seen:   map[string]bool{},
		}
		for key := range out.Structs {
			c.seen[key] = true
		}
		collectRoots(pkg, c)
	}
	return out, nil
}

// wireEntryPoints are the generic RPC entry points of internal/wire
// whose type arguments are wire payloads.
var wireEntryPoints = map[string]bool{
	"Call":      true,
	"CallCtx":   true,
	"Handle":    true,
	"HandleCtx": true,
}

// collectRoots feeds every payload type used by pkg into the closer:
// wire entry-point instantiations plus direct gob Encode/Decode calls.
func collectRoots(pkg *Package, c *schemaCloser) {
	info := pkg.TypesInfo
	wirePath := pkg.Module + "/internal/wire"
	//lint:allow mapiter -- roots land in a map-keyed closure; insertion order cannot matter
	for id, inst := range info.Instances {
		fn, ok := info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != wirePath || !wireEntryPoints[fn.Name()] {
			continue
		}
		for i := 0; i < inst.TypeArgs.Len(); i++ {
			c.add(inst.TypeArgs.At(i))
		}
	}
	for _, f := range pkg.Files {
		if f.NoTypes {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/gob" {
				return true
			}
			if fn.Name() != "Encode" && fn.Name() != "Decode" {
				return true
			}
			if t := info.TypeOf(call.Args[0]); t != nil {
				c.add(t)
			}
			return true
		})
	}
}

// schemaCloser computes the reachable-struct closure of root types.
type schemaCloser struct {
	module string
	fset   *token.FileSet
	out    *Schema
	seen   map[string]bool
}

// add records t (and everything reachable from it) if it is an
// in-module named struct; container types are traversed, out-of-module
// types are encoding leaves.
func (c *schemaCloser) add(t types.Type) {
	t = types.Unalias(t)
	switch t := t.(type) {
	case *types.Pointer:
		c.add(t.Elem())
	case *types.Slice:
		c.add(t.Elem())
	case *types.Array:
		c.add(t.Elem())
	case *types.Map:
		c.add(t.Key())
		c.add(t.Elem())
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() == nil {
			return // error, comparable, ...
		}
		path := obj.Pkg().Path()
		if path != c.module && !strings.HasPrefix(path, c.module+"/") {
			return // stdlib boundary: time.Time et al. own their encoding
		}
		key := path + "." + obj.Name()
		if c.seen[key] {
			return
		}
		c.seen[key] = true
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			c.add(t.Underlying())
			return
		}
		entry := &StructSchema{Key: key, Pos: c.fset.Position(obj.Pos())}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue // invisible to gob
			}
			entry.Fields = append(entry.Fields, SchemaField{
				Name: f.Name(),
				Type: types.TypeString(f.Type(), pkgPathQualifier),
			})
			c.add(f.Type())
		}
		c.out.Structs[key] = entry
	}
}

// pkgPathQualifier renders named types with their full package path, so
// the lockfile is insensitive to import aliasing.
func pkgPathQualifier(p *types.Package) string { return p.Path() }

// FormatLockfile renders a schema as the committed lockfile text:
// struct keys sorted, one indented "index name type" line per field.
func FormatLockfile(s *Schema) []byte {
	var b bytes.Buffer
	b.WriteString("# gob wire-schema lockfile — recorded by `digruber-lint -update-schema`.\n")
	b.WriteString("# Protocol structs evolve append-only: renaming, retyping, reordering or\n")
	b.WriteString("# deleting a recorded field breaks cross-version gob compatibility and\n")
	b.WriteString("# fails the wireschema analyzer. Appending trailing fields is compatible\n")
	b.WriteString("# (gob elides zero values) but must be re-recorded with -update-schema.\n")
	for _, key := range s.Keys() {
		entry := s.Structs[key]
		fmt.Fprintf(&b, "\n%s\n", key)
		for i, f := range entry.Fields {
			fmt.Fprintf(&b, "\t%d %s %s\n", i, f.Name, f.Type)
		}
	}
	return b.Bytes()
}

// ParseLockfile reads lockfile text back into a Schema whose entries
// carry lockfile positions.
func ParseLockfile(path string, data []byte) (*Schema, error) {
	s := &Schema{Structs: map[string]*StructSchema{}}
	var cur *StructSchema
	sc := bufio.NewScanner(bytes.NewReader(data))
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Text()
		text := strings.TrimSpace(raw)
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if !strings.HasPrefix(raw, "\t") && !strings.HasPrefix(raw, " ") {
			if s.Structs[text] != nil {
				return nil, fmt.Errorf("%s:%d: duplicate entry %s", path, line, text)
			}
			cur = &StructSchema{Key: text, Pos: token.Position{Filename: path, Line: line}}
			s.Structs[text] = cur
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("%s:%d: field line before any struct entry", path, line)
		}
		parts := strings.SplitN(text, " ", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed field line %q (want \"index name type\")", path, line, text)
		}
		idx, err := strconv.Atoi(parts[0])
		if err != nil || idx != len(cur.Fields) {
			return nil, fmt.Errorf("%s:%d: field index %q out of sequence (want %d)", path, line, parts[0], len(cur.Fields))
		}
		cur.Fields = append(cur.Fields, SchemaField{Name: parts[1], Type: parts[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// UpdateLockfile recomputes the schema of pkgs and writes the lockfile
// under root, returning its path and a human summary of what changed.
func UpdateLockfile(pkgs []*Package, root string) (path, summary string, err error) {
	cur, err := ComputeSchema(pkgs)
	if err != nil {
		return "", "", err
	}
	path = LockfilePath(root)
	var prev *Schema
	if data, err := os.ReadFile(path); err == nil {
		prev, _ = ParseLockfile(path, data)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return "", "", err
	}
	if err := os.WriteFile(path, FormatLockfile(cur), 0o666); err != nil {
		return "", "", err
	}
	added, changed, removed := 0, 0, 0
	if prev != nil {
		for _, key := range cur.Keys() {
			if old, ok := prev.Structs[key]; !ok {
				added++
			} else if DiffStructs(old, cur.Structs[key]) != "" {
				changed++
			}
		}
		for key := range prev.Structs {
			//lint:allow mapiter -- counting absent keys; order cannot matter
			if _, ok := cur.Structs[key]; !ok {
				removed++
			}
		}
	} else {
		added = len(cur.Structs)
	}
	summary = fmt.Sprintf("recorded %d struct(s) (%d added, %d changed, %d removed)",
		len(cur.Structs), added, changed, removed)
	return path, summary, nil
}

// DiffStructs compares a recorded schema against the current one and
// returns a classified field-level diff ("" when identical). An
// append-only change is prefixed "appended:"; everything else is a
// wire-compatibility break.
func DiffStructs(locked, cur *StructSchema) string {
	if len(locked.Fields) <= len(cur.Fields) {
		prefix := true
		for i, f := range locked.Fields {
			if cur.Fields[i] != f {
				prefix = false
				break
			}
		}
		if prefix {
			if len(locked.Fields) == len(cur.Fields) {
				return ""
			}
			var names []string
			for _, f := range cur.Fields[len(locked.Fields):] {
				names = append(names, strconv.Quote(f.String()))
			}
			return "appended: " + strings.Join(names, ", ")
		}
	}
	var details []string
	for i := 0; i < len(locked.Fields) || i < len(cur.Fields); i++ {
		switch {
		case i >= len(cur.Fields):
			details = append(details, fmt.Sprintf("field %d recorded as %q is gone", i, locked.Fields[i].String()))
		case i >= len(locked.Fields):
			details = append(details, fmt.Sprintf("field %d %q is new", i, cur.Fields[i].String()))
		case locked.Fields[i] != cur.Fields[i]:
			details = append(details, fmt.Sprintf("field %d recorded as %q, now %q", i, locked.Fields[i].String(), cur.Fields[i].String()))
		}
	}
	return classifyDrift(locked, cur) + ": " + strings.Join(details, "; ")
}

// classifyDrift names the kind of breaking change for the diagnostic.
func classifyDrift(locked, cur *StructSchema) string {
	if len(locked.Fields) == len(cur.Fields) {
		sameSet := func(a, b []SchemaField) bool {
			as := append([]SchemaField(nil), a...)
			bs := append([]SchemaField(nil), b...)
			sort.Slice(as, func(i, j int) bool { return as[i].String() < as[j].String() })
			sort.Slice(bs, func(i, j int) bool { return bs[i].String() < bs[j].String() })
			for i := range as {
				if as[i] != bs[i] {
					return false
				}
			}
			return true
		}
		if sameSet(locked.Fields, cur.Fields) {
			return "reordered"
		}
		renamed, retyped := false, false
		for i := range locked.Fields {
			if locked.Fields[i] == cur.Fields[i] {
				continue
			}
			switch {
			case locked.Fields[i].Type == cur.Fields[i].Type:
				renamed = true
			case locked.Fields[i].Name == cur.Fields[i].Name:
				retyped = true
			default:
				return "changed"
			}
		}
		switch {
		case renamed && !retyped:
			return "renamed"
		case retyped && !renamed:
			return "retyped"
		}
		return "changed"
	}
	if len(locked.Fields) > len(cur.Fields) {
		return "deleted"
	}
	return "changed"
}

// runWireSchema verifies the computed schema against the lockfile.
func runWireSchema(mp *ModulePass) error {
	if len(mp.Pkgs) == 0 {
		return nil
	}
	root := ""
	for _, pkg := range mp.Pkgs {
		if pkg.Root != "" {
			root = pkg.Root
			break
		}
	}
	if root == "" {
		return nil // synthetic packages with no module root: nothing to check against
	}
	cur, err := ComputeSchema(mp.Pkgs)
	if err != nil {
		return err
	}
	lockPath := LockfilePath(root)
	data, err := os.ReadFile(lockPath)
	if err != nil {
		if len(cur.Structs) > 0 {
			mp.Reportf(token.Position{Filename: lockPath, Line: 1},
				"wire-schema lockfile is missing but %d gob protocol struct(s) are reachable; record them with `digruber-lint -update-schema`",
				len(cur.Structs))
		}
		return nil
	}
	locked, err := ParseLockfile(lockPath, data)
	if err != nil {
		mp.Reportf(token.Position{Filename: lockPath, Line: 1}, "unreadable lockfile: %v", err)
		return nil
	}
	for _, key := range cur.Keys() {
		c := cur.Structs[key]
		l, ok := locked.Structs[key]
		if !ok {
			mp.Reportf(c.Pos,
				"gob protocol struct %s is not recorded in %s; record its wire schema with `digruber-lint -update-schema`",
				key, LockfileRel)
			continue
		}
		diff := DiffStructs(l, c)
		if diff == "" {
			continue
		}
		if strings.HasPrefix(diff, "appended: ") {
			mp.Reportf(c.Pos,
				"wire schema of %s gained trailing field(s) %s; appends are gob-compatible but must be re-recorded with `digruber-lint -update-schema`",
				key, strings.TrimPrefix(diff, "appended: "))
			continue
		}
		mp.Reportf(c.Pos,
			"wire schema of %s drifted from %s (%s); gob decodes by name and delta-encoded field index, so this breaks cross-version decode — restore the recorded layout and append new fields at the end",
			key, LockfileRel, diff)
	}
	if mp.WholeModule {
		for _, key := range lockedKeys(locked) {
			if _, ok := cur.Structs[key]; !ok {
				mp.Reportf(locked.Structs[key].Pos,
					"recorded struct %s is no longer reachable from any wire entry point or gob encode; remove its entry with `digruber-lint -update-schema`",
					key)
			}
		}
	}
	return nil
}

func lockedKeys(s *Schema) []string { return s.Keys() }
