package lint

import (
	"go/ast"
	"strings"
)

// NoPanic enforces the error-return invariant for library code: packages
// under internal/ are driven by experiment harnesses that must be able
// to surface a failure as a result row, not die mid-run, so they return
// errors instead of panicking. The documented exceptions — constructor
// argument checks on programmer error (vtime.NewScaled with a
// non-positive speedup) and Must* literal helpers — carry a
// "//lint:allow nopanic -- reason" annotation. Test files are skipped:
// t.Fatal-style helpers and deliberate panic/recover tests are fine.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc: "forbid panic in library packages under internal/; return errors, " +
		"annotating documented constructor argument checks with //lint:allow nopanic",
	SkipTests: true,
	Run:       runNoPanic,
}

func runNoPanic(pass *Pass) error {
	pkg := pass.Pkg
	if !strings.HasPrefix(pkg.ImportPath, pkg.Module+"/internal/") {
		return nil
	}
	for _, f := range pass.Files() {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			// A local function named panic would shadow the builtin.
			if id.Obj != nil {
				return true
			}
			pass.Reportf(call.Pos(),
				"panic in library package %s; return an error so harness runs fail as results, not crashes",
				pkg.ImportPath)
			return true
		})
	}
	return nil
}
