package lint

import (
	"go/ast"
	"strings"
)

// wallclockBanned lists the time-package entry points that read or wait
// on the wall clock. Constructors of inert values (time.Date, time.Unix,
// time.Duration arithmetic, time.Parse) stay legal: they do not observe
// real time.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// Wallclock enforces the virtual-clock invariant: simulation and library
// code must take a vtime.Clock instead of reading the wall clock, so a
// run's timing replays identically under any load and any -race
// overhead. Only internal/vtime (the bridge to real time) and the cmd/
// entrypoints (real deployments on the real clock) are exempt. Test
// files are skipped: watchdog deadlines that bound how long a test may
// hang are legitimately real-time.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid direct time.Now/Sleep/After/Tick/... outside internal/vtime and cmd/; " +
		"simulation and library packages must take a vtime.Clock",
	SkipTests: true,
	Run:       runWallclock,
}

func runWallclock(pass *Pass) error {
	pkg := pass.Pkg
	if pkg.ImportPath == pkg.Module+"/internal/vtime" ||
		strings.HasPrefix(pkg.ImportPath, pkg.Module+"/cmd/") {
		return nil
	}
	for _, f := range pass.Files() {
		local := importedAs(f.AST, "time")
		if local == "" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != local || !isPkgRef(id) {
				return true
			}
			if wallclockBanned[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock; take a vtime.Clock and use Clock.%s so the run replays deterministically",
					sel.Sel.Name, sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
