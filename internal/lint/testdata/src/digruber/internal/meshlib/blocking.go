// The non-RPC blocking shapes lockheld polices: channel sends, virtual
// and wall-clock sleeps, and sync.Cond.Wait — each while a mutex is
// held, with the canonical safe variants alongside.
package meshlib

import (
	"sync"
	"time"

	"digruber/internal/vtime"
)

type queue struct {
	mu    sync.Mutex
	ch    chan int
	cond  *sync.Cond
	clock vtime.Clock
	n     int
}

// badSend parks with the lock held whenever ch is full or unbuffered.
func (q *queue) badSend(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v // want `channel send q\.ch <- while holding q\.mu`
}

// goodSelectDefault: a send inside a select with a default clause is an
// attempt, not a park.
func (q *queue) goodSelectDefault(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v:
	default:
		q.n++
	}
}

// goodSendAfterUnlock is the canonical fix: mutate under the lock,
// release, then send.
func (q *queue) goodSendAfterUnlock(v int) {
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
	q.ch <- v
}

// badVirtualSleep holds the lock for the whole virtual duration.
func (q *queue) badVirtualSleep() {
	q.mu.Lock()
	q.clock.Sleep(time.Second) // want `Clock\.Sleep while holding q\.mu`
	q.mu.Unlock()
}

// badWallSleep is the same bug on the real clock.
func (q *queue) badWallSleep() {
	q.mu.Lock()
	defer q.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding q\.mu`
}

// goodSleepAfterUnlock releases before sleeping.
func (q *queue) goodSleepAfterUnlock() {
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
	q.clock.Sleep(time.Second)
}

// badCondWait waits under a mutex that is not the Cond's locker: Wait
// releases only its own locker, so this wedges.
func (q *queue) badCondWait(extra *sync.Mutex) {
	extra.Lock()
	defer extra.Unlock()
	q.cond.Wait() // want `sync\.Cond\.Wait while holding extra`
}
