// Package meshlib is a lockedrpc fixture: the state-exchange
// mesh-deadlock shapes, bad and good.
package meshlib

import (
	"sync"
	"time"

	"digruber/internal/wire"
)

type broker struct {
	mu    sync.Mutex
	peers []*wire.Client
	seen  int
}

type args struct{ From string }
type reply struct{ OK bool }

// badHeld calls the wire with the state lock held — the textbook
// deadlock: the peer's handler wants its own lock while calling back.
func (b *broker) badHeld(peer *wire.Client) {
	b.mu.Lock()
	b.seen++
	_, _ = wire.Call[args, reply](peer, "exchange", args{}, time.Second) // want `RPC wire\.Call while holding b\.mu`
	b.mu.Unlock()
}

// badDeferred is the same bug with defer: the lock is pinned to function
// end, so every call below is under it.
func (b *broker) badDeferred(peer *wire.Client) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seen++
	_, _ = wire.Call[args, reply](peer, "exchange", args{}, time.Second) // want `RPC wire\.Call while holding b\.mu`
}

// badMethod reaches the client through a field; the .Call method name is
// enough to classify it.
func (b *broker) badMethod(body []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, _ = b.peers[0].Call("exchange", body, time.Second) // want `RPC b\.peers\[0\]\.Call while holding b\.mu`
}

// badBranch only calls on one path, but that path holds the lock.
func (b *broker) badBranch(peer *wire.Client, flush bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if flush {
		_, _ = wire.Call[args, reply](peer, "flush", args{}, time.Second) // want `RPC wire\.Call while holding b\.mu`
	}
}

// goodCopyThenCall is the repo's canonical pattern: snapshot under the
// lock, release, then go to the wire.
func (b *broker) goodCopyThenCall(peer *wire.Client) {
	b.mu.Lock()
	links := make([]*wire.Client, len(b.peers))
	copy(links, b.peers)
	b.mu.Unlock()
	_, _ = wire.Call[args, reply](peer, "exchange", args{}, time.Second)
}

// goodGoroutine: a spawned goroutine does not inherit the spawner's
// locks, and may lock/call/unlock on its own schedule.
func (b *broker) goodGoroutine(peer *wire.Client) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		_, _ = wire.Call[args, reply](peer, "exchange", args{}, time.Second)
		b.mu.Lock()
		b.seen++
		b.mu.Unlock()
	}()
}

// goodBranchScope: a lock taken inside a branch does not leak past it.
func (b *broker) goodBranchScope(peer *wire.Client, update bool) {
	if update {
		b.mu.Lock()
		b.seen++
		b.mu.Unlock()
	}
	_, _ = wire.Call[args, reply](peer, "exchange", args{}, time.Second)
}

// goodSetupUnderLock: constructing clients under the lock is setup, not
// an RPC.
func (b *broker) goodSetupUnderLock(t wire.Transport) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.peers = append(b.peers, wire.NewClient(wire.ClientConfig{Transport: t}))
}
