// Package allowlib exercises the //lint:allow annotation: every
// violation below is intentional and annotated, so the suite must stay
// silent (no wants in this file).
package allowlib

import (
	"math/rand"
	"time"
)

// Real-time drain bound: deliberately wall-clock, like the experiment
// harness's straggler timeout.
func drainDeadline() time.Time {
	//lint:allow wallclock -- real-time bound on harness wall time
	return time.Now().Add(time.Minute)
}

func eolForm() {
	time.Sleep(time.Second) //lint:allow wallclock -- end-of-line form
}

func multiName() {
	//lint:allow wallclock, globalrand -- both on one line
	time.Sleep(time.Duration(rand.Intn(10)))
}

// MustSize is a documented Must-helper.
func MustSize(n int) int {
	if n <= 0 {
		//lint:allow nopanic -- documented Must-helper for literals
		panic("allowlib: bad size")
	}
	return n
}
