package vtime

import "time"

// Clock is the virtual-time stub the lockheld fixtures sleep on: a
// Sleep resolved to this package classifies as Clock.Sleep.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}
