// Package vtime is the wallclock fixture for the exempt package: the
// clock implementation is the one place allowed to bridge to real time.
package vtime

import "time"

func realNow() time.Time {
	return time.Now() // exempt: this IS the wall-clock bridge
}
