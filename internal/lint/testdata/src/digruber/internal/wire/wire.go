// Package wire is a typed stub of the real internal/wire for fixture
// packages: just enough surface for the lockheld analyzer to classify
// RPC entry points and for wireschema to harvest payload type arguments.
package wire

import "time"

// Transport dials peers (stub).
type Transport interface {
	Dial(addr string) error
}

// ClientConfig configures a Client (stub).
type ClientConfig struct {
	Transport Transport
}

// Client is the RPC client (stub).
type Client struct{}

// NewClient builds a client; construction is setup, not an RPC.
func NewClient(cfg ClientConfig) *Client { return &Client{} }

// Call performs a raw RPC (stub).
func (c *Client) Call(method string, body []byte, timeout time.Duration) ([]byte, error) {
	return nil, nil
}

// Call performs a typed RPC; its type arguments are wireschema roots.
func Call[Req, Resp any](c *Client, method string, req Req, timeout time.Duration) (Resp, error) {
	var resp Resp
	return resp, nil
}

// Server is the RPC server (stub).
type Server struct{}

// Handle registers a typed handler; its type arguments are wireschema
// roots.
func Handle[Req, Resp any](s *Server, method string, fn func(Req) (Resp, error)) {}
