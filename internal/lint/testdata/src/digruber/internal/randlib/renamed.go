package randlib

import mrand "math/rand"

// A renamed import is still tracked through the file's import table.
func renamed() int {
	return mrand.Intn(6) // want `rand\.Intn bypasses the seeded stream`
}
