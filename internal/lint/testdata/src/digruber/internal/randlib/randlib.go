// Package randlib is a globalrand fixture: library randomness must come
// from seeded netsim.Stream streams, not the process-global source.
package randlib

import (
	"math/rand"

	"digruber/internal/netsim"
)

// Holding the type is legal: only the top-level functions are banned.
type jitter struct {
	rng *rand.Rand
}

func bad() {
	_ = rand.Intn(10)               // want `rand\.Intn bypasses the seeded stream`
	_ = rand.Float64()              // want `rand\.Float64 bypasses the seeded stream`
	rand.Seed(42)                   // want `rand\.Seed bypasses the seeded stream`
	_ = rand.New(rand.NewSource(1)) // want `rand\.New bypasses the seeded stream` `rand\.NewSource bypasses the seeded stream`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle bypasses the seeded stream`
}

func good(seed int64) *jitter {
	j := &jitter{rng: netsim.Stream(seed, "randlib.jitter")}
	_ = j.rng.Intn(10) // method on an owned stream, not the global source
	return j
}
