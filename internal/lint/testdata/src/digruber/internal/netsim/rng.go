// Package netsim is the globalrand fixture for the exempt package: the
// stream-derivation point is the one place allowed to construct sources.
package netsim

import "math/rand"

func Stream(seed int64, name string) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // exempt: the blessed derivation point
}
