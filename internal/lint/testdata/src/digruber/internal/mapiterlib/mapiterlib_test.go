package mapiterlib

// Test files are exempt from mapiter (SkipTests): this order-dependent
// body must not be reported, so it carries no want comment.
func valuesForAssert(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	return vals
}
