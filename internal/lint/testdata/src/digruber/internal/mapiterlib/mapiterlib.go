// The map-iteration shapes mapiter classifies: order-free bodies
// (key-indexed rebuilds, integer accumulation, deletion, the
// sorted-keys idiom, group-by keyed on the range key) stay quiet;
// bodies whose effect depends on iteration order are flagged.
package mapiterlib

import "sort"

// lower is safe: the rebuild is indexed by the range key, so every
// entry lands in its own slot regardless of visit order.
func lower(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

// invert is flagged: rekeying by the range value lets entries collide,
// and which write wins depends on iteration order.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m { // want `range over map m has an order-dependent body`
		out[v] = k
	}
	return out
}

// total is safe: integer addition commutes.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// mean is flagged: float addition does not commute under rounding.
func mean(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `range over map m has an order-dependent body`
		sum += v
	}
	return sum / float64(len(m))
}

// expire is safe: deleting while ranging is order-free.
func expire(m map[string]int, cutoff int) {
	for k, v := range m {
		if v < cutoff {
			delete(m, k)
		}
	}
}

// sortedKeys is safe: the collected keys are sorted before they can
// reach any emit path — the canonical idiom.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// values is flagged: the collected slice escapes without a sort, so its
// order is the map's.
func values(m map[string]int) []int {
	var vals []int
	for _, v := range m { // want `range over map m has an order-dependent body`
		vals = append(vals, v)
	}
	return vals
}

// emit is flagged: a call inside the body can observe the visit order.
func emit(m map[string]int, out func(string)) {
	for k := range m { // want `range over map m has an order-dependent body`
		out(k)
	}
}

// sequence is flagged: the counter leaks map order into the assigned
// sequence numbers.
func sequence(ids map[string]bool) map[string]int {
	seq := make(map[string]int, len(ids))
	i := 0
	for k := range ids { // want `range over map ids has an order-dependent body`
		i++
		seq[k] = i
	}
	return seq
}

// tag is safe: the group-by target is indexed by the range key, so the
// per-key lists cannot interleave.
func tag(m map[string]int) map[string][]int {
	out := make(map[string][]int)
	for k, v := range m {
		out[k] = append(out[k], v, v+1)
	}
	return out
}

// group is flagged: grouping by the range value makes each list's
// element order the map's visit order.
func group(m map[string]int) map[int][]string {
	out := make(map[int][]string)
	for k, v := range m { // want `range over map m has an order-dependent body`
		out[v] = append(out[v], k)
	}
	return out
}

// pickOne is flagged: break selects an arbitrary element.
func pickOne(m map[string]int) string {
	var pick string
	for k := range m { // want `range over map m has an order-dependent body`
		pick = k
		break
	}
	return pick
}
