// Package paniclib is a nopanic fixture: library packages under
// internal/ return errors; annotated constructor checks are the
// documented exception.
package paniclib

import "errors"

func bad(v int) int {
	if v < 0 {
		panic("negative") // want `panic in library package`
	}
	return v
}

func alsoBad(err error) {
	panic(err) // want `panic in library package`
}

func good(v int) (int, error) {
	if v < 0 {
		return 0, errors.New("paniclib: negative")
	}
	return v, nil
}

// NewThing's argument check is a documented constructor panic, the
// annotated exception class.
func NewThing(size int) []int {
	if size <= 0 {
		//lint:allow nopanic -- documented constructor argument check
		panic("paniclib: size must be positive")
	}
	return make([]int, size)
}
