package paniclib

// Test helpers may panic freely; the nopanic analyzer skips _test.go
// files, so there are no wants here.
func mustPositive(v int) int {
	if v <= 0 {
		panic("test fixture: not positive")
	}
	return v
}
