// The wireschema fixture: its protocol structs are checked against the
// fixture lockfile at testdata/src/digruber/internal/lint/wireschema.lock,
// which records Frame with its two trailing fields swapped (the
// cross-version decode break the analyzer exists to catch), StatusReply
// without its newest field (a gob-compatible append awaiting
// -update-schema), and QueryArgs/Limits exactly as written (clean).
package wirelib

import (
	"time"

	"digruber/internal/wire"
)

type Frame struct { // want `wire schema of digruber/internal/wirelib\.Frame drifted from internal/lint/wireschema\.lock \(reordered: field 1 recorded as "Kind byte", now "Method string"; field 2 recorded as "Method string", now "Kind byte"\)`
	ID     uint64
	Method string
	Kind   byte
}

type QueryArgs struct {
	Owner  string
	CPUs   int
	Limits Limits

	seq uint64 // unexported: invisible to gob, absent from the lockfile
}

type Limits struct {
	MaxCPUs int
	Runtime time.Duration
}

type StatusReply struct { // want `wire schema of digruber/internal/wirelib\.StatusReply gained trailing field\(s\) "Extra int64"`
	Name   string
	Queued int
	Extra  int64
}

type UnrecordedArgs struct { // want `gob protocol struct digruber/internal/wirelib\.UnrecordedArgs is not recorded in internal/lint/wireschema\.lock`
	X string
}

// query is the discovery root: every type argument of a wire.Call /
// wire.Handle instantiation joins the schema closure.
func query(c *wire.Client, s *wire.Server) {
	_, _ = wire.Call[QueryArgs, StatusReply](c, "status", QueryArgs{}, time.Second)
	wire.Handle(s, "frame", func(f Frame) (UnrecordedArgs, error) { return UnrecordedArgs{}, nil })
}
