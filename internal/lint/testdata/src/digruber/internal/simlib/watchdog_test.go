package simlib

import "time"

// Test files may bound real time: a watchdog deadline that limits how
// long a hung test can block is legitimately wall-clock. No wants here —
// the wallclock analyzer skips _test.go files.
func watchdogDeadline() time.Time {
	return time.Now().Add(2 * time.Second)
}
