// Package simlib is a wallclock fixture: a library package that must
// take a vtime.Clock instead of reading real time.
package simlib

import (
	"time"

	"digruber/internal/vtime"
)

// Epoch construction is legal: time.Date does not observe real time.
var epoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)

func bad() {
	now := time.Now() // want `time\.Now reads the wall clock`
	_ = now
	time.Sleep(time.Second)     // want `time\.Sleep reads the wall clock`
	<-time.After(time.Second)   // want `time\.After reads the wall clock`
	<-time.Tick(time.Second)    // want `time\.Tick reads the wall clock`
	_ = time.Since(epoch)       // want `time\.Since reads the wall clock`
	_ = time.NewTimer(1)        // want `time\.NewTimer reads the wall clock`
	_ = time.NewTicker(1)       // want `time\.NewTicker reads the wall clock`
	time.AfterFunc(1, func() {}) // want `time\.AfterFunc reads the wall clock`
}

func good(clock vtime.Clock) time.Time {
	clock.Sleep(30 * time.Second)
	return clock.Now()
}

// shadow declares a local variable named time; selector uses of it are
// not the time package.
func shadow() {
	type fake struct{ Now func() int }
	time := fake{Now: func() int { return 1 }}
	_ = time.Now()
}
