// A bare //lint:allow (no "-- reason"): the underlying wallclock
// finding is suppressed, but the annotation itself must be reported by
// the pseudo-analyzer "allow". The want-comment harness cannot place an
// expectation on a line the allow comment occupies, so lint_test.go
// asserts this package's diagnostics programmatically.
package allowbare

import "time"

func bare() time.Time {
	//lint:allow wallclock
	return time.Now()
}
