// Command demo is the nopanic scope fixture: packages outside internal/
// (examples, cmds) may panic — log.Fatal-style exits are their error
// handling.
package main

func main() {
	panic("examples may crash loudly") // no want: not a library package
}
