// Command tool is the wallclock fixture for exempt cmd/ entrypoints:
// real deployment binaries run on the real clock.
package main

import "time"

func main() {
	deadline := time.Now().Add(time.Minute) // exempt: cmd/ entrypoint
	for time.Now().Before(deadline) {
		time.Sleep(time.Second)
	}
}
