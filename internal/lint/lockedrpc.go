package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockedRPC flags RPCs issued while a mutex is held — the classic
// broker-deadlock shape in the state-exchange mesh: decision point A
// holds its state lock while calling peer B, whose handler needs its own
// lock while calling back into A. Emulated WAN latency makes the window
// enormous (hundreds of virtual milliseconds), so the shape that "works
// on the laptop" wedges the full-mesh run.
//
// The analysis is a per-function, flow-insensitive-but-ordered walk:
// x.Lock()/x.RLock() marks x held, x.Unlock()/x.RUnlock() releases it,
// and "defer x.Unlock()" keeps x held to the end of the function. While
// any lock is held, a call to wire.Call (the repo's only RPC entry
// point, generic instantiations included) or to any .Call(...) method —
// the wire.Client method reached through a field — is reported.
// Goroutine bodies start with no inherited locks (the spawner's locks do
// not transfer); other function literals inherit the current set, which
// covers immediately-invoked and synchronous-callback patterns.
// Branches operate on a copy of the held set, so a lock taken inside an
// if-arm does not leak past it. False positives on genuinely safe shapes
// get a "//lint:allow lockedrpc -- reason" annotation.
var LockedRPC = &Analyzer{
	Name: "lockedrpc",
	Doc: "forbid RPC calls into internal/wire while a mutex is held; " +
		"copy state under the lock, release, then call the wire",
	SkipTests: false,
	Run:       runLockedRPC,
}

func runLockedRPC(pass *Pass) error {
	for _, f := range pass.Files() {
		w := &lockWalker{
			pass: pass,
			wire: importedAs(f.AST, pass.Pkg.Module+"/internal/wire"),
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w.block(fd.Body.List, map[string]bool{})
		}
	}
	return nil
}

type lockWalker struct {
	pass *Pass
	wire string // local import name of internal/wire, "" if not imported
}

func (w *lockWalker) block(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		w.stmt(s, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case nil:
		return
	case *ast.ExprStmt:
		if recv, op, ok := lockOp(s.X); ok {
			switch op {
			case opLock:
				held[recv] = true
			case opUnlock:
				delete(held, recv)
			}
			return
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// "defer x.Unlock()" pins x held to function end — exactly the
		// window the analyzer polices — so the held set is unchanged.
		if _, op, ok := lockOp(s.Call); ok && op == opUnlock {
			return
		}
		w.expr(s.Call, held)
	case *ast.GoStmt:
		// The goroutine does not inherit the spawner's locks; its
		// arguments are still evaluated here.
		for _, arg := range s.Call.Args {
			w.expr(arg, held)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.block(fl.Body.List, map[string]bool{})
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.BlockStmt:
		w.block(s.List, held)
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		w.block(s.Body.List, copyHeld(held))
		w.stmt(s.Else, copyHeld(held))
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		inner := copyHeld(held)
		w.block(s.Body.List, inner)
		w.stmt(s.Post, inner)
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.block(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := copyHeld(held)
				w.stmt(cc.Comm, inner)
				w.block(cc.Body, inner)
			}
		}
	}
}

// expr reports RPC calls reached while locks are held. Function literals
// inherit the current held set (synchronous-callback assumption); go
// statements are handled in stmt.
func (w *lockWalker) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.block(n.Body.List, copyHeld(held))
			return false
		case *ast.CallExpr:
			if len(held) == 0 {
				return true
			}
			if callee := w.rpcCallee(n); callee != "" {
				w.pass.Reportf(n.Pos(),
					"RPC %s while holding %s; copy state under the lock, release it, then call the wire (mesh-deadlock shape)",
					callee, heldNames(held))
			}
		}
		return true
	})
}

// heldNames renders the held set deterministically for the message.
func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

type lockOpKind int

const (
	opLock lockOpKind = iota
	opUnlock
)

// lockOp recognises x.Lock()/x.RLock()/x.Unlock()/x.RUnlock() statements
// and returns the lock expression ("dp.mu") and the operation.
func lockOp(e ast.Expr) (string, lockOpKind, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", 0, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return types.ExprString(sel.X), opLock, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), opUnlock, true
	}
	return "", 0, false
}

// rpcCallee classifies a call as an RPC into the wire layer, returning a
// printable callee name or "".
func (w *lockWalker) rpcCallee(call *ast.CallExpr) string {
	fun := call.Fun
	// Unwrap generic instantiation: wire.Call[Req, Resp](...).
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = x.X
	case *ast.IndexListExpr:
		fun = x.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok && w.wire != "" && id.Name == w.wire && isPkgRef(id) {
		// Package-qualified: only Call performs an RPC; NewClient,
		// NewServer, Handle and the profile constructors are setup.
		if sel.Sel.Name == "Call" {
			return w.wire + ".Call"
		}
		return ""
	}
	// Method call named Call — the wire.Client entry point reached
	// through a field (c.rpc.Call, link.client.Call, ...).
	if sel.Sel.Name == "Call" {
		return types.ExprString(sel)
	}
	return ""
}
