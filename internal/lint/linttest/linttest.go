// Package linttest is an analysistest-style harness for the determinism
// lint suite: it runs one analyzer over fixture packages laid out under
// a testdata/src tree (the golang.org/x/tools/go/analysis/analysistest
// convention, reimplemented on the standard library because the repo
// builds offline) and checks reported diagnostics against expectations
// written in the fixtures themselves:
//
//	deadline := time.Now() // want `time\.Now reads the wall clock`
//
// Each "want" comment carries one or more backquoted or quoted regular
// expressions that must match, in order, the diagnostics reported on
// that line. Lines without a want comment must produce no diagnostics,
// so every fixture doubles as a clean-code test for its unannotated
// lines.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"digruber/internal/lint"
)

// wantRE extracts the quoted expectation patterns from a want comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run applies analyzer a to each fixture package (an import path below
// srcRoot, e.g. "digruber/internal/simlib") and diffs the diagnostics
// against the fixtures' want comments. The module path is the first
// segment of the fixture's import path, so exemption rules keyed on
// Module+"/internal/..." behave exactly as in the real tree.
func Run(t *testing.T, srcRoot string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		pkg, err := load(srcRoot, pkgPath)
		if err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
		}
		diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a}, lint.Options{WholeModule: false})
		if err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
		}
		check(t, pkg, diags)
	}
}

func load(srcRoot, pkgPath string) (*lint.Package, error) {
	module := pkgPath
	if i := strings.IndexByte(module, '/'); i >= 0 {
		module = module[:i]
	}
	// The fixture tree root (testdata/src) acts as a GOPATH-style source
	// root: the loader resolves in-module imports like
	// "digruber/internal/wire" below it.
	loader := lint.NewTypeLoader(module, filepath.Join(srcRoot, module))
	dir := filepath.Join(srcRoot, filepath.FromSlash(pkgPath))
	pkg, err := lint.LoadDir(loader, pkgPath, dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return pkg, nil
}

// expectation is one want pattern at a file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func check(t *testing.T, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(text[len("want "):], -1) {
					pat, err := unquote(q)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	for _, d := range diags {
		if w := takeWant(wants, d); w != nil {
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s [%s]", pkg.ImportPath, d, d.Analyzer)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// takeWant claims the first unmatched expectation for d's line whose
// pattern matches the message.
func takeWant(wants []*expectation, d lint.Diagnostic) *expectation {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return w
		}
	}
	return nil
}

// unquote handles both `backquoted` and "quoted" want patterns.
func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}
