// Package lint is the determinism lint suite for the DI-GRUBER
// reproduction. The paper's results are shape claims — who wins, where
// saturation falls — and those only replay exactly if every experiment
// is deterministic and data-race-free. GridSim-style simulators get that
// from a single-threaded event core; this repo runs real
// goroutine-concurrent brokers instead, so the invariants live in
// conventions:
//
//   - all time flows through vtime.Clock (analyzer "wallclock"),
//   - all randomness flows through seeded netsim.Stream streams
//     (analyzer "globalrand"),
//   - library packages return errors instead of panicking
//     (analyzer "nopanic"),
//   - no RPC, channel send, virtual sleep or condition wait happens
//     while a mutex is held — the deadlock shapes -race cannot see
//     (analyzer "lockheld"),
//   - nothing on an emit path iterates a map unsorted
//     (analyzer "mapiter"),
//   - gob protocol structs evolve append-only against a committed
//     wire-schema lockfile (analyzer "wireschema").
//
// This package encodes those conventions as analyzers in the style of
// golang.org/x/tools/go/analysis, implemented on the standard library
// only. The driver runs two kinds of pass: syntactic ones (go/ast; they
// resolve package identifiers through each file's import table, which
// is exact for the qualified-call patterns they police) and semantic
// ones that demand full type information (NeedsTypes), supplied by a
// TypeLoader that type-checks the module and — via go/importer's source
// importer — its standard-library dependencies. Analyzers may also run
// once over the whole loaded module (RunModule) for invariants that no
// single package can see, like wire-schema lockfile staleness.
//
// Intentional violations are suppressed with an annotation on the
// offending line or the line directly above it:
//
//	//lint:allow wallclock -- real-time watchdog, not simulated time
//
// Multiple analyzer names may be given, comma-separated; everything
// after " -- " is a free-form justification. The justification is
// mandatory: a bare //lint:allow with no " -- reason" still suppresses,
// but is itself reported as a violation (analyzer "allow"), so every
// exemption in the tree says why it exists.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strconv"
	"strings"
)

// Analyzer is one named invariant check, mirroring the shape of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name is the identifier used in diagnostics and //lint:allow
	// annotations.
	Name string
	// Doc is the one-paragraph description shown by -list.
	Doc string
	// SkipTests excludes _test.go files from the pass. Test files get
	// latitude where noted in each analyzer's Doc (e.g. real-time
	// watchdog deadlines bounding how long a test may hang).
	SkipTests bool
	// NeedsTypes asks the driver to type-check each package (filling
	// Package.Types/TypesInfo through its TypeLoader) before Run.
	NeedsTypes bool
	// Run inspects pass.Files and reports violations via pass.Reportf.
	// It may be nil for module-level-only analyzers.
	Run func(pass *Pass) error
	// RunModule, if non-nil, runs once over all loaded packages after
	// the per-package passes — the hook for whole-module invariants
	// (e.g. wireschema's lockfile completeness).
	RunModule func(pass *ModulePass) error
}

// File is one parsed source file of a package.
type File struct {
	// Name is the file path as given to the loader.
	Name string
	// AST is the parsed file, including comments.
	AST *ast.File
	// Test marks _test.go files.
	Test bool
	// NoTypes marks files excluded from type checking by build
	// constraints (e.g. //go:build race in a raceless run); typed
	// analyzers have no information for them and skip what they cannot
	// resolve.
	NoTypes bool
}

// Package is the unit an analyzer runs over.
type Package struct {
	// Module is the module path (e.g. "digruber"); analyzers use it to
	// name in-repo packages like Module+"/internal/vtime".
	Module string
	// ImportPath is the package's import path within the module.
	ImportPath string
	// Dir is the package directory on disk.
	Dir string
	// Root is the module root directory ("" when unknown); module-level
	// analyzers use it to locate committed artifacts like the
	// wire-schema lockfile.
	Root string
	// Fset positions all Files. Packages loaded through one TypeLoader
	// share its FileSet.
	Fset *token.FileSet
	// Files holds every .go file in the directory, tests included.
	Files []*File
	// Loader type-checks this package and resolves its imports.
	Loader *TypeLoader
	// Types is the type-checked base package, filled by Loader.Check
	// when an analyzer declares NeedsTypes (nil for xtest-only dirs).
	Types *types.Package
	// TypesInfo records type information for every build-matching file,
	// test units included.
	TypesInfo *types.Info
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Files returns the files the analyzer should inspect, honouring
// SkipTests.
func (p *Pass) Files() []*File {
	if !p.Analyzer.SkipTests {
		return p.Pkg.Files
	}
	out := make([]*File, 0, len(p.Pkg.Files))
	for _, f := range p.Pkg.Files {
		if !f.Test {
			out = append(out, f)
		}
	}
	return out
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ModulePass carries one analyzer's whole-module run.
type ModulePass struct {
	Analyzer *Analyzer
	// Pkgs are all loaded packages, in load order.
	Pkgs []*Package
	// WholeModule asserts Pkgs is the complete module, enabling checks
	// that would false-positive on a partial view (lockfile staleness).
	WholeModule bool
	diags       []Diagnostic
}

// Reportf records a violation at a resolved position — module passes
// report against files of any package (all share one FileSet) or
// against non-Go artifacts like the lockfile, so they position
// diagnostics themselves.
func (p *ModulePass) Reportf(pos token.Position, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Fset returns the FileSet shared by the loaded packages.
func (p *ModulePass) Fset() *token.FileSet {
	for _, pkg := range p.Pkgs {
		if pkg.Fset != nil {
			return pkg.Fset
		}
	}
	return token.NewFileSet()
}

// All returns the full determinism suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, GlobalRand, NoPanic, LockHeld, MapIter, WireSchema}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Options configures a Run.
type Options struct {
	// WholeModule marks the package list as the module's complete
	// package set (the "./..." load), enabling whole-module checks like
	// wire-schema lockfile staleness that would false-positive on a
	// partial view (single package under go vet, single-file CLI runs).
	WholeModule bool
}

// Run applies the analyzers to every package — type-checking packages
// first when any analyzer needs types — drops diagnostics covered by
// //lint:allow annotations, reports bare annotations missing their
// "-- reason" justification, and returns the remainder in file/line
// order.
func Run(pkgs []*Package, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	needTypes := false
	for _, a := range analyzers {
		if a.NeedsTypes {
			needTypes = true
		}
	}
	if needTypes {
		for _, pkg := range pkgs {
			if pkg.TypesInfo != nil {
				continue
			}
			if pkg.Loader == nil {
				return nil, fmt.Errorf("lint: package %s has no TypeLoader but a selected analyzer needs types", pkg.ImportPath)
			}
			if err := pkg.Loader.Check(pkg); err != nil {
				return nil, err
			}
		}
	}

	var out []Diagnostic
	allows := allowSet{}
	for _, pkg := range pkgs {
		bare := collectAllows(pkg, allows)
		out = append(out, bare...)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			out = append(out, pass.diags...)
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{Analyzer: a, Pkgs: pkgs, WholeModule: opts.WholeModule}
		if err := a.RunModule(mp); err != nil {
			return nil, fmt.Errorf("lint: %s (module): %w", a.Name, err)
		}
		out = append(out, mp.diags...)
	}

	kept := out[:0]
	for _, d := range out {
		if d.Analyzer != allowAnalyzer && allows.covers(d.Analyzer, d.Pos) {
			continue
		}
		kept = append(kept, d)
	}
	out = kept
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Module passes of overlapping closures can report one drift twice;
	// identical diagnostics collapse.
	dedup := out[:0]
	for i, d := range out {
		if i > 0 && d == out[i-1] {
			continue
		}
		dedup = append(dedup, d)
	}
	return dedup, nil
}

// allowAnalyzer names the pseudo-analyzer reporting malformed
// //lint:allow annotations; it is not part of All() and cannot itself
// be suppressed.
const allowAnalyzer = "allow"

// allowSet records which analyzers are allowed on which line of which
// file. An annotation covers its own line (end-of-line comment) and the
// line directly below it (comment above the offending statement).
type allowSet map[string]map[int]map[string]bool // file → line → analyzer

// collectAllows records pkg's annotations into set and returns one
// diagnostic per bare annotation missing its "-- reason" justification.
func collectAllows(pkg *Package, set allowSet) []Diagnostic {
	var bare []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				names, justified, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if !justified {
					bare = append(bare, Diagnostic{
						Pos: pos,
						Message: fmt.Sprintf(
							"//lint:allow %s is missing its justification; write \"//lint:allow %s -- reason\"",
							strings.Join(names, ","), strings.Join(names, ",")),
						Analyzer: allowAnalyzer,
					})
				}
				if set[pos.Filename] == nil {
					set[pos.Filename] = map[int]map[string]bool{}
				}
				if set[pos.Filename][pos.Line] == nil {
					set[pos.Filename][pos.Line] = map[string]bool{}
				}
				for _, n := range names {
					set[pos.Filename][pos.Line][n] = true
				}
			}
		}
	}
	return bare
}

// parseAllow recognises "//lint:allow name[,name...] -- reason". The
// justified result reports whether the " -- reason" part is present and
// non-empty.
func parseAllow(comment string) (names []string, justified, ok bool) {
	const prefix = "//lint:allow"
	if !strings.HasPrefix(comment, prefix) {
		return nil, false, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(comment, prefix))
	if i := strings.Index(rest, "--"); i >= 0 {
		justified = strings.TrimSpace(rest[i+len("--"):]) != ""
		rest = strings.TrimSpace(rest[:i])
	}
	if rest == "" {
		return nil, false, false
	}
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, justified, len(names) > 0
}

func (s allowSet) covers(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if lines[line][analyzer] || lines[line]["all"] {
			return true
		}
	}
	return false
}

// importedAs returns the local name under which importPath is imported
// in f, or "" if it is not imported (or only blank/dot imported, which
// the syntactic analyzers cannot track).
func importedAs(f *ast.File, importPath string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != importPath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		return path.Base(p)
	}
	return ""
}

// isPkgRef reports whether id plausibly refers to an imported package
// rather than a local variable shadowing the package name. The parser's
// scope resolution attaches an Object to locally-declared identifiers;
// package qualifiers resolve to the import (Kind Pkg) or to nothing.
func isPkgRef(id *ast.Ident) bool {
	return id.Obj == nil || id.Obj.Kind == ast.Pkg
}
