// Package lint is the determinism lint suite for the DI-GRUBER
// reproduction. The paper's results are shape claims — who wins, where
// saturation falls — and those only replay exactly if every experiment
// is deterministic and data-race-free. GridSim-style simulators get that
// from a single-threaded event core; this repo runs real
// goroutine-concurrent brokers instead, so the invariants live in
// conventions:
//
//   - all time flows through vtime.Clock (analyzer "wallclock"),
//   - all randomness flows through seeded netsim.Stream streams
//     (analyzer "globalrand"),
//   - library packages return errors instead of panicking
//     (analyzer "nopanic"),
//   - no mutex is held across an RPC into the wire/netsim layer, the
//     classic broker-deadlock shape in the state-exchange mesh
//     (analyzer "lockedrpc").
//
// This package encodes those conventions as analyzers in the style of
// golang.org/x/tools/go/analysis, implemented on the standard library
// only (go/ast + go/parser; no network deps). The analyzers are
// syntactic: they resolve package identifiers through each file's import
// table rather than full type information, which is exact for the
// qualified-call patterns they police.
//
// Intentional violations are suppressed with an annotation on the
// offending line or the line directly above it:
//
//	//lint:allow wallclock -- real-time watchdog, not simulated time
//
// Multiple analyzer names may be given, comma-separated; everything
// after " -- " is a free-form justification (required by convention,
// not by the checker).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path"
	"sort"
	"strconv"
	"strings"
)

// Analyzer is one named invariant check, mirroring the shape of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name is the identifier used in diagnostics and //lint:allow
	// annotations.
	Name string
	// Doc is the one-paragraph description shown by -list.
	Doc string
	// SkipTests excludes _test.go files from the pass. Test files get
	// latitude where noted in each analyzer's Doc (e.g. real-time
	// watchdog deadlines bounding how long a test may hang).
	SkipTests bool
	// Run inspects pass.Files and reports violations via pass.Reportf.
	Run func(pass *Pass) error
}

// File is one parsed source file of a package.
type File struct {
	// Name is the file path as given to the loader.
	Name string
	// AST is the parsed file, including comments.
	AST *ast.File
	// Test marks _test.go files.
	Test bool
}

// Package is the unit an analyzer runs over.
type Package struct {
	// Module is the module path (e.g. "digruber"); analyzers use it to
	// name in-repo packages like Module+"/internal/vtime".
	Module string
	// ImportPath is the package's import path within the module.
	ImportPath string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files holds every .go file in the directory, tests included.
	Files []*File
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Files returns the files the analyzer should inspect, honouring
// SkipTests.
func (p *Pass) Files() []*File {
	if !p.Analyzer.SkipTests {
		return p.Pkg.Files
	}
	out := make([]*File, 0, len(p.Pkg.Files))
	for _, f := range p.Pkg.Files {
		if !f.Test {
			out = append(out, f)
		}
	}
	return out
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// All returns the full determinism suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, GlobalRand, NoPanic, LockedRPC}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Run applies the analyzers to every package, drops diagnostics covered
// by //lint:allow annotations, and returns the remainder in file/line
// order.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diags {
				if allows.covers(a.Name, d.Pos) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// allowSet records which analyzers are allowed on which line of which
// file. An annotation covers its own line (end-of-line comment) and the
// line directly below it (comment above the offending statement).
type allowSet map[string]map[int]map[string]bool // file → line → analyzer

func collectAllows(pkg *Package) allowSet {
	set := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				file := pkg.Fset.Position(c.Pos()).Filename
				if set[file] == nil {
					set[file] = map[int]map[string]bool{}
				}
				if set[file][line] == nil {
					set[file][line] = map[string]bool{}
				}
				for _, n := range names {
					set[file][line][n] = true
				}
			}
		}
	}
	return set
}

// parseAllow recognises "//lint:allow name[,name...] [-- reason]".
func parseAllow(comment string) ([]string, bool) {
	const prefix = "//lint:allow"
	if !strings.HasPrefix(comment, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(comment, prefix))
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	if rest == "" {
		return nil, false
	}
	var names []string
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

func (s allowSet) covers(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if lines[line][analyzer] || lines[line]["all"] {
			return true
		}
	}
	return false
}

// importedAs returns the local name under which importPath is imported
// in f, or "" if it is not imported (or only blank/dot imported, which
// the syntactic analyzers cannot track).
func importedAs(f *ast.File, importPath string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != importPath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		return path.Base(p)
	}
	return ""
}

// isPkgRef reports whether id plausibly refers to an imported package
// rather than a local variable shadowing the package name. The parser's
// scope resolution attaches an Object to locally-declared identifiers;
// package qualifiers resolve to the import (Kind Pkg) or to nothing.
func isPkgRef(id *ast.Ident) bool {
	return id.Obj == nil || id.Obj.Kind == ast.Pkg
}
