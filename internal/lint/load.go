package lint

import (
	"bufio"
	"fmt"
	"go/parser"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule parses the packages of the Go module rooted at root that
// match the go-tool-style patterns ("./...", "./internal/lint",
// "./cmd/..."). It is a deliberately small stand-in for
// golang.org/x/tools/go/packages: every directory containing .go files
// becomes one Package (internal and external test files are folded into
// the same Package, which is what the analyzers want). Directories named
// testdata or vendor, and hidden or underscore directories, are skipped,
// matching the go tool's convention. All returned packages share one
// TypeLoader (and its FileSet), so semantic analyzers can be run over
// them.
func LoadModule(root string, patterns []string) ([]*Package, error) {
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		if err := expandPattern(root, pat, dirs); err != nil {
			return nil, err
		}
	}
	loader := NewTypeLoader(module, root)
	return loadDirs(loader, dirs)
}

// LoadTargets resolves a mix of package patterns and single .go file
// arguments — the two argument shapes the CLI accepts. A file argument
// loads its enclosing directory as a package; the returned "only" set
// (absolute file paths, nil when no file arguments were given) is the
// filter callers apply to restrict diagnostics to the named files.
func LoadTargets(root string, args []string) (pkgs []*Package, only map[string]bool, err error) {
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, nil, err
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, arg := range args {
		if strings.HasSuffix(arg, ".go") {
			abs, err := filepath.Abs(arg)
			if err != nil {
				return nil, nil, err
			}
			info, err := os.Stat(abs)
			if err != nil {
				return nil, nil, fmt.Errorf("lint: %w", err)
			}
			if info.IsDir() {
				return nil, nil, fmt.Errorf("lint: %s is a directory, not a Go file", arg)
			}
			if only == nil {
				only = map[string]bool{}
			}
			only[abs] = true
			dirs[filepath.Dir(abs)] = true
			continue
		}
		if err := expandPattern(root, arg, dirs); err != nil {
			return nil, nil, err
		}
	}
	loader := NewTypeLoader(module, root)
	pkgs, err = loadDirs(loader, dirs)
	return pkgs, only, err
}

// loadDirs parses each directory into a Package through one shared
// loader, in sorted order.
func loadDirs(loader *TypeLoader, dirs map[string]bool) ([]*Package, error) {
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		rel, err := filepath.Rel(loader.Root, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: directory %s is outside module root %s", dir, loader.Root)
		}
		importPath := loader.Module
		if rel != "." {
			importPath = loader.Module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := LoadDir(loader, importPath, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// expandPattern resolves one pattern into package directories.
func expandPattern(root, pat string, dirs map[string]bool) error {
	pat = strings.TrimPrefix(pat, "./")
	recursive := false
	if pat == "..." {
		pat, recursive = "", true
	} else if strings.HasSuffix(pat, "/...") {
		pat, recursive = strings.TrimSuffix(pat, "/..."), true
	}
	base := filepath.Join(root, filepath.FromSlash(pat))
	info, err := os.Stat(base)
	if err != nil {
		return fmt.Errorf("lint: pattern %q: %w", pat, err)
	}
	if !info.IsDir() {
		return fmt.Errorf("lint: pattern %q is not a directory (single files may be passed as path/to/file.go)", pat)
	}
	if !recursive {
		dirs[base] = true
		return nil
	}
	return filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs[p] = true
		return nil
	})
}

// LoadDir parses every .go file in dir into a Package attached to
// loader, with the given import path; it returns (nil, nil) when the
// directory holds no .go files. Fixture trees (linttest) use it directly
// with synthetic import paths.
func LoadDir(loader *TypeLoader, importPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	pkg := &Package{
		Module:     loader.Module,
		ImportPath: importPath,
		Dir:        dir,
		Root:       loader.Root,
		Fset:       loader.Fset,
		Loader:     loader,
	}
	for _, name := range names {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(pkg.Fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", full, err)
		}
		pkg.Files = append(pkg.Files, &File{
			Name: full,
			AST:  f,
			Test: strings.HasSuffix(name, "_test.go"),
		})
	}
	return pkg, nil
}

// LoadVetPackage builds a Package from the explicit file list a go vet
// driver hands its vet tool. The module path is read from the nearest
// go.mod above dir; for packages outside any module (or the standard
// library, should the driver ever pass one) the first import-path
// segment stands in, which keeps every in-repo exemption rule exact.
func LoadVetPackage(dir, importPath string, goFiles []string) (*Package, error) {
	module := importPath
	if i := strings.IndexByte(module, '/'); i >= 0 {
		module = module[:i]
	}
	root := dir
	if r, err := FindModuleRoot(dir); err == nil {
		root = r
		if m, err := modulePath(filepath.Join(r, "go.mod")); err == nil {
			module = m
		}
	}
	loader := NewTypeLoader(module, root)
	pkg := &Package{
		Module:     module,
		ImportPath: importPath,
		Dir:        dir,
		Root:       root,
		Fset:       loader.Fset,
		Loader:     loader,
	}
	for _, name := range goFiles {
		f, err := parser.ParseFile(pkg.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		pkg.Files = append(pkg.Files, &File{
			Name: name,
			AST:  f,
			Test: strings.HasSuffix(name, "_test.go"),
		})
	}
	return pkg, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (run from the module root)", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "module ") {
			return strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}
