package usla

import (
	"encoding/json"
	"testing"
	"time"
)

func sampleAgreement() *Agreement {
	return &Agreement{
		Name: "atlas-cpu",
		Context: Context{
			Provider:   "site-004",
			Consumer:   "atlas.higgs",
			Expiration: time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC),
		},
		Terms: []GuaranteeTerm{
			{Name: "cpu-share", Resource: CPU, Goal: "40+"},
			{Name: "storage-share", Resource: Storage, Goal: "10"},
		},
	}
}

func TestAgreementXMLRoundTrip(t *testing.T) {
	a := sampleAgreement()
	data, err := a.XML()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseAgreementXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != a.Name || back.Context.Provider != a.Context.Provider {
		t.Fatalf("round trip lost context: %+v", back)
	}
	if len(back.Terms) != 2 || back.Terms[0].Goal != "40+" || back.Terms[1].Resource != Storage {
		t.Fatalf("round trip lost terms: %+v", back.Terms)
	}
}

func TestAgreementJSONRoundTrip(t *testing.T) {
	a := sampleAgreement()
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Agreement
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Context.Consumer != "atlas.higgs" || len(back.Terms) != 2 {
		t.Fatalf("json round trip: %+v", back)
	}
}

func TestAgreementEntries(t *testing.T) {
	a := sampleAgreement()
	now := time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)
	entries, err := a.Entries(now)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries", len(entries))
	}
	if entries[0].Provider != "site-004" || entries[0].Share != (Share{40, UpperLimit}) {
		t.Fatalf("entry[0] = %+v", entries[0])
	}
}

func TestAgreementExpired(t *testing.T) {
	a := sampleAgreement()
	after := a.Context.Expiration.Add(time.Hour)
	entries, err := a.Entries(after)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatal("expired agreement still yields entries")
	}
}

func TestAgreementNoExpiry(t *testing.T) {
	a := sampleAgreement()
	a.Context.Expiration = time.Time{}
	entries, err := a.Entries(time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil || len(entries) != 2 {
		t.Fatalf("zero expiration should mean no expiry: %v %d", err, len(entries))
	}
}

func TestAgreementBadGoal(t *testing.T) {
	a := sampleAgreement()
	a.Terms[0].Goal = "oops"
	if _, err := a.Entries(time.Time{}); err == nil {
		t.Fatal("bad goal accepted")
	}
}

func TestAgreementBadConsumer(t *testing.T) {
	a := sampleAgreement()
	a.Context.Consumer = "a.b.c.d"
	if _, err := a.Entries(time.Time{}); err == nil {
		t.Fatal("bad consumer accepted")
	}
}

func TestFromEntriesGroups(t *testing.T) {
	entries, err := ParseTextString(`
site-1 atlas cpu 30
site-1 atlas storage 20
site-2 atlas cpu 50+
site-1 cms   cpu 10-
`)
	if err != nil {
		t.Fatal(err)
	}
	agreements := FromEntries(entries)
	if len(agreements) != 3 {
		t.Fatalf("got %d agreements, want 3 (grouped by provider+consumer)", len(agreements))
	}
	if len(agreements[0].Terms) != 2 {
		t.Fatalf("first agreement should carry both site-1/atlas terms: %+v", agreements[0])
	}
	// Entries -> Agreements -> Entries is lossless modulo grouping.
	var back []Entry
	for i := range agreements {
		es, err := agreements[i].Entries(time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		back = append(back, es...)
	}
	if len(back) != len(entries) {
		t.Fatalf("round trip %d entries, want %d", len(back), len(entries))
	}
}
