// Package usla implements the usage service level agreement (USLA) model
// GRUBER and DI-GRUBER broker against.
//
// The representation follows the paper: Maui-scheduler fair-share
// semantics carried in a WS-Agreement-style envelope. Each entry binds a
// provider (a site, or "*" for every site) and a consumer (a VO, a group
// within a VO, or a user within a group — the paper's recursive
// extension) to a share of a resource type:
//
//	VO.30   — target: aim for 30% (soft; opportunistic overshoot allowed)
//	VO.30+  — upper limit: never exceed 30%
//	VO.30-  — lower limit: at least 30% is guaranteed
//
// Group shares are fractions of their VO's allocation and user shares are
// fractions of their group's allocation, so entitlements resolve
// multiplicatively down the consumer path.
package usla

import (
	"fmt"
	"strconv"
	"strings"
)

// Resource identifies what a share allocates. The paper's allocations
// cover processor time, permanent storage, and network bandwidth.
type Resource string

// Resource kinds.
const (
	CPU     Resource = "cpu"
	Storage Resource = "storage"
	Network Resource = "network"
)

// ValidResource reports whether r is one of the defined resource kinds.
func ValidResource(r Resource) bool {
	switch r {
	case CPU, Storage, Network:
		return true
	}
	return false
}

// ShareKind is the Maui sign suffix: no sign = target, '+' = upper limit,
// '-' = lower limit.
type ShareKind int

// Share kinds.
const (
	Target ShareKind = iota
	UpperLimit
	LowerLimit
)

// String renders the kind as its Maui suffix.
func (k ShareKind) String() string {
	switch k {
	case UpperLimit:
		return "+"
	case LowerLimit:
		return "-"
	default:
		return ""
	}
}

// Share is a fair-share percentage with its kind.
type Share struct {
	Percent float64
	Kind    ShareKind
}

// ParseShare parses Maui notation such as "30", "30+", "12.5-".
func ParseShare(s string) (Share, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Share{}, fmt.Errorf("usla: empty share")
	}
	kind := Target
	switch s[len(s)-1] {
	case '+':
		kind = UpperLimit
		s = s[:len(s)-1]
	case '-':
		kind = LowerLimit
		s = s[:len(s)-1]
	}
	pct, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return Share{}, fmt.Errorf("usla: bad share %q: %w", s, err)
	}
	if pct < 0 || pct > 100 {
		return Share{}, fmt.Errorf("usla: share %v%% out of [0,100]", pct)
	}
	return Share{Percent: pct, Kind: kind}, nil
}

// String renders the share in Maui notation.
func (s Share) String() string {
	return strconv.FormatFloat(s.Percent, 'f', -1, 64) + s.Kind.String()
}

// AnyProvider matches every site.
const AnyProvider = "*"

// Entry is one USLA rule: consumer gets share of resource at provider.
type Entry struct {
	// Provider is a site name or AnyProvider.
	Provider string
	// Consumer is the dotted consumer path: "vo", "vo.group", or
	// "vo.group.user".
	Consumer Path
	// Resource is what is being shared.
	Resource Resource
	// Share is the percentage and its kind.
	Share Share
}

// String renders the entry in the one-line text form.
func (e Entry) String() string {
	return fmt.Sprintf("%s %s %s %s", e.Provider, e.Consumer, e.Resource, e.Share)
}

// Validate checks an entry's fields.
func (e Entry) Validate() error {
	if e.Provider == "" {
		return fmt.Errorf("usla: entry %v: empty provider", e)
	}
	if e.Consumer.VO == "" {
		return fmt.Errorf("usla: entry %v: empty consumer", e)
	}
	if !ValidResource(e.Resource) {
		return fmt.Errorf("usla: entry %v: unknown resource %q", e, e.Resource)
	}
	if e.Share.Percent < 0 || e.Share.Percent > 100 {
		return fmt.Errorf("usla: entry %v: share out of range", e)
	}
	return nil
}
