package usla

import (
	"fmt"
	"strings"
	"testing"
)

// benchSet builds the composite-workload policy shape: 10 VOs with
// targets and caps plus 100 group targets.
func benchSet(b *testing.B) *PolicySet {
	b.Helper()
	ps := NewPolicySet()
	for v := 0; v < 10; v++ {
		vo := Path{VO: fmt.Sprintf("vo-%02d", v)}
		ps.Add(Entry{Provider: AnyProvider, Consumer: vo, Resource: CPU, Share: Share{10, Target}})
		ps.Add(Entry{Provider: AnyProvider, Consumer: vo, Resource: CPU, Share: Share{20, UpperLimit}})
		for g := 0; g < 10; g++ {
			grp := Path{VO: vo.VO, Group: fmt.Sprintf("group-%02d", g)}
			ps.Add(Entry{Provider: AnyProvider, Consumer: grp, Resource: CPU, Share: Share{10, Target}})
		}
	}
	return ps
}

// BenchmarkHeadroom measures the per-site USLA evaluation performed for
// every site of every query.
func BenchmarkHeadroom(b *testing.B) {
	ps := benchSet(b)
	p := MustParsePath("vo-03.group-07")
	usage := func(Path) float64 { return 12 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.Headroom("site-042", p, CPU, 100, usage)
	}
}

// BenchmarkEntitlement measures the recursive share resolution.
func BenchmarkEntitlement(b *testing.B) {
	ps := benchSet(b)
	p := MustParsePath("vo-03.group-07")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.Entitlement("site-042", p, CPU, 30000)
	}
}

// BenchmarkParseText measures loading a 120-rule policy file.
func BenchmarkParseText(b *testing.B) {
	var sb strings.Builder
	for v := 0; v < 10; v++ {
		fmt.Fprintf(&sb, "* vo-%02d cpu 10\n* vo-%02d cpu 20+\n", v, v)
		for g := 0; g < 10; g++ {
			fmt.Fprintf(&sb, "* vo-%02d.group-%02d cpu 10\n", v, g)
		}
	}
	text := sb.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseTextString(text); err != nil {
			b.Fatal(err)
		}
	}
}
