package usla

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// PolicySet is an indexed collection of USLA entries with the resolution
// and fair-share evaluation logic decision points run on every scheduling
// request. It is safe for concurrent readers and writers — the paper's
// brokers both evaluate USLAs per job and accept USLA updates at runtime.
type PolicySet struct {
	mu      sync.RWMutex
	entries []Entry
	// index[resource][consumer][provider] → accumulated limits
	index map[Resource]map[Path]map[string]*limits
}

type limits struct {
	target, upper, lower          float64
	hasTarget, hasUpper, hasLower bool
}

// NewPolicySet returns an empty set.
func NewPolicySet() *PolicySet {
	return &PolicySet{index: make(map[Resource]map[Path]map[string]*limits)}
}

// Add validates and inserts one entry. Later entries of the same
// (provider, consumer, resource, kind) replace earlier ones, which is how
// USLA modification works at runtime.
func (ps *PolicySet) Add(e Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.entries = append(ps.entries, e)
	byConsumer, ok := ps.index[e.Resource]
	if !ok {
		byConsumer = make(map[Path]map[string]*limits)
		ps.index[e.Resource] = byConsumer
	}
	byProvider, ok := byConsumer[e.Consumer]
	if !ok {
		byProvider = make(map[string]*limits)
		byConsumer[e.Consumer] = byProvider
	}
	l, ok := byProvider[e.Provider]
	if !ok {
		l = &limits{}
		byProvider[e.Provider] = l
	}
	switch e.Share.Kind {
	case Target:
		l.target, l.hasTarget = e.Share.Percent, true
	case UpperLimit:
		l.upper, l.hasUpper = e.Share.Percent, true
	case LowerLimit:
		l.lower, l.hasLower = e.Share.Percent, true
	}
	return nil
}

// AddAll inserts every entry, stopping at the first error.
func (ps *PolicySet) AddAll(entries []Entry) error {
	for _, e := range entries {
		if err := ps.Add(e); err != nil {
			return err
		}
	}
	return nil
}

// Entries returns a copy of all entries in insertion order.
func (ps *PolicySet) Entries() []Entry {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	return append([]Entry(nil), ps.entries...)
}

// Len reports the number of entries.
func (ps *PolicySet) Len() int {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	return len(ps.entries)
}

// Limits is the resolved per-level share for one consumer path level at
// one provider, as percentages of the parent scope's allocation.
// Unspecified components fall back to the paper's opportunistic model:
// target defaults to the upper limit if one exists (else 100%), the upper
// limit defaults to 100% ("free resources are acquired when available"),
// and the lower limit defaults to 0%.
type Limits struct {
	Target float64
	Upper  float64
	Lower  float64
	// Explicit reports whether any entry mentioned this (provider,
	// consumer, resource) at all.
	Explicit bool
}

// LimitsFor resolves the share for one consumer path at one provider.
// A provider-specific entry overrides an AnyProvider entry per kind.
func (ps *PolicySet) LimitsFor(provider string, consumer Path, res Resource) Limits {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	var merged limits
	explicit := false
	if byConsumer, ok := ps.index[res]; ok {
		if byProvider, ok := byConsumer[consumer]; ok {
			// Wildcard first, then provider-specific overriding it.
			if l, ok := byProvider[AnyProvider]; ok {
				merged.apply(*l)
				explicit = true
			}
			if provider != AnyProvider {
				if l, ok := byProvider[provider]; ok {
					merged.apply(*l)
					explicit = true
				}
			}
		}
	}
	out := Limits{Target: 100, Upper: 100, Lower: 0, Explicit: explicit}
	if merged.hasUpper {
		out.Upper = merged.upper
		out.Target = merged.upper // target defaults to cap when only a cap is given
	}
	if merged.hasTarget {
		out.Target = merged.target
	}
	if merged.hasLower {
		out.Lower = merged.lower
	}
	return out
}

func (l *limits) apply(o limits) {
	if o.hasTarget {
		l.target, l.hasTarget = o.target, true
	}
	if o.hasUpper {
		l.upper, l.hasUpper = o.upper, true
	}
	if o.hasLower {
		l.lower, l.hasLower = o.lower, true
	}
}

// Entitlement is an absolute allocation (in resource units, e.g. CPUs)
// resolved multiplicatively down a consumer path.
type Entitlement struct {
	Target float64
	Upper  float64
	Lower  float64
}

// Entitlement resolves the absolute allocation of consumer p at provider
// for a resource of the given capacity. Each level's percentages apply to
// the parent level's corresponding allocation, implementing the paper's
// recursive VO → group → user extension of Maui fair share.
func (ps *PolicySet) Entitlement(provider string, p Path, res Resource, capacity float64) Entitlement {
	ent := Entitlement{Target: capacity, Upper: capacity, Lower: capacity}
	for _, prefix := range p.Prefixes() {
		l := ps.LimitsFor(provider, prefix, res)
		ent.Target *= l.Target / 100
		ent.Upper *= l.Upper / 100
		ent.Lower *= l.Lower / 100
	}
	if p.Depth() == 0 {
		ent.Lower = 0
	}
	return ent
}

// UsageFunc reports the current absolute usage of a consumer path at the
// provider being evaluated. Usage of a parent path must include all of
// its children (the caller aggregates).
type UsageFunc func(p Path) float64

// Headroom reports how many more resource units consumer p may claim at
// provider under the hard (upper-limit) constraints of every level of its
// path: a user must fit within the user cap, the group cap and the VO cap
// simultaneously. Negative headroom (already over cap) clamps to 0.
func (ps *PolicySet) Headroom(provider string, p Path, res Resource, capacity float64, usage UsageFunc) float64 {
	room := capacity
	scope := capacity
	for _, prefix := range p.Prefixes() {
		l := ps.LimitsFor(provider, prefix, res)
		scope *= l.Upper / 100
		if r := scope - usage(prefix); r < room {
			room = r
		}
	}
	if room < 0 {
		return 0
	}
	return room
}

// TargetGap reports how far below (positive) or above (negative) its
// fair-share target consumer p currently is at provider, in absolute
// units. Site selectors rank candidate sites by descending TargetGap so
// under-served consumers catch up — the enforcement bias of the paper's
// V-PEP model.
func (ps *PolicySet) TargetGap(provider string, p Path, res Resource, capacity float64, usage UsageFunc) float64 {
	ent := ps.Entitlement(provider, p, res, capacity)
	return ent.Target - usage(p)
}

// Allowed reports whether consumer p may claim demand more units at
// provider right now.
func (ps *PolicySet) Allowed(provider string, p Path, res Resource, capacity float64, usage UsageFunc, demand float64) bool {
	return ps.Headroom(provider, p, res, capacity, usage) >= demand
}

// Validate checks cross-entry consistency and returns all problems found:
// sibling targets that sum past 100%, lower limits above upper limits,
// and groups/users whose parents have no entries at all are reported.
func (ps *PolicySet) Validate() []error {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	var errs []error

	type scopeKey struct {
		res      Resource
		provider string
		parent   Path
	}
	targets := make(map[scopeKey][]float64)

	//lint:allow mapiter -- errs are sorted before return; targets is a group-by whose lists are sorted before summing
	for res, byConsumer := range ps.index {
		//lint:allow mapiter -- same: order is erased by the errs sort and the per-key target sort
		for consumer, byProvider := range byConsumer {
			//lint:allow mapiter -- same: order is erased by the errs sort and the per-key target sort
			for provider, l := range byProvider {
				if l.hasLower && l.hasUpper && l.lower > l.upper {
					errs = append(errs, fmt.Errorf(
						"usla: %s %s %s: lower limit %.1f%% exceeds upper limit %.1f%%",
						provider, consumer, res, l.lower, l.upper))
				}
				if l.hasTarget {
					key := scopeKey{res, provider, consumer.Parent()}
					targets[key] = append(targets[key], l.target)
				}
			}
		}
	}
	//lint:allow mapiter -- errs are sorted before return
	for key, list := range targets {
		// Sum in sorted order: float addition does not commute under
		// rounding, so the comparison below must not see map order.
		sort.Float64s(list)
		var sum float64
		for _, t := range list {
			sum += t
		}
		if sum > 100+1e-9 {
			errs = append(errs, fmt.Errorf(
				"usla: provider %s, scope %q, resource %s: sibling targets sum to %.1f%% > 100%%",
				key.provider, key.parent, key.res, sum))
		}
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	return errs
}

// String renders the whole set in the text format, sorted for stability.
func (ps *PolicySet) String() string {
	entries := ps.Entries()
	lines := make([]string, len(entries))
	for i, e := range entries {
		lines[i] = e.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
