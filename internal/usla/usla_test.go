package usla

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseShare(t *testing.T) {
	cases := []struct {
		in   string
		want Share
	}{
		{"30", Share{30, Target}},
		{"30+", Share{30, UpperLimit}},
		{"30-", Share{30, LowerLimit}},
		{"12.5", Share{12.5, Target}},
		{"0", Share{0, Target}},
		{"100+", Share{100, UpperLimit}},
		{" 45 ", Share{45, Target}},
	}
	for _, c := range cases {
		got, err := ParseShare(c.in)
		if err != nil {
			t.Errorf("ParseShare(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseShare(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseShareErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "101", "-5", "30 +", "++", "30%"} {
		if _, err := ParseShare(in); err == nil {
			t.Errorf("ParseShare(%q) succeeded, want error", in)
		}
	}
}

func TestShareRoundTrip(t *testing.T) {
	f := func(pct uint8, kind uint8) bool {
		s := Share{Percent: float64(pct % 101), Kind: ShareKind(kind % 3)}
		parsed, err := ParseShare(s.String())
		return err == nil && parsed == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParsePath(t *testing.T) {
	cases := []struct {
		in    string
		want  Path
		depth int
	}{
		{"atlas", Path{VO: "atlas"}, 1},
		{"atlas.higgs", Path{VO: "atlas", Group: "higgs"}, 2},
		{"atlas.higgs.alice", Path{VO: "atlas", Group: "higgs", User: "alice"}, 3},
	}
	for _, c := range cases {
		got, err := ParsePath(c.in)
		if err != nil {
			t.Fatalf("ParsePath(%q): %v", c.in, err)
		}
		if got != c.want || got.Depth() != c.depth {
			t.Errorf("ParsePath(%q) = %v depth %d", c.in, got, got.Depth())
		}
		if got.String() != c.in {
			t.Errorf("round trip %q -> %q", c.in, got.String())
		}
	}
}

func TestParsePathErrors(t *testing.T) {
	for _, in := range []string{"", ".", "a.", ".b", "a.b.c.d", "a..c"} {
		if _, err := ParsePath(in); err == nil {
			t.Errorf("ParsePath(%q) succeeded, want error", in)
		}
	}
}

func TestPathPrefixesAndParent(t *testing.T) {
	p := MustParsePath("atlas.higgs.alice")
	pre := p.Prefixes()
	if len(pre) != 3 || pre[0].String() != "atlas" || pre[1].String() != "atlas.higgs" || pre[2] != p {
		t.Fatalf("Prefixes = %v", pre)
	}
	if p.Parent().String() != "atlas.higgs" {
		t.Fatalf("Parent = %v", p.Parent())
	}
	if Path.Parent(MustParsePath("atlas")) != (Path{}) {
		t.Fatal("VO parent should be zero path")
	}
	if !p.HasPrefix(MustParsePath("atlas")) || !p.HasPrefix(MustParsePath("atlas.higgs")) || !p.HasPrefix(p) {
		t.Fatal("HasPrefix false negative")
	}
	if p.HasPrefix(MustParsePath("cms")) || p.HasPrefix(MustParsePath("atlas.susy")) {
		t.Fatal("HasPrefix false positive")
	}
}

func mustEntries(t *testing.T, text string) []Entry {
	t.Helper()
	entries, err := ParseTextString(text)
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

func mustSet(t *testing.T, text string) *PolicySet {
	t.Helper()
	ps := NewPolicySet()
	if err := ps.AddAll(mustEntries(t, text)); err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestParseTextBasics(t *testing.T) {
	entries := mustEntries(t, `
# comment line
*         atlas        cpu  30
site-004  atlas.higgs  cpu  50+   # trailing comment
*         cms          storage 20-
`)
	if len(entries) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(entries))
	}
	if entries[1].Provider != "site-004" || entries[1].Share.Kind != UpperLimit {
		t.Fatalf("entry[1] = %+v", entries[1])
	}
	if entries[2].Resource != Storage || entries[2].Share.Kind != LowerLimit {
		t.Fatalf("entry[2] = %+v", entries[2])
	}
}

func TestParseTextErrors(t *testing.T) {
	bad := []string{
		"* atlas cpu",          // missing share
		"* atlas cpu 30 extra", // extra field
		"* atlas disk 30",      // unknown resource
		"* atlas cpu 130",      // out of range
		"* a.b.c.d cpu 10",     // path too deep
	}
	for _, line := range bad {
		if _, err := ParseTextString(line); err == nil {
			t.Errorf("ParseTextString(%q) succeeded, want error", line)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	in := mustEntries(t, "* atlas cpu 30\nsite-001 atlas.higgs cpu 50+\n* cms network 10-")
	var b strings.Builder
	if err := WriteText(&b, in); err != nil {
		t.Fatal(err)
	}
	out := mustEntries(t, b.String())
	if len(out) != len(in) {
		t.Fatalf("round trip count %d != %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("entry %d: %v != %v", i, in[i], out[i])
		}
	}
}

func TestLimitsForSpecificity(t *testing.T) {
	ps := mustSet(t, `
*        atlas  cpu  30
site-9   atlas  cpu  60
`)
	if l := ps.LimitsFor("site-1", MustParsePath("atlas"), CPU); l.Target != 30 {
		t.Fatalf("wildcard target = %v, want 30", l.Target)
	}
	if l := ps.LimitsFor("site-9", MustParsePath("atlas"), CPU); l.Target != 60 {
		t.Fatalf("site-specific target = %v, want 60 (override)", l.Target)
	}
}

func TestLimitsDefaults(t *testing.T) {
	ps := NewPolicySet()
	l := ps.LimitsFor("anywhere", MustParsePath("unknown"), CPU)
	if l.Target != 100 || l.Upper != 100 || l.Lower != 0 || l.Explicit {
		t.Fatalf("default limits = %+v", l)
	}
	// Upper-only entry: target defaults to the cap.
	ps2 := mustSet(t, "* atlas cpu 40+")
	l2 := ps2.LimitsFor("s", MustParsePath("atlas"), CPU)
	if l2.Upper != 40 || l2.Target != 40 || !l2.Explicit {
		t.Fatalf("upper-only limits = %+v", l2)
	}
}

func TestLimitsKindsAccumulate(t *testing.T) {
	ps := mustSet(t, `
* atlas cpu 30
* atlas cpu 50+
* atlas cpu 10-
`)
	l := ps.LimitsFor("s", MustParsePath("atlas"), CPU)
	if l.Target != 30 || l.Upper != 50 || l.Lower != 10 {
		t.Fatalf("limits = %+v", l)
	}
}

func TestLaterEntryReplaces(t *testing.T) {
	ps := mustSet(t, "* atlas cpu 30")
	if err := ps.Add(Entry{Provider: "*", Consumer: MustParsePath("atlas"), Resource: CPU, Share: Share{45, Target}}); err != nil {
		t.Fatal(err)
	}
	if l := ps.LimitsFor("s", MustParsePath("atlas"), CPU); l.Target != 45 {
		t.Fatalf("target after update = %v, want 45", l.Target)
	}
}

func TestEntitlementRecursive(t *testing.T) {
	// VO gets 40% of the site; group gets 50% of the VO; user 25% of group.
	ps := mustSet(t, `
* atlas             cpu 40+
* atlas.higgs       cpu 50+
* atlas.higgs.alice cpu 25+
`)
	ent := ps.Entitlement("s", MustParsePath("atlas.higgs.alice"), CPU, 1000)
	if ent.Upper != 1000*0.40*0.50*0.25 {
		t.Fatalf("user upper = %v, want 50", ent.Upper)
	}
	entG := ps.Entitlement("s", MustParsePath("atlas.higgs"), CPU, 1000)
	if entG.Upper != 200 {
		t.Fatalf("group upper = %v, want 200", entG.Upper)
	}
}

func TestHeadroomRespectsEveryLevel(t *testing.T) {
	ps := mustSet(t, `
* atlas       cpu 50+
* atlas.higgs cpu 50+
`)
	capacity := 100.0
	// VO cap = 50, group cap = 25.
	usage := map[string]float64{"atlas": 48, "atlas.higgs": 10}
	uf := func(p Path) float64 { return usage[p.String()] }
	room := ps.Headroom("s", MustParsePath("atlas.higgs"), CPU, capacity, uf)
	// Group headroom would be 15, but the VO level only has 2 left.
	if room != 2 {
		t.Fatalf("headroom = %v, want 2 (VO-level binding)", room)
	}
}

func TestHeadroomClampsAtZero(t *testing.T) {
	ps := mustSet(t, "* atlas cpu 10+")
	uf := func(Path) float64 { return 50 }
	if room := ps.Headroom("s", MustParsePath("atlas"), CPU, 100, uf); room != 0 {
		t.Fatalf("over-cap headroom = %v, want 0", room)
	}
}

func TestTargetGapSign(t *testing.T) {
	ps := mustSet(t, "* atlas cpu 30")
	under := func(Path) float64 { return 10 }
	over := func(Path) float64 { return 50 }
	if gap := ps.TargetGap("s", MustParsePath("atlas"), CPU, 100, under); gap != 20 {
		t.Fatalf("under-target gap = %v, want 20", gap)
	}
	if gap := ps.TargetGap("s", MustParsePath("atlas"), CPU, 100, over); gap != -20 {
		t.Fatalf("over-target gap = %v, want -20", gap)
	}
}

func TestAllowed(t *testing.T) {
	ps := mustSet(t, "* atlas cpu 20+")
	usage := 15.0
	uf := func(Path) float64 { return usage }
	if !ps.Allowed("s", MustParsePath("atlas"), CPU, 100, uf, 5) {
		t.Fatal("demand exactly at headroom should be allowed")
	}
	if ps.Allowed("s", MustParsePath("atlas"), CPU, 100, uf, 6) {
		t.Fatal("demand above headroom should be denied")
	}
}

func TestOpportunisticDefaultAllowsIdleResources(t *testing.T) {
	// No upper limit: the paper's model is opportunistic — free resources
	// are acquired when available.
	ps := mustSet(t, "* atlas cpu 30")
	uf := func(Path) float64 { return 90 }
	if !ps.Allowed("s", MustParsePath("atlas"), CPU, 100, uf, 10) {
		t.Fatal("target-only VO should be able to use idle resources past target")
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	ps := mustSet(t, `
* atlas cpu 60
* cms   cpu 60
* osg   cpu 30-
* osg   cpu 20+
`)
	errs := ps.Validate()
	if len(errs) != 2 {
		t.Fatalf("Validate returned %d errors, want 2: %v", len(errs), errs)
	}
}

func TestValidateCleanSet(t *testing.T) {
	ps := mustSet(t, `
* atlas cpu 50
* cms   cpu 30
* atlas.higgs cpu 60
* atlas.susy  cpu 40
`)
	if errs := ps.Validate(); len(errs) != 0 {
		t.Fatalf("unexpected validation errors: %v", errs)
	}
}

func TestPolicySetConcurrentAccess(t *testing.T) {
	ps := mustSet(t, "* atlas cpu 30")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			_ = ps.Add(Entry{Provider: "*", Consumer: MustParsePath("cms"), Resource: CPU, Share: Share{10, Target}})
		}
	}()
	uf := func(Path) float64 { return 0 }
	for i := 0; i < 500; i++ {
		ps.Headroom("s", MustParsePath("atlas"), CPU, 100, uf)
		ps.Len()
	}
	<-done
}

func TestEntitlementPropertyMonotoneInCapacity(t *testing.T) {
	ps := mustSet(t, "* atlas cpu 40+\n* atlas.b cpu 50+")
	f := func(c1, c2 uint16) bool {
		lo, hi := float64(c1), float64(c2)
		if lo > hi {
			lo, hi = hi, lo
		}
		p := MustParsePath("atlas.b")
		return ps.Entitlement("s", p, CPU, lo).Upper <= ps.Entitlement("s", p, CPU, hi).Upper
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
