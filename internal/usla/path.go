package usla

import (
	"fmt"
	"strings"
)

// Path names a consumer at one of the three levels of the paper's
// recursive consumer hierarchy: a virtual organization, a group within a
// VO, or a user within a group. Empty trailing fields shorten the path:
// {VO: "atlas"} is VO-level, {VO: "atlas", Group: "higgs"} is group-level.
type Path struct {
	VO    string
	Group string
	User  string
}

// ParsePath parses "vo", "vo.group" or "vo.group.user".
func ParsePath(s string) (Path, error) {
	parts := strings.Split(strings.TrimSpace(s), ".")
	for _, p := range parts {
		if p == "" {
			return Path{}, fmt.Errorf("usla: bad consumer path %q", s)
		}
	}
	switch len(parts) {
	case 1:
		return Path{VO: parts[0]}, nil
	case 2:
		return Path{VO: parts[0], Group: parts[1]}, nil
	case 3:
		return Path{VO: parts[0], Group: parts[1], User: parts[2]}, nil
	default:
		return Path{}, fmt.Errorf("usla: consumer path %q has %d levels, max 3", s, len(parts))
	}
}

// MustParsePath is ParsePath that panics on error, for literals in tests
// and examples.
func MustParsePath(s string) Path {
	p, err := ParsePath(s)
	if err != nil {
		//lint:allow nopanic -- documented Must-helper for compile-time path literals
		panic(err)
	}
	return p
}

// String renders the dotted form.
func (p Path) String() string {
	s := p.VO
	if p.Group != "" {
		s += "." + p.Group
		if p.User != "" {
			s += "." + p.User
		}
	}
	return s
}

// Depth reports 1 for VO, 2 for group, 3 for user, 0 for the zero Path.
func (p Path) Depth() int {
	switch {
	case p.VO == "":
		return 0
	case p.Group == "":
		return 1
	case p.User == "":
		return 2
	default:
		return 3
	}
}

// Parent returns the path one level up ({} for a VO-level path).
func (p Path) Parent() Path {
	switch p.Depth() {
	case 3:
		return Path{VO: p.VO, Group: p.Group}
	case 2:
		return Path{VO: p.VO}
	default:
		return Path{}
	}
}

// Prefixes returns the chain from VO level down to p itself, e.g.
// a.b.c → [a, a.b, a.b.c].
func (p Path) Prefixes() []Path {
	var out []Path
	if p.VO == "" {
		return out
	}
	out = append(out, Path{VO: p.VO})
	if p.Group != "" {
		out = append(out, Path{VO: p.VO, Group: p.Group})
		if p.User != "" {
			out = append(out, p)
		}
	}
	return out
}

// HasPrefix reports whether q is p or an ancestor of p.
func (p Path) HasPrefix(q Path) bool {
	if q.VO != p.VO {
		return false
	}
	if q.Group == "" {
		return true
	}
	if q.Group != p.Group {
		return false
	}
	if q.User == "" {
		return true
	}
	return q.User == p.User
}
