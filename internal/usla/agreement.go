package usla

import (
	"encoding/xml"
	"fmt"
	"time"
)

// Agreement is the WS-Agreement-style envelope the paper bases its SLA
// specification on: a context naming the two parties and an expiration,
// plus guarantee terms each carrying one fair-share rule expressed as a
// goal. It is a deliberate subset of the WS-Agreement specification —
// "taking advantage of the refined specification and the high-level
// structure" — sufficient for monitoring resources and goal
// specifications.
type Agreement struct {
	XMLName xml.Name        `xml:"Agreement" json:"-"`
	Name    string          `xml:"name,attr" json:"name"`
	Context Context         `xml:"Context" json:"context"`
	Terms   []GuaranteeTerm `xml:"Terms>GuaranteeTerm" json:"terms"`
}

// Context names the agreement's parties and lifetime.
type Context struct {
	// Provider is the resource owner (a site, or "*" in templates).
	Provider string `xml:"AgreementProvider" json:"provider"`
	// Consumer is the dotted consumer path the agreement grants to.
	Consumer string `xml:"AgreementConsumer" json:"consumer"`
	// Expiration ends the agreement's validity (zero = no expiry).
	Expiration time.Time `xml:"ExpirationTime,omitempty" json:"expiration,omitempty"`
}

// GuaranteeTerm carries one share rule as a service-level objective.
type GuaranteeTerm struct {
	Name string `xml:"name,attr" json:"name"`
	// Resource is the allocated resource kind.
	Resource Resource `xml:"ServiceScope>Resource" json:"resource"`
	// Goal is the share in Maui notation, e.g. "30+".
	Goal string `xml:"ServiceLevelObjective>Goal" json:"goal"`
}

// Entries converts the agreement into flat USLA entries, validating as it
// goes. Expired agreements yield no entries.
func (a *Agreement) Entries(now time.Time) ([]Entry, error) {
	if !a.Context.Expiration.IsZero() && now.After(a.Context.Expiration) {
		return nil, nil
	}
	if a.Context.Provider == "" {
		return nil, fmt.Errorf("usla: agreement %q: empty provider", a.Name)
	}
	consumer, err := ParsePath(a.Context.Consumer)
	if err != nil {
		return nil, fmt.Errorf("usla: agreement %q: %w", a.Name, err)
	}
	entries := make([]Entry, 0, len(a.Terms))
	for _, t := range a.Terms {
		share, err := ParseShare(t.Goal)
		if err != nil {
			return nil, fmt.Errorf("usla: agreement %q, term %q: %w", a.Name, t.Name, err)
		}
		e := Entry{Provider: a.Context.Provider, Consumer: consumer, Resource: t.Resource, Share: share}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("usla: agreement %q, term %q: %w", a.Name, t.Name, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// FromEntries builds one agreement per (provider, consumer) pair found in
// entries — the inverse of Entries, used when a broker publishes its
// USLAs for consumers to discover and interpret.
func FromEntries(entries []Entry) []Agreement {
	type key struct {
		provider string
		consumer Path
	}
	index := make(map[key]*Agreement)
	var order []key
	for _, e := range entries {
		k := key{e.Provider, e.Consumer}
		a, ok := index[k]
		if !ok {
			a = &Agreement{
				Name:    fmt.Sprintf("usla-%s-%s", e.Provider, e.Consumer),
				Context: Context{Provider: e.Provider, Consumer: e.Consumer.String()},
			}
			index[k] = a
			order = append(order, k)
		}
		a.Terms = append(a.Terms, GuaranteeTerm{
			Name:     fmt.Sprintf("%s-share", e.Resource),
			Resource: e.Resource,
			Goal:     e.Share.String(),
		})
	}
	out := make([]Agreement, 0, len(order))
	for _, k := range order {
		out = append(out, *index[k])
	}
	return out
}

// MarshalXML renders the agreement as WS-Agreement-style XML.
func (a *Agreement) XML() ([]byte, error) {
	return xml.MarshalIndent(a, "", "  ")
}

// ParseAgreementXML parses one agreement document.
func ParseAgreementXML(data []byte) (*Agreement, error) {
	var a Agreement
	if err := xml.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("usla: parse agreement: %w", err)
	}
	return &a, nil
}
