package usla

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseText reads USLA entries in the one-line-per-rule text form used
// throughout this repository's configs and examples:
//
//	# provider  consumer        resource  share
//	*           atlas           cpu       30
//	site-004    atlas.higgs     cpu       50+
//	*           cms             storage   20-
//
// '#' starts a comment; blank lines are skipped.
func ParseText(r io.Reader) ([]Entry, error) {
	var entries []Entry
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 4 {
			return nil, fmt.Errorf("usla: line %d: want 4 fields (provider consumer resource share), got %d", lineNo, len(fields))
		}
		consumer, err := ParsePath(fields[1])
		if err != nil {
			return nil, fmt.Errorf("usla: line %d: %w", lineNo, err)
		}
		share, err := ParseShare(fields[3])
		if err != nil {
			return nil, fmt.Errorf("usla: line %d: %w", lineNo, err)
		}
		e := Entry{
			Provider: fields[0],
			Consumer: consumer,
			Resource: Resource(fields[2]),
			Share:    share,
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("usla: line %d: %w", lineNo, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}

// ParseTextString is ParseText over a string.
func ParseTextString(s string) ([]Entry, error) {
	return ParseText(strings.NewReader(s))
}

// WriteText renders entries in the text form, one per line.
func WriteText(w io.Writer, entries []Entry) error {
	for _, e := range entries {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}
