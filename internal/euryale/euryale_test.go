package euryale

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"digruber/internal/gram"
	"digruber/internal/grid"
	"digruber/internal/netsim"
	"digruber/internal/replica"
	"digruber/internal/usla"
	"digruber/internal/vtime"
)

// env assembles a small grid, a selector preferring the emptiest site,
// and a planner over them, all on the real clock with tiny runtimes.
type env struct {
	g       *grid.Grid
	cat     *replica.Catalog
	planner *Planner
	picks   []string
}

func newEnv(t *testing.T, failProbBySite map[string]float64) *env {
	t.Helper()
	clock := vtime.NewReal()
	g := grid.New(clock)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("site-%d", i)
		cfg := grid.SiteConfig{Name: name, Clusters: []int{4}}
		if p := failProbBySite[name]; p > 0 {
			cfg.FailProb = p
			cfg.RNG = netsim.Stream(1, "fail/"+name)
		}
		if _, err := g.AddSite(cfg); err != nil {
			t.Fatal(err)
		}
	}
	e := &env{g: g, cat: replica.NewCatalog()}
	selector := SelectorFunc(func(j *grid.Job, excluded map[string]bool) (string, bool, error) {
		best, bestFree := "", -1
		for _, s := range g.Sites() {
			if excluded[s.Name()] {
				continue
			}
			if free := g.FreeCPUsAt(s.Name()); free > bestFree {
				best, bestFree = s.Name(), free
			}
		}
		if best == "" {
			return "", false, errors.New("no site available")
		}
		e.picks = append(e.picks, best)
		return best, true, nil
	})
	submitter := gram.NewSubmitter(g, nil, clock, gram.Config{})
	p, err := New(selector, submitter, e.cat, nil, clock, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.planner = p
	return e
}

func testJob(id string) *grid.Job {
	return &grid.Job{
		ID: grid.JobID(id), Owner: usla.MustParsePath("atlas"),
		CPUs: 1, Runtime: time.Millisecond, SubmitHost: "host-0",
	}
}

func TestRunJobSuccess(t *testing.T) {
	e := newEnv(t, nil)
	res, err := e.planner.RunJob(testJob("j1"), nil, []string{"out.dat"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 || !res.Handled || res.Outcome.Failed {
		t.Fatalf("result = %+v", res)
	}
	if len(res.SubmitFiles) != 1 || res.SubmitFiles[0].Site == "" {
		t.Fatalf("submit files = %+v", res.SubmitFiles)
	}
	// Postscript registered the output at the collection area.
	copies := e.cat.Lookup("out.dat")
	if len(copies) != 1 || copies[0].Site != "collection" {
		t.Fatalf("output registration = %+v", copies)
	}
}

func TestReplanningAvoidsFailedSite(t *testing.T) {
	// site-0 has most free CPUs... all equal; selector picks site-0
	// first. Make site-0 always fail: the planner must re-plan away.
	e := newEnv(t, map[string]float64{"site-0": 1.0})
	res, err := e.planner.RunJob(testJob("j1"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts < 2 {
		t.Fatalf("attempts = %d, want re-planning", res.Attempts)
	}
	if res.Outcome.Failed {
		t.Fatalf("job failed despite healthy alternatives: %+v", res.Outcome)
	}
	if res.Outcome.Site == "site-0" {
		t.Fatal("re-planned job still landed on the failing site")
	}
	// Placement history shows the failed attempt.
	if res.SubmitFiles[0].Site != "site-0" {
		t.Fatalf("first placement = %s, want site-0", res.SubmitFiles[0].Site)
	}
}

func TestRunJobExhaustsAttempts(t *testing.T) {
	e := newEnv(t, map[string]float64{"site-0": 1, "site-1": 1, "site-2": 1})
	res, err := e.planner.RunJob(testJob("j1"), nil, nil)
	if err == nil {
		t.Fatal("expected failure when every site fails")
	}
	if !res.Outcome.Failed || res.Attempts != 3 {
		t.Fatalf("result = %+v", res)
	}
}

func TestStageInMovesMissingInputs(t *testing.T) {
	clock := vtime.NewReal()
	g := grid.New(clock)
	g.AddSite(grid.SiteConfig{Name: "cern", Clusters: []int{4}})
	g.AddSite(grid.SiteConfig{Name: "fnal", Clusters: []int{4}})
	cat := replica.NewCatalog()
	cat.Register("raw.dat", replica.PFN{Site: "cern", Path: "/raw", Size: 4 << 20})

	network := netsim.New(1, netsim.Profile{Name: "fast", MedianLatency: time.Microsecond, Bandwidth: 1e12})
	selector := SelectorFunc(func(*grid.Job, map[string]bool) (string, bool, error) { return "fnal", true, nil })
	submitter := gram.NewSubmitter(g, nil, clock, gram.Config{})
	p, _ := New(selector, submitter, cat, network, clock, Config{})

	res, err := p.RunJob(testJob("j1"), []string{"raw.dat"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.StageInTime <= 0 {
		t.Fatal("no stage-in cost paid for a remote input")
	}
	// The transfer registered a new local copy and bumped popularity.
	if pfn, ok := cat.Nearest("raw.dat", "fnal"); !ok || pfn.Site != "fnal" {
		t.Fatalf("no local copy registered: %+v", pfn)
	}
	if cat.Popularity("raw.dat") != 1 {
		t.Fatal("postscript did not update popularity")
	}

	// Second run: input already local, no cost.
	res2, err := p.RunJob(testJob("j2"), []string{"raw.dat"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.StageInTime != 0 {
		t.Fatalf("stage-in cost %v for a local input", res2.StageInTime)
	}
}

func TestPlannerValidation(t *testing.T) {
	clock := vtime.NewReal()
	if _, err := New(nil, nil, nil, nil, clock, Config{}); err == nil {
		t.Fatal("nil selector/submitter accepted")
	}
}

func TestGramTransientFailure(t *testing.T) {
	clock := vtime.NewReal()
	g := grid.New(clock)
	g.AddSite(grid.SiteConfig{Name: "s", Clusters: []int{2}})
	sub := gram.NewSubmitter(g, nil, clock, gram.Config{TransientFailProb: 1, RNG: netsim.Stream(1, "g")})
	if _, err := sub.Submit("h", "s", testJob("j")); err == nil {
		t.Fatal("transient failure not injected")
	}
	if _, failed := sub.Stats(); failed != 1 {
		t.Fatal("failure not counted")
	}
	if _, err := sub.Submit("h", "nowhere", testJob("j")); err == nil {
		t.Fatal("unknown site accepted")
	}
}

func TestGramPaysLatency(t *testing.T) {
	clock := vtime.NewReal()
	g := grid.New(clock)
	g.AddSite(grid.SiteConfig{Name: "s", Clusters: []int{2}})
	network := netsim.New(1, netsim.Profile{Name: "slow", MedianLatency: 30 * time.Millisecond})
	sub := gram.NewSubmitter(g, network, clock, gram.Config{SubmitOverhead: 10 * time.Millisecond})
	start := time.Now()
	if _, err := sub.Submit("h", "s", testJob("j")); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < 35*time.Millisecond {
		t.Fatalf("submit took %v, want ≥ latency+overhead", e)
	}
}
