package euryale

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"digruber/internal/gram"
	"digruber/internal/grid"
	"digruber/internal/netsim"
	"digruber/internal/usla"
	"digruber/internal/vtime"
)

// dagEnv wires a planner whose selector succeeds on every site except
// those configured to fail at execution.
func dagPlanner(t *testing.T, siteFail float64) (*Planner, *grid.Grid) {
	t.Helper()
	clock := vtime.NewReal()
	g := grid.New(clock)
	cfg := grid.SiteConfig{Name: "s0", Clusters: []int{8}}
	if siteFail > 0 {
		cfg.FailProb = siteFail
		cfg.RNG = netsim.Stream(3, "dagfail")
	}
	g.AddSite(cfg)
	selector := SelectorFunc(func(*grid.Job, map[string]bool) (string, bool, error) { return "s0", true, nil })
	sub := gram.NewSubmitter(g, nil, clock, gram.Config{})
	p, err := New(selector, sub, nil, nil, clock, Config{MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p, g
}

func dagJob(id string) *grid.Job {
	return &grid.Job{ID: grid.JobID(id), Owner: usla.MustParsePath("atlas"), CPUs: 1, Runtime: time.Millisecond, SubmitHost: "h"}
}

func diamond(t *testing.T) *DAG {
	t.Helper()
	d := NewDAG()
	for _, n := range []Node{
		{ID: "gen", Job: dagJob("gen"), Outputs: []string{"raw"}},
		{ID: "recoA", Job: dagJob("recoA"), Parents: []string{"gen"}},
		{ID: "recoB", Job: dagJob("recoB"), Parents: []string{"gen"}},
		{ID: "merge", Job: dagJob("merge"), Parents: []string{"recoA", "recoB"}},
	} {
		if err := d.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestDAGRunsAllNodes(t *testing.T) {
	p, _ := dagPlanner(t, 0)
	results, err := p.RunDAG(diamond(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for id, r := range results {
		if r.Outcome.Failed {
			t.Fatalf("node %s failed: %+v", id, r.Outcome)
		}
	}
	// Dependency order: merge finished after both recos started after gen.
	if results["merge"].Outcome.StartedAt.Before(results["gen"].Outcome.FinishedAt) {
		t.Fatal("merge started before gen finished")
	}
}

func TestDAGFailureCascades(t *testing.T) {
	p, _ := dagPlanner(t, 1.0) // every execution fails, MaxAttempts 1
	results, err := p.RunDAG(diamond(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	for id, r := range results {
		if !r.Outcome.Failed {
			t.Fatalf("node %s succeeded under total failure", id)
		}
	}
	// Descendants must not have actually run (no attempts).
	if results["merge"].Attempts != 0 {
		t.Fatalf("merge ran %d attempts despite failed parents", results["merge"].Attempts)
	}
}

func TestDAGValidation(t *testing.T) {
	d := NewDAG()
	if err := d.Add(Node{ID: "", Job: dagJob("x")}); err == nil {
		t.Fatal("empty ID accepted")
	}
	if err := d.Add(Node{ID: "a", Job: nil}); err == nil {
		t.Fatal("nil job accepted")
	}
	d.Add(Node{ID: "a", Job: dagJob("a")})
	if err := d.Add(Node{ID: "a", Job: dagJob("a")}); err == nil {
		t.Fatal("duplicate accepted")
	}
	d.Add(Node{ID: "b", Job: dagJob("b"), Parents: []string{"ghost"}})
	p, _ := dagPlanner(t, 0)
	if _, err := p.RunDAG(d, 1); err == nil {
		t.Fatal("unknown parent accepted")
	}
}

func TestDAGCycleRejected(t *testing.T) {
	d := NewDAG()
	d.Add(Node{ID: "a", Job: dagJob("a"), Parents: []string{"b"}})
	d.Add(Node{ID: "b", Job: dagJob("b"), Parents: []string{"a"}})
	p, _ := dagPlanner(t, 0)
	if _, err := p.RunDAG(d, 1); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestDAGParallelismBound(t *testing.T) {
	clock := vtime.NewReal()
	g := grid.New(clock)
	g.AddSite(grid.SiteConfig{Name: "s0", Clusters: []int{64}})
	var mu sync.Mutex
	inflight, maxInflight := 0, 0
	selector := SelectorFunc(func(*grid.Job, map[string]bool) (string, bool, error) {
		mu.Lock()
		inflight++
		if inflight > maxInflight {
			maxInflight = inflight
		}
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		mu.Lock()
		inflight--
		mu.Unlock()
		return "s0", true, nil
	})
	sub := gram.NewSubmitter(g, nil, clock, gram.Config{})
	p, _ := New(selector, sub, nil, nil, clock, Config{})
	d := NewDAG()
	for i := 0; i < 16; i++ {
		d.Add(Node{ID: fmt.Sprintf("n%d", i), Job: dagJob(fmt.Sprintf("n%d", i))})
	}
	if _, err := p.RunDAG(d, 2); err != nil {
		t.Fatal(err)
	}
	if maxInflight > 2 {
		t.Fatalf("max concurrent selector calls = %d, want ≤ 2", maxInflight)
	}
}
