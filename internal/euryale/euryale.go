// Package euryale implements the concrete planner the paper submits jobs
// through: Euryale takes a late-binding approach — the site is chosen
// immediately before the job runs, not in an earlier planning phase —
// and recovers from failures by re-planning.
//
// Per the paper, a DagMan-style executor runs a prescript and postscript
// around each job. The prescript calls out to the external site selector
// (DI-GRUBER), rewrites the job submit file with the chosen site, stages
// input files in (registering transfers with the replica catalog), and
// handles re-planning; the postscript stages outputs out, registers the
// produced files, checks the execution, and updates file popularity.
package euryale

import (
	"fmt"
	"time"

	"digruber/internal/grid"
	"digruber/internal/netsim"
	"digruber/internal/replica"
	"digruber/internal/vtime"
)

// SiteSelector is the external site selector the prescript calls out to.
// DI-GRUBER's client satisfies this via SelectorFunc.
type SiteSelector interface {
	// SelectSite picks a site for j, avoiding excluded sites (previous
	// failed placements during re-planning). handled reports whether a
	// broker answered (vs. a degraded random choice).
	SelectSite(j *grid.Job, excluded map[string]bool) (site string, handled bool, err error)
}

// SelectorFunc adapts a function to SiteSelector.
type SelectorFunc func(j *grid.Job, excluded map[string]bool) (string, bool, error)

// SelectSite implements SiteSelector.
func (f SelectorFunc) SelectSite(j *grid.Job, excluded map[string]bool) (string, bool, error) {
	return f(j, excluded)
}

// Submitter is the job submission interface (gram.Submitter satisfies it).
type Submitter interface {
	Submit(host, site string, j *grid.Job) (*grid.Ticket, error)
}

// SubmitFile is the rewritten Condor submit description the prescript
// produces — the "rewrites the job submit file to specify that site"
// step, kept as data so tests and traces can inspect placement history.
type SubmitFile struct {
	JobID      grid.JobID
	Site       string
	Executable string
	Inputs     []string
	Attempt    int
}

// Config tunes the planner.
type Config struct {
	// MaxAttempts bounds placement attempts per job (first try plus
	// re-plans). Zero means 3.
	MaxAttempts int
	// CollectionSite is where postscripts deliver output files.
	CollectionSite string
}

// Planner is the Euryale engine.
type Planner struct {
	selector  SiteSelector
	submitter Submitter
	catalog   *replica.Catalog
	network   *netsim.Network
	clock     vtime.Clock
	cfg       Config
}

// New builds a planner. catalog and network may be nil to skip file
// staging emulation.
func New(selector SiteSelector, submitter Submitter, catalog *replica.Catalog, network *netsim.Network, clock vtime.Clock, cfg Config) (*Planner, error) {
	if selector == nil || submitter == nil || clock == nil {
		return nil, fmt.Errorf("euryale: planner needs selector, submitter and clock")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.CollectionSite == "" {
		cfg.CollectionSite = "collection"
	}
	return &Planner{
		selector: selector, submitter: submitter, catalog: catalog,
		network: network, clock: clock, cfg: cfg,
	}, nil
}

// Result describes one job's journey through the planner.
type Result struct {
	Outcome grid.Outcome
	// Attempts counts placements tried (1 = no re-planning needed).
	Attempts int
	// Handled reports whether the final placement came from the broker.
	Handled bool
	// SubmitFiles is the placement history, one rewritten submit file
	// per attempt.
	SubmitFiles []SubmitFile
	// StageInTime and StageOutTime are the emulated transfer costs paid.
	StageInTime  time.Duration
	StageOutTime time.Duration
}

// RunJob drives one job through prescript → submission → postscript,
// re-planning on failure. inputs are LFNs the job consumes; outputs are
// LFNs it produces (registered at the collection area on success).
func (p *Planner) RunJob(j *grid.Job, inputs, outputs []string) (Result, error) {
	var res Result
	excluded := make(map[string]bool)
	var lastErr error
	for attempt := 1; attempt <= p.cfg.MaxAttempts; attempt++ {
		res.Attempts = attempt

		// ---- prescript ----
		site, handled, err := p.selector.SelectSite(j, excluded)
		if err != nil {
			lastErr = fmt.Errorf("euryale: site selection for %s: %w", j.ID, err)
			continue
		}
		res.Handled = handled
		res.SubmitFiles = append(res.SubmitFiles, SubmitFile{
			JobID: j.ID, Site: site, Executable: string(j.ID) + ".sh",
			Inputs: inputs, Attempt: attempt,
		})
		res.StageInTime += p.stageIn(j, site, inputs)

		// ---- submission (Condor-G / GRAM) ----
		ticket, err := p.submitter.Submit(j.SubmitHost, site, j)
		if err != nil {
			// Discovered failure: re-plan at another site.
			excluded[site] = true
			lastErr = err
			continue
		}
		out := <-ticket.Done()

		// ---- postscript ----
		if out.Failed {
			excluded[site] = true
			lastErr = fmt.Errorf("euryale: job %s failed at %s: %s", j.ID, site, out.FailureReason)
			continue
		}
		res.StageOutTime += p.stageOut(j, site, outputs)
		for _, lfn := range inputs {
			if p.catalog != nil {
				p.catalog.Touch(lfn)
			}
		}
		res.Outcome = out
		return res, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("euryale: job %s: no placement attempt succeeded", j.ID)
	}
	res.Outcome = grid.Outcome{Job: j, Failed: true, FailureReason: lastErr.Error(), FinishedAt: p.clock.Now()}
	return res, lastErr
}

// stageIn transfers missing input files to the site and registers the
// new copies. Returns the emulated transfer time paid.
func (p *Planner) stageIn(j *grid.Job, site string, inputs []string) time.Duration {
	if p.catalog == nil {
		return 0
	}
	var total time.Duration
	for _, lfn := range inputs {
		src, ok := p.catalog.Nearest(lfn, site)
		if !ok {
			continue // unknown input: nothing to move
		}
		if src.Site == site {
			continue // already local
		}
		var cost time.Duration
		if p.network != nil {
			cost = p.network.TransferTime(src.Site, site, src.Size)
			p.clock.Sleep(cost)
		}
		total += cost
		p.catalog.Register(lfn, replica.PFN{Site: site, Path: "/staged/" + lfn, Size: src.Size})
	}
	return total
}

// stageOut ships produced files to the collection area and registers
// them.
func (p *Planner) stageOut(j *grid.Job, site string, outputs []string) time.Duration {
	if p.catalog == nil {
		return 0
	}
	var total time.Duration
	size := j.OutputBytes
	if size <= 0 {
		size = 1 << 20
	}
	for _, lfn := range outputs {
		var cost time.Duration
		if p.network != nil {
			cost = p.network.TransferTime(site, p.cfg.CollectionSite, size)
			p.clock.Sleep(cost)
		}
		total += cost
		p.catalog.Register(lfn, replica.PFN{Site: p.cfg.CollectionSite, Path: "/collected/" + lfn, Size: size})
	}
	return total
}
