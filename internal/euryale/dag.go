package euryale

import (
	"fmt"
	"sync"

	"digruber/internal/grid"
)

// Node is one vertex of a DagMan-style workflow: a job plus its file
// inputs/outputs and the nodes that must complete first.
type Node struct {
	ID      string
	Job     *grid.Job
	Inputs  []string
	Outputs []string
	Parents []string
}

// DAG is a workflow of dependent jobs, executed by Planner.RunDAG the
// way DagMan drives Euryale's prescripts and postscripts.
type DAG struct {
	nodes map[string]*Node
	order []string
}

// NewDAG returns an empty workflow.
func NewDAG() *DAG { return &DAG{nodes: make(map[string]*Node)} }

// Add inserts a node. Parent references are validated at Run time so
// nodes may be added in any order.
func (d *DAG) Add(n Node) error {
	if n.ID == "" {
		return fmt.Errorf("euryale: DAG node with empty ID")
	}
	if _, dup := d.nodes[n.ID]; dup {
		return fmt.Errorf("euryale: duplicate DAG node %q", n.ID)
	}
	if n.Job == nil {
		return fmt.Errorf("euryale: DAG node %q has no job", n.ID)
	}
	copied := n
	d.nodes[n.ID] = &copied
	d.order = append(d.order, n.ID)
	return nil
}

// Len reports the number of nodes.
func (d *DAG) Len() int { return len(d.order) }

// validate checks parent references and rejects cycles, returning a
// topological order.
func (d *DAG) validate() ([]string, error) {
	indeg := make(map[string]int, len(d.nodes))
	children := make(map[string][]string, len(d.nodes))
	// Walk insertion order, not the map: the first invalid parent
	// reference reported must not depend on map iteration order.
	for _, id := range d.order {
		n := d.nodes[id]
		if _, ok := indeg[id]; !ok {
			indeg[id] = 0
		}
		for _, p := range n.Parents {
			if _, ok := d.nodes[p]; !ok {
				return nil, fmt.Errorf("euryale: node %q references unknown parent %q", id, p)
			}
			indeg[id]++
			children[p] = append(children[p], id)
		}
	}
	var ready []string
	for _, id := range d.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	var topo []string
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		topo = append(topo, id)
		for _, c := range children[id] {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if len(topo) != len(d.nodes) {
		return nil, fmt.Errorf("euryale: DAG contains a cycle")
	}
	return topo, nil
}

// RunDAG executes the workflow with at most parallelism concurrent jobs.
// A node runs once all its parents completed successfully; descendants
// of a failed node are marked failed without running. The returned map
// has one Result per node.
func (p *Planner) RunDAG(d *DAG, parallelism int) (map[string]Result, error) {
	topo, err := d.validate()
	if err != nil {
		return nil, err
	}
	if parallelism <= 0 {
		parallelism = 1
	}

	var mu sync.Mutex
	results := make(map[string]Result, len(topo))
	failed := make(map[string]bool)
	remainingParents := make(map[string]int, len(topo))
	children := make(map[string][]string)
	// Insertion order, not map order: children lists feed the ready
	// queue, so their order must be reproducible.
	for _, id := range d.order {
		n := d.nodes[id]
		remainingParents[id] = len(n.Parents)
		for _, parent := range n.Parents {
			children[parent] = append(children[parent], id)
		}
	}

	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	var run func(id string)

	// markFailed cascades failure to descendants that can never run.
	var markFailed func(id string, reason string)
	markFailed = func(id, reason string) {
		if failed[id] {
			return
		}
		failed[id] = true
		if _, done := results[id]; !done {
			results[id] = Result{Outcome: grid.Outcome{
				Job: d.nodes[id].Job, Failed: true,
				FailureReason: reason,
			}}
		}
		for _, c := range children[id] {
			markFailed(c, fmt.Sprintf("upstream node %s failed", id))
		}
	}

	scheduleChildren := func(id string, ok bool) {
		mu.Lock()
		defer mu.Unlock()
		if !ok {
			markFailed(id, results[id].Outcome.FailureReason)
			return
		}
		for _, c := range children[id] {
			remainingParents[c]--
			if remainingParents[c] == 0 && !failed[c] {
				wg.Add(1)
				go run(c)
			}
		}
	}

	run = func(id string) {
		defer wg.Done()
		sem <- struct{}{}
		node := d.nodes[id]
		res, err := p.RunJob(node.Job, node.Inputs, node.Outputs)
		<-sem
		mu.Lock()
		results[id] = res
		mu.Unlock()
		scheduleChildren(id, err == nil)
	}

	// Collect the roots before spawning anything: the first goroutine can
	// reach scheduleChildren and mutate remainingParents while this loop
	// is still reading it.
	var roots []string
	for _, id := range topo {
		if remainingParents[id] == 0 {
			roots = append(roots, id)
		}
	}
	for _, id := range roots {
		wg.Add(1)
		go run(id)
	}
	wg.Wait()

	// Nodes whose parents failed never ran; make sure each has a result.
	mu.Lock()
	for _, id := range topo {
		if _, ok := results[id]; !ok {
			results[id] = Result{Outcome: grid.Outcome{
				Job: d.nodes[id].Job, Failed: true,
				FailureReason: "upstream failure",
			}}
		}
	}
	mu.Unlock()
	return results, nil
}
