// Package netsim models the wide-area network the paper ran on: PlanetLab
// nodes connected by WAN links with latencies in the tens to hundreds of
// milliseconds and roughly 10 Mb/s links (100 Mb/s on a few nodes). The
// paper's emulation substitutes for a real grid; ours substitutes for
// PlanetLab itself, so every RPC and file transfer in the reproduction
// asks this package how long the wire would have taken.
//
// All randomness is derived from named deterministic streams so an entire
// experiment replays identically from a single seed.
package netsim

import (
	"hash/fnv"
	"math/rand"
)

// Stream returns a rand.Rand seeded deterministically from a master seed
// and a stream name. Distinct names yield statistically independent
// streams; the same (seed, name) pair always yields the same sequence, so
// every component of an experiment (workload, link jitter, failure
// injection, ...) can draw from its own replayable source.
func Stream(seed int64, name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	mixed := int64(h.Sum64()) ^ int64(uint64(seed)*0x9E3779B97F4A7C15)
	return rand.New(rand.NewSource(mixed))
}

// pairSeed derives a stable seed for an (a, b) node pair. It is symmetric
// so latency between two nodes is the same in both directions.
func pairSeed(seed int64, a, b string) int64 {
	if a > b {
		a, b = b, a
	}
	h := fnv.New64a()
	h.Write([]byte(a))
	h.Write([]byte{0})
	h.Write([]byte(b))
	return int64(h.Sum64()) ^ int64(uint64(seed)*0x9E3779B97F4A7C15)
}
