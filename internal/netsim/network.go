package netsim

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Profile describes the statistical character of a network's links. Base
// one-way latency for a node pair is sampled once (log-normally around
// MedianLatency) and stays fixed for the pair — geography doesn't change
// during a run — while per-message jitter is re-sampled every message.
type Profile struct {
	// Name labels the profile in reports.
	Name string
	// MedianLatency is the median one-way link latency.
	MedianLatency time.Duration
	// LatencySigma is the sigma of the log-normal base-latency draw; 0
	// makes every pair identical.
	LatencySigma float64
	// JitterFrac is the maximum per-message jitter as a fraction of the
	// pair's base latency (uniform in [0, JitterFrac]).
	JitterFrac float64
	// Bandwidth is the per-link bandwidth used for bulk transfers.
	Bandwidth ByteRate
	// LossProb is the probability a message is lost outright (the caller
	// sees it as an error after its timeout).
	LossProb float64
}

// ByteRate is a data rate in bytes per second.
type ByteRate float64

const (
	// Mbps converts megabits per second to a ByteRate.
	Mbps ByteRate = 1e6 / 8
)

// PlanetLab approximates the testbed described in the paper: WAN
// latencies in the tens of milliseconds with a heavy tail, ~10 Mb/s links.
func PlanetLab() Profile {
	return Profile{
		Name:          "planetlab",
		MedianLatency: 40 * time.Millisecond,
		LatencySigma:  0.6,
		JitterFrac:    0.25,
		Bandwidth:     10 * Mbps,
		LossProb:      0.001,
	}
}

// LAN approximates the tightly-coupled deployment the paper's conclusion
// speculates about (sub-millisecond latencies, fast links).
func LAN() Profile {
	return Profile{
		Name:          "lan",
		MedianLatency: 300 * time.Microsecond,
		LatencySigma:  0.2,
		JitterFrac:    0.1,
		Bandwidth:     100 * Mbps,
	}
}

// Loopback is a zero-latency, infinite-bandwidth profile for unit tests.
func Loopback() Profile {
	return Profile{Name: "loopback", Bandwidth: ByteRate(math.Inf(1))}
}

// Network samples link behaviour between named nodes under a Profile.
// It is safe for concurrent use.
type Network struct {
	profile Profile
	seed    int64

	mu     sync.Mutex
	bases  map[[2]string]time.Duration
	jitter *rand.Rand
	faults *FaultPlane
}

// New returns a Network over the given profile with a deterministic seed.
func New(seed int64, p Profile) *Network {
	return &Network{
		profile: p,
		seed:    seed,
		bases:   make(map[[2]string]time.Duration),
		jitter:  Stream(seed, "netsim.jitter/"+p.Name),
	}
}

// Profile returns the network's profile.
func (n *Network) Profile() Profile { return n.profile }

// BaseLatency returns the fixed one-way latency of the (from, to) pair.
func (n *Network) BaseLatency(from, to string) time.Duration {
	key := pairKey(from, to)
	n.mu.Lock()
	defer n.mu.Unlock()
	if d, ok := n.bases[key]; ok {
		return d
	}
	d := n.sampleBase(from, to)
	n.bases[key] = d
	return d
}

func (n *Network) sampleBase(from, to string) time.Duration {
	p := n.profile
	if p.MedianLatency <= 0 {
		return 0
	}
	if p.LatencySigma == 0 {
		return p.MedianLatency
	}
	r := rand.New(rand.NewSource(pairSeed(n.seed, from, to)))
	factor := math.Exp(r.NormFloat64() * p.LatencySigma)
	return time.Duration(float64(p.MedianLatency) * factor)
}

// Delay samples the one-way delay for a single message from one node to
// another: the pair's base latency plus fresh jitter.
func (n *Network) Delay(from, to string) time.Duration {
	base := n.BaseLatency(from, to)
	if base == 0 {
		return 0
	}
	n.mu.Lock()
	j := n.jitter.Float64()
	n.mu.Unlock()
	return base + time.Duration(float64(base)*n.profile.JitterFrac*j)
}

// Lost reports whether a message should be dropped, per the profile's
// loss probability.
func (n *Network) Lost() bool {
	if n.profile.LossProb <= 0 {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.jitter.Float64() < n.profile.LossProb
}

// SetFaults attaches a fault plane; LostMsg consults it from then on.
// Passing nil detaches it.
func (n *Network) SetFaults(f *FaultPlane) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = f
}

// Faults returns the attached fault plane (nil when none).
func (n *Network) Faults() *FaultPlane {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.faults
}

// LostMsg reports whether a single message from one node to another at
// virtual time now is lost: severed by a scheduled fault, or dropped by
// the profile's background loss probability. The fault check comes
// first and draws no randomness, so fault windows never perturb the
// jitter stream of the healthy portion of a run.
func (n *Network) LostMsg(from, to string, now time.Time) bool {
	n.mu.Lock()
	f := n.faults
	n.mu.Unlock()
	if f != nil && f.Severed(from, to, now) {
		return true
	}
	return n.Lost()
}

// TransferTime estimates how long moving size bytes between two nodes
// takes: one base latency plus serialization at the link bandwidth.
func (n *Network) TransferTime(from, to string, size int64) time.Duration {
	lat := n.BaseLatency(from, to)
	bw := float64(n.profile.Bandwidth)
	if math.IsInf(bw, 1) || bw <= 0 {
		return lat
	}
	return lat + time.Duration(float64(size)/bw*float64(time.Second))
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}
