package netsim

import (
	"sort"
	"sync"
	"time"
)

// FaultPlane schedules deterministic failures over the emulated network:
// link outages, network partitions, and per-node crash windows. Every
// fault is a [From, Until) window in virtual time, so the same schedule
// against the same vtime.Clock replays a chaos run exactly — the fault
// plane holds no randomness of its own. Seeded schedules come from
// generators like RandomCrashes, which draw from a named Stream and are
// therefore bit-for-bit reproducible from (seed, name).
//
// A FaultPlane is attached to a Network with SetFaults; from then on
// Network.LostMsg consults it for every message. It is safe for
// concurrent use; windows may be added while traffic flows.
type FaultPlane struct {
	mu         sync.Mutex
	links      map[[2]string][]window
	partitions []partition
	crashes    map[string][]window
}

// window is a half-open [from, until) virtual-time interval.
type window struct {
	from, until time.Time
}

func (w window) contains(t time.Time) bool {
	return !t.Before(w.from) && t.Before(w.until)
}

// partition splits the node set in two: members of side vs everyone
// else. Messages crossing the split are lost while the window is open.
type partition struct {
	side map[string]bool
	win  window
}

// NewFaultPlane returns an empty fault plane (everything healthy).
func NewFaultPlane() *FaultPlane {
	return &FaultPlane{
		links:   make(map[[2]string][]window),
		crashes: make(map[string][]window),
	}
}

// CutLink schedules an outage of the (a, b) link: messages in either
// direction are lost during [from, until).
func (f *FaultPlane) CutLink(a, b string, from, until time.Time) {
	key := pairKey(a, b)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.links[key] = append(f.links[key], window{from, until})
}

// Partition schedules a network split: during [from, until), messages
// between a member of side and any non-member are lost. Traffic within
// either half still flows; the split heals when the window closes.
func (f *FaultPlane) Partition(side []string, from, until time.Time) {
	members := make(map[string]bool, len(side))
	for _, n := range side {
		members[n] = true
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitions = append(f.partitions, partition{side: members, win: window{from, until}})
}

// CrashNode schedules a crash window for one node: during [from, until)
// every message to or from it is lost, as the dead host answers nothing.
// The process-level consequences (a broker losing its in-memory state)
// are the caller's to model — see digruber.DecisionPoint.Crash.
func (f *FaultPlane) CrashNode(node string, from, until time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashes[node] = append(f.crashes[node], window{from, until})
}

// Down reports whether node is inside one of its crash windows at now.
func (f *FaultPlane) Down(node string, now time.Time) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, w := range f.crashes[node] {
		if w.contains(now) {
			return true
		}
	}
	return false
}

// Severed reports whether a message between from and to at virtual time
// now is lost to a fault: a cut link, an open partition between them, or
// either endpoint being crashed.
func (f *FaultPlane) Severed(from, to string, now time.Time) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, w := range f.crashes[from] {
		if w.contains(now) {
			return true
		}
	}
	for _, w := range f.crashes[to] {
		if w.contains(now) {
			return true
		}
	}
	for _, w := range f.links[pairKey(from, to)] {
		if w.contains(now) {
			return true
		}
	}
	for _, p := range f.partitions {
		if p.win.contains(now) && p.side[from] != p.side[to] {
			return true
		}
	}
	return false
}

// Crash is one entry of a generated chaos schedule: node goes down at
// From and comes back at Until (offsets from the run's epoch).
type Crash struct {
	Node        string
	From, Until time.Duration
}

// RandomCrashes derives a replayable crash schedule from a named stream:
// n distinct victims drawn from nodes, each with a crash start uniform
// in [earliest, latest) and a downtime uniform in [minDown, maxDown).
// The same (seed, name, arguments) always yields the same schedule; the
// input node order matters, so callers should pass a stable slice.
func RandomCrashes(seed int64, name string, nodes []string, n int, earliest, latest, minDown, maxDown time.Duration) []Crash {
	if n > len(nodes) {
		n = len(nodes)
	}
	if n <= 0 {
		return nil
	}
	rng := Stream(seed, "netsim.crashes/"+name)
	// Partial Fisher-Yates over a copy picks n distinct victims.
	pool := append([]string(nil), nodes...)
	out := make([]Crash, 0, n)
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
		from := earliest
		if latest > earliest {
			from = earliest + time.Duration(rng.Int63n(int64(latest-earliest)))
		}
		down := minDown
		if maxDown > minDown {
			down = minDown + time.Duration(rng.Int63n(int64(maxDown-minDown)))
		}
		out = append(out, Crash{Node: pool[i], From: from, Until: from + down})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Apply installs the schedule's crash windows on the fault plane,
// anchored at epoch.
func (f *FaultPlane) Apply(epoch time.Time, schedule []Crash) {
	for _, c := range schedule {
		f.CrashNode(c.Node, epoch.Add(c.From), epoch.Add(c.Until))
	}
}
