package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestStreamDeterministic(t *testing.T) {
	a := Stream(42, "workload")
	b := Stream(42, "workload")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, name) produced different streams")
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	a := Stream(42, "workload")
	b := Stream(42, "jitter")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct names collided %d/100 times", same)
	}
}

func TestBaseLatencySymmetricAndStable(t *testing.T) {
	n := New(7, PlanetLab())
	ab := n.BaseLatency("a", "b")
	ba := n.BaseLatency("b", "a")
	if ab != ba {
		t.Fatalf("asymmetric base latency: %v vs %v", ab, ba)
	}
	if again := n.BaseLatency("a", "b"); again != ab {
		t.Fatalf("base latency changed between calls: %v vs %v", again, ab)
	}
	n2 := New(7, PlanetLab())
	if n2.BaseLatency("a", "b") != ab {
		t.Fatal("base latency not reproducible across Network instances with same seed")
	}
}

func TestDifferentPairsDiffer(t *testing.T) {
	n := New(7, PlanetLab())
	seen := map[time.Duration]bool{}
	pairs := [][2]string{{"a", "b"}, {"a", "c"}, {"b", "c"}, {"d", "e"}}
	for _, p := range pairs {
		seen[n.BaseLatency(p[0], p[1])] = true
	}
	if len(seen) < 3 {
		t.Fatalf("suspiciously uniform latencies across pairs: %v", seen)
	}
}

func TestDelayWithinJitterBounds(t *testing.T) {
	p := PlanetLab()
	n := New(3, p)
	base := n.BaseLatency("x", "y")
	for i := 0; i < 1000; i++ {
		d := n.Delay("x", "y")
		if d < base {
			t.Fatalf("delay %v below base %v", d, base)
		}
		if max := base + time.Duration(float64(base)*p.JitterFrac); d > max {
			t.Fatalf("delay %v above max %v", d, max)
		}
	}
}

func TestPlanetLabLatencyDistribution(t *testing.T) {
	n := New(11, PlanetLab())
	var sum time.Duration
	const pairs = 500
	for i := 0; i < pairs; i++ {
		sum += n.BaseLatency("node-a", nodeName(i))
	}
	mean := sum / pairs
	// Log-normal around 40ms with sigma 0.6 has mean ≈ 48ms; accept a
	// broad band — we only need "tens of milliseconds, heavy tail".
	if mean < 20*time.Millisecond || mean > 120*time.Millisecond {
		t.Fatalf("mean base latency %v outside WAN band", mean)
	}
}

func nodeName(i int) string { return "node-" + string(rune('0'+i%10)) + string(rune('a'+i%26)) }

func TestLoopbackIsFree(t *testing.T) {
	n := New(1, Loopback())
	if d := n.Delay("a", "b"); d != 0 {
		t.Fatalf("loopback delay = %v, want 0", d)
	}
	if tt := n.TransferTime("a", "b", 1<<30); tt != 0 {
		t.Fatalf("loopback transfer = %v, want 0", tt)
	}
	if n.Lost() {
		t.Fatal("loopback lost a message")
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	n := New(5, PlanetLab())
	small := n.TransferTime("a", "b", 1<<10)
	big := n.TransferTime("a", "b", 100<<20) // 100 MiB at 10 Mb/s ≈ 84 s
	if big <= small {
		t.Fatal("transfer time does not grow with size")
	}
	if big < 60*time.Second || big > 120*time.Second {
		t.Fatalf("100 MiB over 10 Mb/s took %v, want ≈84s", big)
	}
}

func TestLossProbabilityRoughlyHonored(t *testing.T) {
	p := PlanetLab()
	p.LossProb = 0.2
	n := New(9, p)
	lost := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		if n.Lost() {
			lost++
		}
	}
	frac := float64(lost) / trials
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("loss fraction %v, want ≈0.2", frac)
	}
}

func TestDelayNonNegativeProperty(t *testing.T) {
	n := New(123, PlanetLab())
	f := func(a, b string) bool { return n.Delay(a, b) >= 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLANFasterThanPlanetLab(t *testing.T) {
	wan := New(1, PlanetLab())
	lan := New(1, LAN())
	if lan.BaseLatency("a", "b") >= wan.BaseLatency("a", "b") {
		t.Fatal("LAN should be faster than PlanetLab")
	}
}
