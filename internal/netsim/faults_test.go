package netsim

import (
	"reflect"
	"testing"
	"time"
)

var faultEpoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return faultEpoch.Add(d) }

func TestCutLinkWindow(t *testing.T) {
	f := NewFaultPlane()
	f.CutLink("a", "b", at(10*time.Second), at(20*time.Second))
	cases := []struct {
		now  time.Duration
		want bool
	}{
		{9 * time.Second, false},
		{10 * time.Second, true}, // inclusive start
		{19 * time.Second, true},
		{20 * time.Second, false}, // exclusive end: healed
	}
	for _, c := range cases {
		if got := f.Severed("a", "b", at(c.now)); got != c.want {
			t.Errorf("Severed(a,b) at %s = %v, want %v", c.now, got, c.want)
		}
		// Symmetric: direction doesn't matter.
		if got := f.Severed("b", "a", at(c.now)); got != c.want {
			t.Errorf("Severed(b,a) at %s = %v, want %v", c.now, got, c.want)
		}
	}
	if f.Severed("a", "c", at(15*time.Second)) {
		t.Error("unrelated pair severed by a link cut")
	}
}

func TestPartitionSplitsAndHeals(t *testing.T) {
	f := NewFaultPlane()
	f.Partition([]string{"a", "b"}, at(0), at(time.Minute))
	if !f.Severed("a", "c", at(30*time.Second)) {
		t.Error("cross-partition message not severed")
	}
	if f.Severed("a", "b", at(30*time.Second)) {
		t.Error("intra-partition message severed")
	}
	if f.Severed("c", "d", at(30*time.Second)) {
		t.Error("other-side intra-partition message severed")
	}
	if f.Severed("a", "c", at(2*time.Minute)) {
		t.Error("partition did not heal")
	}
}

func TestCrashNodeSeversAllTraffic(t *testing.T) {
	f := NewFaultPlane()
	f.CrashNode("dp-0", at(time.Minute), at(2*time.Minute))
	if !f.Down("dp-0", at(90*time.Second)) {
		t.Error("crashed node not Down inside the window")
	}
	if f.Down("dp-0", at(3*time.Minute)) {
		t.Error("node still Down after the window")
	}
	if !f.Severed("client-7", "dp-0", at(90*time.Second)) {
		t.Error("message to crashed node not severed")
	}
	if !f.Severed("dp-0", "client-7", at(90*time.Second)) {
		t.Error("message from crashed node not severed")
	}
	if f.Severed("client-7", "dp-1", at(90*time.Second)) {
		t.Error("bystander pair severed by a node crash")
	}
}

// TestRandomCrashesReplay is the fault plane's determinism contract: the
// same (seed, name, arguments) must yield the same schedule bit for bit,
// and a different seed must yield a different one.
func TestRandomCrashesReplay(t *testing.T) {
	nodes := []string{"dp-node-0", "dp-node-1", "dp-node-2", "dp-node-3", "dp-node-4",
		"dp-node-5", "dp-node-6", "dp-node-7", "dp-node-8", "dp-node-9"}
	gen := func(seed int64) []Crash {
		return RandomCrashes(seed, "test", nodes, 3,
			10*time.Minute, 20*time.Minute, 5*time.Minute, 10*time.Minute)
	}
	a, b := gen(42), gen(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if len(a) != 3 {
		t.Fatalf("schedule has %d crashes, want 3", len(a))
	}
	victims := map[string]bool{}
	for _, c := range a {
		victims[c.Node] = true
		if c.From < 10*time.Minute || c.From >= 20*time.Minute {
			t.Errorf("crash start %s outside [10m, 20m)", c.From)
		}
		if down := c.Until - c.From; down < 5*time.Minute || down >= 10*time.Minute {
			t.Errorf("downtime %s outside [5m, 10m)", down)
		}
	}
	if len(victims) != 3 {
		t.Fatalf("victims not distinct: %v", a)
	}
	if reflect.DeepEqual(gen(42), gen(43)) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestApplySchedule(t *testing.T) {
	f := NewFaultPlane()
	f.Apply(faultEpoch, []Crash{{Node: "dp-node-1", From: time.Minute, Until: 2 * time.Minute}})
	if !f.Down("dp-node-1", at(90*time.Second)) {
		t.Error("applied schedule did not crash the node")
	}
}

func TestNetworkLostMsgConsultsFaults(t *testing.T) {
	n := New(1, Loopback())
	if n.LostMsg("a", "b", at(0)) {
		t.Error("healthy loopback lost a message")
	}
	f := NewFaultPlane()
	f.CrashNode("b", at(0), at(time.Hour))
	n.SetFaults(f)
	if !n.LostMsg("a", "b", at(time.Minute)) {
		t.Error("message to crashed node survived")
	}
	if n.LostMsg("a", "c", at(time.Minute)) {
		t.Error("bystander message lost")
	}
	n.SetFaults(nil)
	if n.LostMsg("a", "b", at(time.Minute)) {
		t.Error("detached fault plane still dropping")
	}
}
