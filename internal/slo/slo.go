// Package slo is the reproduction's service-level-objective plane: it
// turns the raw series the tsdb registry samples into per-VO judgments
// — is this virtual organization's usage SLA being *met*? — and into
// alerts principled enough to drive scaling.
//
// DI-GRUBER's brokers enforce usage SLAs (USLAs) per VO, but the
// paper's evaluation only measures latency and goodput curves. Ranjan
// et al.'s SLA-based coordinated superscheduling (PAPERS.md) argues the
// missing step: admission and scaling decisions should key off SLA
// attainment, not raw queue depth. This package closes that loop over
// the existing metrics plane:
//
//   - An Objective declares what one VO is owed: a latency threshold a
//     target fraction of requests must meet, and optionally a goodput
//     floor (handled requests per second).
//   - The Evaluator reads the VO's windowed latency histogram and
//     handled counter back out of the tsdb registry (Align over the
//     bucket series, WindowRate over the counter) and produces
//     attainment and error-budget burn rates over a fast and a slow
//     trailing window — the SRE multi-window pair (5m/1h by default),
//     fast to react, slow to resist flapping.
//   - A per-VO alert state machine advances pending → firing → resolved
//     off virtual time with hysteresis on both edges, counts every
//     transition, and reports them through an OnTransition hook.
//
// Everything is deterministic under the repo's rules: timestamps come
// from the caller (vtime), objectives evaluate in sorted-VO order, and
// the transition log serializes to byte-identical JSONL for the same
// seeded run.
package slo

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"digruber/internal/tsdb"
)

// Objective declares one VO's service-level objective.
type Objective struct {
	// VO names the virtual organization (the job owner's USLA root,
	// e.g. "atlas"). It keys the alert and every derived series.
	VO string
	// LatencySeries is the base name of the VO's windowed latency
	// histogram in the registry (the histogram whose sampled series are
	// LatencySeries/le/<bound>, /count, /sum).
	LatencySeries string
	// LatencyThreshold is the latency (seconds) a request must meet to
	// count as good.
	LatencyThreshold float64
	// LatencyTarget is the fraction of requests that must meet the
	// threshold (e.g. 0.9). 1-LatencyTarget is the error budget the burn
	// rates are measured against.
	LatencyTarget float64
	// GoodputSeries optionally names a cumulative counter of the VO's
	// handled requests; its window rate is the VO's goodput.
	GoodputSeries string
	// GoodputFloor is the goodput (1/s) below which the VO's objective
	// reads as missed. Zero disables the floor.
	GoodputFloor float64
}

// Config wires an Evaluator.
type Config struct {
	// Registry is both the source (latency histograms, handled counters)
	// and the destination (slo/<vo>/... gauges and counters) of the
	// evaluation.
	Registry *tsdb.Registry
	// Objectives are the per-VO objectives, evaluated in sorted-VO order.
	Objectives []Objective
	// FastWindow/SlowWindow are the multi-window burn-rate pair
	// (defaults 5m and 1h).
	FastWindow time.Duration
	SlowWindow time.Duration
	// BurnThreshold is the burn rate both windows must reach before an
	// alert leaves inactive (default 1: the budget is being consumed
	// faster than it accrues).
	BurnThreshold float64
	// PendingFor is how long the burn must hold before a pending alert
	// fires (default 2m); ResolveAfter how long the fast window must
	// stay below threshold before a firing alert resolves (default 5m).
	// Both are hysteresis against flapping, measured on virtual time.
	PendingFor   time.Duration
	ResolveAfter time.Duration
	// OnTransition, when non-nil, observes every alert transition as it
	// happens (after the internal state and counters update).
	OnTransition func(Transition)
}

// AlertState is one alert's position in the state machine.
type AlertState int

// Alert states: an alert is born Inactive, turns Pending when both burn
// windows exceed the threshold, Firing when the burn has held for
// PendingFor, and returns to Inactive either by cancellation (the burn
// subsided while still pending) or by resolution (a firing alert's fast
// window stayed quiet for ResolveAfter).
const (
	StateInactive AlertState = iota
	StatePending
	StateFiring
)

// String names the state for labels and JSONL.
func (s AlertState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	default:
		return "inactive"
	}
}

// Transition is one alert state change, the unit of the audit log.
type Transition struct {
	VO   string     `json:"vo"`
	From AlertState `json:"-"`
	To   AlertState `json:"-"`
	// FromState/ToState carry the states by name in JSONL.
	FromState string    `json:"from"`
	ToState   string    `json:"to"`
	At        time.Time `json:"at"`
	// BurnFast/BurnSlow are the burn rates at the transition.
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
}

// Assessment is one objective's evaluation at one instant.
type Assessment struct {
	VO string
	// AttainFast/AttainSlow are the fraction of requests meeting the
	// latency threshold over the fast resp. slow window (1 with no
	// traffic: an idle VO is not missing its objective).
	AttainFast float64
	AttainSlow float64
	// BurnFast/BurnSlow are the error-budget burn rates: error rate over
	// the window divided by the budget (1-LatencyTarget). Burn 1 means
	// the budget is consumed exactly as fast as it accrues.
	BurnFast float64
	BurnSlow float64
	// Goodput is the handled-request rate over the fast window (0 when
	// the objective has no GoodputSeries).
	Goodput float64
	// GoodputOK reports whether the goodput floor is met (true when no
	// floor is set).
	GoodputOK bool
	// State is the alert's state after this evaluation.
	State AlertState
}

// alert is one VO's live state-machine bookkeeping.
type alert struct {
	state      AlertState
	since      time.Time // entered the current state
	belowSince time.Time // firing only: fast burn below threshold since
	pendings   *tsdb.Counter
	firings    *tsdb.Counter
	resolved   *tsdb.Counter

	attainFast *tsdb.Gauge
	attainSlow *tsdb.Gauge
	burnFast   *tsdb.Gauge
	burnSlow   *tsdb.Gauge
	goodput    *tsdb.Gauge
	level      *tsdb.Gauge
}

// Evaluator evaluates a set of objectives against one registry and runs
// their alert state machines. Drive it with Evaluate on virtual-clock
// ticks (after the registry Sample for the same instant, so the windows
// include the tick's data).
type Evaluator struct {
	cfg        Config
	objectives []Objective // sorted by VO

	// mu guards the alert states and the transition log: Evaluate runs
	// on the harness's step loop while FiringCount/Alerts may be read
	// from a controller's ticker goroutine or a Status handler.
	mu     sync.Mutex
	alerts map[string]*alert
	log    []Transition
}

// New validates the config and builds an evaluator. The per-VO output
// instruments (slo/<vo>/attainment_fast, attainment_slow, burn_fast,
// burn_slow, goodput, alert_state gauges and the alerts/pending,
// alerts/firing, alerts/resolved counters) register eagerly so the
// series exist from the first sample.
func New(cfg Config) (*Evaluator, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("slo: Config.Registry is required")
	}
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("slo: no objectives")
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = 5 * time.Minute
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = time.Hour
	}
	if cfg.BurnThreshold <= 0 {
		cfg.BurnThreshold = 1
	}
	if cfg.PendingFor <= 0 {
		cfg.PendingFor = 2 * time.Minute
	}
	if cfg.ResolveAfter <= 0 {
		cfg.ResolveAfter = 5 * time.Minute
	}
	e := &Evaluator{cfg: cfg, alerts: make(map[string]*alert)}
	e.objectives = append([]Objective(nil), cfg.Objectives...)
	sort.Slice(e.objectives, func(i, j int) bool { return e.objectives[i].VO < e.objectives[j].VO })
	for _, o := range e.objectives {
		if o.VO == "" || o.LatencySeries == "" {
			return nil, fmt.Errorf("slo: objective needs VO and LatencySeries (got %+v)", o)
		}
		if o.LatencyTarget <= 0 || o.LatencyTarget >= 1 {
			return nil, fmt.Errorf("slo: objective %s: LatencyTarget must be in (0,1), got %v", o.VO, o.LatencyTarget)
		}
		if _, dup := e.alerts[o.VO]; dup {
			return nil, fmt.Errorf("slo: duplicate objective for VO %s", o.VO)
		}
		p := "slo/" + o.VO + "/"
		reg := cfg.Registry
		e.alerts[o.VO] = &alert{
			pendings:   reg.Counter(p + "alerts/pending"),
			firings:    reg.Counter(p + "alerts/firing"),
			resolved:   reg.Counter(p + "alerts/resolved"),
			attainFast: reg.Gauge(p + "attainment_fast"),
			attainSlow: reg.Gauge(p + "attainment_slow"),
			burnFast:   reg.Gauge(p + "burn_fast"),
			burnSlow:   reg.Gauge(p + "burn_slow"),
			goodput:    reg.Gauge(p + "goodput"),
			level:      reg.Gauge(p + "alert_state"),
		}
		// An idle VO meets its objective; start the gauges there rather
		// than at a spurious zero-attainment first sample.
		e.alerts[o.VO].attainFast.Set(1)
		e.alerts[o.VO].attainSlow.Set(1)
	}
	return e, nil
}

// attainment is the fraction of requests over the trailing window whose
// latency met the threshold, from the histogram's sampled bucket series.
// The bucket layout is discovered from the series the registry actually
// holds (every /le/<bound> under the base name), and the window join
// uses Align so a bucket series that appeared mid-run cannot skew the
// sums. No traffic in the window reads as full attainment.
func (e *Evaluator) attainment(o Objective, now time.Time, window time.Duration) float64 {
	reg := e.cfg.Registry
	var good []string
	countName := o.LatencySeries + "/count"
	for _, nv := range reg.LatestByPrefix(o.LatencySeries + "/le/") {
		label := strings.TrimPrefix(nv.Name, o.LatencySeries+"/le/")
		if label == "inf" {
			continue
		}
		bound, err := strconv.ParseFloat(label, 64)
		if err != nil || bound > o.LatencyThreshold {
			continue
		}
		good = append(good, nv.Name)
	}
	f := reg.Align(append(append([]string(nil), good...), countName)...)
	from := now.Add(-window)
	var goodSum, total float64
	for i, t := range f.Times {
		if t.Before(from) || t.After(now) {
			continue
		}
		if c := f.Values[countName][i]; !math.IsNaN(c) {
			total += c
		}
		for _, name := range good {
			if v := f.Values[name][i]; !math.IsNaN(v) {
				goodSum += v
			}
		}
	}
	if total == 0 {
		return 1
	}
	return goodSum / total
}

// Evaluate runs one evaluation pass at virtual time now and returns the
// per-objective assessments in sorted-VO order. It updates the output
// gauges/counters (recorded by the registry's next Sample) and advances
// the alert state machines.
func (e *Evaluator) Evaluate(now time.Time) []Assessment {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Assessment, 0, len(e.objectives))
	for _, o := range e.objectives {
		a := e.alerts[o.VO]
		budget := 1 - o.LatencyTarget
		as := Assessment{VO: o.VO, GoodputOK: true}
		as.AttainFast = e.attainment(o, now, e.cfg.FastWindow)
		as.AttainSlow = e.attainment(o, now, e.cfg.SlowWindow)
		as.BurnFast = (1 - as.AttainFast) / budget
		as.BurnSlow = (1 - as.AttainSlow) / budget
		if o.GoodputSeries != "" {
			as.Goodput = e.cfg.Registry.WindowRate(o.GoodputSeries, now, e.cfg.FastWindow)
			if o.GoodputFloor > 0 {
				as.GoodputOK = as.Goodput >= o.GoodputFloor
			}
		}
		as.State = e.step(o.VO, a, now, as)

		a.attainFast.Set(as.AttainFast)
		a.attainSlow.Set(as.AttainSlow)
		a.burnFast.Set(as.BurnFast)
		a.burnSlow.Set(as.BurnSlow)
		a.goodput.Set(as.Goodput)
		a.level.Set(float64(as.State))
		out = append(out, as)
	}
	return out
}

// step advances one alert's state machine and returns the new state.
func (e *Evaluator) step(vo string, a *alert, now time.Time, as Assessment) AlertState {
	burning := as.BurnFast >= e.cfg.BurnThreshold && as.BurnSlow >= e.cfg.BurnThreshold
	switch a.state {
	case StateInactive:
		if burning {
			e.transition(vo, a, StatePending, now, as)
		}
	case StatePending:
		switch {
		case !burning:
			// Cancelled before firing: the multi-window guard did its job.
			e.transition(vo, a, StateInactive, now, as)
		case now.Sub(a.since) >= e.cfg.PendingFor:
			e.transition(vo, a, StateFiring, now, as)
		}
	case StateFiring:
		// Resolution watches the fast window only: the slow window keeps
		// burning long after the incident ends, and holding the alert for
		// it would punish recovery.
		if as.BurnFast >= e.cfg.BurnThreshold {
			a.belowSince = time.Time{}
			break
		}
		if a.belowSince.IsZero() {
			a.belowSince = now
		}
		if now.Sub(a.belowSince) >= e.cfg.ResolveAfter {
			e.transition(vo, a, StateInactive, now, as)
		}
	}
	return a.state
}

// transition moves an alert to a new state, bumps the matching counter,
// logs the change, and notifies the hook.
func (e *Evaluator) transition(vo string, a *alert, to AlertState, now time.Time, as Assessment) {
	tr := Transition{
		VO: vo, From: a.state, To: to,
		FromState: a.state.String(), ToState: to.String(),
		At: now, BurnFast: as.BurnFast, BurnSlow: as.BurnSlow,
	}
	switch to {
	case StatePending:
		a.pendings.Inc()
	case StateFiring:
		a.firings.Inc()
	case StateInactive:
		a.resolved.Inc()
	}
	a.state = to
	a.since = now
	a.belowSince = time.Time{}
	e.log = append(e.log, tr)
	if e.cfg.OnTransition != nil {
		e.cfg.OnTransition(tr)
	}
}

// FiringCount reports how many alerts are currently firing — the
// controller's slo_burn scale-up signal.
func (e *Evaluator) FiringCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, o := range e.objectives {
		if e.alerts[o.VO].state == StateFiring {
			n++
		}
	}
	return n
}

// AlertStatus is one alert's current state, for status surfaces.
type AlertStatus struct {
	VO    string
	State AlertState
	Since time.Time
	// BurnFast is the fast-window burn rate at the last evaluation.
	BurnFast float64
}

// Alerts returns every non-inactive alert in sorted-VO order.
func (e *Evaluator) Alerts() []AlertStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []AlertStatus
	for _, o := range e.objectives {
		a := e.alerts[o.VO]
		if a.state == StateInactive {
			continue
		}
		out = append(out, AlertStatus{VO: o.VO, State: a.state, Since: a.since, BurnFast: a.burnFast.Value()})
	}
	return out
}

// Transitions returns the full transition log in occurrence order.
func (e *Evaluator) Transitions() []Transition {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Transition(nil), e.log...)
}

// WriteTransitionsJSONL streams transitions to w, one JSON object per
// line — deterministic for a deterministic run, so two identically
// seeded runs serialize byte-identical logs (the replay gate ext-slo
// asserts alongside the metrics JSONL).
func WriteTransitionsJSONL(w io.Writer, transitions []Transition) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, tr := range transitions {
		if err := enc.Encode(tr); err != nil {
			return fmt.Errorf("slo: write transitions jsonl: %w", err)
		}
	}
	return bw.Flush()
}
