package slo

import (
	"bytes"
	"math"
	"testing"
	"time"

	"digruber/internal/tsdb"
)

var epoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)

// harness drives one VO's objective minute by minute: each step
// observes a scripted mix of good/bad latencies, samples the registry,
// and evaluates.
type harness struct {
	reg  *tsdb.Registry
	hist *tsdb.Histogram
	ctr  *tsdb.Counter
	ev   *Evaluator
	now  time.Time
}

func newHarness(t *testing.T, mutate func(*Config)) *harness {
	t.Helper()
	reg := tsdb.New(0)
	h := &harness{
		reg:  reg,
		hist: reg.Histogram("vo/test/latency_s", []float64{1, 5}),
		ctr:  reg.Counter("vo/test/handled"),
		now:  epoch,
	}
	cfg := Config{
		Registry: reg,
		Objectives: []Objective{{
			VO: "test", LatencySeries: "vo/test/latency_s",
			LatencyThreshold: 1, LatencyTarget: 0.9,
			GoodputSeries: "vo/test/handled", GoodputFloor: 0.05,
		}},
		FastWindow: 5 * time.Minute, SlowWindow: 15 * time.Minute,
		BurnThreshold: 1, PendingFor: 2 * time.Minute, ResolveAfter: 3 * time.Minute,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ev, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.ev = ev
	return h
}

// step advances one virtual minute with good requests under the
// threshold and bad ones over it, then evaluates.
func (h *harness) step(good, bad int) Assessment {
	for i := 0; i < good; i++ {
		h.hist.Observe(0.5)
	}
	for i := 0; i < bad; i++ {
		h.hist.Observe(3.0)
	}
	h.ctr.Add(int64(good + bad))
	h.now = h.now.Add(time.Minute)
	h.reg.Sample(h.now)
	return h.ev.Evaluate(h.now)[0]
}

func TestAttainmentAndBurn(t *testing.T) {
	h := newHarness(t, nil)

	// No traffic: an idle VO meets its objective.
	as := h.step(0, 0)
	if as.AttainFast != 1 || as.BurnFast != 0 || as.State != StateInactive {
		t.Fatalf("idle assessment: %+v", as)
	}

	// 9 good + 1 bad per minute = exactly the 0.9 target: attainment 0.9,
	// burn 1.0 on both windows once they hold data.
	for i := 0; i < 6; i++ {
		as = h.step(9, 1)
	}
	if math.Abs(as.AttainFast-0.9) > 1e-9 {
		t.Fatalf("attainment fast = %v, want 0.9", as.AttainFast)
	}
	if math.Abs(as.BurnFast-1.0) > 1e-9 {
		t.Fatalf("burn fast = %v, want 1.0", as.BurnFast)
	}

	// All-good traffic: burn 0.
	for i := 0; i < 20; i++ {
		as = h.step(10, 0)
	}
	if as.BurnFast != 0 || as.BurnSlow != 0 {
		t.Fatalf("all-good burn: %+v", as)
	}
	if as.Goodput <= 0 || !as.GoodputOK {
		t.Fatalf("goodput: %+v", as)
	}
}

func TestGoodputFloor(t *testing.T) {
	h := newHarness(t, nil)
	// 10/min = 0.166/s meets the 0.05/s floor; 1/min = 0.016/s does not.
	var as Assessment
	for i := 0; i < 6; i++ {
		as = h.step(10, 0)
	}
	if !as.GoodputOK {
		t.Fatalf("floor met but GoodputOK=false: %+v", as)
	}
	for i := 0; i < 6; i++ {
		as = h.step(1, 0)
	}
	if as.GoodputOK {
		t.Fatalf("floor missed but GoodputOK=true: %+v", as)
	}
}

// TestAlertLifecycle walks the full machine: inactive → pending →
// firing → resolved, with the hysteresis delays and the counters and
// hook observing every edge.
func TestAlertLifecycle(t *testing.T) {
	var hooked []Transition
	h := newHarness(t, func(c *Config) {
		c.OnTransition = func(tr Transition) { hooked = append(hooked, tr) }
	})

	// Warm up healthy.
	for i := 0; i < 16; i++ {
		if as := h.step(10, 0); as.State != StateInactive {
			t.Fatalf("healthy traffic raised an alert: %+v", as)
		}
	}

	// Outage: everything misses the threshold. Fast window burns first;
	// the alert may not leave inactive until the slow window burns too.
	var pendingAt, firingAt int
	for i := 1; i <= 30; i++ {
		as := h.step(0, 10)
		if as.State == StatePending && pendingAt == 0 {
			pendingAt = i
		}
		if as.State == StateFiring {
			firingAt = i
			break
		}
	}
	if pendingAt == 0 || firingAt == 0 {
		t.Fatalf("outage never fired (pending at %d, firing at %d)", pendingAt, firingAt)
	}
	if firingAt-pendingAt < 2 {
		t.Fatalf("fired %d min after pending, want >= PendingFor (2m)", firingAt-pendingAt)
	}

	// Recovery: all-good traffic drains the fast window; the alert
	// resolves ResolveAfter after the fast burn clears, even though the
	// slow window still remembers the outage.
	resolvedAfter := 0
	for i := 1; i <= 30; i++ {
		as := h.step(10, 0)
		if as.State == StateInactive {
			resolvedAfter = i
			break
		}
	}
	if resolvedAfter == 0 {
		t.Fatal("alert never resolved after recovery")
	}

	// Transition log: pending → firing → resolved, in order, mirrored by
	// the hook and the counters.
	trs := h.ev.Transitions()
	if len(trs) != 3 {
		t.Fatalf("transition log = %+v, want 3 entries", trs)
	}
	wantTo := []AlertState{StatePending, StateFiring, StateInactive}
	for i, tr := range trs {
		if tr.To != wantTo[i] || tr.VO != "test" {
			t.Fatalf("transition %d = %+v, want to=%v", i, tr, wantTo[i])
		}
	}
	if len(hooked) != 3 || hooked[1].ToState != "firing" {
		t.Fatalf("hook saw %+v", hooked)
	}
	for name, want := range map[string]int64{
		"slo/test/alerts/pending":  1,
		"slo/test/alerts/firing":   1,
		"slo/test/alerts/resolved": 1,
	} {
		if got := h.reg.Counter(name).Value(); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestPendingCancel: a burst that subsides before PendingFor elapses
// cancels back to inactive without firing. PendingFor must outlast the
// fast window here, since burn persists until the bad minutes rotate
// out of it.
func TestPendingCancel(t *testing.T) {
	h := newHarness(t, func(c *Config) {
		c.PendingFor = 8 * time.Minute
	})
	for i := 0; i < 16; i++ {
		h.step(10, 0)
	}
	// Burn both windows just long enough to go pending.
	var as Assessment
	for i := 0; i < 30 && as.State != StatePending; i++ {
		as = h.step(0, 10)
	}
	if as.State != StatePending {
		t.Fatal("never went pending")
	}
	// Recover immediately: the pending alert must cancel, not fire.
	for i := 0; i < 10; i++ {
		as = h.step(10, 0)
	}
	if as.State != StateInactive {
		t.Fatalf("pending did not cancel: %+v", as)
	}
	for _, tr := range h.ev.Transitions() {
		if tr.To == StateFiring {
			t.Fatalf("short burst fired: %+v", h.ev.Transitions())
		}
	}
	if got := h.reg.Counter("slo/test/alerts/firing").Value(); got != 0 {
		t.Fatalf("firing counter = %d, want 0", got)
	}
}

func TestAlertsAndFiringCount(t *testing.T) {
	h := newHarness(t, nil)
	if n := h.ev.FiringCount(); n != 0 {
		t.Fatalf("firing count = %d at start", n)
	}
	if al := h.ev.Alerts(); len(al) != 0 {
		t.Fatalf("alerts at start: %+v", al)
	}
	for i := 0; i < 40; i++ {
		h.step(0, 10)
	}
	if n := h.ev.FiringCount(); n != 1 {
		t.Fatalf("firing count = %d after outage", n)
	}
	al := h.ev.Alerts()
	if len(al) != 1 || al[0].VO != "test" || al[0].State != StateFiring || al[0].BurnFast <= 0 {
		t.Fatalf("alerts after outage: %+v", al)
	}
}

func TestConfigValidation(t *testing.T) {
	reg := tsdb.New(0)
	cases := []Config{
		{},              // no registry
		{Registry: reg}, // no objectives
		{Registry: reg, Objectives: []Objective{{VO: "a"}}},                                         // no series
		{Registry: reg, Objectives: []Objective{{VO: "a", LatencySeries: "s", LatencyTarget: 1.5}}}, // bad target
		{Registry: reg, Objectives: []Objective{{VO: "a", LatencySeries: "s", LatencyTarget: 0.9, LatencyThreshold: 1}, {VO: "a", LatencySeries: "s", LatencyTarget: 0.9, LatencyThreshold: 1}}}, // dup
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Fatalf("case %d: config %+v accepted", i, c)
		}
	}
}

func TestWriteTransitionsJSONLDeterministic(t *testing.T) {
	run := func() []byte {
		h := newHarness(t, nil)
		for i := 0; i < 16; i++ {
			h.step(10, 0)
		}
		for i := 0; i < 20; i++ {
			h.step(0, 10)
		}
		for i := 0; i < 20; i++ {
			h.step(10, 0)
		}
		var buf bytes.Buffer
		if err := WriteTransitionsJSONL(&buf, h.ev.Transitions()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no transitions serialized")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("transition JSONL not byte-identical:\n%s\nvs\n%s", a, b)
	}
}
