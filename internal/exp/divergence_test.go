package exp

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"digruber/internal/digruber"
	"digruber/internal/grid"
	"digruber/internal/gruber"
	"digruber/internal/tsdb"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

// divergenceFixture runs a fully deterministic two-broker scenario on a
// Manual clock: dp-a brokers one 1-CPU job per virtual minute for 30
// minutes against a 3-site, 300-CPU ground truth, exchanging state with
// dp-b every exchangeEvery minutes. Both brokers' full instrument sets
// plus per-broker divergence gauges land in the returned registry,
// sampled once per minute. Everything — job flow, exchange rounds,
// sampling — happens synchronously under a frozen clock, so the series
// are a pure function of exchangeEvery.
func divergenceFixture(t *testing.T, exchangeEvery int) *tsdb.Registry {
	t.Helper()
	clock := vtime.NewManual(Epoch)
	mem := wire.NewMem()
	reg := tsdb.New(0)

	// Mutable ground truth, decremented as jobs dispatch. The engines
	// get a copy via UpdateSites; after that they only learn through
	// dispatch records.
	truth := []grid.Status{
		{Name: "site-000", TotalCPUs: 100, FreeCPUs: 100},
		{Name: "site-001", TotalCPUs: 100, FreeCPUs: 100},
		{Name: "site-002", TotalCPUs: 100, FreeCPUs: 100},
	}
	truthCopy := func() []grid.Status { return append([]grid.Status(nil), truth...) }

	dps := make([]*digruber.DecisionPoint, 2)
	for i, name := range []string{"dp-a", "dp-b"} {
		dp, err := digruber.New(digruber.Config{
			Name: name, Addr: "div/" + name, Transport: mem, Clock: clock,
			Profile: wire.Instant(),
			// The interval ticker must never fire inside the fixture's
			// 30 virtual minutes: rounds are driven explicitly below.
			ExchangeInterval: time.Hour,
			Metrics:          reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		dp.Engine().UpdateSites(truthCopy(), clock.Now())
		engine := dp.Engine()
		reg.GaugeFunc("dp/"+name+"/engine/divergence_l1", func(now time.Time) float64 {
			return engine.ViewDivergence(truthCopy())
		})
		dps[i] = dp
	}
	dps[0].AddPeer("dp-b", "dp-b", "div/dp-b")
	dps[1].AddPeer("dp-a", "dp-a", "div/dp-a")
	for _, dp := range dps {
		if err := dp.Start(); err != nil {
			t.Fatal(err)
		}
		defer dp.Stop()
	}

	// quiesce waits (real time) for the servers' deferred in-flight
	// accounting to settle after a synchronous round, so samples always
	// read a settled fleet.
	quiesce := func() {
		deadline := time.Now().Add(5 * time.Second)
		for dps[0].Status().InFlight != 0 || dps[1].Status().InFlight != 0 {
			if time.Now().After(deadline) {
				t.Fatal("fleet did not quiesce")
			}
			time.Sleep(time.Millisecond)
		}
	}

	for step := 1; step <= 30; step++ {
		// dp-a brokers one job onto the fullest site (ground truth and
		// dp-a's own view agree: dp-a sees every dispatch it makes).
		best := 0
		for i := range truth {
			if truth[i].FreeCPUs > truth[best].FreeCPUs {
				best = i
			}
		}
		dps[0].Engine().RecordDispatch(gruber.Dispatch{
			JobID: fmt.Sprintf("job-%03d", step), Site: truth[best].Name,
			Owner: "atlas", CPUs: 1, Runtime: 10 * time.Hour, At: clock.Now(),
		})
		truth[best].FreeCPUs--

		clock.Advance(time.Minute)
		if step%exchangeEvery == 0 {
			dps[0].ExchangeNow()
			dps[1].ExchangeNow()
			quiesce()
		}
		reg.Sample(clock.Now())
	}
	return reg
}

// TestDivergenceReplaysByteIdentical is the metrics plane's determinism
// acceptance: the same Manual-clock run exported twice yields
// byte-identical JSONL — timestamps, series order, every value.
func TestDivergenceReplaysByteIdentical(t *testing.T) {
	for _, every := range []int{1, 10} {
		var a, b bytes.Buffer
		if err := divergenceFixture(t, every).WriteJSONL(&a); err != nil {
			t.Fatal(err)
		}
		if err := divergenceFixture(t, every).WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		if a.Len() == 0 {
			t.Fatalf("exchangeEvery=%d: empty JSONL export", every)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("exchangeEvery=%d: identical runs produced different metrics JSONL", every)
		}
	}
}

// TestDivergenceShrinksWithShorterExchange is the substance behind
// Figures 8-10: the remote broker's view divergence is bounded by how
// much dispatching happens between exchanges, so exchanging every
// minute keeps it well under exchanging every ten.
func TestDivergenceShrinksWithShorterExchange(t *testing.T) {
	short := divergenceFixture(t, 1)
	long := divergenceFixture(t, 10)

	meanB := func(r *tsdb.Registry) float64 { return tsdb.Mean(r.Points("dp/dp-b/engine/divergence_l1")) }
	shortMean, longMean := meanB(short), meanB(long)
	if longMean <= 0 {
		t.Fatalf("10-minute exchange shows no divergence (mean %v) — gauge broken?", longMean)
	}
	if shortMean*2 >= longMean {
		t.Fatalf("divergence did not shrink with shorter exchanges: 1m mean %.2f vs 10m mean %.2f",
			shortMean, longMean)
	}

	// The dispatching broker's own view never diverges: it observes
	// every dispatch it makes, and nothing else moves ground truth.
	if max := tsdb.Max(long.Points("dp/dp-a/engine/divergence_l1")); max != 0 {
		t.Fatalf("origin broker diverged (max %v), want 0", max)
	}
	// And right after every exchange the remote broker reconverges: with
	// 1-minute exchanges every sample lands post-round, so dp-b's series
	// should be pinned at zero too.
	if max := tsdb.Max(short.Points("dp/dp-b/engine/divergence_l1")); max != 0 {
		t.Fatalf("remote broker did not reconverge after each round (max %v)", max)
	}
}
