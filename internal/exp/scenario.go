package exp

import (
	"fmt"
	"sync"
	"time"

	"digruber/internal/digruber"
	"digruber/internal/diperf"
	"digruber/internal/gram"
	"digruber/internal/grid"
	"digruber/internal/gruber"
	"digruber/internal/grubsim"
	"digruber/internal/metrics"
	"digruber/internal/netsim"
	"digruber/internal/trace"
	"digruber/internal/tsdb"
	"digruber/internal/vtime"
	"digruber/internal/wire"
	"digruber/internal/workload"
)

// ScenarioConfig describes one live DI-GRUBER emulation (Figures 5-7 and
// 9-11, Tables 1-2, and the exchange-interval sweeps).
type ScenarioConfig struct {
	Name  string
	Scale Scale
	// Profile is the emulated toolkit stack (GT3/GT4).
	Profile wire.StackProfile
	// DPs is the decision point count.
	DPs int
	// Clients overrides Scale.Clients when non-zero.
	Clients int
	// ExchangeInterval is the peer sync period (default 3 minutes).
	ExchangeInterval time.Duration
	// Strategy is the dissemination strategy (default usage-only).
	Strategy digruber.DisseminationStrategy
	// Timeout is the client's scheduling timeout (default 30 s).
	Timeout time.Duration
	// Interarrival is each client's pause between jobs (default 5 s).
	Interarrival time.Duration
	// MeanRuntime overrides the workload's mean job runtime (default
	// Scale.Duration, so accepted work accumulates across the run and
	// the grid approaches saturation under multi-DP load — which is what
	// makes QTime and the handled/not-handled quality gap visible, and
	// mirrors the paper's observation that the lightly-loaded 1-DP runs
	// show deceivingly low queue times).
	MeanRuntime time.Duration
	// JobCPUs overrides the per-job CPU demand (default 2).
	JobCPUs int
	// ExecuteJobs runs scheduled jobs on the emulated grid so QTime,
	// Util and completion-dependent metrics are real.
	ExecuteJobs bool
	// Seed drives all randomness.
	Seed int64
	// MeshTopology false keeps the paper's full mesh; true switches to a
	// star (ablation): every DP exchanges only with dp-0.
	StarTopology bool
	// SingleCall switches clients to the one-round-trip coupling the
	// paper's conclusion proposes (see the coupling extension).
	SingleCall bool
	// SelectorName picks the client-side site selector policy:
	// "usla-aware" (default), "random", "round-robin", "least-used" or
	// "least-recently-used" (the paper's example task assignment
	// policies; swept by the selector ablation).
	SelectorName string
	// Faults optionally schedules broker crashes mid-run (the chaos
	// extension). The schedule is drawn from Seed, so the same seed
	// replays the same victims and windows.
	Faults *FaultConfig
	// TraceSink, when non-nil, turns on distributed tracing: every
	// client, decision point and mesh round records spans into it. Span
	// IDs are drawn from per-actor seeded streams and timestamps from
	// the experiment clock, so the same seed yields the same trace.
	TraceSink *trace.Collector
	// MetricsSink, when non-nil, turns on the metrics plane: every
	// decision point registers its instruments under dp/<name>/, a
	// fleet-wide wire-client counter set lands under clients/wire/, a
	// per-DP divergence gauge (dp/<name>/engine/divergence_l1) measures
	// the L1 distance between the broker's dynamic free-CPU view and
	// grid ground truth, and a sampler records everything into the
	// registry on MetricsInterval ticks of the experiment clock.
	MetricsSink *tsdb.Registry
	// MetricsInterval is the sampling period (default Scale.Window).
	MetricsInterval time.Duration
	// Overload, when non-nil, gives clients a retry policy and (when
	// Overload.Plane is set) turns on the end-to-end overload-control
	// plane. Nil keeps the PR-4 behavior: no retries, no breakers, no
	// deadline propagation.
	Overload *OverloadConfig
}

// OverloadConfig parameterizes a run driven at or past its saturation
// knee. With Plane false the clients merely retry — the configuration
// whose amplification the control plane exists to bound. With Plane true
// the full plane engages: deadlines propagate in the request envelope
// (stale work is dropped at dequeue), retries spend a shared fleet-wide
// budget, every client runs per-broker circuit breakers with load-aware
// failover, and every decision point reserves a mesh lane so its view
// keeps converging while clients drown it.
type OverloadConfig struct {
	Plane bool
	// Attempts is the per-call attempt cap including the first try
	// (default 4).
	Attempts int
	// BaseBackoff seeds the exponential retry backoff (default 250 ms);
	// each client jitters it from its own seeded stream.
	BaseBackoff time.Duration
	// BudgetRate and BudgetBurst shape the shared retry budget (tokens/s
	// of virtual time, bucket depth; Plane only). Defaults: a quarter of
	// the fleet's offered first-attempt rate, with two seconds of burst —
	// enough for transient blips, nowhere near enough to double a
	// saturated fleet's load.
	BudgetRate  float64
	BudgetBurst float64
	// BreakerThreshold and BreakerCooldown parameterize the per-broker
	// circuit breakers (Plane only; defaults 5 consecutive failures,
	// cooldown twice the client timeout).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MeshLane is each decision point's reserved worker count for
	// Exchange/Status/Snapshot (Plane only; default 1).
	MeshLane int
}

// FaultConfig schedules a seeded crash-and-heal wave against the
// decision-point fleet. Each victim's node is severed on the fault plane
// (in-flight traffic blackholes) and its broker process crashes (loses
// dynamic state); at the heal point the broker restarts and resyncs via
// the snapshot RPC. Clients get a failover chain over the remaining
// brokers, so the run measures DI-GRUBER's reliability claim end to end.
type FaultConfig struct {
	// CrashDPs is how many decision points crash (capped at DPs-1 so a
	// snapshot donor always survives).
	CrashDPs int
	// CrashAt is when (offset from run start) the crash wave lands;
	// default 2/5 of the run.
	CrashAt time.Duration
	// HealAt is when crashed brokers restart; default 3/5 of the run.
	HealAt time.Duration
}

func (c *ScenarioConfig) setDefaults() error {
	if c.DPs <= 0 {
		return fmt.Errorf("exp: scenario needs at least one decision point")
	}
	if c.Scale.Sites == 0 {
		c.Scale = BenchScale()
	}
	if c.Clients == 0 {
		c.Clients = c.Scale.Clients
	}
	if c.ExchangeInterval <= 0 {
		c.ExchangeInterval = 3 * time.Minute
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Interarrival <= 0 {
		c.Interarrival = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = c.Scale.Seed
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MetricsInterval <= 0 {
		c.MetricsInterval = c.Scale.Window
	}
	if c.Faults != nil {
		if c.Faults.CrashAt <= 0 {
			c.Faults.CrashAt = c.Scale.Duration * 2 / 5
		}
		if c.Faults.HealAt <= c.Faults.CrashAt {
			c.Faults.HealAt = c.Faults.CrashAt + c.Scale.Duration/5
		}
		if c.Faults.CrashDPs >= c.DPs {
			c.Faults.CrashDPs = c.DPs - 1
		}
	}
	if o := c.Overload; o != nil {
		if o.Attempts <= 0 {
			o.Attempts = 4
		}
		if o.BaseBackoff <= 0 {
			o.BaseBackoff = 250 * time.Millisecond
		}
		offered := float64(c.Clients) / c.Interarrival.Seconds()
		if o.BudgetRate <= 0 {
			o.BudgetRate = offered / 4
		}
		if o.BudgetBurst <= 0 {
			o.BudgetBurst = 2 * o.BudgetRate
		}
		if o.BreakerThreshold <= 0 {
			o.BreakerThreshold = 5
		}
		if o.BreakerCooldown <= 0 {
			o.BreakerCooldown = 2 * c.Timeout
		}
		if o.MeshLane <= 0 {
			o.MeshLane = 1
		}
	}
	if c.Profile.Name == "" {
		c.Profile = wire.GT3()
	}
	if c.Profile.QueueLimit == 0 {
		// Deep accept queues so overload manifests as the paper's
		// climbing response times and client timeouts, not fast-fail.
		c.Profile.QueueLimit = 512
	}
	// Shrunken scales carry proportionally less site state per query, so
	// without correction the emulated container would look faster than
	// the calibrated GT3/GT4 stacks. Scale the per-KB cost so one query
	// costs what it would against the paper's 300-site environment.
	if c.Scale.Sites > 0 && c.Scale.Sites < fullScaleSites {
		c.Profile.PerKB = time.Duration(float64(c.Profile.PerKB) * float64(fullScaleSites) / float64(c.Scale.Sites))
	}
	return nil
}

// fullScaleSites is the paper environment's site count, the reference
// for service-demand calibration.
const fullScaleSites = 300

// ScenarioResult carries everything the paper reports for one run.
type ScenarioResult struct {
	Config ScenarioConfig
	// DiPerF is the figure: load / response / throughput curves and the
	// summary strip.
	DiPerF diperf.Result
	// Table is the Table 1/2-style handled vs not-handled breakdown.
	Table metrics.Table
	// HandledAccuracy is mean SA over broker-handled jobs.
	HandledAccuracy float64
	// OverallAccuracy is mean SA over all jobs.
	OverallAccuracy float64
	// Util is ground-truth grid utilization over the run.
	Util float64
	// CompletedJobs counts jobs that finished on the grid.
	CompletedJobs int
	// ExchangeRounds sums decision points' completed sync rounds.
	ExchangeRounds int
	// Trace is the recorded arrival log (client, offset) of the run —
	// the input GRUB-SIM replays, as the paper did with its PlanetLab
	// logs.
	Trace grubsim.Trace
	// ClientWire is the submission fleet's aggregate wire-call counters
	// (attempts, retries, throttles, failure classes). Zero unless
	// metrics or overload control were configured.
	ClientWire wire.ClientStats
	// DPStatus holds each decision point's final self-report in index
	// order — the per-broker shed/conn-lost/expired accounting the
	// overload analysis reads.
	DPStatus []digruber.StatusReply
}

// RunScenario executes one live emulation and blocks until it finishes
// (Scale.Duration of virtual time, Duration/Speedup of real time).
func RunScenario(cfg ScenarioConfig) (ScenarioResult, error) {
	if err := cfg.setDefaults(); err != nil {
		return ScenarioResult{}, err
	}
	clock := vtime.NewScaled(Epoch, cfg.Scale.Speedup)
	network := netsim.New(cfg.Seed, netsim.PlanetLab())
	mem := wire.NewMem()

	// Per-actor tracers share the run's collector; each actor draws span
	// IDs from its own seeded stream (nil sink disables tracing).
	tracerFor := func(actor string) *trace.Tracer {
		return trace.New(trace.Config{
			Actor: actor, Seed: cfg.Seed, Clock: clock, Collector: cfg.TraceSink,
		})
	}
	// With both planes on, the collector's overflow accounting joins the
	// metrics export: trace/dropped climbing warns that exemplar trace
	// IDs may no longer resolve in the recorded spans.
	if cfg.TraceSink != nil && cfg.MetricsSink != nil {
		cfg.TraceSink.RegisterMetrics(cfg.MetricsSink)
	}

	// --- grid substrate ---
	g, err := grid.Generate(grid.TopologyConfig{
		Seed:           cfg.Seed,
		Sites:          cfg.Scale.Sites,
		TotalCPUs:      cfg.Scale.TotalCPUs,
		SizeSigma:      1.0,
		MaxClusterCPUs: 512,
	}, clock)
	if err != nil {
		return ScenarioResult{}, err
	}
	// Nothing may outlive the scenario: queued and running jobs resolve
	// at teardown so watcher goroutines exit and later experiments see
	// an idle machine.
	defer g.Shutdown()
	siteNames := g.SiteNames()

	// --- workload ---
	wl, err := newScenarioWorkload(cfg)
	if err != nil {
		return ScenarioResult{}, err
	}
	policies := wl.policies

	// --- decision points (full mesh or star) ---
	meshLane := 0
	if o := cfg.Overload; o != nil && o.Plane {
		meshLane = o.MeshLane
	}
	dps := make([]*digruber.DecisionPoint, cfg.DPs)
	for i := range dps {
		dp, err := digruber.New(digruber.Config{
			Name:             fmt.Sprintf("dp-%d", i),
			Node:             fmt.Sprintf("dp-node-%d", i),
			Addr:             fmt.Sprintf("%s/dp-%d", cfg.Name, i),
			Transport:        mem,
			Network:          network,
			Clock:            clock,
			Profile:          cfg.Profile,
			Policies:         policies,
			ExchangeInterval: cfg.ExchangeInterval,
			Strategy:         cfg.Strategy,
			PeerTimeout:      cfg.Timeout,
			Tracer:           tracerFor(fmt.Sprintf("dp-%d", i)),
			Metrics:          cfg.MetricsSink,
			MeshLane:         meshLane,
		})
		if err != nil {
			return ScenarioResult{}, err
		}
		dp.Engine().UpdateSites(g.Snapshot(), clock.Now())
		dps[i] = dp
		// The divergence gauge needs ground truth, which only the
		// harness has — so it lives here, not in the decision point.
		engine := dp.Engine()
		cfg.MetricsSink.GaugeFunc("dp/"+dp.Name()+"/engine/divergence_l1", func(now time.Time) float64 {
			return engine.ViewDivergence(g.Snapshot())
		})
	}
	for i, dp := range dps {
		for j, peer := range dps {
			if i == j {
				continue
			}
			if cfg.StarTopology && i != 0 && j != 0 {
				continue // star: spokes only know the hub
			}
			dp.AddPeer(peer.Name(), fmt.Sprintf("dp-node-%d", j), peer.Addr())
		}
	}
	for _, dp := range dps {
		if err := dp.Start(); err != nil {
			return ScenarioResult{}, err
		}
	}
	defer func() {
		for _, dp := range dps {
			dp.Stop()
		}
	}()

	// --- seeded fault plane: crash-and-heal wave against the fleet ---
	if f := cfg.Faults; f != nil && f.CrashDPs > 0 {
		faults := netsim.NewFaultPlane()
		network.SetFaults(faults)
		nodes := make([]string, cfg.DPs)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("dp-node-%d", i)
		}
		// Victims and sub-window jitter are drawn from the run seed: the
		// same seed replays the same outage, bit for bit.
		spread := cfg.Scale.Duration/100 + time.Second
		schedule := netsim.RandomCrashes(cfg.Seed, cfg.Name, nodes, f.CrashDPs,
			f.CrashAt, f.CrashAt+spread, f.HealAt-f.CrashAt, f.HealAt-f.CrashAt+spread)
		faults.Apply(Epoch, schedule)

		var faultMu sync.Mutex
		scenarioDone := false
		var timers []vtime.Timer
		for _, cr := range schedule {
			var idx int
			if _, err := fmt.Sscanf(cr.Node, "dp-node-%d", &idx); err != nil {
				return ScenarioResult{}, fmt.Errorf("exp: bad crash node %q", cr.Node)
			}
			dp := dps[idx]
			timers = append(timers, clock.AfterFunc(cr.From, func() { dp.Crash() }))
			timers = append(timers, clock.AfterFunc(cr.Until, func() {
				faultMu.Lock()
				done := scenarioDone
				faultMu.Unlock()
				if done {
					return
				}
				_ = dp.Restart()
				// If teardown raced the restart, undo it.
				faultMu.Lock()
				if scenarioDone {
					dp.Stop()
				}
				faultMu.Unlock()
			}))
		}
		// Registered after the fleet-stop defer, so it runs first: no
		// fault timer may fire (or leave a broker running) after return.
		defer func() {
			faultMu.Lock()
			scenarioDone = true
			faultMu.Unlock()
			for _, tm := range timers {
				tm.Stop()
			}
		}()
	}

	// --- clients, statically bound round-robin over decision points ---
	// One shared wire-counter set aggregates the whole submission fleet
	// (nil when metrics are off, which keeps the per-call cost at one
	// nil check).
	var wireMetrics *wire.ClientMetrics
	if cfg.MetricsSink != nil || cfg.Overload != nil {
		wireMetrics = wire.NewClientMetrics()
		wireMetrics.Register(cfg.MetricsSink, "clients/wire")
	}
	// Per-VO schedule-latency histograms with trace-ID exemplars — the
	// SLO plane's input. Pre-registered for every VO of the workload so
	// the export's series set never depends on which VO submitted first.
	var voLatency map[string]*tsdb.Histogram
	if cfg.MetricsSink != nil {
		voLatency = make(map[string]*tsdb.Histogram, wl.gen.Config().VOs)
		for v := 0; v < wl.gen.Config().VOs; v++ {
			name := workload.VOName(v)
			voLatency[name] = cfg.MetricsSink.Histogram("vo/"+name+"/latency_s", sloLatencyBuckets)
		}
	}
	// Shared overload-control machinery. The retry budget is one bucket
	// for the whole fleet — that is the point: it caps aggregate retry
	// volume, not each client's. Breaker transitions land in fleet-wide
	// counters (nil-safe when metrics are off).
	var retryBudget *wire.RetryBudget
	var breakerCfg wire.BreakerConfig
	if o := cfg.Overload; o != nil && o.Plane {
		retryBudget = wire.NewRetryBudget(clock, o.BudgetRate, o.BudgetBurst)
		brkOpen := cfg.MetricsSink.Counter("clients/breaker/open")
		brkHalf := cfg.MetricsSink.Counter("clients/breaker/half_open")
		brkClosed := cfg.MetricsSink.Counter("clients/breaker/closed")
		breakerCfg = wire.BreakerConfig{
			Clock:     clock,
			Threshold: o.BreakerThreshold,
			Cooldown:  o.BreakerCooldown,
			OnTransition: func(from, to wire.BreakerState) {
				switch to {
				case wire.BreakerOpen:
					brkOpen.Inc()
				case wire.BreakerHalfOpen:
					brkHalf.Inc()
				default:
					brkClosed.Inc()
				}
			},
		}
	}
	clients := make([]*digruber.Client, cfg.Clients)
	for t := range clients {
		dpIdx := t % cfg.DPs
		sel, err := selectorByName(cfg.SelectorName, cfg.Seed, t)
		if err != nil {
			return ScenarioResult{}, err
		}
		// Under a fault schedule — or with the overload plane's breakers
		// on — every client also carries a failover chain: the remaining
		// brokers in ring order from its primary. A client whose broker
		// dies (or drowns) rebinds after a few failures instead of paying
		// a timeout plus random fallback for every remaining job.
		var failover []digruber.DPRef
		if cfg.Faults != nil || (cfg.Overload != nil && cfg.Overload.Plane) {
			for k := 1; k < cfg.DPs; k++ {
				j := (dpIdx + k) % cfg.DPs
				failover = append(failover, digruber.DPRef{
					Name: dps[j].Name(),
					Node: fmt.Sprintf("dp-node-%d", j),
					Addr: dps[j].Addr(),
				})
			}
		}
		ccfg := digruber.ClientConfig{
			Selector:      sel,
			SingleCall:    cfg.SingleCall,
			Name:          wl.gen.HostName(t),
			Node:          fmt.Sprintf("client-node-%03d", t),
			DPName:        dps[dpIdx].Name(),
			DPNode:        fmt.Sprintf("dp-node-%d", dpIdx),
			DPAddr:        dps[dpIdx].Addr(),
			Transport:     mem,
			Network:       network,
			Clock:         clock,
			Timeout:       cfg.Timeout,
			FallbackSites: siteNames,
			RNG:           netsim.Stream(cfg.Seed, fmt.Sprintf("exp.fallback/%d", t)),
			Failover:      failover,
			Tracer:        tracerFor(wl.gen.HostName(t)),
			WireMetrics:   wireMetrics,
		}
		if voLatency != nil {
			// Unknown owners fall through to a nil histogram (a no-op
			// observation) rather than minting series mid-run.
			ccfg.Latency = func(j *grid.Job) *tsdb.Histogram { return voLatency[j.Owner.VO] }
		}
		if o := cfg.Overload; o != nil {
			// Retries with or without the plane; only the plane bounds
			// them with the shared budget. Jitter comes from a per-client
			// stream (netsim streams are not goroutine-safe).
			ccfg.Retry = wire.RetryPolicy{
				Attempts:    o.Attempts,
				BaseBackoff: o.BaseBackoff,
				JitterFrac:  0.5,
				Jitter:      netsim.Stream(cfg.Seed, fmt.Sprintf("exp.retryjitter/%d", t)),
				Budget:      retryBudget,
			}
			if o.Plane {
				ccfg.PropagateDeadline = true
				ccfg.Breaker = breakerCfg
				ccfg.LoadAwareFailover = true
			}
		}
		c, err := digruber.NewClient(ccfg)
		if err != nil {
			return ScenarioResult{}, err
		}
		clients[t] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	// --- execution path & metrics ---
	collector := metrics.NewCollector()
	submitter := gram.NewSubmitter(g, network, clock, gram.Config{
		SubmitOverhead: 500 * time.Millisecond,
	})
	var execWG sync.WaitGroup
	var arrivalMu sync.Mutex
	var arrivals grubsim.Trace

	op := func(t, seq int) diperf.OpResult {
		arrivalMu.Lock()
		arrivals = append(arrivals, grubsim.Arrival{At: clock.Since(Epoch), Client: t})
		arrivalMu.Unlock()
		job, err := wl.nextJob(t)
		if err != nil {
			return diperf.OpResult{Err: err}
		}
		dec := clients[t].Schedule(job)
		if dec.Err != nil {
			return diperf.OpResult{Handled: dec.Handled, Err: dec.Err, TraceID: dec.TraceID}
		}
		// Ground-truth scheduling accuracy at dispatch: how good was the
		// chosen site relative to the best available one?
		accuracy := schedulingAccuracy(g, dec.Site)
		collector.RecordScheduled(string(job.ID), dec.At, dec.Response, dec.Handled, accuracy)

		if cfg.ExecuteJobs {
			execWG.Add(1)
			go func(site string) {
				defer execWG.Done()
				ticket, err := submitter.Submit(job.SubmitHost, site, job)
				if err != nil {
					collector.RecordOutcome(string(job.ID), 0, 0, true)
					return
				}
				out := <-ticket.Done()
				cpu := time.Duration(0)
				if !out.Failed {
					cpu = out.Job.Runtime * time.Duration(out.Job.CPUs)
				}
				collector.RecordOutcome(string(job.ID), out.QTime(), cpu, out.Failed)
			}(dec.Site)
		}
		return diperf.OpResult{Handled: dec.Handled, TraceID: dec.TraceID}
	}

	// --- metrics sampler, ticking on the experiment clock ---
	sampler := tsdb.NewSampler(cfg.MetricsSink, clock, cfg.MetricsInterval)
	sampler.Start()
	defer sampler.Stop()

	// --- drive it with DiPerF ---
	stagger := cfg.Scale.Duration / 10 / time.Duration(maxInt(cfg.Clients-1, 1))
	dpResult, err := diperf.Run(diperf.Config{
		Testers:      cfg.Clients,
		Stagger:      stagger,
		Interarrival: cfg.Interarrival,
		Duration:     cfg.Scale.Duration,
		Window:       cfg.Scale.Window,
		Clock:        clock,
	}, op)
	if err != nil {
		return ScenarioResult{}, err
	}
	// Let in-flight jobs drain, but don't stall the harness on the
	// log-normal runtime tail: stragglers simply lack outcome records,
	// exactly like jobs still running when a paper measurement window
	// closed.
	drainReal := time.Duration(float64(cfg.Scale.Duration) / 2 / cfg.Scale.Speedup)
	waitWithTimeout(&execWG, drainReal)
	// Close the books: one final sample so the run's last partial window
	// is in the series.
	sampler.SampleNow()

	res := ScenarioResult{
		Config: cfg,
		DiPerF: dpResult,
		Table:  collector.BuildTable(g.TotalCPUs(), cfg.Scale.Duration),
	}
	yes := true
	res.HandledAccuracy = collector.AccuracyMean(&yes)
	res.OverallAccuracy = collector.AccuracyMean(nil)
	res.Util = grid.Utilization(g.ConsumedCPU(), g.TotalCPUs(), cfg.Scale.Duration)
	res.CompletedJobs = g.CompletedJobs()
	res.ClientWire = wireMetrics.Stats()
	for _, dp := range dps {
		res.ExchangeRounds += dp.ExchangeRounds()
		res.DPStatus = append(res.DPStatus, dp.Status())
	}
	arrivals.Sort()
	res.Trace = arrivals
	return res, nil
}

// schedulingAccuracy is SA_i: ground-truth free CPUs at the selected
// site over ground-truth free CPUs at the best site, both at dispatch.
func schedulingAccuracy(g *grid.Grid, site string) float64 {
	best := 0
	for _, s := range g.Sites() {
		if f := g.FreeCPUsAt(s.Name()); f > best {
			best = f
		}
	}
	if best == 0 {
		return 1 // nothing free anywhere: no decision could do better
	}
	return float64(g.FreeCPUsAt(site)) / float64(best)
}

// waitWithTimeout waits for wg up to a real-time bound. The bound is
// deliberately wall-clock: it caps how long the harness itself may
// stall on the log-normal runtime tail, independent of any virtual
// clock's speedup, and it affects only when measurement stops — never
// the simulated timeline the results are drawn from.
func waitWithTimeout(wg *sync.WaitGroup, d time.Duration) {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d): //lint:allow wallclock -- real-time bound on harness wall time, not simulated time
	}
}

// selectorByName instantiates a fresh per-client selector.
func selectorByName(name string, seed int64, tester int) (gruber.Selector, error) {
	switch name {
	case "", "usla-aware":
		return gruber.USLAAware{}, nil
	case "random":
		return gruber.NewRandom(netsim.Stream(seed, fmt.Sprintf("exp.selector/%d", tester))), nil
	case "round-robin":
		return gruber.NewRoundRobin(), nil
	case "least-used":
		return gruber.LeastUsed{}, nil
	case "most-free":
		return gruber.MostFree{}, nil
	case "least-recently-used":
		return gruber.NewLeastRecentlyUsed(), nil
	default:
		return nil, fmt.Errorf("exp: unknown selector %q", name)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
