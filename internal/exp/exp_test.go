package exp

import (
	"testing"
	"time"

	"digruber/internal/digruber"
	"digruber/internal/wire"
)

// tinyScale keeps live-emulation unit tests to roughly a second of real
// time each.
func tinyScale() Scale {
	return Scale{
		Name:      "tiny",
		Sites:     20,
		TotalCPUs: 2000,
		Clients:   12,
		Duration:  3 * time.Minute,
		Speedup:   200,
		Window:    30 * time.Second,
	}
}

func TestRunScenarioBasics(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{
		Name:        "t-basic",
		Scale:       tinyScale(),
		Profile:     wire.GT3(),
		DPs:         2,
		ExecuteJobs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DiPerF.Ops == 0 {
		t.Fatal("no operations recorded")
	}
	if res.DiPerF.Errors != 0 {
		t.Fatalf("%d hard errors", res.DiPerF.Errors)
	}
	if res.DiPerF.Handled == 0 {
		t.Fatal("nothing handled by the brokers")
	}
	if res.Table.Rows[2].NumRequests != res.DiPerF.Ops {
		t.Fatalf("table total %d != ops %d", res.Table.Rows[2].NumRequests, res.DiPerF.Ops)
	}
	if res.OverallAccuracy <= 0 || res.OverallAccuracy > 1 {
		t.Fatalf("accuracy = %v", res.OverallAccuracy)
	}
	if res.CompletedJobs == 0 {
		t.Fatal("no jobs completed on the grid")
	}
	if res.Util <= 0 {
		t.Fatal("zero utilization despite completed jobs")
	}
}

func TestRunScenarioValidation(t *testing.T) {
	if _, err := RunScenario(ScenarioConfig{Name: "x", DPs: 0}); err == nil {
		t.Fatal("zero DPs accepted")
	}
}

func TestScenarioExchangeHappens(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{
		Name:             "t-exchange",
		Scale:            tinyScale(),
		DPs:              3,
		ExchangeInterval: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExchangeRounds == 0 {
		t.Fatal("no exchange rounds completed")
	}
}

func TestScenarioNoExchangeStrategy(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{
		Name:     "t-noex",
		Scale:    tinyScale(),
		DPs:      2,
		Strategy: digruber.NoExchange,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DiPerF.Ops == 0 {
		t.Fatal("no ops")
	}
}

func TestRunFig1Baseline(t *testing.T) {
	res, err := RunFig1(Fig1Config{Scale: tinyScale()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Handled == 0 {
		t.Fatalf("fig1 produced no traffic: %+v", res)
	}
	if res.PeakThroughput <= 0 {
		t.Fatal("no throughput")
	}
}

func TestRunTab3Quick(t *testing.T) {
	rows, err := RunTab3(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 stacks × 3 starts)", len(rows))
	}
	for _, r := range rows {
		if r.FinalDPs != r.InitialDPs+r.AdditionalDPs {
			t.Fatalf("inconsistent row: %+v", r)
		}
		if r.InitialDPs < 10 && r.AdditionalDPs == 0 {
			t.Fatalf("small start %d never grew: %+v", r.InitialDPs, r)
		}
	}
}
