package exp

import (
	"fmt"
	"os"
	"strings"
	"time"

	"digruber/internal/digruber"
	"digruber/internal/grid"
	"digruber/internal/grubsim"
	"digruber/internal/netsim"
	"digruber/internal/tsdb"
	"digruber/internal/usla"
	"digruber/internal/vtime"
	"digruber/internal/wire"
)

// ext-elastic: the full elastic-fleet control loop — the paper's
// Section 5 reconfiguration in both directions. A scripted diurnal
// workload with a flash crowd drives a Manual-clock fleet; the
// Controller grows it through factory deployment + snapshot bootstrap
// and shrinks it back through the graceful drain protocol. The recorded
// arrival trace then replays through GRUB-SIM's static dynamic
// provisioner, cross-checking the online fleet trajectory against the
// simulator's offline answer for the same load.

// elasticSteps is the scripted run length in one-minute steps.
const elasticSteps = 140

// elasticOffered is the scripted offered load (jobs per one-minute
// step): a night floor, a diurnal morning ramp, a flash crowd, its
// decay back to the daytime plateau, and night again.
func elasticOffered(step int) int {
	switch {
	case step < 20: // night floor
		return 2
	case step < 40: // morning ramp, 2 -> 10
		return 2 + (step-19)*8/20
	case step < 60: // flash crowd
		return 40
	case step < 80: // decay to the daytime plateau
		return 10
	default: // night again
		return 2
	}
}

// elasticDemandHigh/Low are the controller's per-member offered-rate
// thresholds (1/s): scale up at 6 jobs/min per member, allow scale-down
// at 2 jobs/min per member.
const (
	elasticDemandHigh = 6.0 / 60
	elasticDemandLow  = 2.0 / 60
)

// elasticStep is one step of the recorded run.
type elasticStep struct {
	Step    int
	Offered int
	Handled int
	Fleet   int
	Action  digruber.ControllerAction
}

// elasticOutcome is everything a deterministic elastic run observes.
type elasticOutcome struct {
	Steps       []elasticStep
	Offered     int
	Handled     int
	PeakFleet   int
	FinalFleet  int
	Deploys     int
	Retires     int
	RetireSteps []int
	// LostDuringRetirement counts requests not handled by the mesh in
	// any step where a member was drained and retired — the protocol's
	// zero-loss acceptance.
	LostDuringRetirement int
	Trace                grubsim.Trace
}

// runElasticScenario drives the scripted workload through a live
// Controller-managed fleet under a Manual clock. Every step submits the
// scripted jobs synchronously, quiesces, advances one virtual minute,
// samples the metrics plane, runs one exchange round per member, and
// evaluates the controller — so the whole run, metrics registry
// included, is a pure function of the script.
func runElasticScenario() (elasticOutcome, *tsdb.Registry, error) {
	clock := vtime.NewManual(Epoch)
	mem := wire.NewMem()
	reg := tsdb.New(0)

	sites := make([]grid.Status, 4)
	for i := range sites {
		sites[i] = grid.Status{Name: fmt.Sprintf("el-site-%d", i), TotalCPUs: 600, FreeCPUs: 600}
	}
	factory := func(idx int) (*digruber.DecisionPoint, error) {
		dp, err := digruber.New(digruber.Config{
			Name: fmt.Sprintf("el-dp-%d", idx), Node: fmt.Sprintf("el-dp-%d", idx),
			Addr: fmt.Sprintf("el/dp-%d", idx), Transport: mem, Clock: clock,
			Profile: wire.Instant(),
			// Rounds are driven synchronously by the step loop; the ticker
			// must never fire on its own.
			ExchangeInterval: 1000 * time.Hour,
			Metrics:          reg,
		})
		if err != nil {
			return nil, err
		}
		dp.Engine().UpdateSites(append([]grid.Status(nil), sites...), clock.Now())
		if err := dp.Start(); err != nil {
			return nil, err
		}
		return dp, nil
	}
	first, err := factory(0)
	if err != nil {
		return elasticOutcome{}, nil, err
	}

	offered := reg.Counter("workload/offered")
	handledCtr := reg.Counter("workload/handled")

	ctl, err := digruber.NewController(digruber.ControllerConfig{
		Clock: clock, Factory: factory, Metrics: reg,
		Interval: time.Minute, MinDPs: 1, MaxDPs: 4,
		ScaleUpAfter: 2, ScaleDownAfter: 4,
		UpCooldown: 3 * time.Minute, DownCooldown: 6 * time.Minute,
		DrainTimeout: 10 * time.Minute,
		DemandSeries: "workload/offered",
		Signals: digruber.SignalThresholds{
			DemandHighPerDP: elasticDemandHigh,
			DemandLowPerDP:  elasticDemandLow,
			Window:          4 * time.Minute,
		},
	}, []*digruber.DecisionPoint{first})
	if err != nil {
		return elasticOutcome{}, nil, err
	}
	defer func() {
		for _, dp := range ctl.Fleet() {
			dp.Stop()
		}
	}()

	clients := make([]*digruber.Client, 8)
	for i := range clients {
		c, err := digruber.NewClient(digruber.ClientConfig{
			Name: fmt.Sprintf("el-client-%d", i), Node: fmt.Sprintf("el-client-%d", i),
			DPName: first.Name(), DPNode: first.Name(), DPAddr: first.Addr(),
			Transport: mem, Clock: clock, Timeout: 5 * time.Second,
			FallbackSites: []string{"el-site-0"},
			RNG:           netsim.Stream(int64(i), "exp.elastic.client"),
		})
		if err != nil {
			return elasticOutcome{}, nil, err
		}
		clients[i] = c
		defer c.Close()
	}
	ctl.ManageClients(clients)

	// quiesce waits (real time) for the serving members' deferred
	// in-flight accounting to settle, so samples — and the drain's settle
	// check — read a settled fleet.
	quiesce := func() error {
		//lint:allow wallclock -- real-time watchdog for goroutine scheduling, not simulated time
		deadline := time.Now().Add(10 * time.Second)
		for _, dp := range ctl.Fleet() {
			for dp.Status().InFlight != 0 {
				//lint:allow wallclock -- real-time watchdog, not simulated time
				if time.Now().After(deadline) {
					return fmt.Errorf("exp: elastic fleet did not quiesce")
				}
				//lint:allow wallclock -- yields to the server goroutines; no simulated time passes
				time.Sleep(time.Millisecond)
			}
		}
		return nil
	}

	var out elasticOutcome
	seq := 0
	for step := 0; step < elasticSteps; step++ {
		n := elasticOffered(step)
		handled := 0
		for k := 0; k < n; k++ {
			ci := seq % len(clients)
			dec := clients[ci].Schedule(&grid.Job{
				ID:         grid.JobID(fmt.Sprintf("el-%05d", seq)),
				Owner:      usla.MustParsePath("atlas"),
				CPUs:       1,
				Runtime:    10 * time.Minute,
				SubmitHost: fmt.Sprintf("el-client-%d", ci),
			})
			if dec.Handled {
				handled++
			}
			// The arrival trace spreads the step's submissions evenly over
			// its minute — what an open-loop replay of "n jobs during this
			// minute" means.
			out.Trace = append(out.Trace, grubsim.Arrival{
				At:     time.Duration(step)*time.Minute + time.Duration(k)*time.Minute/time.Duration(n),
				Client: ci,
			})
			seq++
		}
		offered.Add(int64(n))
		handledCtr.Add(int64(handled))
		for _, dp := range ctl.Fleet() {
			dp.ExchangeNow()
		}
		// Quiesce after the exchange rounds: their server-side in-flight
		// accounting settles asynchronously, and a sample (or a drain's
		// settle check) must never observe it mid-flight.
		if err := quiesce(); err != nil {
			return elasticOutcome{}, nil, err
		}
		clock.Advance(time.Minute)
		reg.Sample(clock.Now())
		act, err := ctl.Evaluate()
		if err != nil {
			return elasticOutcome{}, nil, fmt.Errorf("exp: elastic step %d: %w", step, err)
		}

		fleet := len(ctl.Fleet())
		out.Steps = append(out.Steps, elasticStep{Step: step, Offered: n, Handled: handled, Fleet: fleet, Action: act})
		out.Offered += n
		out.Handled += handled
		if fleet > out.PeakFleet {
			out.PeakFleet = fleet
		}
		if act == digruber.ActionScaleDown {
			out.RetireSteps = append(out.RetireSteps, step)
			out.LostDuringRetirement += n - handled
		}
	}
	out.FinalFleet = len(ctl.Fleet())
	out.Deploys = len(ctl.Deployments())
	out.Retires = len(ctl.Retirements())
	return out, reg, nil
}

// elasticSimParams calibrates GRUB-SIM to the controller's capacity
// model: one worker at a 10 s service mean is exactly the 6 jobs/min
// per member the online loop scales up at, so the simulator's static
// provisioning answer for the recorded trace is directly comparable to
// the live fleet trajectory.
func elasticSimParams() grubsim.Params {
	return grubsim.Params{
		Seed:            1,
		ServiceMean:     10 * time.Second,
		ServiceSigma:    0.3,
		Workers:         1,
		QueueLimit:      512,
		WANLatency:      60 * time.Millisecond,
		WANSigma:        0.4,
		Timeout:         30 * time.Second,
		InitialDPs:      1,
		MaxDPs:          4,
		Dynamic:         true,
		MonitorInterval: time.Minute,
		ResponseBound:   25 * time.Second,
	}
}

// runElasticExtension (ext-elastic) runs the scripted elastic scenario
// and the GRUB-SIM cross-check, and reports the fleet trajectory.
func runElasticExtension(scale Scale) (Report, error) {
	out, reg, err := runElasticScenario()
	if err != nil {
		return Report{}, err
	}
	sim, err := grubsim.RunTrace(elasticSimParams(), out.Trace)
	if err != nil {
		return Report{}, err
	}

	var b strings.Builder
	b.WriteString("== Extension: elastic fleet controller (diurnal + flash crowd, Manual clock) ==\n")
	fmt.Fprintf(&b, "offered %d jobs over %d min; handled %d (%.1f%%)\n",
		out.Offered, elasticSteps, out.Handled, pctOf(out.Handled, out.Offered))
	fmt.Fprintf(&b, "fleet trajectory: start 1, peak %d, final %d (%d deploys, %d drains)\n",
		out.PeakFleet, out.FinalFleet, out.Deploys, out.Retires)
	for _, s := range out.Steps {
		if s.Action != digruber.ActionNone {
			fmt.Fprintf(&b, "  t+%3dm %-10s -> fleet %d (offered %d/min)\n", s.Step, s.Action, s.Fleet, s.Offered)
		}
	}
	fmt.Fprintf(&b, "retirement loss: %d of the requests offered during drain steps were lost\n",
		out.LostDuringRetirement)
	fmt.Fprintf(&b, "GRUB-SIM static answer for the same trace: %d decision points (added %d)\n",
		sim.FinalDPs, sim.AddedDPs)
	fmt.Fprintf(&b, "online peak vs static: %d vs %d\n", out.PeakFleet, sim.FinalDPs)
	b.WriteString("\nReading: the controller rides the diurnal ramp up, absorbs the flash\n")
	b.WriteString("crowd at the fleet cap, and drains back to one member at night. Every\n")
	b.WriteString("drain rebinds the victim's clients first, settles in-flight work, and\n")
	b.WriteString("verifies the final exchange flush against the cursor high-water mark —\n")
	b.WriteString("so retirement loses nothing. The simulator, replaying the identical\n")
	b.WriteString("arrival trace against the same per-member capacity, lands on the same\n")
	b.WriteString("peak fleet: the online hysteresis tracks the offline answer.\n")

	rows := make([]Row, 0, len(out.Steps)+1)
	rows = append(rows, Row{
		"row": "elastic", "offered": out.Offered, "handled": out.Handled,
		"peak_fleet": out.PeakFleet, "final_fleet": out.FinalFleet,
		"deploys": out.Deploys, "retires": out.Retires,
		"lost_during_retirement": out.LostDuringRetirement,
		"sim_final_dps":          sim.FinalDPs, "sim_added_dps": sim.AddedDPs,
	})
	for _, s := range out.Steps {
		rows = append(rows, Row{
			"row": "elastic-step", "step": s.Step, "offered": s.Offered,
			"handled": s.Handled, "fleet": s.Fleet, "action": string(s.Action),
		})
	}

	if MetricsOutputPath != "" {
		f, err := os.Create(MetricsOutputPath)
		if err != nil {
			return Report{}, fmt.Errorf("exp: metrics output: %w", err)
		}
		werr := reg.WriteJSONL(f)
		cerr := f.Close()
		if werr != nil {
			return Report{}, werr
		}
		if cerr != nil {
			return Report{}, cerr
		}
		fmt.Fprintf(&b, "\nmetrics time series written to %s\n", MetricsOutputPath)
	}
	return Report{Text: b.String(), Rows: rows}, nil
}
